// Sample-and-hold behavioral model.
//
// In S1 the GD feeds V(Cgd) through an S/H that is triggered by each
// input spike's rising edge (Fig. 2): the held value becomes the
// wordline voltage for the computation stage.  Non-idealities modeled:
// a pedestal/acquisition error proportional to the sampled value and a
// droop rate during the hold interval.
#pragma once

namespace resipe::circuits {

/// Behavioral sample-and-hold stage.
class SampleHold {
 public:
  /// `gain_error`: relative error of the held value (e.g. 0.001 = 0.1%
  /// switch pedestal).  `droop_rate`: volts/second lost while holding.
  SampleHold(double gain_error = 0.0, double droop_rate = 0.0);

  /// Samples `v` and returns the value held after `hold_time` seconds.
  double sample(double v, double hold_time) const;

  double gain_error() const { return gain_error_; }
  double droop_rate() const { return droop_rate_; }

 private:
  double gain_error_;
  double droop_rate_;
};

}  // namespace resipe::circuits
