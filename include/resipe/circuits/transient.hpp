// Numerical transient simulation — the cross-check for the closed-form
// solver.
//
// The behavioral models in this library evaluate exact closed-form RC
// solutions (DESIGN.md: "the closed-form exponential is the exact SPICE
// solution for that topology").  That claim deserves a proof inside the
// repo: this module integrates the same circuits numerically (classic
// RK4 time stepping, no closed forms anywhere) and the test suite
// asserts that both agree to integration tolerance.  It also serves as
// the extension point for future non-first-order effects (nonlinear
// device I-V, finite switch resistance) that have no closed form.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/circuits/spike.hpp"

namespace resipe::circuits {

/// Integrates dv/dt = f(t, v) from (t0, v0) to t1 with fixed-step RK4.
/// `steps` subdivisions (>= 1).
double integrate_ode(const std::function<double(double, double)>& f,
                     double v0, double t0, double t1, std::size_t steps);

// --- ODE oracle hooks -------------------------------------------------
//
// The right-hand sides of the two first-order ODEs every ReSiPE stage
// reduces to, exposed as named functions so external oracles (the
// verify library's adaptive-RK differential checker) integrate the
// *same* circuit topology the behavioral models solve in closed form.
// A future change to the circuit model lands here once and flows into
// both the transient simulator and the verification oracle.

/// RC node charging toward `v_inf` with time constant `tau`:
/// dv/dt = (v_inf - v) / tau.
double rc_node_derivative(double v, double v_inf, double tau);

/// COG computation-stage node: every cell couples the (held) wordline
/// voltage `v_wl[i]` to the COG capacitor through conductance `g[i]`:
/// dVc/dt = sum_i g_i (v_wl_i - Vc) / Ccog.
double cog_comp_derivative(const CircuitParams& params,
                           std::span<const double> g,
                           std::span<const double> v_wl, double vc);

/// Result of a numerically-simulated two-slice MAC on one column.
struct TransientMacResult {
  std::vector<double> v_wordline;  ///< sampled wordline voltages (S1)
  double v_cog = 0.0;              ///< Ccog voltage after the comp stage
  Spike output;                    ///< S2 spike from crossing detection
};

/// Simulates one column of a ReSiPE tile with pure time stepping:
///  * S1: the GD ramp is integrated as dV/dt = (Vs - V)/(Rgd Cgd) and
///    sampled at each input spike's arrival;
///  * computation stage: dVc/dt = sum_i G_i (V_i - Vc) / Ccog;
///  * S2: the ramp is re-integrated and the crossing with v_cog is
///    located by stepping + linear interpolation.
/// `steps_per_slice` controls accuracy (1e4 gives ~1e-6 relative).
TransientMacResult transient_mac(const CircuitParams& params,
                                 std::span<const double> g,
                                 std::span<const Spike> inputs,
                                 std::size_t steps_per_slice = 10000);

}  // namespace resipe::circuits
