// Column output generator (COG): column voltage -> output spike timing.
//
// One COG per bitline (Sec. III-C).  During the computation stage the
// COG capacitor Ccog is charged by the column's Thevenin equivalent
// (Eq. 2/3):
//
//   Veq  = sum(Vi Gi) / sum(Gi),   Req = 1 / sum(Gi)
//   Vout = Veq * (1 - exp(-dt / (Req Ccog)))
//
// In S2 the held Vout is compared against the shared GD ramp; when the
// ramp crosses Vout the comparator + inverter + AND chain emits a spike
// whose rising edge encodes the MAC result (Eq. 4/5).
#pragma once

#include "resipe/circuits/global_decoder.hpp"
#include "resipe/circuits/params.hpp"
#include "resipe/circuits/spike.hpp"

namespace resipe::circuits {

/// Thevenin equivalent of a crossbar column during the computation
/// stage, as seen by the COG capacitor.
struct ColumnDrive {
  double v_eq = 0.0;  ///< equivalent source voltage (volts)
  double g_total = 0.0;  ///< total column conductance sum(Gi) (siemens)
};

/// Behavioral column output generator.
class ColumnOutputGenerator {
 public:
  explicit ColumnOutputGenerator(const CircuitParams& params);

  /// Voltage sampled on Ccog at the end of the computation stage for a
  /// column drive (exact Eq. 3 or the linear approximation, per
  /// params.model).  Zero total conductance leaves the cap at 0 V.
  double sample_voltage(const ColumnDrive& drive) const;

  /// S2 conversion: time at which the shared GD ramp crosses `v_out`
  /// (plus comparator offset and delay).  A crossing outside the slice
  /// produces Spike::none() — the output line stays silent, encoding
  /// "beyond full scale".
  Spike emit(double v_out, const GlobalDecoder& gd) const;

  /// Convenience: sample then emit.
  Spike convert(const ColumnDrive& drive, const GlobalDecoder& gd) const;

  /// Energy drawn while charging Ccog to v_out in the computation
  /// stage plus recharging the comparator reference path in S2; the
  /// capacitor is discharged (energy dumped) at the end of each slice.
  /// This is the term that makes the COG cluster dominate ReSiPE power
  /// (Sec. IV-B reports 98.1%).
  double conversion_energy(double v_out) const;

  const CircuitParams& params() const { return params_; }

 private:
  CircuitParams params_;
};

}  // namespace resipe::circuits
