// Global decoder (GD): spike timing -> wordline voltage.
//
// One GD serves a whole crossbar (Sec. III-C).  The shared timing
// capacitor Cgd charges from 0 V toward Vs through Rgd from the start
// of slice S1; when input spike i arrives at t_in,i, an S/H captures
// the instantaneous V(Cgd) as that wordline's drive voltage for the
// computation stage — Eq. (1):
//
//   V_in = Vs * (1 - exp(-t_in / (Rgd Cgd)))  ~=  Vs * t_in / (Rgd Cgd)
//
// The same charging ramp is reused in S2 as the COG's timing reference,
// which is what makes the S1 non-linearity largely cancel (Sec. III-D).
#pragma once

#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/circuits/sample_hold.hpp"
#include "resipe/circuits/spike.hpp"

namespace resipe::circuits {

/// Behavioral global decoder.
class GlobalDecoder {
 public:
  explicit GlobalDecoder(const CircuitParams& params,
                         SampleHold sample_hold = SampleHold());

  /// The ramp voltage V(Cgd) at time t within a slice (exact or linear
  /// per params.model).  Clamped to [0, Vs].
  double ramp_voltage(double t) const;

  /// Wordline voltage produced for an input spike: samples the ramp at
  /// the spike's arrival and holds until the computation stage at the
  /// end of S1.  A non-firing spike yields 0 V (the wordline stays
  /// grounded, contributing nothing to the MAC).
  double decode(const Spike& spike) const;

  /// Vectorized decode over all wordlines of a crossbar.
  std::vector<double> decode(const std::vector<Spike>& spikes) const;

  /// Inverse of the ramp: the time at which the ramp reaches voltage v.
  /// Used by the COG in S2 (the comparator fires when the ramp crosses
  /// the held Vout).  Returns +infinity when v is never reached within
  /// the model (v >= Vs for the exact ramp).
  double ramp_crossing_time(double v) const;

  const CircuitParams& params() const { return params_; }

 private:
  CircuitParams params_;
  SampleHold sample_hold_;
};

}  // namespace resipe::circuits
