// Waveform tracing for the Fig. 3 reproduction.
//
// Records named (time, value) series sampled from the closed-form node
// equations — V(Cgd), V(Ccog), wordline voltages, input/output spikes —
// so the bench binary can print the same S1 / computation-stage / S2
// picture the paper's circuit simulation shows.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace resipe::circuits {

/// One named analog/digital trace.
struct Trace {
  std::string name;
  std::vector<double> time;   ///< seconds
  std::vector<double> value;  ///< volts (or 0/1 for digital lines)
};

/// A collection of traces sharing one experiment.
class WaveformRecorder {
 public:
  /// Creates (or finds) the trace with the given name.  The returned
  /// reference stays valid for the recorder's lifetime: traces live in
  /// a deque, so creating further traces never relocates earlier ones.
  Trace& trace(const std::string& name);

  /// Appends one sample to the named trace.
  void record(const std::string& name, double t, double v);

  const std::deque<Trace>& traces() const { return traces_; }

  /// Value of the named trace at time t by linear interpolation
  /// (clamped to the trace's end points).  Throws on unknown/empty
  /// trace.
  double at(const std::string& name, double t) const;

  /// Renders all traces as a compact ASCII oscillogram: `height` rows
  /// per trace, `width` columns covering [t0, t1].
  std::string render_ascii(double t0, double t1, std::size_t width = 72,
                           std::size_t height = 8) const;

 private:
  const Trace* find(const std::string& name) const;
  std::deque<Trace> traces_;
};

}  // namespace resipe::circuits
