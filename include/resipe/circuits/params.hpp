// Circuit parameter set shared by the global decoder (GD), column
// output generator (COG) and the full ReSiPE tile.
//
// Defaults are the values stated in Sec. III-D / IV-A of the paper:
// Vs = 1 V, Rgd = 100 k, Cgd = Ccog = 100 fF, slice = 100 ns,
// computation stage dt = 1 ns, spike width 1 ns, timing calibrated to a
// 1 GHz clock.
#pragma once

#include "resipe/common/units.hpp"

namespace resipe::circuits {

/// Evaluation mode of the analog transfer functions.
enum class TransferModel {
  /// Exact first-order RC solutions (what SPICE would compute).
  kExact,
  /// The paper's linearized approximations Eq.(1)/(3)/(4) — useful as
  /// the "ideal" reference when quantifying non-linearity error.
  kLinear,
};

/// All electrical parameters of one ReSiPE tile.
struct CircuitParams {
  double v_s = 1.0 * units::V;           ///< GD charging source
  double r_gd = 100.0 * units::kOhm;     ///< GD charging resistance
  double c_gd = 100.0 * units::fF;       ///< GD timing capacitor
  double c_cog = 100.0 * units::fF;      ///< COG sampling capacitor
  double slice_length = 100.0 * units::ns;  ///< S1 == S2 duration
  double comp_stage = 1.0 * units::ns;   ///< computation stage dt
  double spike_width = 1.0 * units::ns;  ///< output pulse width
  double clock_period = 1.0 * units::ns; ///< 1 GHz timing calibration

  /// Comparator non-idealities (S2 output path).
  double comparator_offset = 0.0 * units::mV;
  double comparator_delay = 0.0 * units::ns;
  /// Per-instance random input offset sigma (mismatch across the COG
  /// cluster's comparators); drawn once per column at programming time.
  double comparator_offset_sigma = 0.0 * units::mV;

  TransferModel model = TransferModel::kExact;

  /// GD time constant Rgd * Cgd.
  double tau_gd() const { return r_gd * c_gd; }

  /// The linear-regime gain of the whole MAC path, Eq. (5):
  /// t_out = comp_stage / c_cog * sum(t_in * G).  Returned value is
  /// comp_stage / c_cog in s/F = s^-1 * s^2/S... units work out so that
  /// multiplying by [s * S] gives seconds.
  double linear_gain() const { return comp_stage / c_cog; }

  /// Checks invariants; throws resipe::Error on violation.
  void validate() const;

  /// The GD ramp voltage at time t into a slice (exact exponential or
  /// the Eq.(1) linearization, per `model`), clamped to [0, v_s].
  double ramp_voltage(double t) const;

  /// Inverse ramp: time at which the ramp reaches voltage v (clamped
  /// below at 0; +infinity when v is unreachable in the exact model).
  double ramp_crossing(double v) const;

  /// Paper defaults (above).
  static CircuitParams paper_defaults();

  /// The network-inference operating point: identical to the paper
  /// defaults except the GD time constant is calibrated to the slice
  /// (Rgd = 1 M -> tau_gd = 100 ns).  With the paper's Rgd = 100 k the
  /// ramp saturates within ~30 ns, so the 1 GHz arrival-time grid
  /// leaves only ~30 usable value levels and deep networks collapse;
  /// matching tau_gd to the slice spreads the grid over the full value
  /// range (~100 levels) — this is what "calibrated with the clock
  /// frequency of 1 GHz" (Sec. IV-A) must mean for the accuracy
  /// experiment to reproduce (see DESIGN.md).
  static CircuitParams nn_calibrated();

  /// A corner tuned so the whole dynamic range stays in the
  /// quasi-linear regime (tau_gd ~ 10x slice); used by the NN mapping
  /// ablation to isolate non-linearity effects.
  static CircuitParams linear_regime();
};

}  // namespace resipe::circuits
