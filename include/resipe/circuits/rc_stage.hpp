// First-order RC stage: the single analog primitive every ReSiPE node
// reduces to.
//
// Both the global decoder (GD) and the column output generator (COG)
// are, electrically, a capacitor charged through a resistance from a
// constant source.  For that topology the node voltage has the exact
// closed-form solution
//
//   V(t) = V_inf + (V_0 - V_inf) * exp(-t / (R C))
//
// so a behavioral simulator that applies this formula piecewise (one
// piece per interval during which the driving network is constant) is
// *exact* — it reproduces what SPICE computes for the same netlist,
// which is why closed-form evaluation is a faithful substitute for the
// paper's Cadence Virtuoso runs.
#pragma once

namespace resipe::circuits {

/// Exact voltage of an RC node after charging for `t` seconds from
/// `v0` toward asymptote `v_inf` with time constant `tau = R*C`.
/// tau == 0 means an ideal (instant) settle to v_inf.
double rc_voltage(double v0, double v_inf, double tau, double t);

/// Exact time for an RC node charging from `v0` toward `v_inf` with
/// time constant `tau` to reach `v_target`.  Returns +infinity when the
/// target is not reachable (outside (v0, v_inf) in the direction of
/// charge).  v_target == v0 returns 0.
double rc_time_to_reach(double v0, double v_inf, double tau, double v_target);

/// Energy drawn from an ideal source V_s while charging a capacitor C
/// from 0 V up to `v_final` through a resistor: E_source = C*V_s*v_final
/// (half stored on the cap, the rest burned in the resistor when
/// v_final == V_s).  This is the dominant COG power term in ReSiPE.
double rc_source_energy(double capacitance, double v_source, double v_final);

/// Energy stored on a capacitor at voltage v: C v^2 / 2.  Dumped to
/// ground by the discharge switch at the end of each slice.
double capacitor_energy(double capacitance, double v);

/// First-order linearization of rc_voltage around t = 0 starting from
/// 0 V: V ~= v_inf * t / tau.  Used by the "ideal linear" engine mode
/// that implements the paper's Eq. (1)/(3)/(4) approximations.
double rc_voltage_linear(double v_inf, double tau, double t);

}  // namespace resipe::circuits
