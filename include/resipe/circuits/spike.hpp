// Single-spiking signal representation.
//
// In the single-spiking data format (Sec. III-A) a datum is carried by
// exactly one spike per time slice; the datum's value is the duration
// from the beginning of the slice to the spike's rising edge.  A
// missing spike (the line stays silent for the whole slice) encodes
// "beyond full scale" and is represented here by an invalid Spike.
#pragma once

#include <limits>

#include "resipe/common/units.hpp"

namespace resipe::circuits {

/// One spike inside one time slice.
struct Spike {
  /// Rising-edge time measured from the beginning of the slice
  /// (seconds).  +infinity encodes "no spike in this slice".
  double arrival_time = std::numeric_limits<double>::infinity();

  /// Pulse width (seconds); value-irrelevant by design (Sec. III-A:
  /// "independent of spike width and shape") but tracked because the
  /// driver energy depends on it.
  double width = 1.0 * units::ns;

  /// True when the spike actually fires inside its slice.
  bool valid() const {
    return arrival_time >= 0.0 &&
           arrival_time != std::numeric_limits<double>::infinity();
  }

  /// A never-firing spike.
  static Spike none() { return Spike{}; }

  /// A spike at time t with the given width.
  static Spike at(double t, double w = 1.0 * units::ns) {
    return Spike{t, w};
  }
};

}  // namespace resipe::circuits
