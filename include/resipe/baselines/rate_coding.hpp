// Rate-coding spiking ReRAM PIM baseline ([11, 13]-class).
//
// Each input value is encoded as the number of unit spikes emitted
// inside a fixed window; each column integrates the resulting charge on
// an I&F neuron whose output spikes are counted.  The format needs no
// DAC/ADC but pays per-spike energy proportional to the encoded value
// and needs a long window (2^bits - 1 spike slots) to reach useful
// precision — the quantization-vs-latency trade the paper describes.
#pragma once

#include <memory>

#include "resipe/crossbar/crossbar.hpp"
#include "resipe/energy/components.hpp"
#include "resipe/energy/design.hpp"

namespace resipe::baselines {

/// Operating parameters of the rate-coding engine.
struct RateCodingParams {
  int bits = 5;                        ///< value resolution (31 slots)
  double spike_period = 12.5 * units::ns;  ///< slot pitch in the window
  double spike_width = 1.0 * units::ns;
  double v_spike = 0.75;               ///< spike amplitude on the WL
  double utilization = 0.5;            ///< average normalized input

  /// Encoding window: (2^bits - 1) spike slots + margin; ~400 ns at the
  /// defaults — twice ReSiPE's 200 ns (Sec. IV-B: 50% latency saving).
  double window() const;
};

class RateCodingDesign : public energy::DesignModel {
 public:
  explicit RateCodingDesign(
      RateCodingParams params = {},
      device::ReramSpec spec = device::ReramSpec::nn_mapping(),
      std::size_t rows = 32, std::size_t cols = 32,
      std::uint64_t program_seed = 7);

  std::string name() const override { return "Rate-coding spiking"; }
  energy::EnergyReport mvm_report() const override;
  double mvm_latency() const override;
  std::size_t rows() const override { return xbar_->rows(); }
  std::size_t cols() const override { return xbar_->cols(); }

  /// Functional model: quantizes inputs to spike counts, accumulates
  /// charge per column, returns the charge-equivalent outputs
  /// (coulombs) after count quantization.
  std::vector<double> functional_mvm(std::span<const double> x) const;

  /// Spike count that encodes normalized value x.
  int encode_spikes(double x) const;

  const RateCodingParams& params() const { return params_; }

 private:
  RateCodingParams params_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
};

}  // namespace resipe::baselines
