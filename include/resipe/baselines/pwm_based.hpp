// PWM-based ReRAM PIM baseline (Jiang et al. [15]).
//
// Each input value is encoded as the duty cycle of a full-amplitude
// pulse: the wordline is held high for value * window seconds.  Each
// column integrates the bitline current over the whole window and an
// ADC digitizes the result.  The format removes the DAC but keeps the
// ADC, and — critically — drives the crossbar with full-swing pulses
// for durations proportional to the data, making it the least
// energy-efficient of the compared formats (Sec. IV-B reports ~50x
// lower power efficiency than ReSiPE).
#pragma once

#include <memory>

#include "resipe/crossbar/crossbar.hpp"
#include "resipe/energy/components.hpp"
#include "resipe/energy/design.hpp"

namespace resipe::baselines {

/// Operating parameters of the PWM engine.
struct PwmParams {
  int bits = 8;                          ///< duty-cycle resolution
  double time_step = 2.0 * units::ns;    ///< modulation LSB
  double v_pulse = 1.0;                  ///< pulse amplitude (V)
  double readout_time = 128.0 * units::ns;  ///< integrator hold + ADC
  int adc_bits = 8;
  double utilization = 0.5;              ///< average duty cycle

  /// Modulation window: 2^bits LSBs (~512 ns at the defaults).
  double window() const;
};

class PwmDesign : public energy::DesignModel {
 public:
  explicit PwmDesign(PwmParams params = {},
                     device::ReramSpec spec = device::ReramSpec::nn_mapping(),
                     std::size_t rows = 32, std::size_t cols = 32,
                     std::uint64_t program_seed = 7);

  std::string name() const override { return "PWM-based"; }
  energy::EnergyReport mvm_report() const override;
  double mvm_latency() const override;
  std::size_t rows() const override { return xbar_->rows(); }
  std::size_t cols() const override { return xbar_->cols(); }

  /// Functional model: quantizes inputs to duty cycles, integrates
  /// charge per column over the window, quantizes with the ADC;
  /// returns charge-equivalent outputs (coulombs).
  std::vector<double> functional_mvm(std::span<const double> x) const;

  const PwmParams& params() const { return params_; }

 private:
  PwmParams params_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
};

}  // namespace resipe::baselines
