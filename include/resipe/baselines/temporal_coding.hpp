// Temporal-coding spiking ReRAM baseline ([16]-class).
//
// Temporal coding in the STDP sense: information lives in the relative
// timing between pre- and post-synaptic spikes, and the peripheral
// "neuron circuit" integrates shaped spikes over a long emulation
// window to reproduce neural dynamics.  The paper's Table II *excludes*
// this class ("often specially designed for training; prevailing use of
// PIMs is inference-only"), but Table I carries it, so this model
// quantifies the row: low-ish power (few, information-dense spikes) but
// long latency (accurate neural emulation needs many membrane time
// constants per decision).
#pragma once

#include <memory>

#include "resipe/crossbar/crossbar.hpp"
#include "resipe/energy/components.hpp"
#include "resipe/energy/design.hpp"

namespace resipe::baselines {

/// Operating parameters of the temporal-coding engine.
struct TemporalCodingParams {
  /// Emulation window: the neuron dynamics need several membrane time
  /// constants to settle — the "Slow" of Table I (~2 us default, 10x
  /// ReSiPE's end-to-end MVM).
  double window = 2000.0 * units::ns;
  double membrane_tau = 200.0 * units::ns;
  /// Shaped-spike drive: amplitude and effective on-time per spike.
  double v_spike = 0.6;
  double spike_on_time = 20.0 * units::ns;
  /// Average spikes per input in the window (sparse by design).
  double spikes_per_input = 3.0;
  /// Neuron circuit bias (leak, comparators, shaping DACs).
  double neuron_bias = 9.0 * units::uW;
};

class TemporalCodingDesign : public energy::DesignModel {
 public:
  explicit TemporalCodingDesign(
      TemporalCodingParams params = {},
      device::ReramSpec spec = device::ReramSpec::nn_mapping(),
      std::size_t rows = 32, std::size_t cols = 32,
      std::uint64_t program_seed = 7);

  std::string name() const override { return "Temporal-coding spiking"; }
  energy::EnergyReport mvm_report() const override;
  double mvm_latency() const override;
  std::size_t rows() const override { return xbar_->rows(); }
  std::size_t cols() const override { return xbar_->cols(); }

  /// Functional model: first-spike-latency encoding with leaky
  /// integration — input value x maps to a spike at (1 - x) * window/2
  /// that opens a sustained synaptic current; each column's membrane
  /// integrates with leak and the output is the settled charge
  /// (coulombs).  Earlier (larger) inputs integrate longer.
  std::vector<double> functional_mvm(std::span<const double> x) const;

  const TemporalCodingParams& params() const { return params_; }

 private:
  TemporalCodingParams params_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
};

}  // namespace resipe::baselines
