// Level-based ReRAM PIM baseline ([9, 14, 17]-class).
//
// Inputs are converted by per-wordline DACs to analog voltage levels
// held for the whole apply phase; bitline currents are sampled and
// digitized by a shared high-speed ADC ([20]-class time-based
// subranging ADC, time-multiplexed across the columns).  The apply and
// conversion phases are pipelined, so the engine starts a new MVM
// every apply-phase (fast), but pays DAC static power, crossbar static
// current for the entire apply phase, and ADC conversion energy per
// column — the energy pattern ReSiPE's single-spiking format removes.
#pragma once

#include <memory>

#include "resipe/crossbar/crossbar.hpp"
#include "resipe/energy/components.hpp"
#include "resipe/energy/design.hpp"

namespace resipe::baselines {

/// Operating parameters of the level-based engine.
struct LevelBasedParams {
  int dac_bits = 8;
  int adc_bits = 8;
  double v_read = 0.55;                   ///< full-scale applied level (V)
  double apply_time = 64.0 * units::ns;   ///< wordline drive phase
  double convert_time = 64.0 * units::ns; ///< ADC phase (pipelined)
  double utilization = 0.5;               ///< average normalized input
};

class LevelBasedDesign : public energy::DesignModel {
 public:
  explicit LevelBasedDesign(
      LevelBasedParams params = {},
      device::ReramSpec spec = device::ReramSpec::nn_mapping(),
      std::size_t rows = 32, std::size_t cols = 32,
      std::uint64_t program_seed = 7);

  std::string name() const override { return "Level-based (DAC+ADC)"; }
  energy::EnergyReport mvm_report() const override;
  double mvm_latency() const override;
  double initiation_interval() const override;
  std::size_t rows() const override { return xbar_->rows(); }
  std::size_t cols() const override { return xbar_->cols(); }

  /// Functional model: quantizes inputs to DAC levels, computes bitline
  /// currents, quantizes to ADC codes; returns the reconstructed
  /// analog-equivalent outputs (amps).  Exposes the quantization error
  /// this data format incurs.
  std::vector<double> functional_mvm(std::span<const double> x) const;

  const LevelBasedParams& params() const { return params_; }

 private:
  LevelBasedParams params_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
};

}  // namespace resipe::baselines
