// Open-loop traffic generation for the serving layer.
//
// Open-loop means arrivals do not wait for responses — the canonical
// saturation-test methodology: a Poisson process at rate lambda keeps
// offering load whether or not the system keeps up, which is what
// exposes the latency knee and the shedding behavior past it.
// Deterministic given the seed (exponential inter-arrivals via inverse
// CDF from the repo's xoshiro Rng).
#pragma once

#include <cstdint>
#include <vector>

#include "resipe/nn/tensor.hpp"
#include "resipe/serve/scheduler.hpp"

namespace resipe::serve {

/// Knobs of one generated trace.
struct TrafficConfig {
  double rate = 1000.0;      ///< mean arrivals per virtual second (> 0)
  double duration = 0.1;     ///< virtual seconds of arrivals (> 0)
  /// Relative deadline stamped on every request; 0 = leave 0 so the
  /// scheduler applies ServeConfig::default_deadline.
  double deadline = 0.0;
  std::uint64_t seed = 1;    ///< inter-arrival + sample-pick stream
  std::uint64_t first_id = 0;
  /// Number of tenants (SLO buckets) to spread requests over; each
  /// request's tenant is hash_seed(seed, id) % tenants — a pure
  /// function of the id, drawing nothing from the arrival stream, so
  /// tenants = 1 (the default) generates the exact same trace as
  /// before the field existed.
  std::uint64_t tenants = 1;
};

/// Draws a Poisson arrival trace whose request inputs are rows sampled
/// uniformly (with replacement) from `samples` ([n, ...]; each row is
/// flattened).  Request.tag records the sampled row index so callers
/// can join responses back to labels.
std::vector<Request> poisson_traffic(const nn::Tensor& samples,
                                     const TrafficConfig& config);

}  // namespace resipe::serve
