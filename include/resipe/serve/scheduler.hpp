// Deadline-aware batching scheduler with admission control and bounded
// retry — the request path in front of a ChipPool.
//
// The scheduler is a discrete-event simulation on a virtual clock:
// callers submit requests stamped with virtual arrival times (e.g. from
// traffic.hpp's Poisson generator), run() replays the whole trace —
// admission, batching, dispatch, health probes, retries — in
// deterministic event order, and every submitted request produces
// exactly one Response: completed, degraded, or explicitly
// Rejected{reason}.  Nothing is ever silently dropped.
//
// Policies (see docs/serving.md for the operator view):
//  * Admission: a bounded FIFO queue (queue_capacity); arrivals beyond
//    capacity, past their deadline, or facing an all-quarantined pool
//    are shed immediately with the precise reason.
//  * Batching: requests accumulate until batch_max or until the oldest
//    waiter has aged batch_window, then dispatch as one batch onto the
//    lowest-index free healthy chip (the engine's batched MVM path).
//    A freed chip immediately picks up waiting work.
//  * Deadlines: checked at admission, at dispatch (expired waiters are
//    shed), and at completion (late results are dropped and reported
//    as deadline rejections — a late answer is a wrong answer).
//  * Retry: a response carrying fault-flagged outputs (output_ok from
//    the PR 2 reliability layer) is retried up to retry_max times with
//    exponential backoff + deterministic jitter, preferring a different
//    replica; exhaustion surfaces the last attempt's fault flags as a
//    kDegraded response.
//
// Determinism: event order is a pure function of the submitted traffic
// (ties broken by a fixed event-kind priority, then submission order),
// jitter comes from hash_seed(config.seed, request id, attempt), and
// the heavy lifting — the actual inference — is the engine's
// thread-count-invariant batched forward.  A trace therefore replays
// bit-identically at 1, 2 or N worker threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "resipe/serve/config.hpp"
#include "resipe/serve/pool.hpp"

namespace resipe::serve {

/// Sentinel chip index ("no chip").
inline constexpr std::size_t kNoChip =
    std::numeric_limits<std::size_t>::max();

/// One inference request.
struct Request {
  std::uint64_t id = 0;       ///< unique; responses are sorted by it
  std::uint64_t tag = 0;      ///< caller cookie (e.g. dataset row, label)
  std::uint64_t tenant = 0;   ///< billing/SLO bucket; echoed on the
                              ///< response and every trace event
  double arrival = 0.0;       ///< virtual arrival time (s)
  /// Absolute virtual deadline; 0 = arrival + config.default_deadline.
  double deadline = 0.0;
  std::vector<double> input;  ///< one sample, flattened (pool input_size)
};

/// Why a request was shed.
enum class RejectReason {
  kNone = 0,
  kQueueFull,            ///< admission queue at capacity
  kDeadlineExpired,      ///< deadline passed (at admission, in queue,
                         ///< or served too late)
  kAllChipsQuarantined,  ///< no healthy replica to serve it
};

const char* to_string(RejectReason r);

/// One result per submitted request.
struct Response {
  enum class Status {
    kOk,        ///< served, all outputs trusted
    kDegraded,  ///< served, but fault-flagged outputs survived retries
    kRejected,  ///< shed; `reason` says why, logits are empty
  };

  std::uint64_t id = 0;
  std::uint64_t tag = 0;
  std::uint64_t tenant = 0;      ///< copied from the request
  Status status = Status::kRejected;
  RejectReason reason = RejectReason::kNone;
  std::vector<double> logits;    ///< empty when rejected
  double arrival = 0.0;
  double completion = 0.0;       ///< service or shed time (virtual s)
  std::size_t attempts = 0;      ///< inference attempts consumed
  std::size_t chip = kNoChip;    ///< replica of the final attempt
  std::size_t degraded_outputs = 0;  ///< fault flags of the final attempt

  double latency() const { return completion - arrival; }
  bool served() const { return status != Status::kRejected; }
};

const char* to_string(Response::Status s);

/// Aggregate scheduler outcome (exact, computed from the responses —
/// available whether or not telemetry is enabled).
struct ServingStats {
  std::size_t submitted = 0;
  std::size_t served_ok = 0;
  std::size_t served_degraded = 0;
  std::size_t shed_queue_full = 0;
  std::size_t shed_deadline = 0;       ///< at admission or in queue
  std::size_t shed_quarantine = 0;
  std::size_t late_completions = 0;    ///< served past deadline -> shed
  std::size_t retries = 0;             ///< retry attempts dispatched
  std::size_t batches = 0;
  double mean_batch = 0.0;
  double span = 0.0;                   ///< last completion - first arrival
  double throughput = 0.0;             ///< served / span
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, max_latency = 0.0;  ///< served

  std::size_t shed() const {
    return shed_queue_full + shed_deadline + shed_quarantine +
           late_completions;
  }
  double shed_rate() const {
    return submitted == 0
               ? 0.0
               : static_cast<double>(shed()) / static_cast<double>(submitted);
  }

  std::string render() const;
};

/// Exact percentile over served-response latencies (q in [0, 1]).
/// Routes through telemetry::percentile_sorted — the repo-wide
/// rank-mass linear-interpolation convention — so ServingStats, the
/// SLO dashboard and the metrics registry agree on every quantile.
double latency_percentile(const std::vector<Response>& responses, double q);

/// Computes the roll-up from a response stream.
ServingStats summarize(const std::vector<Response>& responses);

class EventJournal;  // serve/trace.hpp

/// The scheduler.  Bind it to a pool, submit a trace, run it.
class Scheduler {
 public:
  Scheduler(ChipPool& pool, const ServeConfig& config);

  /// Buffers one request (any order; run() sorts by arrival).  Input
  /// length must match the pool; ids must be unique.
  void submit(Request request);

  /// Attaches a lifecycle-event journal (serve/trace.hpp); every
  /// admission, shed, batch formation, dispatch, attempt, retry,
  /// completion and health transition of subsequent run() calls is
  /// recorded.  Pass nullptr to detach.  The journal observes but
  /// never steers: responses are bit-identical with or without one
  /// (fuzzer contract `serving_trace_identity`).  Caller keeps
  /// ownership and must outlive run().
  void attach_journal(EventJournal* journal) { journal_ = journal; }

  /// Replays every submitted request through the serving path and
  /// returns one Response per request, sorted by id.  Submissions are
  /// consumed; the pool's health state persists across runs.
  std::vector<Response> run();

  /// Stats of the last run().
  const ServingStats& stats() const { return stats_; }

 private:
  ChipPool& pool_;
  ServeConfig config_;
  std::vector<Request> pending_;
  ServingStats stats_;
  EventJournal* journal_ = nullptr;
};

}  // namespace resipe::serve
