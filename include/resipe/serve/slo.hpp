// Service-level objective monitoring for the serving layer.
//
// An SLO is a target on an SLI over a window: "99% of requests get an
// answer" (availability) and "95% of served requests finish within the
// latency target" (latency).  The complement of the objective is the
// *error budget* — the fraction of requests that are allowed to be bad
// before the objective is violated.  `SloMonitor` ingests the
// scheduler's responses (virtual-time, so results are deterministic and
// thread-count invariant), splits them per tenant, and reports:
//
//  * the whole-trace SLI for each objective,
//  * error-budget consumption (bad fraction / allowed fraction; > 1
//    means the objective was violated over the trace),
//  * the *maximum sliding-window burn rate*: the worst
//    bad_fraction / (1 - objective) over any window of config.window
//    virtual seconds, found with a two-pointer sweep.  Burn rate 1
//    means the budget is being spent exactly as fast as it accrues;
//    alerting practice pages on sustained burn well above 1.
//
// Latency percentiles route through telemetry::percentile_sorted — the
// repo-wide percentile convention — so the dashboard, ServingStats and
// the metrics registry can never disagree on what "p99" means.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "resipe/serve/scheduler.hpp"

namespace resipe::serve {

/// Objectives shared by every tenant.  Deliberately NOT part of
/// ServeConfig: SLOs judge a trace after the fact and must never
/// influence scheduling decisions (or the bit-identity contract).
struct SloConfig {
  double window = 1.0;          ///< sliding-window length (virtual s)
  double latency_target = 0.05; ///< "fast enough" bound on latency (s)
  /// Fraction of *served* requests that must meet latency_target.
  double latency_objective = 0.95;
  /// Fraction of *submitted* requests that must be served (not shed).
  double availability_objective = 0.99;
  /// Windows with fewer samples than this are skipped by the burn-rate
  /// sweep — a single bad request in a near-empty window is noise, not
  /// an incident.
  std::size_t min_window_count = 10;

  /// Throws on nonsensical values (objective outside (0, 1), etc.).
  void validate() const;
};

/// Per-tenant scorecard.  `budget_used` > 1 or `burn_max` >> 1 are the
/// alerting signals.
struct SloTenantReport {
  std::uint64_t tenant = 0;
  std::size_t requests = 0;    ///< submitted
  std::size_t served = 0;      ///< got an answer (ok or degraded)
  std::size_t latency_ok = 0;  ///< served within latency_target

  double availability_sli = 1.0;  ///< served / requests
  double latency_sli = 1.0;       ///< latency_ok / served
  /// Whole-trace budget consumption: bad_fraction / (1 - objective).
  double availability_budget_used = 0.0;
  double latency_budget_used = 0.0;
  /// Worst sliding-window burn rate (same ratio, per window).
  double availability_burn_max = 0.0;
  double latency_burn_max = 0.0;

  /// Served-latency percentiles (telemetry::percentile_sorted).
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;

  bool availability_met() const { return availability_budget_used <= 1.0; }
  bool latency_met() const { return latency_budget_used <= 1.0; }
};

/// Full report: one row per tenant plus the all-tenant aggregate.
struct SloReport {
  SloConfig config;
  std::vector<SloTenantReport> tenants;  ///< ascending tenant id
  SloTenantReport total;                 ///< aggregate over every tenant

  /// ASCII dashboard: objectives banner, one row per tenant with
  /// budget-consumption bars and burn rates, verdict column.
  std::string render() const;
};

/// Ingests responses, reports SLIs / budgets / burn.  Not thread-safe;
/// feed it from the (single-threaded) post-run response vector.
class SloMonitor {
 public:
  explicit SloMonitor(const SloConfig& config);

  /// Accounts one response under `tenant`.  Every response counts
  /// toward availability; only served ones count toward latency.
  void ingest(const Response& response, std::uint64_t tenant);

  /// Accounts a whole response vector using each response's own tenant.
  void ingest(const std::vector<Response>& responses);

  /// Scores everything ingested so far.
  SloReport report() const;

  void clear();

 private:
  struct Sample {
    double time = 0.0;  ///< terminal virtual time (completion or shed)
    bool served = false;
    bool latency_ok = false;
    double latency = 0.0;
  };

  SloConfig config_;
  std::map<std::uint64_t, std::vector<Sample>> samples_;
};

}  // namespace resipe::serve
