// Request-lifecycle tracing for the serving layer: a structured event
// journal, causally-linked request traces, and exporters.
//
// Every decision the Scheduler makes about a request already exists as
// a moment in the discrete-event replay — admission or shed, batch
// formation, dispatch to a chip, retry with its exact backoff, the
// canary verdict that quarantined the chip it was about to use.  This
// header turns those moments into first-class, auditable events:
//
//  * `ServeEvent` — one lifecycle edge, stamped with virtual time, the
//    request / batch / chip it touches and the edge-specific payload.
//  * `EventJournal` — a bounded lock-free buffer the scheduler appends
//    to.  Overflow is *counted, never silent*: the journal refuses to
//    overwrite (the stored prefix stays causally complete) and every
//    event beyond capacity increments an explicit drop counter that
//    the audit and both exporters surface.  Appends are a single
//    fetch_add + slot write, safe for concurrent producers — the same
//    substrate the event-driven sparse executor will reuse.
//  * `RequestTrace` / `assemble_traces` — the journal regrouped into
//    one causal span chain per request id.
//  * `audit_trace` — the conservation contract: every request has
//    exactly one terminal event (complete or shed), per-request event
//    order is causal, and the journal's counts reconcile *exactly*
//    with the ServingStats buckets (served_ok/degraded, each shed
//    reason, late completions, batches, retries-by-attempt identity).
//  * `write_events_ndjson` — line-delimited JSON (schema line, one
//    event per line, stats trailer) that tools/trace_check.py
//    validates in CI.
//  * `export_chrome_trace` — replays the journal into the telemetry
//    TraceSession as virtual-time lanes (scheduler queue, one lane per
//    chip, health lane) with flow arrows linking each request's
//    admission -> batch dispatch -> completion, so a serving trace
//    opens directly in chrome://tracing next to the live spans.
//
// Tracing is strictly additive: a Scheduler without an attached
// journal takes one pointer-null branch per edge and produces
// bit-identical responses (fuzzer contract `serving_trace_identity`).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "resipe/serve/scheduler.hpp"

namespace resipe::telemetry {
class TraceSession;
}  // namespace resipe::telemetry

namespace resipe::serve {

/// Sentinel for "no request / no batch attached to this event".
inline constexpr std::uint64_t kNoId =
    std::numeric_limits<std::uint64_t>::max();

/// One lifecycle edge.  The `code`/`value`/`aux` payload is
/// kind-specific; see the field comments.
enum class ServeEventKind : int {
  kAdmit = 0,       ///< request entered the queue (value = depth after;
                    ///< attempt > 0 marks a retry re-admission)
  kShed,            ///< TERMINAL: rejected (code = RejectReason,
                    ///< attempt = attempts consumed)
  kBatchForm,       ///< batch sealed (batch, chip, value = size,
                    ///< code = BatchFillReason)
  kDispatch,        ///< request rode a batch onto a chip (request,
                    ///< batch, chip, attempt = prior attempts)
  kAttemptDone,     ///< one inference attempt finished (request, batch,
                    ///< chip, attempt = attempts now consumed,
                    ///< value = fault-flagged outputs)
  kRetrySchedule,   ///< retry queued (attempt = attempts so far,
                    ///< value = backoff delay s, aux = jitter factor,
                    ///< chip = replica being excluded)
  kComplete,        ///< TERMINAL: served (code = 0 ok / 1 degraded,
                    ///< chip, attempt = attempts, value = fault flags)
  kProbe,           ///< canary verdict (chip, code = 0 clean / 1 fail,
                    ///< value = argmax mismatch, aux = logit RMSE)
  kQuarantine,      ///< chip left the rotation (chip)
  kReadmit,         ///< chip recovered (chip)
};

const char* to_string(ServeEventKind k);

/// Why a batch stopped accumulating and dispatched.
enum class BatchFillReason : int {
  kFull = 0,         ///< reached batch_max
  kWindowExpired,    ///< oldest waiter aged out batch_window
  kWorkConserving,   ///< a freed chip drained the queue early
};

const char* to_string(BatchFillReason r);

/// One structured journal entry.  POD-sized on purpose: recording is a
/// slot write, and the NDJSON/Chrome exporters do all naming offline.
struct ServeEvent {
  double time = 0.0;                ///< virtual seconds
  ServeEventKind kind = ServeEventKind::kAdmit;
  std::uint64_t seq = 0;            ///< journal order (assigned on record)
  std::uint64_t request = kNoId;
  std::uint64_t tenant = 0;
  std::uint64_t batch = kNoId;
  std::size_t chip = kNoChip;
  std::size_t attempt = 0;
  int code = 0;
  double value = 0.0;
  double aux = 0.0;
};

/// Bounded lock-free event buffer.  `record` claims a slot with one
/// atomic fetch_add; once capacity is reached further events bump the
/// drop counter instead of overwriting — the committed prefix is always
/// causally complete and loss is always visible.  Readers (snapshot /
/// exporters / audit) run after producers quiesce, which the
/// single-threaded discrete-event scheduler guarantees by construction.
class EventJournal {
 public:
  /// Default capacity holds ~8 events per request for a 100k-request
  /// trace tail; see docs/observability.md for sizing guidance.
  explicit EventJournal(std::size_t capacity = std::size_t{1} << 20);

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Appends one event (lock-free).  Assigns `seq`; over-capacity
  /// events are counted in dropped() and discarded.
  void record(ServeEvent event) noexcept;

  /// Committed events (<= capacity()).
  std::size_t size() const noexcept;
  /// Events refused because the journal was full.  Non-zero means the
  /// audit can no longer prove conservation — it says so explicitly.
  std::size_t dropped() const noexcept;

  /// Copy of the committed prefix, in journal (seq) order.
  std::vector<ServeEvent> events() const;

  /// Forgets everything and reuses the allocation.
  void clear() noexcept;

 private:
  std::vector<ServeEvent> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The causal span chain of one request, regrouped from the journal.
struct RequestTrace {
  std::uint64_t id = kNoId;
  std::uint64_t tenant = 0;
  bool terminal_seen = false;
  bool served = false;           ///< terminal was kComplete
  bool degraded = false;
  RejectReason reason = RejectReason::kNone;
  std::size_t admits = 0;        ///< first admission + retry re-entries
  std::size_t attempts = 0;      ///< kAttemptDone events
  std::size_t retries_scheduled = 0;
  double first_time = 0.0;       ///< first event (admission decision)
  double terminal_time = 0.0;
  std::vector<ServeEvent> events;  ///< seq-ordered
};

/// Groups journal events by request id (chip-level probe/quarantine
/// events carry no request and are skipped).  Keyed map so iteration
/// order is deterministic.
std::map<std::uint64_t, RequestTrace> assemble_traces(
    const std::vector<ServeEvent>& events);

/// Conservation audit result.  `ok()` only when every check passed AND
/// nothing was dropped; a lossy journal reports itself instead of
/// pretending.
struct TraceAudit {
  std::size_t requests = 0;      ///< distinct request ids seen
  std::size_t terminals = 0;     ///< terminal events seen
  std::size_t events = 0;
  std::size_t dropped = 0;
  std::vector<std::string> issues;

  bool ok() const { return issues.empty(); }
  std::string render() const;
};

/// Verifies the correctness contract of a (journal, stats) pair from
/// one Scheduler::run():
///  1. zero dropped events (else the audit reports exactly that);
///  2. every request id has exactly one terminal event, preceded by a
///     causally-ordered chain (admit first, attempts monotone);
///  3. journal counts reconcile exactly with the ServingStats buckets:
///     submitted, served_ok, served_degraded, shed per reason, late
///     completions, batches, and the attempts identity
///     (#kAttemptDone - #served - #late == stats.retries).
TraceAudit audit_trace(const EventJournal& journal,
                       const ServingStats& stats);

/// Writes the journal as line-delimited JSON: a schema header line
/// (`resipe.serve.trace/1`), one event object per line, and a summary
/// trailer carrying the ServingStats buckets plus the drop counter so
/// a validator can reconcile without any side channel.
void write_events_ndjson(const EventJournal& journal,
                         const ServingStats& stats, std::ostream& os);
void write_events_ndjson_file(const EventJournal& journal,
                              const ServingStats& stats,
                              const std::string& path);

/// Synthetic lane ids used by the Chrome export (pid kServePid).
inline constexpr std::uint32_t kServePid = 2;
inline constexpr std::uint32_t kSchedulerLane = 1;
inline constexpr std::uint32_t kHealthLane = 2;
inline constexpr std::uint32_t kChipLaneBase = 10;

/// Replays the journal into `session` as virtual-time events under
/// pid kServePid: queue-wait spans on the scheduler lane, batch spans
/// on per-chip lanes, instants for sheds/probe failures/state
/// transitions, a queue-depth counter track, and one flow arrow per
/// request linking admission -> dispatch -> completion.  Virtual
/// seconds map to trace nanoseconds (1 s = 1e9 ns).  Lanes are named
/// via TraceSession metadata events.
void export_chrome_trace(const EventJournal& journal,
                         telemetry::TraceSession& session);

}  // namespace resipe::serve
