// Health-checked chip pool: N independently-programmed replicas of one
// lowered network, with canary-based quarantine and readmission.
//
// Each pool member is a full ResipeNetwork lowered from the same
// trained model but with its own programming / fault seed — N distinct
// pieces of silicon serving one model, the way a production fleet
// replicates a checkpoint across accelerators.  A golden reference
// (same model, same circuit operating point, reliability disabled) is
// lowered once; periodic probe rounds push a fixed canary batch through
// every replica and compare against the golden logits.  A replica whose
// canaries drift past the health thresholds for `quarantine_after`
// consecutive rounds is quarantined — the scheduler stops routing to it
// and its load fails over to the healthy replicas — and re-admitted
// after `readmit_after` consecutive clean rounds.
//
// The state machine is pure and deterministic: probe verdicts depend
// only on the programmed silicon (itself a pure function of the seeds),
// so a serving trace replays bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "resipe/nn/model.hpp"
#include "resipe/nn/tensor.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/serve/config.hpp"

namespace resipe::serve {

/// Serving availability of one pool member.
enum class ChipState {
  kHealthy,      ///< in the dispatch rotation
  kQuarantined,  ///< failed health checks; excluded until it recovers
};

const char* to_string(ChipState s);

/// Health bookkeeping of one pool member.
struct ChipStatus {
  ChipState state = ChipState::kHealthy;
  std::size_t consecutive_failed = 0;  ///< failing probe rounds in a row
  std::size_t consecutive_clean = 0;   ///< clean probe rounds in a row
  std::size_t probes = 0;              ///< probe rounds run
  std::size_t quarantines = 0;         ///< transitions into quarantine
  std::size_t readmissions = 0;        ///< transitions back to healthy
  std::size_t batches_served = 0;
  std::size_t requests_served = 0;
  double last_canary_mismatch = 0.0;   ///< argmax disagreement fraction
  double last_canary_rmse = 0.0;       ///< logit RMS deviation vs golden
};

/// A pool of replica chips serving one model.
class ChipPool {
 public:
  /// Lowers one replica per entry of `replica_configs` (each config is
  /// validated; vary program_seed / reliability.fault_seed per entry to
  /// model distinct silicon).  `calibration` calibrates every lowering
  /// and supplies the canary images.  The golden reference is lowered
  /// from `replica_configs[0]` with reliability disabled.
  ChipPool(nn::Sequential& model, const nn::Tensor& calibration,
           const std::vector<resipe_core::EngineConfig>& replica_configs,
           const ServeConfig& config);

  std::size_t size() const { return chips_.size(); }
  std::size_t healthy_count() const;
  const ChipStatus& status(std::size_t chip) const;

  /// Flattened per-sample input width the pool expects.
  std::size_t input_size() const { return input_size_; }
  /// Shape of one sample (calibration shape without the batch axis).
  const std::vector<std::size_t>& input_shape() const { return input_shape_; }

  /// Lowest-index healthy chip, skipping `exclude` when another healthy
  /// chip exists; returns size() when every chip is quarantined.
  std::size_t pick_healthy(std::size_t exclude) const;

  /// Runs `batch` ([n, input_size] row-major) through the replica and
  /// returns its logits.  Deterministic and bit-identical at any thread
  /// count (the engine's batched forward path).
  nn::Tensor infer(std::size_t chip, const nn::Tensor& batch);

  /// Untrusted logical outputs of the replica's final layer roll-up
  /// (the PR 2 graceful-degradation flags); 0 for clean silicon.
  std::size_t degraded_outputs(std::size_t chip) const;

  /// Virtual service latency of one batch of `n` on this replica: the
  /// chip-level pipeline fill latency plus (n - 1) initiation
  /// intervals (see resipe_core::map_network).
  double service_time(std::size_t chip, std::size_t n) const;

  /// Probes every replica (quarantined ones included — that is how they
  /// recover) against the golden canary logits and steps the health
  /// state machine.  Returns the number of state transitions.
  std::size_t run_probe_round();

  /// Operator override: immediately quarantines a chip (manual drain).
  /// Recovery still requires `readmit_after` clean probe rounds.
  void force_quarantine(std::size_t chip);

  /// The canary batch and golden logits the probes compare against
  /// (exposed for tests and the serving report).
  const nn::Tensor& canaries() const { return canaries_; }
  const nn::Tensor& golden_logits() const { return golden_logits_; }

  /// Direct access to a replica's network (tests, accuracy studies).
  const resipe_core::ResipeNetwork& network(std::size_t chip) const;

  const ServeConfig& config() const { return config_; }

 private:
  struct Chip {
    std::unique_ptr<resipe_core::ResipeNetwork> network;
    ChipStatus status;
    double fill_latency = 0.0;        // s, one input through the pipeline
    double initiation_interval = 0.0; // s, between pipelined inputs
  };

  /// One probe: canary forward + compare; updates mismatch/rmse fields
  /// and returns true when the probe is clean.
  bool probe(Chip& chip);

  ServeConfig config_;
  std::vector<std::size_t> input_shape_;
  std::size_t input_size_ = 0;
  std::vector<Chip> chips_;
  std::unique_ptr<resipe_core::ResipeNetwork> golden_;
  nn::Tensor canaries_;
  nn::Tensor golden_logits_;
};

}  // namespace resipe::serve
