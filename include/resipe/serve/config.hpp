// Serving-layer configuration: admission control, batching, deadlines,
// retry/backoff and chip-pool health checking.
//
// Header-only on purpose: `EngineConfig` embeds a ServeConfig (so the
// verify fuzzer generates and validates serving knobs exactly like
// every other engine knob) while the serving *runtime* lives in the
// resipe_serve library, which depends on resipe_core — the dependency
// must not run the other way.  None of these knobs is read by the
// inference engine itself: a ServeConfig cannot change logits, only how
// requests are queued, batched, retried and routed above the engine.
//
// Every duration is in *virtual* seconds — the scheduler runs on a
// deterministic virtual clock (see scheduler.hpp), so a serving trace
// is a pure function of (traffic, pool, config) and replays
// bit-identically at any thread count.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "resipe/common/error.hpp"

namespace resipe::serve {

/// Health-checking policy of the chip pool: periodic canary inferences
/// compared against golden logits captured from a fault-free reference
/// lowering of the same model.
struct HealthConfig {
  /// Virtual seconds between probe rounds (every pool member is probed
  /// each round).  Must be positive.
  double canary_period = 2e-3;
  /// Canary inputs per probe round (drawn once, deterministically, from
  /// the pool's calibration set).  At least 1.
  std::size_t canary_images = 8;
  /// A probe fails when the fraction of canaries whose argmax disagrees
  /// with the golden reference exceeds this tolerance...
  double max_canary_mismatch = 0.25;
  /// ...or when the RMS deviation of canary logits from the golden
  /// logits exceeds this limit (absolute, logit units; infinity = only
  /// the argmax criterion applies).
  double logit_rmse_limit = 0.5;
  /// Consecutive failing probe rounds before the chip is quarantined.
  std::size_t quarantine_after = 1;
  /// Consecutive clean probe rounds before a quarantined chip is
  /// re-admitted to the serving rotation.
  std::size_t readmit_after = 3;

  void validate() const {
    RESIPE_REQUIRE(std::isfinite(canary_period) && canary_period > 0.0,
                   "health canary period must be positive and finite, got "
                       << canary_period);
    RESIPE_REQUIRE(canary_images >= 1,
                   "health probes need at least one canary image");
    RESIPE_REQUIRE(max_canary_mismatch >= 0.0 && max_canary_mismatch <= 1.0,
                   "canary mismatch tolerance must be in [0, 1], got "
                       << max_canary_mismatch);
    RESIPE_REQUIRE(!(logit_rmse_limit < 0.0) &&
                       !std::isnan(logit_rmse_limit),
                   "canary logit RMSE limit must be non-negative, got "
                       << logit_rmse_limit);
    RESIPE_REQUIRE(quarantine_after >= 1,
                   "quarantine threshold must be at least one failing round");
    RESIPE_REQUIRE(readmit_after >= 1,
                   "readmission threshold must be at least one clean round");
  }
};

/// Scheduler + admission + retry knobs.  validate() defines the legal
/// domain; the verify generator draws only inside it (the PR 5
/// generator-range == validate-domain invariant).
struct ServeConfig {
  /// Bounded request queue: arrivals beyond this depth are shed with an
  /// explicit Rejected{kQueueFull} result, never silently dropped.
  /// Must be positive — a zero-capacity queue cannot admit anything.
  std::size_t queue_capacity = 64;

  /// Largest batch handed to one chip (feeds
  /// ProgrammedMatrix::forward_batch / FastMvm::mvm_times_batch).
  std::size_t batch_max = 8;

  /// How long (virtual s) an open batch waits for more requests before
  /// dispatching partially full.  0 = dispatch immediately.
  double batch_window = 200e-6;

  /// Deadline granted to requests that do not carry their own, relative
  /// to arrival (virtual s).  Expired requests are shed, not served.
  double default_deadline = 20e-3;

  /// Bounded retry budget when a response carries fault-flagged outputs
  /// (ProgrammedMatrix::output_ok): total attempts = retry_max + 1.
  /// Kept small and bounded — runaway retries are an outage amplifier.
  int retry_max = 2;
  static constexpr int kRetryCeiling = 16;

  /// Exponential backoff between retry attempts: the n-th retry waits
  /// min(backoff_max, backoff_base * backoff_multiplier^(n-1)) scaled
  /// by (1 + U[0, backoff_jitter)) with a deterministic per-(request,
  /// attempt) jitter stream derived from `seed`.
  double backoff_base = 100e-6;
  double backoff_multiplier = 2.0;
  double backoff_max = 5e-3;
  double backoff_jitter = 0.1;

  /// Chip-pool health checking.
  HealthConfig health;

  /// Seed of the serving-side randomness (backoff jitter, canary
  /// selection).  Independent of the engine's program/fault seeds.
  std::uint64_t seed = 0x5E12F00Dull;

  void validate() const {
    RESIPE_REQUIRE(queue_capacity > 0,
                   "serve queue capacity must be positive, got "
                       << queue_capacity);
    RESIPE_REQUIRE(batch_max > 0,
                   "serve batch size must be positive, got " << batch_max);
    RESIPE_REQUIRE(std::isfinite(batch_window) && batch_window >= 0.0,
                   "serve batch window must be non-negative and finite, got "
                       << batch_window);
    RESIPE_REQUIRE(std::isfinite(default_deadline) && default_deadline > 0.0,
                   "serve default deadline must be positive and finite, got "
                       << default_deadline);
    RESIPE_REQUIRE(retry_max >= 0 && retry_max <= kRetryCeiling,
                   "serve retry budget must be in [0, " << kRetryCeiling
                       << "], got " << retry_max);
    RESIPE_REQUIRE(std::isfinite(backoff_base) && backoff_base > 0.0,
                   "serve backoff base must be positive and finite, got "
                       << backoff_base);
    RESIPE_REQUIRE(std::isfinite(backoff_multiplier) &&
                       backoff_multiplier >= 1.0,
                   "serve backoff multiplier must be >= 1, got "
                       << backoff_multiplier);
    RESIPE_REQUIRE(std::isfinite(backoff_max) &&
                       backoff_max >= backoff_base,
                   "serve backoff cap must be >= the base, got "
                       << backoff_max << " < " << backoff_base);
    RESIPE_REQUIRE(backoff_jitter >= 0.0 && backoff_jitter <= 1.0,
                   "serve backoff jitter must be in [0, 1], got "
                       << backoff_jitter);
    health.validate();
  }
};

}  // namespace resipe::serve
