// Seeded generation of randomized verification cases.
//
// Every case is a pure function of a (schema_version, seed) pair: the
// generator derives all draws from hash_seed(seed, kSchemaVersion), so
// a failure report is replayable forever from two integers — no stored
// blobs, no environment dependence.  Bump kSchemaVersion whenever the
// sampling *distribution* changes (new knob, new range): old seeds then
// keep reproducing under the old meaning via the committed corpus while
// fresh fuzz runs explore the new space.
//
// EngineConfig::validate() defines the valid domain — the generator
// only emits configs that pass it (asserted at generation time), so a
// contract failure is always an engine bug, never an out-of-contract
// input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resipe/resipe/network.hpp"

namespace resipe::verify {

/// Version of the generator's sampling schema.
/// v2: added the serving-layer draws (ServeConfig) at the end of the
/// stream — earlier draws are unchanged, so v1 corpus entries replay
/// from their serialized specs exactly as before.
/// v3: appended the event-engine flag draw (EventConfig::enabled)
/// after the v2 serving draws, same append-only discipline.
inline constexpr std::uint32_t kSchemaVersion = 3;

/// Replayable identity of one generated case.
struct CaseDescriptor {
  std::uint32_t schema_version = kSchemaVersion;
  std::uint64_t seed = 0;
};

/// One concrete verification case: an engine configuration plus the
/// geometry / network shape the contracts exercise it with.
struct CaseSpec {
  CaseDescriptor descriptor;

  /// Engine configuration under test (always passes validate()).
  resipe_core::EngineConfig config;

  /// Raw crossbar geometry for tile-level contracts.
  std::size_t rows = 4;
  std::size_t cols = 4;

  /// Network shape for engine-level contracts: input width, hidden
  /// layer widths (possibly empty), output class count, batch size.
  std::size_t inputs = 4;
  std::vector<std::size_t> layers;
  std::size_t classes = 2;
  std::size_t batch = 1;

  /// One-line human-readable description (for reports and shrink logs).
  std::string summary() const;
};

/// Generates the case identified by `descriptor` (deterministic).
/// Throws resipe::Error for unknown schema versions.
CaseSpec generate_case(const CaseDescriptor& descriptor);

}  // namespace resipe::verify
