// Greedy failure shrinker.
//
// A fuzz violation at xbar=29x11 with three hidden layers, faults,
// drift and IR drop is unreadable; the same violation at 2x2 with every
// flag off names the culprit.  The shrinker repeatedly tries a fixed
// catalogue of simplifying moves (shrink geometry, drop layers, disable
// subsystems, zero non-idealities) and keeps any move after which the
// *same* contract still fails — classic delta debugging, greedy
// restart-on-success.  Moves preserve EngineConfig::validate()
// validity by construction, so a shrunk case is always replayable.
#pragma once

#include <cstddef>
#include <string>

#include "resipe/verify/contracts.hpp"
#include "resipe/verify/generators.hpp"

namespace resipe::verify {

/// Outcome of shrinking one failing case.
struct ShrinkResult {
  CaseSpec spec;            ///< the minimal failing case found
  std::size_t steps = 0;    ///< accepted moves
  std::size_t attempts = 0; ///< contract evaluations spent
  std::string detail;       ///< failure detail of the minimal case
  std::string log;          ///< one line per accepted move
};

/// Shrinks `failing` against `contract` (which must currently fail on
/// it — throws otherwise).  `max_attempts` bounds the total number of
/// contract evaluations.
ShrinkResult shrink_case(const CaseSpec& failing, const Contract& contract,
                         std::size_t max_attempts = 400);

}  // namespace resipe::verify
