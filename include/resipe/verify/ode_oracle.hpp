// Adaptive Runge-Kutta oracle for the closed-form circuit stages.
//
// Every behavioral stage in this repo evaluates an exact first-order RC
// closed form; the transient module already cross-checks them with
// fixed-step RK4.  A fixed-step integrator shares a failure mode with
// the closed forms (both are hand-derived against the same topology),
// so the verification harness adds a third, independent method: an
// embedded Cash-Karp RK4(5) pair with proportional step control.  The
// oracle knows nothing about exponentials — it only sees the
// right-hand-side hooks exported by resipe/circuits/transient.hpp —
// and its error estimate is self-reported, so agreement with the closed
// form is evidence from a genuinely different derivation path.
#pragma once

#include <cstddef>
#include <functional>

namespace resipe::verify {

/// Controls for the adaptive integrator.
struct AdaptiveOdeOptions {
  double rel_tol = 1e-10;   ///< per-step relative error target
  double abs_tol = 1e-14;   ///< per-step absolute error floor
  double initial_step = 0.0;  ///< 0 = (t1 - t0) / 64
  std::size_t max_steps = 200000;  ///< hard cap (throws when exceeded)
};

/// Statistics of one integration (for contract detail strings).
struct AdaptiveOdeResult {
  double value = 0.0;        ///< v(t1)
  std::size_t steps = 0;     ///< accepted steps
  std::size_t rejected = 0;  ///< rejected (halved) steps
};

/// Integrates dv/dt = f(t, v) from (t0, v0) to t1 with the Cash-Karp
/// embedded RK4(5) pair and adaptive step-size control.  Requires
/// t1 >= t0; throws resipe::Error on invalid intervals or when the
/// step budget is exhausted.
AdaptiveOdeResult integrate_adaptive(
    const std::function<double(double, double)>& f, double v0, double t0,
    double t1, const AdaptiveOdeOptions& options = {});

}  // namespace resipe::verify
