// Fuzz driver: generate -> check every contract -> shrink -> report.
//
// One run walks a contiguous seed range, so any failure it prints is
// replayable from (schema_version, seed) alone; with a repro directory
// set, each violation is also written as a self-contained JSON record
// (see serialize.hpp) ready to commit into tests/corpus/.  The report
// renders per-contract pass/skip/fail tallies plus a machine-readable
// BENCH_JSON line for trend tracking in CI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "resipe/verify/contracts.hpp"
#include "resipe/verify/generators.hpp"

namespace resipe::verify {

/// Knobs of one fuzz run.
struct FuzzOptions {
  std::size_t cases = 100;       ///< generated cases (seed0 .. seed0+cases)
  double budget_s = 0.0;         ///< wall-clock budget; 0 = unlimited
  std::uint64_t seed0 = 1;       ///< first seed of the range
  std::string contract_filter;   ///< run only this contract ("" = all)
  std::string repro_dir;         ///< write repro JSON here ("" = don't)
  bool shrink = true;            ///< shrink failures before reporting
  std::size_t max_failures = 10; ///< stop after this many violations
};

/// Per-contract tally.
struct ContractStats {
  std::size_t pass = 0;
  std::size_t fail = 0;
  std::size_t skip = 0;
};

/// One recorded violation.
struct FuzzFailure {
  std::string contract;
  CaseSpec original;       ///< as generated
  CaseSpec shrunk;         ///< after shrinking (== original when disabled)
  std::size_t shrink_steps = 0;
  std::string detail;      ///< failure description (of the shrunk case)
  std::string repro_path;  ///< written JSON record ("" when not written)
};

/// Result of a fuzz run.
struct FuzzReport {
  std::size_t cases_run = 0;
  double wall_s = 0.0;
  bool budget_exhausted = false;
  std::map<std::string, ContractStats> contracts;
  std::vector<FuzzFailure> failures;

  std::size_t checks() const;
  std::size_t violations() const { return failures.size(); }

  /// Multi-line human-readable summary.
  std::string render() const;
  /// One BENCH_JSON line (cases/s, check and violation counts).
  std::string bench_json() const;
};

/// Runs the fuzz campaign described by `options`.  Throws on unknown
/// contract filters or unwritable repro directories.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Re-checks one serialized case against its recorded contract; used by
/// the corpus replayer and resipe_fuzz --replay.
ContractResult replay_case(const CaseSpec& spec,
                           const std::string& contract_name);

}  // namespace resipe::verify
