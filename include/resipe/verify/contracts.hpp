// Oracle contracts: named, machine-checkable invariants of the engine.
//
// A contract takes a generated CaseSpec and independently re-derives
// something the engine promises — a differential oracle (FastMvm vs
// the faithful tile, analog vs digital MVM, closed form vs adaptive
// integration), a metamorphic property (permutation, monotonicity,
// zero-input), or an identity claim the documentation makes (batched ==
// single, probed == plain, thread-count independence, off-flag
// bit-identity).  The registry is the single source the fuzzer, the
// shrinker and the regression-corpus replayer all execute, so a
// reproducer found by one is meaningful to the others.
//
// Contracts never mutate the spec and derive all randomness from
// hash_seed(spec seed, per-contract stream), so a (spec, contract)
// pair has exactly one verdict.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "resipe/verify/generators.hpp"

namespace resipe::verify {

/// Verdict of one contract on one case.
struct ContractResult {
  bool pass = true;
  bool skipped = false;
  std::string detail;  ///< failure description / skip reason

  bool violated() const { return !pass && !skipped; }

  static ContractResult ok() { return {}; }
  static ContractResult skip(std::string why) {
    return {true, true, std::move(why)};
  }
  static ContractResult fail(std::string why) {
    return {false, false, std::move(why)};
  }
};

/// One named invariant.
struct Contract {
  std::string name;         ///< stable identifier (repro records key on it)
  std::string description;  ///< one-line statement of the invariant
  std::function<ContractResult(const CaseSpec&)> check;
};

/// All registered contracts, in a stable order.
const std::vector<Contract>& contract_registry();

/// Looks a contract up by name; nullptr when unknown.
const Contract* find_contract(const std::string& name);

// --- deliberate bug injection ------------------------------------------
//
// The harness's own acceptance test: an injected, realistic bug (the
// classic off-by-one dropping the last row from the FastMvm current
// sum) must be caught by the differential contracts and shrunk to a
// tiny reproducer.  The injection lives inside the *contract's* model
// construction — production code is never patched — and is off unless
// explicitly armed (resipe_fuzz --inject-bug / the self-test).

enum class InjectedBug {
  kNone = 0,
  /// fast_vs_tile builds its FastMvm with the last conductance row
  /// zeroed, emulating `for (r = 0; r < rows - 1; ...)` in the row sum.
  kFastMvmRowDrop,
};

/// Arms/disarms the injected bug (process-global; not thread-safe
/// against concurrent fuzz runs — arm it before run_fuzz).
void set_injected_bug(InjectedBug bug);
InjectedBug injected_bug();

}  // namespace resipe::verify
