// Reproducer records: self-contained serialization of a (CaseSpec,
// contract) pair.
//
// A fuzz failure is only worth finding once: the shrinker's minimal
// spec is written as a flat JSON object that the corpus replayer (and a
// human) can reconstruct exactly — every field the contracts read is
// serialized explicitly, so a repro keeps working even after the
// generator's sampling schema moves on.  64-bit seeds are emitted as
// JSON strings (a double-typed number would corrupt them past 2^53).
#pragma once

#include <string>

#include "resipe/verify/generators.hpp"

namespace resipe::verify {

/// One failure reproducer: the (possibly shrunk) case plus the contract
/// it violates.
struct ReproRecord {
  CaseSpec spec;
  std::string contract;  ///< contract name (see contract_registry())
  std::string detail;    ///< failure description at record time
};

/// Serializes a record to a flat JSON object (stable key order).
std::string repro_to_json(const ReproRecord& record);

/// Parses a record written by repro_to_json.  Unknown keys throw
/// (a repro that silently drops fields would replay the wrong case);
/// missing keys keep the field's default.
ReproRecord repro_from_json(const std::string& json);

/// A paste-ready C++ snippet reconstructing the case and running the
/// contract — for bug reports and commit messages.
std::string repro_snippet(const ReproRecord& record);

}  // namespace resipe::verify
