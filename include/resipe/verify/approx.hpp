// Floating-point comparison primitives shared by the oracle contracts
// and the test suite.
//
// The repo's invariants come in two strengths: *bit-identity* (two code
// paths promise the same arithmetic — compare with == or ulp_distance)
// and *bounded-error* (two algebraically-equal formulations differ only
// by rounding — compare relatively).  Ad-hoc absolute EXPECT_NEAR
// tolerances conflate the two and silently loosen as magnitudes shrink;
// these helpers make the intended strength explicit.  Header-only apart
// from the failure formatter so the contracts can stay allocation-free
// on the passing path.
#pragma once

#include <cstdint>
#include <string>

namespace resipe::verify {

/// Number of representable doubles strictly between a and b (0 when
/// a == b, including -0.0 vs +0.0).  Returns UINT64_MAX when either
/// argument is NaN or the two differ in sign (crossing zero is not a
/// small rounding step).
std::uint64_t ulp_distance(double a, double b);

/// True when |a - b| <= abs_tol or |a - b| <= rel_tol * max(|a|, |b|).
/// NaN never matches; equal infinities do.
bool approx_rel(double a, double b, double rel_tol, double abs_tol = 0.0);

/// Human-readable mismatch description: values, absolute and relative
/// difference, ULP distance.  For contract detail strings and test
/// failure messages.
std::string describe_mismatch(double a, double b);

}  // namespace resipe::verify
