// Wire-resistance (IR-drop) model.
//
// The ideal crossbar treats wordlines and bitlines as perfect
// conductors.  Real metal lines add a per-segment resistance, so a cell
// far from the drivers sees a degraded effective conductance.  We use
// the standard first-order series approximation (as in NeuroSim-class
// estimators): cell (i, j) accumulates i wordline segments and j
// bitline segments in series with the device,
//
//   G_eff(i, j) = 1 / (1/G_ij + i * r_wl + j * r_bl)
//
// which captures the dominant position-dependent attenuation without a
// full nodal solve.  The full solve matters for >= 256-wide arrays;
// ReSiPE uses 32 x 32 where this approximation is within a couple of
// percent.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "resipe/circuits/column_output_generator.hpp"
#include "resipe/crossbar/crossbar.hpp"

namespace resipe::crossbar {

/// Interconnect parasitics of one crossbar tile.
struct WireModel {
  /// Resistance of one wordline segment between adjacent cells (ohm).
  /// ~2.5 ohm/segment is typical for minimum-pitch M2 at 65 nm.
  double r_wordline_segment = 2.5;
  /// Resistance of one bitline segment between adjacent cells (ohm).
  double r_bitline_segment = 2.5;

  /// Effective cell conductance at position (row, col) given its
  /// nominal effective conductance `g_cell`.
  double effective_g(double g_cell, std::size_t row, std::size_t col) const;
};

/// Column drives including wire IR-drop degradation.
std::vector<circuits::ColumnDrive> drives_with_ir_drop(
    const Crossbar& xbar, std::span<const double> v_wl,
    const WireModel& wires);

/// Worst-case relative conductance attenuation across the array (the
/// far corner cell) — a quick figure of merit for sizing arrays.
double worst_case_attenuation(const Crossbar& xbar, const WireModel& wires);

}  // namespace resipe::crossbar
