// Weight-matrix -> conductance mapping strategies.
//
// Neural-network weights are signed reals; ReRAM conductances are
// positive.  Two standard mappings are provided:
//
//  * kDifferentialPair — every logical column j becomes a (G+, G-)
//    column pair; positive weight goes to G+, negative magnitude to
//    G-, and the logical output is out+ - out-.  Doubles the column
//    count.  Small weights sit at G_min on both sides, which keeps
//    the absolute process-variation noise on the weight small — the
//    most robust strategy (see bench_ablation_mapping); default.
//  * kComplementaryPair — also a (G+, G-) pair, but programmed
//    complementarily around the window midpoint: G± = mid ± w/2*span.
//    The pair's combined loading (G+ + G- per cell) is weight
//    independent, which balances the COG saturation factors of the
//    two columns; however every weight sits mid-window, so variation
//    noise is amplified for small weights.
//  * kOffsetColumn — weights are shifted to [0, 1]; one extra shared
//    reference column carries the offset (all cells at the conductance
//    encoding the shift), and the logical output is out_j - out_ref.
//    Only one extra column, slightly worse SNR.
//
// Both strategies normalize by the largest |w| in the matrix so the
// full conductance window is used; the scale factor is reported so
// downstream layers can undo it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "resipe/device/reram.hpp"
#include "resipe/reliability/fault_model.hpp"

namespace resipe::crossbar {

enum class SignedMapping {
  kDifferentialPair,
  kComplementaryPair,
  kOffsetColumn,
};

/// Human-readable strategy name.
const char* to_string(SignedMapping strategy);

/// Result of mapping a logical weight matrix onto conductance targets.
struct MappedWeights {
  std::size_t rows = 0;           ///< physical rows (== logical rows)
  std::size_t cols = 0;           ///< physical columns
  std::vector<double> g_targets;  ///< row-major physical conductances

  SignedMapping strategy = SignedMapping::kDifferentialPair;
  std::size_t logical_cols = 0;

  /// w = scale * (g - g_offset_equivalent); the factor converting one
  /// unit of (G+ - G-) difference (siemens) back into weight units.
  double weight_per_siemens = 0.0;

  /// For kOffsetColumn: index of the reference column; unused (npos)
  /// for differential pairs.
  std::size_t reference_col = static_cast<std::size_t>(-1);

  /// Physical column(s) carrying logical column j.
  std::size_t plus_col(std::size_t logical_j) const;
  std::size_t minus_col(std::size_t logical_j) const;
};

/// Maps a row-major `rows x logical_cols` signed weight matrix onto
/// conductance targets for the given device spec.  `w_clip`, when
/// positive, overrides the normalization scale (weights are clipped to
/// [-w_clip, +w_clip]); otherwise max |w| is used (or 1.0 for an
/// all-zero matrix).
MappedWeights map_weights(std::span<const double> weights, std::size_t rows,
                          std::size_t logical_cols,
                          const device::ReramSpec& spec,
                          SignedMapping strategy, double w_clip = 0.0);

/// Reconstructs the logical weight matrix a mapped + programmed
/// crossbar actually realizes (inverse of map_weights using programmed
/// conductances).  Used in tests to bound mapping error.
std::vector<double> unmap_weights(const MappedWeights& mapping,
                                  std::span<const double> g_programmed);

/// Fault-aware column placement inside one tile.
///
/// A tile provides `detected.cols()` physical column slots; the first
/// `data_cols` are home slots of the mapped weight columns, the rest
/// are spares.  Given a detected fault map, the planner
///  1. remaps faulty data columns onto clean spare slots (most
///     important columns first) — classic spare-column redundancy;
///  2. when spares run out, swaps remaining high-importance faulty
///     columns with clean low-importance data columns so the damage
///     lands on the weights that matter least;
///  3. reports the data columns left on faulty slots as `unrepaired`
///     so the MVM path can flag their results (graceful degradation).
///
/// `group` is the remap granularity in physical columns: 2 for paired
/// mappings (a (G+, G-) pair moves together), 1 otherwise.
struct ColumnRemapPlan {
  std::size_t group = 1;
  std::size_t data_cols = 0;
  std::size_t total_cols = 0;
  /// Physical slot assigned to each data column (size data_cols);
  /// identity when nothing needed remapping.
  std::vector<std::size_t> slot_of_col;
  /// Data columns whose assigned slot still contains detected faults.
  std::vector<std::size_t> unrepaired;
  std::size_t spares_used = 0;    ///< spare columns consumed
  std::size_t remapped_cols = 0;  ///< data columns moved off their home slot

  bool identity() const { return remapped_cols == 0; }
};

/// Plans the remap.  `col_importance` (size data_cols, optional) is the
/// weight magnitude carried by each data column; when empty, columns
/// are treated as equally important and only spare replacement (no
/// swapping) happens.  `allow_swaps` disables step 2.
ColumnRemapPlan plan_column_remap(const reliability::FaultMap& detected,
                                  std::size_t data_cols, std::size_t group,
                                  std::span<const double> col_importance = {},
                                  bool allow_swaps = true);

}  // namespace resipe::crossbar
