// ReRAM crossbar array.
//
// An M x N array of 1T1R cells.  During the computation stage every
// wordline i holds a constant voltage V_i (from the GD) and every cell
// (i, j) connects the COG capacitor of column j to V_i through its
// conductance G_ij, so the column's driving network reduces to the
// Thevenin equivalent of Eq. (2):
//
//   Veq_j = sum_i(V_i G_ij) / sum_i(G_ij),   Req_j = 1 / sum_i(G_ij)
//
// Note the physically-important detail: cells whose wordline is held at
// 0 V still contribute their conductance to the divider — a grounded
// row *pulls down* the column voltage, it does not disappear.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "resipe/circuits/column_output_generator.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/reliability/fault_mapper.hpp"
#include "resipe/reliability/fault_model.hpp"

namespace resipe::crossbar {

/// Behavioral M x N 1T1R crossbar.
class Crossbar {
 public:
  /// Creates an unprogrammed (all cells at 0 S) array.
  Crossbar(std::size_t rows, std::size_t cols, device::ReramSpec spec);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const device::ReramSpec& spec() const { return spec_; }

  /// Programs every cell from a row-major conductance target matrix
  /// (siemens).  Applies level quantization, write-verify residue and
  /// static process variation per the spec.
  void program(std::span<const double> g_targets, Rng& rng);

  /// Programs a single cell.
  void program_cell(std::size_t row, std::size_t col, double g_target,
                    Rng& rng);

  /// Injects permanent stuck-at hard faults: marked cells are pinned at
  /// their rail and later programming cannot move them.
  void inject_faults(const reliability::FaultMap& map);

  /// Cells carrying an injected/worn-out permanent fault.
  std::size_t hard_fault_count() const;
  bool cell_hard_faulted(std::size_t row, std::size_t col) const;

  /// Per-column health: true when the column has no hard-faulted cell
  /// — the graceful-degradation flag consumers check before trusting a
  /// column's MVM result.
  std::vector<bool> healthy_columns() const;

  /// Programmed (static) conductance of a cell.
  double g(std::size_t row, std::size_t col) const;

  /// Conductance of a cell as seen from the bitline: programmed value
  /// through the 1T1R access transistor.
  double effective_g(std::size_t row, std::size_t col) const;

  /// Total effective conductance of a column — the quantity that must
  /// stay <= 1.6 mS for the charging of Ccog to remain quasi-linear
  /// (Sec. III-D).
  double column_total_g(std::size_t col) const;

  /// Thevenin equivalent of one column for the given wordline voltages
  /// (size == rows()).  Deterministic (no read noise).
  circuits::ColumnDrive column_drive(std::size_t col,
                                     std::span<const double> v_wl) const;

  /// All column drives at once.
  std::vector<circuits::ColumnDrive> drives(
      std::span<const double> v_wl) const;

  /// Column drives with fresh per-cell read noise drawn from `rng`
  /// (cycle-to-cycle variation).
  std::vector<circuits::ColumnDrive> drives_noisy(
      std::span<const double> v_wl, Rng& rng) const;

  /// Ideal MVM for reference: y_j = sum_i(V_i * G_ij) using effective
  /// conductances, with no RC dynamics.  Units: volts * siemens = amps.
  std::vector<double> ideal_mvm(std::span<const double> v_wl) const;

  /// Silicon area of the array (cells only).
  double area() const;

  /// Energy dissipated inside the array while the computation stage
  /// holds the wordlines at `v_wl` for `duration` seconds with each
  /// column capacitor settled near its Veq: the static current through
  /// each cell is G_ij * (V_i - Veq_j).
  double compute_energy(std::span<const double> v_wl, double duration) const;

  /// Energy dissipated when the bitlines are held at virtual ground
  /// (level-based / PWM / rate-coding readout): each cell burns
  /// G_ij * V_i^2 for `duration` seconds.
  double static_read_energy(std::span<const double> v_wl,
                            double duration) const;

 private:
  const device::ReramCell& cell(std::size_t row, std::size_t col) const;
  device::ReramCell& cell(std::size_t row, std::size_t col);

  std::size_t rows_;
  std::size_t cols_;
  device::ReramSpec spec_;
  std::vector<device::ReramCell> cells_;  // row-major
};

/// A crossbar programmed with a deterministic mid-window conductance
/// spread — the "fully utilized representative array" the Table II
/// designs share, so every baseline sees identical device loading.
Crossbar make_representative(std::size_t rows, std::size_t cols,
                             const device::ReramSpec& spec,
                             std::uint64_t seed);

/// Runs a march test over `xbar` (reliability::FaultMapper): writes the
/// low then high background pattern through the real device model and
/// classifies each cell from noisy readbacks.  Destructive — run it
/// before weights are programmed.
reliability::FaultMap march_fault_map(
    Crossbar& xbar, Rng& rng,
    const reliability::FaultMapperConfig& config = {});

}  // namespace resipe::crossbar
