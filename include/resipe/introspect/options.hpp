// Knobs for the inference-introspection subsystem.
//
// This header is intentionally dependency-free so resipe_core can embed
// the options in EngineConfig without a link-time dependency on the
// introspect library: the engine itself never reads anything here except
// through the inspector (src/introspect), which drives the probed
// execution paths from outside the hot loop.  With `enabled == false`
// (the default) inference takes the exact legacy code path and outputs
// are bit-identical to a build without the subsystem.
#pragma once

#include <cstddef>

namespace resipe::introspect {

/// Configuration of the per-layer numerical-health probes.
struct InspectOptions {
  /// Master switch.  Off = the engine's forward paths are untouched.
  bool enabled = false;

  /// Per matrix layer, how many input vectors (dense rows / conv im2col
  /// patches) the probed re-execution covers for spike-time, saturation
  /// and neuron-activity statistics.  0 = all captured vectors.
  std::size_t max_probe_vectors = 512;

  /// Per matrix layer, how many vectors the fidelity-attribution arms
  /// (quantization / variation / nonlinearity re-runs) process.  These
  /// arms reprogram the layer twice, so they are the expensive part.
  std::size_t max_attribution_vectors = 128;

  /// Run the toggled-effect attribution arms (adds ~2 extra programmings
  /// per layer).  When false the report still carries the total
  /// per-layer deviation vs. the digital reference.
  bool attribute_error = true;

  /// Compute the per-layer accuracy-recovery attribution: re-evaluate
  /// the batch with each matrix layer individually swapped for its
  /// digital forward.  Costs one extra full inference per matrix layer.
  bool accuracy_attribution = true;

  /// Roll the energy model up per layer (tile-MVM counts x the
  /// calibrated per-MVM energy report).
  bool energy_ledger = true;

  /// Bins of the normalized (t / slice) output spike-time histograms.
  std::size_t spike_time_bins = 20;

  /// An output neuron is "dead" when its post-layer activation never
  /// exceeds this threshold over the probed batch, and "always firing"
  /// when it exceeds it on every vector.
  double activity_threshold = 0.0;
};

}  // namespace resipe::introspect
