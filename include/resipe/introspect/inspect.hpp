// Inference introspection: per-layer numerical-health probes,
// accuracy-loss attribution and run provenance.
//
// inspect() re-runs a lowered ResipeNetwork over a batch with every
// probe enabled and produces a machine-readable report:
//
//   * spike-time health per matrix layer — where in the slice the
//     output comparators fire, how many columns fall silent (censored
//     above), fire in the first clock period (pinned at full scale) or
//     in the last one, and how often the input encoder clamps;
//   * dead / always-firing output neurons measured on the actual
//     analog activations;
//   * fidelity-drift attribution — each layer's deviation from the
//     ideal digital MVM decomposed into quantization (levels + clock),
//     device variation/noise, and RC-nonlinearity components by
//     re-programming the layer with effects toggled.  The three
//     components telescope: they sum exactly to the measured total;
//   * accuracy-loss attribution — the accuracy recovered when each
//     matrix layer alone runs digitally (forward_hybrid);
//   * an energy ledger rolling the per-tile-MVM energy model up per
//     layer for the probed batch;
//   * a provenance manifest (config hash, seeds, thread count, build
//     flags) so any two reports can be compared apples-to-apples.
//
// The probes live entirely outside the inference hot path: a network
// with `EngineConfig::introspect.enabled == false` (the default) takes
// the exact legacy forward path and its outputs are bit-identical to a
// build without this subsystem.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "resipe/introspect/options.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe::introspect {

/// Run provenance stamped into every inspection report.
struct Provenance {
  /// FNV-1a hash over a canonical dump of every EngineConfig knob;
  /// two runs with equal hashes simulated the same hardware.
  std::string engine_config_hash;
  std::uint64_t program_seed = 0;
  std::uint64_t fault_seed = 0;
  std::size_t threads = 1;
  /// False when the binary was compiled with -DRESIPE_TELEMETRY=OFF.
  bool telemetry_build = true;
  /// Runtime telemetry toggle at report time.
  bool telemetry_enabled = false;
  std::string compiler;
  std::string build_type;  ///< "release" (NDEBUG) or "debug"
  std::string timestamp;   ///< ISO-8601 UTC, stamped at collection
};

/// Stable hex config hash (see Provenance::engine_config_hash).
std::string engine_config_hash(const resipe_core::EngineConfig& config);

/// Collects the full manifest for `config` in the current process.
Provenance collect_provenance(const resipe_core::EngineConfig& config);

/// Output-neuron activity over the probed batch.
struct NeuronActivity {
  std::size_t outputs = 0;
  std::size_t dead = 0;       ///< activation never above the threshold
  std::size_t always_on = 0;  ///< activation above it on every vector
};

/// Per-layer deviation from the ideal digital MVM, decomposed by
/// re-running the layer with effect groups toggled.  Components
/// telescope — quantization + variation + nonlinearity == total by
/// construction (each is a difference of adjacent arms), so any
/// mismatch flags a bug, not a modelling choice.
struct ErrorAttribution {
  bool computed = false;
  std::size_t vectors = 0;    ///< input vectors the arms processed
  double total = 0.0;         ///< RMSE of the analog layer vs digital
  double quantization = 0.0;  ///< conductance levels + clock grid
  double variation = 0.0;     ///< programming variation, read noise,
                              ///< comparator offsets, drift, faults
  double nonlinearity = 0.0;  ///< exact-RC vs linearized transfer
};

/// Energy rolled up for one layer over the probed batch.
struct LayerEnergy {
  double per_tile_mvm = 0.0;  ///< J per tile MVM (energy model)
  double tile_mvms = 0.0;     ///< tile MVMs the batch executed
  double total = 0.0;         ///< J
};

/// Everything measured about one lowered step.
struct LayerReport {
  std::size_t step = 0;
  std::string name;  ///< layer.describe()
  bool is_matrix = false;
  bool is_conv = false;
  std::size_t tiles = 0;
  bool probed = false;
  resipe_core::ProgrammedMatrix::ProbeStats probe;
  NeuronActivity activity;
  ErrorAttribution error;
  LayerEnergy energy;
  /// Whole-network accuracy when this layer alone runs digitally;
  /// negative when labels were not supplied or attribution is off.
  double accuracy_if_digital = -1.0;
};

/// Machine-readable inspection report.
struct InspectionReport {
  Provenance provenance;
  std::string model_name;
  std::size_t batch_size = 0;
  double analog_accuracy = -1.0;   ///< negative = no labels supplied
  double digital_accuracy = -1.0;
  double logits_rmse = 0.0;        ///< analog vs digital logits
  double total_energy = 0.0;       ///< J over the probed batch
  std::vector<LayerReport> layers;

  /// Single-object JSON document (no external dependencies).
  std::string to_json() const;
  void write_json_file(const std::string& path) const;

  /// ASCII dashboard (common/table): per-layer health, attribution
  /// and energy tables plus the provenance footer.
  std::string render_ascii() const;
};

/// Runs `batch` through `net` with probes driven by
/// net.config().introspect.  With introspection disabled the report
/// only carries provenance and the layer skeleton (names, tile
/// counts) — nothing is executed.  `labels` enables the accuracy
/// numbers and per-layer accuracy attribution.
InspectionReport inspect(const resipe_core::ResipeNetwork& net,
                         const nn::Tensor& batch,
                         std::span<const int> labels = {});

}  // namespace resipe::introspect
