// ASCII table rendering for benchmark / experiment output.
//
// Every bench binary reproduces one of the paper's tables or figures and
// must print the same rows/series the paper reports; `TextTable` gives
// them a uniform, aligned, monospace rendering.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace resipe {

/// Simple column-aligned ASCII table.
///
///   TextTable t({"Design", "Power", "Area"});
///   t.add_row({"ReSiPE", "1.2 mW", "0.01 mm2"});
///   std::cout << t;
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders with 2-space padding, `|` column borders and `-` rules.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

/// Formats a physical value with an SI prefix, e.g. format_si(2.3e-3, "W")
/// -> "2.300 mW".  Chooses among f/p/n/u/m/(none)/k/M/G/T.
std::string format_si(double value, const std::string& unit, int precision = 3);

/// Fixed-precision formatting helper ("%.*f").
std::string format_fixed(double value, int precision = 3);

/// Formats a ratio like "1.97x".
std::string format_ratio(double value, int precision = 2);

/// Formats a fraction as a percentage like "67.1%".
std::string format_percent(double fraction, int precision = 1);

}  // namespace resipe
