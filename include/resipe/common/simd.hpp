// Portable fixed-width SIMD value types for the hot kernels.
//
// One header, four backends: AVX-512F, AVX2+FMA, NEON and a scalar
// fallback, selected at compile time from the architecture macros the
// active -march flags imply (see the RESIPE_SIMD CMake option).  The
// kernels are written once against `vdouble` — the widest double
// vector the build supports — and degrade to plain scalar loops when
// the build has no vector ISA (native_lanes == 1).
//
// Semantics the kernels rely on:
//
//  * Lane arithmetic (+, -, *, /, fma, min, max, select, compares) is
//    IEEE-754 per lane: a lane computes bit-exactly what the same
//    scalar expression computes.  Only *horizontal* operations
//    (reduce_add) and the polynomial transcendentals below introduce
//    results that differ from a scalar loop.
//  * reduce_add folds lanes in a fixed pairwise tree —
//    (lo half + hi half) recursively — so a given build is fully
//    deterministic, but the fold order differs from the scalar
//    left-to-right sum.  Kernels that promise bit-identical batched ==
//    single results must use the same reduce on both paths.
//  * exp()/log() are Cephes-style polynomial evaluations (the same
//    approach Arbor's simd layer uses): relative error is within
//    kTranscendentalUlp ulp of the correctly-rounded result (asserted
//    by tests/test_simd.cpp).  The scalar fallback and NEON backends
//    call libm per lane instead, which is strictly tighter, so the
//    bound holds for every backend.  The `simd_equivalence` oracle
//    contract (src/verify/contracts.cpp) budgets this bound when it
//    compares the SIMD kernels against the scalar reference path.
//
// Runtime control: `RESIPE_SIMD=scalar` in the environment (or
// set_force_scalar(true)) makes the kernels dispatch to their scalar
// reference implementations even in a vector build; active_isa()
// reports what is actually in use.  Forcing is process-global and not
// thread-safe against concurrent kernel calls — flip it at setup time,
// like telemetry::set_enabled.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>

#if defined(RESIPE_SIMD_FORCE_SCALAR)
// Explicit scalar build: never touch vector intrinsics.
#elif defined(__AVX512F__)
#define RESIPE_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__) && defined(__FMA__)
#define RESIPE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define RESIPE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace resipe::simd {

/// Upper bound, in ulp, on the relative error of the polynomial exp()
/// and log() below versus a correctly-rounded libm.  test_simd.cpp
/// measures the real figure (typically <= 2 ulp) against this bound;
/// the verify harness budgets it when deriving SIMD-vs-scalar error
/// bounds.
inline constexpr double kTranscendentalUlp = 8.0;

/// Cache-line-sized alignment for kernel data; every backend's aligned
/// loads are satisfied by it.
inline constexpr std::size_t kAlignment = 64;

// --- generic fixed-width vector (any T, any N) -------------------------
//
// The portable reference implementation: an array of lanes.  The
// native specializations below override it for the build's widest
// double vector; everything else (odd widths, scalar builds, unit
// tests of the abstraction itself) uses this.  gcc/clang usually
// vectorize these loops when the ISA allows, but no kernel correctness
// depends on that.

/// Lane mask for the generic backend: lane[i] != 0 means "selected".
/// A standalone template (rather than a nested type) so the free
/// functions over masks can deduce T and N.
template <typename T, std::size_t N>
struct basic_mask {
  bool lane[N];
};

template <typename T, std::size_t N>
inline basic_mask<T, N> operator&(basic_mask<T, N> a, basic_mask<T, N> b) {
  for (std::size_t i = 0; i < N; ++i) a.lane[i] = a.lane[i] && b.lane[i];
  return a;
}

template <typename T, std::size_t N>
struct simd {
  static_assert(N >= 1, "simd width must be at least 1");
  T lane[N];

  simd() = default;
  explicit simd(T broadcast) {
    for (std::size_t i = 0; i < N; ++i) lane[i] = broadcast;
  }

  static simd load(const T* p) {  // p aligned to kAlignment
    simd v;
    for (std::size_t i = 0; i < N; ++i) v.lane[i] = p[i];
    return v;
  }
  static simd loadu(const T* p) { return load(p); }
  void store(T* p) const {
    for (std::size_t i = 0; i < N; ++i) p[i] = lane[i];
  }
  void storeu(T* p) const { store(p); }

  friend simd operator+(simd a, simd b) {
    for (std::size_t i = 0; i < N; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend simd operator-(simd a, simd b) {
    for (std::size_t i = 0; i < N; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend simd operator*(simd a, simd b) {
    for (std::size_t i = 0; i < N; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  friend simd operator/(simd a, simd b) {
    for (std::size_t i = 0; i < N; ++i) a.lane[i] /= b.lane[i];
    return a;
  }

  using mask = basic_mask<T, N>;

  friend mask operator>=(simd a, simd b) {
    mask m;
    for (std::size_t i = 0; i < N; ++i) m.lane[i] = a.lane[i] >= b.lane[i];
    return m;
  }
  friend mask operator<=(simd a, simd b) {
    mask m;
    for (std::size_t i = 0; i < N; ++i) m.lane[i] = a.lane[i] <= b.lane[i];
    return m;
  }
  friend mask operator>(simd a, simd b) {
    mask m;
    for (std::size_t i = 0; i < N; ++i) m.lane[i] = a.lane[i] > b.lane[i];
    return m;
  }
  friend mask operator<(simd a, simd b) {
    mask m;
    for (std::size_t i = 0; i < N; ++i) m.lane[i] = a.lane[i] < b.lane[i];
    return m;
  }
};

/// a * b + c, fused per lane where the ISA has FMA.
template <typename T, std::size_t N>
inline simd<T, N> fma(simd<T, N> a, simd<T, N> b, simd<T, N> c) {
  for (std::size_t i = 0; i < N; ++i) {
    c.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
  }
  return c;
}

template <typename T, std::size_t N>
inline simd<T, N> min(simd<T, N> a, simd<T, N> b) {
  for (std::size_t i = 0; i < N; ++i) {
    if (b.lane[i] < a.lane[i]) a.lane[i] = b.lane[i];
  }
  return a;
}

template <typename T, std::size_t N>
inline simd<T, N> max(simd<T, N> a, simd<T, N> b) {
  for (std::size_t i = 0; i < N; ++i) {
    if (a.lane[i] < b.lane[i]) a.lane[i] = b.lane[i];
  }
  return a;
}

/// Per-lane: m ? a : b.
template <typename T, std::size_t N>
inline simd<T, N> select(basic_mask<T, N> m, simd<T, N> a, simd<T, N> b) {
  for (std::size_t i = 0; i < N; ++i) {
    if (!m.lane[i]) a.lane[i] = b.lane[i];
  }
  return a;
}

/// Horizontal sum in the canonical pairwise tree order:
/// reduce([a,b,c,d]) == (a+c) + (b+d); width halves each step.
template <typename T, std::size_t N>
inline T reduce_add(const simd<T, N>& v) {
  if constexpr (N == 1) {
    return v.lane[0];
  } else {
    static_assert(N % 2 == 0, "pairwise reduce needs a power-of-two width");
    simd<T, N / 2> half;
    for (std::size_t i = 0; i < N / 2; ++i) {
      half.lane[i] = v.lane[i] + v.lane[i + N / 2];
    }
    return reduce_add(half);
  }
}

template <typename T, std::size_t N>
inline std::size_t mask_count(const basic_mask<T, N>& m) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < N; ++i) n += m.lane[i] ? 1 : 0;
  return n;
}

/// Per-lane rounding to nearest with halves away from zero, bit-equal
/// to std::round on every backend — including -0.0 (preserved), the
/// infinities and NaN (propagated).  Exactness matters: the codec's
/// clock-snap quantization goes through this, and snapped spike times
/// feed the bit-identity contracts.
template <typename T, std::size_t N>
inline simd<T, N> round(simd<T, N> v) {
  for (std::size_t i = 0; i < N; ++i) v.lane[i] = std::round(v.lane[i]);
  return v;
}

/// Lane-serial libm transcendentals for the generic backend: bit-equal
/// to the scalar expressions, trivially inside kTranscendentalUlp.
template <typename T, std::size_t N>
inline simd<T, N> exp(simd<T, N> v) {
  for (std::size_t i = 0; i < N; ++i) v.lane[i] = std::exp(v.lane[i]);
  return v;
}

template <typename T, std::size_t N>
inline simd<T, N> log(simd<T, N> v) {
  for (std::size_t i = 0; i < N; ++i) v.lane[i] = std::log(v.lane[i]);
  return v;
}

namespace detail {

// Cephes polynomial coefficients (public-domain constants, the same
// ones Arbor's simd math uses).  exp: a Pade form on r = x - n ln2;
// log: a rational form on the frexp mantissa.
inline constexpr double kLog2E = 1.4426950408889634073599;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
inline constexpr double kExpMaxArg = 709.782712893383996843;
inline constexpr double kExpMinArg = -708.396418532264106224;

inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;

inline constexpr double kSqrtHalf = 0.70710678118654752440;
inline constexpr double kLogP0 = 1.01875663804580931796e-4;
inline constexpr double kLogP1 = 4.97494994976747001425e-1;
inline constexpr double kLogP2 = 4.70579119878881725854e0;
inline constexpr double kLogP3 = 1.44989225341610930846e1;
inline constexpr double kLogP4 = 1.79368678507819816313e1;
inline constexpr double kLogP5 = 7.70838733755885391666e0;
inline constexpr double kLogQ0 = 1.12873587189167450590e1;
inline constexpr double kLogQ1 = 4.52279145837532221105e1;
inline constexpr double kLogQ2 = 8.29875266912776603211e1;
inline constexpr double kLogQ3 = 7.11544750618563894466e1;
inline constexpr double kLogQ4 = 2.31251620126765340583e1;
// ln2 split for the exponent term of log (cephes LOGE2 split).
inline constexpr double kLogC1 = -2.121944400546905827679e-4;
inline constexpr double kLogC2 = 0.693359375;

}  // namespace detail

// --- AVX-512F backend --------------------------------------------------

#if defined(RESIPE_SIMD_AVX512)

template <>
struct simd<double, 8> {
  __m512d v;

  simd() = default;
  explicit simd(double broadcast) : v(_mm512_set1_pd(broadcast)) {}
  explicit simd(__m512d raw) : v(raw) {}

  static simd load(const double* p) { return simd(_mm512_load_pd(p)); }
  static simd loadu(const double* p) { return simd(_mm512_loadu_pd(p)); }
  void store(double* p) const { _mm512_store_pd(p, v); }
  void storeu(double* p) const { _mm512_storeu_pd(p, v); }

  friend simd operator+(simd a, simd b) {
    return simd(_mm512_add_pd(a.v, b.v));
  }
  friend simd operator-(simd a, simd b) {
    return simd(_mm512_sub_pd(a.v, b.v));
  }
  friend simd operator*(simd a, simd b) {
    return simd(_mm512_mul_pd(a.v, b.v));
  }
  friend simd operator/(simd a, simd b) {
    return simd(_mm512_div_pd(a.v, b.v));
  }

  using mask = __mmask8;

  friend mask operator>=(simd a, simd b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ);
  }
  friend mask operator<=(simd a, simd b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ);
  }
  friend mask operator>(simd a, simd b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ);
  }
  friend mask operator<(simd a, simd b) {
    return _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ);
  }
};

inline simd<double, 8> fma(simd<double, 8> a, simd<double, 8> b,
                           simd<double, 8> c) {
  return simd<double, 8>(_mm512_fmadd_pd(a.v, b.v, c.v));
}
inline simd<double, 8> min(simd<double, 8> a, simd<double, 8> b) {
  return simd<double, 8>(_mm512_min_pd(a.v, b.v));
}
inline simd<double, 8> max(simd<double, 8> a, simd<double, 8> b) {
  return simd<double, 8>(_mm512_max_pd(a.v, b.v));
}
inline simd<double, 8> select(simd<double, 8>::mask m, simd<double, 8> a,
                              simd<double, 8> b) {
  // blend: picks b where the bit is set, so route through mask_mov.
  return simd<double, 8>(_mm512_mask_mov_pd(b.v, m, a.v));
}
inline double reduce_add(const simd<double, 8>& x) {
  // Pairwise tree, same order as the generic reference.
  const __m256d half = _mm256_add_pd(_mm512_castpd512_pd256(x.v),
                                     _mm512_extractf64x4_pd(x.v, 1));
  const __m128d quarter = _mm_add_pd(_mm256_castpd256_pd128(half),
                                     _mm256_extractf128_pd(half, 1));
  return _mm_cvtsd_f64(quarter) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(quarter, quarter));
}
inline std::size_t mask_count(simd<double, 8>::mask m) {
  return static_cast<std::size_t>(__builtin_popcount(m));
}

inline simd<double, 8> round(simd<double, 8> x) {
  // std::round semantics (half away from zero) are not a roundscale
  // mode, so: truncate, then push |frac| >= 0.5 lanes one signed unit
  // further.  mask_add leaves untouched lanes (incl. -0.0) verbatim;
  // inf/NaN make frac NaN, the ordered compare stays false, and the
  // truncation (inf -> inf, NaN -> NaN) passes through.
  const __m512d sign = _mm512_set1_pd(-0.0);
  const __m512d t =
      _mm512_roundscale_pd(x.v, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m512d frac = _mm512_sub_pd(x.v, t);
  const __mmask8 half = _mm512_cmp_pd_mask(
      _mm512_andnot_pd(sign, frac), _mm512_set1_pd(0.5), _CMP_GE_OQ);
  const __m512d one_signed =
      _mm512_or_pd(_mm512_set1_pd(1.0), _mm512_and_pd(x.v, sign));
  return simd<double, 8>(_mm512_mask_add_pd(t, half, t, one_signed));
}

inline simd<double, 8> exp(simd<double, 8> x) {
  using V = simd<double, 8>;
  const __m512d clamped = _mm512_max_pd(
      _mm512_min_pd(x.v, _mm512_set1_pd(detail::kExpMaxArg)),
      _mm512_set1_pd(detail::kExpMinArg));
  const __m512d n = _mm512_roundscale_pd(
      _mm512_mul_pd(clamped, _mm512_set1_pd(detail::kLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(n, _mm512_set1_pd(detail::kLn2Hi), clamped);
  r = _mm512_fnmadd_pd(n, _mm512_set1_pd(detail::kLn2Lo), r);
  const __m512d z = _mm512_mul_pd(r, r);
  __m512d p = _mm512_set1_pd(detail::kExpP0);
  p = _mm512_fmadd_pd(p, z, _mm512_set1_pd(detail::kExpP1));
  p = _mm512_fmadd_pd(p, z, _mm512_set1_pd(detail::kExpP2));
  p = _mm512_mul_pd(p, r);
  __m512d q = _mm512_set1_pd(detail::kExpQ0);
  q = _mm512_fmadd_pd(q, z, _mm512_set1_pd(detail::kExpQ1));
  q = _mm512_fmadd_pd(q, z, _mm512_set1_pd(detail::kExpQ2));
  q = _mm512_fmadd_pd(q, z, _mm512_set1_pd(detail::kExpQ3));
  const __m512d e = _mm512_add_pd(
      _mm512_set1_pd(1.0),
      _mm512_mul_pd(_mm512_set1_pd(2.0),
                    _mm512_div_pd(p, _mm512_sub_pd(q, p))));
  __m512d out = _mm512_scalef_pd(e, n);
  // Saturate outside the clamp range; propagate NaN.
  const __mmask8 hi =
      _mm512_cmp_pd_mask(x.v, _mm512_set1_pd(detail::kExpMaxArg), _CMP_GT_OQ);
  const __mmask8 lo =
      _mm512_cmp_pd_mask(x.v, _mm512_set1_pd(detail::kExpMinArg), _CMP_LT_OQ);
  const __mmask8 nan = _mm512_cmp_pd_mask(x.v, x.v, _CMP_UNORD_Q);
  out = _mm512_mask_mov_pd(
      out, hi, _mm512_set1_pd(std::numeric_limits<double>::infinity()));
  out = _mm512_mask_mov_pd(out, lo, _mm512_setzero_pd());
  out = _mm512_mask_mov_pd(out, nan, x.v);
  return V(out);
}

inline simd<double, 8> log(simd<double, 8> x) {
  using V = simd<double, 8>;
  // getmant([0.5, 1)) + getexp give an exact branch-free frexp.
  __m512d m =
      _mm512_getmant_pd(x.v, _MM_MANT_NORM_p5_1, _MM_MANT_SIGN_zero);
  __m512d e = _mm512_add_pd(_mm512_getexp_pd(x.v), _mm512_set1_pd(1.0));
  const __mmask8 small =
      _mm512_cmp_pd_mask(m, _mm512_set1_pd(detail::kSqrtHalf), _CMP_LT_OQ);
  e = _mm512_mask_sub_pd(e, small, e, _mm512_set1_pd(1.0));
  m = _mm512_mask_add_pd(m, small, m, m);  // m *= 2 on the small half
  m = _mm512_sub_pd(m, _mm512_set1_pd(1.0));

  const __m512d z = _mm512_mul_pd(m, m);
  __m512d p = _mm512_set1_pd(detail::kLogP0);
  p = _mm512_fmadd_pd(p, m, _mm512_set1_pd(detail::kLogP1));
  p = _mm512_fmadd_pd(p, m, _mm512_set1_pd(detail::kLogP2));
  p = _mm512_fmadd_pd(p, m, _mm512_set1_pd(detail::kLogP3));
  p = _mm512_fmadd_pd(p, m, _mm512_set1_pd(detail::kLogP4));
  p = _mm512_fmadd_pd(p, m, _mm512_set1_pd(detail::kLogP5));
  __m512d q = _mm512_add_pd(m, _mm512_set1_pd(detail::kLogQ0));
  q = _mm512_fmadd_pd(q, m, _mm512_set1_pd(detail::kLogQ1));
  q = _mm512_fmadd_pd(q, m, _mm512_set1_pd(detail::kLogQ2));
  q = _mm512_fmadd_pd(q, m, _mm512_set1_pd(detail::kLogQ3));
  q = _mm512_fmadd_pd(q, m, _mm512_set1_pd(detail::kLogQ4));
  __m512d y = _mm512_mul_pd(_mm512_mul_pd(m, z), _mm512_div_pd(p, q));
  y = _mm512_fmadd_pd(e, _mm512_set1_pd(detail::kLogC1), y);
  y = _mm512_fnmadd_pd(_mm512_set1_pd(0.5), z, y);
  __m512d out = _mm512_add_pd(
      m, _mm512_fmadd_pd(e, _mm512_set1_pd(detail::kLogC2), y));

  // Domain edges: log(0) = -inf, log(<0) = NaN, log(inf) = inf,
  // log(NaN) = NaN.
  const __mmask8 zero =
      _mm512_cmp_pd_mask(x.v, _mm512_setzero_pd(), _CMP_EQ_OQ);
  const __mmask8 neg =
      _mm512_cmp_pd_mask(x.v, _mm512_setzero_pd(), _CMP_LT_OQ);
  const __mmask8 inf = _mm512_cmp_pd_mask(
      x.v, _mm512_set1_pd(std::numeric_limits<double>::infinity()),
      _CMP_EQ_OQ);
  const __mmask8 nan = _mm512_cmp_pd_mask(x.v, x.v, _CMP_UNORD_Q);
  out = _mm512_mask_mov_pd(
      out, zero, _mm512_set1_pd(-std::numeric_limits<double>::infinity()));
  out = _mm512_mask_mov_pd(
      out, neg, _mm512_set1_pd(std::numeric_limits<double>::quiet_NaN()));
  out = _mm512_mask_mov_pd(
      out, inf, _mm512_set1_pd(std::numeric_limits<double>::infinity()));
  out = _mm512_mask_mov_pd(out, nan, x.v);
  return V(out);
}

inline constexpr std::size_t native_lanes = 8;
inline constexpr const char* kCompiledIsa = "avx512";

// --- AVX2 + FMA backend ------------------------------------------------

#elif defined(RESIPE_SIMD_AVX2)

template <>
struct simd<double, 4> {
  __m256d v;

  simd() = default;
  explicit simd(double broadcast) : v(_mm256_set1_pd(broadcast)) {}
  explicit simd(__m256d raw) : v(raw) {}

  static simd load(const double* p) { return simd(_mm256_load_pd(p)); }
  static simd loadu(const double* p) { return simd(_mm256_loadu_pd(p)); }
  void store(double* p) const { _mm256_store_pd(p, v); }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }

  friend simd operator+(simd a, simd b) {
    return simd(_mm256_add_pd(a.v, b.v));
  }
  friend simd operator-(simd a, simd b) {
    return simd(_mm256_sub_pd(a.v, b.v));
  }
  friend simd operator*(simd a, simd b) {
    return simd(_mm256_mul_pd(a.v, b.v));
  }
  friend simd operator/(simd a, simd b) {
    return simd(_mm256_div_pd(a.v, b.v));
  }

  /// All-ones lanes select; the sign bit is what blendv reads.
  struct mask {
    __m256d m;
  };

  friend mask operator>=(simd a, simd b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
  }
  friend mask operator<=(simd a, simd b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }
  friend mask operator>(simd a, simd b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  friend mask operator<(simd a, simd b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
};

inline simd<double, 4> fma(simd<double, 4> a, simd<double, 4> b,
                           simd<double, 4> c) {
  return simd<double, 4>(_mm256_fmadd_pd(a.v, b.v, c.v));
}
inline simd<double, 4> min(simd<double, 4> a, simd<double, 4> b) {
  return simd<double, 4>(_mm256_min_pd(a.v, b.v));
}
inline simd<double, 4> max(simd<double, 4> a, simd<double, 4> b) {
  return simd<double, 4>(_mm256_max_pd(a.v, b.v));
}
inline simd<double, 4> select(simd<double, 4>::mask m, simd<double, 4> a,
                              simd<double, 4> b) {
  return simd<double, 4>(_mm256_blendv_pd(b.v, a.v, m.m));
}
inline simd<double, 4>::mask operator&(simd<double, 4>::mask a,
                                       simd<double, 4>::mask b) {
  return {_mm256_and_pd(a.m, b.m)};
}
inline double reduce_add(const simd<double, 4>& x) {
  const __m128d half = _mm_add_pd(_mm256_castpd256_pd128(x.v),
                                  _mm256_extractf128_pd(x.v, 1));
  return _mm_cvtsd_f64(half) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(half, half));
}
inline std::size_t mask_count(simd<double, 4>::mask m) {
  return static_cast<std::size_t>(
      __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(m.m))));
}

inline simd<double, 4> round(simd<double, 4> x) {
  // std::round (half away from zero): truncate, then push |frac| >= 0.5
  // lanes one signed unit further.  The adjustment must be a blend, not
  // an and+add — adding +0.0 to a -0.0 lane would flip it to +0.0 and
  // break bit-equality with std::round.  inf/NaN lanes leave frac NaN,
  // the ordered compare stays false, and truncation passes them through.
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d t =
      _mm256_round_pd(x.v, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256d frac = _mm256_sub_pd(x.v, t);
  const __m256d half = _mm256_cmp_pd(_mm256_andnot_pd(sign, frac),
                                     _mm256_set1_pd(0.5), _CMP_GE_OQ);
  const __m256d one_signed =
      _mm256_or_pd(_mm256_set1_pd(1.0), _mm256_and_pd(x.v, sign));
  return simd<double, 4>(
      _mm256_blendv_pd(t, _mm256_add_pd(t, one_signed), half));
}

inline simd<double, 4> exp(simd<double, 4> x) {
  using V = simd<double, 4>;
  const __m256d clamped = _mm256_max_pd(
      _mm256_min_pd(x.v, _mm256_set1_pd(detail::kExpMaxArg)),
      _mm256_set1_pd(detail::kExpMinArg));
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(clamped, _mm256_set1_pd(detail::kLog2E)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, _mm256_set1_pd(detail::kLn2Hi), clamped);
  r = _mm256_fnmadd_pd(n, _mm256_set1_pd(detail::kLn2Lo), r);
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(detail::kExpP0);
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(detail::kExpP1));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(detail::kExpP2));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(detail::kExpQ0);
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(detail::kExpQ1));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(detail::kExpQ2));
  q = _mm256_fmadd_pd(q, z, _mm256_set1_pd(detail::kExpQ3));
  const __m256d e = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_mul_pd(_mm256_set1_pd(2.0),
                    _mm256_div_pd(p, _mm256_sub_pd(q, p))));
  // 2^n via the exponent field; |n| <= 1075 after the clamp.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  // Split the scale in two to survive n < -1022 (subnormal results):
  // 2^n = 2^(n/2 rounded) * 2^(rest).  Cheaper: saturate tiny results
  // to zero via the lo mask below, which the kernels rely on anyway.
  __m256d out = _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
  const __m256d hi =
      _mm256_cmp_pd(x.v, _mm256_set1_pd(detail::kExpMaxArg), _CMP_GT_OQ);
  const __m256d lo =
      _mm256_cmp_pd(x.v, _mm256_set1_pd(detail::kExpMinArg), _CMP_LT_OQ);
  const __m256d nan = _mm256_cmp_pd(x.v, x.v, _CMP_UNORD_Q);
  out = _mm256_blendv_pd(
      out, _mm256_set1_pd(std::numeric_limits<double>::infinity()), hi);
  out = _mm256_blendv_pd(out, _mm256_setzero_pd(), lo);
  out = _mm256_blendv_pd(out, x.v, nan);
  return V(out);
}

inline simd<double, 4> log(simd<double, 4> x) {
  using V = simd<double, 4>;
  // frexp via the exponent field (normals only; the kernels feed
  // normal positive arguments, edge lanes are overridden below).
  const __m256i bits = _mm256_castpd_si256(x.v);
  const __m256i expfield =
      _mm256_srli_epi64(_mm256_and_si256(
          bits, _mm256_set1_epi64x(0x7FF0000000000000LL)), 52);
  const __m256i mantbits = _mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
      _mm256_set1_epi64x(0x3FE0000000000000LL));  // m in [0.5, 1)
  __m256d m = _mm256_castsi256_pd(mantbits);
  // e = expfield - 1022 fits int32; narrow the int64 lanes and convert.
  const __m256i e64 = _mm256_sub_epi64(expfield, _mm256_set1_epi64x(1022));
  const __m128i e32 = _mm_castps_si128(_mm_shuffle_ps(
      _mm_castsi128_ps(_mm256_castsi256_si128(e64)),
      _mm_castsi128_ps(_mm256_extracti128_si256(e64, 1)),
      _MM_SHUFFLE(2, 0, 2, 0)));
  __m256d e = _mm256_cvtepi32_pd(e32);
  const __m256d small =
      _mm256_cmp_pd(m, _mm256_set1_pd(detail::kSqrtHalf), _CMP_LT_OQ);
  e = _mm256_sub_pd(e, _mm256_and_pd(small, _mm256_set1_pd(1.0)));
  m = _mm256_add_pd(m, _mm256_and_pd(small, m));  // m *= 2 where small
  m = _mm256_sub_pd(m, _mm256_set1_pd(1.0));

  const __m256d z = _mm256_mul_pd(m, m);
  __m256d p = _mm256_set1_pd(detail::kLogP0);
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(detail::kLogP1));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(detail::kLogP2));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(detail::kLogP3));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(detail::kLogP4));
  p = _mm256_fmadd_pd(p, m, _mm256_set1_pd(detail::kLogP5));
  __m256d q = _mm256_add_pd(m, _mm256_set1_pd(detail::kLogQ0));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(detail::kLogQ1));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(detail::kLogQ2));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(detail::kLogQ3));
  q = _mm256_fmadd_pd(q, m, _mm256_set1_pd(detail::kLogQ4));
  __m256d y = _mm256_mul_pd(_mm256_mul_pd(m, z), _mm256_div_pd(p, q));
  y = _mm256_fmadd_pd(e, _mm256_set1_pd(detail::kLogC1), y);
  y = _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, y);
  __m256d out =
      _mm256_add_pd(m, _mm256_fmadd_pd(e, _mm256_set1_pd(detail::kLogC2), y));

  const __m256d zero =
      _mm256_cmp_pd(x.v, _mm256_setzero_pd(), _CMP_EQ_OQ);
  const __m256d neg = _mm256_cmp_pd(x.v, _mm256_setzero_pd(), _CMP_LT_OQ);
  const __m256d inf = _mm256_cmp_pd(
      x.v, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
      _CMP_EQ_OQ);
  const __m256d nan = _mm256_cmp_pd(x.v, x.v, _CMP_UNORD_Q);
  out = _mm256_blendv_pd(
      out, _mm256_set1_pd(-std::numeric_limits<double>::infinity()), zero);
  out = _mm256_blendv_pd(
      out, _mm256_set1_pd(std::numeric_limits<double>::quiet_NaN()), neg);
  out = _mm256_blendv_pd(
      out, _mm256_set1_pd(std::numeric_limits<double>::infinity()), inf);
  out = _mm256_blendv_pd(out, x.v, nan);
  return V(out);
}

inline constexpr std::size_t native_lanes = 4;
inline constexpr const char* kCompiledIsa = "avx2";

// --- NEON backend ------------------------------------------------------

#elif defined(RESIPE_SIMD_NEON)

template <>
struct simd<double, 2> {
  float64x2_t v;

  simd() = default;
  explicit simd(double broadcast) : v(vdupq_n_f64(broadcast)) {}
  explicit simd(float64x2_t raw) : v(raw) {}

  static simd load(const double* p) { return simd(vld1q_f64(p)); }
  static simd loadu(const double* p) { return simd(vld1q_f64(p)); }
  void store(double* p) const { vst1q_f64(p, v); }
  void storeu(double* p) const { vst1q_f64(p, v); }

  friend simd operator+(simd a, simd b) { return simd(vaddq_f64(a.v, b.v)); }
  friend simd operator-(simd a, simd b) { return simd(vsubq_f64(a.v, b.v)); }
  friend simd operator*(simd a, simd b) { return simd(vmulq_f64(a.v, b.v)); }
  friend simd operator/(simd a, simd b) { return simd(vdivq_f64(a.v, b.v)); }

  struct mask {
    uint64x2_t m;
  };

  friend mask operator>=(simd a, simd b) { return {vcgeq_f64(a.v, b.v)}; }
  friend mask operator<=(simd a, simd b) { return {vcleq_f64(a.v, b.v)}; }
  friend mask operator>(simd a, simd b) { return {vcgtq_f64(a.v, b.v)}; }
  friend mask operator<(simd a, simd b) { return {vcltq_f64(a.v, b.v)}; }
};

inline simd<double, 2> fma(simd<double, 2> a, simd<double, 2> b,
                           simd<double, 2> c) {
  return simd<double, 2>(vfmaq_f64(c.v, a.v, b.v));
}
inline simd<double, 2> min(simd<double, 2> a, simd<double, 2> b) {
  return simd<double, 2>(vminq_f64(a.v, b.v));
}
inline simd<double, 2> max(simd<double, 2> a, simd<double, 2> b) {
  return simd<double, 2>(vmaxq_f64(a.v, b.v));
}
inline simd<double, 2> select(simd<double, 2>::mask m, simd<double, 2> a,
                              simd<double, 2> b) {
  return simd<double, 2>(vbslq_f64(m.m, a.v, b.v));
}
inline simd<double, 2>::mask operator&(simd<double, 2>::mask a,
                                       simd<double, 2>::mask b) {
  return {vandq_u64(a.m, b.m)};
}
inline double reduce_add(const simd<double, 2>& x) {
  return vgetq_lane_f64(x.v, 0) + vgetq_lane_f64(x.v, 1);
}
inline std::size_t mask_count(simd<double, 2>::mask m) {
  return (vgetq_lane_u64(m.m, 0) ? 1u : 0u) +
         (vgetq_lane_u64(m.m, 1) ? 1u : 0u);
}

inline simd<double, 2> round(simd<double, 2> x) {
  // vrndaq_f64 is exactly std::round: nearest, ties away from zero.
  return simd<double, 2>(vrndaq_f64(x.v));
}

/// NEON transcendentals stay lane-serial libm: at two lanes the
/// polynomial bookkeeping does not pay for itself.
inline simd<double, 2> exp(simd<double, 2> x) {
  double t[2];
  x.store(t);
  t[0] = std::exp(t[0]);
  t[1] = std::exp(t[1]);
  return simd<double, 2>::load(t);
}
inline simd<double, 2> log(simd<double, 2> x) {
  double t[2];
  x.store(t);
  t[0] = std::log(t[0]);
  t[1] = std::log(t[1]);
  return simd<double, 2>::load(t);
}

inline constexpr std::size_t native_lanes = 2;
inline constexpr const char* kCompiledIsa = "neon";

#else  // scalar fallback

inline constexpr std::size_t native_lanes = 1;
inline constexpr const char* kCompiledIsa = "scalar";

#endif

/// The build's widest double vector — what the kernels use.
using vdouble = simd<double, native_lanes>;

/// Rounds n up to the next multiple of the native vector width.
inline constexpr std::size_t pad_to_lanes(std::size_t n) {
  return (n + native_lanes - 1) / native_lanes * native_lanes;
}

/// Software prefetch into all cache levels; a no-op where unsupported.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// --- runtime ISA control -----------------------------------------------

namespace detail {
inline bool resolve_force_scalar() {
  if (const char* env = std::getenv("RESIPE_SIMD")) {
    return std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "0") == 0;
  }
  return false;
}
inline bool& force_scalar_flag() {
  static bool flag = resolve_force_scalar();
  return flag;
}
}  // namespace detail

/// True when the vectorized kernel paths should run: a vector backend
/// was compiled in and the scalar path is not forced.
inline bool enabled() {
  return native_lanes > 1 && !detail::force_scalar_flag();
}

/// Overrides RESIPE_SIMD for this process (verify contracts and tests
/// flip this around calls; not thread-safe against running kernels).
inline void set_force_scalar(bool on) { detail::force_scalar_flag() = on; }

/// RAII force-scalar: the verify contracts bracket their reference runs
/// with this.
struct ForceScalarGuard {
  bool previous;
  ForceScalarGuard() : previous(detail::force_scalar_flag()) {
    set_force_scalar(true);
  }
  ~ForceScalarGuard() { set_force_scalar(previous); }
  ForceScalarGuard(const ForceScalarGuard&) = delete;
  ForceScalarGuard& operator=(const ForceScalarGuard&) = delete;
};

/// ISA the build selected at compile time.
inline const char* compiled_isa() { return kCompiledIsa; }

/// ISA the kernels are using right now ("scalar" when forced off at
/// run time or when the build has no vector backend).
inline const char* active_isa() {
  return enabled() ? kCompiledIsa : "scalar";
}

/// The -march-style flags this translation unit was built with
/// (stamped by CMake via RESIPE_MARCH_FLAGS; benches record it so perf
/// baselines are only compared like-for-like).
inline const char* march_flags() {
#if defined(RESIPE_MARCH_FLAGS)
  return RESIPE_MARCH_FLAGS;
#elif defined(RESIPE_SIMD_FORCE_SCALAR)
  return "(scalar build)";
#else
  return "(toolchain default)";
#endif
}

// --- aligned storage ---------------------------------------------------

/// Minimal aligned allocator so kernel arrays (conductance matrices,
/// batch scratch) satisfy the aligned-load contract.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

}  // namespace resipe::simd
