// Deterministic random number generation.
//
// Every stochastic element of the simulator (device process variation,
// read noise, synthetic datasets, Monte-Carlo sampling) draws from an
// explicitly-seeded `Rng` so experiments are bit-reproducible.  The
// engine is xoshiro256++ (public-domain construction by Blackman &
// Vigna): fast, tiny state, excellent statistical quality, and — unlike
// std::mt19937 + std::normal_distribution — identical output across
// standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace resipe {

/// Deterministically mixes a base seed with up to two stream indices
/// (SplitMix64 finalizer per mixing round).  Used wherever one user
/// seed must fan out into decorrelated per-trial streams — e.g. yield
/// sweeps hash (seed, sigma_index, chip_index) so every chip gets an
/// independent generator regardless of sweep order, and the engine
/// hashes (fault_seed, layer_index) so layers see independent defect
/// realizations.
std::uint64_t hash_seed(std::uint64_t seed, std::uint64_t stream_a,
                        std::uint64_t stream_b = 0);

/// xoshiro256++ pseudo-random generator with explicit seeding and
/// deterministic distribution transforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from `seed` via splitmix64 so that nearby seeds
  /// give decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Log-uniform double in [lo, hi) (both strictly positive): uniform
  /// in the exponent, so each decade is sampled equally often.  The
  /// natural draw for physical parameters spanning orders of magnitude
  /// (resistances, time constants, defect rates).
  double log_uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic; caches the spare).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Creates an independent child stream (jump-free: reseeds from this
  /// stream's output).  Useful for giving each Monte-Carlo trial its own
  /// generator while keeping the parent sequence stable.
  Rng split();

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace resipe
