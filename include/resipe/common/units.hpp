// SI unit helpers used throughout the ReSiPE code base.
//
// All physical quantities in this project are stored as plain `double`
// in base SI units (seconds, volts, amperes, ohms, siemens, farads,
// watts, joules, square meters).  These literals and constants make the
// call sites read like the paper: `100.0 * units::ns`, `100.0 * units::fF`.
#pragma once

namespace resipe::units {

// ---- time -----------------------------------------------------------------
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// ---- electrical -----------------------------------------------------------
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;

inline constexpr double Ohm = 1.0;
inline constexpr double kOhm = 1e3;
inline constexpr double MOhm = 1e6;

inline constexpr double S = 1.0;  // siemens
inline constexpr double mS = 1e-3;
inline constexpr double uS = 1e-6;

inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// ---- power / energy -------------------------------------------------------
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;
inline constexpr double J = 1.0;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;

// ---- geometry -------------------------------------------------------------
inline constexpr double m2 = 1.0;
inline constexpr double mm2 = 1e-6;
inline constexpr double um2 = 1e-12;

// ---- frequency ------------------------------------------------------------
inline constexpr double Hz = 1.0;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// ---- throughput -----------------------------------------------------------
// Operations counted as in the PIM literature: one multiply-accumulate
// contributes two operations (one multiply + one add).
inline constexpr double GOPS = 1e9;
inline constexpr double TOPS = 1e12;

}  // namespace resipe::units
