// Minimal CSV emission for experiment data series.
//
// Bench binaries print human-readable tables to stdout and, when asked,
// dump the underlying series as CSV so figures can be re-plotted.
#pragma once

#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace resipe {

/// Column-oriented CSV writer.  All columns must have equal length at
/// write time.
class CsvWriter {
 public:
  /// Adds a numeric column.
  void add_column(std::string name, std::vector<double> values);

  /// Adds a string column (e.g. a design label).
  void add_text_column(std::string name, std::vector<std::string> values);

  /// Writes header + rows; throws if column lengths disagree.
  void write(std::ostream& os) const;

  /// Convenience: writes to the named file; throws on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Column {
    std::string name;
    std::vector<std::string> cells;
  };
  std::vector<Column> columns_;
};

/// Escapes a CSV field (quotes when it contains comma/quote/newline).
std::string csv_escape(const std::string& field);

}  // namespace resipe
