// Deterministic parallel runtime: a lazily-initialized global thread
// pool exposed through parallel_for / parallel_for_chunked.
//
// Determinism contract: callers decompose a sweep into independent
// work items that are pure functions of their index (each item derives
// its randomness from a hash_seed stream keyed on the index, never
// from a shared generator), write results into index-addressed slots,
// and reduce on the calling thread in index order.  The thread count
// then only changes *when* an item runs, never *what* it computes or
// the order it is folded, so 1-, 2- and N-thread runs are bit-identical.
//
// Thread-count resolution (highest precedence first):
//   1. an explicit `threads` argument (config knob / CLI --threads),
//   2. set_default_threads(n) — the process-wide default,
//   3. the RESIPE_THREADS environment variable,
//   4. std::thread::hardware_concurrency().
// `threads == 1` is the escape hatch: the loop runs inline on the
// calling thread and never touches the pool.
#pragma once

#include <cstddef>
#include <functional>

namespace resipe {

/// Machine parallelism: RESIPE_THREADS if set (clamped to >= 1), else
/// std::thread::hardware_concurrency() (>= 1).  The env var is read
/// once, on first use.
std::size_t hardware_threads();

/// Sets the process-wide default thread count used when a loop is
/// called with threads == 0.  Pass 0 to restore auto (hardware_threads).
void set_default_threads(std::size_t n);

/// The resolved process-wide default: the last set_default_threads(n>0)
/// value, else hardware_threads().
std::size_t default_threads();

/// True while the calling thread is executing inside a parallel_for
/// body.  Nested parallel_for calls detect this and run inline
/// serially instead of deadlocking or oversubscribing the pool.
bool in_parallel_region() noexcept;

/// Runs body(i) for i in [0, n), distributing indices over `threads`
/// workers (0 = default_threads()).  Items are claimed dynamically one
/// at a time, so heavy-tailed arms load-balance.  The first exception
/// thrown by any item is rethrown on the calling thread after the
/// region drains; remaining items are abandoned.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Runs body(begin, end) over contiguous chunks of ~grain indices
/// (grain == 0 picks n / (4 * threads), at least 1).  Use this when
/// per-item work is tiny (per-image inference) so scheduling overhead
/// amortizes, or when the body wants per-chunk scratch buffers.
void parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads = 0);

/// Callbacks a subsystem can register to bracket each thread's
/// participation in a parallel region (the caller's slice included).
/// Telemetry uses this to install per-thread counter shards that are
/// merged at pool join, keeping the hot path free of shared atomics.
/// Keeping the hooks generic (plain function pointers, registered at
/// runtime) lets resipe_common stay free of any telemetry dependency.
struct ParallelHooks {
  void (*thread_begin)() = nullptr;  // runs before the first chunk
  void (*thread_end)() = nullptr;    // runs after the last chunk
};

/// Installs region hooks (replacing any previous ones).  Hooks must be
/// safe to call from multiple threads concurrently.
void set_parallel_hooks(const ParallelHooks& hooks);

namespace detail {
/// Number of persistent workers the global pool currently owns
/// (excludes the calling thread).  Exposed for tests.
std::size_t pool_worker_count();
}  // namespace detail

}  // namespace resipe
