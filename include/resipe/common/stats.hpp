// Descriptive statistics and least-squares curve fitting.
//
// The Fig.5 reproduction fits polynomial "curves" through (t_in*G, t_out)
// samples grouped by total conductance, exactly as the paper does for
// Curve 1 (G <= 1.6 mS), Curve 2 (2.5 mS) and Curve 3 (3.2 mS).  The
// fitting here is ordinary least squares on a Vandermonde system solved
// by Gaussian elimination with partial pivoting — small and dependency
// free.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace resipe {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/stddev/min/max of `xs`. Empty input gives all zeros.
Summary summarize(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length samples.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Root-mean-square error between two equal-length samples.
double rmse(std::span<const double> a, std::span<const double> b);

/// Result of a least-squares polynomial fit y ~ sum_k c[k] x^k.
struct PolyFit {
  std::vector<double> coeffs;  ///< c[0] + c[1] x + ... + c[d] x^d
  double r2 = 0.0;             ///< coefficient of determination

  /// Evaluates the fitted polynomial at x (Horner).
  double operator()(double x) const;
};

/// Fits a degree-`degree` polynomial through (xs, ys) by ordinary least
/// squares.  Requires xs.size() == ys.size() and at least degree+1 points.
PolyFit polyfit(std::span<const double> xs, std::span<const double> ys,
                int degree);

/// Straight-line fit y = a + b x; returns {a, b} plus r^2 via PolyFit.
PolyFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Solves the dense linear system A x = b in place (Gaussian elimination
/// with partial pivoting).  `a` is row-major n x n.  Throws on a
/// numerically singular matrix.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b);

/// Evenly spaced values: n points from lo to hi inclusive (n >= 2),
/// or the single value lo when n == 1.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Relative error |a - b| / max(|b|, eps); convenient for shape checks.
double relative_error(double a, double b, double eps = 1e-30);

}  // namespace resipe
