// Error handling primitives.
//
// The library reports contract violations by throwing `resipe::Error`
// (deriving from std::runtime_error) so that example programs and the
// test suite can observe precise failure messages.  Use:
//
//   RESIPE_REQUIRE(cond, "message with " << streamable << " parts");
//
// for precondition checks on public API boundaries, and
// RESIPE_ASSERT for internal invariants (also throws; never compiled out,
// simulation correctness beats the nanoseconds saved).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace resipe {

/// Exception type thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace resipe

#define RESIPE_REQUIRE(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream resipe_require_os_;                                \
      resipe_require_os_ << msg; /* NOLINT */                               \
      ::resipe::detail::throw_error("precondition", #cond, __FILE__,        \
                                    __LINE__, resipe_require_os_.str());    \
    }                                                                       \
  } while (false)

#define RESIPE_ASSERT(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream resipe_assert_os_;                                 \
      resipe_assert_os_ << msg; /* NOLINT */                                \
      ::resipe::detail::throw_error("invariant", #cond, __FILE__, __LINE__, \
                                    resipe_assert_os_.str());               \
    }                                                                       \
  } while (false)
