// ReRAM device model.
//
// Behavioral model of a bipolar metal-oxide resistive switching cell in
// the 1T1R (one-transistor-one-ReRAM) configuration used by ReSiPE
// (Sec. III-D / IV-A).  A cell stores an analog conductance between
// G_min = 1/HRS and G_max = 1/LRS; MVM weights are mapped onto this
// range with a finite number of programmable levels, programmed with a
// write-verify loop of finite tolerance, and perturbed by process
// variation (normal-distributed relative error per [21, 22]) plus
// per-read noise.
#pragma once

#include <cstddef>

#include "resipe/common/rng.hpp"
#include "resipe/common/units.hpp"

namespace resipe::device {

/// Power-law retention drift closed form:
///   G(t) = G0 * (t / t0)^(-nu)   for t > t0,
///   G(t) = G0                    for t <= t0 (or nu <= 0).
/// Shared by ReramCell::drifted_g and the reliability subsystem so the
/// two never disagree.
double drift_conductance(double g0, double elapsed, double t0, double nu);

/// Static parameters of a ReRAM technology corner.
struct ReramSpec {
  /// Low / high resistance state bounds (ohm).  The usable conductance
  /// window is [1/r_hrs, 1/r_lrs].
  double r_lrs = 10.0 * units::kOhm;
  double r_hrs = 1.0 * units::MOhm;

  /// Number of distinct programmable conductance levels between G_min
  /// and G_max (inclusive); 32 levels ~ 5-bit cells, typical for
  /// multi-level metal-oxide devices [18].
  int levels = 32;

  /// Relative tolerance of the write-verify programming loop: the
  /// programmed conductance lands within +-tolerance of the target
  /// before process variation is applied.
  double write_verify_tolerance = 0.01;

  /// Relative sigma of static process variation on the programmed
  /// conductance (normal distribution per [21, 22]).  The accuracy
  /// experiment (Fig. 7) sweeps this over {0, 5, 10, 15, 20}%.
  double variation_sigma = 0.0;

  /// Relative sigma of cycle-to-cycle read noise applied per MVM.
  double read_noise_sigma = 0.0;

  /// Stuck-at-fault rates ([21, 22]-style reliability modelling): the
  /// probability that a cell is stuck at LRS (G_max) or HRS (G_min)
  /// regardless of the programmed target.
  double stuck_lrs_rate = 0.0;
  double stuck_hrs_rate = 0.0;

  /// Conductance retention drift: G(t) = G0 * (t / t0)^(-drift_nu)
  /// for t > t0 (power-law drift typical of metal-oxide ReRAM).
  /// drift_nu = 0 disables drift.
  double drift_nu = 0.0;
  double drift_t0 = 1.0;  ///< reference time (s) after programming

  /// On-resistance of the 1T1R access transistor in series with the
  /// cell (ohm).
  double transistor_r_on = 1.0 * units::kOhm;

  /// Layout area of one 1T1R cell (m^2).  ~30 F^2 at 65 nm, the usual
  /// 1T1R budget with the access transistor sized for write current.
  double cell_area = 30.0 * 65e-9 * 65e-9;

  /// Maximum conductance (siemens) = 1 / LRS.
  double g_max() const { return 1.0 / r_lrs; }
  /// Minimum conductance (siemens) = 1 / HRS.
  double g_min() const { return 1.0 / r_hrs; }

  /// Validates invariants (throws resipe::Error when violated).
  void validate() const;

  /// The corner used for the Fig. 5 characterization: LRS 10 k,
  /// HRS 1 M (Sec. III-D).
  static ReramSpec characterization();

  /// The corner used for neural-network mapping: 50 k .. 1 M per
  /// [18, 19], chosen so a 32-cell column keeps total G <= 1.6 mS
  /// (Sec. III-D conclusion).
  static ReramSpec nn_mapping();
};

/// Outcome of an explicit write-verify programming attempt sequence.
enum class ProgramStatus : std::uint8_t {
  kOk = 0,        ///< landed within tolerance inside the budget
  kGaveUp,        ///< budget exhausted; best attempt kept (flagged, not silent)
  kWriteFailed,   ///< endurance wear-out turned the write into a hard fault
  kHardFault,     ///< cell already carries an injected hard fault
};

/// Budget of the bounded write-verify loop (reliability path).  The
/// legacy single-draw model in `program()` folds the whole loop into
/// one residue draw; `program_verified()` models the attempts
/// explicitly so give-ups and endurance wear are observable.
struct ProgramBudget {
  int max_attempts = 5;            ///< verify iterations before giving up
  double endurance_cycles = 0.0;   ///< device endurance (0 = not modelled)
  double wear_cycles = 0.0;        ///< write cycles already consumed
  /// Shape of the wear-out failure law: p_fail = (wear/endurance)^shape.
  double failure_shape = 2.0;
};

/// Result of `program_verified()`.
struct ProgramResult {
  ProgramStatus status = ProgramStatus::kOk;
  int attempts = 0;               ///< write pulses issued
  double relative_error = 0.0;    ///< |landed - target| / target (pre-variation)
};

/// A single programmed cell: target conductance, the value actually
/// landed after quantization + write-verify + process variation, and a
/// read accessor that adds read noise.
class ReramCell {
 public:
  ReramCell() = default;

  /// Programs the cell to the conductance nearest `target_g` (siemens).
  /// `target_g` is clamped to the spec's window, snapped to the nearest
  /// level, offset by a write-verify residue and a static process
  /// variation draw.
  void program(const ReramSpec& spec, double target_g, Rng& rng);

  /// Same as program() but without any telemetry bookkeeping or the
  /// per-call enabled check.  Batch programmers (Crossbar::program)
  /// hoist the telemetry decision out of their cell loop and call this
  /// on the disabled path so programming stays at seed-build speed.
  void program_untracked(const ReramSpec& spec, double target_g, Rng& rng);

 private:
  /// The programming body, templated so the telemetry bookkeeping is
  /// absent from the runtime-disabled path (one branch in program()).
  template <bool kInstrumented>
  void program_impl(const ReramSpec& spec, double target_g, Rng& rng);

 public:
  /// Explicit bounded write-verify loop: issues up to
  /// `budget.max_attempts` write pulses, accepting the first landing
  /// within the spec's verify tolerance of the (clamped, quantized)
  /// target.  When the budget runs out the *best* attempt is kept and
  /// the result says `kGaveUp` — an explicit status instead of the
  /// silent best-effort of the folded model.  When
  /// `budget.endurance_cycles` is set, every pulse can wear the cell
  /// out into a permanent stuck-at-HRS hard fault (`kWriteFailed`).
  /// Terminates for any finite `target_g` (the target is clamped to
  /// the spec window first — see the out-of-range regression tests).
  ProgramResult program_verified(const ReramSpec& spec, double target_g,
                                 Rng& rng, const ProgramBudget& budget);

  /// Injects a permanent hard fault: the cell is pinned at G_max
  /// (stuck-at-LRS) or G_min (stuck-at-HRS) and later `program*` calls
  /// cannot move it (re-programming a defective cell has no effect).
  void force_stuck_lrs(const ReramSpec& spec);
  void force_stuck_hrs(const ReramSpec& spec);

  /// True when the cell carries an injected/worn-out permanent fault
  /// (as opposed to a per-programming stochastic stuck draw).
  bool hard_faulted() const { return hard_fault_; }

  /// The conductance requested (post-clamp, pre-quantization).
  double target_g() const { return target_g_; }

  /// The static programmed conductance (no read noise).
  double programmed_g() const { return programmed_g_; }

  /// One read observation: programmed conductance plus fresh read
  /// noise, clamped to be non-negative.
  double read_g(const ReramSpec& spec, Rng& rng) const;

  /// Conductance after `elapsed` seconds of retention (power-law
  /// drift; identity when the spec disables drift or the cell is
  /// stuck).
  double drifted_g(const ReramSpec& spec, double elapsed) const;

  /// True when the programming draw left this cell stuck at a rail.
  bool is_stuck() const { return stuck_; }

  /// Effective conductance seen from the bitline through the 1T1R
  /// access transistor: series combination 1/(R_cell + R_on).
  double effective_g(const ReramSpec& spec) const;

 private:
  double target_g_ = 0.0;
  double programmed_g_ = 0.0;
  bool stuck_ = false;
  bool hard_fault_ = false;
};

/// Maps abstract weights in [0, 1] onto the conductance window of a
/// spec: w = 0 -> G_min, w = 1 -> G_max, linear in between, quantized
/// to the spec's level count.
class ConductanceQuantizer {
 public:
  explicit ConductanceQuantizer(const ReramSpec& spec);

  /// Ideal (unquantized) conductance for weight w in [0, 1]; clamps w.
  double weight_to_g(double w) const;

  /// Nearest-level conductance for weight w in [0, 1].
  double weight_to_g_quantized(double w) const;

  /// Inverse map: conductance -> weight in [0, 1] (clamped).
  double g_to_weight(double g) const;

  /// Quantization step between adjacent levels (siemens).
  double step() const { return step_; }

  int levels() const { return levels_; }

 private:
  double g_min_;
  double g_max_;
  double step_;
  int levels_;
};

}  // namespace resipe::device
