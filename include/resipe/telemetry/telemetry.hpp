// Umbrella header + instrumentation macros.
//
// Hot paths instrument through these macros so a build with
// -DRESIPE_TELEMETRY_DISABLED (CMake: -DRESIPE_TELEMETRY=OFF) compiles
// them away entirely.  In an instrumented build every macro first checks
// `telemetry::enabled()` — one relaxed atomic load — so the disabled-at-
// runtime cost is a predictable branch.
//
//   RESIPE_TELEM_SCOPE("resipe_core.tile.execute");       // RAII span
//   RESIPE_TELEM_COUNT("device.reram.program_ops", 1);    // counter +=
//   RESIPE_TELEM_GAUGE("eval.yield.last_rmse", rmse);     // gauge =
//   RESIPE_TELEM_OBSERVE("crossbar.solve_s", dt, 1e-6, 1e-3, 1.0);
//   RESIPE_TELEM_INSTANT("eval.yield.sigma_done");        // trace marker
//
// Metric names follow `subsystem.component.metric`.
#pragma once

#include "resipe/telemetry/metrics.hpp"
#include "resipe/telemetry/timer.hpp"
#include "resipe/telemetry/trace.hpp"

#if defined(RESIPE_TELEMETRY_DISABLED)

// Constant-folds the whole instrumented branch away in -OFF builds.
#define RESIPE_TELEM_ACTIVE() false

#define RESIPE_TELEM_SCOPE(name) \
  do {                           \
  } while (false)
#define RESIPE_TELEM_COUNT(name, n) \
  do {                              \
  } while (false)
#define RESIPE_TELEM_GAUGE(name, v) \
  do {                              \
  } while (false)
#define RESIPE_TELEM_OBSERVE(name, v, ...) \
  do {                                     \
  } while (false)
#define RESIPE_TELEM_INSTANT(name) \
  do {                             \
  } while (false)

#else

#define RESIPE_TELEM_CONCAT_IMPL(a, b) a##b
#define RESIPE_TELEM_CONCAT(a, b) RESIPE_TELEM_CONCAT_IMPL(a, b)

// Guard for hand-rolled instrumented blocks: lets ns-scale hot paths
// collect event flags locally and pay exactly one predicted branch for
// all their bookkeeping.
#define RESIPE_TELEM_ACTIVE() (::resipe::telemetry::enabled())

#define RESIPE_TELEM_SCOPE(name)                             \
  ::resipe::telemetry::ScopedTimer RESIPE_TELEM_CONCAT(      \
      resipe_telem_scope_, __LINE__)(name)

#define RESIPE_TELEM_COUNT(name, n)                                        \
  do {                                                                     \
    if (::resipe::telemetry::enabled()) {                                  \
      static ::resipe::telemetry::Counter& resipe_telem_counter_ =         \
          ::resipe::telemetry::MetricRegistry::instance().counter(name);   \
      ::resipe::telemetry::counter_add(resipe_telem_counter_,              \
                                       static_cast<std::uint64_t>(n));     \
    }                                                                      \
  } while (false)

#define RESIPE_TELEM_GAUGE(name, v)                                        \
  do {                                                                     \
    if (::resipe::telemetry::enabled()) {                                  \
      static ::resipe::telemetry::Gauge& resipe_telem_gauge_ =             \
          ::resipe::telemetry::MetricRegistry::instance().gauge(name);     \
      resipe_telem_gauge_.set(static_cast<double>(v));                     \
    }                                                                      \
  } while (false)

#define RESIPE_TELEM_OBSERVE(name, v, ...)                                 \
  do {                                                                     \
    if (::resipe::telemetry::enabled()) {                                  \
      static ::resipe::telemetry::Histogram& resipe_telem_hist_ =          \
          ::resipe::telemetry::MetricRegistry::instance().histogram(       \
              name, {__VA_ARGS__});                                        \
      resipe_telem_hist_.observe(static_cast<double>(v));                  \
    }                                                                      \
  } while (false)

#define RESIPE_TELEM_INSTANT(name)                                         \
  do {                                                                     \
    if (::resipe::telemetry::TraceSession::instance().active()) {          \
      ::resipe::telemetry::TraceSession::instance().instant(name);         \
    }                                                                      \
  } while (false)

#endif  // RESIPE_TELEMETRY_DISABLED
