// RAII scoped timers that nest into a per-thread call-tree profile.
//
// A ScopedTimer costs nothing when telemetry is disabled (one relaxed
// atomic load in the constructor).  When enabled it reads the steady
// clock twice, aggregates {count, total time} into the calling thread's
// call tree keyed by the nesting path, and — if a TraceSession is active
// — records a Chrome-trace complete event.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resipe/telemetry/metrics.hpp"

namespace resipe::telemetry {

/// Steady-clock timestamp in nanoseconds (arbitrary epoch).
std::uint64_t now_ns() noexcept;

/// One node of the aggregated call tree.  `name` points at the string
/// literal passed to ScopedTimer and must outlive the profile.
struct ProfileNode {
  const char* name = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<std::unique_ptr<ProfileNode>> children;

  /// Finds or creates the child with this name.
  ProfileNode& child(const char* child_name);
};

/// Per-thread aggregated call-tree profile.
class CallProfile {
 public:
  /// The calling thread's profile (created on first use).
  static CallProfile& this_thread();

  const ProfileNode& root() const { return root_; }
  void reset();

  /// Indented text rendering: name, call count, total and mean time.
  std::string render() const;

  // Internal: nesting state used by ScopedTimer.
  ProfileNode* current() { return current_; }
  void set_current(ProfileNode* node) { current_ = node; }

 private:
  CallProfile() { current_ = &root_; }

  ProfileNode root_;
  ProfileNode* current_;
};

/// RAII span.  Construct with a string literal; the pointer is retained.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept : name_(name) {
    if (enabled()) enter();
  }
  ~ScopedTimer() {
    if (active_) leave();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void enter() noexcept;
  void leave();

  const char* name_;
  std::uint64_t start_ns_ = 0;
  ProfileNode* node_ = nullptr;
  ProfileNode* parent_ = nullptr;
  bool active_ = false;
};

}  // namespace resipe::telemetry
