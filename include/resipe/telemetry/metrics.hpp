// Process-wide metric registry: named counters, gauges and fixed-bucket
// histograms.
//
// Metrics follow the `subsystem.component.metric` naming scheme (e.g.
// "device.reram.program_ops").  Instrumentation sites use the macros in
// telemetry.hpp, which compile to nothing when RESIPE_TELEMETRY_DISABLED
// is defined and to a cached-pointer fast path otherwise.  At runtime the
// whole subsystem is gated by `telemetry::enabled()`: off by default,
// switched on programmatically (set_enabled) or via the RESIPE_TELEMETRY
// environment variable ("1"/"on" enables, "0"/"off" disables).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace resipe::telemetry {

namespace detail {
/// -1 = unresolved, 0 = disabled, 1 = enabled.
extern std::atomic<int> g_enabled;
/// Resolves the RESIPE_TELEMETRY environment variable (slow path, runs
/// at most a handful of times under races).
bool resolve_enabled() noexcept;
}  // namespace detail

/// True when instrumentation should record.  First call resolves the
/// RESIPE_TELEMETRY environment variable; subsequent calls are a single
/// relaxed atomic load, cheap enough for ns-scale hot paths.
inline bool enabled() noexcept {
  const int state = detail::g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return detail::resolve_enabled();
}

/// Overrides the environment toggle for this process.
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.  Thread-safe.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Thread-local batch of pending counter increments.  The parallel
/// runtime installs one per worker around each parallel region (via
/// resipe::set_parallel_hooks); RESIPE_TELEM_COUNT then accumulates
/// into plain non-atomic cells and the shard drains into the shared
/// atomics exactly once, at pool join.  The hot path stays free of
/// cross-thread cache traffic and totals are independent of how work
/// was scheduled.
class CounterShard {
 public:
  /// Accumulates locally.  Regions touch a handful of distinct
  /// counters, so a linear pointer scan beats hashing.
  void add(Counter& c, std::uint64_t n) {
    for (Cell& cell : cells_) {
      if (cell.counter == &c) {
        cell.pending += n;
        return;
      }
    }
    cells_.push_back(Cell{&c, n});
  }

  /// Adds every pending cell to its shared counter and zeroes it.
  void flush() noexcept {
    for (Cell& cell : cells_) {
      if (cell.pending > 0) cell.counter->add(cell.pending);
      cell.pending = 0;
    }
  }

 private:
  struct Cell {
    Counter* counter;
    std::uint64_t pending;
  };
  std::vector<Cell> cells_;
};

namespace detail {
/// Shard installed on the calling thread while it participates in a
/// parallel region; nullptr otherwise.
extern thread_local CounterShard* t_counter_shard;
}  // namespace detail

/// Hot-path counter increment: routes through the thread's shard when
/// one is installed (inside a parallel region), else hits the shared
/// atomic directly.
inline void counter_add(Counter& c, std::uint64_t n) {
  if (CounterShard* shard = detail::t_counter_shard) {
    shard->add(c, n);
  } else {
    c.add(n);
  }
}

/// Registers the parallel-runtime hooks that install/flush per-thread
/// counter shards around every parallel region.  Runs automatically at
/// static-initialization time in instrumented builds; exposed for
/// builds compiled with RESIPE_TELEMETRY_DISABLED that still want
/// sharding for hand-rolled counter_add call sites.
void install_parallel_counter_shards();

/// Last-write-wins instantaneous value.  Thread-safe.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram.  Bucket i counts observations <= bounds[i];
/// one implicit overflow bucket catches the rest.  Tracks the exact
/// min/max observed so percentile estimates can clamp the open-ended
/// first and overflow buckets.  Thread-safe.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest value observed; 0 when the histogram is empty.
  double min() const noexcept;
  double max() const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every registered metric, for export.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Process-wide registry.  Lookup registers on first use and returns a
/// reference whose address stays valid for the life of the process, so
/// call sites may cache it.  reset_values() zeroes every metric but never
/// removes entries (cached references stay safe).
class MetricRegistry {
 public:
  static MetricRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is only consulted on first registration of `name`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;
  void reset_values();

 private:
  MetricRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Exact-sample percentile (q in [0, 1]) over an ascending-sorted value
/// vector.  This is THE percentile convention of the repo: the same
/// rank-mass linear interpolation `histogram_percentile` applies to
/// bucketed data, specialized to one sample per bucket — feeding the
/// sorted samples of a dataset as the bucket bounds of a histogram
/// yields bit-identical percentiles (pinned by a shared test).  Every
/// exact-sample consumer (ServingStats latency percentiles, SLO
/// windows) routes through here so "p99" means one thing everywhere.
/// Contract: empty -> 0, single sample -> the sample, q=0 -> min,
/// q=1 -> max.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Estimates the q-th quantile (q in [0, 1]) of a bucketed histogram by
/// linear interpolation inside the bucket holding the q-th observation.
/// The open-ended first and overflow buckets are clamped to the exact
/// observed min/max, so p0 == min and p100 == max.  Edge cases are
/// part of the contract: an empty histogram returns 0 for every q, and
/// a single-sample histogram returns that observation (recovered from
/// `sum`) for every q.
double histogram_percentile(const MetricsSnapshot::HistogramData& h,
                            double q);

/// Percentile summary derived from a histogram snapshot.  Contract for
/// degenerate inputs: count == 0 -> all fields zero (inf/-inf
/// accumulation sentinels never leak); count == 1 -> mean, min, max and
/// every percentile equal the single observation.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};
HistogramSummary summarize_histogram(const MetricsSnapshot::HistogramData& h);

/// Writes the registry snapshot as a flat JSON document.  Histograms
/// carry min/max and p50/p95/p99 percentile summaries next to their
/// raw buckets.
void write_metrics_json(std::ostream& os);
void write_metrics_json_file(const std::string& path);

/// Renders the registry snapshot as aligned ASCII tables (counters,
/// gauges, histogram percentile summaries) via common/table.
std::string render_metrics_ascii();

/// Writes the registry snapshot as CSV (metric,type,value rows) through
/// common::CsvWriter.  Histograms flatten to `<name>.le_<bound>` rows
/// plus `<name>.count` / `<name>.sum`.
void write_metrics_csv(std::ostream& os);
void write_metrics_csv_file(const std::string& path);

}  // namespace resipe::telemetry
