// Trace recording with Chrome trace-event JSON export.
//
// A TraceSession collects completed spans (from ScopedTimer) and instant
// markers, then serializes them in the Chrome trace-event format so the
// file loads directly in chrome://tracing or https://ui.perfetto.dev.
// The event's `cat` field is the `subsystem` prefix of the span name
// (everything before the first '.').
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace resipe::telemetry {

struct TraceEvent {
  std::string name;
  char phase = 'X';        // 'X' complete span, 'i' instant, 'C' counter
  std::uint64_t ts_ns = 0;  // relative to session start
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  double value = 0.0;      // counter-track sample ('C' events only)
};

class TraceSession {
 public:
  static TraceSession& instance();

  /// Clears previous events and begins recording.  Also flips the global
  /// telemetry enable so spans fire without a separate set_enabled call.
  void start();
  void stop();
  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Records a completed span.  `start_abs_ns` is a now_ns() timestamp.
  void record_complete(const char* name, std::uint64_t start_abs_ns,
                       std::uint64_t dur_ns);
  /// Records an instant marker at the current time.
  void instant(const char* name);
  /// Records a counter-track sample at the current time; the viewer
  /// draws one stacked-area track per distinct name.
  void counter(const char* name, double value);

  /// Caps the in-memory event buffer; further events are counted as
  /// dropped instead of stored.  Default: 1 << 20 events.
  void set_capacity(std::size_t max_events);
  std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::vector<TraceEvent> snapshot() const;

  /// Writes `{"traceEvents": [...]}` with events sorted by timestamp.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  TraceSession() = default;

  std::atomic<bool> active_{false};
  std::uint64_t t0_ns_ = 0;
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = std::size_t{1} << 20;
};

}  // namespace resipe::telemetry
