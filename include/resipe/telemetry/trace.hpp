// Trace recording with Chrome trace-event JSON export.
//
// A TraceSession collects completed spans (from ScopedTimer) and instant
// markers, then serializes them in the Chrome trace-event format so the
// file loads directly in chrome://tracing or https://ui.perfetto.dev.
// The event's `cat` field is the `subsystem` prefix of the span name
// (everything before the first '.').
//
// Beyond the live-instrumentation API (record_complete / instant /
// counter, stamped with the real clock), external exporters can append
// fully-formed events via add_event() — the serving layer uses this to
// replay its *virtual-clock* event journal as request/batch/chip lanes
// with flow arrows ('s'/'t'/'f' phases) linking a request's admission to
// its batch and its chip (serve/trace.hpp).  Tracks get human-readable
// names through set_thread_name(), emitted as Chrome metadata ('M')
// events ahead of the event stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace resipe::telemetry {

struct TraceEvent {
  std::string name;
  char phase = 'X';         // 'X' span, 'i' instant, 'C' counter,
                            // 's'/'t'/'f' flow start/step/end
  std::uint64_t ts_ns = 0;  // relative to session start
  std::uint64_t dur_ns = 0;
  std::uint32_t pid = 1;    // lane group (1 = live instrumentation)
  std::uint32_t tid = 0;
  double value = 0.0;       // counter-track sample ('C' events only)
  std::uint64_t flow_id = 0;  // binds 's'/'t'/'f' events into one arrow
  std::string args_json;    // pre-serialized "args" object ("" = none)
};

class TraceSession {
 public:
  static TraceSession& instance();

  /// Clears previous events and begins recording.  Also flips the global
  /// telemetry enable so spans fire without a separate set_enabled call.
  void start();
  void stop();
  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Records a completed span.  `start_abs_ns` is a now_ns() timestamp.
  void record_complete(const char* name, std::uint64_t start_abs_ns,
                       std::uint64_t dur_ns);
  /// Records an instant marker at the current time.
  void instant(const char* name);
  /// Records a counter-track sample at the current time; the viewer
  /// draws one stacked-area track per distinct name.
  void counter(const char* name, double value);

  /// Appends a fully-formed event (external exporters replaying their
  /// own clock; the caller fills ts_ns/pid/tid itself).  Unlike the live
  /// recorders this does not require an active session — an exporter
  /// must never lose events to a stopped flag — but it honors the
  /// capacity cap and drop counter like every other path.
  void add_event(TraceEvent event);

  /// Names a track for the viewer (Chrome `thread_name` metadata,
  /// emitted per distinct (pid, tid) ahead of the event stream).
  /// First writer wins so a thread's original name sticks.
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       const std::string& name);
  /// Names the calling thread's live-instrumentation track.
  void name_current_thread(const std::string& name);
  /// The calling thread's live-instrumentation tid.
  static std::uint32_t current_thread_id();

  /// Caps the in-memory event buffer; further events are counted as
  /// dropped instead of stored.  Default: 1 << 20 events.
  void set_capacity(std::size_t max_events);
  std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::vector<TraceEvent> snapshot() const;
  /// Registered (pid, tid) -> name track labels.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
  thread_names() const;

  /// Writes `{"traceEvents": [...]}` with metadata first, then events
  /// sorted by timestamp.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  TraceSession() = default;

  std::atomic<bool> active_{false};
  std::uint64_t t0_ns_ = 0;
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> names_;
  std::size_t capacity_ = std::size_t{1} << 20;
};

}  // namespace resipe::telemetry
