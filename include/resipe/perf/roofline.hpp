// Roofline model: machine calibration, per-kernel achieved rates and
// the combined report (JSON + ASCII), plus flamegraph-compatible
// folded-stack export of the ScopedTimer call tree.
//
// The report joins three sources:
//   * the WorkRegistry (analytic FLOPs / bytes / elapsed ns per kernel),
//   * a one-shot machine calibration (STREAM-style triad bandwidth and
//     an FMA-chain peak-FLOPs micro-bench, plus a stable fingerprint),
//   * optional hardware counters (PerfCounterGroup) for IPC and cache
//     behavior over the measured region.
//
// Per kernel it reports achieved GFLOP/s, GB/s and arithmetic intensity
// (FLOP/byte) — all three derived from the same flops/bytes/seconds, so
// GFLOP/s == intensity * GB/s holds to rounding by construction — and
// classifies the kernel compute- vs memory-bound against the machine's
// ridge point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "resipe/perf/perf_counters.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/timer.hpp"

namespace resipe::perf {

/// Calibrated machine ceilings + identity.
struct MachineProfile {
  double peak_gflops = 0.0;  ///< FMA-chain micro-bench (single core)
  double peak_gbs = 0.0;     ///< STREAM-triad bandwidth (single core)
  std::string cpu_model;     ///< /proc/cpuinfo "model name" (or "unknown")
  std::size_t cores = 0;     ///< hardware_concurrency
  std::string fingerprint;   ///< "cpu_model;cores;word=8" identity string
  std::string fingerprint_hash;  ///< FNV-1a 64 of fingerprint, hex

  /// Arithmetic intensity at which the machine turns compute-bound.
  double ridge() const {
    return peak_gbs > 0.0 ? peak_gflops / peak_gbs : 0.0;
  }
};

/// Machine identity without running the calibration loops.
std::string machine_fingerprint();

/// One-shot calibration micro-bench.  `ms_per_bench` bounds the time
/// spent per ceiling (the loops repeat until the budget is used, best
/// rate wins); `stream_doubles` sizes the triad arrays (3 arrays of
/// this many doubles — keep it well past LLC for a bandwidth number).
MachineProfile calibrate_machine(double ms_per_bench = 60.0,
                                 std::size_t stream_doubles = 1 << 22);

/// Achieved rates for one kernel region.
struct KernelRates {
  std::string name;
  std::uint64_t calls = 0;
  double seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  double gflops = 0.0;     ///< achieved, 0 when untimed
  double gbs = 0.0;        ///< achieved, 0 when untimed
  double intensity = 0.0;  ///< FLOP/byte (shape property, time-free)
  bool timed = false;      ///< region had an enclosing WorkScope
  bool memory_bound = false;
  double attainable_gflops = 0.0;  ///< roofline ceiling at this intensity
  double efficiency = 0.0;         ///< achieved / attainable
};

/// The full report.
struct RooflineReport {
  MachineProfile machine;
  PerfCounts counters;  ///< whole measured region (available may be false)
  std::vector<KernelRates> kernels;

  /// Aligned table + ASCII roofline chart (log-log, '*' markers).
  std::string render_ascii() const;
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;
};

/// Builds per-kernel rates from the current WorkRegistry contents.
/// Kernels with zero recorded work are omitted.
RooflineReport build_roofline_report(const MachineProfile& machine,
                                     const PerfCounts& counters = {});

/// Folded-stack (Brendan Gregg flamegraph.pl) rendering of a call-tree
/// profile: one `a;b;c <microseconds>` line per node, self time (total
/// minus children).  Feed straight into flamegraph.pl or speedscope.
std::string folded_stacks(const telemetry::CallProfile& profile);
void write_folded_stacks_file(const std::string& path,
                              const telemetry::CallProfile& profile);

/// Call-tree render (telemetry::CallProfile::render layout) with
/// achieved GFLOP/s / GB/s / intensity appended to every node whose
/// span name has work recorded in the registry; work is attributed to
/// nodes by the region's mean per-call cost times the node's count.
std::string render_annotated_profile(
    const telemetry::CallProfile& profile);

}  // namespace resipe::perf
