// Hardware performance counters via Linux perf_event_open, with a
// portable wall-clock fallback.
//
// A PerfCounterGroup opens one software-clock group with cycles,
// instructions, cache-reference/miss and branch-miss events for the
// calling thread.  Opening can fail for many legitimate reasons —
// non-Linux build, perf_event_paranoid, seccomp'd containers, missing
// PMU — so failure is a first-class result: `available()` is false,
// `detail()` says why, and reads still return valid wall-clock time so
// every caller can degrade to time-only reporting.
//
// Counters are normalized for multiplexing: each event is scaled by
// time_enabled / time_running, the standard perf convention.
#pragma once

#include <cstdint>
#include <string>

namespace resipe::perf {

/// One interval's counter readings.  Derived rates return 0 when the
/// inputs they need were not collected.
struct PerfCounts {
  bool available = false;  ///< hardware counters collected
  std::string detail;      ///< why unavailable (empty when available)
  double wall_ns = 0.0;    ///< always valid

  double cycles = 0.0;
  double instructions = 0.0;
  double cache_references = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;

  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
  double cache_miss_rate() const {
    return cache_references > 0.0 ? cache_misses / cache_references : 0.0;
  }
  double ghz() const { return wall_ns > 0.0 ? cycles / wall_ns : 0.0; }
};

/// RAII counter session for the calling thread.  start()/stop() bracket
/// the measured region; read() is valid after stop().
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when the hardware events opened successfully.
  bool available() const { return available_; }
  /// Human-readable reason when available() is false.
  const std::string& detail() const { return detail_; }

  void start();
  void stop();
  PerfCounts read() const;

 private:
  static constexpr int kEvents = 5;
  int fds_[kEvents] = {-1, -1, -1, -1, -1};
  bool available_ = false;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t stop_ns_ = 0;
};

}  // namespace resipe::perf
