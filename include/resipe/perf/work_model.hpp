// Kernel work accounting: analytic FLOP/byte models for the hot-path
// kernels, aggregated per region into a process-wide registry.
//
// The telemetry layer (PR 1) can say *where* time goes; this layer says
// *why* — every annotated kernel records, next to its elapsed time, the
// analytic number of floating-point operations and bytes of algorithmic
// memory traffic the call performed, so a profile region can report
// achieved GFLOP/s, GB/s and arithmetic intensity and a roofline model
// can classify it compute- vs memory-bound.
//
// Accounting is opt-in (set_accounting_enabled / RESIPE_PERF=1) and
// rides the telemetry build flag: with -DRESIPE_TELEMETRY=OFF every
// macro below compiles away and the registry is never touched.  The
// models only *count* — they never read or write kernel data — so
// enabling accounting cannot perturb results (pinned by the
// perf_accounting_identity fuzzer contract).
//
//   RESIPE_PERF_KERNEL("resipe_core.fast_mvm.mvm_times",
//                      fast_mvm_cost(rows, cols));   // RAII: time + work
//   RESIPE_PERF_WORK("resipe_core.spike_codec.encode",
//                    spike_encode_cost());           // work only
//
// Region names deliberately match the RESIPE_TELEM_SCOPE span names so
// call-tree profile nodes and work entries join on the same key.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "resipe/telemetry/timer.hpp"

namespace resipe::perf {

/// Analytic cost of one kernel call.  `flops` counts double-precision
/// arithmetic operations (exp/log/div each count as one); `bytes`
/// counts algorithmic traffic — every operand load and result store at
/// double width, matrix operands assumed streamed from memory once per
/// pass, register/cache reuse inside one pass not double-counted.
struct WorkCost {
  double flops = 0.0;
  double bytes = 0.0;
};

// --- per-kernel analytic models ----------------------------------------
//
// The constants below are the documented contract: tests hand-count
// them on small shapes and the roofline report depends on them, so a
// change to a kernel's inner loop must update its model (and the test)
// in the same commit.

/// FastMvm::mvm_times, one sample over a rows x cols conductance matrix:
///   S1 wordline ramp:  4 flops per row   (guard compare, exp/min ramp,
///                                         multiply, subtract)
///   current sums:      2 flops per cell  (multiply + add)
///   S2 recovery:      10 flops per column (v_eq, v_cog, threshold,
///                                          crossing log chain, delay,
///                                          slice compare)
/// bytes: read t_in + write v_wl (2*rows), stream the matrix and re-read
/// v_wl per column (2*rows*cols), per-column constants g_total/k/offset
/// (3*cols), write t_out (cols) — all at 8 bytes.
WorkCost fast_mvm_cost(std::size_t rows, std::size_t cols);

/// FastMvm::mvm_times_batch over n samples: flops are exactly n single
/// calls; bytes differ because each column's weights stream once per
/// *batch*, not once per sample:
///   8 * (2*n*rows  +  rows*cols  +  n*rows*cols  +  3*cols  +  3*n*cols)
/// (t_in/v_wl staging, one matrix pass, per-sample v_wl re-reads,
/// per-column constants, weighted store+load and t_out stores).
WorkCost fast_mvm_batch_cost(std::size_t rows, std::size_t cols,
                             std::size_t n);

/// ResipeTile::execute (faithful per-cell model), one MVM:
///   GD decode 6 flops/row, column drives 4 flops/cell, COG conversion
///   12 flops/column; bytes 8 * (2*rows + 2*rows*cols + 2*cols).
WorkCost tile_execute_cost(std::size_t rows, std::size_t cols);

/// SpikeCodec::encode / decode, one value: constant small cost
/// (ramp crossing / ramp voltage chain + clamps).
WorkCost spike_encode_cost();
WorkCost spike_decode_cost();

/// events::EventQueue::build over n input lines: the activity
/// predicate (2 compares + the slice bound, counted as 3 flops per
/// line); bytes read the times and write up to one event per line
/// (time + row at double width, conservatively).
WorkCost event_queue_build_cost(std::size_t rows);

/// FastMvm::mvm_times_sparse with `active` woken rows over cols
/// columns: S1 wordline ramp 4 flops per active row, current sums
/// 2 flops per active cell, S2 recovery 10 flops per column; bytes
/// read the wake set + staged times, stream only the active rows of
/// the matrix, and keep the dense per-column constant/output traffic.
WorkCost event_mvm_sparse_cost(std::size_t active, std::size_t cols);

/// FastMvm::idle_times (a sleeping column group): S2 recovery only,
/// 10 flops per column; bytes the per-column constants + output.
WorkCost event_idle_cost(std::size_t cols);

/// Skipped-group resolution in accumulate_events: one add per column
/// from the baked idle-recovery constants; bytes read the constants
/// and read-modify-write the accumulator.
WorkCost event_idle_resolve_cost(std::size_t cols);

/// crossbar::drives_with_ir_drop: per cell the wire-divider effective_g
/// (6 flops) plus the two accumulations (3 flops), per column the v_eq
/// division (2 flops); bytes 8 * (rows + rows*cols + 2*cols).
WorkCost ir_drop_solve_cost(std::size_t rows, std::size_t cols);

/// circuits::transient_mac RK4 reference (approximate — the S1 segment
/// count depends on spike arrival times): per RK4 step of the n-input
/// COG node 4 derivative evaluations at 3*n flops plus the 10-flop
/// state update, S1/S2 ramp integrations at 18 flops per step.
WorkCost transient_mac_cost(std::size_t inputs, std::size_t steps);

// --- runtime switch ----------------------------------------------------

namespace detail {
/// -1 = unresolved, 0 = off, 1 = on.
extern std::atomic<int> g_accounting;
bool resolve_accounting() noexcept;
}  // namespace detail

/// True when kernels should record work.  First call resolves the
/// RESIPE_PERF environment variable ("1"/"on" enables); afterwards one
/// relaxed atomic load.  Off by default: the disabled cost of an
/// annotated kernel is a single predicted branch.
inline bool accounting_enabled() noexcept {
  const int state = detail::g_accounting.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return detail::resolve_accounting();
}

/// Overrides the environment toggle for this process.
void set_accounting_enabled(bool on) noexcept;

// --- registry ----------------------------------------------------------

/// Accumulated work for one kernel region.  Thread-safe; names follow
/// the ScopedTimer span names so profiles and work join on the key.
class KernelWork {
 public:
  /// Adds one call's analytic cost (`calls` lets batch loops account a
  /// whole batch with one add).
  void add_work(const WorkCost& c, std::uint64_t calls = 1) noexcept {
    calls_.fetch_add(calls, std::memory_order_relaxed);
    flops_.fetch_add(c.flops, std::memory_order_relaxed);
    bytes_.fetch_add(c.bytes, std::memory_order_relaxed);
  }
  /// Adds elapsed wall time attributed to this kernel.
  void add_time(std::uint64_t ns) noexcept {
    ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t timed_ns() const noexcept {
    return ns_.load(std::memory_order_relaxed);
  }
  double flops() const noexcept {
    return flops_.load(std::memory_order_relaxed);
  }
  double bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    calls_.store(0, std::memory_order_relaxed);
    ns_.store(0, std::memory_order_relaxed);
    flops_.store(0.0, std::memory_order_relaxed);
    bytes_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<double> flops_{0.0};
  std::atomic<double> bytes_{0.0};
};

/// Point-in-time copy of one registry entry.
struct KernelWorkSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t timed_ns = 0;
  double flops = 0.0;
  double bytes = 0.0;
};

/// Process-wide work registry.  Same contract as MetricRegistry:
/// lookup registers on first use, references stay valid for the life
/// of the process, reset_values() zeroes but never removes.
class WorkRegistry {
 public:
  static WorkRegistry& instance();

  KernelWork& kernel(std::string_view name);
  std::vector<KernelWorkSnapshot> snapshot() const;
  void reset_values();

 private:
  WorkRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<KernelWork>, std::less<>> kernels_;
};

/// RAII kernel span: measures elapsed time into a KernelWork entry and,
/// when the cost is non-zero, books one call's work on exit.  A
/// zero-cost scope only contributes time — used to time a region whose
/// work is accounted at finer grain inside it (e.g. a codec loop).
class WorkScope {
 public:
  explicit WorkScope(KernelWork& kernel, WorkCost cost = {}) noexcept
      : kernel_(kernel), cost_(cost), active_(accounting_enabled()) {
    if (active_) start_ns_ = telemetry::now_ns();
  }
  ~WorkScope() {
    if (!active_) return;
    kernel_.add_time(telemetry::now_ns() - start_ns_);
    if (cost_.flops != 0.0 || cost_.bytes != 0.0) kernel_.add_work(cost_);
  }

  /// Replaces the cost booked at scope exit (for kernels whose cost is
  /// only known mid-body).
  void set_cost(const WorkCost& cost) noexcept { cost_ = cost; }

  WorkScope(const WorkScope&) = delete;
  WorkScope& operator=(const WorkScope&) = delete;

 private:
  KernelWork& kernel_;
  WorkCost cost_;
  bool active_ = false;
  std::uint64_t start_ns_ = 0;
};

}  // namespace resipe::perf

#if defined(RESIPE_TELEMETRY_DISABLED)

#define RESIPE_PERF_KERNEL(name, ...) \
  do {                                \
  } while (false)
#define RESIPE_PERF_WORK(name, ...) \
  do {                              \
  } while (false)

#else

#define RESIPE_PERF_CONCAT_IMPL(a, b) a##b
#define RESIPE_PERF_CONCAT(a, b) RESIPE_PERF_CONCAT_IMPL(a, b)

/// RAII: elapsed time + one call's analytic cost into the named kernel.
/// The cost expression is only evaluated when accounting is enabled.
#define RESIPE_PERF_KERNEL(name, ...)                                     \
  static ::resipe::perf::KernelWork& RESIPE_PERF_CONCAT(                  \
      resipe_perf_kernel_, __LINE__) =                                    \
      ::resipe::perf::WorkRegistry::instance().kernel(name);              \
  ::resipe::perf::WorkScope RESIPE_PERF_CONCAT(resipe_perf_scope_,        \
                                               __LINE__)(                 \
      RESIPE_PERF_CONCAT(resipe_perf_kernel_, __LINE__),                  \
      ::resipe::perf::accounting_enabled()                                \
          ? (__VA_ARGS__)                                                 \
          : ::resipe::perf::WorkCost{})

/// Work-only accounting (no timing) for ns-scale call sites; the cost
/// expression is only evaluated when accounting is enabled.
#define RESIPE_PERF_WORK(name, ...)                                       \
  do {                                                                    \
    if (::resipe::perf::accounting_enabled()) {                           \
      static ::resipe::perf::KernelWork& resipe_perf_work_kernel_ =       \
          ::resipe::perf::WorkRegistry::instance().kernel(name);          \
      resipe_perf_work_kernel_.add_work(__VA_ARGS__);                     \
    }                                                                     \
  } while (false)

#endif  // RESIPE_TELEMETRY_DISABLED
