// 65 nm component library for power / area / latency estimation.
//
// NeuroSim-style: each peripheral block is characterized by a silicon
// area, a static (bias) power while enabled, and a dynamic energy per
// event.  A design model (ReSiPE or a baseline) composes components,
// counts events per MVM, and aggregates into an EnergyReport.
//
// The default constants are calibrated to the 65 nm-class publications
// the paper cites — the time-based subranging ADC of [20]
// (2.3 mW @ 950 MS/s, 8 bit), ISAAC-class DAC arrays [9, 14, 17], the
// spiking macros of [11, 13] and the PWM engine of [15].  Table II is a
// *relative* comparison, so what matters is that each design pays for
// exactly the events its data format incurs; the constants set the
// scale.
#pragma once

#include <string>

#include "resipe/common/units.hpp"

namespace resipe::energy {

/// Process technology corner.
struct Technology {
  double feature_size = 65e-9;      ///< drawn feature size F (m)
  double vdd = 1.2 * units::V;      ///< core supply
  double clock = 1.0 * units::GHz;  ///< timing-calibration clock (IV-A)

  /// Area of one F^2 (m^2).
  double f2() const { return feature_size * feature_size; }
};

/// One peripheral block.
struct Component {
  std::string name;
  double area = 0.0;          ///< m^2
  double static_power = 0.0;  ///< W while the block is enabled
  double energy_per_op = 0.0; ///< J per event (conversion, spike, ...)

  /// Energy consumed by `ops` events plus `enabled_time` seconds of
  /// bias current.
  double energy(double ops, double enabled_time) const {
    return energy_per_op * ops + static_power * enabled_time;
  }
};

/// Factory for calibrated 65 nm components.
class ComponentLibrary {
 public:
  explicit ComponentLibrary(Technology tech = Technology{});

  const Technology& tech() const { return tech_; }

  /// Current-steering DAC driving one wordline with an analog level
  /// (level-based designs).  Energy per conversion grows 2^bits with
  /// resolution; the wordline is then held for the whole MVM, which is
  /// charged separately by the design model as crossbar static power.
  Component dac(int bits) const;

  /// Time-based subranging ADC per [20]: 2.3 mW at 950 MS/s, 8 bit ->
  /// 2.42 pJ/conversion; scaled by 2^(bits-8) for other resolutions.
  Component adc(int bits) const;

  /// Sample-and-hold (GD input channel / level-based column sampler).
  Component sample_hold() const;

  /// Continuous-time comparator; `bias` sets the speed/power tradeoff.
  /// ReSiPE's COG comparator must resolve ~mV on a 100 ns ramp and is
  /// the engine's dominant consumer (Sec. IV-B: COG = 98.1%).
  Component comparator(double bias = 55.0 * units::uW) const;

  /// Digital spike driver/receiver: one CV^2 line charge per spike.
  Component spike_driver() const;

  /// Rate-coding input spike modulator [11, 13]: clocked digital block
  /// emitting up to 2^bits - 1 spikes per window.
  Component spike_modulator(int bits,
                            double bias = 7.5 * units::uW) const;

  /// Integrate-and-fire output neuron (rate-coding column): membrane
  /// cap + comparator + reset + spike counter.
  Component integrate_fire_neuron(int counter_bits,
                                  double bias = 12.0 * units::uW) const;

  /// PWM pulse modulator [15]: per-row ramp + comparator + a line
  /// driver strong enough to hold the wordline for the whole
  /// duty-cycle-encoded duration.
  Component pulse_modulator(double bias = 100.0 * units::uW) const;

  /// Column integrator (PWM readout): op-amp + integration cap that
  /// must track the bitline for the whole modulation window [15].
  Component integrator(double bias = 295.0 * units::uW) const;

  /// Shared GD ramp generator (Vs source + Cgd + discharge switch).
  Component ramp_generator(double c_timing) const;

  /// MIM capacitor of the given capacitance (area ~ 2 fF/um^2 at
  /// 65 nm); the COG sampling cap.
  Component mim_capacitor(double capacitance) const;

  /// Simple synchronous digital logic block of `gate_count` NAND2
  /// equivalents switching at the tech clock with activity 0.1.
  Component digital_logic(std::size_t gate_count) const;

  /// Output latch / pulse-shaping chain (inverter + AND in Fig. 2).
  Component pulse_shaper() const;

 private:
  Technology tech_;
};

}  // namespace resipe::energy
