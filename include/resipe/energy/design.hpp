// Abstract PIM design model: the contract behind the Table II
// comparison.
//
// Every design (ReSiPE, level-based, PWM-based, rate-coding) answers
// the same questions for one fully-utilized crossbar of the same size:
// how much energy does one MVM cost, how long does it take end to end,
// how often can a new MVM start, and how much silicon does the engine
// occupy.  DesignPoint derives the paper's comparison metrics from
// those answers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "resipe/energy/report.hpp"

namespace resipe::energy {

/// Derived comparison metrics for one design at one operating point.
struct DesignPoint {
  std::string name;
  double energy_per_mvm = 0.0;   ///< J
  double latency = 0.0;          ///< s, input-to-output of one MVM
  double interval = 0.0;         ///< s, initiation interval (pipelined)
  double area = 0.0;             ///< m^2
  double ops_per_mvm = 0.0;      ///< 2 * rows * cols (MAC = 2 ops)
  double power = 0.0;            ///< W at full utilization
  double throughput = 0.0;       ///< ops/s at full utilization
  double power_efficiency = 0.0; ///< ops/J == throughput / power
};

/// A PIM engine model built around one crossbar array.
class DesignModel {
 public:
  virtual ~DesignModel() = default;

  /// Human-readable design name for the comparison table.
  virtual std::string name() const = 0;

  /// Energy/area accounting of one MVM at full array utilization.
  virtual EnergyReport mvm_report() const = 0;

  /// End-to-end latency of one MVM.
  virtual double mvm_latency() const = 0;

  /// Initiation interval: time between consecutive MVM starts when the
  /// engine pipeline is full.  Defaults to the latency (no pipelining).
  virtual double initiation_interval() const { return mvm_latency(); }

  /// Logical array dimensions (all Table II designs use 32 x 32).
  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;

  /// Evaluates the derived metrics.
  DesignPoint evaluate() const;
};

}  // namespace resipe::energy
