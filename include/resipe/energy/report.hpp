// Aggregation of per-component energy/area into design-level figures.
//
// A design model walks its block diagram, calling add() once per
// physical block instance group with the events that block saw during
// one MVM.  The report then yields total energy per MVM, average power
// over the MVM period, silicon area, and a per-block breakdown (used to
// check the paper's "COG cluster contributes 98.1% of power" claim).
#pragma once

#include <string>
#include <vector>

#include "resipe/energy/components.hpp"

namespace resipe::energy {

/// Per-MVM energy/area accounting for one design.
class EnergyReport {
 public:
  /// Records `count` instances of `component`, each performing `ops`
  /// events and staying enabled for `enabled_time` seconds during one
  /// MVM.
  void add(const Component& component, double count, double ops,
           double enabled_time);

  /// Records a raw contribution (e.g. crossbar array energy computed
  /// from currents rather than from a Component).
  void add_raw(const std::string& name, double energy, double area);

  /// Total energy of one MVM (J).
  double total_energy() const;

  /// Total silicon area (m^2).
  double total_area() const;

  /// Average power over an MVM period of `period` seconds (W).
  double average_power(double period) const;

  /// Fraction of total energy consumed by entries whose name contains
  /// `substring` (case-sensitive).
  double energy_share(const std::string& substring) const;

  struct Entry {
    std::string name;
    double energy = 0.0;
    double area = 0.0;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Renders the breakdown as an aligned ASCII table.
  std::string breakdown() const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace resipe::energy
