// Event-driven sparse execution knobs (see events/event_queue.hpp and
// DESIGN.md §15).
//
// Single-spike coding makes activity explicit: a row whose input value
// is zero encodes to t = 0, holds its wordline at exactly 0 V for the
// whole slice, and contributes exactly +0.0 to every column current
// sum.  The event engine exploits that — inputs become timestamped
// events, a column group (tile) is woken only when events fall inside
// its row window, and silent rows are skipped inside woken groups —
// while reproducing the dense reference bit for bit (pinned by the
// sparse_dense_identity contract and the test_events battery).
#pragma once

namespace resipe::resipe_core::events {

/// Master switch for the event-driven executor.  Disabled by default:
/// the engine then runs the exact legacy dense per-slice path and is
/// bit-identical to a build without this subsystem.  Enabled, logits
/// stay bit-identical at any thread count; only the work performed —
/// and the events/groups_woken perf accounting — changes.
struct EventConfig {
  bool enabled = false;

  /// Engine-level invariant check (called from EngineConfig::validate).
  /// A bool-only config has no invalid states today; the hook exists so
  /// future knobs (wake hysteresis, group granularity) validate in the
  /// same place as every other subsystem.
  void validate() const {}
};

}  // namespace resipe::resipe_core::events
