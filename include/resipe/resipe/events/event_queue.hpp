// Indexed spike-event queue for one input vector.
//
// The codec's spike-time semantics decide what counts as an event: a
// row carries a spike exactly when its arrival time is finite,
// strictly positive and inside the slice.  Everything else — t = 0
// (the encoding of value 0, a wordline that never leaves 0 V),
// kNoSpike (= +infinity, a silent line), NaN/negative garbage, or a
// spike past the slice — is silent under the dense reference's own
// validity predicate and contributes exactly +0.0 to every current
// sum, which is what makes skipping it bit-exact.
//
// The queue keeps two deterministic views of the same spikes:
//   * events(): dispatch order, sorted by (time, row) — the tie-break
//     on the row index makes simultaneous spikes replay identically
//     on every run and at every thread count;
//   * active_rows(): row-ascending index used by the sparse kernels,
//     which must preserve the dense summation order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace resipe::resipe_core::events {

/// One spike: arrival time (seconds into the slice) + source row.
struct SpikeEvent {
  double time = 0.0;
  std::uint32_t row = 0;
};

class EventQueue {
 public:
  /// The activity predicate shared with the dense reference: rows
  /// failing it hold their wordline at exactly 0 V for the whole
  /// slice (FastMvm::wordline_voltages maps them to +0.0).
  static bool carries_spike(double t, double slice_length) {
    return t > 0.0 && t <= slice_length;
  }

  /// Rebuilds the queue from one input vector of spike times.
  /// Deterministic: same input, same queue, regardless of thread
  /// count or build flags.
  void build(std::span<const double> t_in, double slice_length);

  /// Spikes in dispatch order: ascending (time, row).
  std::span<const SpikeEvent> events() const { return events_; }

  /// Rows that carry a spike, ascending by row index.
  std::span<const std::uint32_t> active_rows() const { return active_rows_; }

  /// Active rows with global index in [row0, row0 + rows) — the wake
  /// set of a column group owning that row window.  The returned span
  /// aliases active_rows() (row-ascending); O(log n) binary search.
  std::span<const std::uint32_t> rows_in_range(std::size_t row0,
                                               std::size_t rows) const;

  /// True when any event falls inside the row window.
  bool any_in_range(std::size_t row0, std::size_t rows) const {
    return !rows_in_range(row0, rows).empty();
  }

  /// Number of queued events (== number of active rows: single-spike
  /// coding carries at most one event per row per slice).
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Rows the queue was built over.
  std::size_t total_rows() const { return total_rows_; }

  /// Fraction of rows carrying a spike, in [0, 1] (0 for empty input).
  double activity() const {
    return total_rows_ == 0
               ? 0.0
               : static_cast<double>(events_.size()) /
                     static_cast<double>(total_rows_);
  }

 private:
  std::vector<SpikeEvent> events_;          // sorted by (time, row)
  std::vector<std::uint32_t> active_rows_;  // sorted by row
  std::size_t total_rows_ = 0;
};

}  // namespace resipe::resipe_core::events
