// Event-driven execution of programmed column groups.
//
// The executor is the wake/sleep policy between an EventQueue and the
// FastMvm kernels: a column group (one programmed tile block) runs
// only when input events fall inside its row window.  A sleeping
// group's outputs are still physical — every comparator watches a COG
// that never charged — so they are recovered in O(cols) by
// FastMvm::idle_times; a woken group runs the sparse kernel over its
// wake set only.  Both paths are bit-identical to the dense
// mvm_times on the same input (see fast_mvm.hpp), which is what keeps
// the engine-level determinism contract intact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "resipe/resipe/events/event_queue.hpp"
#include "resipe/resipe/fast_mvm.hpp"

namespace resipe::resipe_core::events {

/// Work counters for one event-driven pass (one input vector through
/// one programmed matrix).  These are what "activity-proportional"
/// means operationally: groups_skipped * O(rows x cols) is the dense
/// work the executor never performed.
struct ExecStats {
  std::uint64_t events_delivered = 0;  ///< wake events routed to groups
  std::uint64_t groups_woken = 0;      ///< blocks that ran the sparse MVM
  std::uint64_t groups_skipped = 0;    ///< blocks recovered idle in O(cols)
  std::uint64_t rows_skipped = 0;      ///< silent rows never driven

  void merge(const ExecStats& other) {
    events_delivered += other.events_delivered;
    groups_woken += other.groups_woken;
    groups_skipped += other.groups_skipped;
    rows_skipped += other.rows_skipped;
  }
};

class EventExecutor {
 public:
  /// Runs one column group event-driven.  `row0` is the group's global
  /// row offset, `t_group_in` its staged input times (fast.rows()
  /// entries), `t_out` its output spike times (fast.cols() entries).
  /// Bit-identical to fast.mvm_times(t_group_in, t_out).
  void run_group(const FastMvm& fast, const EventQueue& queue,
                 std::size_t row0, std::span<const double> t_group_in,
                 std::span<double> t_out, ExecStats& stats);

 private:
  std::vector<std::uint32_t> local_rows_;  // group-local wake set scratch
};

}  // namespace resipe::resipe_core::events
