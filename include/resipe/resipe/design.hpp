// ReSiPE design model for the Table II comparison.
//
// Wraps one ResipeTile programmed to a representative (mid-window)
// conductance pattern and driven with mid-scale inputs on every
// wordline ("the same array sizes of ReRAM devices are fully utilized",
// Sec. IV-B), then reports per-MVM energy through the tile's accounting.
//
// Timing: one MVM spans S1 + S2 = 2 slices (latency 200 ns at the paper
// operating point).  Because the S2 output conversion and the next
// input's S1 sampling read the *same* GD ramp, a tile accepts a new
// input vector every slice — initiation interval = 1 slice.
#pragma once

#include <memory>

#include "resipe/energy/design.hpp"
#include "resipe/resipe/tile.hpp"

namespace resipe::resipe_core {

/// Table-II operating point for ReSiPE.
class ResipeDesign : public energy::DesignModel {
 public:
  /// `utilization_input` is the normalized input value driven on every
  /// wordline when estimating energy (0.5 = mid-scale).
  ResipeDesign(circuits::CircuitParams params = {},
               device::ReramSpec spec = device::ReramSpec::nn_mapping(),
               std::size_t rows = 32, std::size_t cols = 32,
               double utilization_input = 0.5,
               std::uint64_t program_seed = 7);

  std::string name() const override { return "ReSiPE (single-spiking)"; }
  energy::EnergyReport mvm_report() const override;
  double mvm_latency() const override;
  double initiation_interval() const override;
  std::size_t rows() const override { return tile_->rows(); }
  std::size_t cols() const override { return tile_->cols(); }

  const ResipeTile& tile() const { return *tile_; }

 private:
  std::vector<circuits::Spike> nominal_inputs() const;

  circuits::CircuitParams params_;
  double utilization_input_;
  std::unique_ptr<ResipeTile> tile_;
};

}  // namespace resipe::resipe_core
