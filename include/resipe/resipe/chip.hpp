// Chip-level aggregation: a whole network's worth of ReSiPE tiles.
//
// The tile model answers "what does one 32x32 MVM cost"; this module
// answers the deployment questions a user asks before taping out: how
// many tiles does network X need, how much silicon is that, what are
// the inference latency / throughput under the two-slice pipeline, and
// what is the chip power at full rate.  Layers map spatially (every
// layer owns its tiles, as Fig. 1's layer pipeline requires); conv
// layers reuse one tile group across output positions, which makes
// them the temporal bottleneck the report calls out.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/nn/model.hpp"

namespace resipe::resipe_core {

/// Mapping footprint of one matrix layer.
struct LayerMapping {
  std::string description;      ///< layer type + shape
  bool is_conv = false;
  std::size_t logical_rows = 0; ///< MAC fan-in
  std::size_t logical_cols = 0; ///< neurons / output channels
  std::size_t tiles = 0;        ///< 32x32-class tiles allocated
  std::size_t mvms_per_input = 0;  ///< tile MVM starts per inference
  /// Slices this layer needs per input once its pipeline is full: 1
  /// for dense layers, one per output position for conv layers (the
  /// tile group is time-multiplexed across positions).
  std::size_t slices_per_input = 0;
};

/// Whole-chip roll-up.
struct ChipReport {
  std::vector<LayerMapping> layers;
  std::size_t total_tiles = 0;
  double tile_area = 0.0;       ///< m^2 per tile (incl. periphery)
  double total_area = 0.0;      ///< m^2
  double slice_length = 0.0;    ///< s
  /// Latency of one input through the layer pipeline (s).
  double input_latency = 0.0;
  /// Initiation interval of the full chip: the slowest layer's
  /// slices_per_input times the slice length (s).
  double initiation_interval = 0.0;
  /// Inferences per second once the pipeline is full.
  double throughput = 0.0;
  /// MAC operations per inference (2 ops per MAC).
  double ops_per_inference = 0.0;
  /// Chip power at full utilization (W), from the per-tile MVM energy.
  double power = 0.0;
  /// ops/s/W.
  double power_efficiency = 0.0;

  /// Renders the per-layer table + the roll-up.
  std::string render() const;
};

/// Chip-level configuration.
struct ChipConfig {
  circuits::CircuitParams circuit;
  device::ReramSpec device = device::ReramSpec::nn_mapping();
  std::size_t tile_rows = 32;
  std::size_t tile_cols = 32;
  /// Physical columns per logical column (2 for differential pairs).
  std::size_t cols_per_logical = 2;
  /// Conv position parallelism: each conv layer's tile group is
  /// replicated this many times so it processes `conv_replication`
  /// output positions per slice — the paper's future-work lever
  /// ("better layer-wise computing latency", Sec. V) traded against
  /// area.  1 = the baseline time-multiplexed mapping.
  std::size_t conv_replication = 1;
};

/// Maps `model` (its Dense/Conv2d layers) onto tiles and rolls up the
/// chip-level numbers.  `input_shape` is one sample's shape, e.g.
/// {1, 28, 28} — needed to size conv layers.
ChipReport map_network(nn::Sequential& model,
                       const std::vector<std::size_t>& input_shape,
                       const ChipConfig& config = {});

}  // namespace resipe::resipe_core
