// ReSiPE tile: one GD + one ReRAM crossbar + one COG cluster (Fig. 4).
//
// The tile executes a full two-slice single-spiking MVM:
//   S1  — the GD samples each input spike's arrival on the shared ramp
//         and holds the voltage on its wordline.
//   comp stage (dt, end of S1) — every column's Thevenin network
//         charges its COG capacitor.
//   S2  — each COG compares the held voltage against the restarting GD
//         ramp and emits a single output spike (Eq. 4-6).
#pragma once

#include <cstddef>
#include <vector>

#include "resipe/circuits/column_output_generator.hpp"
#include "resipe/circuits/global_decoder.hpp"
#include "resipe/circuits/params.hpp"
#include "resipe/circuits/spike.hpp"
#include "resipe/circuits/waveform.hpp"
#include "resipe/crossbar/crossbar.hpp"
#include "resipe/energy/report.hpp"

namespace resipe::resipe_core {

/// One crossbar-sized single-spiking processing tile.
class ResipeTile {
 public:
  ResipeTile(const circuits::CircuitParams& params, std::size_t rows,
             std::size_t cols, const device::ReramSpec& spec);

  /// Programs the crossbar from row-major conductance targets.
  void program(std::span<const double> g_targets, Rng& rng);

  /// Injects permanent stuck-at faults into the crossbar (see
  /// reliability::generate_fault_map); survives reprogramming.
  void inject_faults(const reliability::FaultMap& map);

  /// Per-bitline health flags: false where a hard-faulted cell feeds
  /// the column, i.e. the output spike is computed over a defect.
  std::vector<bool> healthy_columns() const {
    return xbar_.healthy_columns();
  }

  std::size_t rows() const { return xbar_.rows(); }
  std::size_t cols() const { return xbar_.cols(); }
  const crossbar::Crossbar& crossbar() const { return xbar_; }
  const circuits::CircuitParams& params() const { return params_; }
  const circuits::GlobalDecoder& gd() const { return gd_; }
  const circuits::ColumnOutputGenerator& cog() const { return cog_; }

  /// Full behavioral MVM: input spikes (one per wordline) -> output
  /// spikes (one per bitline).  When `read_noise` is non-null, fresh
  /// cycle-to-cycle conductance noise is drawn for this MVM.
  std::vector<circuits::Spike> execute(
      const std::vector<circuits::Spike>& inputs,
      Rng* read_noise = nullptr) const;

  /// MVM result with per-column trust flags (graceful degradation).
  struct FlaggedResult {
    std::vector<circuits::Spike> spikes;
    /// column_ok[j] == false: spikes[j] was computed over at least one
    /// hard-faulted cell and should not be trusted blindly.
    std::vector<bool> column_ok;
    std::size_t degraded_columns = 0;
  };

  /// `execute()` plus the health flags: faulty columns still produce a
  /// best-effort spike (the engine degrades, it does not halt), but the
  /// caller is told which outputs crossed a defect.
  FlaggedResult execute_flagged(const std::vector<circuits::Spike>& inputs,
                                Rng* read_noise = nullptr) const;

  /// The sampled COG voltages (end of the computation stage) for the
  /// given inputs — the intermediate quantity of Eq. (3).
  std::vector<double> sample_voltages(
      const std::vector<circuits::Spike>& inputs) const;

  /// The paper's ideal linear model, Eq. (6):
  ///   t_out,j = dt / Ccog * sum_i(t_in,i * G_ij)
  /// (no clamping — values beyond the slice indicate over-range).
  std::vector<double> ideal_times(
      const std::vector<circuits::Spike>& inputs) const;

  /// End-to-end latency of one MVM: S1 + S2.
  double latency() const { return 2.0 * params_.slice_length; }

  /// Records the Fig. 3 waveforms — V(Cgd) in S1, V(Ccog) through the
  /// computation stage, the S2 ramp and the output spike of `column` —
  /// into `rec` with `samples_per_slice` points per slice.
  void trace(const std::vector<circuits::Spike>& inputs, std::size_t column,
             circuits::WaveformRecorder& rec,
             std::size_t samples_per_slice = 200) const;

  /// Per-MVM energy/area accounting for this tile (feeds Table II).
  energy::EnergyReport energy_report(
      const std::vector<circuits::Spike>& inputs) const;

 private:
  circuits::CircuitParams params_;
  crossbar::Crossbar xbar_;
  circuits::GlobalDecoder gd_;
  circuits::ColumnOutputGenerator cog_;
};

}  // namespace resipe::resipe_core
