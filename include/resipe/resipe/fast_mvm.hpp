// Flattened single-spiking MVM executor for network-scale inference.
//
// ResipeTile is the faithful object-per-cell model; running a VGG-class
// network through it would spend most of its time chasing ReramCell
// objects.  FastMvm snapshots a programmed crossbar into flat arrays
// and precomputes everything input-independent:
//
//   * the effective conductance matrix (post variation, post 1T1R),
//   * per-column total conductance g_tot_j,
//   * per-column saturation factor k_j = 1 - exp(-dt * g_tot_j / Ccog),
//
// so one MVM costs one dot product per column plus one log for the S2
// inversion.  Bit-identical to ResipeTile::execute for the same
// programmed array (asserted by the property tests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/crossbar/crossbar.hpp"

namespace resipe::resipe_core {

/// Immutable snapshot of a programmed tile, optimized for repeated MVMs.
class FastMvm {
 public:
  /// Snapshots the effective conductances of `xbar` under `params`.
  FastMvm(const circuits::CircuitParams& params,
          const crossbar::Crossbar& xbar);

  /// Direct construction from a flat row-major effective-conductance
  /// matrix (used by the layer executor, which programs virtual tiles
  /// without instantiating Crossbar objects per block).
  FastMvm(const circuits::CircuitParams& params, std::size_t rows,
          std::size_t cols, std::vector<double> g_effective);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const circuits::CircuitParams& params() const { return params_; }
  double g_total(std::size_t col) const { return g_total_[col]; }

  /// Per-column saturation factor k_j = 1 - exp(-dt * g_total_j / Ccog)
  /// (or its dt/tau linearization in linear mode).  Together with
  /// g_total this is the per-column calibration trim that converts a
  /// sampled COG voltage back into the raw current-sum:
  ///   sum_i(V_i G_ij) = V_cog,j * g_total_j / k_j.
  double k(std::size_t col) const { return k_[col]; }

  /// Installs per-column comparator input offsets (volts, one per
  /// column) — the COG cluster's device mismatch.  They add to the
  /// global params.comparator_offset.
  void set_column_offsets(std::vector<double> offsets);

  /// Converts input spike times (seconds, one per row; use
  /// `kNoSpike` = infinity for silent lines) into output spike times.
  /// Outputs that would fall outside the slice are reported as
  /// `kNoSpike`.
  void mvm_times(std::span<const double> t_in, std::span<double> t_out) const;

  /// Reusable scratch for mvm_times_batch.  Hoist one per worker (e.g.
  /// thread_local) so steady-state batched MVMs never touch the heap.
  struct BatchScratch {
    std::vector<double> v_wl;      // [n, rows] wordline voltages
    std::vector<double> weighted;  // [n] per-column current sums
  };

  /// Batched mvm_times: `t_in` is row-major [n, rows], `t_out` is
  /// row-major [n, cols].  Bit-identical per sample to n calls of
  /// mvm_times — same summation order, same recovery chain — but the
  /// per-column inner loops run across samples over contiguous
  /// column-major scratch, so the dot products and the exp/log
  /// inversion chain vectorize instead of re-walking the matrix per
  /// sample.
  void mvm_times_batch(std::span<const double> t_in, std::size_t n,
                       std::span<double> t_out, BatchScratch& scratch) const;

  /// The ideal Eq.(6) linear-model times for the same inputs.
  void ideal_times(std::span<const double> t_in,
                   std::span<double> t_out) const;

  static constexpr double kNoSpike =
      std::numeric_limits<double>::infinity();

 private:
  void precompute();

  /// Fills v_wl[0, rows) with the S1 wordline voltages for one sample.
  void wordline_voltages(std::span<const double> t_in, double* v_wl) const;

  /// Shared S2 recovery: current-sum -> threshold -> crossing -> spike
  /// time (or kNoSpike).  `silent` counts suppressed outputs.
  double recover_time(double weighted, std::size_t col,
                      std::size_t* silent) const;

  circuits::CircuitParams params_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> g_cm_;     // column-major effective conductances:
                                 // g_cm_[c * rows_ + r].  Column-major
                                 // keeps each column's weights
                                 // contiguous for the per-column dot
                                 // products (single and batched paths).
  std::vector<double> g_total_;  // per column
  std::vector<double> k_;        // per-column saturation factor
  std::vector<double> offsets_;  // per-column comparator mismatch
};

}  // namespace resipe::resipe_core
