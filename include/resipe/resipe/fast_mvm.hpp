// Flattened single-spiking MVM executor for network-scale inference.
//
// ResipeTile is the faithful object-per-cell model; running a VGG-class
// network through it would spend most of its time chasing ReramCell
// objects.  FastMvm snapshots a programmed crossbar into flat arrays
// and precomputes everything input-independent:
//
//   * the effective conductance matrix (post variation, post 1T1R),
//   * per-column total conductance g_tot_j,
//   * per-column saturation factor k_j = 1 - exp(-dt * g_tot_j / Ccog),
//
// so one MVM costs one dot product per column plus one log for the S2
// inversion.  Bit-identical to ResipeTile::execute for the same
// programmed array (asserted by the property tests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/crossbar/crossbar.hpp"

namespace resipe::resipe_core {

/// Immutable snapshot of a programmed tile, optimized for repeated MVMs.
class FastMvm {
 public:
  /// Snapshots the effective conductances of `xbar` under `params`.
  FastMvm(const circuits::CircuitParams& params,
          const crossbar::Crossbar& xbar);

  /// Direct construction from a flat row-major effective-conductance
  /// matrix (used by the layer executor, which programs virtual tiles
  /// without instantiating Crossbar objects per block).
  FastMvm(const circuits::CircuitParams& params, std::size_t rows,
          std::size_t cols, std::vector<double> g_effective);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const circuits::CircuitParams& params() const { return params_; }
  double g_total(std::size_t col) const { return g_total_[col]; }

  /// Per-column saturation factor k_j = 1 - exp(-dt * g_total_j / Ccog)
  /// (or its dt/tau linearization in linear mode).  Together with
  /// g_total this is the per-column calibration trim that converts a
  /// sampled COG voltage back into the raw current-sum:
  ///   sum_i(V_i G_ij) = V_cog,j * g_total_j / k_j.
  double k(std::size_t col) const { return k_[col]; }

  /// Installs per-column comparator input offsets (volts, one per
  /// column) — the COG cluster's device mismatch.  They add to the
  /// global params.comparator_offset.
  void set_column_offsets(std::vector<double> offsets);

  /// Converts input spike times (seconds, one per row; use
  /// `kNoSpike` = infinity for silent lines) into output spike times.
  /// Outputs that would fall outside the slice are reported as
  /// `kNoSpike`.
  void mvm_times(std::span<const double> t_in, std::span<double> t_out) const;

  /// The ideal Eq.(6) linear-model times for the same inputs.
  void ideal_times(std::span<const double> t_in,
                   std::span<double> t_out) const;

  static constexpr double kNoSpike =
      std::numeric_limits<double>::infinity();

 private:
  void precompute();

  circuits::CircuitParams params_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> g_;        // row-major effective conductances
  std::vector<double> g_total_;  // per column
  std::vector<double> k_;        // per-column saturation factor
  std::vector<double> offsets_;  // per-column comparator mismatch
};

}  // namespace resipe::resipe_core
