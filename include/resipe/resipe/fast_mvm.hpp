// Flattened single-spiking MVM executor for network-scale inference.
//
// ResipeTile is the faithful object-per-cell model; running a VGG-class
// network through it would spend most of its time chasing ReramCell
// objects.  FastMvm snapshots a programmed crossbar into flat arrays
// and precomputes everything input-independent:
//
//   * the effective conductance matrix (post variation, post 1T1R),
//   * per-column total conductance g_tot_j,
//   * per-column saturation factor k_j = 1 - exp(-dt * g_tot_j / Ccog),
//
// so one MVM costs one dot product per column plus one log for the S2
// inversion.
//
// Two executions of the same math live here:
//
//   * the scalar reference path — the original loops, bit-identical to
//     ResipeTile::execute for the same programmed array (asserted by
//     the property tests), and what you get from a scalar build or
//     RESIPE_SIMD=scalar;
//   * the SIMD path (default on vector builds) — cache-blocked,
//     FMA-vectorized kernels over width-padded column-major storage.
//     Its row sums fold in vector-lane order and its exp/log are the
//     polynomial forms from common/simd.hpp, so outputs may differ
//     from the reference by a bounded reassociation/rounding error.
//     The `simd_equivalence` verify contract pins that bound; batched
//     and single-sample SIMD calls share every kernel, so batch ==
//     single stays bitwise exact on either path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/common/simd.hpp"
#include "resipe/crossbar/crossbar.hpp"

namespace resipe::resipe_core {

/// Immutable snapshot of a programmed tile, optimized for repeated MVMs.
class FastMvm {
 public:
  /// Cache-line-aligned storage so the vector kernels can use aligned
  /// loads over the padded arrays.
  using aligned_vector = std::vector<double, simd::AlignedAllocator<double>>;

  /// Snapshots the effective conductances of `xbar` under `params`.
  /// Throws if the crossbar has zero rows or columns.
  FastMvm(const circuits::CircuitParams& params,
          const crossbar::Crossbar& xbar);

  /// Direct construction from a flat row-major effective-conductance
  /// matrix (used by the layer executor, which programs virtual tiles
  /// without instantiating Crossbar objects per block).  Throws if
  /// rows or cols is zero.
  FastMvm(const circuits::CircuitParams& params, std::size_t rows,
          std::size_t cols, std::vector<double> g_effective);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const circuits::CircuitParams& params() const { return params_; }
  double g_total(std::size_t col) const { return g_total_[col]; }

  /// Per-column saturation factor k_j = 1 - exp(-dt * g_total_j / Ccog)
  /// (or its dt/tau linearization in linear mode).  Together with
  /// g_total this is the per-column calibration trim that converts a
  /// sampled COG voltage back into the raw current-sum:
  ///   sum_i(V_i G_ij) = V_cog,j * g_total_j / k_j.
  double k(std::size_t col) const { return k_[col]; }

  /// Installs per-column comparator input offsets (volts, one per
  /// column) — the COG cluster's device mismatch.  They add to the
  /// global params.comparator_offset.
  void set_column_offsets(std::vector<double> offsets);

  /// Converts input spike times (seconds, one per row; use
  /// `kNoSpike` = infinity for silent lines) into output spike times.
  /// Outputs that would fall outside the slice are reported as
  /// `kNoSpike`.
  void mvm_times(std::span<const double> t_in, std::span<double> t_out) const;

  /// Reusable scratch for mvm_times_batch.  Hoist one per worker (e.g.
  /// thread_local) so steady-state batched MVMs never touch the heap.
  /// Layout is an implementation detail of the selected kernel path.
  struct BatchScratch {
    aligned_vector v_wl;      // wordline voltages (padded per sample)
    aligned_vector weighted;  // per-column current sums
    aligned_vector t_cols;    // padded per-sample outputs (SIMD path)
  };

  /// Batched mvm_times: `t_in` is row-major [n, rows], `t_out` is
  /// row-major [n, cols].  Bit-identical per sample to n calls of
  /// mvm_times — both paths share their dot-product and recovery
  /// kernels — but the matrix is walked in cache-sized column blocks
  /// reused across the whole batch, with several samples accumulated
  /// per matrix load.
  void mvm_times_batch(std::span<const double> t_in, std::size_t n,
                       std::span<double> t_out, BatchScratch& scratch) const;

  /// Event-driven recovery for a group with no input events: every
  /// wordline held 0 V for the whole slice, so only the per-column
  /// comparator outcome remains — O(cols) instead of O(rows x cols).
  /// Bit-identical to mvm_times on an input whose every row fails the
  /// events::EventQueue::carries_spike predicate (the current sums of
  /// such an input are exactly +0.0 on both kernel paths).
  void idle_times(std::span<double> t_out) const;

  /// Event-driven MVM: `active_rows` (strictly ascending, group-local
  /// indices) lists the rows that carry a spike inside the slice;
  /// every other row is guaranteed silent by the caller (its dense
  /// wordline voltage is exactly +0.0).  Bit-identical to mvm_times on
  /// the same full input on either kernel path: the scalar sum skips
  /// only exact +0.0 terms, and the SIMD path skips whole vector-width
  /// row chunks, which leaves the fixed FMA/reduction tree — and so
  /// every rounding — untouched.  Cost is O(active x cols) for the dot
  /// products.
  void mvm_times_sparse(std::span<const double> t_in,
                        std::span<const std::uint32_t> active_rows,
                        std::span<double> t_out) const;

  /// The ideal Eq.(6) linear-model times for the same inputs.
  void ideal_times(std::span<const double> t_in,
                   std::span<double> t_out) const;

  static constexpr double kNoSpike =
      std::numeric_limits<double>::infinity();

 private:
  void precompute();

  // --- scalar reference path (the original loops, kept bit-stable) ---

  /// Fills v_wl[0, rows) with the S1 wordline voltages for one sample.
  void wordline_voltages(std::span<const double> t_in, double* v_wl) const;

  /// Shared S2 recovery: current-sum -> threshold -> crossing -> spike
  /// time (or kNoSpike).  `silent` counts suppressed outputs.
  double recover_time(double weighted, std::size_t col,
                      std::size_t* silent) const;

  void mvm_times_scalar(std::span<const double> t_in,
                        std::span<double> t_out) const;
  void mvm_times_batch_scalar(std::span<const double> t_in, std::size_t n,
                              std::span<double> t_out,
                              BatchScratch& scratch) const;
  void mvm_times_sparse_scalar(std::span<const double> t_in,
                               std::span<const std::uint32_t> active_rows,
                               std::span<double> t_out) const;

  // --- SIMD path -----------------------------------------------------

  /// S1 over a width-padded sample: t_pad has rows_pad() entries with
  /// kNoSpike in the padding lanes, so padded v_wl lanes come out 0 and
  /// contribute nothing to any dot product.
  void wordline_voltages_simd(const double* t_pad, double* v_wl) const;

  /// S2 for one vector chunk of columns [c, c+W): reads w[0, W) and the
  /// padded per-column arrays at c, writes out[0, W).  Element-wise per
  /// lane, so any chunking of the column axis yields identical values.
  void recover_block_simd(const double* w, std::size_t c, double* out,
                          std::size_t* silent) const;

  void mvm_times_simd(std::span<const double> t_in,
                      std::span<double> t_out) const;
  void mvm_times_batch_simd(std::span<const double> t_in, std::size_t n,
                            std::span<double> t_out,
                            BatchScratch& scratch) const;
  void mvm_times_sparse_simd(std::span<const double> t_in,
                             std::span<const std::uint32_t> active_rows,
                             std::span<double> t_out) const;

  std::size_t rows_pad() const { return rows_pad_; }

  circuits::CircuitParams params_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t rows_pad_ = 0;   // rows rounded up to the vector width
  std::size_t cols_pad_ = 0;   // cols rounded up to the vector width
  std::size_t block_cols_ = 0;  // column-block size for batch tiling
  bool has_offsets_ = false;
  aligned_vector g_cm_;     // column-major effective conductances:
                            // g_cm_[c * rows_pad_ + r], zero padding
                            // rows.  Column-major keeps each column's
                            // weights contiguous for the per-column
                            // dot products (single and batched paths).
  aligned_vector g_total_;  // per column, padded with zeros
  aligned_vector k_;        // per-column saturation factor, padded
  aligned_vector offsets_;  // per-column comparator mismatch, padded
};

}  // namespace resipe::resipe_core
