// Single-spiking value codec.
//
// A normalized value x in [0, 1] is carried by one spike per slice
// (Sec. III-A).  The codec is *ramp-coherent*: the value maps to the
// voltage the shared GD ramp has reached when the spike arrives,
//
//   x  <->  V = x * V_full,   t = ramp^{-1}(V),
//
// with V_full the ramp voltage at the end of the usable input window.
// This is the representation the architecture itself uses end to end —
// S2 emits a spike when the ramp crosses the held voltage, and the
// next layer's S1 samples the *same* ramp at that arrival time, so the
// ramp's exponential shape cancels across layers and the value travels
// as a voltage.  Arrival times are quantized to the 1 GHz timing
// calibration clock (Sec. IV-A), which is the format's real resolution
// limit: the grid is uniform in time, hence non-uniform in value.
#pragma once

#include <span>

#include "resipe/circuits/params.hpp"
#include "resipe/circuits/spike.hpp"

namespace resipe::resipe_core {

/// Bidirectional value <-> spike-time conversion for one slice format.
class SpikeCodec {
 public:
  /// `quantize = false` gives the ideal continuous codec.
  explicit SpikeCodec(const circuits::CircuitParams& params,
                      bool quantize = true);

  /// Encodes x (clamped to [0, 1]) as a spike.
  circuits::Spike encode(double x) const;

  /// Decodes a spike back to [0, 1]; a missing spike decodes to the
  /// over-range sentinel 1.0 (the line saturated).
  double decode(const circuits::Spike& spike) const;

  /// Batched encode: times[i] receives encode(values[i]).arrival_time.
  /// On vector builds the whole chain — clamp, ramp inversion, and the
  /// clock-snap quantization (simd::round, bit-equal to std::round) —
  /// runs through common/simd.hpp, so pre-quantization times may
  /// differ from element-wise encode() by the documented
  /// transcendental bound; with the scalar fallback (or
  /// RESIPE_SIMD=scalar) this is bit-identical to calling encode() in
  /// a loop.  Telemetry counters aggregate over the batch.
  void encode_times(std::span<const double> values,
                    std::span<double> times) const;

  /// Batched decode over raw arrival times: values[i] receives what
  /// decode(Spike::at(times[i])) returns (kNoSpike or a negative time
  /// decodes to the over-range sentinel 1.0).  Same SIMD/bit-identity
  /// story as encode_times.
  void decode_values(std::span<const double> times,
                     std::span<double> values) const;

  /// Sampled GD voltage corresponding to a spike time (the quantity a
  /// wordline actually receives).
  double voltage_of(double arrival_time) const;

  /// Full-scale arrival time (s): the slice minus the computation
  /// stage (a later spike would miss its S/H window).
  double t_full() const { return t_full_; }

  /// Ramp voltage at t_full — the full-scale value voltage.
  double v_full() const { return v_full_; }

  /// Number of distinguishable arrival slots: t_full / clock_period.
  int levels() const;

  bool quantized() const { return quantize_; }

  const circuits::CircuitParams& params() const { return params_; }

 private:
  circuits::CircuitParams params_;
  double t_full_;
  double v_full_;
  bool quantize_;
  // Snapshot of telemetry::enabled() taken at construction: encode and
  // decode run in ns-scale loops, and a plain bool member is the only
  // check the compiler can hoist out of them.  Codecs built before
  // telemetry is switched on do not record codec counters.
  bool telemetry_;
};

}  // namespace resipe::resipe_core
