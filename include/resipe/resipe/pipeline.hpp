// Two-slice layer pipeline (Fig. 1).
//
// In the single-spiking format each layer's MVM occupies two
// consecutive full-scale slices: the input arrives during S1 and the
// output spike — which *is* the next layer's input — fires during S2.
// Layer n+1 therefore starts while layer n's engine is already free,
// and the whole network forms a systolic pipeline with one slice of
// skew per layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "resipe/common/units.hpp"

namespace resipe::resipe_core {

/// Timing model of an L-layer single-spiking pipeline.
class TwoSlicePipeline {
 public:
  TwoSlicePipeline(std::size_t layers, double slice_length);

  std::size_t layers() const { return layers_; }
  double slice_length() const { return slice_; }

  /// End-to-end latency of one input: the input presentation slice
  /// plus one slice per layer.
  double input_latency() const;

  /// A new input can be presented every slice once the pipe is full.
  double initiation_interval() const { return slice_; }

  /// Slice index in which layer `l` (0-based) emits its output for the
  /// input presented in slice `input_slice`.
  std::size_t output_slice(std::size_t layer, std::size_t input_slice) const;

  /// Total time to stream `n` inputs through the full pipeline.
  double stream_latency(std::size_t n) const;

  /// Speed-up of the pipelined schedule over running layers
  /// back-to-back without overlap, for `n` streamed inputs.
  double pipeline_speedup(std::size_t n) const;

  /// ASCII occupancy chart: rows = layers, columns = slices, showing
  /// which input each layer processes in each slice.
  std::string diagram(std::size_t inputs, std::size_t max_slices = 24) const;

 private:
  std::size_t layers_;
  double slice_;
};

}  // namespace resipe::resipe_core
