// Network-level inference through the ReSiPE circuit model.
//
// Maps every matrix layer (Dense / Conv2d) of a trained network onto
// virtual ReSiPE tiles and replaces its forward pass with the
// single-spiking circuit simulation; pooling, ReLU and flatten run
// functionally (they live in the spike/peripheral domain in hardware).
//
// Mapping pipeline per matrix layer (see DESIGN.md):
//   1. the logical weight matrix [in, out] is mapped to conductances
//      (differential column pairs by default) with the layer's max |w|
//      as the normalization scale;
//   2. rows are partitioned into tile_rows-sized blocks, columns into
//      tile_cols-sized blocks; each block is programmed cell-by-cell
//      (level quantization + write-verify + process variation);
//   3. at inference, activations are scaled to [0, 1] by a calibrated
//      per-layer input scale, encoded as ramp-coherent spike times
//      (scaled by a calibrated alpha), run through each block's
//      FastMvm, and read back per physical column as the raw
//      current-sum via the per-column trim
//        sum_i(V_i G_ij) = V_cog,j * g_total_j / k_j
//      (g_total and k are programming-time constants — a per-column
//      digital gain calibration, standard practice in PIM macros);
//   4. differential pairs and row-block partial sums combine in the
//      recovered-sum domain; the layer bias is added last.
//
// Partial-sum combination across row blocks happens in the recovered
// domain — the paper does not describe a multi-tile accumulation
// circuit, so the substitution is documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/crossbar/ir_drop.hpp"
#include "resipe/crossbar/mapping.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/introspect/options.hpp"
#include "resipe/nn/model.hpp"
#include "resipe/reliability/config.hpp"
#include "resipe/resipe/events/config.hpp"
#include "resipe/resipe/events/event_queue.hpp"
#include "resipe/resipe/events/executor.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/serve/config.hpp"

namespace resipe::resipe_core {

/// Configuration of the network-level engine.
struct EngineConfig {
  /// Circuit operating point — defaults to the clock-calibrated GD
  /// time constant (see CircuitParams::nn_calibrated); the Fig. 3/5
  /// characterization benches use paper_defaults() explicitly.
  circuits::CircuitParams circuit = circuits::CircuitParams::nn_calibrated();
  device::ReramSpec device = device::ReramSpec::nn_mapping();
  std::size_t tile_rows = 32;
  std::size_t tile_cols = 32;
  crossbar::SignedMapping mapping =
      crossbar::SignedMapping::kDifferentialPair;
  /// Quantize spike arrival times to the clock grid (true = hardware).
  bool quantize_spikes = true;
  /// Fraction of the slice the calibrated worst-case output may use.
  double calibration_headroom = 0.9;
  /// Safety margin on the per-layer activation scale: the calibration
  /// batch underestimates the true activation maxima, and hard
  /// clamping of over-range activations is the more damaging error.
  double input_scale_margin = 1.25;
  /// Seed for programming randomness (write-verify + variation).
  std::uint64_t program_seed = 42;

  /// When true, each tile's effective conductances include the
  /// position-dependent wordline/bitline wire resistance (first-order
  /// IR-drop model, see crossbar/ir_drop.hpp).
  bool model_wire_ir_drop = false;
  crossbar::WireModel wires;

  /// Retention time applied to every programmed cell before inference
  /// (power-law drift per the device spec); 0 = fresh arrays.
  double retention_time = 0.0;

  /// Hard-fault injection + mitigation (stuck-at cells, read disturb,
  /// endurance, spare-column remapping, differential compensation).
  /// Disabled by default: the engine then takes the exact legacy
  /// programming path and outputs are bit-identical to before.
  reliability::ReliabilityConfig reliability;

  /// Inference-introspection knobs (see introspect/inspect.hpp).  The
  /// regular forward paths never read these: with introspection off —
  /// the default — inference is bit-identical to a build without the
  /// subsystem, and the probes only run through the dedicated
  /// forward_probed / forward_observed entry points.
  introspect::InspectOptions introspect;

  /// Serving-layer knobs (scheduler / admission / retry / health — see
  /// serve/config.hpp).  The engine's own forward paths never read
  /// these: they cannot affect logits, only how a chip pool schedules
  /// and sheds load, which is why they are excluded from
  /// engine_config_hash.  Living here keeps one config object the unit
  /// of generation and validation for the verify fuzzer.
  serve::ServeConfig serve;

  /// Event-driven sparse execution (see resipe/events/ and DESIGN.md
  /// §15).  Disabled by default: the engine runs the exact legacy
  /// dense per-slice path.  Enabled, inputs become timestamped spike
  /// events, column groups without events sleep, and silent rows are
  /// skipped — with logits bit-identical to the dense reference at
  /// any thread count (pinned by the sparse_dense_identity contract
  /// and tests/test_events.cpp).  Like `serve`, the flag cannot
  /// affect logits, so it is excluded from engine_config_hash.
  events::EventConfig events;

  /// "Ideal" configuration: linearized transfers, continuous timing,
  /// noiseless devices — the reference accuracy in Fig. 7.
  static EngineConfig ideal();

  /// Checks every sub-config and engine-level invariant (positive tile
  /// geometry, even tile width for paired mappings, headroom in (0, 1],
  /// positive scale margin, finite non-negative retention) and throws
  /// resipe::Error with a precise message on the first violation.
  /// Called at engine entry points (ProgrammedMatrix / ResipeNetwork
  /// construction); the verify fuzzer's generators treat "validate()
  /// accepts" as the definition of the valid configuration domain.
  void validate() const;
};

/// One logical weight matrix programmed onto a grid of virtual tiles.
class ProgrammedMatrix {
 public:
  /// Maps and programs `weights` ([in, out] row-major) with the given
  /// bias (length out).
  ProgrammedMatrix(const EngineConfig& config,
                   std::span<const double> weights,
                   std::span<const double> bias, std::size_t in,
                   std::size_t out, Rng& rng);

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  std::size_t tile_count() const { return blocks_.size(); }
  std::size_t mvms_per_forward() const { return row_blocks_; }

  /// Sets the activation normalization scale (max activation expected
  /// at this layer's input; inputs are clamped to [0, scale]).
  void set_input_scale(double scale);
  double input_scale() const { return input_scale_; }

  /// Sets the spike-time scale alpha in (0, 1]: inputs are encoded at
  /// alpha * x * t_full to keep worst-case outputs inside the slice.
  void set_time_scale(double alpha);
  double time_scale() const { return alpha_; }

  /// Circuit-model forward: y = W^T x + b for one input vector.
  /// x must be non-negative (spike times cannot encode sign).
  void forward(std::span<const double> x, std::span<double> y) const;

  /// Numerical-health counters accumulated by forward_probed.  All
  /// column events are counted per block MVM, over every physical data
  /// column touched, so the saturation rates describe the analog
  /// readout the paper's comparator actually sees.
  struct ProbeStats {
    /// Histogram of normalized output spike times t / slice_length over
    /// [0, 1); only columns that spiked inside the slice contribute.
    std::vector<std::uint64_t> spike_time_hist;
    std::uint64_t spikes = 0;         ///< comparator fired in the slice
    std::uint64_t no_spike = 0;       ///< comparator never fired (readout
                                      ///< books the slice-boundary value)
    std::uint64_t pinned_start = 0;   ///< spike in the first clock period
                                      ///< (column at/over full scale)
    std::uint64_t pinned_end = 0;     ///< spike in the last clock period
                                      ///< (about to fall silent)
    std::uint64_t inputs_clamped = 0; ///< encode clamp engaged (x outside
                                      ///< [0, input_scale])
    std::uint64_t vectors = 0;        ///< probed input vectors

    explicit ProbeStats(std::size_t bins = 20)
        : spike_time_hist(bins == 0 ? 1 : bins, 0) {}
    void merge(const ProbeStats& other);
  };

  /// forward() plus probes: y is bit-identical to forward(x, y) — same
  /// encode, same block order, same recovery arithmetic — and `stats`
  /// accumulates across calls.  Not part of the hot path: the regular
  /// forward entry points never consult the introspection options.
  void forward_probed(std::span<const double> x, std::span<double> y,
                      ProbeStats& stats) const;

  /// Reusable scratch for forward_batch.  Hoist one per worker (e.g.
  /// thread_local) so steady-state batched inference never allocates.
  struct BatchWorkspace {
    std::vector<double> t_in;       // [n, in] encoded spike times
    std::vector<double> t_rows;     // [n, block.rows] staged block input
    std::vector<double> t_out;      // [n, block.slots] block spike times
    std::vector<double> recovered;  // [n, physical cols] current-sums
    FastMvm::BatchScratch mvm;
    events::EventQueue queue;       // event path only
    events::EventExecutor exec;     // event path only
  };

  /// Batched forward: x is row-major [n, in], y row-major [n, out].
  /// Bit-identical per sample to n forward() calls — same encode,
  /// same block order, same recovery arithmetic — but each block runs
  /// once over the whole batch through FastMvm::mvm_times_batch and
  /// all scratch lives in `ws`.
  void forward_batch(std::span<const double> x, std::size_t n,
                     std::span<double> y, BatchWorkspace& ws) const;

  /// Analytic voltage-domain forward (no time quantization, no slice
  /// clamping) — the noise-free reference used by calibration; also
  /// returns the largest COG voltage observed.
  double forward_analytic(std::span<const double> x,
                          std::span<double> y) const;

  /// Calibrates alpha from a batch of representative inputs (row-major
  /// [n, in]) so the worst-case COG voltage stays on the ramp within
  /// the headroom fraction of the slice.
  void calibrate_alpha(std::span<const double> x_batch, std::size_t n);

  /// Reliability roll-up for this matrix (all zero when the
  /// reliability config is disabled).
  struct ReliabilityStats {
    std::size_t cells_faulty = 0;        ///< injected hard faults
    std::size_t cells_detected = 0;      ///< faults the mapper flagged
    std::size_t columns_remapped = 0;    ///< physical columns moved
    std::size_t spares_used = 0;         ///< spare columns consumed
    std::size_t columns_unrepairable = 0;///< left computing over faults
    std::size_t cells_compensated = 0;   ///< pair-compensated stuck cells
    std::size_t write_giveups = 0;       ///< verify budget exhausted
    std::size_t write_wearouts = 0;      ///< endurance-induced hard faults
  };
  const ReliabilityStats& reliability_stats() const { return rstats_; }

  /// Per-logical-output trust flags (graceful degradation): false when
  /// the output is decoded from a column left unrepaired on defective
  /// cells.  All true when reliability is disabled.
  const std::vector<bool>& output_ok() const { return output_ok_; }
  std::size_t degraded_outputs() const;

 private:
  struct Block {
    std::size_t row0 = 0;
    std::size_t rows = 0;
    std::size_t col0 = 0;  // physical column offset
    std::size_t cols = 0;  // data columns in this block
    std::size_t slots = 0; // physical columns incl. spares (== cols
                           // when reliability is off)
    /// Physical slot of each data column (empty = identity).
    std::vector<std::size_t> slot_of_col;
    std::unique_ptr<FastMvm> mvm;
    /// Baked recovery contribution of this block when its row group is
    /// silent (length cols).  idle_times() output is input-independent,
    /// so the per-column constants are computed once at programming and
    /// let accumulate_events resolve a sleeping block with one add per
    /// column — bit-identical to running the full recovery arithmetic.
    std::vector<double> idle_recovery;
  };

  void encode_input(std::span<const double> x, std::span<double> t) const;
  /// Runs every block and accumulates recovered current-sums
  /// (sum_i V_i G_ij) per physical column.
  void accumulate(std::span<const double> t_in,
                  std::span<double> recovered) const;
  /// Event-driven accumulate: same block order and same per-column
  /// recovery arithmetic, but each block runs through the event
  /// executor (sleeping when no input event falls in its row window).
  /// Bit-identical to accumulate() on the same times.
  void accumulate_events(std::span<const double> t_in,
                         std::span<double> recovered,
                         events::EventQueue& queue,
                         events::EventExecutor& exec) const;
  /// Converts accumulated recovered sums + bias into outputs.
  void decode(std::span<const double> recovered, std::span<double> y) const;

  /// Fault-injecting programming path (config_.reliability.enabled):
  /// draws per-block defect maps from the dedicated fault stream,
  /// detects + remaps + compensates per the mitigation policy, and
  /// programs through the bounded write-verify loop.
  void program_blocks_with_faults(Rng& rng);

  /// Bakes each block's Block::idle_recovery constants (runs once at
  /// the end of both programming paths).
  void finalize_idle_recovery();

  EngineConfig config_;
  SpikeCodec codec_;
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  std::size_t row_blocks_ = 0;
  crossbar::MappedWeights mapping_;
  std::vector<Block> blocks_;
  std::vector<double> bias_;
  double input_scale_ = 1.0;
  double alpha_ = 1.0;
  ReliabilityStats rstats_;
  std::vector<bool> output_ok_;
};

/// Extracts one im2col patch (layout matching conv_weight_matrix) for
/// conv lowering.  Exposed for the eval diagnostics.
void gather_conv_patch(const nn::Tensor& x, std::size_t img,
                       std::size_t cin, std::size_t k, std::size_t stride,
                       std::size_t pad, std::size_t r, std::size_t c,
                       std::span<double> patch);

/// Flattens conv weights [Cout, Cin, K, K] to the [Cin*K*K, Cout]
/// matrix the lowering maps onto tiles.
std::vector<double> conv_weight_matrix(const nn::Conv2d& conv);

/// Callback receiving every lowered-step boundary during
/// ResipeNetwork::forward_observed.  `matrix` is null for functional
/// steps (pooling / activation / flatten); `layer` is always the
/// software layer the step was lowered from.
class LayerObserver {
 public:
  virtual ~LayerObserver() = default;
  virtual void on_step(std::size_t index, nn::Layer& layer,
                       const ProgrammedMatrix* matrix, bool is_conv,
                       const nn::Tensor& input,
                       const nn::Tensor& output) = 0;
};

/// A whole trained network lowered onto ReSiPE hardware.
class ResipeNetwork {
 public:
  /// Lowers `model` (trained, borrowed for the lifetime of this
  /// object) onto virtual tiles.  `calibration` is a representative
  /// input batch used to set per-layer scales; it is run through the
  /// software model once.
  ResipeNetwork(nn::Sequential& model, const EngineConfig& config,
                const nn::Tensor& calibration);

  /// Circuit-model logits for an input batch.
  nn::Tensor forward(const nn::Tensor& batch) const;

  /// forward() that additionally reports every step boundary to `obs`.
  /// The returned logits are bit-identical to forward(batch); the only
  /// extra cost is the tensor handoff to the observer.
  nn::Tensor forward_observed(const nn::Tensor& batch,
                              LayerObserver& obs) const;

  /// Hybrid forward for accuracy-loss attribution: steps whose index
  /// is flagged in `digital_steps` run through the original software
  /// layer instead of the crossbars.  Indices beyond the mask (or
  /// flags on functional steps) are ignored.
  nn::Tensor forward_hybrid(const nn::Tensor& batch,
                            const std::vector<bool>& digital_steps) const;

  /// Lowered steps (matrix + functional), in execution order.
  std::size_t step_count() const { return steps_.size(); }

  /// The software model this network was lowered from.
  nn::Sequential& model() const { return model_; }

  /// Total virtual 32x32-class tiles used by the mapping.
  std::size_t tile_count() const;

  /// Total tile MVM executions for one input image.
  std::size_t mvms_per_image() const;

  /// Matrix layers lowered.
  std::size_t programmed_layers() const { return matrices_.size(); }

  /// Reliability roll-up summed over every programmed layer (all zero
  /// when the reliability config is disabled).
  ProgrammedMatrix::ReliabilityStats reliability_stats() const;

  /// Logical outputs flagged untrusted across all layers (graceful
  /// degradation: they still compute, but over known defects).
  std::size_t degraded_outputs() const;

  const EngineConfig& config() const { return config_; }

 private:
  struct Step {
    nn::Layer* layer = nullptr;            // functional layers
    ProgrammedMatrix* matrix = nullptr;    // circuit layers
    // Conv geometry when the matrix implements a Conv2d.
    bool is_conv = false;
    std::size_t cin = 0, cout = 0, k = 0, stride = 0, pad = 0;
  };

  nn::Tensor run_dense(const Step& step, const nn::Tensor& x) const;
  nn::Tensor run_conv(const Step& step, const nn::Tensor& x) const;

  nn::Sequential& model_;
  EngineConfig config_;
  std::vector<std::unique_ptr<ProgrammedMatrix>> matrices_;
  std::vector<Step> steps_;
};

}  // namespace resipe::resipe_core
