// Bit-sliced weight mapping.
//
// A single ReRAM cell stores ~5 bits reliably (the 32-level default);
// networks often want 8-bit weights.  The standard PIM remedy is to
// split each weight's magnitude into base-2^b digits and map every
// digit column to its own physical column group, recombining partial
// results with power-of-two weights after readout (ISAAC does this
// with 2-bit slices).  SlicedMatrix wraps ProgrammedMatrix: each slice
// is an independent single-spiking MVM over the digit weights, and the
// recombination happens in the recovered-value domain alongside the
// existing per-column trim.
//
// Cost: slices * the column hardware.  Benefit: effective weight
// resolution of slices * bits_per_slice with per-cell resolution of
// only bits_per_slice.  bench_ablation_bit_slicing quantifies the
// trade.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "resipe/resipe/network.hpp"

namespace resipe::resipe_core {

/// Bit-slicing configuration.
struct SlicingConfig {
  int total_bits = 8;      ///< logical weight resolution
  int bits_per_slice = 4;  ///< digits stored per physical column group

  int slices() const;
  void validate() const;
};

/// A logical weight matrix realized as power-of-two-weighted slices.
class SlicedMatrix {
 public:
  /// Maps `weights` ([in, out] row-major) with the given bias.  Each
  /// slice gets its own ProgrammedMatrix under `config`; the device
  /// level count is clamped to 2^bits_per_slice levels per cell,
  /// making the slice self-consistent with the storage precision.
  SlicedMatrix(const EngineConfig& config, const SlicingConfig& slicing,
               std::span<const double> weights,
               std::span<const double> bias, std::size_t in,
               std::size_t out, Rng& rng);

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  std::size_t slice_count() const { return slices_.size(); }
  std::size_t tile_count() const;

  /// Sets the activation scale on every slice.
  void set_input_scale(double scale);

  /// Calibrates every slice's time scale on a representative batch.
  void calibrate_alpha(std::span<const double> x_batch, std::size_t n);

  /// Circuit-model forward with power-of-two recombination.
  void forward(std::span<const double> x, std::span<double> y) const;

 private:
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  double weight_scale = 1.0;  ///< max |w| of the logical matrix
  int levels_per_slice_ = 0;
  int total_levels_ = 0;
  std::vector<std::unique_ptr<ProgrammedMatrix>> slices_;
  std::vector<double> slice_weight_;  ///< 2^(b*s) recombination factors
  std::vector<double> bias_;
};

}  // namespace resipe::resipe_core
