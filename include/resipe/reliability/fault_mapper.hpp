// March-test style fault detection.
//
// A memory march test writes a background pattern, reads it back, then
// writes and reads the inverse pattern; a cell that reads near the
// G_max rail after a low write is stuck-at-LRS, a cell that reads near
// the G_min rail after a high write is stuck-at-HRS.  The mapper works
// through read/write functors so it can drive a behavioral Crossbar
// (crossbar::march_fault_map), hardware, or a simulated readback.
//
// The virtual-tile engine (ProgrammedMatrix) already knows the injected
// ground truth; re-running a full march per tile would double the
// programming cost for no information, so `from_truth` derives the
// *detected* map statistically with configurable miss / false-alarm
// rates instead.
#pragma once

#include <cstddef>
#include <functional>

#include "resipe/reliability/fault_model.hpp"

namespace resipe::reliability {

/// Detection thresholds and imperfection model.
struct FaultMapperConfig {
  /// A readback within this fraction of the conductance window of a
  /// rail classifies the cell as stuck at that rail.
  double rail_tolerance = 0.25;
  /// Reads averaged per cell and pattern (suppresses read noise).
  std::size_t reads_per_cell = 3;
  /// Statistical detection imperfection used by `from_truth`: a real
  /// fault is missed with `miss_rate`; a healthy cell is flagged
  /// (stuck-at-HRS, the conservative guess) with `false_alarm_rate`.
  double miss_rate = 0.0;
  double false_alarm_rate = 0.0;

  void validate() const;
};

/// March-test fault detector.
class FaultMapper {
 public:
  using WriteCell =
      std::function<void(std::size_t row, std::size_t col, double target_g)>;
  using ReadCell = std::function<double(std::size_t row, std::size_t col)>;

  explicit FaultMapper(FaultMapperConfig config = {});

  const FaultMapperConfig& config() const { return config_; }

  /// Runs the march over a rows x cols array: writes all cells low,
  /// reads back (averaged), writes all cells high, reads back, then
  /// classifies.  Destructive — the array ends holding the high
  /// pattern, so run it before weights are programmed.
  FaultMap march(std::size_t rows, std::size_t cols,
                 const device::ReramSpec& spec, const WriteCell& write_cell,
                 const ReadCell& read_cell) const;

  /// Classifies one cell from its averaged low-pattern and
  /// high-pattern readbacks.
  FaultType classify(const device::ReramSpec& spec, double g_low_read,
                     double g_high_read) const;

  /// Statistical detection: the detected map equals `truth` except for
  /// missed faults / false alarms drawn from `rng` per the config.
  FaultMap from_truth(const FaultMap& truth, Rng& rng) const;

 private:
  FaultMapperConfig config_;
};

}  // namespace resipe::reliability
