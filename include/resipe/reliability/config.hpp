// Reliability configuration: fault injection + mitigation knobs for the
// network-level engine (EngineConfig::reliability).
//
// With `enabled = false` (the default) the engine takes the exact
// pre-existing programming path — no fault maps are drawn, no RNG
// stream is consumed, outputs are bit-identical to a build without the
// subsystem.  With `enabled = true` the engine injects hard faults,
// models read disturb and endurance, and (when `mitigation.enabled`)
// detects and repairs them; see DESIGN.md "Reliability".
#pragma once

#include <cstddef>
#include <cstdint>

#include "resipe/reliability/fault_mapper.hpp"
#include "resipe/reliability/fault_model.hpp"

namespace resipe::reliability {

/// Mitigation policy (detection + repair).  All stages are individually
/// switchable so the ablation bench can isolate their contributions.
struct MitigationConfig {
  /// Master switch: false = inject faults but run blind (no detection,
  /// no remapping, no compensation) — the honest "do nothing" baseline.
  bool enabled = true;
  /// Spare physical columns provisioned per tile block.  Faulty data
  /// columns are remapped onto clean spares (rounded down to whole
  /// column groups for paired mappings).
  std::size_t spare_cols = 4;
  /// Fault/importance-aware column placement: when spares run out,
  /// swap high-magnitude weight columns away from defective slots so
  /// the damage lands on the least important weights.
  bool remap_columns = true;
  /// Differential compensation: with a (G+, G-) pair, a single stuck
  /// cell can often be cancelled exactly by re-targeting its healthy
  /// partner to preserve G+ - G-.
  bool compensate_pairs = true;
  /// Bounded write-verify retry budget (explicit give-up status).
  int write_verify_retries = 5;
  /// A compensated/unrepaired residual conductance error above this
  /// fraction of the conductance window flags the column as degraded.
  double degrade_threshold = 0.10;
};

/// Top-level reliability configuration.
struct ReliabilityConfig {
  /// Master switch; false keeps the engine bit-identical to a
  /// reliability-free build.
  bool enabled = false;

  /// Hard-fault generator (stuck-at rates + clustering).
  FaultModelConfig faults;

  /// Read disturb: relative conductance loss per MVM read, applied at
  /// program time for the expected deployment read count.
  double read_disturb_rate = 0.0;
  double expected_mvms = 0.0;

  /// Endurance model fed into the write-verify budget (0 = off).
  double endurance_cycles = 0.0;
  double wear_cycles = 0.0;

  /// Detection model (march thresholds / statistical imperfection).
  FaultMapperConfig mapper;

  /// Mitigation policy.
  MitigationConfig mitigation;

  /// Seed of the fault-realization stream.  Deliberately separate from
  /// EngineConfig::program_seed so toggling mitigation (which changes
  /// how many programming draws happen) never changes *which* cells
  /// are defective — the OFF/ON comparison sees identical silicon.
  std::uint64_t fault_seed = 0xFA117u;

  void validate() const;
};

}  // namespace resipe::reliability
