// Hard-fault models for ReRAM crossbars.
//
// The paper evaluates accuracy only under Gaussian conductance
// variation; fabricated arrays fail primarily through *hard* defects:
//
//  * stuck-at-LRS / stuck-at-HRS cells — forming/endurance defects pin
//    a cell at a conductance rail regardless of what is programmed.
//    Defects cluster spatially (line defects, forming hot spots), so
//    the generator supports a clustered fraction on top of the
//    independent per-cell rate.
//  * conductance retention drift — the power-law closed form
//    G(t) = G0 * (t/t0)^-nu shared with the device layer
//    (device::drift_conductance).
//  * read disturb — every MVM read stresses the cells; the accumulated
//    effect over n reads is an exponential relaxation toward HRS.
//  * endurance wear-out — write cycles consume the device; the
//    write-verify loop models per-pulse failure (device::ProgramBudget).
//
// All generators draw from an explicit Rng so fault realizations are
// reproducible and independent of the programming noise stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "resipe/common/rng.hpp"
#include "resipe/device/reram.hpp"

namespace resipe::reliability {

/// Hard-fault state of one cell.
enum class FaultType : std::uint8_t {
  kNone = 0,
  kStuckLrs,  ///< pinned at G_max
  kStuckHrs,  ///< pinned at G_min
};

/// Per-cell hard-fault map of one rows x cols array.
class FaultMap {
 public:
  FaultMap() = default;
  FaultMap(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  FaultType at(std::size_t row, std::size_t col) const;
  void set(std::size_t row, std::size_t col, FaultType fault);

  /// Total faulty cells.
  std::size_t fault_count() const;
  /// Faulty cells in one column / row.
  std::size_t column_faults(std::size_t col) const;
  std::size_t row_faults(std::size_t row) const;
  /// True when the column has no faulty cell.
  bool column_clean(std::size_t col) const { return column_faults(col) == 0; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<FaultType> cells_;  // row-major
};

/// Knobs of the stuck-at-fault generator.
struct FaultModelConfig {
  double stuck_lrs_rate = 0.0;  ///< per-cell probability of stuck-at-LRS
  double stuck_hrs_rate = 0.0;  ///< per-cell probability of stuck-at-HRS
  /// Fraction of the defect budget placed as spatial clusters instead
  /// of independent cells (0 = fully independent).
  double cluster_fraction = 0.0;
  /// Cells per cluster (a contiguous patch around a random center).
  std::size_t cluster_size = 4;

  void validate() const;
};

/// Draws a hard-fault map: independent per-cell faults at
/// rate * (1 - cluster_fraction), plus clusters covering the remaining
/// defect budget.  Expected fault count ~= cells * (lrs + hrs rates).
FaultMap generate_fault_map(std::size_t rows, std::size_t cols,
                            const FaultModelConfig& config, Rng& rng);

/// Accumulated read-disturb after `reads` MVM read operations:
/// exponential relaxation toward HRS, G(n) = G0 * exp(-rate * n),
/// floored at `g_floor` (the HRS conductance).  rate is the relative
/// conductance loss per read (typically 1e-9 .. 1e-6).
double read_disturbed_conductance(double g0, double reads, double rate,
                                  double g_floor);

}  // namespace resipe::reliability
