// Dense N-dimensional tensor used by the neural-network substrate.
//
// Row-major `double` storage; ranks used in practice are 2 ([N, D] for
// dense layers) and 4 ([N, C, H, W] for convolutional layers).  The
// evaluation networks are small (the accuracy experiment maps them
// through a circuit simulator, which dominates runtime), so clarity
// beats BLAS here.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "resipe/common/rng.hpp"

namespace resipe::nn {

/// Row-major dense tensor of doubles.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Tensor with explicit data (size must match the shape product).
  Tensor(std::vector<std::size_t> shape, std::vector<double> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const;

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  double& operator[](std::size_t flat) { return data_[flat]; }
  double operator[](std::size_t flat) const { return data_[flat]; }

  /// 2-D access: (row, col) on a rank-2 tensor.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// 4-D access: (n, c, h, w) on a rank-4 tensor.
  double& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  double at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Returns a copy with a new shape of identical total size.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  /// Fills with a constant.
  void fill(double v);

  /// Fills i.i.d. N(0, stddev).
  void fill_normal(Rng& rng, double stddev);

  /// Largest absolute element (0 for an empty tensor).
  double abs_max() const;

  /// Index of the maximum element in row `i` of a rank-2 tensor —
  /// the classifier's argmax.
  std::size_t argmax_row(std::size_t i) const;

  /// Human-readable shape like "[32, 1, 28, 28]".
  std::string shape_str() const;

  /// True when shapes are identical.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<double> data_;
};

/// Elementwise a += b (shapes must match).
void add_inplace(Tensor& a, const Tensor& b);

/// Elementwise a *= s.
void scale_inplace(Tensor& a, double s);

}  // namespace resipe::nn
