// Loss, optimizers and the training loop.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "resipe/nn/model.hpp"
#include "resipe/nn/tensor.hpp"

namespace resipe::nn {

/// Softmax over the last axis of a rank-2 tensor (numerically stable).
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy of softmax(logits) against integer labels, plus
/// the gradient w.r.t. logits (softmax - onehot) / N.
struct LossResult {
  double loss = 0.0;
  Tensor grad;
};
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, std::span<const int> labels);

/// Optimizer interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// One update step over the given parameters (gradients already
  /// accumulated; caller zeroes them afterwards).
  virtual void step(std::span<const Param> params) = 0;
};

/// SGD with classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);
  void step(std::span<const Param> params) override;

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(std::span<const Param> params) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

/// In-memory labeled dataset: images [N, C, H, W], labels in [0, classes).
struct Dataset {
  Tensor images;
  std::vector<int> labels;
  std::size_t classes = 10;

  std::size_t size() const { return labels.size(); }

  /// Copies the samples at `indices` into a batch tensor + label vector.
  std::pair<Tensor, std::vector<int>> gather(
      std::span<const std::size_t> indices) const;
};

/// Training configuration.
struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  double lr = 1e-2;
  bool verbose = false;
  std::uint64_t shuffle_seed = 1;

  /// Variation-aware training ([22]-style): each forward/backward pass
  /// sees weights perturbed by multiplicative N(0, sigma) noise, while
  /// the optimizer updates the clean weights.  Networks trained this
  /// way tolerate ReRAM process variation markedly better
  /// (bench_ablation_noise_training).  0 disables injection.
  double weight_noise_sigma = 0.0;
};

/// Result of fit(): per-epoch train loss and final evaluation accuracy.
struct TrainResult {
  std::vector<double> epoch_loss;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Trains `model` on `train` with Adam, evaluates on `test`.
TrainResult fit(Sequential& model, const Dataset& train, const Dataset& test,
                const TrainConfig& config);

/// Evaluates classification accuracy of `model` on `data`, optionally
/// replacing the forward pass with a custom executor (the hook the
/// ReSiPE accuracy experiment uses to run inference through the
/// circuit simulator).
double evaluate(Sequential& model, const Dataset& data,
                std::size_t batch_size = 64);

/// Evaluates accuracy with an arbitrary batch-logits function.
double evaluate_with(
    const Dataset& data,
    const std::function<Tensor(const Tensor&)>& batch_logits,
    std::size_t batch_size = 64);

}  // namespace resipe::nn
