// Sequential network container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "resipe/nn/layers.hpp"

namespace resipe::nn {

/// A feed-forward stack of layers executed in order.
class Sequential {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Full forward pass.
  Tensor forward(const Tensor& x, bool train = false);

  /// Backward pass through every layer (after a forward with
  /// train=true).
  void backward(const Tensor& grad_out);

  /// All trainable parameters in layer order.
  std::vector<Param> params();

  /// Zeroes all parameter gradients.
  void zero_grads();

  /// Number of scalar parameters.
  std::size_t parameter_count();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const std::string& name() const { return name_; }

  /// Multi-line summary of the architecture.
  std::string summary();

  /// Count of matrix (crossbar-mapped) layers.
  std::size_t matrix_layer_count() const;

 private:
  std::string name_ = "model";
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Folds every Conv2d -> BatchNorm2d pair for inference: the BN's
/// effective per-channel scale/shift is absorbed into the conv's
/// weights and bias, and the BN layer is reset to an exact identity.
/// Standard PIM mapping step — a folded network needs no BN circuitry.
/// Returns the number of pairs folded.  Call only on a trained model
/// (uses the BN running statistics).
std::size_t fold_batchnorm(Sequential& model);

}  // namespace resipe::nn
