// The six benchmark networks of Sec. IV-C.
//
// The paper evaluates MLP-1, MLP-2 (MNIST perceptrons), CNN-1 (LeNet on
// MNIST), CNN-2 (AlexNet on CIFAR-10), CNN-3 (VGG16) and CNN-4 (VGG19).
// CNN-2..4 here are width-reduced variants that keep the depth and
// topology of the originals (5 / 13 / 16 conv layers + the FC head) so
// the depth-ordering of process-variation sensitivity — the property
// Fig. 7 measures — is preserved while CPU-only training stays
// tractable.  See DESIGN.md "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "resipe/common/rng.hpp"
#include "resipe/nn/model.hpp"

namespace resipe::nn {

enum class BenchmarkNet {
  kMlp1,  ///< 1-layer perceptron, 28x28x1 input
  kMlp2,  ///< 2-layer perceptron, 28x28x1 input
  kCnn1,  ///< LeNet (4 weight layers used by the paper), 28x28x1
  kCnn2,  ///< AlexNet-style: 5 conv + 2 FC, 32x32x3
  kCnn3,  ///< VGG16-style: 13 conv + 3 FC, 32x32x3
  kCnn4,  ///< VGG19-style: 16 conv + 3 FC, 32x32x3
};

/// Paper name of the benchmark ("MLP-1", ..., "CNN-4").
std::string benchmark_name(BenchmarkNet net);

/// True for the 32x32x3 (CIFAR-shaped) benchmarks.
bool uses_object_dataset(BenchmarkNet net);

/// Builds the (untrained) network.
Sequential build_benchmark(BenchmarkNet net, Rng& rng);

/// All six benchmarks in paper order.
std::vector<BenchmarkNet> all_benchmarks();

}  // namespace resipe::nn
