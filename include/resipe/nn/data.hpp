// Synthetic dataset generators.
//
// The paper evaluates on MNIST and CIFAR-10 with pretrained networks.
// Neither dataset ships with this environment, so we substitute
// procedurally-generated equivalents that exercise the same code paths
// (DESIGN.md Sec. 3):
//
//  * synthetic_digits  — 28 x 28 x 1, 10 classes: rendered digit glyphs
//    with random placement, stroke intensity and pixel noise (an
//    MNIST-shaped problem).
//  * synthetic_objects — 32 x 32 x 3, 10 classes: colored geometric
//    shapes (circle / square / triangle / cross / ring, two hues each)
//    with random size, position and noise (a CIFAR-shaped problem).
//
// Both are deterministic given the seed, arbitrarily large, and hard
// enough that accuracy is meaningfully below 100% for simple models —
// which is what the Fig. 7 degradation study needs.
#pragma once

#include "resipe/common/rng.hpp"
#include "resipe/nn/train.hpp"

namespace resipe::nn {

/// MNIST-shaped synthetic digit classification set.
Dataset synthetic_digits(std::size_t n, Rng& rng);

/// CIFAR-shaped synthetic colored-shape classification set.
Dataset synthetic_objects(std::size_t n, Rng& rng);

/// Renders one digit glyph into a 28 x 28 image buffer (exposed for
/// tests and the quickstart example).
void render_digit(int digit, double dx, double dy, double intensity,
                  std::span<double> out28x28);

}  // namespace resipe::nn
