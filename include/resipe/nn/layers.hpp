// Neural-network layers with forward and backward passes.
//
// The layer set is exactly what the paper's six benchmark networks need
// (Sec. IV-C): dense (perceptron) layers, 2-D convolutions, max/avg
// pooling, ReLU, and flatten.  Each layer caches its forward input so
// backward() can compute gradients; parameters and their gradient
// buffers are exposed through params() for the optimizer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "resipe/common/rng.hpp"
#include "resipe/nn/tensor.hpp"

namespace resipe::nn {

/// A trainable parameter: value tensor and its gradient accumulator.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass.  `train` enables training-only behaviour (currently
  /// just gradient caching; kept for future dropout-style layers).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: gradient w.r.t. this layer's output in, gradient
  /// w.r.t. its input out.  Accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Layer type + shape description for model summaries.
  virtual std::string describe() const = 0;

  /// True for layers realized on ReSiPE crossbars (dense / conv);
  /// pooling and activations run in the spike domain / peripheral
  /// logic.
  virtual bool is_matrix_layer() const { return false; }
};

/// Fully-connected layer: y = x W + b, x: [N, in], W: [in, out].
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param> params() override;
  std::string describe() const override;
  bool is_matrix_layer() const override { return true; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Tensor& weights() { return w_; }
  const Tensor& weights() const { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& bias() const { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_;   // [in, out]
  Tensor b_;   // [1, out]
  Tensor gw_;
  Tensor gb_;
  Tensor cached_x_;
};

/// 2-D convolution, stride `stride`, symmetric zero padding `pad`.
/// x: [N, Cin, H, W]; kernels: [Cout, Cin, K, K].
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param> params() override;
  std::string describe() const override;
  bool is_matrix_layer() const override { return true; }

  std::size_t in_channels() const { return cin_; }
  std::size_t out_channels() const { return cout_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }
  std::size_t pad() const { return pad_; }
  Tensor& weights() { return w_; }
  const Tensor& weights() const { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& bias() const { return b_; }

  /// Output spatial size for an input of spatial size `in`.
  std::size_t out_size(std::size_t in) const;

 private:
  std::size_t cin_;
  std::size_t cout_;
  std::size_t k_;
  std::size_t stride_;
  std::size_t pad_;
  Tensor w_;   // [Cout, Cin, K, K]
  Tensor b_;   // [1, Cout]
  Tensor gw_;
  Tensor gb_;
  Tensor cached_x_;
};

/// Max pooling with square window `k` and stride `k`.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t k);
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override;
  std::size_t window() const { return k_; }

 private:
  std::size_t k_;
  Tensor cached_x_;
  std::vector<std::size_t> argmax_;  // flat input index per output elem
};

/// Average pooling with square window `k` and stride `k`.
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::size_t k);
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override;
  std::size_t window() const { return k_; }

 private:
  std::size_t k_;
  std::vector<std::size_t> in_shape_;
};

/// Per-channel batch normalization over [N, C, H, W] inputs.
/// Training uses batch statistics and maintains running estimates;
/// evaluation uses the running estimates.  For crossbar mapping the
/// affine transform folds into the preceding conv/dense weights
/// (see fold_batchnorm in model.hpp).
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double eps = 1e-5);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param> params() override;
  std::string describe() const override;

  std::size_t channels() const { return channels_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  double eps() const { return eps_; }

  /// Effective per-channel scale/shift at inference:
  /// y = scale * x + shift.
  double effective_scale(std::size_t c) const;
  double effective_shift(std::size_t c) const;

 private:
  std::size_t channels_;
  double momentum_;
  double eps_;
  Tensor gamma_;   // [1, C]
  Tensor beta_;    // [1, C]
  Tensor g_gamma_;
  Tensor g_beta_;
  Tensor running_mean_;  // [1, C]
  Tensor running_var_;   // [1, C]
  // Cached forward state for backward.
  Tensor cached_xhat_;
  std::vector<double> batch_mean_;
  std::vector<double> batch_var_;
};

/// Rectified linear unit.  In the ReSiPE mapping ReLU is free: a
/// negative differential MAC simply produces no spike.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override;

 private:
  Tensor cached_x_;
};

/// Inverted dropout: active only in training; evaluation is identity.
class Dropout : public Layer {
 public:
  explicit Dropout(double rate, std::uint64_t seed = 99);
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override;

 private:
  double rate_;
  Rng rng_;
  std::vector<double> mask_;
};

/// Collapses [N, C, H, W] -> [N, C*H*W].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override;

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace resipe::nn
