// Model weight serialization.
//
// Architecture-agnostic parameter dump: the file stores the flattened
// parameter tensors in layer order.  Loading requires a model with the
// identical architecture (sizes are checked).  Used to cache trained
// benchmark networks between bench runs so Fig. 7 does not retrain six
// nets every time.
#pragma once

#include <string>

#include "resipe/nn/model.hpp"

namespace resipe::nn {

/// Writes all parameters of `model` to `path` (binary).  Throws on I/O
/// failure.
void save_weights(Sequential& model, const std::string& path);

/// Loads parameters saved by save_weights into `model`.  Throws when
/// the file does not exist, is corrupt, or the parameter layout does
/// not match.
void load_weights(Sequential& model, const std::string& path);

/// True when `path` exists and matches the model's parameter layout —
/// load_weights(model, path) would succeed.
bool weights_compatible(Sequential& model, const std::string& path);

}  // namespace resipe::nn
