// Table I: taxonomy of data formats in ReRAM PIM designs.
//
// A small registry of the five design classes the paper compares, with
// the qualitative attributes of Table I, rendered as the same table.
#pragma once

#include <string>
#include <vector>

#include "resipe/common/table.hpp"

namespace resipe::eval {

/// One row of the taxonomy.
struct DataFormatClass {
  std::string format;          ///< Level / PWM / Rate / Temporal / This work
  std::string shape;           ///< signal shape sketch
  std::string interface;      ///< peripheral circuit class
  std::string drive_duration; ///< non-zero-voltage applying duration
  std::string in_out_scale;   ///< whether input/output formats match
  std::string latency;        ///< qualitative latency class
  std::string representative; ///< citations
};

/// The five classes of Table I.
std::vector<DataFormatClass> data_format_taxonomy();

/// Renders Table I.
TextTable taxonomy_table();

}  // namespace resipe::eval
