// Monte-Carlo yield analysis.
//
// Fig. 7 reports the *mean* accuracy across device instantiations; a
// manufacturer asks the sharper question: what fraction of fabricated
// chips meets a quality bound?  This harness programs many independent
// virtual chips per variation sigma and reports the distribution of
// MVM fidelity plus the yield against an error bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resipe/resipe/network.hpp"

namespace resipe::eval {

/// Yield statistics at one variation sigma.
struct YieldPoint {
  double sigma = 0.0;
  double mean_rmse = 0.0;
  double worst_rmse = 0.0;   ///< worst chip in the sample
  double yield = 0.0;        ///< fraction of chips with rmse <= bound
};

/// Configuration of the yield sweep.
struct YieldConfig {
  std::vector<double> sigmas = {0.0, 0.05, 0.10, 0.15, 0.20};
  std::size_t chips_per_sigma = 24;  ///< independent device draws
  double rmse_bound = 0.05;          ///< pass/fail criterion
  std::size_t matrix_rows = 32;
  std::size_t matrix_cols = 8;
  std::size_t samples_per_chip = 32;
  std::uint64_t seed = 4242;
  /// Worker threads for the (sigma, chip) cells (0 = default_threads(),
  /// 1 = serial).  Bit-identical results for every value.
  std::size_t threads = 0;
};

/// Runs the sweep on top of `base` (its sigma field is overridden).
std::vector<YieldPoint> mvm_yield(const resipe_core::EngineConfig& base,
                                  const YieldConfig& config = {});

/// Renders the yield table.
std::string render_yield(const std::vector<YieldPoint>& points,
                         double rmse_bound);

}  // namespace resipe::eval
