// Per-layer precision diagnostics for a lowered network.
//
// Fig. 7 gives one number per network; when that number drops, the
// next question is *which layer* lost the signal.  This harness runs a
// probe batch through the software model, captures every matrix
// layer's input, pushes the same inputs through the corresponding
// ProgrammedMatrix, and reports per-layer error and SNR — the
// debugging view a deployment engineer needs.
#pragma once

#include <string>
#include <vector>

#include "resipe/nn/model.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe::eval {

/// Error statistics of one lowered matrix layer.
struct LayerPrecision {
  std::string description;
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  double rmse = 0.0;        ///< vs the software layer output
  double signal_rms = 0.0;  ///< RMS of the software output
  /// Signal-to-noise ratio in dB: 20 log10(signal_rms / rmse).
  double snr_db = 0.0;
  double alpha = 0.0;       ///< calibrated time scale of the layer
};

/// Measures every matrix layer of `model` under `config` using up to
/// `probe_limit` vectors captured from `probe` (per layer; conv layers
/// sample im2col patches).
std::vector<LayerPrecision> layer_precision(
    nn::Sequential& model, const resipe_core::EngineConfig& config,
    const nn::Tensor& probe, std::size_t probe_limit = 128);

/// Renders the per-layer table.
std::string render_precision(const std::vector<LayerPrecision>& rows);

}  // namespace resipe::eval
