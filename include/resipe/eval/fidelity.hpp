// MVM fidelity measurement: how accurately a ProgrammedMatrix under a
// given engine configuration reproduces the reference y = W^T x on
// random signed matrices — the figure of merit behind the ablation
// benches (Ccog sweep, array-size sweep, mapping strategies).
#pragma once

#include <cstdint>

#include "resipe/resipe/network.hpp"

namespace resipe::eval {

/// Result of a fidelity run.
struct FidelityScore {
  double rmse = 0.0;   ///< RMS error / max |reference output|
  double worst = 0.0;  ///< worst-case error / max |reference output|
  double alpha = 0.0;  ///< calibrated time scale
};

/// Programs a random `in x out` signed matrix under `config`, runs
/// `samples` random non-negative inputs through the circuit model, and
/// scores the outputs against the exact y = W^T x.  The sample loop
/// runs on `threads` workers (0 = default_threads(), 1 = serial) with
/// bit-identical results for every value; inputs are all drawn up
/// front from the single `seed` stream.
FidelityScore mvm_fidelity(const resipe_core::EngineConfig& config,
                           std::size_t in = 32, std::size_t out = 8,
                           std::size_t samples = 64,
                           std::uint64_t seed = 99,
                           std::size_t threads = 0);

}  // namespace resipe::eval
