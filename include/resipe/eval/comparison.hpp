// Table II: power / power-efficiency / latency / area comparison of
// ReSiPE against the level-based, PWM-based and rate-coding baselines,
// all at the same 32 x 32 array size and full utilization.
#pragma once

#include <string>
#include <vector>

#include "resipe/energy/design.hpp"

namespace resipe::eval {

/// Headline ratios the paper reports (Sec. IV-B), derived from the
/// evaluated design points.
struct ComparisonHeadlines {
  double power_reduction_vs_level = 0.0;   ///< paper: 67.1%
  double peff_gain_vs_level = 0.0;         ///< paper: 1.97x
  double peff_gain_vs_rate = 0.0;          ///< paper: 2.41x
  double peff_gain_vs_pwm = 0.0;           ///< paper: 49.76x
  double latency_saving_vs_rate = 0.0;     ///< paper: 50%
  double latency_saving_vs_pwm = 0.0;      ///< paper: 68.8%
  double area_saving_vs_rate = 0.0;        ///< paper: 14.2%
  double area_saving_vs_level = 0.0;       ///< paper: 85.3%
  double cog_power_share = 0.0;            ///< paper: 98.1%
};

/// The full comparison: evaluated points (ReSiPE first) + headlines +
/// ReSiPE's energy breakdown.
struct ComparisonResult {
  std::vector<energy::DesignPoint> points;
  ComparisonHeadlines headlines;
  std::string resipe_breakdown;

  /// Renders the Table II equivalent (absolute values + ratios).
  std::string render() const;
};

/// Builds the four default design models and evaluates them.
ComparisonResult compare_designs(std::size_t rows = 32,
                                 std::size_t cols = 32);

}  // namespace resipe::eval
