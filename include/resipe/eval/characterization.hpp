// Fig. 5: input-output characterization of the single-spiking MVM.
//
// Reproduces the paper's experiment: 100 random (t_in, G) samples on a
// 32-row column with total conductance 0.32..3.2 mS and arrival times
// 10..80 ns; the x-axis is the input strength t_in * G_total, the
// y-axis the measured output time t_out.  Fitting curves are computed
// for the samples with G_total <= 1.6 mS (Curve 1) and for fixed
// sweeps at 2.5 mS (Curve 2) and 3.2 mS (Curve 3) — the latter two
// fall below Curve 1 because Ccog's charging saturates (Sec. III-D).
#pragma once

#include <cstdint>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/common/stats.hpp"

namespace resipe::eval {

/// One characterization sample.
struct CharacterizationPoint {
  double t_in = 0.0;      ///< mean arrival time across the rows (s)
  double g_total = 0.0;   ///< column total conductance (S)
  double strength = 0.0;  ///< x-axis: sum_i t_in,i * G_i (s*S)
  double t_out = 0.0;     ///< measured output time (s)
  double t_out_ideal = 0.0;  ///< Eq.(6) linear prediction (s)
};

/// The full Fig. 5 dataset.
struct CharacterizationResult {
  std::vector<CharacterizationPoint> random_samples;   // 100 points
  std::vector<CharacterizationPoint> sweep_2_5ms;      // Curve 2 data
  std::vector<CharacterizationPoint> sweep_3_2ms;      // Curve 3 data
  PolyFit curve1;  ///< fit of random samples with G <= 1.6 mS
  PolyFit curve2;  ///< fit of the 2.5 mS sweep
  PolyFit curve3;  ///< fit of the 3.2 mS sweep
};

/// Parameters of the characterization run (paper values by default).
struct CharacterizationConfig {
  circuits::CircuitParams circuit;   // paper defaults
  std::size_t rows = 32;
  std::size_t samples = 100;
  double g_total_min = 0.32e-3;      // S
  double g_total_max = 3.2e-3;       // S
  double t_in_min = 10e-9;           // s
  double t_in_max = 80e-9;           // s
  std::size_t sweep_points = 40;
  int fit_degree = 2;
  std::uint64_t seed = 2020;
  /// Worker threads for the sample/sweep measurements (0 =
  /// default_threads(), 1 = serial).  All randomness is drawn up front
  /// on the calling thread, so results are bit-identical for every
  /// value.
  std::size_t threads = 0;
};

/// Runs the characterization.
CharacterizationResult characterize(const CharacterizationConfig& config = {});

/// Output time of one column with uniform per-row arrival `t_in` and
/// total conductance `g_total` spread evenly over the rows.  In this
/// symmetric case the shared-ramp encode/decode cancels almost
/// perfectly (t_out ~ t_in once Ccog saturates) — the cancellation
/// property Sec. III-D relies on.
double single_point_t_out(const circuits::CircuitParams& params,
                          std::size_t rows, double t_in, double g_total);

/// Output time of one column with per-row arrival times `t_in` and
/// per-row conductances `g` — the general Fig. 5 measurement.
double column_t_out(const circuits::CircuitParams& params,
                    std::span<const double> t_in, std::span<const double> g);

}  // namespace resipe::eval
