// Fig. 6: latency / area / throughput trade-off.
//
// Under a fixed area budget a design can be replicated to raise
// parallel throughput: n = floor(budget / engine_area) engines, each
// starting an MVM every initiation interval.  ReSiPE's small engine
// footprint buys more replicas per mm^2, which is how it wins the
// throughput race despite a slower per-MVM latency than level-based
// designs (Sec. IV-B.3).
#pragma once

#include <string>
#include <vector>

#include "resipe/energy/design.hpp"

namespace resipe::eval {

/// Throughput of one design across a sweep of area budgets.
struct ThroughputSeries {
  std::string name;
  double engine_area = 0.0;        ///< m^2 per engine
  double engine_latency = 0.0;     ///< s
  double engine_throughput = 0.0;  ///< ops/s of one engine
  std::vector<double> area_budget;  ///< m^2
  std::vector<double> throughput;   ///< ops/s
};

/// The full Fig. 6 dataset: one series per design over a common budget
/// axis, plus the iso-throughput reference lines.
struct ThroughputResult {
  std::vector<ThroughputSeries> series;
  std::vector<double> area_axis;   ///< m^2
  std::string render() const;
};

/// Sweeps area budgets from `min_budget` to `max_budget` (m^2) over
/// `steps` points for the four Table II designs.
ThroughputResult throughput_tradeoff(double min_budget = 0.01e-6,
                                     double max_budget = 0.5e-6,
                                     std::size_t steps = 12);

/// Replicated throughput of one evaluated design point under a budget.
double replicated_throughput(const energy::DesignPoint& p,
                             double area_budget);

}  // namespace resipe::eval
