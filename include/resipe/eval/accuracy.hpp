// Fig. 7: classification accuracy of the six benchmark networks under
// circuit non-linearity and ReRAM process variation.
//
// For each network: train (or load cached weights), measure the
// software ("ideal") accuracy, then map the network through the ReSiPE
// circuit model and re-measure while sweeping the device variation
// sigma over {0, 5, 10, 15, 20}% with Monte-Carlo re-programming.
// The sigma = 0 point isolates the non-linearity penalty (< 2.5% in
// the paper); growing sigma shows the PV penalty, which is larger for
// deeper networks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe::eval {

/// Knobs for the accuracy experiment.
struct AccuracyConfig {
  std::vector<double> sigmas = {0.0, 0.05, 0.10, 0.15, 0.20};
  std::size_t train_samples = 3000;  ///< scaled down per-net for CNNs
  std::size_t test_samples = 200;
  std::size_t epochs = 4;
  std::size_t mc_seeds = 2;          ///< device instantiations per sigma
  std::string weight_cache_dir;      ///< empty = no caching
  bool verbose = false;
  std::uint64_t data_seed = 11;
  /// Worker threads for the Monte-Carlo arms (0 = default_threads(),
  /// i.e. RESIPE_THREADS or the hardware count; 1 = serial).  Results
  /// are bit-identical for every value — see DESIGN.md "Parallel
  /// runtime".
  std::size_t threads = 0;
};

/// Accuracy of one network across the sigma sweep.
struct NetworkAccuracy {
  std::string name;
  double software_accuracy = 0.0;  ///< trained model, float math
  std::vector<double> sigmas;
  std::vector<double> accuracy;    ///< mean over Monte-Carlo seeds

  /// Accuracy drop at a sweep index, relative to software accuracy.
  double drop(std::size_t i) const { return software_accuracy - accuracy[i]; }
};

/// Runs the experiment for one benchmark network.
NetworkAccuracy evaluate_network_accuracy(nn::BenchmarkNet net,
                                          const AccuracyConfig& config);

/// Runs all six benchmarks (paper order).
std::vector<NetworkAccuracy> evaluate_all_networks(
    const AccuracyConfig& config);

/// Renders the Fig. 7 table.
std::string render_accuracy(const std::vector<NetworkAccuracy>& rows);

}  // namespace resipe::eval
