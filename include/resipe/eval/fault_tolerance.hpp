// Fault-tolerance experiment: classification accuracy vs hard-defect
// rate, with the mitigation pipeline OFF (inject faults, run blind)
// and ON (march-test detection + spare-column remapping + differential
// compensation).
//
// Both arms share the fault realization (ReliabilityConfig::fault_seed
// is independent of the programming stream), so each sweep point is a
// paired comparison on identical defective silicon.  The zero-defect
// circuit baseline (reliability disabled entirely) anchors how much
// accuracy mitigation recovers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe::eval {

/// Knobs for the fault-tolerance sweep.
struct FaultToleranceConfig {
  nn::BenchmarkNet net = nn::BenchmarkNet::kMlp1;
  /// Total stuck-at cell rates swept (split evenly LRS/HRS).
  std::vector<double> defect_rates = {0.0025, 0.005, 0.01, 0.02, 0.05};
  /// Fraction of the defect budget placed as spatial clusters.
  double cluster_fraction = 0.25;
  /// Spare physical columns provisioned per tile block.
  std::size_t spare_cols = 4;
  std::size_t train_samples = 2500;
  std::size_t test_samples = 200;
  std::size_t epochs = 4;
  std::size_t mc_seeds = 2;          ///< fault/device realizations per rate
  std::string weight_cache_dir;      ///< empty = no caching
  bool verbose = false;
  std::uint64_t data_seed = 11;
  std::uint64_t fault_seed = 0xFA117u;
  /// Worker threads for the (rate, seed) Monte-Carlo arms (0 =
  /// default_threads(), 1 = serial).  Bit-identical for every value.
  std::size_t threads = 0;
};

/// One sweep point: paired accuracies plus the mitigation-arm health
/// counters (summed over Monte-Carlo seeds).
struct FaultTolerancePoint {
  double defect_rate = 0.0;
  double accuracy_off = 0.0;  ///< faults injected, mitigation disabled
  double accuracy_on = 0.0;   ///< faults injected, mitigation enabled
  std::size_t cells_faulty = 0;
  std::size_t columns_remapped = 0;
  std::size_t spares_used = 0;
  std::size_t columns_unrepairable = 0;
  std::size_t cells_compensated = 0;
  std::size_t degraded_outputs = 0;
};

/// Full sweep result for one network.
struct FaultToleranceResult {
  std::string network;
  double software_accuracy = 0.0;  ///< trained model, float math
  double baseline_accuracy = 0.0;  ///< circuit model, zero defects
  std::vector<FaultTolerancePoint> points;
};

/// Runs the sweep (trains or loads the network, then evaluates every
/// defect rate with mitigation OFF and ON on shared fault maps).
FaultToleranceResult evaluate_fault_tolerance(
    const FaultToleranceConfig& config);

/// Renders the sweep as a table plus a recovery summary.
std::string render_fault_tolerance(const FaultToleranceResult& result);

}  // namespace resipe::eval
