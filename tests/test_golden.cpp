// Golden-file regression tests for the two numeric kernels everything
// else is built on: the spike codec and the closed-form RC stage.
//
// The CSVs under tests/golden/ pin today's numeric outputs; any change
// — an accidental reordering of operations, a "harmless" refactor of
// rc_voltage, a codec rounding tweak — shows up as a diff against the
// golden row, with the offending inputs in the failure message.
//
// Regenerate deliberately after an intended numeric change with
//   ./tests/test_golden --update-golden
// and commit the rewritten CSVs alongside the code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/circuits/rc_stage.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "testing/approx.hpp"

#ifndef RESIPE_GOLDEN_DIR
#error "RESIPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace resipe {
namespace {

bool g_update_golden = false;

// Values are written with %.17g so the decimal text round-trips the
// exact double; the comparison still allows 1e-12 relative slack so a
// libm with differently-rounded exp/log does not fail the suite.
constexpr double kGoldenRelTol = 1e-12;

struct GoldenRow {
  std::string key;            // human-readable input description
  std::vector<double> values;
};

std::string format_row(const GoldenRow& row) {
  std::string line = row.key;
  char buf[40];
  for (const double v : row.values) {
    std::snprintf(buf, sizeof(buf), ",%.17g", v);
    line += buf;
  }
  return line;
}

void check_against_golden(const std::string& filename,
                          const std::vector<GoldenRow>& rows) {
  const std::string path = std::string(RESIPE_GOLDEN_DIR) + "/" + filename;
  if (g_update_golden) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& row : rows) out << format_row(row) << "\n";
    GTEST_SKIP() << "rewrote " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with --update-golden to create it)";
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(i, rows.size()) << filename << " has extra rows";
    const GoldenRow& expect = rows[i];
    // Split the stored line: key, then one column per value.
    std::istringstream ss(line);
    std::string field;
    std::getline(ss, field, ',');
    EXPECT_EQ(field, expect.key) << filename << " row " << i;
    for (std::size_t c = 0; c < expect.values.size(); ++c) {
      ASSERT_TRUE(std::getline(ss, field, ','))
          << filename << " row " << i << " truncated";
      RESIPE_EXPECT_REL(expect.values[c], std::stod(field), kGoldenRelTol)
          << filename << " row " << i << " (" << expect.key << ") col "
          << c;
    }
    ++i;
  }
  EXPECT_EQ(i, rows.size()) << filename << " is missing rows";
}

TEST(Golden, SpikeCodec) {
  std::vector<GoldenRow> rows;
  for (const bool quantize : {false, true}) {
    for (const auto* preset : {"paper", "nn"}) {
      const circuits::CircuitParams p =
          std::string(preset) == "paper"
              ? circuits::CircuitParams::paper_defaults()
              : circuits::CircuitParams::nn_calibrated();
      const resipe_core::SpikeCodec codec(p, quantize);
      for (int step = 0; step <= 16; ++step) {
        const double x = static_cast<double>(step) / 16.0;
        const auto spike = codec.encode(x);
        std::string key = preset;
        key += quantize ? "_q" : "_c";
        key += "_x" + std::to_string(step);
        rows.push_back({key,
                        {spike.arrival_time, codec.decode(spike),
                         codec.voltage_of(spike.arrival_time)}});
      }
      rows.push_back({std::string(preset) + (quantize ? "_q" : "_c") +
                          "_fullscale",
                      {codec.t_full(), codec.v_full(),
                       static_cast<double>(codec.levels())}});
    }
  }
  check_against_golden("spike_codec.csv", rows);
}

TEST(Golden, RcStage) {
  std::vector<GoldenRow> rows;
  int id = 0;
  for (const double tau : {2e-9, 10e-9, 100e-9}) {
    for (const double v0 : {0.0, 0.25}) {
      for (const double v_inf : {0.0, 0.5, 1.0}) {
        for (const double t : {0.0, 1e-9, 10e-9, 80e-9}) {
          const double v = circuits::rc_voltage(v0, v_inf, tau, t);
          // Round-trip through the inverse where it is defined.
          const double t_back =
              circuits::rc_time_to_reach(v0, v_inf, tau, v);
          rows.push_back({"rc" + std::to_string(id++), {v, t_back}});
        }
      }
    }
  }
  for (const double t : {0.0, 1e-9, 50e-9}) {
    rows.push_back({"lin" + std::to_string(id++),
                    {circuits::rc_voltage_linear(1.0, 10e-9, t),
                     circuits::rc_source_energy(100e-15, 1.0, 0.7),
                     circuits::capacitor_energy(100e-15, 0.7)}});
  }
  check_against_golden("rc_stage.csv", rows);
}

}  // namespace
}  // namespace resipe

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      resipe::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
