// Design-model invariants behind Table II: how each engine's energy,
// power and area respond to utilization and array size — the
// sensitivities a reader checks before trusting the headline ratios.
#include <gtest/gtest.h>

#include "resipe/common/error.hpp"
#include "resipe/baselines/level_based.hpp"
#include "resipe/baselines/pwm_based.hpp"
#include "resipe/baselines/rate_coding.hpp"
#include "resipe/baselines/temporal_coding.hpp"
#include "resipe/resipe/design.hpp"

namespace resipe {
namespace {

TEST(ResipeDesign, EnergyScalesWithColumns) {
  // The COG cluster dominates, so halving the columns roughly halves
  // the per-MVM energy.
  resipe_core::ResipeDesign wide({}, device::ReramSpec::nn_mapping(), 32,
                                 32);
  resipe_core::ResipeDesign narrow({}, device::ReramSpec::nn_mapping(), 32,
                                   16);
  const double ratio = wide.evaluate().energy_per_mvm /
                       narrow.evaluate().energy_per_mvm;
  EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST(ResipeDesign, EnergyInsensitiveToRows) {
  // Rows add S/H + drivers only — a few percent of the COG cluster.
  resipe_core::ResipeDesign tall({}, device::ReramSpec::nn_mapping(), 64,
                                 32);
  resipe_core::ResipeDesign base({}, device::ReramSpec::nn_mapping(), 32,
                                 32);
  const double ratio =
      tall.evaluate().energy_per_mvm / base.evaluate().energy_per_mvm;
  EXPECT_LT(ratio, 1.2);
  EXPECT_GT(ratio, 1.0);
}

TEST(ResipeDesign, CogShareHoldsAcrossSizes) {
  for (std::size_t n : {16u, 32u, 64u}) {
    resipe_core::ResipeDesign design({}, device::ReramSpec::nn_mapping(),
                                     n, n);
    EXPECT_GT(design.mvm_report().energy_share("COG"), 0.9)
        << n << "x" << n;
  }
}

TEST(LevelBased, EnergyGrowsWithReadVoltage) {
  baselines::LevelBasedParams low;
  low.v_read = 0.3;
  baselines::LevelBasedParams high;
  high.v_read = 0.6;
  const baselines::LevelBasedDesign a(low);
  const baselines::LevelBasedDesign b(high);
  EXPECT_GT(b.evaluate().energy_per_mvm, a.evaluate().energy_per_mvm);
}

TEST(RateCoding, EnergyGrowsWithUtilization) {
  // More spikes per input = more modulator, crossbar and neuron events.
  baselines::RateCodingParams quiet;
  quiet.utilization = 0.1;
  baselines::RateCodingParams busy;
  busy.utilization = 0.9;
  const baselines::RateCodingDesign a(quiet);
  const baselines::RateCodingDesign b(busy);
  EXPECT_GT(b.evaluate().energy_per_mvm, a.evaluate().energy_per_mvm);
}

TEST(RateCoding, MoreBitsMeansLongerWindow) {
  baselines::RateCodingParams coarse;
  coarse.bits = 4;
  baselines::RateCodingParams fine;
  fine.bits = 6;
  EXPECT_GT(fine.window(), coarse.window());
}

TEST(PwmBased, EnergyGrowsWithDuty) {
  baselines::PwmParams low;
  low.utilization = 0.1;
  baselines::PwmParams high;
  high.utilization = 0.9;
  const baselines::PwmDesign a(low);
  const baselines::PwmDesign b(high);
  EXPECT_GT(b.evaluate().energy_per_mvm, a.evaluate().energy_per_mvm);
}

TEST(TableII, LatencyOrderingMatchesTableI) {
  // Fast: level.  Medium: ReSiPE, rate, PWM.  Slow: temporal.
  const resipe_core::ResipeDesign resipe;
  const baselines::LevelBasedDesign level;
  const baselines::RateCodingDesign rate;
  const baselines::PwmDesign pwm;
  const baselines::TemporalCodingDesign temporal;
  EXPECT_LT(level.mvm_latency(), resipe.mvm_latency());
  EXPECT_LT(resipe.mvm_latency(), rate.mvm_latency());
  EXPECT_LT(rate.mvm_latency(), pwm.mvm_latency());
  EXPECT_LT(pwm.mvm_latency(), temporal.mvm_latency());
}

TEST(TableII, ResipeHasTheSmallestEngine) {
  const resipe_core::ResipeDesign resipe;
  const baselines::LevelBasedDesign level;
  const baselines::RateCodingDesign rate;
  const baselines::PwmDesign pwm;
  const double a = resipe.evaluate().area;
  EXPECT_LT(a, level.evaluate().area);
  EXPECT_LT(a, rate.evaluate().area);
  EXPECT_LT(a, pwm.evaluate().area);
}

TEST(ResipeDesign, UtilizationInputValidated) {
  EXPECT_THROW(resipe_core::ResipeDesign(
                   {}, device::ReramSpec::nn_mapping(), 32, 32, 1.5),
               resipe::Error);
}

TEST(ResipeDesign, PipelinedIntervalIsOneSlice) {
  circuits::CircuitParams params;
  params.slice_length = 50e-9;
  params.comp_stage = 0.5e-9;
  resipe_core::ResipeDesign design(params);
  EXPECT_DOUBLE_EQ(design.initiation_interval(), 50e-9);
  EXPECT_DOUBLE_EQ(design.mvm_latency(), 100e-9);
}

}  // namespace
}  // namespace resipe
