// Cross-module property tests: invariants that must hold across random
// configurations, not just the hand-picked cases in the per-module
// suites.
#include <gtest/gtest.h>

#include <cmath>

#include "resipe/crossbar/mapping.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/resipe/chip.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"

namespace resipe {
namespace {

using circuits::CircuitParams;
using circuits::Spike;

// ---------------------------------------------------------------------------
// Property: FastMvm and the faithful tile model agree for any array
// geometry, device corner and operating point.
struct EquivalenceCase {
  std::size_t rows;
  std::size_t cols;
  bool nn_window;   // device corner
  bool linear_gd;   // big tau_gd
  std::uint64_t seed;
};

class TileFastEquivalence
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(TileFastEquivalence, OutputsMatchBitForBit) {
  const EquivalenceCase c = GetParam();
  CircuitParams params;
  if (c.linear_gd) params = CircuitParams::linear_regime();
  device::ReramSpec spec = c.nn_window
                               ? device::ReramSpec::nn_mapping()
                               : device::ReramSpec::characterization();
  spec.variation_sigma = 0.05;  // exercise the noisy programming path

  resipe_core::ResipeTile tile(params, c.rows, c.cols, spec);
  Rng rng(c.seed);
  std::vector<double> g(c.rows * c.cols);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g, rng);

  const resipe_core::FastMvm fast(params, tile.crossbar());
  const resipe_core::SpikeCodec codec(params);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Spike> spikes(c.rows);
    std::vector<double> t_in(c.rows);
    for (std::size_t i = 0; i < c.rows; ++i) {
      spikes[i] = codec.encode(rng.uniform(0.0, 1.0));
      t_in[i] = spikes[i].arrival_time;
    }
    const auto tile_out = tile.execute(spikes);
    std::vector<double> fast_out(c.cols, 0.0);
    fast.mvm_times(t_in, fast_out);
    for (std::size_t col = 0; col < c.cols; ++col) {
      if (tile_out[col].valid()) {
        // The two implementations use algebraically-identical but
        // differently-factored expressions; agreement to 1e-12 relative
        // is the float-exactness bound.
        EXPECT_NEAR(fast_out[col], tile_out[col].arrival_time,
                    1e-12 * std::max(tile_out[col].arrival_time, 1e-9));
      } else {
        EXPECT_EQ(fast_out[col], resipe_core::FastMvm::kNoSpike);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TileFastEquivalence,
    ::testing::Values(EquivalenceCase{1, 1, true, false, 11},
                      EquivalenceCase{4, 7, true, false, 12},
                      EquivalenceCase{16, 3, false, false, 13},
                      EquivalenceCase{32, 32, true, false, 14},
                      EquivalenceCase{8, 8, true, true, 15},
                      EquivalenceCase{64, 16, false, true, 16}));

// ---------------------------------------------------------------------------
// Property: the codec round-trip holds at every operating point.
class CodecProperty : public ::testing::TestWithParam<double> {};

TEST_P(CodecProperty, RoundTripUnquantized) {
  CircuitParams params;
  params.r_gd = GetParam();
  const resipe_core::SpikeCodec codec(params, /*quantize=*/false);
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    EXPECT_NEAR(codec.decode(codec.encode(x)), x, 1e-9)
        << "Rgd=" << GetParam() << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(RgdSweep, CodecProperty,
                         ::testing::Values(50e3, 100e3, 300e3, 1e6, 1e7));

// ---------------------------------------------------------------------------
// Property: mapping + unmapping recovers weights for random shapes and
// strategies (quantization-bounded).
class MappingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MappingProperty, RoundTripAnyShape) {
  Rng rng(GetParam());
  const std::size_t rows = 1 + static_cast<std::size_t>(
                                   rng.uniform_int(0, 20));
  const std::size_t cols = 1 + static_cast<std::size_t>(
                                   rng.uniform_int(0, 10));
  device::ReramSpec spec = device::ReramSpec::nn_mapping();
  spec.levels = 1 << 12;
  std::vector<double> w(rows * cols);
  for (double& v : w) v = rng.normal(0.0, 1.0);
  double w_max = 0.0;
  for (double v : w) w_max = std::max(w_max, std::abs(v));

  for (auto strategy : {crossbar::SignedMapping::kDifferentialPair,
                        crossbar::SignedMapping::kComplementaryPair,
                        crossbar::SignedMapping::kOffsetColumn}) {
    const auto mapped = crossbar::map_weights(w, rows, cols, spec, strategy);
    const auto recovered = crossbar::unmap_weights(mapped, mapped.g_targets);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(recovered[i], w[i], 2e-3 * w_max)
          << crossbar::to_string(strategy) << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MappingProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

// ---------------------------------------------------------------------------
// Property: the ideal engine is homogeneous — scaling the input vector
// scales the (bias-free) output.
TEST(EngineProperty, IdealEngineIsHomogeneous) {
  resipe_core::EngineConfig cfg = resipe_core::EngineConfig::ideal();
  Rng rng(33);
  constexpr std::size_t kIn = 12;
  constexpr std::size_t kOut = 5;
  std::vector<double> w(kIn * kOut);
  for (double& v : w) v = rng.normal(0.0, 0.5);
  const std::vector<double> bias(kOut, 0.0);
  Rng prog(1);
  resipe_core::ProgrammedMatrix pm(cfg, w, bias, kIn, kOut, prog);
  pm.set_input_scale(2.0);  // inputs live in [0, 2]

  std::vector<double> x(kIn);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  std::vector<double> y1(kOut), y2(kOut);
  pm.forward(x, y1);
  for (double& v : x) v *= 2.0;
  pm.forward(x, y2);
  for (std::size_t j = 0; j < kOut; ++j) {
    EXPECT_NEAR(y2[j], 2.0 * y1[j], 1e-3 * std::abs(y1[j]) + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Property: chip mapping tile counts obey the ceil arithmetic for any
// layer shape.
TEST(ChipProperty, TileCountsMatchCeilMath) {
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t in = 1 + static_cast<std::size_t>(
                                   rng.uniform_int(0, 300));
    const std::size_t out = 1 + static_cast<std::size_t>(
                                    rng.uniform_int(0, 60));
    nn::Sequential model("m");
    Rng init(1);
    model.emplace<nn::Dense>(in, out, init);
    const auto report = resipe_core::map_network(
        model, {1, 1, in});  // flat input of matching size
    const std::size_t expect =
        ((in + 31) / 32) * ((2 * out + 31) / 32);
    EXPECT_EQ(report.total_tiles, expect) << "in=" << in << " out=" << out;
  }
}

}  // namespace
}  // namespace resipe
