#include "resipe/resipe/tile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/resipe/spike_code.hpp"

namespace resipe::resipe_core {
namespace {

using circuits::CircuitParams;
using circuits::Spike;

device::ReramSpec clean_spec() {
  device::ReramSpec spec = device::ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.variation_sigma = 0.0;
  spec.transistor_r_on = 0.0;
  spec.levels = 1 << 14;
  return spec;
}

TEST(ResipeTile, TwoInputMacMatchesSection3B) {
  // The Fig. 2 example: R1 = 50 k, R2 = 200 k, inputs at 30/60 ns.
  const CircuitParams p;
  ResipeTile tile(p, 2, 1, clean_spec());
  Rng rng(1);
  tile.program(std::vector<double>{1.0 / 50e3, 1.0 / 200e3}, rng);

  const std::vector<Spike> in{Spike::at(30e-9), Spike::at(60e-9)};
  const auto v = tile.sample_voltages(in);
  ASSERT_EQ(v.size(), 1u);

  const double v1 = 1.0 - std::exp(-30e-9 / p.tau_gd());
  const double v2 = 1.0 - std::exp(-60e-9 / p.tau_gd());
  const double g1 = 20e-6;
  const double g2 = 5e-6;
  const double veq = (v1 * g1 + v2 * g2) / (g1 + g2);
  const double tau = p.c_cog / (g1 + g2);
  const double expect = veq * (1.0 - std::exp(-p.comp_stage / tau));
  EXPECT_NEAR(v[0], expect, 1e-4);

  const auto out = tile.execute(in);
  ASSERT_TRUE(out[0].valid());
  EXPECT_NEAR(p.ramp_voltage(out[0].arrival_time), v[0], 1e-9);
}

TEST(ResipeTile, IdealTimesImplementEq6) {
  const CircuitParams p;
  ResipeTile tile(p, 2, 1, clean_spec());
  Rng rng(1);
  tile.program(std::vector<double>{20e-6, 5e-6}, rng);
  const std::vector<Spike> in{Spike::at(30e-9), Spike::at(60e-9)};
  const auto t = tile.ideal_times(in);
  EXPECT_NEAR(t[0],
              p.linear_gain() * (30e-9 * 20e-6 + 60e-9 * 5e-6), 1e-11);
}

TEST(ResipeTile, LatencyIsTwoSlices) {
  const CircuitParams p;
  const ResipeTile tile(p, 2, 2, clean_spec());
  EXPECT_DOUBLE_EQ(tile.latency(), 2.0 * p.slice_length);
}

TEST(ResipeTile, ExecuteChecksInputArity) {
  const CircuitParams p;
  const ResipeTile tile(p, 4, 2, clean_spec());
  EXPECT_THROW(tile.execute(std::vector<Spike>(3)), Error);
}

TEST(ResipeTile, ReadNoiseChangesOutputs) {
  device::ReramSpec spec = clean_spec();
  spec.read_noise_sigma = 0.10;
  const CircuitParams p;
  ResipeTile tile(p, 8, 4, spec);
  Rng rng(3);
  std::vector<double> g(32);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g, rng);
  const SpikeCodec codec(p);
  std::vector<Spike> in(8);
  for (std::size_t i = 0; i < 8; ++i)
    in[i] = codec.encode(0.1 + 0.1 * static_cast<double>(i));
  const auto clean = tile.execute(in);
  Rng noise(4);
  const auto noisy = tile.execute(in, &noise);
  bool any_diff = false;
  for (std::size_t c = 0; c < 4; ++c) {
    if (clean[c].arrival_time != noisy[c].arrival_time) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ResipeTile, TraceContainsTheFig3Waveforms) {
  const CircuitParams p;
  ResipeTile tile(p, 2, 1, clean_spec());
  Rng rng(1);
  tile.program(std::vector<double>{20e-6, 5e-6}, rng);
  const std::vector<Spike> in{Spike::at(30e-9), Spike::at(60e-9)};
  circuits::WaveformRecorder rec;
  tile.trace(in, 0, rec);

  // The GD ramp at 10 ns (one tau) reads 63%.
  EXPECT_NEAR(rec.at("V(Cgd)", 10e-9), 1.0 - std::exp(-1.0), 0.02);
  // The ramp is discharged during the computation stage.
  EXPECT_NEAR(rec.at("V(Cgd)", 99.9e-9), 0.0, 1e-9);
  // The held COG voltage in S2 matches the sampled value.
  const auto v = tile.sample_voltages(in);
  EXPECT_NEAR(rec.at("S2 V(Ccog) held", 150e-9), v[0], 1e-9);
  // The output spike trace goes high at the output time.
  const auto out = tile.execute(in);
  EXPECT_NEAR(rec.at("S_out", p.slice_length + out[0].arrival_time +
                                  out[0].width / 2.0),
              1.0, 1e-9);
}

TEST(ResipeTile, TraceRejectsBadColumn) {
  const CircuitParams p;
  ResipeTile tile(p, 2, 1, clean_spec());
  circuits::WaveformRecorder rec;
  EXPECT_THROW(tile.trace(std::vector<Spike>(2), 1, rec), Error);
}

TEST(ResipeTile, EnergyReportIsDominatedByCog) {
  const CircuitParams p;
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  ResipeTile tile(p, 32, 32, spec);
  Rng rng(7);
  std::vector<double> g(32 * 32);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g, rng);
  const SpikeCodec codec(p);
  std::vector<Spike> in(32);
  for (std::size_t i = 0; i < 32; ++i)
    in[i] = codec.encode(static_cast<double>(i) / 31.0);
  const auto report = tile.energy_report(in);
  EXPECT_GT(report.total_energy(), 0.0);
  EXPECT_GT(report.total_area(), 0.0);
  // Sec. IV-B: the COG cluster dominates (98.1% in the paper).
  EXPECT_GT(report.energy_share("COG"), 0.90);
}

TEST(ResipeTile, MoreActiveInputsNeverCostLessEnergy) {
  const CircuitParams p;
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  ResipeTile tile(p, 16, 16, spec);
  Rng rng(7);
  std::vector<double> g(256);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g, rng);
  const SpikeCodec codec(p);
  std::vector<Spike> few(16, Spike::none());
  few[0] = codec.encode(0.5);
  std::vector<Spike> many(16);
  for (std::size_t i = 0; i < 16; ++i) many[i] = codec.encode(0.5);
  EXPECT_LE(tile.energy_report(few).total_energy(),
            tile.energy_report(many).total_energy() + 1e-18);
}

}  // namespace
}  // namespace resipe::resipe_core
