#include "resipe/resipe/bit_slicing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::resipe_core {
namespace {

TEST(SlicingConfig, SliceArithmetic) {
  SlicingConfig cfg;
  cfg.total_bits = 8;
  cfg.bits_per_slice = 4;
  EXPECT_EQ(cfg.slices(), 2);
  cfg.bits_per_slice = 3;
  EXPECT_EQ(cfg.slices(), 3);  // ceil(8/3)
  EXPECT_NO_THROW(cfg.validate());
  cfg.bits_per_slice = 9;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = SlicingConfig{};
  cfg.total_bits = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

class SlicedFixture : public ::testing::Test {
 protected:
  SlicedFixture() : rng_(31) {
    w_.resize(kIn * kOut);
    for (double& v : w_) v = rng_.normal(0.0, 0.4);
    bias_.assign(kOut, 0.25);
    xs_.resize(kSamples * kIn);
    for (double& v : xs_) v = rng_.uniform(0.0, 1.0);
  }

  double rmse_of(SlicedMatrix& sm) {
    sm.set_input_scale(1.0);
    sm.calibrate_alpha(xs_, kSamples);
    std::vector<double> y(kOut, 0.0);
    double ss = 0.0, ref_max = 0.0;
    for (std::size_t s = 0; s < kSamples; ++s) {
      const std::span<const double> x(xs_.data() + s * kIn, kIn);
      sm.forward(x, y);
      for (std::size_t j = 0; j < kOut; ++j) {
        double ref = bias_[j];
        for (std::size_t i = 0; i < kIn; ++i)
          ref += x[i] * w_[i * kOut + j];
        ss += (y[j] - ref) * (y[j] - ref);
        ref_max = std::max(ref_max, std::abs(ref));
      }
    }
    return std::sqrt(ss / (kSamples * kOut)) / ref_max;
  }

  static constexpr std::size_t kIn = 24;
  static constexpr std::size_t kOut = 6;
  static constexpr std::size_t kSamples = 48;
  Rng rng_;
  std::vector<double> w_;
  std::vector<double> bias_;
  std::vector<double> xs_;
};

TEST_F(SlicedFixture, TwoFourBitSlicesReproduceTheMatmul) {
  EngineConfig cfg;
  SlicingConfig slicing;  // 8 bits as 2 x 4
  Rng prog(7);
  SlicedMatrix sm(cfg, slicing, w_, bias_, kIn, kOut, prog);
  EXPECT_EQ(sm.slice_count(), 2u);
  EXPECT_LT(rmse_of(sm), 0.05);
}

TEST_F(SlicedFixture, MoreTotalBitsNeverHurts) {
  EngineConfig cfg = EngineConfig::ideal();
  cfg.quantize_spikes = false;

  SlicingConfig coarse;
  coarse.total_bits = 4;
  coarse.bits_per_slice = 4;
  Rng prog_a(7);
  SlicedMatrix a(cfg, coarse, w_, bias_, kIn, kOut, prog_a);

  SlicingConfig fine;
  fine.total_bits = 12;
  fine.bits_per_slice = 4;
  Rng prog_b(7);
  SlicedMatrix b(cfg, fine, w_, bias_, kIn, kOut, prog_b);

  EXPECT_EQ(a.slice_count(), 1u);
  EXPECT_EQ(b.slice_count(), 3u);
  EXPECT_LT(rmse_of(b), rmse_of(a));
}

TEST_F(SlicedFixture, SlicingBeatsSingleCoarseCellsAtEqualLogicalBits) {
  // 8 logical bits on 3-bit cells: one slice cannot represent them,
  // three slices can.
  EngineConfig single_cfg;
  single_cfg.device.levels = 1 << 3;
  SlicingConfig mono;
  mono.total_bits = 3;
  mono.bits_per_slice = 3;
  Rng prog_a(9);
  SlicedMatrix coarse(single_cfg, mono, w_, bias_, kIn, kOut, prog_a);

  EngineConfig sliced_cfg;
  SlicingConfig split;
  split.total_bits = 9;
  split.bits_per_slice = 3;
  Rng prog_b(9);
  SlicedMatrix sliced(sliced_cfg, split, w_, bias_, kIn, kOut, prog_b);

  EXPECT_LT(rmse_of(sliced), rmse_of(coarse));
}

TEST_F(SlicedFixture, TileCountScalesWithSlices) {
  EngineConfig cfg;
  SlicingConfig slicing;
  slicing.total_bits = 8;
  slicing.bits_per_slice = 2;
  Rng prog(11);
  SlicedMatrix sm(cfg, slicing, w_, bias_, kIn, kOut, prog);
  EXPECT_EQ(sm.slice_count(), 4u);
  EXPECT_EQ(sm.tile_count(), 4u * (sm.slice_count() ? 1u : 0u));
}

TEST(SlicedMatrix, RejectsBadShapes) {
  EngineConfig cfg;
  SlicingConfig slicing;
  Rng rng(1);
  const std::vector<double> w(6, 0.1);
  const std::vector<double> b(3, 0.0);
  EXPECT_THROW(SlicedMatrix(cfg, slicing, w, b, 3, 3, rng), Error);
}

}  // namespace
}  // namespace resipe::resipe_core
