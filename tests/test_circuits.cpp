#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "resipe/circuits/column_output_generator.hpp"
#include "resipe/circuits/global_decoder.hpp"
#include "resipe/circuits/params.hpp"
#include "resipe/circuits/sample_hold.hpp"
#include "resipe/circuits/waveform.hpp"
#include "resipe/common/error.hpp"
#include "resipe/common/units.hpp"
#include "testing/approx.hpp"

namespace resipe::circuits {
namespace {

using namespace resipe::units;

TEST(CircuitParams, PaperDefaultsMatchSectionIV) {
  const CircuitParams p = CircuitParams::paper_defaults();
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.v_s, 1.0);
  EXPECT_DOUBLE_EQ(p.r_gd, 100e3);
  EXPECT_DOUBLE_EQ(p.c_gd, 100e-15);
  EXPECT_DOUBLE_EQ(p.c_cog, 100e-15);
  EXPECT_DOUBLE_EQ(p.slice_length, 100e-9);
  EXPECT_DOUBLE_EQ(p.comp_stage, 1e-9);
  EXPECT_DOUBLE_EQ(p.spike_width, 1e-9);
  EXPECT_DOUBLE_EQ(p.tau_gd(), 10e-9);
}

TEST(CircuitParams, ValidateRejectsBadConfigs) {
  CircuitParams p;
  p.comp_stage = p.slice_length;  // must fit strictly inside
  EXPECT_THROW(p.validate(), Error);
  p = CircuitParams{};
  p.v_s = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = CircuitParams{};
  p.spike_width = 2.0 * p.slice_length;
  EXPECT_THROW(p.validate(), Error);
}

TEST(CircuitParams, RampAndCrossingAreInverse) {
  for (auto model : {TransferModel::kExact, TransferModel::kLinear}) {
    CircuitParams p;
    p.model = model;
    for (double t : {1e-9, 5e-9, 20e-9, 60e-9}) {
      const double v = p.ramp_voltage(t);
      if (v < p.v_s) {
        RESIPE_EXPECT_REL(p.ramp_crossing(v), t, 1e-12)
            << "model " << static_cast<int>(model);
      }
    }
  }
}

TEST(CircuitParams, RampClampsAtSupply) {
  CircuitParams p;  // tau = 10 ns
  EXPECT_LE(p.ramp_voltage(1.0), p.v_s);
  EXPECT_EQ(p.ramp_crossing(p.v_s),
            std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(p.ramp_crossing(0.0), 0.0);
}

TEST(CircuitParams, LinearRegimePresetIsQuasiLinear) {
  const CircuitParams p = CircuitParams::linear_regime();
  // tau = 1 us >> 100 ns slice: the ramp end is within 10% of linear.
  const double v_end = p.ramp_voltage(p.slice_length);
  const double v_lin = p.v_s * p.slice_length / p.tau_gd();
  RESIPE_EXPECT_REL(v_end, v_lin, 0.1);
}

TEST(SampleHold, IdentityByDefault) {
  const SampleHold sh;
  EXPECT_DOUBLE_EQ(sh.sample(0.42, 100e-9), 0.42);
}

TEST(SampleHold, GainErrorAndDroop) {
  const SampleHold sh(0.01, 1e3);  // +1%, 1 kV/s droop
  RESIPE_EXPECT_REL(sh.sample(1.0, 100e-9), 1.01 - 1e3 * 100e-9, 1e-12);
}

TEST(SampleHold, DroopClampsAtGround) {
  const SampleHold sh(0.0, 1e9);
  EXPECT_DOUBLE_EQ(sh.sample(0.1, 1e-6), 0.0);
}

TEST(GlobalDecoder, DecodesSpikeToRampVoltage) {
  const CircuitParams p;
  const GlobalDecoder gd(p);
  const Spike s = Spike::at(10e-9);
  RESIPE_EXPECT_REL(gd.decode(s), 1.0 - std::exp(-1.0), 1e-12);  // t = tau
}

TEST(GlobalDecoder, SilentLineGivesZeroVolts) {
  const CircuitParams p;
  const GlobalDecoder gd(p);
  EXPECT_DOUBLE_EQ(gd.decode(Spike::none()), 0.0);
  // A spike after the slice also never gets sampled.
  EXPECT_DOUBLE_EQ(gd.decode(Spike::at(2.0 * p.slice_length)), 0.0);
}

TEST(GlobalDecoder, VectorizedDecode) {
  const CircuitParams p;
  const GlobalDecoder gd(p);
  const std::vector<Spike> spikes{Spike::at(10e-9), Spike::none()};
  const auto v = gd.decode(spikes);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_GT(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(ColumnOutputGenerator, SampleVoltageMatchesEq3) {
  const CircuitParams p;
  const ColumnOutputGenerator cog(p);
  const ColumnDrive drive{0.5, 1e-4};  // Veq = 0.5 V, G = 100 uS
  const double tau = p.c_cog / drive.g_total;
  const double expect = 0.5 * (1.0 - std::exp(-p.comp_stage / tau));
  RESIPE_EXPECT_REL(cog.sample_voltage(drive), expect, 1e-12);
}

TEST(ColumnOutputGenerator, ZeroConductanceColumnStaysAtGround) {
  const CircuitParams p;
  const ColumnOutputGenerator cog(p);
  EXPECT_DOUBLE_EQ(cog.sample_voltage(ColumnDrive{0.8, 0.0}), 0.0);
}

TEST(ColumnOutputGenerator, EmitInvertsTheRamp) {
  const CircuitParams p;
  const GlobalDecoder gd(p);
  const ColumnOutputGenerator cog(p);
  const double v_out = 0.4;
  const Spike s = cog.emit(v_out, gd);
  ASSERT_TRUE(s.valid());
  RESIPE_EXPECT_REL(gd.ramp_voltage(s.arrival_time), v_out, 1e-12);
}

TEST(ColumnOutputGenerator, ZeroVoltageFiresImmediately) {
  const CircuitParams p;
  const GlobalDecoder gd(p);
  const ColumnOutputGenerator cog(p);
  const Spike s = cog.emit(0.0, gd);
  ASSERT_TRUE(s.valid());
  EXPECT_DOUBLE_EQ(s.arrival_time, 0.0);
}

TEST(ColumnOutputGenerator, OverRangeStaysSilent) {
  const CircuitParams p;
  const GlobalDecoder gd(p);
  const ColumnOutputGenerator cog(p);
  // v >= Vs can never be crossed by the exact ramp.
  EXPECT_FALSE(cog.emit(1.0, gd).valid());
}

TEST(ColumnOutputGenerator, ComparatorDelayShiftsOutput) {
  CircuitParams p;
  p.comparator_delay = 2e-9;
  const GlobalDecoder gd(p);
  const ColumnOutputGenerator cog(p);
  CircuitParams p0;
  const GlobalDecoder gd0(p0);
  const ColumnOutputGenerator cog0(p0);
  const double v = 0.3;
  RESIPE_EXPECT_REL(cog.emit(v, gd).arrival_time,
                    cog0.emit(v, gd0).arrival_time + 2e-9, 1e-12);
}

TEST(ColumnOutputGenerator, ConversionEnergyGrowsWithOutput) {
  const CircuitParams p;
  const ColumnOutputGenerator cog(p);
  EXPECT_GT(cog.conversion_energy(0.8), cog.conversion_energy(0.1));
  EXPECT_GT(cog.conversion_energy(0.0), 0.0);  // S2 reference still paid
}

TEST(Spike, ValidityRules) {
  EXPECT_FALSE(Spike::none().valid());
  EXPECT_TRUE(Spike::at(0.0).valid());
  EXPECT_TRUE(Spike::at(50e-9).valid());
}

TEST(WaveformRecorder, InterpolatesLinearly) {
  WaveformRecorder rec;
  rec.record("v", 0.0, 0.0);
  rec.record("v", 10.0, 1.0);
  EXPECT_DOUBLE_EQ(rec.at("v", 5.0), 0.5);
  EXPECT_DOUBLE_EQ(rec.at("v", -1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(rec.at("v", 99.0), 1.0);   // clamped
}

TEST(WaveformRecorder, RejectsOutOfOrderSamples) {
  WaveformRecorder rec;
  rec.record("v", 1.0, 0.0);
  EXPECT_THROW(rec.record("v", 0.5, 0.0), Error);
}

TEST(WaveformRecorder, UnknownTraceThrows) {
  const WaveformRecorder rec;
  EXPECT_THROW(rec.at("nope", 0.0), Error);
}

TEST(WaveformRecorder, TraceReferencesSurviveLaterInsertions) {
  // Regression: traces_ used to be a std::vector<Trace>, so the Trace&
  // returned by trace() dangled as soon as a later trace() call forced
  // a reallocation.  Hold references across enough insertions to make
  // any reallocation certain and check they still point at live data.
  WaveformRecorder rec;
  Trace& first = rec.trace("first");
  first.time.push_back(0.0);
  first.value.push_back(1.0);
  Trace& second = rec.trace("second");
  second.time.push_back(0.0);
  second.value.push_back(2.0);
  for (int i = 0; i < 256; ++i) {
    std::string name = "t";
    name += std::to_string(i);
    Trace& t = rec.trace(name);
    t.time.push_back(0.0);
    t.value.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(first.name, "first");
  EXPECT_EQ(second.name, "second");
  ASSERT_EQ(first.value.size(), 1u);
  EXPECT_DOUBLE_EQ(first.value[0], 1.0);
  EXPECT_DOUBLE_EQ(second.value[0], 2.0);
  // The held references must alias the recorder's own storage.
  EXPECT_EQ(&first, &rec.trace("first"));
  EXPECT_EQ(&second, &rec.trace("second"));
  EXPECT_EQ(rec.traces().size(), 258u);
}

TEST(WaveformRecorder, AsciiRenderContainsTraceName) {
  WaveformRecorder rec;
  rec.record("V(Cgd)", 0.0, 0.0);
  rec.record("V(Cgd)", 1.0, 1.0);
  const std::string s = rec.render_ascii(0.0, 1.0, 16, 4);
  EXPECT_NE(s.find("V(Cgd)"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

}  // namespace
}  // namespace resipe::circuits
