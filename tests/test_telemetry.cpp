// Telemetry subsystem tests: metric aggregation, nested timer
// accounting, disabled-mode no-op behavior, and Chrome-trace export.
#include "resipe/telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/crossbar/mapping.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/eval/characterization.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"

namespace resipe::telemetry {
namespace {

// Restores the enable flag and stops any trace session around each test
// so tests stay order-independent.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::instance().stop();
    set_enabled(true);
    MetricRegistry::instance().reset_values();
    CallProfile::this_thread().reset();
  }
  void TearDown() override {
    TraceSession::instance().stop();
    set_enabled(false);
    MetricRegistry::instance().reset_values();
    CallProfile::this_thread().reset();
  }
};

// --- minimal JSON validator --------------------------------------------
// Just enough of a recursive-descent parser to prove the exported trace
// is well-formed JSON; values are not retained.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::vector<double> extract_ts(const std::string& json) {
  std::vector<double> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

// --- counters / gauges / histograms ------------------------------------

// Tests below that exercise the RESIPE_TELEM_* macros only run when the
// instrumentation is compiled in (-DRESIPE_TELEMETRY=ON, the default).
#ifndef RESIPE_TELEMETRY_DISABLED
TEST_F(TelemetryTest, CounterAggregatesAcrossCallSites) {
  Counter& c = MetricRegistry::instance().counter("test.unit.counter");
  c.reset();
  RESIPE_TELEM_COUNT("test.unit.counter", 3);
  RESIPE_TELEM_COUNT("test.unit.counter", 4);
  EXPECT_EQ(c.value(), 7u);
  const auto snap = MetricRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.unit.counter"), 7u);
}
#endif  // !RESIPE_TELEMETRY_DISABLED

TEST_F(TelemetryTest, CounterIsThreadSafe) {
  Counter& c = MetricRegistry::instance().counter("test.unit.mt_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

#ifndef RESIPE_TELEMETRY_DISABLED
TEST_F(TelemetryTest, GaugeKeepsLastValue) {
  RESIPE_TELEM_GAUGE("test.unit.gauge", 1.5);
  RESIPE_TELEM_GAUGE("test.unit.gauge", -2.25);
  EXPECT_DOUBLE_EQ(MetricRegistry::instance().gauge("test.unit.gauge").value(),
                   -2.25);
}
#endif  // !RESIPE_TELEMETRY_DISABLED

TEST_F(TelemetryTest, HistogramBucketsObservations) {
  Histogram& h =
      MetricRegistry::instance().histogram("test.unit.hist", {1.0, 10.0});
  h.reset();
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(5.0);   // <= 10
  h.observe(100.0); // overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
}

TEST_F(TelemetryTest, HistogramTracksExactMinMax) {
  Histogram h(std::vector<double>{1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reports zeros
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(4.25);
  h.observe(-3.5);
  h.observe(250.0);
  EXPECT_DOUBLE_EQ(h.min(), -3.5);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST_F(TelemetryTest, PercentilesOfAUniformDistribution) {
  // 1..100 against decade buckets: the interpolated percentiles must
  // land within one bucket width of the exact order statistics.
  Histogram& h = MetricRegistry::instance().histogram(
      "test.unit.pct",
      {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0});
  h.reset();
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  const auto snap = MetricRegistry::instance().snapshot();
  const auto& data = snap.histograms.at("test.unit.pct");
  EXPECT_NEAR(histogram_percentile(data, 0.50), 50.0, 10.0);
  EXPECT_NEAR(histogram_percentile(data, 0.95), 95.0, 10.0);
  EXPECT_NEAR(histogram_percentile(data, 0.99), 99.0, 10.0);
  // The extremes clamp to the exact observed range.
  EXPECT_DOUBLE_EQ(histogram_percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(data, 1.0), 100.0);
  const HistogramSummary s = summarize_histogram(data);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST_F(TelemetryTest, PercentilesOfASkewedDistribution) {
  // 90 observations at ~1 and 10 at ~1000: p50 stays in the low bucket,
  // p95/p99 jump to the tail, and the overflow bucket clamps to max.
  Histogram& h =
      MetricRegistry::instance().histogram("test.unit.skew", {2.0, 10.0});
  h.reset();
  for (int i = 0; i < 90; ++i) h.observe(1.0);
  for (int i = 0; i < 10; ++i) h.observe(1000.0);
  const auto snap = MetricRegistry::instance().snapshot();
  const auto& data = snap.histograms.at("test.unit.skew");
  EXPECT_LE(histogram_percentile(data, 0.50), 2.0);
  EXPECT_GT(histogram_percentile(data, 0.95), 10.0);
  EXPECT_LE(histogram_percentile(data, 0.95), 1000.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(data, 1.0), 1000.0);
}

TEST_F(TelemetryTest, EmptyHistogramSummaryIsAllZero) {
  MetricsSnapshot::HistogramData empty;
  empty.bounds = {1.0};
  empty.buckets = {0, 0};
  // Pinned contract: zero observations -> every summary field is 0,
  // every percentile is 0 (never NaN, never a bucket bound).
  EXPECT_DOUBLE_EQ(histogram_percentile(empty, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(empty, 1.0), 0.0);
  const HistogramSummary s = summarize_histogram(empty);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST_F(TelemetryTest, SingleSampleHistogramSummaryIsTheSample) {
  // Pinned contract: one observation -> mean == min == max == every
  // percentile == the observed value (not a bucket boundary estimate).
  Histogram& h =
      MetricRegistry::instance().histogram("test.unit.single", {1.0, 10.0});
  MetricRegistry::instance().reset_values();
  h.observe(3.25);
  const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
  const auto& data = snap.histograms.at("test.unit.single");
  ASSERT_EQ(data.count, 1u);
  EXPECT_DOUBLE_EQ(histogram_percentile(data, 0.0), 3.25);
  EXPECT_DOUBLE_EQ(histogram_percentile(data, 0.5), 3.25);
  EXPECT_DOUBLE_EQ(histogram_percentile(data, 1.0), 3.25);
  const HistogramSummary s = summarize_histogram(data);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
  EXPECT_DOUBLE_EQ(s.p50, 3.25);
  EXPECT_DOUBLE_EQ(s.p95, 3.25);
  EXPECT_DOUBLE_EQ(s.p99, 3.25);
}

TEST_F(TelemetryTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
}

TEST_F(TelemetryTest, ResetValuesKeepsRegisteredEntries) {
  Counter& c = MetricRegistry::instance().counter("test.unit.reset");
  c.add(5);
  MetricRegistry::instance().reset_values();
  EXPECT_EQ(c.value(), 0u);
  // The same reference must stay valid and reusable after reset.
  c.add(2);
  EXPECT_EQ(MetricRegistry::instance().counter("test.unit.reset").value(),
            2u);
}

// --- disabled mode ------------------------------------------------------

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  Counter& c = MetricRegistry::instance().counter("test.unit.disabled");
  c.reset();
  set_enabled(false);
  RESIPE_TELEM_COUNT("test.unit.disabled", 1);
  EXPECT_EQ(c.value(), 0u);
  {
    RESIPE_TELEM_SCOPE("test.unit.disabled_scope");
  }
  for (const auto& child : CallProfile::this_thread().root().children) {
    EXPECT_STRNE(child->name, "test.unit.disabled_scope");
  }
}

TEST_F(TelemetryTest, DisabledCodecPathsStayPure) {
  set_enabled(false);
  const resipe_core::SpikeCodec codec(circuits::CircuitParams{});
  const auto spike = codec.encode(0.5);
  EXPECT_NEAR(codec.decode(spike), 0.5, 0.05);
  const auto snap = MetricRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.count("resipe_core.spike_codec.encoded"), 0u);
}

// --- reliability instrumentation ---------------------------------------

namespace {
resipe_core::ProgrammedMatrix make_faulty_matrix() {
  resipe_core::EngineConfig ec;
  ec.reliability.enabled = true;
  ec.reliability.faults.stuck_lrs_rate = 0.02;
  ec.reliability.faults.stuck_hrs_rate = 0.02;
  ec.reliability.mitigation.enabled = true;
  ec.reliability.mitigation.spare_cols = 2;
  std::vector<double> w(16 * 4);
  Rng wrng(23);
  for (double& x : w) x = wrng.uniform(-1.0, 1.0);
  const std::vector<double> bias(4, 0.0);
  Rng rng(29);
  return resipe_core::ProgrammedMatrix(ec, w, bias, 16, 4, rng);
}
}  // namespace

// Compiles in BOTH telemetry build modes: with instrumentation compiled
// out (-DRESIPE_TELEMETRY=OFF) or runtime-disabled, the fault-injection
// and mitigation path must leave the registry untouched while its own
// statistics keep working.
TEST_F(TelemetryTest, DisabledReliabilityPathStaysPure) {
  set_enabled(false);
  const auto m = make_faulty_matrix();
  EXPECT_GT(m.reliability_stats().cells_faulty, 0u);
  const auto snap = MetricRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.count("reliability.cells_faulty"), 0u);
  EXPECT_EQ(snap.counters.count("reliability.write_verify_attempts"), 0u);
  EXPECT_EQ(snap.counters.count("reliability.cells_compensated"), 0u);
}

#ifndef RESIPE_TELEMETRY_DISABLED
TEST_F(TelemetryTest, ReliabilityCountersAggregateWhenEnabled) {
  const auto m = make_faulty_matrix();
  const auto snap = MetricRegistry::instance().snapshot();
  ASSERT_EQ(snap.counters.count("reliability.cells_faulty"), 1u);
  EXPECT_EQ(snap.counters.at("reliability.cells_faulty"),
            m.reliability_stats().cells_faulty);
  ASSERT_EQ(snap.counters.count("reliability.write_verify_attempts"), 1u);
  EXPECT_GT(snap.counters.at("reliability.write_verify_attempts"), 0u);
}
#endif  // !RESIPE_TELEMETRY_DISABLED

// --- nested timers ------------------------------------------------------

#ifndef RESIPE_TELEMETRY_DISABLED
TEST_F(TelemetryTest, NestedTimersBuildParentChildTree) {
  CallProfile::this_thread().reset();
  {
    RESIPE_TELEM_SCOPE("test.outer");
    {
      RESIPE_TELEM_SCOPE("test.inner");
    }
    {
      RESIPE_TELEM_SCOPE("test.inner");
    }
  }
  const ProfileNode& root = CallProfile::this_thread().root();
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& outer = *root.children[0];
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 1u);
  const ProfileNode& inner = *outer.children[0];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_EQ(inner.count, 2u);
  // A parent span covers its children's time.
  EXPECT_GE(outer.total_ns, inner.total_ns);
  const std::string rendered = CallProfile::this_thread().render();
  EXPECT_NE(rendered.find("test.outer"), std::string::npos);
  EXPECT_NE(rendered.find("test.inner"), std::string::npos);
}

TEST_F(TelemetryTest, SiblingScopesDoNotNest) {
  CallProfile::this_thread().reset();
  {
    RESIPE_TELEM_SCOPE("test.first");
  }
  {
    RESIPE_TELEM_SCOPE("test.second");
  }
  const ProfileNode& root = CallProfile::this_thread().root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_TRUE(root.children[0]->children.empty());
  EXPECT_TRUE(root.children[1]->children.empty());
}
#endif  // !RESIPE_TELEMETRY_DISABLED

// --- trace export -------------------------------------------------------

#ifndef RESIPE_TELEMETRY_DISABLED
TEST_F(TelemetryTest, ChromeTraceParsesAndTimestampsAreOrdered) {
  TraceSession& session = TraceSession::instance();
  session.start();
  {
    RESIPE_TELEM_SCOPE("test.trace.outer");
    {
      RESIPE_TELEM_SCOPE("test.trace.inner");
    }
    RESIPE_TELEM_INSTANT("test.trace.marker");
  }
  session.stop();

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();

  JsonValidator validator(json);
  EXPECT_TRUE(validator.parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.trace.outer"), std::string::npos);
  EXPECT_NE(json.find("test.trace.inner"), std::string::npos);
  EXPECT_NE(json.find("test.trace.marker"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);

  const auto ts = extract_ts(json);
  ASSERT_EQ(ts.size(), 3u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "trace ts not monotonically ordered";
  }
}

TEST_F(TelemetryTest, TraceCapacityDropsInsteadOfGrowing) {
  TraceSession& session = TraceSession::instance();
  session.set_capacity(2);
  session.start();
  for (int i = 0; i < 5; ++i) {
    RESIPE_TELEM_SCOPE("test.trace.capped");
  }
  session.stop();
  EXPECT_EQ(session.snapshot().size(), 2u);
  EXPECT_EQ(session.dropped(), 3u);
  session.set_capacity(std::size_t{1} << 20);
}

TEST_F(TelemetryTest, AddEventIgnoresActiveFlagButHonorsCapacity) {
  // External exporters replay their own (virtual) clock after the fact:
  // a stopped session must still accept their events, but the capacity
  // cap and drop accounting apply like everywhere else.
  TraceSession& session = TraceSession::instance();
  session.start();  // clear
  session.stop();
  session.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent e;
    e.name = "replayed";
    e.ts_ns = static_cast<std::uint64_t>(i);
    e.pid = 2;
    e.tid = 7;
    session.add_event(e);
  }
  EXPECT_EQ(session.snapshot().size(), 3u);
  EXPECT_EQ(session.dropped(), 2u);
  session.set_capacity(std::size_t{1} << 20);
}

TEST_F(TelemetryTest, ThreadNameMetadataPrecedesEventsInChromeExport) {
  TraceSession& session = TraceSession::instance();
  session.start();  // clear
  session.stop();
  session.set_thread_name(2, 7, "serve lane");
  // First writer wins: a later rename must not clobber the label.
  session.set_thread_name(2, 7, "impostor");
  TraceEvent e;
  e.name = "replayed.span";
  e.pid = 2;
  e.tid = 7;
  session.add_event(e);

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.parse()) << json;
  const std::size_t meta = json.find("thread_name");
  const std::size_t lane = json.find("serve lane");
  const std::size_t span = json.find("replayed.span");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(lane, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_EQ(json.find("impostor"), std::string::npos);
  EXPECT_LT(meta, span) << "'M' metadata must precede the event stream";
}

TEST_F(TelemetryTest, PercentileSortedMatchesHistogramOnSampleBounds) {
  // THE percentile pin: percentile_sorted is histogram_percentile
  // specialized to one observation per bucket.  Feeding the sorted
  // samples as the bucket bounds must reproduce every quantile bit for
  // bit — this is what lets ServingStats, the SLO dashboard and the
  // metrics registry all claim the same "p99".
  const std::vector<double> samples = {0.001, 0.002, 0.002, 0.004,
                                       0.0075, 0.01,  0.02,  0.05, 0.31};
  MetricsSnapshot::HistogramData h;
  h.bounds = samples;
  h.buckets.assign(samples.size() + 1, 0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    h.buckets[i] = 1;
    h.sum += samples[i];
  }
  h.count = samples.size();
  h.min = samples.front();
  h.max = samples.back();

  for (int k = 0; k <= 100; ++k) {
    const double q = static_cast<double>(k) / 100.0;
    const double exact = percentile_sorted(samples, q);
    const double bucketed = histogram_percentile(h, q);
    EXPECT_EQ(exact, bucketed) << "q=" << q << " diverged";
  }
  // Contract edges: empty -> 0, single sample -> the sample.
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({3.25}, 0.99), 3.25);
  EXPECT_DOUBLE_EQ(percentile_sorted(samples, 0.0), samples.front());
  EXPECT_DOUBLE_EQ(percentile_sorted(samples, 1.0), samples.back());
  // Unsorted input is a caller bug, surfaced immediately.
  EXPECT_THROW(percentile_sorted({2.0, 1.0}, 0.5), Error);
}

TEST_F(TelemetryTest, InstrumentedWorkloadCoversFourSubsystems) {
  // End-to-end: a small workload touching the device, crossbar,
  // resipe_core and eval layers must leave spans from all four in the
  // trace (the CLI acceptance path relies on this).
  TraceSession& session = TraceSession::instance();
  session.start();

  const circuits::CircuitParams params;
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  const std::vector<double> w = {0.5, -0.25, 0.75, -1.0};
  const auto mapped =
      crossbar::map_weights(w, 2, 2, spec,
                            crossbar::SignedMapping::kDifferentialPair);
  resipe_core::ResipeTile tile(params, mapped.rows, mapped.cols, spec);
  Rng rng(7);
  tile.program(mapped.g_targets, rng);
  const resipe_core::SpikeCodec codec(params);
  const std::vector<circuits::Spike> in = {codec.encode(0.25),
                                           codec.encode(0.75)};
  (void)tile.execute(in);
  eval::CharacterizationConfig cfg;
  cfg.rows = 4;
  cfg.samples = 4;
  (void)eval::characterize(cfg);

  session.stop();
  const std::string json = [&session] {
    std::ostringstream os;
    session.write_chrome_trace(os);
    return os.str();
  }();
  EXPECT_NE(json.find("\"cat\":\"device\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"crossbar\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"resipe_core\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"eval\""), std::string::npos);
}
#endif  // !RESIPE_TELEMETRY_DISABLED

// --- metric export ------------------------------------------------------

TEST_F(TelemetryTest, MetricsJsonAndCsvExport) {
  MetricRegistry::instance().counter("test.export.counter").add(9);
  MetricRegistry::instance().gauge("test.export.gauge").set(3.5);
  MetricRegistry::instance()
      .histogram("test.export.hist", {1.0})
      .observe(0.5);

  std::ostringstream js;
  write_metrics_json(js);
  const std::string json = js.str();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.parse()) << json;
  EXPECT_NE(json.find("\"test.export.counter\":9"), std::string::npos);
  EXPECT_NE(json.find("test.export.gauge"), std::string::npos);
  EXPECT_NE(json.find("test.export.hist"), std::string::npos);

  // Percentile summaries ride along in the JSON histogram objects.
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"min\":"), std::string::npos);
  EXPECT_NE(json.find("\"max\":"), std::string::npos);

  std::ostringstream cs;
  write_metrics_csv(cs);
  const std::string csv = cs.str();
  EXPECT_NE(csv.find("metric,type,value"), std::string::npos);
  EXPECT_NE(csv.find("test.export.counter,counter,9"), std::string::npos);
  EXPECT_NE(csv.find("test.export.hist.count,histogram,1"),
            std::string::npos);
  EXPECT_NE(csv.find("test.export.hist.p95,histogram,0.5"),
            std::string::npos);
  EXPECT_NE(csv.find("test.export.hist.min,histogram,0.5"),
            std::string::npos);

  const std::string ascii = render_metrics_ascii();
  EXPECT_NE(ascii.find("p95"), std::string::npos);
  EXPECT_NE(ascii.find("test.export.hist"), std::string::npos);
  EXPECT_NE(ascii.find("test.export.counter"), std::string::npos);
}

}  // namespace
}  // namespace resipe::telemetry
