#!/usr/bin/env python3
"""Regression tests for resipe_cli argument hardening.

Unknown commands, unknown per-command options, and flags missing their
value must all fail fast with a usage message and exit code 2 — never
fall through to a default run.  Run as:

    test_cli.py /path/to/resipe_cli
"""
import subprocess
import sys


def run(cli, *args):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=300
    )


def main():
    if len(sys.argv) != 2:
        print("usage: test_cli.py <resipe_cli binary>", file=sys.stderr)
        return 2
    cli = sys.argv[1]
    failures = []

    def check(name, ok):
        print(("PASS" if ok else "FAIL") + f"  {name}")
        if not ok:
            failures.append(name)

    # Unknown command (a typo of 'compare').
    r = run(cli, "comapre")
    check(
        "unknown command exits 2",
        r.returncode == 2
        and "unknown command 'comapre'" in r.stderr
        and "usage:" in r.stderr,
    )

    # No command at all.
    r = run(cli)
    check("missing command exits 2", r.returncode == 2 and "usage:" in r.stderr)

    # Unknown option for a known command.
    r = run(cli, "yield", "--bogus", "3")
    check(
        "unknown option exits 2",
        r.returncode == 2
        and "unknown option '--bogus' for command 'yield'" in r.stderr
        and "usage:" in r.stderr,
    )

    # Option from a *different* command is still unknown here.
    r = run(cli, "yield", "--rows", "4")
    check(
        "foreign option exits 2",
        r.returncode == 2 and "unknown option '--rows'" in r.stderr,
    )

    # Flag at end of line with no value.
    r = run(cli, "yield", "--bound")
    check(
        "missing value exits 2",
        r.returncode == 2 and "missing value for '--bound'" in r.stderr,
    )

    # Global flag missing its value.
    r = run(cli, "yield", "--threads")
    check(
        "global flag missing value exits 2",
        r.returncode == 2 and "missing value" in r.stderr,
    )

    # A well-formed invocation still works (cheap command).
    r = run(cli, "yield", "--bound", "0.02")
    check("valid invocation exits 0", r.returncode == 0 and r.stdout != "")

    # Valid global flag placement still works.
    r = run(cli, "--threads", "1", "yield", "--bound", "0.02")
    check("global flag before command exits 0", r.returncode == 0)

    if failures:
        print(f"{len(failures)} failure(s): {failures}", file=sys.stderr)
        return 1
    print("all CLI hardening checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
