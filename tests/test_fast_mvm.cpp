#include "resipe/resipe/fast_mvm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"
#include "testing/approx.hpp"

namespace resipe::resipe_core {
namespace {

using circuits::CircuitParams;
using circuits::Spike;
using circuits::TransferModel;

device::ReramSpec clean_spec() {
  device::ReramSpec spec = device::ReramSpec::nn_mapping();
  spec.write_verify_tolerance = 0.0;
  spec.variation_sigma = 0.0;
  return spec;
}

TEST(FastMvm, MatchesHandComputedSingleColumn) {
  const CircuitParams p;
  // Two rows, G = 20 uS and 5 uS.
  FastMvm mvm(p, 2, 1, {20e-6, 5e-6});
  RESIPE_EXPECT_ULP(mvm.g_total(0), 25e-6, 1);
  const double tau_cog = p.c_cog / 25e-6;
  RESIPE_EXPECT_REL(mvm.k(0), 1.0 - std::exp(-p.comp_stage / tau_cog), 1e-12);

  const std::vector<double> t_in{30e-9, 60e-9};
  std::vector<double> t_out(1, 0.0);
  mvm.mvm_times(t_in, t_out);

  const double v1 = 1.0 - std::exp(-30e-9 / p.tau_gd());
  const double v2 = 1.0 - std::exp(-60e-9 / p.tau_gd());
  const double veq = (v1 * 20e-6 + v2 * 5e-6) / 25e-6;
  const double vout = veq * mvm.k(0);
  const double expect = -p.tau_gd() * std::log(1.0 - vout);
  RESIPE_EXPECT_REL(t_out[0], expect, 1e-12);
}

TEST(FastMvm, AgreesWithFaithfulTileModel) {
  const CircuitParams p;
  const device::ReramSpec spec = clean_spec();
  ResipeTile tile(p, 16, 8, spec);
  Rng rng(21);
  std::vector<double> g(16 * 8);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g, rng);

  const FastMvm fast(p, tile.crossbar());
  const SpikeCodec codec(p);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Spike> spikes(16);
    std::vector<double> t_in(16);
    for (std::size_t i = 0; i < 16; ++i) {
      spikes[i] = codec.encode(rng.uniform(0.0, 1.0));
      t_in[i] = spikes[i].arrival_time;
    }
    const auto tile_out = tile.execute(spikes);
    std::vector<double> fast_out(8, 0.0);
    fast.mvm_times(t_in, fast_out);
    for (std::size_t c = 0; c < 8; ++c) {
      if (tile_out[c].valid()) {
        RESIPE_EXPECT_REL(fast_out[c], tile_out[c].arrival_time, 1e-12)
            << "trial " << trial << " col " << c;
      } else {
        EXPECT_EQ(fast_out[c], FastMvm::kNoSpike);
      }
    }
  }
}

TEST(FastMvm, SilentInputContributesNothing) {
  const CircuitParams p;
  FastMvm mvm(p, 2, 1, {20e-6, 20e-6});
  std::vector<double> t_out_a(1), t_out_b(1);
  // One line silent vs one line at t=0: t=0 means V=0, identical to
  // silent electrically.
  mvm.mvm_times(std::vector<double>{50e-9, FastMvm::kNoSpike}, t_out_a);
  mvm.mvm_times(std::vector<double>{50e-9, 0.0}, t_out_b);
  // t = 0 and "silent" both decode to exactly 0 V, so the two MVMs run
  // on bit-identical wordline vectors.
  RESIPE_EXPECT_ULP(t_out_a[0], t_out_b[0], 0);
}

TEST(FastMvm, ZeroColumnFiresImmediately) {
  const CircuitParams p;
  FastMvm mvm(p, 2, 1, {0.0, 0.0});
  std::vector<double> t_out(1);
  mvm.mvm_times(std::vector<double>{50e-9, 50e-9}, t_out);
  EXPECT_DOUBLE_EQ(t_out[0], p.comparator_delay);
}

TEST(FastMvm, LinearModeMatchesEq6ForSmallConductance) {
  CircuitParams p = CircuitParams::linear_regime();
  p.model = TransferModel::kLinear;
  // Tiny conductance keeps the linear k = dt*G/Ccog small.
  const double g = 1e-6;
  FastMvm mvm(p, 1, 1, {g});
  const std::vector<double> t_in{50e-9};
  std::vector<double> t_out(1), t_ideal(1);
  mvm.mvm_times(t_in, t_out);
  mvm.ideal_times(t_in, t_ideal);
  RESIPE_EXPECT_REL(t_out[0], t_ideal[0], 1e-12);
  RESIPE_EXPECT_REL(t_ideal[0], p.linear_gain() * 50e-9 * g, 1e-12);
}

TEST(FastMvm, SharedRampCancellationAtSaturation) {
  // Single input, heavy conductance: k -> 1, so the exact model returns
  // t_out == t_in — the Sec. III-D cancellation.
  const CircuitParams p;
  FastMvm mvm(p, 1, 1, {3.2e-3});
  for (double t : {10e-9, 40e-9, 80e-9}) {
    std::vector<double> t_out(1);
    mvm.mvm_times(std::vector<double>{t}, t_out);
    // k = 1 - exp(-32) leaves a ~1e-14 relative residue in v_out, so
    // the cancellation is approximate, not bit-exact.
    RESIPE_EXPECT_REL(t_out[0], t, 1e-9) << "t=" << t;
  }
}

TEST(FastMvm, OutputsBeyondSliceAreSilent) {
  // Force a crossing beyond the slice: a comparator offset above the
  // reachable ramp within the slice cannot fire.
  CircuitParams p = CircuitParams::linear_regime();  // tau = 1 us
  // ramp reaches 0.1 Vs at slice end; an output needing more is silent.
  FastMvm mvm(p, 1, 1, {3.2e-3});  // k ~ 1 -> Vout ~ Vin
  std::vector<double> t_out(1);
  // Input at full window -> Vin ~ 0.099 Vs -> crossing just inside.
  mvm.mvm_times(std::vector<double>{99e-9}, t_out);
  EXPECT_NE(t_out[0], FastMvm::kNoSpike);
  // With comparator offset pushing the threshold past slice reach:
  p.comparator_offset = 0.05;
  FastMvm mvm2(p, 1, 1, {3.2e-3});
  mvm2.mvm_times(std::vector<double>{99e-9}, t_out);
  EXPECT_EQ(t_out[0], FastMvm::kNoSpike);
}

TEST(FastMvm, RejectsSizeMismatch) {
  const CircuitParams p;
  FastMvm mvm(p, 2, 1, {1e-6, 1e-6});
  std::vector<double> t_out(1);
  EXPECT_THROW(mvm.mvm_times(std::vector<double>{1e-9}, t_out), Error);
  EXPECT_THROW(FastMvm(p, 2, 2, {1e-6}), Error);
}

TEST(FastMvm, MonotoneInInputTime) {
  const CircuitParams p;
  FastMvm mvm(p, 4, 1, {5e-6, 5e-6, 5e-6, 5e-6});
  double prev = -1.0;
  for (double t = 0.0; t <= 90e-9; t += 5e-9) {
    std::vector<double> t_out(1);
    mvm.mvm_times(std::vector<double>{t, 20e-9, 40e-9, 60e-9}, t_out);
    ASSERT_NE(t_out[0], FastMvm::kNoSpike);
    EXPECT_GE(t_out[0], prev);
    prev = t_out[0];
  }
}

}  // namespace
}  // namespace resipe::resipe_core
