#include "resipe/resipe/chip.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"
#include "resipe/nn/zoo.hpp"

namespace resipe::resipe_core {
namespace {

TEST(ChipMapping, SingleDenseLayer) {
  Rng rng(1);
  nn::Sequential model("m");
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(784, 10, rng);
  const ChipReport report = map_network(model, {1, 28, 28});
  ASSERT_EQ(report.layers.size(), 1u);
  const auto& m = report.layers[0];
  EXPECT_EQ(m.logical_rows, 784u);
  EXPECT_EQ(m.logical_cols, 10u);
  // ceil(784/32) = 25 row blocks x ceil(20/32) = 1 column block.
  EXPECT_EQ(m.tiles, 25u);
  EXPECT_EQ(m.slices_per_input, 1u);
  EXPECT_EQ(report.total_tiles, 25u);
  EXPECT_DOUBLE_EQ(report.ops_per_inference, 2.0 * 784 * 10);
  // One slice of pipeline II for a dense-only network.
  EXPECT_DOUBLE_EQ(report.initiation_interval, 100e-9);
  EXPECT_DOUBLE_EQ(report.input_latency, 200e-9);
}

TEST(ChipMapping, ConvLayerIsTheTemporalBottleneck) {
  Rng rng(1);
  nn::Sequential model("m");
  model.emplace<nn::Conv2d>(1, 6, 5, 1, 2, rng);  // 28 -> 28
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);                // -> 14
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(6 * 14 * 14, 10, rng);
  const ChipReport report = map_network(model, {1, 28, 28});
  ASSERT_EQ(report.layers.size(), 2u);
  const auto& conv = report.layers[0];
  EXPECT_TRUE(conv.is_conv);
  EXPECT_EQ(conv.logical_rows, 25u);
  EXPECT_EQ(conv.slices_per_input, 28u * 28u);
  // The conv sets the chip initiation interval.
  EXPECT_DOUBLE_EQ(report.initiation_interval, 784.0 * 100e-9);
  EXPECT_GT(report.input_latency, report.initiation_interval);
}

TEST(ChipMapping, PoolingShrinksDownstreamFanIn) {
  Rng rng(1);
  nn::Sequential with_pool("a");
  with_pool.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  with_pool.emplace<nn::MaxPool2d>(2);
  with_pool.emplace<nn::Flatten>();
  with_pool.emplace<nn::Dense>(4 * 14 * 14, 10, rng);
  const ChipReport report = map_network(with_pool, {1, 28, 28});
  EXPECT_EQ(report.layers[1].logical_rows, 4u * 14u * 14u);
}

TEST(ChipMapping, BenchmarkNetsAllMap) {
  Rng rng(1);
  for (nn::BenchmarkNet net : nn::all_benchmarks()) {
    nn::Sequential model = nn::build_benchmark(net, rng);
    const std::vector<std::size_t> shape =
        nn::uses_object_dataset(net) ? std::vector<std::size_t>{3, 32, 32}
                                     : std::vector<std::size_t>{1, 28, 28};
    const ChipReport report = map_network(model, shape);
    EXPECT_EQ(report.layers.size(), model.matrix_layer_count());
    EXPECT_GT(report.total_tiles, 0u);
    EXPECT_GT(report.power, 0.0);
    EXPECT_GT(report.power_efficiency, 0.0);
    EXPECT_GT(report.throughput, 0.0);
    const std::string rendered = report.render();
    EXPECT_NE(rendered.find("tiles"), std::string::npos);
  }
}

TEST(ChipMapping, DeeperNetworksUseMoreTiles) {
  Rng rng(1);
  nn::Sequential mlp1 = nn::build_benchmark(nn::BenchmarkNet::kMlp1, rng);
  nn::Sequential mlp2 = nn::build_benchmark(nn::BenchmarkNet::kMlp2, rng);
  const auto r1 = map_network(mlp1, {1, 28, 28});
  const auto r2 = map_network(mlp2, {1, 28, 28});
  EXPECT_GT(r2.total_tiles, r1.total_tiles);
  EXPECT_GT(r2.input_latency, r1.input_latency);
}

TEST(ChipMapping, ConvReplicationTradesAreaForLatency) {
  Rng rng(1);
  nn::Sequential model("m");
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);  // 28x28 positions
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(4 * 28 * 28, 10, rng);

  resipe_core::ChipConfig base;
  const auto r1 = resipe_core::map_network(model, {1, 28, 28}, base);
  resipe_core::ChipConfig fast;
  fast.conv_replication = 4;
  const auto r4 = resipe_core::map_network(model, {1, 28, 28}, fast);

  EXPECT_EQ(r4.layers[0].slices_per_input,
            (r1.layers[0].slices_per_input + 3) / 4);
  EXPECT_GT(r4.total_tiles, r1.total_tiles);
  EXPECT_LT(r4.input_latency, r1.input_latency);
  // Same MVM count per inference: energy per inference is unchanged.
  EXPECT_EQ(r4.layers[0].mvms_per_input, r1.layers[0].mvms_per_input);
}

TEST(ChipMapping, ReplicationClampsAtPositionCount) {
  Rng rng(1);
  nn::Sequential model("m");
  model.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng);  // 4x4 = 16 positions
  resipe_core::ChipConfig cfg;
  cfg.conv_replication = 1000;
  const auto report = resipe_core::map_network(model, {1, 4, 4}, cfg);
  EXPECT_EQ(report.layers[0].slices_per_input, 1u);
  EXPECT_EQ(report.layers[0].tiles, 16u);  // one group per position
}

TEST(ChipMapping, RejectsBadInputs) {
  Rng rng(1);
  nn::Sequential model("m");
  model.emplace<nn::ReLU>();  // no matrix layers
  EXPECT_THROW(map_network(model, {1, 28, 28}), Error);
  nn::Sequential ok("m2");
  ok.emplace<nn::Dense>(4, 2, rng);
  EXPECT_THROW(map_network(ok, {1, 28}), Error);  // bad shape arity
}

}  // namespace
}  // namespace resipe::resipe_core
