// Serving-layer tests: ServeConfig validation, admission control and
// deadline edge cases, retry exhaustion, health state machine,
// identity with the direct engine path, and determinism.
#include <gtest/gtest.h>

#include <cstring>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/nn/model.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/serve/pool.hpp"
#include "resipe/serve/scheduler.hpp"
#include "resipe/serve/traffic.hpp"

namespace {

using namespace resipe;
using resipe_core::EngineConfig;
using resipe_core::ResipeNetwork;
using serve::ChipPool;
using serve::ChipState;
using serve::RejectReason;
using serve::Request;
using serve::Response;
using serve::Scheduler;
using serve::ServeConfig;

/// Tiny MLP + calibration batch shared by the pool tests.
struct Fixture {
  nn::Sequential model{"serve_test_mlp"};
  nn::Tensor calibration{{8, 6}};

  Fixture() {
    Rng rng(11);
    model.emplace<nn::Dense>(6, 8, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Dense>(8, 3, rng);
    for (double& v : calibration.data()) v = rng.uniform(0.0, 1.0);
  }

  /// A clean replica config (reliability off, fast defaults).
  static EngineConfig clean_config(std::uint64_t program_seed) {
    EngineConfig cfg;
    cfg.program_seed = program_seed;
    return cfg;
  }

  /// A heavily defective replica: faults injected, mitigation crippled
  /// and a hair-trigger degrade threshold so outputs get flagged.
  static EngineConfig defective_config(std::uint64_t program_seed) {
    EngineConfig cfg = clean_config(program_seed);
    cfg.reliability.enabled = true;
    cfg.reliability.faults.stuck_lrs_rate = 0.3;
    cfg.reliability.faults.stuck_hrs_rate = 0.3;
    cfg.reliability.mitigation.spare_cols = 0;
    cfg.reliability.mitigation.remap_columns = false;
    cfg.reliability.mitigation.compensate_pairs = false;
    cfg.reliability.mitigation.degrade_threshold = 0.01;
    cfg.reliability.fault_seed = 0xBADull + program_seed;
    return cfg;
  }

  Request request(std::uint64_t id, double arrival,
                  double deadline = 0.0) const {
    Request req;
    req.id = id;
    req.tag = id % calibration.dim(0);
    req.arrival = arrival;
    req.deadline = deadline;
    const auto row = calibration.data().subspan(req.tag * 6, 6);
    req.input.assign(row.begin(), row.end());
    return req;
  }
};

bool responses_identical(const std::vector<Response>& a,
                         const std::vector<Response>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].status != b[i].status ||
        a[i].reason != b[i].reason || a[i].attempts != b[i].attempts ||
        a[i].chip != b[i].chip ||
        std::memcmp(&a[i].completion, &b[i].completion, sizeof(double)) !=
            0 ||
        a[i].logits.size() != b[i].logits.size()) {
      return false;
    }
    if (!a[i].logits.empty() &&
        std::memcmp(a[i].logits.data(), b[i].logits.data(),
                    a[i].logits.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// --- ServeConfig validation (via EngineConfig::validate, matching the
// fuzzer's generator-range == validate-domain invariant) --------------

TEST(ServeConfig, ValidatesThroughEngineConfig) {
  EngineConfig cfg;
  EXPECT_NO_THROW(cfg.validate());

  cfg.serve.queue_capacity = 0;  // a zero-capacity queue cannot serve
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.batch_max = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.default_deadline = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve.default_deadline = -1.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.retry_max = -1;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve.retry_max = ServeConfig::kRetryCeiling + 1;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve.retry_max = ServeConfig::kRetryCeiling;
  EXPECT_NO_THROW(cfg.validate());
  cfg.serve = ServeConfig{};

  cfg.serve.backoff_base = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.backoff_multiplier = 0.5;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.backoff_max = cfg.serve.backoff_base / 2.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.backoff_jitter = 1.5;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.health.canary_period = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.health.canary_images = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.health.max_canary_mismatch = 1.5;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.health.quarantine_after = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.serve = ServeConfig{};

  cfg.serve.health.readmit_after = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(ServeConfig, ZeroCapacityQueueRejectedAtPoolConstruction) {
  Fixture fx;
  ServeConfig scfg;
  scfg.queue_capacity = 0;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(1)};
  EXPECT_THROW(ChipPool(fx.model, fx.calibration, replicas, scfg), Error);
}

// --- identity and determinism ----------------------------------------

TEST(Scheduler, ServedLogitsMatchDirectForward) {
  Fixture fx;
  ServeConfig scfg;
  scfg.default_deadline = 10.0;  // slack: nothing can expire
  const EngineConfig cfg = Fixture::clean_config(5);
  std::vector<EngineConfig> replicas = {cfg, cfg};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);
  const ResipeNetwork direct(fx.model, cfg, fx.calibration);

  constexpr std::size_t kN = 8;
  Scheduler scheduler(pool, scfg);
  nn::Tensor batch({kN, 6});
  for (std::size_t i = 0; i < kN; ++i) {
    const Request req = fx.request(i, 1.0e-6 * static_cast<double>(i));
    std::copy(req.input.begin(), req.input.end(),
              batch.data().begin() + static_cast<std::ptrdiff_t>(i * 6));
    scheduler.submit(req);
  }
  const std::vector<Response> responses = scheduler.run();
  const nn::Tensor want = direct.forward(batch);

  ASSERT_EQ(responses.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(responses[i].status, Response::Status::kOk)
        << "request " << i << ": " << serve::to_string(responses[i].reason);
    ASSERT_EQ(responses[i].logits.size(), 3u);
    EXPECT_EQ(std::memcmp(responses[i].logits.data(),
                          want.data().data() + i * 3, 3 * sizeof(double)),
              0)
        << "served logits differ from direct forward at request " << i;
  }
}

TEST(Scheduler, DeterministicAcrossRunsAndThreadCounts) {
  Fixture fx;
  ServeConfig scfg;
  scfg.default_deadline = 10.0;
  scfg.batch_max = 3;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(5),
                                              Fixture::clean_config(6)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);

  serve::TrafficConfig traffic;
  traffic.rate = 5000.0;
  traffic.duration = 0.004;
  traffic.seed = 3;
  const std::vector<Request> trace =
      serve::poisson_traffic(fx.calibration, traffic);
  ASSERT_FALSE(trace.empty());

  std::vector<std::vector<Response>> runs;
  for (const std::size_t threads : {1, 2, 8, 1}) {
    set_default_threads(threads);
    Scheduler scheduler(pool, scfg);
    for (const Request& r : trace) scheduler.submit(r);
    runs.push_back(scheduler.run());
  }
  set_default_threads(0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_TRUE(responses_identical(runs[0], runs[i]))
        << "run " << i << " diverged";
  }
}

TEST(Traffic, PoissonTraceIsDeterministicAndInRange) {
  Fixture fx;
  serve::TrafficConfig cfg;
  cfg.rate = 10000.0;
  cfg.duration = 0.01;
  cfg.seed = 9;
  const auto a = serve::poisson_traffic(fx.calibration, cfg);
  const auto b = serve::poisson_traffic(fx.calibration, cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].input, b[i].input);
    EXPECT_GE(a[i].arrival, prev);
    EXPECT_LT(a[i].arrival, cfg.duration);
    EXPECT_EQ(a[i].input.size(), 6u);
    prev = a[i].arrival;
  }
}

// --- admission-control edge cases ------------------------------------

TEST(Scheduler, DeadlineExpiredAtAdmissionIsShed) {
  Fixture fx;
  ServeConfig scfg;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(1)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);

  Scheduler scheduler(pool, scfg);
  // Absolute deadline equal to the arrival time: already expired.
  scheduler.submit(fx.request(0, /*arrival=*/1.0e-3, /*deadline=*/1.0e-3));
  const auto responses = scheduler.run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, Response::Status::kRejected);
  EXPECT_EQ(responses[0].reason, RejectReason::kDeadlineExpired);
  EXPECT_EQ(responses[0].attempts, 0u);
  EXPECT_TRUE(responses[0].logits.empty());
}

TEST(Scheduler, BurstOverCapacityShedsQueueFull) {
  Fixture fx;
  ServeConfig scfg;
  scfg.queue_capacity = 1;
  scfg.batch_window = 1.0;  // hold the queued request far past the burst
  scfg.default_deadline = 10.0;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(1)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);

  Scheduler scheduler(pool, scfg);
  for (std::uint64_t i = 0; i < 4; ++i) {
    scheduler.submit(fx.request(i, 1.0e-6 * static_cast<double>(i + 1)));
  }
  const auto responses = scheduler.run();
  ASSERT_EQ(responses.size(), 4u);
  // First request occupies the queue for the whole window; the burst
  // behind it is shed with the explicit queue-full reason.
  EXPECT_TRUE(responses[0].served());
  std::size_t shed = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (responses[i].status == Response::Status::kRejected) {
      EXPECT_EQ(responses[i].reason, RejectReason::kQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(shed, 3u);
  EXPECT_EQ(scheduler.stats().shed_queue_full, 3u);
}

TEST(Scheduler, AllChipsQuarantinedShedsWithoutDeadlock) {
  Fixture fx;
  ServeConfig scfg;
  scfg.default_deadline = 10.0;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(1),
                                              Fixture::clean_config(2)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);
  pool.force_quarantine(0);
  pool.force_quarantine(1);
  ASSERT_EQ(pool.healthy_count(), 0u);

  Scheduler scheduler(pool, scfg);
  for (std::uint64_t i = 0; i < 3; ++i) {
    scheduler.submit(fx.request(i, 1.0e-6 * static_cast<double>(i + 1)));
  }
  const auto responses = scheduler.run();  // must terminate
  ASSERT_EQ(responses.size(), 3u);
  for (const Response& r : responses) {
    EXPECT_EQ(r.status, Response::Status::kRejected);
    EXPECT_EQ(r.reason, RejectReason::kAllChipsQuarantined);
  }
  EXPECT_EQ(scheduler.stats().shed_quarantine, 3u);
}

// --- retry / failover -------------------------------------------------

TEST(Scheduler, RetryExhaustionSurfacesLastFaultFlags) {
  Fixture fx;
  ServeConfig scfg;
  scfg.default_deadline = 10.0;
  scfg.retry_max = 2;
  const std::vector<EngineConfig> replicas = {Fixture::defective_config(3)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);
  // Precondition: the replica really does flag outputs as degraded.
  nn::Tensor probe({1, 6});
  for (std::size_t j = 0; j < 6; ++j) probe[j] = fx.calibration[j];
  (void)pool.infer(0, probe);
  ASSERT_GT(pool.degraded_outputs(0), 0u)
      << "fixture must produce fault-flagged outputs";

  Scheduler scheduler(pool, scfg);
  scheduler.submit(fx.request(0, 1.0e-6));
  const auto responses = scheduler.run();
  ASSERT_EQ(responses.size(), 1u);
  // Only one (defective) replica: every retry lands on the same chip,
  // the budget runs out, and the final answer carries the fault flags.
  EXPECT_EQ(responses[0].status, Response::Status::kDegraded);
  EXPECT_EQ(responses[0].attempts, 3u);  // 1 try + retry_max retries
  EXPECT_GT(responses[0].degraded_outputs, 0u);
  EXPECT_FALSE(responses[0].logits.empty());
  EXPECT_EQ(scheduler.stats().retries, 2u);
}

TEST(Scheduler, RetryFailsOverToCleanReplica) {
  Fixture fx;
  ServeConfig scfg;
  scfg.default_deadline = 10.0;
  scfg.retry_max = 2;
  scfg.batch_max = 1;
  const std::vector<EngineConfig> replicas = {Fixture::defective_config(3),
                                              Fixture::clean_config(4)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);

  Scheduler scheduler(pool, scfg);
  scheduler.submit(fx.request(0, 1.0e-6));
  const auto responses = scheduler.run();
  ASSERT_EQ(responses.size(), 1u);
  // First attempt on chip 0 (lowest index) is fault-flagged; the retry
  // excludes chip 0 and lands clean on chip 1.
  EXPECT_EQ(responses[0].status, Response::Status::kOk);
  EXPECT_EQ(responses[0].chip, 1u);
  EXPECT_EQ(responses[0].attempts, 2u);
  EXPECT_EQ(responses[0].degraded_outputs, 0u);
}

// --- health state machine --------------------------------------------

TEST(ChipPool, DefectiveChipQuarantinesAndCleanChipSurvives) {
  Fixture fx;
  ServeConfig scfg;
  // Rely on the RMSE criterion alone: tight enough to catch the heavily
  // defective replica, loose enough that the clean replica's programming
  // noise (vs the golden reference) stays under it.
  scfg.health.max_canary_mismatch = 1.0;
  scfg.health.logit_rmse_limit = 0.1;
  scfg.health.quarantine_after = 2;
  const std::vector<EngineConfig> replicas = {Fixture::defective_config(3),
                                              Fixture::clean_config(1)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);

  // Round 1: the defective chip fails its probe but is not yet out.
  EXPECT_EQ(pool.run_probe_round(), 0u);
  EXPECT_EQ(pool.status(0).state, ChipState::kHealthy);
  EXPECT_EQ(pool.status(0).consecutive_failed, 1u);
  // Round 2: quarantine_after consecutive failures -> quarantined.
  EXPECT_EQ(pool.run_probe_round(), 1u);
  EXPECT_EQ(pool.status(0).state, ChipState::kQuarantined);
  EXPECT_EQ(pool.status(0).quarantines, 1u);
  // The clean replica stays in rotation throughout.
  EXPECT_EQ(pool.status(1).state, ChipState::kHealthy);
  EXPECT_EQ(pool.healthy_count() + 1, pool.size());
}

TEST(ChipPool, QuarantinedChipReadmitsAfterCleanProbes) {
  Fixture fx;
  ServeConfig scfg;
  scfg.health.readmit_after = 3;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(1)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);

  pool.force_quarantine(0);
  EXPECT_EQ(pool.status(0).state, ChipState::kQuarantined);
  EXPECT_EQ(pool.healthy_count(), 0u);
  // Clean probes accumulate; readmission on the third.
  EXPECT_EQ(pool.run_probe_round(), 0u);
  EXPECT_EQ(pool.run_probe_round(), 0u);
  EXPECT_EQ(pool.status(0).state, ChipState::kQuarantined);
  EXPECT_EQ(pool.run_probe_round(), 1u);
  EXPECT_EQ(pool.status(0).state, ChipState::kHealthy);
  EXPECT_EQ(pool.status(0).readmissions, 1u);
  EXPECT_EQ(pool.healthy_count(), 1u);
}

// --- stats roll-up ----------------------------------------------------

TEST(ServingStats, SummarizeCountsAndPercentiles) {
  std::vector<Response> responses(4);
  for (std::size_t i = 0; i < 4; ++i) {
    responses[i].id = i;
    responses[i].arrival = static_cast<double>(i);
    responses[i].completion = static_cast<double>(i) + 0.001 * (i + 1);
    responses[i].status = Response::Status::kOk;
    responses[i].attempts = 1;
    responses[i].logits = {0.0};
  }
  responses[3].status = Response::Status::kRejected;
  responses[3].reason = RejectReason::kQueueFull;
  responses[3].attempts = 0;
  responses[3].logits.clear();

  const serve::ServingStats s = serve::summarize(responses);
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.served_ok, 3u);
  EXPECT_EQ(s.shed_queue_full, 1u);
  EXPECT_EQ(s.shed(), 1u);
  EXPECT_DOUBLE_EQ(s.shed_rate(), 0.25);
  // Latencies 1/2/3 ms through the repo-wide interpolated percentile
  // (telemetry::percentile_sorted): rank q*n bracketed and lerped.
  EXPECT_NEAR(s.p50, 0.0015, 1e-12);   // rank 1.5 between 1 and 2 ms
  EXPECT_NEAR(s.p99, 0.00297, 1e-12);  // rank 2.97 between 2 and 3 ms
  EXPECT_NEAR(s.max_latency, 0.003, 1e-12);
}

}  // namespace
