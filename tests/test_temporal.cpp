#include "resipe/baselines/temporal_coding.hpp"

#include <gtest/gtest.h>

#include "resipe/baselines/rate_coding.hpp"
#include "resipe/common/error.hpp"
#include "resipe/resipe/design.hpp"

namespace resipe::baselines {
namespace {

TEST(TemporalCoding, LatencyIsTheSlowestOfTheTaxonomy) {
  // Table I classes ReSiPE "Medium" and temporal coding "Slow".
  const TemporalCodingDesign temporal;
  const RateCodingDesign rate;
  const resipe_core::ResipeDesign resipe;
  EXPECT_GT(temporal.mvm_latency(), rate.mvm_latency());
  EXPECT_GT(temporal.mvm_latency(), resipe.mvm_latency());
}

TEST(TemporalCoding, PowerIsLowDespiteLongWindow) {
  // Sec. II: "enriched functionality ... can largely reduce the power
  // consumption but result in long latency".
  const TemporalCodingDesign temporal;
  const RateCodingDesign rate;
  const auto pt = temporal.evaluate();
  const auto pr = rate.evaluate();
  EXPECT_LT(pt.power, pr.power);
  // But the long window murders power efficiency vs ReSiPE.
  const resipe_core::ResipeDesign resipe;
  EXPECT_GT(resipe.evaluate().power_efficiency, pt.power_efficiency);
}

TEST(TemporalCoding, FunctionalMvmIsMonotone) {
  const TemporalCodingDesign design;
  std::vector<double> x(32, 0.2);
  const auto q_low = design.functional_mvm(x);
  for (double& v : x) v = 0.9;
  const auto q_high = design.functional_mvm(x);
  for (std::size_t c = 0; c < q_low.size(); ++c) {
    EXPECT_GT(q_high[c], q_low[c]);
  }
}

TEST(TemporalCoding, EarlierSpikesIntegrateMore) {
  // First-spike-latency coding: larger values spike earlier, so their
  // sustained synaptic current integrates longer before readout.
  // Invariant: zero input yields strictly less charge than full input.
  const TemporalCodingDesign design;
  const std::vector<double> zero(32, 0.0);
  const std::vector<double> one(32, 1.0);
  const auto q0 = design.functional_mvm(zero);
  const auto q1 = design.functional_mvm(one);
  for (std::size_t c = 0; c < q0.size(); ++c) {
    EXPECT_LT(q0[c], q1[c]);
  }
}

TEST(TemporalCoding, ReportIsPositiveAndNeuronDominated) {
  const TemporalCodingDesign design;
  const auto report = design.mvm_report();
  EXPECT_GT(report.total_energy(), 0.0);
  EXPECT_GT(report.total_area(), 0.0);
  EXPECT_GT(report.energy_share("neuron"), 0.5);
}

TEST(TemporalCoding, RejectsBadParameters) {
  TemporalCodingParams p;
  p.window = 0.0;
  EXPECT_THROW(TemporalCodingDesign{p}, Error);
  p = TemporalCodingParams{};
  p.spikes_per_input = 0.0;
  EXPECT_THROW(TemporalCodingDesign{p}, Error);
}

TEST(TemporalCoding, InputSizeChecked) {
  const TemporalCodingDesign design;
  EXPECT_THROW(design.functional_mvm(std::vector<double>(8, 0.5)), Error);
}

}  // namespace
}  // namespace resipe::baselines
