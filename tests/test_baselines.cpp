#include <gtest/gtest.h>

#include <cmath>

#include "resipe/baselines/level_based.hpp"
#include "resipe/baselines/pwm_based.hpp"
#include "resipe/baselines/rate_coding.hpp"
#include "resipe/common/error.hpp"

namespace resipe::baselines {
namespace {

TEST(LevelBased, TimingMatchesDesignPoint) {
  const LevelBasedDesign design;
  EXPECT_DOUBLE_EQ(design.mvm_latency(), 128e-9);
  EXPECT_DOUBLE_EQ(design.initiation_interval(), 64e-9);
  const auto p = design.evaluate();
  EXPECT_GT(p.energy_per_mvm, 0.0);
  EXPECT_GT(p.area, 0.0);
}

TEST(LevelBased, FunctionalMvmTracksIdealWithinQuantization) {
  const LevelBasedDesign design;
  std::vector<double> x(32);
  for (std::size_t i = 0; i < 32; ++i)
    x[i] = static_cast<double>(i) / 31.0;
  const auto y = design.functional_mvm(x);
  ASSERT_EQ(y.size(), 32u);
  for (double v : y) {
    EXPECT_GE(v, 0.0);
  }
  // Feeding larger inputs never reduces any output (monotonicity).
  std::vector<double> x2 = x;
  for (double& v : x2) v = std::min(1.0, v + 0.2);
  const auto y2 = design.functional_mvm(x2);
  for (std::size_t c = 0; c < y.size(); ++c) {
    EXPECT_GE(y2[c], y[c] - 1e-12);
  }
}

TEST(LevelBased, DacQuantizationIsVisible) {
  LevelBasedParams params;
  params.dac_bits = 1;  // crude DAC
  const LevelBasedDesign coarse(params);
  const LevelBasedDesign fine;  // 8 bit
  std::vector<double> x(32, 0.4);
  const auto yc = coarse.functional_mvm(x);
  const auto yf = fine.functional_mvm(x);
  // 0.4 quantizes to 0.5 at 1 bit -> outputs differ.
  EXPECT_GT(std::abs(yc[0] - yf[0]), 1e-9);
}

TEST(RateCoding, WindowIs400nsAtDefaults) {
  const RateCodingParams params;
  EXPECT_DOUBLE_EQ(params.window(), 400e-9);
  const RateCodingDesign design;
  EXPECT_DOUBLE_EQ(design.mvm_latency(), 400e-9);
}

TEST(RateCoding, EncodeSpikesQuantizesToCounts) {
  const RateCodingDesign design;
  EXPECT_EQ(design.encode_spikes(0.0), 0);
  EXPECT_EQ(design.encode_spikes(1.0), 31);
  EXPECT_EQ(design.encode_spikes(0.5), 16);  // round(15.5)
  EXPECT_EQ(design.encode_spikes(-1.0), 0);
  EXPECT_EQ(design.encode_spikes(2.0), 31);
}

TEST(RateCoding, FunctionalMvmMonotone) {
  const RateCodingDesign design;
  std::vector<double> x(32, 0.2);
  const auto y_low = design.functional_mvm(x);
  for (double& v : x) v = 0.9;
  const auto y_high = design.functional_mvm(x);
  for (std::size_t c = 0; c < y_low.size(); ++c) {
    EXPECT_GT(y_high[c], y_low[c]);
  }
}

TEST(RateCoding, ZeroInputGivesZeroCharge) {
  const RateCodingDesign design;
  const std::vector<double> x(32, 0.0);
  for (double v : design.functional_mvm(x)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(PwmBased, WindowAndLatency) {
  const PwmParams params;
  EXPECT_DOUBLE_EQ(params.window(), 512e-9);
  const PwmDesign design;
  EXPECT_DOUBLE_EQ(design.mvm_latency(), 640e-9);
}

TEST(PwmBased, FunctionalMvmScalesWithDuty) {
  const PwmDesign design;
  std::vector<double> x(32, 0.25);
  const auto y1 = design.functional_mvm(x);
  for (double& v : x) v = 0.5;
  const auto y2 = design.functional_mvm(x);
  for (std::size_t c = 0; c < y1.size(); ++c) {
    EXPECT_NEAR(y2[c] / y1[c], 2.0, 0.1);
  }
}

TEST(Baselines, EnergyOrderingMatchesThePaper) {
  // Per-MVM energy: rate > level > ReSiPE is not required, but PWM
  // must be far above everyone and all must be positive.
  const LevelBasedDesign level;
  const RateCodingDesign rate;
  const PwmDesign pwm;
  const double e_level = level.evaluate().energy_per_mvm;
  const double e_rate = rate.evaluate().energy_per_mvm;
  const double e_pwm = pwm.evaluate().energy_per_mvm;
  EXPECT_GT(e_pwm, 5.0 * e_level);
  EXPECT_GT(e_pwm, 5.0 * e_rate);
}

TEST(Baselines, RejectBadParameters) {
  RateCodingParams rate;
  rate.bits = 0;
  EXPECT_THROW(RateCodingDesign{rate}, Error);
  PwmParams pwm;
  pwm.bits = 13;
  EXPECT_THROW(PwmDesign{pwm}, Error);
  LevelBasedParams level;
  level.apply_time = 0.0;
  EXPECT_THROW(LevelBasedDesign{level}, Error);
}

TEST(Baselines, InputSizeChecked) {
  const LevelBasedDesign level;
  const std::vector<double> x(16, 0.5);
  EXPECT_THROW(level.functional_mvm(x), Error);
}

}  // namespace
}  // namespace resipe::baselines
