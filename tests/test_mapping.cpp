#include "resipe/crossbar/mapping.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"

namespace resipe::crossbar {
namespace {

device::ReramSpec fine_spec() {
  device::ReramSpec spec = device::ReramSpec::nn_mapping();
  spec.levels = 1 << 14;  // make quantization negligible for round-trips
  return spec;
}

class MappingRoundTrip : public ::testing::TestWithParam<SignedMapping> {};

TEST_P(MappingRoundTrip, UnmapRecoversWeights) {
  const SignedMapping strategy = GetParam();
  const device::ReramSpec spec = fine_spec();
  Rng rng(3);
  constexpr std::size_t kRows = 6;
  constexpr std::size_t kCols = 4;
  std::vector<double> w(kRows * kCols);
  for (double& v : w) v = rng.normal(0.0, 0.5);

  const MappedWeights mapped = map_weights(w, kRows, kCols, spec, strategy);
  const auto recovered = unmap_weights(mapped, mapped.g_targets);
  ASSERT_EQ(recovered.size(), w.size());
  double max_abs = 0.0;
  for (double v : w) max_abs = std::max(max_abs, std::abs(v));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(recovered[i], w[i], 1e-3 * max_abs) << "i=" << i;
  }
}

TEST_P(MappingRoundTrip, TargetsStayInsideWindow) {
  const SignedMapping strategy = GetParam();
  const device::ReramSpec spec = fine_spec();
  Rng rng(4);
  std::vector<double> w(12);
  for (double& v : w) v = rng.normal(0.0, 2.0);
  const MappedWeights mapped = map_weights(w, 4, 3, spec, strategy);
  for (double g : mapped.g_targets) {
    EXPECT_GE(g, spec.g_min() - 1e-15);
    EXPECT_LE(g, spec.g_max() + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MappingRoundTrip,
                         ::testing::Values(
                             SignedMapping::kDifferentialPair,
                             SignedMapping::kComplementaryPair,
                             SignedMapping::kOffsetColumn));

TEST(Mapping, PhysicalColumnLayout) {
  const device::ReramSpec spec = fine_spec();
  const std::vector<double> w(8, 0.1);
  const auto diff =
      map_weights(w, 2, 4, spec, SignedMapping::kDifferentialPair);
  EXPECT_EQ(diff.cols, 8u);
  EXPECT_EQ(diff.plus_col(1), 2u);
  EXPECT_EQ(diff.minus_col(1), 3u);

  const auto offset = map_weights(w, 2, 4, spec, SignedMapping::kOffsetColumn);
  EXPECT_EQ(offset.cols, 5u);
  EXPECT_EQ(offset.plus_col(2), 2u);
  EXPECT_EQ(offset.minus_col(2), 4u);  // the shared reference column
}

TEST(Mapping, DifferentialParksSmallWeightsAtGmin) {
  const device::ReramSpec spec = fine_spec();
  const std::vector<double> w{0.0, 1.0};
  const auto m = map_weights(w, 1, 2, spec,
                             SignedMapping::kDifferentialPair);
  // Zero weight: both columns at G_min.
  EXPECT_DOUBLE_EQ(m.g_targets[m.plus_col(0)], spec.g_min());
  EXPECT_DOUBLE_EQ(m.g_targets[m.minus_col(0)], spec.g_min());
  // Max weight: plus at G_max, minus at G_min.
  EXPECT_DOUBLE_EQ(m.g_targets[m.plus_col(1)], spec.g_max());
  EXPECT_DOUBLE_EQ(m.g_targets[m.minus_col(1)], spec.g_min());
}

TEST(Mapping, ComplementaryPairLoadingIsWeightIndependent) {
  // The pair's combined conductance is 2 * rows * g_mid whatever the
  // weights are (each cell pair mirrors around the window midpoint).
  const device::ReramSpec spec = fine_spec();
  Rng rng(5);
  constexpr std::size_t kRows = 8;
  std::vector<double> w(kRows);
  for (double& v : w) v = rng.normal(0.0, 0.5);
  const auto m = map_weights(w, kRows, 1, spec,
                             SignedMapping::kComplementaryPair);
  double plus = 0.0;
  double minus = 0.0;
  for (std::size_t r = 0; r < kRows; ++r) {
    plus += m.g_targets[r * m.cols + m.plus_col(0)];
    minus += m.g_targets[r * m.cols + m.minus_col(0)];
  }
  const double g_mid = 0.5 * (spec.g_min() + spec.g_max());
  EXPECT_NEAR(plus + minus, 2.0 * static_cast<double>(kRows) * g_mid,
              1e-10);
}

TEST(Mapping, ExplicitClipOverridesScale) {
  const device::ReramSpec spec = fine_spec();
  const std::vector<double> w{0.5, -2.0};  // |w|max = 2
  const auto m = map_weights(w, 1, 2, spec,
                             SignedMapping::kDifferentialPair,
                             /*w_clip=*/1.0);
  // -2 clips to -1: minus column of logical col 1 sits at G_max.
  EXPECT_DOUBLE_EQ(m.g_targets[m.minus_col(1)], spec.g_max());
  EXPECT_NEAR(m.weight_per_siemens,
              1.0 / (spec.g_max() - spec.g_min()), 1e-9);
}

TEST(Mapping, AllZeroMatrixIsWellDefined) {
  const device::ReramSpec spec = fine_spec();
  const std::vector<double> w(4, 0.0);
  const auto m = map_weights(w, 2, 2, spec,
                             SignedMapping::kDifferentialPair);
  const auto rec = unmap_weights(m, m.g_targets);
  for (double v : rec) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Mapping, RejectsBadShapes) {
  const device::ReramSpec spec = fine_spec();
  const std::vector<double> w(4, 0.0);
  EXPECT_THROW(map_weights(w, 3, 2, spec,
                           SignedMapping::kDifferentialPair),
               Error);
  EXPECT_THROW(map_weights(w, 0, 2, spec,
                           SignedMapping::kDifferentialPair),
               Error);
}

TEST(Mapping, ToStringNames) {
  EXPECT_STREQ(to_string(SignedMapping::kDifferentialPair),
               "differential pair");
  EXPECT_STREQ(to_string(SignedMapping::kComplementaryPair),
               "complementary pair");
  EXPECT_STREQ(to_string(SignedMapping::kOffsetColumn), "offset column");
}

}  // namespace
}  // namespace resipe::crossbar
