#include "resipe/nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::nn {
namespace {

Sequential make_model(std::uint64_t seed) {
  Rng rng(seed);
  Sequential m("s");
  m.emplace<Flatten>();
  m.emplace<Dense>(16, 8, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(8, 4, rng);
  return m;
}

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Serialize, RoundTripPreservesOutputs) {
  TempFile f("test_weights_roundtrip.bin");
  Sequential a = make_model(1);
  save_weights(a, f.path);

  Sequential b = make_model(2);  // different init
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.1 * static_cast<double>(i);
  const Tensor ya = a.forward(x, false);
  const Tensor yb_before = b.forward(x, false);
  bool differs = false;
  for (std::size_t i = 0; i < ya.size(); ++i) {
    if (ya[i] != yb_before[i]) differs = true;
  }
  EXPECT_TRUE(differs);

  load_weights(b, f.path);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, CompatibilityCheck) {
  TempFile f("test_weights_compat.bin");
  Sequential a = make_model(1);
  save_weights(a, f.path);
  Sequential same = make_model(3);
  EXPECT_TRUE(weights_compatible(same, f.path));

  Rng rng(4);
  Sequential other("other");
  other.emplace<Dense>(16, 9, rng);  // different layout
  EXPECT_FALSE(weights_compatible(other, f.path));
  EXPECT_THROW(load_weights(other, f.path), Error);
}

TEST(Serialize, MissingFileHandled) {
  Sequential a = make_model(1);
  EXPECT_FALSE(weights_compatible(a, "does_not_exist.bin"));
  EXPECT_THROW(load_weights(a, "does_not_exist.bin"), Error);
}

TEST(Serialize, CorruptFileRejected) {
  TempFile f("test_weights_corrupt.bin");
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "this is not a weight file";
  }
  Sequential a = make_model(1);
  EXPECT_FALSE(weights_compatible(a, f.path));
  EXPECT_THROW(load_weights(a, f.path), Error);
}

TEST(Serialize, TruncatedFileRejected) {
  TempFile f("test_weights_trunc.bin");
  Sequential a = make_model(1);
  save_weights(a, f.path);
  // Chop the tail off.
  std::ifstream in(f.path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  Sequential b = make_model(2);
  EXPECT_THROW(load_weights(b, f.path), Error);
}

}  // namespace
}  // namespace resipe::nn
