#include "resipe/nn/layers.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"

namespace resipe::nn {
namespace {

TEST(Dense, ForwardMatchesHandComputation) {
  Rng rng(1);
  Dense d(2, 3, rng);
  d.weights() = Tensor({2, 3}, {1, 2, 3, 4, 5, 6});
  d.bias() = Tensor({1, 3}, {0.1, 0.2, 0.3});
  const Tensor x({1, 2}, {1.0, 0.5});
  const Tensor y = d.forward(x, false);
  // y = [1*1 + 0.5*4, 1*2 + 0.5*5, 1*3 + 0.5*6] + b
  EXPECT_NEAR(y.at(0, 0), 3.1, 1e-12);
  EXPECT_NEAR(y.at(0, 1), 4.7, 1e-12);
  EXPECT_NEAR(y.at(0, 2), 6.3, 1e-12);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense d(4, 2, rng);
  EXPECT_THROW(d.forward(Tensor({1, 3}), false), Error);
}

TEST(Dense, BackwardRequiresTrainingForward) {
  Rng rng(1);
  Dense d(2, 2, rng);
  d.forward(Tensor({1, 2}), false);
  EXPECT_THROW(d.backward(Tensor({1, 2})), Error);
}

TEST(Dense, DescribeAndParams) {
  Rng rng(1);
  Dense d(3, 5, rng);
  EXPECT_EQ(d.describe(), "Dense(3 -> 5)");
  EXPECT_TRUE(d.is_matrix_layer());
  const auto params = d.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].value->size(), 15u);
  EXPECT_EQ(params[1].value->size(), 5u);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, rng);  // 1x1 kernel
  conv.weights().fill(1.0);
  conv.bias().fill(0.0);
  Tensor x({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<double>(i);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Conv2d, SumKernelMatchesHandComputation) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  conv.weights().fill(1.0);  // 3x3 box filter
  conv.bias().fill(0.5);
  Tensor x({1, 1, 3, 3});
  x.fill(2.0);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.dim(2), 1u);
  EXPECT_DOUBLE_EQ(y.at(0, 0, 0, 0), 18.0 + 0.5);
}

TEST(Conv2d, PaddingKeepsSpatialSize) {
  Rng rng(1);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  const Tensor x({2, 1, 8, 8});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 2u);
  EXPECT_EQ(y.dim(2), 8u);
  EXPECT_EQ(y.dim(3), 8u);
}

TEST(Conv2d, StrideReducesOutput) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 2, 0, rng);
  EXPECT_EQ(conv.out_size(7), 3u);
  EXPECT_THROW(conv.out_size(1), Error);
}

TEST(MaxPool2d, SelectsWindowMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 0,
                          3, 4, 9, 1});
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y.at(0, 0, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(y.at(0, 0, 0, 1), 9.0);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 4});
  pool.forward(x, true);
  Tensor g({1, 1, 1, 1}, {2.0});
  const Tensor gx = pool.backward(g);
  EXPECT_DOUBLE_EQ(gx[0], 0.0);
  EXPECT_DOUBLE_EQ(gx[1], 2.0);  // the max at index 1
  EXPECT_DOUBLE_EQ(gx[2], 0.0);
  EXPECT_DOUBLE_EQ(gx[3], 0.0);
}

TEST(MaxPool2d, RejectsNonDivisibleWindows) {
  MaxPool2d pool(2);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 3, 4}), false), Error);
}

TEST(AvgPool2d, AveragesWindows) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  const Tensor y = pool.forward(x, false);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(AvgPool2d, BackwardSpreadsUniformly) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2});
  pool.forward(x, true);
  const Tensor gx = pool.backward(Tensor({1, 1, 1, 1}, {4.0}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(gx[i], 1.0);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x({1, 4}, {-1.0, 0.0, 2.0, -3.0});
  const Tensor y = relu.forward(x, false);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(ReLU, GradientMasksNegatives) {
  ReLU relu;
  Tensor x({1, 3}, {-1.0, 1.0, 0.0});
  relu.forward(x, true);
  const Tensor gx = relu.backward(Tensor({1, 3}, {5.0, 5.0, 5.0}));
  EXPECT_DOUBLE_EQ(gx[0], 0.0);
  EXPECT_DOUBLE_EQ(gx[1], 5.0);
  EXPECT_DOUBLE_EQ(gx[2], 0.0);  // x == 0 has zero subgradient here
}

TEST(Flatten, CollapsesAndRestores) {
  Flatten flat;
  Tensor x({2, 3, 4, 5});
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 60u);
  const Tensor gx = flat.backward(Tensor({2, 60}));
  EXPECT_EQ(gx.shape(), x.shape());
}

}  // namespace
}  // namespace resipe::nn
