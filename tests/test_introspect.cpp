#include "resipe/introspect/inspect.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "resipe/common/parallel.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe::introspect {
namespace {

// Small shared fixture: an untrained MLP-1 lowered onto the engine with
// a modest variation sigma.  Training adds nothing to what these tests
// check and would dominate their runtime.
struct Lowered {
  nn::Sequential model;
  nn::Dataset batch;
  resipe_core::EngineConfig config;

  explicit Lowered(bool enable_introspect) {
    Rng model_rng(0xC0FFEEull);
    model = nn::build_benchmark(nn::BenchmarkNet::kMlp1, model_rng);
    Rng data_rng(7);
    batch = nn::synthetic_digits(16, data_rng);
    config.device.variation_sigma = 0.1;
    config.introspect.enabled = enable_introspect;
    config.introspect.max_probe_vectors = 16;
    config.introspect.max_attribution_vectors = 16;
  }

  resipe_core::ResipeNetwork lower() {
    return resipe_core::ResipeNetwork(model, config, batch.images);
  }
};

std::vector<double> logits_of(const resipe_core::ResipeNetwork& net,
                              const nn::Tensor& x) {
  const nn::Tensor y = net.forward(x);
  return std::vector<double>(y.data().begin(), y.data().end());
}

// The introspect flag must not perturb the forward path: logits with
// the flag on are bit-identical to the flag-off logits, at any worker
// count.
TEST(Introspect, DisabledPathBitIdenticalAcrossThreads) {
  Lowered off(false);
  Lowered on(true);
  const auto net_off = off.lower();
  const auto net_on = on.lower();

  set_default_threads(1);
  const std::vector<double> reference = logits_of(net_off, off.batch.images);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    set_default_threads(threads);
    const std::vector<double> got_off = logits_of(net_off, off.batch.images);
    const std::vector<double> got_on = logits_of(net_on, off.batch.images);
    ASSERT_EQ(got_off.size(), reference.size());
    ASSERT_EQ(got_on.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(got_off[i], reference[i]) << "threads=" << threads;
      EXPECT_EQ(got_on[i], reference[i]) << "threads=" << threads;
    }
  }
  set_default_threads(1);
}

// The three attribution components are differences of adjacent
// effect-toggled arms, so they must reassemble the measured total.
TEST(Introspect, AttributionComponentsSumToTotal) {
  Lowered lo(true);
  const auto net = lo.lower();
  const InspectionReport report =
      inspect(net, lo.batch.images, lo.batch.labels);

  bool any = false;
  for (const LayerReport& lr : report.layers) {
    if (!lr.error.computed) continue;
    any = true;
    EXPECT_GT(lr.error.total, 0.0);
    EXPECT_GT(lr.error.vectors, 0u);
    const double sum =
        lr.error.quantization + lr.error.variation + lr.error.nonlinearity;
    EXPECT_NEAR(sum, lr.error.total,
                0.05 * lr.error.total + 1e-12)
        << "step " << lr.step;
  }
  EXPECT_TRUE(any);
}

TEST(Introspect, EnabledReportCarriesProbesEnergyAndAccuracy) {
  Lowered lo(true);
  const auto net = lo.lower();
  const InspectionReport report =
      inspect(net, lo.batch.images, lo.batch.labels);

  EXPECT_EQ(report.batch_size, 16u);
  EXPECT_GE(report.analog_accuracy, 0.0);
  EXPECT_GE(report.digital_accuracy, 0.0);
  EXPECT_GT(report.total_energy, 0.0);
  bool any_probe = false;
  for (const LayerReport& lr : report.layers) {
    if (!lr.is_matrix) continue;
    EXPECT_TRUE(lr.probed);
    EXPECT_GT(lr.probe.vectors, 0u);
    EXPECT_GT(lr.energy.total, 0.0);
    EXPECT_GE(lr.accuracy_if_digital, 0.0);
    any_probe = true;
  }
  EXPECT_TRUE(any_probe);
  // The JSON document and dashboard render without throwing and carry
  // the provenance stamp.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"engine_config_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"spike_health\""), std::string::npos);
  EXPECT_NE(report.render_ascii().find("provenance"), std::string::npos);
}

// With introspection off, inspect() runs nothing and returns only the
// provenance manifest plus the layer skeleton.
TEST(Introspect, DisabledInspectReturnsSkeletonOnly) {
  Lowered lo(false);
  const auto net = lo.lower();
  const InspectionReport report =
      inspect(net, lo.batch.images, lo.batch.labels);

  EXPECT_FALSE(report.provenance.engine_config_hash.empty());
  EXPECT_FALSE(report.layers.empty());
  for (const LayerReport& lr : report.layers) {
    EXPECT_FALSE(lr.name.empty());
    EXPECT_FALSE(lr.probed);
    EXPECT_FALSE(lr.error.computed);
  }
  EXPECT_LT(report.analog_accuracy, 0.0);
}

// Saturation taxonomy on hand-built inputs against a tiny matrix.
// With healthy comparators every column fires inside the slice (the
// codec reserves comp_stage of headroom), so silence is provoked the
// way it happens on real hardware: a comparator offset larger than the
// remaining ramp reach censors the column.
TEST(ProbeStats, OffsetBeyondRampReachCountsColumnsAsSilent) {
  resipe_core::EngineConfig cfg;
  cfg.circuit.comparator_offset = cfg.circuit.v_s;  // past the ramp top
  Rng rng(3);
  const std::vector<double> w{0.5, 0.3, -0.2, 0.4};  // 2x2
  const std::vector<double> b(2, 0.0);
  const resipe_core::ProgrammedMatrix pm(cfg, w, b, 2, 2, rng);

  resipe_core::ProgrammedMatrix::ProbeStats stats(
      cfg.introspect.spike_time_bins);
  std::vector<double> y(2, 0.0);
  pm.forward_probed(std::vector<double>{1.0, 0.5}, y, stats);

  EXPECT_EQ(stats.vectors, 1u);
  EXPECT_GT(stats.no_spike, 0u);
  EXPECT_EQ(stats.spikes, 0u);
  EXPECT_EQ(stats.inputs_clamped, 0u);
}

// Small inputs arrive early on the GD ramp and fire their columns in
// the first clock period: the pinned-at-start counter must see them.
TEST(ProbeStats, EarlyFiringColumnsCountAsPinnedAtStart) {
  resipe_core::EngineConfig cfg;
  Rng rng(3);
  const std::vector<double> w{0.5, 0.3, -0.2, 0.4};
  const std::vector<double> b(2, 0.0);
  const resipe_core::ProgrammedMatrix pm(cfg, w, b, 2, 2, rng);

  resipe_core::ProgrammedMatrix::ProbeStats stats(
      cfg.introspect.spike_time_bins);
  std::vector<double> y(2, 0.0);
  pm.forward_probed(std::vector<double>{0.02, 0.01}, y, stats);

  EXPECT_GT(stats.spikes, 0u);
  EXPECT_GT(stats.pinned_start, 0u);
  EXPECT_EQ(stats.no_spike, 0u);
}

TEST(ProbeStats, StrongInputFiresEveryColumnAndFillsTheHistogram) {
  resipe_core::EngineConfig cfg;
  Rng rng(3);
  const std::vector<double> w{0.9, 0.8, 0.7, 0.9};
  const std::vector<double> b(2, 0.0);
  const resipe_core::ProgrammedMatrix pm(cfg, w, b, 2, 2, rng);

  resipe_core::ProgrammedMatrix::ProbeStats stats(
      cfg.introspect.spike_time_bins);
  std::vector<double> y(2, 0.0);
  pm.forward_probed(std::vector<double>{1.0, 1.0}, y, stats);

  EXPECT_GT(stats.spikes, 0u);
  const std::uint64_t hist_mass = std::accumulate(
      stats.spike_time_hist.begin(), stats.spike_time_hist.end(),
      std::uint64_t{0});
  EXPECT_EQ(hist_mass, stats.spikes);
}

TEST(ProbeStats, OverRangeInputCountsClampsAndMatchesForwardExactly) {
  resipe_core::EngineConfig cfg;
  Rng rng(3);
  const std::vector<double> w{0.5, 0.3, -0.2, 0.4};
  const std::vector<double> b{0.1, -0.1};
  resipe_core::ProgrammedMatrix pm(cfg, w, b, 2, 2, rng);
  pm.set_input_scale(1.0);

  const std::vector<double> x{1.7, -0.4};  // both outside [0, 1]
  std::vector<double> y_plain(2, 0.0), y_probed(2, 0.0);
  pm.forward(x, y_plain);
  resipe_core::ProgrammedMatrix::ProbeStats stats(
      cfg.introspect.spike_time_bins);
  pm.forward_probed(x, y_probed, stats);

  EXPECT_EQ(stats.inputs_clamped, 2u);
  for (std::size_t i = 0; i < y_plain.size(); ++i) {
    EXPECT_EQ(y_probed[i], y_plain[i]);  // bitwise, not approximately
  }
}

TEST(ProbeStats, MergeAccumulatesEveryCounter) {
  resipe_core::ProgrammedMatrix::ProbeStats a(4), c(4);
  a.spikes = 3;
  a.no_spike = 1;
  a.pinned_start = 2;
  a.vectors = 1;
  a.spike_time_hist = {1, 0, 2, 0};
  c.spikes = 2;
  c.inputs_clamped = 5;
  c.vectors = 2;
  c.spike_time_hist = {0, 1, 0, 1};
  a.merge(c);
  EXPECT_EQ(a.spikes, 5u);
  EXPECT_EQ(a.no_spike, 1u);
  EXPECT_EQ(a.pinned_start, 2u);
  EXPECT_EQ(a.inputs_clamped, 5u);
  EXPECT_EQ(a.vectors, 3u);
  EXPECT_EQ(a.spike_time_hist, (std::vector<std::uint64_t>{1, 1, 2, 1}));
}

// Provenance: equal configs hash equal; touching any knob changes the
// hash.  The report itself must be complete whether or not telemetry
// was compiled in (this suite also runs under -DRESIPE_TELEMETRY=OFF).
TEST(Provenance, ConfigHashIsStableAndKnobSensitive) {
  resipe_core::EngineConfig base;
  EXPECT_EQ(engine_config_hash(base), engine_config_hash(base));
  resipe_core::EngineConfig tweaked = base;
  tweaked.device.variation_sigma += 0.01;
  EXPECT_NE(engine_config_hash(base), engine_config_hash(tweaked));
  resipe_core::EngineConfig reseeded = base;
  reseeded.program_seed += 1;
  EXPECT_NE(engine_config_hash(base), engine_config_hash(reseeded));
}

TEST(Provenance, ManifestIsPopulatedRegardlessOfTelemetryBuild) {
  const resipe_core::EngineConfig cfg;
  const Provenance p = collect_provenance(cfg);
  EXPECT_FALSE(p.engine_config_hash.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_FALSE(p.build_type.empty());
  EXPECT_FALSE(p.timestamp.empty());
  EXPECT_GE(p.threads, 1u);
#if defined(RESIPE_TELEMETRY_DISABLED)
  EXPECT_FALSE(p.telemetry_build);
#else
  EXPECT_TRUE(p.telemetry_build);
#endif
}

}  // namespace
}  // namespace resipe::introspect
