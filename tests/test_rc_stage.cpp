#include "resipe/circuits/rc_stage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "resipe/common/error.hpp"

namespace resipe::circuits {
namespace {

TEST(RcVoltage, StartsAtV0AndConvergesToVInf) {
  EXPECT_DOUBLE_EQ(rc_voltage(0.2, 1.0, 1e-9, 0.0), 0.2);
  EXPECT_NEAR(rc_voltage(0.0, 1.0, 1e-9, 100e-9), 1.0, 1e-12);
}

TEST(RcVoltage, OneTauReaches63Percent) {
  EXPECT_NEAR(rc_voltage(0.0, 1.0, 10e-9, 10e-9), 1.0 - std::exp(-1.0),
              1e-12);
}

TEST(RcVoltage, DischargeToward0) {
  EXPECT_NEAR(rc_voltage(1.0, 0.0, 10e-9, 10e-9), std::exp(-1.0), 1e-12);
}

TEST(RcVoltage, ZeroTauSettlesInstantly) {
  EXPECT_DOUBLE_EQ(rc_voltage(0.0, 0.7, 0.0, 1e-12), 0.7);
}

TEST(RcVoltage, RejectsNegativeInputs) {
  EXPECT_THROW(rc_voltage(0, 1, -1.0, 0), Error);
  EXPECT_THROW(rc_voltage(0, 1, 1.0, -1e-9), Error);
}

TEST(RcTimeToReach, InverseOfRcVoltage) {
  const double tau = 10e-9;
  for (double t : {1e-9, 5e-9, 20e-9, 50e-9}) {
    const double v = rc_voltage(0.0, 1.0, tau, t);
    EXPECT_NEAR(rc_time_to_reach(0.0, 1.0, tau, v), t, 1e-18);
  }
}

TEST(RcTimeToReach, UnreachableTargetIsInfinite) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(rc_time_to_reach(0.0, 1.0, 10e-9, 1.0), inf);
  EXPECT_EQ(rc_time_to_reach(0.0, 1.0, 10e-9, 1.5), inf);
  EXPECT_EQ(rc_time_to_reach(0.0, 1.0, 10e-9, -0.1), inf);
}

TEST(RcTimeToReach, AtStartIsZero) {
  EXPECT_DOUBLE_EQ(rc_time_to_reach(0.3, 1.0, 10e-9, 0.3), 0.0);
}

TEST(RcTimeToReach, FlatDriveNeverMoves) {
  EXPECT_EQ(rc_time_to_reach(0.5, 0.5, 10e-9, 0.7),
            std::numeric_limits<double>::infinity());
}

TEST(RcSourceEnergy, MatchesQTimesV) {
  // C = 100 fF charged to 0.5 V from a 1 V source: Q*Vs = 50 fJ.
  EXPECT_NEAR(rc_source_energy(100e-15, 1.0, 0.5), 50e-15, 1e-20);
}

TEST(CapacitorEnergy, HalfCVSquared) {
  EXPECT_NEAR(capacitor_energy(100e-15, 1.0), 50e-15, 1e-20);
  EXPECT_DOUBLE_EQ(capacitor_energy(100e-15, 0.0), 0.0);
}

TEST(RcVoltageLinear, MatchesExactForSmallT) {
  const double tau = 100e-9;
  for (double t : {0.1e-9, 0.5e-9, 1e-9}) {
    const double exact = rc_voltage(0.0, 1.0, tau, t);
    const double lin = rc_voltage_linear(1.0, tau, t);
    EXPECT_NEAR(lin, exact, 1e-4);
    EXPECT_GE(lin, exact);  // the linearization always overestimates
  }
}

TEST(RcVoltageLinear, RejectsZeroTau) {
  EXPECT_THROW(rc_voltage_linear(1.0, 0.0, 1e-9), Error);
}

}  // namespace
}  // namespace resipe::circuits
