#include "resipe/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "resipe/common/error.hpp"
#include "resipe/common/stats.hpp"

namespace resipe {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(17);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.normal(2.0, 3.0);
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 2.0, 0.08);
  EXPECT_NEAR(s.stddev, 3.0, 0.08);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
  EXPECT_THROW(rng.bernoulli(-0.1), Error);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(37);
  const auto p = rng.permutation(100);
  ASSERT_EQ(p.size(), 100u);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(37);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p1 = rng.permutation(1);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0], 0u);
}

TEST(Rng, WorksWithStdShuffleInterface) {
  Rng rng(41);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ull);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace resipe
