// Differential battery for the event-driven execution engine.
//
// The contract under test is absolute: with EngineConfig::events
// enabled, every logit is BIT-identical to the dense reference — same
// model, same input, any thread count, either kernel path.  So almost
// every test here compares raw double bit patterns (memcmp / 0-ULP),
// not tolerances.
#include "resipe/resipe/events/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/simd.hpp"
#include "resipe/introspect/inspect.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/resipe/events/config.hpp"
#include "resipe/resipe/events/executor.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/network.hpp"
#include "testing/approx.hpp"

namespace resipe::resipe_core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool bit_identical(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.same_shape(b) && bit_identical(a.data(), b.data());
}

struct ThreadGuard {
  ~ThreadGuard() { set_default_threads(0); }
};

// --- EventQueue semantics ----------------------------------------------

TEST(EventQueue, CarriesSpikeMatchesCodecSemantics) {
  const double slice = 100e-9;
  EXPECT_TRUE(events::EventQueue::carries_spike(1e-9, slice));
  EXPECT_TRUE(events::EventQueue::carries_spike(slice, slice));  // boundary
  // Value 0 encodes to t = 0: the wordline never leaves 0 V.
  EXPECT_FALSE(events::EventQueue::carries_spike(0.0, slice));
  EXPECT_FALSE(events::EventQueue::carries_spike(-0.0, slice));
  // Silent line, garbage, and beyond-slice spikes are all inactive.
  EXPECT_FALSE(events::EventQueue::carries_spike(FastMvm::kNoSpike, slice));
  EXPECT_FALSE(events::EventQueue::carries_spike(kInf, slice));
  EXPECT_FALSE(events::EventQueue::carries_spike(kNaN, slice));
  EXPECT_FALSE(events::EventQueue::carries_spike(-3e-9, slice));
  EXPECT_FALSE(events::EventQueue::carries_spike(slice + 1e-12, slice));
}

TEST(EventQueue, BuildFiltersAndIndexes) {
  events::EventQueue q;
  const double slice = 100e-9;
  // rows:        0      1     2     3      4      5
  q.build(std::vector<double>{30e-9, 0.0, kInf, 10e-9, kNaN, 200e-9}, slice);
  EXPECT_EQ(q.total_rows(), 6u);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.empty());
  RESIPE_EXPECT_ULP(q.activity(), 2.0 / 6.0, 0);
  // Dispatch order: ascending time.
  EXPECT_EQ(q.events()[0].row, 3u);
  EXPECT_EQ(q.events()[1].row, 0u);
  // Row index: ascending row.
  ASSERT_EQ(q.active_rows().size(), 2u);
  EXPECT_EQ(q.active_rows()[0], 0u);
  EXPECT_EQ(q.active_rows()[1], 3u);
}

TEST(EventQueue, SimultaneousSpikesTieBreakOnRow) {
  events::EventQueue q;
  q.build(std::vector<double>{50e-9, 50e-9, 10e-9, 50e-9}, 100e-9);
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.events()[0].row, 2u);  // earliest time first
  // Equal times replay in ascending row order, deterministically.
  EXPECT_EQ(q.events()[1].row, 0u);
  EXPECT_EQ(q.events()[2].row, 1u);
  EXPECT_EQ(q.events()[3].row, 3u);
}

TEST(EventQueue, RowsInRangeComputesWakeSets) {
  events::EventQueue q;
  std::vector<double> t(64, 0.0);
  t[3] = 10e-9;
  t[31] = 20e-9;
  t[32] = 30e-9;
  t[60] = 40e-9;
  q.build(t, 100e-9);
  const auto lo = q.rows_in_range(0, 32);
  ASSERT_EQ(lo.size(), 2u);
  EXPECT_EQ(lo[0], 3u);
  EXPECT_EQ(lo[1], 31u);
  const auto hi = q.rows_in_range(32, 32);
  ASSERT_EQ(hi.size(), 2u);
  EXPECT_EQ(hi[0], 32u);
  EXPECT_EQ(hi[1], 60u);
  EXPECT_TRUE(q.any_in_range(60, 4));
  EXPECT_FALSE(q.any_in_range(4, 27));  // gap between the spikes
  EXPECT_TRUE(q.rows_in_range(33, 27).empty());
}

TEST(EventQueue, AllSilentAndEmptyInputs) {
  events::EventQueue q;
  q.build(std::vector<double>{0.0, kInf, kNaN, -0.0}, 100e-9);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.activity(), 0.0);
  EXPECT_FALSE(q.any_in_range(0, 4));
  q.build(std::span<const double>{}, 100e-9);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_rows(), 0u);
  EXPECT_EQ(q.activity(), 0.0);
}

// --- FastMvm sparse kernels --------------------------------------------

class SparseKernels : public ::testing::Test {
 protected:
  SparseKernels() : rng_(77) {
    g_.resize(kRows * kCols);
    for (double& g : g_) g = rng_.uniform(1e-6, 30e-6);
  }

  // Random input with the requested fraction of active rows; the rest
  // are split between t=0 and kNoSpike (both flavors of silent).
  std::vector<double> make_input(double activity) {
    std::vector<double> t(kRows);
    for (double& v : t) {
      if (rng_.uniform(0.0, 1.0) < activity) {
        v = rng_.uniform(1e-9, 99e-9);
      } else {
        v = rng_.uniform(0.0, 1.0) < 0.5 ? 0.0 : FastMvm::kNoSpike;
      }
    }
    return t;
  }

  static std::vector<std::uint32_t> wake_set(std::span<const double> t,
                                             double slice) {
    std::vector<std::uint32_t> rows;
    for (std::size_t r = 0; r < t.size(); ++r) {
      if (events::EventQueue::carries_spike(t[r], slice)) {
        rows.push_back(static_cast<std::uint32_t>(r));
      }
    }
    return rows;
  }

  static constexpr std::size_t kRows = 37;  // deliberately not lane-aligned
  static constexpr std::size_t kCols = 13;
  Rng rng_;
  std::vector<double> g_;
};

TEST_F(SparseKernels, SparseMatchesDenseBitwiseSimd) {
  if (!simd::enabled()) GTEST_SKIP() << "scalar build";
  const circuits::CircuitParams p;
  const FastMvm mvm(p, kRows, kCols, g_);
  for (double activity : {0.0, 0.05, 0.3, 0.7, 1.0}) {
    const auto t = make_input(activity);
    const auto rows = wake_set(t, p.slice_length);
    std::vector<double> dense(kCols), sparse(kCols);
    mvm.mvm_times(t, dense);
    mvm.mvm_times_sparse(t, rows, sparse);
    EXPECT_TRUE(bit_identical(dense, sparse)) << "activity " << activity;
  }
}

TEST_F(SparseKernels, SparseMatchesDenseBitwiseScalar) {
  simd::ForceScalarGuard guard;
  const circuits::CircuitParams p;
  const FastMvm mvm(p, kRows, kCols, g_);
  for (double activity : {0.0, 0.1, 0.5, 1.0}) {
    const auto t = make_input(activity);
    const auto rows = wake_set(t, p.slice_length);
    std::vector<double> dense(kCols), sparse(kCols);
    mvm.mvm_times(t, dense);
    mvm.mvm_times_sparse(t, rows, sparse);
    EXPECT_TRUE(bit_identical(dense, sparse)) << "activity " << activity;
  }
}

TEST_F(SparseKernels, IdleMatchesDenseAllSilentBitwise) {
  const circuits::CircuitParams p;
  const FastMvm mvm(p, kRows, kCols, g_);
  // Mixed silent encodings: t=0 and kNoSpike give the same 0 V drive.
  std::vector<double> t(kRows, 0.0);
  for (std::size_t r = 0; r < kRows; r += 3) t[r] = FastMvm::kNoSpike;
  std::vector<double> dense(kCols), idle(kCols);
  mvm.mvm_times(t, dense);
  mvm.idle_times(idle);
  EXPECT_TRUE(bit_identical(dense, idle));
  {
    simd::ForceScalarGuard guard;
    std::vector<double> dense_s(kCols), idle_s(kCols);
    mvm.mvm_times(t, dense_s);
    mvm.idle_times(idle_s);
    EXPECT_TRUE(bit_identical(dense_s, idle_s));
  }
}

TEST_F(SparseKernels, SparseRejectsBadWakeSets) {
  const circuits::CircuitParams p;
  const FastMvm mvm(p, kRows, kCols, g_);
  std::vector<double> t(kRows, 10e-9), out(kCols);
  EXPECT_THROW(
      mvm.mvm_times_sparse(t, std::vector<std::uint32_t>{kRows}, out),
      Error);  // row index out of range
  EXPECT_THROW(mvm.mvm_times_sparse(std::vector<double>{1e-9},
                                    std::vector<std::uint32_t>{}, out),
               Error);  // input size mismatch
}

TEST_F(SparseKernels, ExecutorWakesAndSleepsGroups) {
  const circuits::CircuitParams p;
  const FastMvm mvm(p, kRows, kCols, g_);
  events::EventQueue q;
  std::vector<double> t(2 * kRows, 0.0);  // two stacked row groups
  t[4] = 20e-9;                           // one event, in group 0 only
  q.build(t, p.slice_length);

  events::EventExecutor exec;
  events::ExecStats stats;
  std::vector<double> out0(kCols), out1(kCols);
  exec.run_group(mvm, q, 0, std::span<const double>(t.data(), kRows), out0,
                 stats);
  exec.run_group(mvm, q, kRows,
                 std::span<const double>(t.data() + kRows, kRows), out1,
                 stats);
  EXPECT_EQ(stats.groups_woken, 1u);
  EXPECT_EQ(stats.groups_skipped, 1u);
  EXPECT_EQ(stats.events_delivered, 1u);
  EXPECT_EQ(stats.rows_skipped, 2 * kRows - 1);

  // Woken group == dense on its staged input; sleeping group == idle.
  std::vector<double> dense0(kCols), idle(kCols);
  mvm.mvm_times(std::span<const double>(t.data(), kRows), dense0);
  mvm.idle_times(idle);
  EXPECT_TRUE(bit_identical(out0, dense0));
  EXPECT_TRUE(bit_identical(out1, idle));

  events::ExecStats more;
  more.groups_woken = 2;
  more.rows_skipped = 5;
  stats.merge(more);
  EXPECT_EQ(stats.groups_woken, 3u);
  EXPECT_EQ(stats.rows_skipped, 2 * kRows - 1 + 5);
}

// --- ProgrammedMatrix / ResipeNetwork bit-identity ---------------------

std::vector<double> random_batch(std::size_t n, std::size_t dim, Rng& rng,
                                 double sparsity) {
  std::vector<double> x(n * dim, 0.0);
  for (double& v : x) {
    if (rng.uniform(0.0, 1.0) >= sparsity) v = rng.uniform(0.0, 1.0);
  }
  return x;
}

class MatrixEventPath : public ::testing::Test {
 protected:
  static ProgrammedMatrix build(const EngineConfig& cfg, Rng& rng) {
    std::vector<double> w(kIn * kOut);
    std::vector<double> b(kOut);
    for (double& v : w) v = rng.uniform(-0.5, 0.5);
    for (double& v : b) v = rng.uniform(-0.2, 0.2);
    return ProgrammedMatrix(cfg, w, b, kIn, kOut, rng);
  }

  static constexpr std::size_t kIn = 70;  // 3 row blocks at 32-row tiles
  static constexpr std::size_t kOut = 20;
};

TEST_F(MatrixEventPath, ForwardBitIdenticalAcrossConfigs) {
  for (const bool quantize : {true, false}) {
    EngineConfig dense_cfg;
    dense_cfg.tile_rows = 32;
    dense_cfg.tile_cols = 32;
    dense_cfg.quantize_spikes = quantize;
    EngineConfig event_cfg = dense_cfg;
    event_cfg.events.enabled = true;

    // Identical seeds => identical programmed conductances.
    Rng rng_a(11), rng_b(11), rng_x(12);
    const ProgrammedMatrix pm_dense = build(dense_cfg, rng_a);
    const ProgrammedMatrix pm_event = build(event_cfg, rng_b);
    for (double sparsity : {0.0, 0.5, 0.95, 1.0}) {
      const auto x = random_batch(1, kIn, rng_x, sparsity);
      std::vector<double> y_dense(kOut), y_event(kOut);
      pm_dense.forward(x, y_dense);
      pm_event.forward(x, y_event);
      EXPECT_TRUE(bit_identical(y_dense, y_event))
          << "quantize " << quantize << " sparsity " << sparsity;
    }
  }
}

TEST_F(MatrixEventPath, ForwardBatchBitIdenticalIncludingEdgeSizes) {
  EngineConfig dense_cfg;
  dense_cfg.tile_rows = 32;
  dense_cfg.tile_cols = 32;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  Rng rng_a(21), rng_b(21), rng_x(22);
  const ProgrammedMatrix pm_dense = build(dense_cfg, rng_a);
  const ProgrammedMatrix pm_event = build(event_cfg, rng_b);
  ProgrammedMatrix::BatchWorkspace ws_dense, ws_event;
  for (std::size_t n : {0u, 1u, 7u}) {
    const auto x = random_batch(n, kIn, rng_x, 0.8);
    std::vector<double> y_dense(n * kOut), y_event(n * kOut);
    pm_dense.forward_batch(x, n, y_dense, ws_dense);
    pm_event.forward_batch(x, n, y_event, ws_event);
    EXPECT_TRUE(bit_identical(y_dense, y_event)) << "batch " << n;
  }
}

TEST_F(MatrixEventPath, EventBatchBitIdenticalToEventSingles) {
  EngineConfig cfg;
  cfg.tile_rows = 32;
  cfg.tile_cols = 32;
  cfg.events.enabled = true;
  Rng rng(31), rng_x(32);
  const ProgrammedMatrix pm = build(cfg, rng);
  const std::size_t n = 5;
  const auto x = random_batch(n, kIn, rng_x, 0.7);
  std::vector<double> y_batch(n * kOut), y_single(n * kOut);
  ProgrammedMatrix::BatchWorkspace ws;
  pm.forward_batch(x, n, y_batch, ws);
  for (std::size_t s = 0; s < n; ++s) {
    pm.forward(std::span<const double>(x.data() + s * kIn, kIn),
               std::span<double>(y_single.data() + s * kOut, kOut));
  }
  EXPECT_TRUE(bit_identical(y_batch, y_single));
}

TEST_F(MatrixEventPath, AllSilentInputYieldsExactBias) {
  // Every line silent: events path sleeps every group; the decode must
  // still produce exactly the dense result (which reduces to the bias
  // when the differential columns cancel bitwise).
  EngineConfig dense_cfg = EngineConfig::ideal();
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  Rng rng_a(41), rng_b(41);
  const ProgrammedMatrix pm_dense = build(dense_cfg, rng_a);
  const ProgrammedMatrix pm_event = build(event_cfg, rng_b);
  const std::vector<double> x(kIn, 0.0);
  std::vector<double> y_dense(kOut), y_event(kOut);
  pm_dense.forward(x, y_dense);
  pm_event.forward(x, y_event);
  EXPECT_TRUE(bit_identical(y_dense, y_event));
}

TEST_F(MatrixEventPath, AllSaturatedInputBitIdentical) {
  // Inputs at (and beyond) full scale: every row spikes at the clamp
  // boundary, the densest possible event load.
  EngineConfig dense_cfg;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  Rng rng_a(51), rng_b(51);
  const ProgrammedMatrix pm_dense = build(dense_cfg, rng_a);
  const ProgrammedMatrix pm_event = build(event_cfg, rng_b);
  for (const double level : {1.0, 5.0}) {  // 5.0 clamps to full scale
    const std::vector<double> x(kIn, level);
    std::vector<double> y_dense(kOut), y_event(kOut);
    pm_dense.forward(x, y_dense);
    pm_event.forward(x, y_event);
    EXPECT_TRUE(bit_identical(y_dense, y_event)) << "level " << level;
  }
}

TEST_F(MatrixEventPath, ReliabilityComboBitIdentical) {
  // Fault-aware programming (spare columns, remapped slots) under the
  // event path: the wake/sleep decision must respect slot remapping.
  EngineConfig dense_cfg;
  dense_cfg.tile_rows = 32;
  dense_cfg.tile_cols = 32;
  dense_cfg.reliability.enabled = true;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  Rng rng_a(61), rng_b(61), rng_x(62);
  const ProgrammedMatrix pm_dense = build(dense_cfg, rng_a);
  const ProgrammedMatrix pm_event = build(event_cfg, rng_b);
  for (double sparsity : {0.2, 0.9}) {
    const auto x = random_batch(1, kIn, rng_x, sparsity);
    std::vector<double> y_dense(kOut), y_event(kOut);
    pm_dense.forward(x, y_dense);
    pm_event.forward(x, y_event);
    EXPECT_TRUE(bit_identical(y_dense, y_event)) << "sparsity " << sparsity;
  }
}

TEST(NetworkEventPath, MlpLogitsBitIdenticalAtAnyThreadCount) {
  ThreadGuard restore;
  Rng rng(5);
  nn::Sequential model("event-mlp");
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(16, 12, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(12, 4, rng);
  nn::Tensor calib({8, 1, 4, 4});
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib[i] = rng.uniform(0.0, 1.0);

  EngineConfig dense_cfg;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  const ResipeNetwork hw_dense(model, dense_cfg, calib);
  const ResipeNetwork hw_event(model, event_cfg, calib);

  // ReLU-sparse batch: zero out half the pixels so real layers see
  // genuinely silent rows.
  nn::Tensor batch({6, 1, 4, 4});
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i] = (i % 2 == 0) ? rng.uniform(0.0, 1.0) : 0.0;

  const nn::Tensor ref = hw_dense.forward(batch);
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    const nn::Tensor out = hw_event.forward(batch);
    EXPECT_TRUE(bit_identical(ref, out)) << "threads " << threads;
  }
}

TEST(NetworkEventPath, ZooMlp1LogitsBitIdentical) {
  ThreadGuard restore;
  Rng rng(7);
  nn::Sequential model = nn::build_benchmark(nn::BenchmarkNet::kMlp1, rng);
  nn::Tensor calib({4, 1, 28, 28});
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib[i] = rng.uniform(0.0, 1.0);
  EngineConfig dense_cfg;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  const ResipeNetwork hw_dense(model, dense_cfg, calib);
  const ResipeNetwork hw_event(model, event_cfg, calib);
  nn::Tensor batch({2, 1, 28, 28});
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i] = (i % 3 == 0) ? rng.uniform(0.0, 1.0) : 0.0;  // MNIST-sparse
  const nn::Tensor ref = hw_dense.forward(batch);
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    EXPECT_TRUE(bit_identical(ref, hw_event.forward(batch)))
        << "threads " << threads;
  }
}

TEST(NetworkEventPath, ConvLogitsBitIdentical) {
  ThreadGuard restore;
  Rng rng(6);
  nn::Sequential model("event-cnn");
  model.emplace<nn::Conv2d>(1, 3, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(3 * 3 * 3, 4, rng);
  nn::Tensor calib({4, 1, 6, 6});
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib[i] = rng.uniform(0.0, 1.0);
  EngineConfig dense_cfg;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  const ResipeNetwork hw_dense(model, dense_cfg, calib);
  const ResipeNetwork hw_event(model, event_cfg, calib);
  // A silent input channel region: im2col turns it into contiguous
  // zero rows — the structured sparsity the event path exploits.
  nn::Tensor batch({3, 1, 6, 6});
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i] = (i % 4 == 0) ? rng.uniform(0.0, 1.0) : 0.0;
  const nn::Tensor ref = hw_dense.forward(batch);
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    EXPECT_TRUE(bit_identical(ref, hw_event.forward(batch)))
        << "threads " << threads;
  }
}

// --- config plumbing ---------------------------------------------------

TEST(EventConfig, ValidatesAndStaysOutOfConfigHash) {
  EngineConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.events.enabled = true;
  EXPECT_NO_THROW(cfg.validate());
  // Cannot affect logits => must not churn the provenance hash keying
  // committed bench baselines.
  EngineConfig off;
  EngineConfig on;
  on.events.enabled = true;
  EXPECT_EQ(introspect::engine_config_hash(off),
            introspect::engine_config_hash(on));
}

TEST(EventPerf, WorkRegistryBooksEventKernels) {
  telemetry::set_enabled(true);
  perf::set_accounting_enabled(true);
  perf::WorkRegistry::instance().reset_values();
  EngineConfig cfg;
  cfg.tile_rows = 32;
  cfg.tile_cols = 32;
  cfg.events.enabled = true;
  Rng rng(91);
  std::vector<double> w(70 * 20);
  std::vector<double> b(20, 0.0);
  for (double& v : w) v = rng.uniform(-0.5, 0.5);
  const ProgrammedMatrix pm(cfg, w, b, 70, 20, rng);
  std::vector<double> x(70, 0.0);
  x[0] = 0.8;  // one active row: most groups sleep
  std::vector<double> y(20);
  pm.forward(x, y);
  std::uint64_t build_calls = 0, sparse_calls = 0, idle_calls = 0;
  std::uint64_t resolve_calls = 0;
  for (const auto& k : perf::WorkRegistry::instance().snapshot()) {
    if (k.name == "resipe_core.events.queue_build") build_calls = k.calls;
    if (k.name == "resipe_core.events.mvm_times_sparse")
      sparse_calls = k.calls;
    if (k.name == "resipe_core.events.idle_times") idle_calls = k.calls;
    if (k.name == "resipe_core.events.idle_resolve")
      resolve_calls = k.calls;
  }
  EXPECT_EQ(build_calls, 1u);
  EXPECT_GE(sparse_calls, 1u);    // the block owning row 0 wakes
  EXPECT_GE(idle_calls, 1u);      // idle-recovery baking at programming
  EXPECT_GE(resolve_calls, 1u);   // the other row blocks sleep
  perf::set_accounting_enabled(false);
  telemetry::set_enabled(false);
}

}  // namespace
}  // namespace resipe::resipe_core
