#include "resipe/common/error.hpp"

#include <gtest/gtest.h>

namespace resipe {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    const int x = 3;
    RESIPE_REQUIRE(x > 5, "x was " << x);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("x > 5"), std::string::npos);
    EXPECT_NE(what.find("x was 3"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInvariant) {
  try {
    RESIPE_ASSERT(false, "broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant"), std::string::npos);
    EXPECT_NE(what.find("broken"), std::string::npos);
  }
}

TEST(Error, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(RESIPE_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(RESIPE_ASSERT(1 + 1 == 2, "fine"));
}

TEST(Error, IsARuntimeError) {
  EXPECT_THROW(
      { throw Error("x"); }, std::runtime_error);
}

}  // namespace
}  // namespace resipe
