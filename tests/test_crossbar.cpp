#include "resipe/crossbar/crossbar.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/crossbar/ir_drop.hpp"

namespace resipe::crossbar {
namespace {

device::ReramSpec noiseless_spec() {
  device::ReramSpec spec = device::ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.variation_sigma = 0.0;
  spec.transistor_r_on = 0.0;
  spec.levels = 1 << 14;
  return spec;
}

TEST(Crossbar, ConstructionAndBounds) {
  const device::ReramSpec spec = noiseless_spec();
  Crossbar xbar(4, 3, spec);
  EXPECT_EQ(xbar.rows(), 4u);
  EXPECT_EQ(xbar.cols(), 3u);
  EXPECT_THROW(xbar.g(4, 0), Error);
  EXPECT_THROW(xbar.g(0, 3), Error);
  EXPECT_THROW(Crossbar(0, 3, spec), Error);
}

TEST(Crossbar, ProgramMatrixSizeChecked) {
  Crossbar xbar(2, 2, noiseless_spec());
  Rng rng(1);
  const std::vector<double> wrong(3, 1e-5);
  EXPECT_THROW(xbar.program(wrong, rng), Error);
}

TEST(Crossbar, ColumnDriveMatchesHandComputation) {
  Crossbar xbar(2, 1, noiseless_spec());
  Rng rng(1);
  // G1 = 20 uS (50 k), G2 = 5 uS (200 k).
  xbar.program_cell(0, 0, 20e-6, rng);
  xbar.program_cell(1, 0, 5e-6, rng);
  const std::vector<double> v{0.8, 0.2};
  const auto drive = xbar.column_drive(0, v);
  EXPECT_NEAR(drive.g_total, 25e-6, 2e-8);
  // Veq = (0.8*20 + 0.2*5) / 25 = 0.68.
  EXPECT_NEAR(drive.v_eq, 0.68, 1e-4);
}

TEST(Crossbar, GroundedRowStillLoadsTheColumn) {
  Crossbar xbar(2, 1, noiseless_spec());
  Rng rng(1);
  xbar.program_cell(0, 0, 20e-6, rng);
  xbar.program_cell(1, 0, 20e-6, rng);
  const std::vector<double> v{1.0, 0.0};
  const auto drive = xbar.column_drive(0, v);
  // The grounded row halves the equivalent voltage.
  EXPECT_NEAR(drive.v_eq, 0.5, 1e-4);
  EXPECT_NEAR(drive.g_total, 40e-6, 2e-8);
}

TEST(Crossbar, IdealMvmMatchesDotProduct) {
  Crossbar xbar(3, 2, noiseless_spec());
  Rng rng(1);
  const std::vector<double> g{1e-5, 2e-5, 3e-5, 4e-5, 5e-5, 6e-5};
  xbar.program(g, rng);
  const std::vector<double> v{1.0, 0.5, 0.25};
  const auto y = xbar.ideal_mvm(v);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_NEAR(y[0], 1.0 * 1e-5 + 0.5 * 3e-5 + 0.25 * 5e-5, 2e-8);
  EXPECT_NEAR(y[1], 1.0 * 2e-5 + 0.5 * 4e-5 + 0.25 * 6e-5, 2e-8);
}

TEST(Crossbar, ColumnTotalGSumsCells) {
  Crossbar xbar(3, 1, noiseless_spec());
  Rng rng(1);
  for (std::size_t r = 0; r < 3; ++r) xbar.program_cell(r, 0, 1e-5, rng);
  EXPECT_NEAR(xbar.column_total_g(0), 3e-5, 2e-8);
}

TEST(Crossbar, ComputeEnergyZeroForUniformDrive) {
  Crossbar xbar(2, 1, noiseless_spec());
  Rng rng(1);
  xbar.program_cell(0, 0, 1e-5, rng);
  xbar.program_cell(1, 0, 1e-5, rng);
  const std::vector<double> v{0.5, 0.5};
  // Equal wordline voltages -> Veq equals them -> no static mismatch.
  EXPECT_NEAR(xbar.compute_energy(v, 1e-9), 0.0, 1e-24);
  const std::vector<double> v2{1.0, 0.0};
  EXPECT_GT(xbar.compute_energy(v2, 1e-9), 0.0);
}

TEST(Crossbar, StaticReadEnergyMatchesGV2T) {
  Crossbar xbar(1, 1, noiseless_spec());
  Rng rng(1);
  xbar.program_cell(0, 0, 1e-5, rng);
  const std::vector<double> v{0.5};
  // P = G V^2 = 1e-5 * 0.25 = 2.5e-6 W over 100 ns = 2.5e-13 J.
  EXPECT_NEAR(xbar.static_read_energy(v, 100e-9), 2.5e-13, 1e-16);
}

TEST(Crossbar, NoisyDrivesDifferFromCleanOnesWithNoise) {
  device::ReramSpec spec = noiseless_spec();
  spec.read_noise_sigma = 0.05;
  Crossbar xbar(4, 2, spec);
  Rng rng(1);
  std::vector<double> g(8, 1e-5);
  xbar.program(g, rng);
  const std::vector<double> v{1.0, 0.8, 0.6, 0.4};
  const auto clean = xbar.drives(v);
  Rng noise(2);
  const auto noisy = xbar.drives_noisy(v, noise);
  EXPECT_NE(clean[0].g_total, noisy[0].g_total);
}

TEST(Crossbar, AreaScalesWithCellCount) {
  const device::ReramSpec spec = noiseless_spec();
  Crossbar small(8, 8, spec);
  Crossbar big(16, 16, spec);
  EXPECT_NEAR(big.area() / small.area(), 4.0, 1e-12);
}

TEST(Crossbar, MakeRepresentativeIsDeterministic) {
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  const Crossbar a = make_representative(8, 8, spec, 7);
  const Crossbar b = make_representative(8, 8, spec, 7);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_DOUBLE_EQ(a.g(r, c), b.g(r, c));
    }
  }
}

TEST(IrDrop, AttenuationGrowsWithDistance) {
  const WireModel wires;
  const double g = 20e-6;
  const double g00 = wires.effective_g(g, 0, 0);
  const double g77 = wires.effective_g(g, 7, 7);
  EXPECT_DOUBLE_EQ(g00, g);  // near corner sees no wire
  EXPECT_LT(g77, g00);
}

TEST(IrDrop, DrivesAreWeakerThanIdeal) {
  const device::ReramSpec spec = noiseless_spec();
  Crossbar xbar(8, 4, spec);
  Rng rng(1);
  std::vector<double> g(32, 2e-5);
  xbar.program(g, rng);
  const std::vector<double> v(8, 1.0);
  const WireModel wires{10.0, 10.0};
  const auto ideal = xbar.drives(v);
  const auto degraded = drives_with_ir_drop(xbar, v, wires);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_LT(degraded[c].g_total, ideal[c].g_total);
  }
}

TEST(IrDrop, WorstCaseAttenuationFor32x32IsSmall) {
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  const Crossbar xbar(32, 32, spec);
  const WireModel wires;  // 2.5 ohm/segment
  // 62 segments * 2.5 ohm = 155 ohm against >= 50 k cells: < 1%.
  EXPECT_LT(worst_case_attenuation(xbar, wires), 0.01);
}

}  // namespace
}  // namespace resipe::crossbar
