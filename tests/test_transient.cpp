// Cross-validation: the closed-form behavioral solver vs brute-force
// RK4 time stepping.  If these two independent implementations agree,
// the "closed form == what SPICE would compute" claim in DESIGN.md is
// backed by evidence inside the repo.
#include "resipe/circuits/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/circuits/rc_stage.hpp"
#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"

namespace resipe::circuits {
namespace {

TEST(IntegrateOde, MatchesExponentialDecay) {
  // dv/dt = -v / tau from v0 = 1: v(t) = exp(-t/tau).
  const double tau = 10e-9;
  const double v = integrate_ode(
      [tau](double, double x) { return -x / tau; }, 1.0, 0.0, 25e-9, 2000);
  EXPECT_NEAR(v, std::exp(-2.5), 1e-9);
}

TEST(IntegrateOde, MatchesRcCharge) {
  const double tau = 10e-9;
  const double v = integrate_ode(
      [tau](double, double x) { return (1.0 - x) / tau; }, 0.0, 0.0, 30e-9,
      2000);
  EXPECT_NEAR(v, rc_voltage(0.0, 1.0, tau, 30e-9), 1e-9);
}

TEST(IntegrateOde, HandlesTimeDependentDrive) {
  // dv/dt = 2t: v(T) = T^2.
  const double v = integrate_ode([](double t, double) { return 2.0 * t; },
                                 0.0, 0.0, 3.0, 100);
  EXPECT_NEAR(v, 9.0, 1e-9);
}

class TransientVsClosedForm
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransientVsClosedForm, FullMacAgrees) {
  const CircuitParams params;  // paper operating point, exact model
  Rng rng(GetParam());
  constexpr std::size_t kRows = 8;

  std::vector<double> g(kRows);
  for (double& v : g) v = rng.uniform(1e-6, 20e-6);
  const resipe_core::SpikeCodec codec(params);
  std::vector<Spike> inputs(kRows);
  std::vector<double> t_in(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    inputs[i] = codec.encode(rng.uniform(0.0, 1.0));
    t_in[i] = inputs[i].arrival_time;
  }

  // Closed form.
  resipe_core::FastMvm fast(params, kRows, 1, g);
  std::vector<double> t_closed(1, 0.0);
  fast.mvm_times(t_in, t_closed);

  // Numerical.
  const auto numeric = transient_mac(params, g, inputs);

  // Wordline voltages agree with the exact ramp.
  for (std::size_t i = 0; i < kRows; ++i) {
    EXPECT_NEAR(numeric.v_wordline[i], params.ramp_voltage(t_in[i]), 1e-6)
        << "wordline " << i;
  }
  // The output spike time agrees to integration tolerance (< 20 ps on
  // a 100 ns slice).
  ASSERT_TRUE(numeric.output.valid());
  ASSERT_NE(t_closed[0], resipe_core::FastMvm::kNoSpike);
  EXPECT_NEAR(numeric.output.arrival_time, t_closed[0], 20e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomMacs, TransientVsClosedForm,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(Transient, SilentLinesBehaveLikeGroundedRows) {
  const CircuitParams params;
  const std::vector<double> g{10e-6, 10e-6};
  const std::vector<Spike> with_silent{Spike::at(40e-9), Spike::none()};
  const auto r = transient_mac(params, g, with_silent, 4000);
  // Veq is halved by the grounded row; the output must exist and the
  // sampled voltage must be well below the single-row value.
  const auto solo = transient_mac(
      params, std::vector<double>{10e-6},
      std::vector<Spike>{Spike::at(40e-9)}, 4000);
  EXPECT_LT(r.v_cog, solo.v_cog);
  EXPECT_TRUE(r.output.valid());
}

TEST(Transient, ZeroThresholdFiresImmediately) {
  const CircuitParams params;
  const std::vector<double> g{10e-6};
  const std::vector<Spike> silent{Spike::none()};
  const auto r = transient_mac(params, g, silent, 1000);
  ASSERT_TRUE(r.output.valid());
  EXPECT_DOUBLE_EQ(r.output.arrival_time, params.comparator_delay);
}

TEST(Transient, RejectsLinearModel) {
  CircuitParams params;
  params.model = TransferModel::kLinear;
  const std::vector<double> g{1e-6};
  const std::vector<Spike> in{Spike::at(1e-9)};
  EXPECT_THROW(transient_mac(params, g, in), resipe::Error);
}

}  // namespace
}  // namespace resipe::circuits
