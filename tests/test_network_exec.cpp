#include "resipe/resipe/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/nn/zoo.hpp"

namespace resipe::resipe_core {
namespace {

TEST(EngineConfig, IdealPresetIsNoiseless) {
  const EngineConfig cfg = EngineConfig::ideal();
  EXPECT_EQ(cfg.circuit.model, circuits::TransferModel::kLinear);
  EXPECT_FALSE(cfg.quantize_spikes);
  EXPECT_DOUBLE_EQ(cfg.device.variation_sigma, 0.0);
  EXPECT_DOUBLE_EQ(cfg.device.transistor_r_on, 0.0);
}

TEST(ProgrammedMatrix, IdealConfigReproducesTheMatmul) {
  const auto score = eval::mvm_fidelity(EngineConfig::ideal());
  EXPECT_LT(score.rmse, 1e-3);
  EXPECT_LT(score.worst, 5e-3);
}

TEST(ProgrammedMatrix, PaperConfigStaysWithinFewPercent) {
  const auto score = eval::mvm_fidelity(EngineConfig{});
  // Device quantization (32 levels) + write verify + clocked spikes.
  EXPECT_LT(score.rmse, 0.05);
}

TEST(ProgrammedMatrix, VariationDegradesFidelityMonotonically) {
  EngineConfig low;
  low.device.variation_sigma = 0.02;
  EngineConfig high;
  high.device.variation_sigma = 0.20;
  const auto s_low = eval::mvm_fidelity(low);
  const auto s_high = eval::mvm_fidelity(high);
  EXPECT_GT(s_high.rmse, s_low.rmse);
}

TEST(ProgrammedMatrix, TileCountMatchesBlocking) {
  EngineConfig cfg;
  cfg.tile_rows = 32;
  cfg.tile_cols = 32;
  Rng rng(1);
  // 70 x 20 logical, differential -> 40 physical columns.
  const std::vector<double> w(70 * 20, 0.1);
  const std::vector<double> b(20, 0.0);
  const ProgrammedMatrix pm(cfg, w, b, 70, 20, rng);
  // ceil(70/32) = 3 row blocks x ceil(40/32) = 2 column blocks.
  EXPECT_EQ(pm.tile_count(), 6u);
  EXPECT_EQ(pm.mvms_per_forward(), 3u);
  EXPECT_EQ(pm.in_features(), 70u);
  EXPECT_EQ(pm.out_features(), 20u);
}

TEST(ProgrammedMatrix, BiasIsApplied) {
  EngineConfig cfg = EngineConfig::ideal();
  Rng rng(1);
  const std::vector<double> w(4, 0.0);  // zero weights
  const std::vector<double> b{1.5, -2.5};
  const ProgrammedMatrix pm(cfg, w, b, 2, 2, rng);
  std::vector<double> y(2, 0.0);
  pm.forward(std::vector<double>{0.7, 0.3}, y);
  EXPECT_NEAR(y[0], 1.5, 1e-6);
  EXPECT_NEAR(y[1], -2.5, 1e-6);
}

TEST(ProgrammedMatrix, InputScaleNormalizesActivations) {
  EngineConfig cfg = EngineConfig::ideal();
  Rng rng(1);
  const std::vector<double> w{1.0};
  const std::vector<double> b{0.0};
  ProgrammedMatrix pm(cfg, w, b, 1, 1, rng);
  pm.set_input_scale(10.0);  // inputs up to 10
  std::vector<double> y(1, 0.0);
  pm.forward(std::vector<double>{5.0}, y);
  EXPECT_NEAR(y[0], 5.0, 0.05);
  // Inputs beyond the scale clamp — the hardware range is hard.
  pm.forward(std::vector<double>{25.0}, y);
  EXPECT_NEAR(y[0], 10.0, 0.1);
}

TEST(ProgrammedMatrix, RejectsBadShapes) {
  EngineConfig cfg;
  Rng rng(1);
  const std::vector<double> w(6, 0.1);
  const std::vector<double> b(3, 0.0);
  EXPECT_THROW(ProgrammedMatrix(cfg, w, b, 3, 3, rng), Error);
  const ProgrammedMatrix pm(cfg, w, b, 2, 3, rng);
  std::vector<double> y(2, 0.0);
  EXPECT_THROW(pm.forward(std::vector<double>{1.0, 2.0}, y), Error);
  EXPECT_THROW(ProgrammedMatrix(cfg, w, b, 2, 2, rng), Error);
}

TEST(ProgrammedMatrix, AlphaSetterValidates) {
  EngineConfig cfg;
  Rng rng(1);
  const std::vector<double> w(4, 0.1);
  const std::vector<double> b(2, 0.0);
  ProgrammedMatrix pm(cfg, w, b, 2, 2, rng);
  EXPECT_THROW(pm.set_time_scale(0.0), Error);
  EXPECT_THROW(pm.set_time_scale(1.5), Error);
  EXPECT_THROW(pm.set_input_scale(-1.0), Error);
  EXPECT_NO_THROW(pm.set_time_scale(0.5));
}

TEST(ProgrammedMatrix, WireIrDropIsTinyAtPaperGeometry) {
  EngineConfig plain;
  EngineConfig wired;
  wired.model_wire_ir_drop = true;
  const auto s_plain = eval::mvm_fidelity(plain);
  const auto s_wired = eval::mvm_fidelity(wired);
  // 2.5 ohm per segment against >= 50 k cells barely registers.
  EXPECT_NEAR(s_wired.rmse, s_plain.rmse, 0.01);
}

TEST(ProgrammedMatrix, RetentionDriftAddsGainError) {
  EngineConfig fresh;
  EngineConfig aged;
  aged.device.drift_nu = 0.02;
  aged.retention_time = 365.0 * 24 * 3600;
  const auto s_fresh = eval::mvm_fidelity(fresh);
  const auto s_aged = eval::mvm_fidelity(aged);
  EXPECT_GT(s_aged.rmse, s_fresh.rmse);
}

TEST(ProgrammedMatrix, ComparatorMismatchDegradesFidelity) {
  EngineConfig clean;
  EngineConfig offset;
  offset.circuit.comparator_offset_sigma = 10e-3;  // 10 mV sigma
  const auto s_clean = eval::mvm_fidelity(clean);
  const auto s_offset = eval::mvm_fidelity(offset);
  EXPECT_GT(s_offset.rmse, s_clean.rmse);
}

TEST(ProgrammedMatrix, StuckAtFaultsDegradeFidelity) {
  EngineConfig clean;
  EngineConfig faulty;
  faulty.device.stuck_lrs_rate = 0.02;
  faulty.device.stuck_hrs_rate = 0.02;
  const auto s_clean = eval::mvm_fidelity(clean);
  const auto s_faulty = eval::mvm_fidelity(faulty);
  EXPECT_GT(s_faulty.rmse, s_clean.rmse);
}

class MlpThroughHardware : public ::testing::Test {
 protected:
  MlpThroughHardware() : rng_(5) {
    model_.emplace<nn::Flatten>();
    model_.emplace<nn::Dense>(16, 12, rng_);
    model_.emplace<nn::ReLU>();
    model_.emplace<nn::Dense>(12, 4, rng_);
    calib_ = nn::Tensor({8, 1, 4, 4});
    for (std::size_t i = 0; i < calib_.size(); ++i) {
      calib_[i] = rng_.uniform(0.0, 1.0);
    }
  }

  Rng rng_;
  nn::Sequential model_{"tiny-mlp"};
  nn::Tensor calib_;
};

TEST_F(MlpThroughHardware, IdealEngineMatchesSoftware) {
  const ResipeNetwork hw(model_, EngineConfig::ideal(), calib_);
  const nn::Tensor ref = model_.forward(calib_, false);
  const nn::Tensor out = hw.forward(calib_);
  ASSERT_TRUE(ref.same_shape(out));
  const double scale = std::max(ref.abs_max(), 1e-9);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 0.01 * scale) << "logit " << i;
  }
}

TEST_F(MlpThroughHardware, ExactEngineStaysClose) {
  const ResipeNetwork hw(model_, EngineConfig{}, calib_);
  const nn::Tensor ref = model_.forward(calib_, false);
  const nn::Tensor out = hw.forward(calib_);
  const double scale = std::max(ref.abs_max(), 1e-9);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 0.12 * scale) << "logit " << i;
  }
}

TEST_F(MlpThroughHardware, TileAccounting) {
  const ResipeNetwork hw(model_, EngineConfig{}, calib_);
  EXPECT_EQ(hw.programmed_layers(), 2u);
  // 16x12 diff -> 24 phys cols -> 1 block; 12x4 -> 8 cols -> 1 block.
  EXPECT_EQ(hw.tile_count(), 2u);
  EXPECT_GE(hw.mvms_per_image(), 2u);
}

TEST(ResipeNetworkConv, IdealEngineMatchesSoftwareConv) {
  Rng rng(6);
  nn::Sequential model("tiny-cnn");
  model.emplace<nn::Conv2d>(1, 3, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(3 * 3 * 3, 4, rng);

  nn::Tensor calib({4, 1, 6, 6});
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib[i] = rng.uniform(0.0, 1.0);

  const ResipeNetwork hw(model, EngineConfig::ideal(), calib);
  const nn::Tensor ref = model.forward(calib, false);
  const nn::Tensor out = hw.forward(calib);
  ASSERT_TRUE(ref.same_shape(out));
  const double scale = std::max(ref.abs_max(), 1e-9);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 0.02 * scale) << "logit " << i;
  }
}

}  // namespace
}  // namespace resipe::resipe_core
