// Performance-observability layer: analytic work models (hand-counted),
// the work registry, roofline report internal consistency, folded-stack
// export, perf-counter graceful degradation and the accounting on/off
// bit-identity guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "resipe/circuits/params.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/perf/perf_counters.hpp"
#include "resipe/perf/roofline.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace {

using namespace resipe;

// Restores the global accounting/telemetry switches so tests cannot
// leak state into each other (the registry is process-wide).
struct PerfSwitchGuard {
  PerfSwitchGuard() {
    telemetry::set_enabled(true);
    perf::set_accounting_enabled(true);
    perf::WorkRegistry::instance().reset_values();
    telemetry::CallProfile::this_thread().reset();
  }
  ~PerfSwitchGuard() {
    perf::set_accounting_enabled(false);
    telemetry::set_enabled(false);
    perf::WorkRegistry::instance().reset_values();
    telemetry::CallProfile::this_thread().reset();
  }
};

// --- analytic model hand counts ----------------------------------------

TEST(WorkModel, FastMvmHandCount3x2) {
  // 4 flops/row * 3 + 2 flops/cell * 6 + 10 flops/col * 2 = 44 exactly.
  const perf::WorkCost c = perf::fast_mvm_cost(3, 2);
  EXPECT_EQ(c.flops, 44.0);
  // 8 * (2*3 + 2*3*2 + 4*2) = 8 * 26 = 208.
  EXPECT_EQ(c.bytes, 208.0);
}

TEST(WorkModel, FastMvmBatchFlopsAreExactlyNTimesSingle) {
  const perf::WorkCost single = perf::fast_mvm_cost(5, 3);
  const perf::WorkCost batch = perf::fast_mvm_batch_cost(5, 3, 7);
  EXPECT_EQ(batch.flops, 7.0 * single.flops);
  // 8 * (2*7*5 + 5*3 + 7*5*3 + 3*3 + 3*7*3) = 8 * (70+15+105+9+63).
  EXPECT_EQ(batch.bytes, 8.0 * 262.0);
  // Batch amortizes the matrix stream: fewer bytes than n singles.
  EXPECT_LT(batch.bytes, 7.0 * single.bytes);
}

TEST(WorkModel, TileHandCount2x2) {
  // 6*2 + 4*4 + 12*2 = 52; bytes 8 * (2*2 + 2*4 + 2*2) = 128.
  const perf::WorkCost c = perf::tile_execute_cost(2, 2);
  EXPECT_EQ(c.flops, 52.0);
  EXPECT_EQ(c.bytes, 128.0);
}

TEST(WorkModel, IrDropHandCount2x3) {
  // 9 flops/cell * 6 + 2 flops/col * 3 = 60;
  // bytes 8 * (2 + 6 + 2*3) = 112.
  const perf::WorkCost c = perf::ir_drop_solve_cost(2, 3);
  EXPECT_EQ(c.flops, 60.0);
  EXPECT_EQ(c.bytes, 112.0);
}

TEST(WorkModel, CodecCostsAreConstants) {
  EXPECT_GT(perf::spike_encode_cost().flops, 0.0);
  EXPECT_GT(perf::spike_encode_cost().bytes, 0.0);
  EXPECT_GT(perf::spike_decode_cost().flops, 0.0);
}

// --- registry accumulation from the real kernels -----------------------

TEST(WorkRegistry, FastMvmBooksExactAnalyticWork) {
#if defined(RESIPE_TELEMETRY_DISABLED)
  GTEST_SKIP() << "kernel annotations compile away with telemetry off";
#else
  PerfSwitchGuard guard;
  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  Rng rng(11);
  std::vector<double> g(3 * 2);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  const resipe_core::FastMvm mvm(params, 3, 2, g);

  const resipe_core::SpikeCodec codec(params);
  std::vector<double> t_in(3);
  for (double& t : t_in) t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;
  std::vector<double> t_out(2);
  constexpr std::uint64_t kCalls = 5;
  for (std::uint64_t i = 0; i < kCalls; ++i) mvm.mvm_times(t_in, t_out);

  bool found = false;
  for (const auto& k : perf::WorkRegistry::instance().snapshot()) {
    if (k.name != "resipe_core.fast_mvm.mvm_times") continue;
    found = true;
    EXPECT_EQ(k.calls, kCalls);
    // Analytic counts accumulate exactly (no float drift at this size).
    EXPECT_EQ(k.flops, static_cast<double>(kCalls) * 44.0);
    EXPECT_EQ(k.bytes, static_cast<double>(kCalls) * 208.0);
    EXPECT_GT(k.timed_ns, 0u);
  }
  EXPECT_TRUE(found);
#endif
}

TEST(WorkRegistry, DisabledAccountingBooksNothing) {
  PerfSwitchGuard guard;
  perf::set_accounting_enabled(false);
  perf::WorkRegistry::instance().reset_values();
  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  Rng rng(12);
  std::vector<double> g(4 * 2, 1e-6);
  const resipe_core::FastMvm mvm(params, 4, 2, g);
  std::vector<double> t_in(4, 1e-9);
  std::vector<double> t_out(2);
  mvm.mvm_times(t_in, t_out);
  for (const auto& k : perf::WorkRegistry::instance().snapshot()) {
    EXPECT_EQ(k.calls, 0u) << k.name;
    EXPECT_EQ(k.flops, 0.0) << k.name;
  }
}

TEST(WorkRegistry, AccountingOnOffIsBitIdentical) {
  PerfSwitchGuard guard;
  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  Rng rng(13);
  std::vector<double> g(16 * 8);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  const resipe_core::FastMvm mvm(params, 16, 8, g);
  const resipe_core::SpikeCodec codec(params);
  std::vector<double> t_in(16);
  for (double& t : t_in) {
    t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;
  }
  std::vector<double> off(8), on(8);
  perf::set_accounting_enabled(false);
  mvm.mvm_times(t_in, off);
  perf::set_accounting_enabled(true);
  mvm.mvm_times(t_in, on);
  EXPECT_EQ(0, std::memcmp(off.data(), on.data(), 8 * sizeof(double)));
}

// --- roofline report ---------------------------------------------------

TEST(Roofline, RatesAreInternallyConsistent) {
#if defined(RESIPE_TELEMETRY_DISABLED)
  GTEST_SKIP() << "kernel annotations compile away with telemetry off";
#else
  PerfSwitchGuard guard;
  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  Rng rng(14);
  std::vector<double> g(32 * 16);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  const resipe_core::FastMvm mvm(params, 32, 16, g);
  const resipe_core::SpikeCodec codec(params);
  std::vector<double> t_in(32);
  for (double& t : t_in) {
    t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;
  }
  std::vector<double> t_out(16);
  for (int i = 0; i < 50; ++i) mvm.mvm_times(t_in, t_out);

  perf::MachineProfile machine;
  machine.peak_gflops = 10.0;
  machine.peak_gbs = 20.0;
  const perf::RooflineReport report =
      perf::build_roofline_report(machine);
  ASSERT_FALSE(report.kernels.empty());
  for (const auto& k : report.kernels) {
    if (!k.timed) continue;
    // Acceptance contract: GFLOP/s == intensity * GB/s within 1%
    // (holds to rounding by construction).
    EXPECT_NEAR(k.gflops, k.intensity * k.gbs, 0.01 * k.gflops) << k.name;
    EXPECT_GT(k.seconds, 0.0);
    EXPECT_LE(k.attainable_gflops, machine.peak_gflops);
  }
#endif
}

TEST(Roofline, ClassifiesAgainstRidgePoint) {
  perf::WorkRegistry::instance().reset_values();
  perf::MachineProfile machine;
  machine.peak_gflops = 8.0;  // ridge = 2 FLOP/byte
  machine.peak_gbs = 4.0;
  EXPECT_DOUBLE_EQ(machine.ridge(), 2.0);

  auto& mem = perf::WorkRegistry::instance().kernel("t.mem_bound");
  mem.add_work({100.0, 1000.0});  // intensity 0.1 < ridge
  mem.add_time(1000);
  auto& comp = perf::WorkRegistry::instance().kernel("t.compute_bound");
  comp.add_work({1000.0, 100.0});  // intensity 10 > ridge
  comp.add_time(1000);

  const perf::RooflineReport report =
      perf::build_roofline_report(machine);
  bool saw_mem = false, saw_comp = false;
  for (const auto& k : report.kernels) {
    if (k.name == "t.mem_bound") {
      saw_mem = true;
      EXPECT_TRUE(k.memory_bound);
      // Ceiling at intensity 0.1: 0.1 * 4 = 0.4 GFLOP/s.
      EXPECT_DOUBLE_EQ(k.attainable_gflops, 0.4);
    }
    if (k.name == "t.compute_bound") {
      saw_comp = true;
      EXPECT_FALSE(k.memory_bound);
      EXPECT_DOUBLE_EQ(k.attainable_gflops, 8.0);
    }
  }
  EXPECT_TRUE(saw_mem);
  EXPECT_TRUE(saw_comp);
  const std::string ascii = report.render_ascii();
  EXPECT_NE(ascii.find("t.mem_bound"), std::string::npos);
  EXPECT_NE(ascii.find("memory"), std::string::npos);
  EXPECT_NE(ascii.find("compute"), std::string::npos);

  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bound\":\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"bound\":\"compute\""), std::string::npos);
  perf::WorkRegistry::instance().reset_values();
}

TEST(Roofline, MachineCalibrationProducesPositiveCeilings) {
  // Tiny budget: this is a smoke test of the calibration loops, not a
  // bandwidth measurement.
  const perf::MachineProfile p = perf::calibrate_machine(2.0, 1 << 14);
  EXPECT_GT(p.peak_gflops, 0.0);
  EXPECT_GT(p.peak_gbs, 0.0);
  EXPECT_GT(p.ridge(), 0.0);
  EXPECT_FALSE(p.fingerprint.empty());
  EXPECT_EQ(p.fingerprint_hash.size(), 16u);
  EXPECT_EQ(p.fingerprint, perf::machine_fingerprint());
}

// --- folded stacks and annotated tree ----------------------------------

TEST(FoldedStacks, EmitsSemicolonPathsWithSelfTime) {
  PerfSwitchGuard guard;
  {
    telemetry::ScopedTimer outer("outer");
    for (volatile int i = 0; i < 1000; ++i) {
    }
    {
      telemetry::ScopedTimer inner("inner");
      for (volatile int i = 0; i < 1000; ++i) {
      }
    }
  }
  const std::string folded =
      perf::folded_stacks(telemetry::CallProfile::this_thread());
  // One line per node with self time: "outer N" and "outer;inner M".
  EXPECT_NE(folded.find("outer;inner "), std::string::npos);
  std::istringstream is(folded);
  std::string stack;
  std::uint64_t value = 0;
  std::size_t lines = 0;
  while (is >> stack >> value) {
    ++lines;
    EXPECT_GE(value, 1u) << stack;
  }
  EXPECT_GE(lines, 2u);
}

TEST(AnnotatedProfile, AppendsRatesToKnownRegions) {
  PerfSwitchGuard guard;
  auto& kernel = perf::WorkRegistry::instance().kernel("region.hot");
  {
    telemetry::ScopedTimer t("region.hot");
    kernel.add_work({1000.0, 500.0});
    for (volatile int i = 0; i < 1000; ++i) {
    }
  }
  const std::string tree = perf::render_annotated_profile(
      telemetry::CallProfile::this_thread());
  EXPECT_NE(tree.find("region.hot"), std::string::npos);
  EXPECT_NE(tree.find("GFLOP/s"), std::string::npos);
  EXPECT_NE(tree.find("FLOP/B"), std::string::npos);
}

// --- perf counters -----------------------------------------------------

TEST(PerfCounters, DegradesGracefullyAndKeepsWallClock) {
  perf::PerfCounterGroup counters;
  counters.start();
  for (volatile int i = 0; i < 100000; ++i) {
  }
  counters.stop();
  const perf::PerfCounts counts = counters.read();
  EXPECT_GT(counts.wall_ns, 0.0);
  if (!counts.available) {
    // Containers without perf_event access must say why.
    EXPECT_FALSE(counts.detail.empty());
    EXPECT_EQ(counts.ipc(), 0.0);
  } else {
    EXPECT_GT(counts.cycles, 0.0);
    EXPECT_GT(counts.instructions, 0.0);
  }
}

// --- trace counter tracks ----------------------------------------------

TEST(TraceCounters, EmitsCounterEventsWithValues) {
  auto& session = telemetry::TraceSession::instance();
  session.start();
  session.counter("perf.test_track", 42.5);
  session.counter("perf.test_track", 43.5);
  session.stop();
  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":42.5}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":43.5}"), std::string::npos);
  telemetry::set_enabled(false);
}

}  // namespace
