#include "resipe/nn/tensor.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"

namespace resipe::nn {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.shape_str(), "[2, 3]");
  for (double v : t.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tensor, ExplicitDataChecked) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, TwoDAccess) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(t.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(t[1 * 3 + 2], 7.0);
  EXPECT_THROW(t.at(2, 0), Error);
  Tensor t4({1, 1, 1, 1});
  EXPECT_THROW(t4.at(0, 0), Error);  // rank mismatch
}

TEST(Tensor, FourDAccess) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0;
  EXPECT_DOUBLE_EQ(t.at(1, 2, 3, 4), 9.0);
  EXPECT_DOUBLE_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0);
  EXPECT_THROW(t.at(0, 3, 0, 0), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_DOUBLE_EQ(r.at(2, 1), 6.0);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(Tensor, FillAndNormalFill) {
  Tensor t({10, 10});
  t.fill(3.0);
  EXPECT_DOUBLE_EQ(t[57], 3.0);
  Rng rng(1);
  t.fill_normal(rng, 1.0);
  double sum = 0.0;
  for (double v : t.data()) sum += v;
  EXPECT_NE(sum, 0.0);
}

TEST(Tensor, AbsMax) {
  Tensor t({1, 4}, {1.0, -5.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(t.abs_max(), 5.0);
}

TEST(Tensor, ArgmaxRow) {
  Tensor t({2, 3}, {1, 9, 2, 7, 3, 5});
  EXPECT_EQ(t.argmax_row(0), 1u);
  EXPECT_EQ(t.argmax_row(1), 0u);
  EXPECT_THROW(t.argmax_row(2), Error);
}

TEST(Tensor, AddAndScaleInplace) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({1, 2}, {10, 20});
  add_inplace(a, b);
  EXPECT_DOUBLE_EQ(a[0], 11.0);
  scale_inplace(a, 0.5);
  EXPECT_DOUBLE_EQ(a[1], 11.0);
  Tensor c({2, 1});
  EXPECT_THROW(add_inplace(a, c), Error);
}

}  // namespace
}  // namespace resipe::nn
