#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"
#include "resipe/nn/model.hpp"
#include "resipe/nn/train.hpp"

namespace resipe::nn {
namespace {

TEST(BatchNorm, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  Rng rng(1);
  Tensor x({4, 2, 3, 3});
  x.fill_normal(rng, 2.0);
  for (double& v : x.data()) v += 5.0;  // shifted, scaled input
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per channel: mean ~ 0, var ~ 1 after normalization (gamma=1,beta=0).
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, ss = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 4; ++n)
      for (std::size_t h = 0; h < 3; ++h)
        for (std::size_t w = 0; w < 3; ++w) {
          sum += y.at(n, c, h, w);
          ++count;
        }
    const double mean = sum / count;
    for (std::size_t n = 0; n < 4; ++n)
      for (std::size_t h = 0; h < 3; ++h)
        for (std::size_t w = 0; w < 3; ++w)
          ss += (y.at(n, c, h, w) - mean) * (y.at(n, c, h, w) - mean);
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(ss / count, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStatistics) {
  BatchNorm2d bn(1, /*momentum=*/1.0);  // adopt batch stats immediately
  Rng rng(2);
  Tensor x({8, 1, 4, 4});
  x.fill_normal(rng, 3.0);
  bn.forward(x, true);  // sets running stats to this batch's stats
  // A fresh input normalized with those stats:
  Tensor z({1, 1, 4, 4});
  z.fill(1.0);
  const Tensor y = bn.forward(z, false);
  // y = (1 - mean)/sqrt(var+eps); just check it is deterministic and
  // finite, and changes when running stats change.
  const double y0 = y[0];
  EXPECT_TRUE(std::isfinite(y0));
  Tensor x2({8, 1, 4, 4});
  x2.fill_normal(rng, 1.0);
  for (double& v : x2.data()) v += 10.0;
  bn.forward(x2, true);
  const Tensor y2 = bn.forward(z, false);
  EXPECT_NE(y0, y2[0]);
}

TEST(BatchNorm, GradientsMatchFiniteDifferences) {
  constexpr double kEps = 1e-6;
  constexpr double kTol = 1e-5;
  BatchNorm2d bn(2);
  Rng rng(3);
  Tensor x({3, 2, 2, 2});
  x.fill_normal(rng, 1.0);

  auto loss = [&bn](const Tensor& in) {
    // Use eval-independent path: forward(train) changes running stats,
    // so snapshot via a fresh lambda call pattern — the loss uses the
    // train path consistently (stats recomputed per call, identical
    // for identical input).
    BatchNorm2d probe = bn;
    const Tensor y = probe.forward(in, true);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      s += y[i] * (0.2 + 0.1 * static_cast<double>(i % 5));
    return s;
  };

  for (const Param& p : bn.params()) p.grad->fill(0.0);
  const Tensor y = bn.forward(x, true);
  Tensor gy(y.shape());
  for (std::size_t i = 0; i < gy.size(); ++i)
    gy[i] = 0.2 + 0.1 * static_cast<double>(i % 5);
  const Tensor gx = bn.backward(gy);

  for (std::size_t i = 0; i < x.size(); i += 3) {
    const double orig = x[i];
    x[i] = orig + kEps;
    const double up = loss(x);
    x[i] = orig - kEps;
    const double dn = loss(x);
    x[i] = orig;
    EXPECT_NEAR(gx[i], (up - dn) / (2.0 * kEps), kTol) << "x grad " << i;
  }
}

TEST(BatchNorm, TrainingABlockImprovesLoss) {
  Rng rng(4);
  Sequential model("bn-net");
  model.emplace<Conv2d>(1, 4, 3, 1, 1, rng);
  model.emplace<BatchNorm2d>(4);
  model.emplace<ReLU>();
  model.emplace<Flatten>();
  model.emplace<Dense>(4 * 8 * 8, 3, rng);

  Tensor x({6, 1, 8, 8});
  x.fill_normal(rng, 1.0);
  const std::vector<int> labels{0, 1, 2, 0, 1, 2};
  Adam opt(1e-2);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    model.zero_grads();
    const Tensor logits = model.forward(x, true);
    const LossResult res = softmax_cross_entropy(logits, labels);
    model.backward(res.grad);
    const auto params = model.params();
    opt.step(params);
    if (step == 0) first = res.loss;
    last = res.loss;
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(FoldBatchnorm, FoldedModelMatchesUnfoldedAtEval) {
  Rng rng(5);
  Sequential model("fold");
  model.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
  model.emplace<BatchNorm2d>(3);
  model.emplace<ReLU>();

  // Push non-trivial statistics into the BN.
  Tensor warm({8, 2, 6, 6});
  warm.fill_normal(rng, 2.0);
  for (double& v : warm.data()) v += 0.5;
  model.forward(warm, true);

  Tensor x({2, 2, 6, 6});
  x.fill_normal(rng, 1.0);
  const Tensor before = model.forward(x, false);
  const std::size_t folded = fold_batchnorm(model);
  EXPECT_EQ(folded, 1u);
  const Tensor after = model.forward(x, false);
  ASSERT_TRUE(before.same_shape(after));
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-9) << "i=" << i;
  }
}

TEST(FoldBatchnorm, NoPairsMeansNoFolds) {
  Rng rng(6);
  Sequential model("plain");
  model.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  model.emplace<ReLU>();
  EXPECT_EQ(fold_batchnorm(model), 0u);
}

TEST(BatchNorm, RejectsBadShapesAndParams) {
  EXPECT_THROW(BatchNorm2d(0), Error);
  EXPECT_THROW(BatchNorm2d(2, 0.0), Error);
  BatchNorm2d bn(2);
  EXPECT_THROW(bn.forward(Tensor({1, 3, 2, 2}), false), Error);
}

}  // namespace
}  // namespace resipe::nn
