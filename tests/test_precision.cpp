#include "resipe/eval/precision.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::eval {
namespace {

nn::Sequential tiny_cnn(Rng& rng) {
  nn::Sequential m("probe-net");
  m.emplace<nn::Conv2d>(1, 3, 3, 1, 1, rng);
  m.emplace<nn::ReLU>();
  m.emplace<nn::Flatten>();
  m.emplace<nn::Dense>(3 * 6 * 6, 4, rng);
  return m;
}

nn::Tensor probe_batch(Rng& rng) {
  nn::Tensor t({6, 1, 6, 6});
  for (double& v : t.data()) v = rng.uniform(0.0, 1.0);
  return t;
}

TEST(LayerPrecision, ReportsOneRowPerMatrixLayer) {
  Rng rng(3);
  nn::Sequential model = tiny_cnn(rng);
  const nn::Tensor probe = probe_batch(rng);
  const auto rows =
      layer_precision(model, resipe_core::EngineConfig{}, probe, 32);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].in_features, 9u);
  EXPECT_EQ(rows[0].out_features, 3u);
  EXPECT_EQ(rows[1].in_features, 108u);
  for (const auto& r : rows) {
    EXPECT_GT(r.signal_rms, 0.0);
    EXPECT_GE(r.rmse, 0.0);
    EXPECT_GT(r.alpha, 0.0);
  }
}

TEST(LayerPrecision, IdealEngineHasHighSnr) {
  Rng rng(4);
  nn::Sequential model = tiny_cnn(rng);
  const nn::Tensor probe = probe_batch(rng);
  const auto rows = layer_precision(
      model, resipe_core::EngineConfig::ideal(), probe, 32);
  for (const auto& r : rows) {
    EXPECT_GT(r.snr_db, 40.0) << r.description;
  }
}

TEST(LayerPrecision, VariationLowersSnr) {
  Rng rng(5);
  nn::Sequential model = tiny_cnn(rng);
  const nn::Tensor probe = probe_batch(rng);
  resipe_core::EngineConfig noisy;
  noisy.device.variation_sigma = 0.20;
  const auto clean =
      layer_precision(model, resipe_core::EngineConfig{}, probe, 32);
  const auto degraded = layer_precision(model, noisy, probe, 32);
  ASSERT_EQ(clean.size(), degraded.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_LT(degraded[i].snr_db, clean[i].snr_db + 1.0)
        << clean[i].description;
  }
}

TEST(LayerPrecision, RenderContainsLayers) {
  Rng rng(6);
  nn::Sequential model = tiny_cnn(rng);
  const nn::Tensor probe = probe_batch(rng);
  const auto rows =
      layer_precision(model, resipe_core::EngineConfig{}, probe, 16);
  const std::string s = render_precision(rows);
  EXPECT_NE(s.find("Conv2d"), std::string::npos);
  EXPECT_NE(s.find("Dense"), std::string::npos);
  EXPECT_NE(s.find("dB"), std::string::npos);
}

TEST(LayerPrecision, RejectsTinyProbeLimit) {
  Rng rng(7);
  nn::Sequential model = tiny_cnn(rng);
  const nn::Tensor probe = probe_batch(rng);
  EXPECT_THROW(
      layer_precision(model, resipe_core::EngineConfig{}, probe, 2),
      Error);
}

}  // namespace
}  // namespace resipe::eval
