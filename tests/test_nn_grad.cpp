// Property tests: every layer's analytic gradients must match central
// finite differences on random inputs — the invariant that makes the
// training substrate trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "resipe/nn/layers.hpp"
#include "resipe/nn/train.hpp"

namespace resipe::nn {
namespace {

constexpr double kEps = 1e-6;
constexpr double kTol = 1e-5;

/// Scalar loss used by the checks: sum of elementwise x * coeff, with
/// fixed pseudo-random coefficients so the output gradient is known.
double weighted_sum(const Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    s += t[i] * (0.3 + 0.1 * static_cast<double>(i % 7));
  }
  return s;
}

Tensor weighted_sum_grad(const Tensor& t) {
  Tensor g(t.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = 0.3 + 0.1 * static_cast<double>(i % 7);
  }
  return g;
}

/// Checks d(loss)/d(param) and d(loss)/d(input) for one layer.
void check_layer_gradients(Layer& layer, Tensor x) {
  // Analytic pass.
  for (const Param& p : layer.params()) p.grad->fill(0.0);
  const Tensor y = layer.forward(x, /*train=*/true);
  const Tensor gx = layer.backward(weighted_sum_grad(y));

  // Input gradient by central differences.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(
                                            1, x.size() / 23)) {
    const double orig = x[i];
    x[i] = orig + kEps;
    const double up = weighted_sum(layer.forward(x, false));
    x[i] = orig - kEps;
    const double dn = weighted_sum(layer.forward(x, false));
    x[i] = orig;
    const double fd = (up - dn) / (2.0 * kEps);
    EXPECT_NEAR(gx[i], fd, kTol) << "input grad at " << i;
  }

  // Parameter gradients by central differences.
  for (const Param& p : layer.params()) {
    Tensor& w = *p.value;
    const Tensor& gw = *p.grad;
    for (std::size_t i = 0; i < w.size(); i += std::max<std::size_t>(
                                              1, w.size() / 17)) {
      const double orig = w[i];
      w[i] = orig + kEps;
      const double up = weighted_sum(layer.forward(x, false));
      w[i] = orig - kEps;
      const double dn = weighted_sum(layer.forward(x, false));
      w[i] = orig;
      const double fd = (up - dn) / (2.0 * kEps);
      EXPECT_NEAR(gw[i], fd, kTol) << "param grad at " << i;
    }
  }
}

TEST(GradCheck, Dense) {
  Rng rng(2);
  Dense layer(5, 4, rng);
  Tensor x({3, 5});
  x.fill_normal(rng, 1.0);
  check_layer_gradients(layer, x);
}

TEST(GradCheck, Conv2dNoPadding) {
  Rng rng(3);
  Conv2d layer(2, 3, 3, 1, 0, rng);
  Tensor x({2, 2, 5, 5});
  x.fill_normal(rng, 1.0);
  check_layer_gradients(layer, x);
}

TEST(GradCheck, Conv2dWithPaddingAndStride) {
  Rng rng(4);
  Conv2d layer(1, 2, 3, 2, 1, rng);
  Tensor x({1, 1, 7, 7});
  x.fill_normal(rng, 1.0);
  check_layer_gradients(layer, x);
}

TEST(GradCheck, AvgPool) {
  Rng rng(5);
  AvgPool2d layer(2);
  Tensor x({2, 2, 4, 4});
  x.fill_normal(rng, 1.0);
  check_layer_gradients(layer, x);
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  Rng rng(6);
  MaxPool2d layer(2);
  Tensor x({1, 1, 4, 4});
  // Distinct values avoid subgradient ambiguity at ties.
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>((i * 7) % 16) + 0.01 * static_cast<double>(i);
  }
  check_layer_gradients(layer, x);
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(7);
  ReLU layer;
  Tensor x({2, 6});
  x.fill_normal(rng, 1.0);
  // Push values away from 0 where ReLU is non-differentiable.
  for (double& v : x.data()) {
    if (std::abs(v) < 0.05) v = 0.5;
  }
  check_layer_gradients(layer, x);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(8);
  Tensor logits({4, 5});
  logits.fill_normal(rng, 1.0);
  const std::vector<int> labels{0, 2, 4, 1};
  const LossResult res = softmax_cross_entropy(logits, labels);

  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double orig = logits[i];
    logits[i] = orig + kEps;
    const double up = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - kEps;
    const double dn = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(res.grad[i], (up - dn) / (2.0 * kEps), kTol)
        << "logit " << i;
  }
}

}  // namespace
}  // namespace resipe::nn
