#include "resipe/eval/yield.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"

namespace resipe::eval {
namespace {

TEST(Yield, CleanDevicesAlwaysPass) {
  YieldConfig cfg;
  cfg.sigmas = {0.0};
  cfg.chips_per_sigma = 6;
  cfg.rmse_bound = 0.05;
  const auto points = mvm_yield(resipe_core::EngineConfig{}, cfg);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].yield, 1.0);
  EXPECT_LT(points[0].mean_rmse, 0.05);
}

TEST(Yield, DegradesMonotonicallyWithSigma) {
  YieldConfig cfg;
  cfg.sigmas = {0.0, 0.10, 0.20};
  cfg.chips_per_sigma = 8;
  const auto points = mvm_yield(resipe_core::EngineConfig{}, cfg);
  ASSERT_EQ(points.size(), 3u);
  // Common random numbers -> the mean error is monotone in sigma.
  EXPECT_LE(points[0].mean_rmse, points[1].mean_rmse);
  EXPECT_LE(points[1].mean_rmse, points[2].mean_rmse);
  EXPECT_GE(points[0].yield, points[2].yield);
  // The worst chip is at least as bad as the mean.
  for (const auto& p : points) EXPECT_GE(p.worst_rmse, p.mean_rmse);
}

TEST(Yield, TightBoundLowersYield) {
  YieldConfig loose;
  loose.sigmas = {0.15};
  loose.chips_per_sigma = 12;
  loose.rmse_bound = 0.30;
  YieldConfig tight = loose;
  tight.rmse_bound = 0.01;
  const auto y_loose = mvm_yield(resipe_core::EngineConfig{}, loose);
  const auto y_tight = mvm_yield(resipe_core::EngineConfig{}, tight);
  EXPECT_GE(y_loose[0].yield, y_tight[0].yield);
}

TEST(Yield, RenderContainsEverySigma) {
  YieldConfig cfg;
  cfg.sigmas = {0.0, 0.20};
  cfg.chips_per_sigma = 4;
  const auto points = mvm_yield(resipe_core::EngineConfig{}, cfg);
  const std::string s = render_yield(points, cfg.rmse_bound);
  EXPECT_NE(s.find("0.0%"), std::string::npos);
  EXPECT_NE(s.find("20.0%"), std::string::npos);
}

TEST(Yield, RejectsEmptySweep) {
  YieldConfig cfg;
  cfg.sigmas = {};
  EXPECT_THROW(mvm_yield(resipe_core::EngineConfig{}, cfg), Error);
}

}  // namespace
}  // namespace resipe::eval
