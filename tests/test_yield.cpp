#include "resipe/eval/yield.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"

namespace resipe::eval {
namespace {

TEST(Yield, CleanDevicesAlwaysPass) {
  YieldConfig cfg;
  cfg.sigmas = {0.0};
  cfg.chips_per_sigma = 6;
  cfg.rmse_bound = 0.05;
  const auto points = mvm_yield(resipe_core::EngineConfig{}, cfg);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].yield, 1.0);
  EXPECT_LT(points[0].mean_rmse, 0.05);
}

TEST(Yield, DegradesMonotonicallyWithSigma) {
  YieldConfig cfg;
  cfg.sigmas = {0.0, 0.10, 0.20};
  cfg.chips_per_sigma = 8;
  const auto points = mvm_yield(resipe_core::EngineConfig{}, cfg);
  ASSERT_EQ(points.size(), 3u);
  // Chips draw independent hashed streams per (sigma, chip) cell; the
  // variation effect dominates the sampling noise at these gaps.
  EXPECT_LE(points[0].mean_rmse, points[1].mean_rmse);
  EXPECT_LE(points[1].mean_rmse, points[2].mean_rmse);
  EXPECT_GE(points[0].yield, points[2].yield);
  // The worst chip is at least as bad as the mean.
  for (const auto& p : points) EXPECT_GE(p.worst_rmse, p.mean_rmse);
}

TEST(Yield, DeterministicAcrossRuns) {
  YieldConfig cfg;
  cfg.sigmas = {0.0, 0.10, 0.20};
  cfg.chips_per_sigma = 6;
  const auto a = mvm_yield(resipe_core::EngineConfig{}, cfg);
  const auto b = mvm_yield(resipe_core::EngineConfig{}, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].sigma, b[i].sigma);
    EXPECT_DOUBLE_EQ(a[i].mean_rmse, b[i].mean_rmse);
    EXPECT_DOUBLE_EQ(a[i].worst_rmse, b[i].worst_rmse);
    EXPECT_DOUBLE_EQ(a[i].yield, b[i].yield);
  }
}

TEST(Yield, PointsIndependentOfSweepShape) {
  // Per-cell hashed seeds: appending sigmas to the sweep must not
  // change the chips drawn for the earlier sigma points.
  YieldConfig small;
  small.sigmas = {0.0, 0.10};
  small.chips_per_sigma = 4;
  YieldConfig big = small;
  big.sigmas = {0.0, 0.10, 0.20};
  const auto a = mvm_yield(resipe_core::EngineConfig{}, small);
  const auto b = mvm_yield(resipe_core::EngineConfig{}, big);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_rmse, b[i].mean_rmse);
    EXPECT_DOUBLE_EQ(a[i].worst_rmse, b[i].worst_rmse);
    EXPECT_DOUBLE_EQ(a[i].yield, b[i].yield);
  }
}

TEST(Yield, TightBoundLowersYield) {
  YieldConfig loose;
  loose.sigmas = {0.15};
  loose.chips_per_sigma = 12;
  loose.rmse_bound = 0.30;
  YieldConfig tight = loose;
  tight.rmse_bound = 0.01;
  const auto y_loose = mvm_yield(resipe_core::EngineConfig{}, loose);
  const auto y_tight = mvm_yield(resipe_core::EngineConfig{}, tight);
  EXPECT_GE(y_loose[0].yield, y_tight[0].yield);
}

TEST(Yield, RenderContainsEverySigma) {
  YieldConfig cfg;
  cfg.sigmas = {0.0, 0.20};
  cfg.chips_per_sigma = 4;
  const auto points = mvm_yield(resipe_core::EngineConfig{}, cfg);
  const std::string s = render_yield(points, cfg.rmse_bound);
  EXPECT_NE(s.find("0.0%"), std::string::npos);
  EXPECT_NE(s.find("20.0%"), std::string::npos);
}

TEST(Yield, RejectsEmptySweep) {
  YieldConfig cfg;
  cfg.sigmas = {};
  EXPECT_THROW(mvm_yield(resipe_core::EngineConfig{}, cfg), Error);
}

}  // namespace
}  // namespace resipe::eval
