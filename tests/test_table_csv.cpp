#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "resipe/common/csv.hpp"
#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"

namespace resipe {
namespace {

TEST(TextTable, RendersAlignedCells) {
  TextTable t({"A", "Bee"});
  t.add_row({"longer", "x"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| A      | Bee |"), std::string::npos);
  EXPECT_NE(s.find("| longer | x   |"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, SeparatorRendersRule) {
  TextTable t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.str();
  // header rule + separator + closing rule + top = at least 4 rules.
  std::size_t rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(FormatSi, PicksSensiblePrefixes) {
  EXPECT_EQ(format_si(2.3e-3, "W"), "2.300 mW");
  EXPECT_EQ(format_si(1.5e-9, "s"), "1.500 ns");
  EXPECT_EQ(format_si(4.2e12, "OPS", 1), "4.2 TOPS");
  EXPECT_EQ(format_si(0.0, "V"), "0.000 V");
  EXPECT_EQ(format_si(100e-15, "F"), "100.000 fF");
}

TEST(FormatHelpers, RatioAndPercent) {
  EXPECT_EQ(format_ratio(1.9731), "1.97x");
  EXPECT_EQ(format_percent(0.671), "67.1%");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  CsvWriter csv;
  csv.add_column("x", {1.0, 2.0});
  csv.add_text_column("name", {"a", "b"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "x,name\n1,a\n2,b\n");
}

TEST(CsvWriter, RejectsMismatchedColumnLengths) {
  CsvWriter csv;
  csv.add_column("x", {1.0, 2.0});
  csv.add_column("y", {1.0});
  std::ostringstream os;
  EXPECT_THROW(csv.write(os), Error);
}

TEST(CsvWriter, WriteFileRoundTrip) {
  CsvWriter csv;
  csv.add_column("v", {42.0});
  const std::string path = "test_csv_roundtrip.csv";
  csv.write_file(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "v");
  EXPECT_EQ(row, "42");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace resipe
