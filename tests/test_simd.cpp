#include "resipe/common/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "testing/approx.hpp"

namespace resipe {
namespace {

using resipe_core::FastMvm;
using resipe_core::SpikeCodec;
using simd::vdouble;

constexpr std::size_t kW = simd::native_lanes;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Ordered-integer ULP distance (the usual sign-magnitude -> two's
// complement mapping), infinite across sign/class mismatches.
std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b))
               ? 0
               : std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) return 0;  // covers +0 == -0 and equal infinities
  if (std::isinf(a) || std::isinf(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  auto ordered = [](double x) {
    std::int64_t i;
    std::memcpy(&i, &x, sizeof i);
    return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - ib
                 : static_cast<std::uint64_t>(ib) - ia;
}

std::array<double, kW> to_array(vdouble v) {
  alignas(simd::kAlignment) std::array<double, kW> out;
  v.store(out.data());
  return out;
}

// ---------------------------------------------------------------------
// Elementary ops: each lane must match the scalar operation exactly.
// ---------------------------------------------------------------------

TEST(SimdOps, ArithmeticMatchesScalarPerLane) {
  Rng rng(101);
  alignas(simd::kAlignment) std::array<double, kW> a_raw, b_raw, c_raw;
  for (std::size_t i = 0; i < kW; ++i) {
    a_raw[i] = rng.uniform(-10.0, 10.0);
    b_raw[i] = rng.uniform(0.5, 10.0);
    c_raw[i] = rng.uniform(-5.0, 5.0);
  }
  const vdouble a = vdouble::load(a_raw.data());
  const vdouble b = vdouble::load(b_raw.data());
  const vdouble c = vdouble::load(c_raw.data());

  const auto sum = to_array(a + b);
  const auto dif = to_array(a - b);
  const auto prd = to_array(a * b);
  const auto quo = to_array(a / b);
  const auto fml = to_array(simd::fma(a, b, c));
  const auto mn = to_array(simd::min(a, b));
  const auto mx = to_array(simd::max(a, b));
  for (std::size_t i = 0; i < kW; ++i) {
    EXPECT_EQ(sum[i], a_raw[i] + b_raw[i]);
    EXPECT_EQ(dif[i], a_raw[i] - b_raw[i]);
    EXPECT_EQ(prd[i], a_raw[i] * b_raw[i]);
    EXPECT_EQ(quo[i], a_raw[i] / b_raw[i]);
    EXPECT_EQ(fml[i], std::fma(a_raw[i], b_raw[i], c_raw[i]));
    EXPECT_EQ(mn[i], std::min(a_raw[i], b_raw[i]));
    EXPECT_EQ(mx[i], std::max(a_raw[i], b_raw[i]));
  }
}

TEST(SimdOps, ComparisonSelectAndMaskCount) {
  alignas(simd::kAlignment) std::array<double, kW> a_raw, b_raw;
  for (std::size_t i = 0; i < kW; ++i) {
    a_raw[i] = static_cast<double>(i);
    b_raw[i] = static_cast<double>(kW) / 2.0;
  }
  const vdouble a = vdouble::load(a_raw.data());
  const vdouble b = vdouble::load(b_raw.data());

  std::size_t expect_lt = 0, expect_band = 0;
  for (std::size_t i = 0; i < kW; ++i) {
    expect_lt += a_raw[i] < b_raw[i] ? 1 : 0;
    expect_band += (a_raw[i] >= 1.0 && a_raw[i] <= b_raw[i]) ? 1 : 0;
  }
  EXPECT_EQ(simd::mask_count(a < b), expect_lt);
  EXPECT_EQ(simd::mask_count((a >= vdouble(1.0)) & (a <= b)), expect_band);

  const auto sel = to_array(simd::select(a < b, vdouble(-1.0), a));
  for (std::size_t i = 0; i < kW; ++i) {
    EXPECT_EQ(sel[i], a_raw[i] < b_raw[i] ? -1.0 : a_raw[i]);
  }
}

// reduce_add folds in a fixed pairwise tree (lo half + hi half,
// recursively).  The kernels rely on this order being stable — batch
// and single-sample sums must land on the same bits — so pin it.
TEST(SimdOps, ReduceAddUsesPairwiseTreeOrder) {
  Rng rng(202);
  alignas(simd::kAlignment) std::array<double, kW> raw;
  for (double& v : raw) v = rng.uniform(-1.0, 1.0);

  std::array<double, kW> tree = raw;
  for (std::size_t half = kW / 2; half >= 1; half /= 2) {
    for (std::size_t i = 0; i < half; ++i) tree[i] += tree[i + half];
  }
  EXPECT_EQ(simd::reduce_add(vdouble::load(raw.data())), tree[0]);
}

TEST(SimdOps, PadToLanesRoundsUp) {
  EXPECT_EQ(simd::pad_to_lanes(0), 0u);
  EXPECT_EQ(simd::pad_to_lanes(1), kW);
  EXPECT_EQ(simd::pad_to_lanes(kW), kW);
  EXPECT_EQ(simd::pad_to_lanes(kW + 1), 2 * kW);
}

TEST(SimdOps, AlignedAllocatorAligns) {
  FastMvm::aligned_vector v(3 * kW + 1, 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % simd::kAlignment,
            0u);
}

// ---------------------------------------------------------------------
// Transcendentals: the vector exp/log must stay within the documented
// kTranscendentalUlp bound of libm, and honor IEEE edge cases.
// ---------------------------------------------------------------------

TEST(SimdTranscendentals, ExpWithinDocumentedUlpBound) {
  Rng rng(303);
  std::uint64_t worst = 0;
  alignas(simd::kAlignment) std::array<double, kW> raw;
  for (int trial = 0; trial < 4000; ++trial) {
    // Kernel-relevant range plus the full finite domain.
    const double lo = (trial % 2 == 0) ? -20.0 : -700.0;
    const double hi = (trial % 2 == 0) ? 20.0 : 700.0;
    for (double& v : raw) v = rng.uniform(lo, hi);
    const auto got = to_array(simd::exp(vdouble::load(raw.data())));
    for (std::size_t i = 0; i < kW; ++i) {
      worst = std::max(worst, ulp_distance(got[i], std::exp(raw[i])));
    }
  }
  EXPECT_LE(worst, static_cast<std::uint64_t>(simd::kTranscendentalUlp));
}

TEST(SimdTranscendentals, LogWithinDocumentedUlpBound) {
  Rng rng(404);
  std::uint64_t worst = 0;
  alignas(simd::kAlignment) std::array<double, kW> raw;
  for (int trial = 0; trial < 4000; ++trial) {
    for (std::size_t i = 0; i < kW; ++i) {
      switch (trial % 3) {
        case 0: raw[i] = rng.uniform(1e-12, 1.0); break;
        case 1: raw[i] = rng.uniform(1.0, 1e6); break;
        // The kernels call log(1 - v/v_s): exercise arguments near 1.
        default: raw[i] = 1.0 + rng.uniform(-0.5, 0.5); break;
      }
    }
    const auto got = to_array(simd::log(vdouble::load(raw.data())));
    for (std::size_t i = 0; i < kW; ++i) {
      worst = std::max(worst, ulp_distance(got[i], std::log(raw[i])));
    }
  }
  EXPECT_LE(worst, static_cast<std::uint64_t>(simd::kTranscendentalUlp));
}

TEST(SimdTranscendentals, EdgeCasesMatchIeee) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  alignas(simd::kAlignment) std::array<double, kW> raw;

  raw.fill(0.0);
  raw[0] = -kInf;
  if (kW > 1) raw[1] = kInf;
  if (kW > 2) raw[2] = qnan;
  auto e = to_array(simd::exp(vdouble::load(raw.data())));
  EXPECT_EQ(e[0], 0.0);
  if (kW > 1) EXPECT_EQ(e[1], kInf);
  if (kW > 2) EXPECT_TRUE(std::isnan(e[2]));

  raw.fill(1.0);
  raw[0] = 0.0;
  if (kW > 1) raw[1] = -1.0;
  if (kW > 2) raw[2] = kInf;
  if (kW > 3) raw[3] = qnan;
  auto l = to_array(simd::log(vdouble::load(raw.data())));
  EXPECT_EQ(l[0], -kInf);
  if (kW > 1) EXPECT_TRUE(std::isnan(l[1]));
  if (kW > 2) EXPECT_EQ(l[2], kInf);
  if (kW > 3) EXPECT_TRUE(std::isnan(l[3]));

  // exp(0) = 1 and log(1) = 0 exactly, on every lane.
  raw.fill(0.0);
  EXPECT_EQ(to_array(simd::exp(vdouble::load(raw.data())))[0], 1.0);
  raw.fill(1.0);
  EXPECT_EQ(to_array(simd::log(vdouble::load(raw.data())))[0], 0.0);
}

// simd::round is BIT-equal to std::round — not a ULP bound.  The codec
// quantization snap runs through it, and snapped spike times feed the
// event/dense bit-identity contracts, so every lane must reproduce
// libm's half-away-from-zero ties, sign of zero, and NaN/inf handling.
TEST(SimdTranscendentals, RoundBitEqualsStdRound) {
  Rng rng(505);
  alignas(simd::kAlignment) std::array<double, kW> raw;
  for (int trial = 0; trial < 4000; ++trial) {
    // Magnitudes from sub-ULP fractions up past 2^53 (all integers).
    const double scale = std::pow(10.0, rng.uniform(-3.0, 17.0));
    for (double& v : raw) v = rng.uniform(-1.0, 1.0) * scale;
    const auto got = to_array(simd::round(vdouble::load(raw.data())));
    for (std::size_t i = 0; i < kW; ++i) {
      EXPECT_EQ(ulp_distance(got[i], std::round(raw[i])), 0u)
          << "x = " << raw[i];
    }
  }
}

TEST(SimdTranscendentals, RoundEdgeCasesMatchIeee) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // Ties away from zero, truncation toward it, exact integers,
  // signed zero, the 2^52 integer boundary, infinities and NaN.
  const double cases[] = {0.5,   -0.5, 2.5,  -2.5,  0.49999999999999994,
                          -0.3,  0.0,  -0.0, 1.0,   -7.0,
                          4.5e15, 9007199254740993.0, kInf, -kInf, qnan};
  alignas(simd::kAlignment) std::array<double, kW> raw;
  for (const double x : cases) {
    raw.fill(x);
    const auto got = to_array(simd::round(vdouble::load(raw.data())));
    for (std::size_t i = 0; i < kW; ++i) {
      EXPECT_EQ(ulp_distance(got[i], std::round(x)), 0u) << "x = " << x;
      if (!std::isnan(x)) {
        // Bit-for-bit including the sign of zero.
        EXPECT_EQ(std::signbit(got[i]), std::signbit(std::round(x)))
            << "x = " << x;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Runtime ISA control.
// ---------------------------------------------------------------------

TEST(SimdRuntime, ForceScalarGuardDisablesVectorPath) {
  const bool outer = simd::enabled();
  {
    simd::ForceScalarGuard guard;
    EXPECT_FALSE(simd::enabled());
    EXPECT_STREQ(simd::active_isa(), "scalar");
  }
  EXPECT_EQ(simd::enabled(), outer);
  EXPECT_STREQ(simd::compiled_isa(),
               simd::enabled() ? simd::active_isa() : simd::compiled_isa());
  EXPECT_NE(simd::march_flags(), nullptr);
}

// ---------------------------------------------------------------------
// FastMvm: construction validation and SIMD/scalar agreement.
// ---------------------------------------------------------------------

circuits::CircuitParams test_params() {
  return circuits::CircuitParams{};
}

FastMvm random_mvm(const circuits::CircuitParams& p, std::size_t rows,
                   std::size_t cols, Rng& rng) {
  std::vector<double> g(rows * cols);
  for (double& v : g) v = rng.uniform(1e-6, 40e-6);
  return FastMvm(p, rows, cols, std::move(g));
}

std::vector<double> random_inputs(const SpikeCodec& codec, std::size_t rows,
                                  Rng& rng) {
  std::vector<double> t(rows);
  for (double& v : t) {
    // Mix of real spike times and silent lines.
    v = rng.uniform(0.0, 1.0) < 0.15
            ? FastMvm::kNoSpike
            : codec.encode(rng.uniform(0.0, 1.2)).arrival_time;
  }
  return t;
}

TEST(FastMvmValidation, FlatConstructorRejectsZeroDims) {
  const auto p = test_params();
  EXPECT_THROW(FastMvm(p, 0, 4, {}), Error);
  EXPECT_THROW(FastMvm(p, 4, 0, {}), Error);
  EXPECT_THROW(FastMvm(p, 0, 0, {}), Error);
}

TEST(FastMvmValidation, CrossbarPathRejectsZeroDims) {
  // Crossbar itself refuses zero dims, so the FastMvm guard on that
  // path is unreachable through a real Crossbar — pin the upstream
  // check so a relaxation there would not silently reach FastMvm.
  EXPECT_THROW(crossbar::Crossbar(0, 4, device::ReramSpec::nn_mapping()),
               Error);
  EXPECT_THROW(crossbar::Crossbar(4, 0, device::ReramSpec::nn_mapping()),
               Error);
}

// SIMD output vs the scalar reference on deliberately awkward shapes:
// 1x1 (everything is padding), 3x5 (sub-width), 63x65 (one short of /
// one past a pad boundary).  The two paths differ only by sum
// reassociation and the polynomial exp/log, so a flat 1e-9 relative
// tolerance is generous; silence must agree exactly except where the
// scalar time sits within that tolerance of the slice boundary.
TEST(FastMvmSimd, EdgeShapesMatchScalarReference) {
  const auto p = test_params();
  const SpikeCodec codec(p);
  Rng rng(505);
  const struct { std::size_t rows, cols; } shapes[] = {
      {1, 1}, {3, 5}, {63, 65}};
  for (const auto& shape : shapes) {
    const FastMvm mvm = random_mvm(p, shape.rows, shape.cols, rng);
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<double> t_in = random_inputs(codec, shape.rows, rng);
      std::vector<double> vec(shape.cols, -1.0), ref(shape.cols, -1.0);
      mvm.mvm_times(t_in, vec);
      {
        simd::ForceScalarGuard guard;
        mvm.mvm_times(t_in, ref);
      }
      for (std::size_t c = 0; c < shape.cols; ++c) {
        if (std::isinf(vec[c]) != std::isinf(ref[c])) {
          const double finite = std::isinf(vec[c]) ? ref[c] : vec[c];
          EXPECT_NEAR(finite, p.slice_length, 1e-9 * p.slice_length)
              << "silence flip away from the slice boundary, col " << c;
        } else if (!std::isinf(ref[c])) {
          RESIPE_EXPECT_CLOSE(vec[c], ref[c], 1e-9, 1e-20);
        }
      }
    }
  }
}

TEST(FastMvmSimd, BatchMatchesSingleSampleBitwise) {
  const auto p = test_params();
  const SpikeCodec codec(p);
  Rng rng(606);
  const std::size_t rows = 63, cols = 65, n = 5;
  const FastMvm mvm = random_mvm(p, rows, cols, rng);

  std::vector<double> t_in(n * rows);
  for (std::size_t s = 0; s < n; ++s) {
    const auto one = random_inputs(codec, rows, rng);
    std::copy(one.begin(), one.end(), t_in.begin() + s * rows);
  }
  std::vector<double> batch_out(n * cols, -1.0);
  FastMvm::BatchScratch scratch;
  mvm.mvm_times_batch(t_in, n, batch_out, scratch);

  std::vector<double> single(cols);
  for (std::size_t s = 0; s < n; ++s) {
    mvm.mvm_times(std::span<const double>(t_in).subspan(s * rows, rows),
                  single);
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(batch_out[s * cols + c], single[c])
          << "sample " << s << " col " << c;
    }
  }
}

TEST(FastMvmSimd, BatchHandlesEmptyAndSingleSample) {
  const auto p = test_params();
  const SpikeCodec codec(p);
  Rng rng(707);
  const FastMvm mvm = random_mvm(p, 7, 9, rng);
  FastMvm::BatchScratch scratch;

  // n == 0: no reads, no writes.
  std::vector<double> out0;
  mvm.mvm_times_batch({}, 0, out0, scratch);

  // n == 1 is bitwise the single-sample path.
  const std::vector<double> t_in = random_inputs(codec, 7, rng);
  std::vector<double> out1(9, -1.0), single(9, -2.0);
  mvm.mvm_times_batch(t_in, 1, out1, scratch);
  mvm.mvm_times(t_in, single);
  for (std::size_t c = 0; c < 9; ++c) EXPECT_EQ(out1[c], single[c]);
}

// The same agreement must hold with the scalar reference *batch* path
// (which tiles differently from the scalar single-sample loop only in
// iteration order, never in arithmetic).
TEST(FastMvmSimd, ScalarBatchBitwiseEqualsScalarSingle) {
  const auto p = test_params();
  const SpikeCodec codec(p);
  Rng rng(808);
  const std::size_t rows = 31, cols = 17, n = 4;
  const FastMvm mvm = random_mvm(p, rows, cols, rng);
  std::vector<double> t_in(n * rows);
  for (double& v : t_in) v = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;

  simd::ForceScalarGuard guard;
  std::vector<double> batch_out(n * cols);
  FastMvm::BatchScratch scratch;
  mvm.mvm_times_batch(t_in, n, batch_out, scratch);
  std::vector<double> single(cols);
  for (std::size_t s = 0; s < n; ++s) {
    mvm.mvm_times(std::span<const double>(t_in).subspan(s * rows, rows),
                  single);
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(batch_out[s * cols + c], single[c]);
    }
  }
}

// ---------------------------------------------------------------------
// Spike-codec batch kernels.
// ---------------------------------------------------------------------

TEST(SpikeCodecBatch, EncodeTimesMatchesElementwiseEncode) {
  const auto p = test_params();
  Rng rng(909);
  for (const bool quantize : {false, true}) {
    const SpikeCodec codec(p, quantize);
    std::vector<double> x(kW * 4 + 3);
    for (double& v : x) v = rng.uniform(-0.2, 1.3);  // includes clipping
    std::vector<double> batch(x.size());
    codec.encode_times(x, batch);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ref = codec.encode(x[i]).arrival_time;
      if (quantize) {
        // A near-tie at a clock boundary may snap one grid step apart.
        EXPECT_LE(std::abs(batch[i] - ref), p.clock_period * (1.0 + 1e-12));
      } else {
        RESIPE_EXPECT_CLOSE(batch[i], ref, 1e-10, 1e-18);
      }
    }
    // The scalar path is the element-wise loop, bit for bit.
    simd::ForceScalarGuard guard;
    std::vector<double> scalar(x.size());
    codec.encode_times(x, scalar);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(scalar[i], codec.encode(x[i]).arrival_time);
    }
  }
}

TEST(SpikeCodecBatch, DecodeValuesMatchesElementwiseDecode) {
  const auto p = test_params();
  const SpikeCodec codec(p);
  Rng rng(1010);
  std::vector<double> t(kW * 4 + 5);
  for (std::size_t i = 0; i < t.size(); ++i) {
    switch (i % 4) {
      case 0: t[i] = kInf; break;                              // silent
      case 1: t[i] = -1e-9; break;                             // invalid
      case 2: t[i] = rng.uniform(0.0, p.slice_length); break;  // in range
      default: t[i] = codec.t_full() * rng.uniform(0.9, 1.4);  // clamped
    }
  }
  std::vector<double> batch(t.size());
  codec.decode_values(t, batch);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double ref = codec.decode(circuits::Spike::at(t[i]));
    RESIPE_EXPECT_CLOSE(batch[i], ref, 1e-12, 1e-15);
  }

  simd::ForceScalarGuard guard;
  std::vector<double> scalar(t.size());
  codec.decode_values(t, scalar);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(scalar[i], codec.decode(circuits::Spike::at(t[i])));
  }
}

// ---------------------------------------------------------------------
// End to end: SIMD vs scalar through a lowered network, across worker
// counts.  SIMD logits must be bit-identical at any thread count (the
// parallel runtime is order-deterministic), and the scalar/SIMD pair
// must agree on every clear-margin argmax.
// ---------------------------------------------------------------------

TEST(NetworkSimd, ScalarVsSimdAgreementAcrossThreads) {
  Rng model_rng(0xBEEF);
  nn::Sequential model = nn::build_benchmark(nn::BenchmarkNet::kMlp1,
                                             model_rng);
  Rng data_rng(11);
  const nn::Dataset batch = nn::synthetic_digits(12, data_rng);
  resipe_core::EngineConfig config;
  const resipe_core::ResipeNetwork net(model, config, batch.images);

  const auto logits = [&](bool force_scalar) {
    std::optional<simd::ForceScalarGuard> guard;
    if (force_scalar) guard.emplace();
    const nn::Tensor y = net.forward(batch.images);
    return std::vector<double>(y.data().begin(), y.data().end());
  };

  set_default_threads(1);
  const std::vector<double> simd_ref = logits(false);
  const std::vector<double> scalar_ref = logits(true);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    set_default_threads(threads);
    EXPECT_EQ(logits(false), simd_ref) << threads << " threads (simd)";
    EXPECT_EQ(logits(true), scalar_ref) << threads << " threads (scalar)";
  }
  set_default_threads(0);

  const std::size_t classes = scalar_ref.size() / 12;
  ASSERT_GT(classes, 1u);
  for (std::size_t s = 0; s < 12; ++s) {
    const double* sc = scalar_ref.data() + s * classes;
    const double* vc = simd_ref.data() + s * classes;
    std::size_t best = 0;
    double scale = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      if (sc[c] > sc[best]) best = c;
      scale = std::max(scale, std::abs(sc[c]));
    }
    double margin = kInf;
    for (std::size_t c = 0; c < classes; ++c) {
      if (c != best) margin = std::min(margin, sc[best] - sc[c]);
    }
    if (margin <= 1e-6 * (scale + 1.0)) continue;  // genuinely ambiguous
    const std::size_t vbest =
        std::max_element(vc, vc + classes) - vc;
    EXPECT_EQ(vbest, best) << "argmax flip on sample " << s;
  }
}

}  // namespace
}  // namespace resipe
