#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/crossbar/crossbar.hpp"
#include "resipe/crossbar/mapping.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/reliability/config.hpp"
#include "resipe/reliability/fault_mapper.hpp"
#include "resipe/reliability/fault_model.hpp"

namespace resipe {
namespace {

using device::ReramSpec;
using reliability::FaultMap;
using reliability::FaultType;

// ---------------------------------------------------------------- drift

TEST(Drift, IdentityBeforeReferenceTime) {
  EXPECT_DOUBLE_EQ(device::drift_conductance(1e-5, 0.0, 1.0, 0.05), 1e-5);
  EXPECT_DOUBLE_EQ(device::drift_conductance(1e-5, 1.0, 1.0, 0.05), 1e-5);
  EXPECT_DOUBLE_EQ(device::drift_conductance(1e-5, 0.5, 1.0, 0.05), 1e-5);
}

TEST(Drift, IdentityWhenDisabled) {
  EXPECT_DOUBLE_EQ(device::drift_conductance(1e-5, 1e6, 1.0, 0.0), 1e-5);
  EXPECT_DOUBLE_EQ(device::drift_conductance(1e-5, 1e6, 0.0, 0.05), 1e-5);
}

TEST(Drift, MonotoneDecreasingPastReferenceTime) {
  const double g0 = 2e-5;
  double prev = g0;
  for (double t : {2.0, 10.0, 1e3, 1e6, 1e9}) {
    const double g = device::drift_conductance(g0, t, 1.0, 0.03);
    EXPECT_LT(g, prev);
    EXPECT_GT(g, 0.0);
    prev = g;
  }
}

TEST(Drift, MatchesClosedForm) {
  const double g0 = 1e-5;
  const double t0 = 2.0;
  const double nu = 0.04;
  const double t = 3600.0;
  EXPECT_DOUBLE_EQ(device::drift_conductance(g0, t, t0, nu),
                   g0 * std::pow(t / t0, -nu));
}

// ---------------------------------------------------------- fault model

TEST(FaultModel, EmptyConfigGeneratesNoFaults) {
  Rng rng(1);
  const FaultMap map =
      reliability::generate_fault_map(64, 64, {}, rng);
  EXPECT_EQ(map.fault_count(), 0u);
}

TEST(FaultModel, IndependentRatesPassChiSquared) {
  // 300 x 300 cells at 1% LRS / 2% HRS, no clustering: the observed
  // (lrs, hrs, clean) counts must match the multinomial expectation.
  // Chi-squared with 2 degrees of freedom; critical value 13.8 at
  // p = 0.999, so a correct generator fails ~1/1000 seeds (fixed seed).
  reliability::FaultModelConfig cfg;
  cfg.stuck_lrs_rate = 0.01;
  cfg.stuck_hrs_rate = 0.02;
  cfg.cluster_fraction = 0.0;
  Rng rng(20260806);
  const std::size_t n = 300;
  const FaultMap map = reliability::generate_fault_map(n, n, cfg, rng);
  double lrs = 0.0;
  double hrs = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (map.at(r, c) == FaultType::kStuckLrs) lrs += 1.0;
      if (map.at(r, c) == FaultType::kStuckHrs) hrs += 1.0;
    }
  }
  const double cells = static_cast<double>(n * n);
  const double clean = cells - lrs - hrs;
  const double e_lrs = cells * cfg.stuck_lrs_rate;
  const double e_hrs = cells * cfg.stuck_hrs_rate;
  const double e_clean = cells - e_lrs - e_hrs;
  const double chi2 = (lrs - e_lrs) * (lrs - e_lrs) / e_lrs +
                      (hrs - e_hrs) * (hrs - e_hrs) / e_hrs +
                      (clean - e_clean) * (clean - e_clean) / e_clean;
  EXPECT_LT(chi2, 13.8) << "lrs=" << lrs << " hrs=" << hrs;
}

TEST(FaultModel, ClusteringPreservesTotalBudget) {
  reliability::FaultModelConfig cfg;
  cfg.stuck_lrs_rate = 0.02;
  cfg.cluster_fraction = 0.5;
  cfg.cluster_size = 4;
  Rng rng(7);
  const std::size_t n = 200;
  const FaultMap map = reliability::generate_fault_map(n, n, cfg, rng);
  const double expected = 0.02 * static_cast<double>(n * n);
  const double got = static_cast<double>(map.fault_count());
  // Clusters overlap occasionally; allow a generous +-30% band.
  EXPECT_GT(got, 0.7 * expected);
  EXPECT_LT(got, 1.3 * expected);
}

TEST(FaultModel, ReadDisturbDecaysToFloor) {
  const double g0 = 1e-5;
  const double floor = 1e-6;
  double prev = g0;
  for (double reads : {1e3, 1e5, 1e7, 1e9}) {
    const double g =
        reliability::read_disturbed_conductance(g0, reads, 1e-8, floor);
    EXPECT_LE(g, prev);
    EXPECT_GE(g, floor);
    prev = g;
  }
  EXPECT_DOUBLE_EQ(
      reliability::read_disturbed_conductance(g0, 1e12, 1e-8, floor),
      floor);
  EXPECT_DOUBLE_EQ(
      reliability::read_disturbed_conductance(g0, 0.0, 1e-8, floor), g0);
}

// --------------------------------------------------------- fault mapper

TEST(FaultMapper, ClassifiesRailReadbacks) {
  const ReramSpec spec = ReramSpec::nn_mapping();
  const reliability::FaultMapper mapper;
  // Reads back at G_max after writing the low pattern: stuck-at-LRS.
  EXPECT_EQ(mapper.classify(spec, spec.g_max(), spec.g_max()),
            FaultType::kStuckLrs);
  // Reads back at G_min after writing the high pattern: stuck-at-HRS.
  EXPECT_EQ(mapper.classify(spec, spec.g_min(), spec.g_min()),
            FaultType::kStuckHrs);
  // Healthy: tracks both patterns.
  EXPECT_EQ(mapper.classify(spec, spec.g_min(), spec.g_max()),
            FaultType::kNone);
}

TEST(FaultMapper, PerfectFromTruthEqualsTruth) {
  FaultMap truth(8, 8);
  truth.set(1, 2, FaultType::kStuckLrs);
  truth.set(5, 7, FaultType::kStuckHrs);
  Rng rng(3);
  const reliability::FaultMapper mapper;
  const FaultMap detected = mapper.from_truth(truth, rng);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(detected.at(r, c), truth.at(r, c));
    }
  }
}

TEST(FaultMapper, MissRateHidesFaults) {
  FaultMap truth(40, 40);
  for (std::size_t r = 0; r < 40; ++r) truth.set(r, 3, FaultType::kStuckLrs);
  reliability::FaultMapperConfig cfg;
  cfg.miss_rate = 1.0;
  Rng rng(3);
  const reliability::FaultMapper mapper(cfg);
  EXPECT_EQ(mapper.from_truth(truth, rng).fault_count(), 0u);
}

TEST(FaultMapper, MarchDetectsInjectedFaultsOnCrossbar) {
  ReramSpec spec = ReramSpec::nn_mapping();
  spec.variation_sigma = 0.0;
  spec.read_noise_sigma = 0.01;
  crossbar::Crossbar xbar(8, 8, spec);
  FaultMap injected(8, 8);
  injected.set(2, 3, FaultType::kStuckLrs);
  injected.set(6, 1, FaultType::kStuckHrs);
  xbar.inject_faults(injected);
  Rng rng(11);
  const FaultMap detected = crossbar::march_fault_map(xbar, rng);
  EXPECT_EQ(detected.at(2, 3), FaultType::kStuckLrs);
  EXPECT_EQ(detected.at(6, 1), FaultType::kStuckHrs);
  EXPECT_EQ(detected.fault_count(), 2u);
}

// -------------------------------------------------------- remap planner

FaultMap map_with_faulty_columns(std::size_t rows, std::size_t cols,
                                 const std::vector<std::size_t>& faulty) {
  FaultMap map(rows, cols);
  for (std::size_t c : faulty) map.set(0, c, FaultType::kStuckLrs);
  return map;
}

TEST(RemapPlanner, RepairsUpToSpareCount) {
  // 8 data columns + 3 spares, 3 faulty data columns: full repair.
  const FaultMap detected =
      map_with_faulty_columns(4, 11, {1, 4, 6});
  const auto plan = crossbar::plan_column_remap(detected, 8, 1);
  EXPECT_TRUE(plan.unrepaired.empty());
  EXPECT_EQ(plan.spares_used, 3u);
  EXPECT_EQ(plan.remapped_cols, 3u);
  // Every data column must sit on a clean slot.
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_TRUE(detected.column_clean(plan.slot_of_col[c]))
        << "column " << c << " -> slot " << plan.slot_of_col[c];
  }
}

TEST(RemapPlanner, ReportsUnrepairableBeyondSpares) {
  // 8 data columns + 2 spares, 4 faulty: exactly 2 left unrepaired.
  const FaultMap detected =
      map_with_faulty_columns(4, 10, {0, 2, 5, 7});
  const auto plan = crossbar::plan_column_remap(detected, 8, 1);
  EXPECT_EQ(plan.spares_used, 2u);
  EXPECT_EQ(plan.unrepaired.size(), 2u);
  for (std::size_t c : plan.unrepaired) {
    EXPECT_FALSE(detected.column_clean(plan.slot_of_col[c]));
  }
}

TEST(RemapPlanner, ImportanceDirectsSparesToHeavyColumns) {
  // 4 data columns + 1 spare, faults on columns 0 and 2; column 2
  // carries the big weights, so it gets the spare.
  const FaultMap detected = map_with_faulty_columns(4, 5, {0, 2});
  const std::vector<double> importance = {0.1, 0.0, 5.0, 0.0};
  const auto plan =
      crossbar::plan_column_remap(detected, 4, 1, importance,
                                  /*allow_swaps=*/false);
  EXPECT_TRUE(detected.column_clean(plan.slot_of_col[2]));
  EXPECT_FALSE(detected.column_clean(plan.slot_of_col[0]));
  EXPECT_EQ(plan.unrepaired, (std::vector<std::size_t>{0}));
}

TEST(RemapPlanner, SwapsParkDamageOnLightColumns) {
  // No spares at all: the faulty heavy column swaps with the lightest
  // clean column.
  const FaultMap detected = map_with_faulty_columns(4, 4, {1});
  const std::vector<double> importance = {2.0, 9.0, 0.1, 3.0};
  const auto plan = crossbar::plan_column_remap(detected, 4, 1, importance,
                                                /*allow_swaps=*/true);
  EXPECT_TRUE(detected.column_clean(plan.slot_of_col[1]));
  EXPECT_EQ(plan.unrepaired, (std::vector<std::size_t>{2}));
}

TEST(RemapPlanner, PairGroupsMoveTogether) {
  // 4 data columns = 2 pairs + 2 spare columns = 1 spare pair; a fault
  // in column 3 moves the whole (2, 3) pair.
  const FaultMap detected = map_with_faulty_columns(4, 6, {3});
  const auto plan = crossbar::plan_column_remap(detected, 4, 2);
  EXPECT_EQ(plan.slot_of_col[0], 0u);
  EXPECT_EQ(plan.slot_of_col[1], 1u);
  EXPECT_EQ(plan.slot_of_col[2], 4u);
  EXPECT_EQ(plan.slot_of_col[3], 5u);
  EXPECT_EQ(plan.spares_used, 2u);
  EXPECT_TRUE(plan.unrepaired.empty());
}

TEST(RemapPlanner, RejectsBadGeometry) {
  const FaultMap detected(4, 8);
  EXPECT_THROW(crossbar::plan_column_remap(detected, 0, 1), Error);
  EXPECT_THROW(crossbar::plan_column_remap(detected, 3, 2), Error);
  EXPECT_THROW(crossbar::plan_column_remap(detected, 10, 1), Error);
}

// ------------------------------------------------ bounded write-verify

TEST(ProgramVerified, LandsWithinToleranceOrGivesUpExplicitly) {
  ReramSpec spec = ReramSpec::nn_mapping();
  spec.write_verify_tolerance = 0.01;
  Rng rng(5);
  device::ProgramBudget budget;
  budget.max_attempts = 1;  // single pulse: give-ups must happen
  std::size_t ok = 0;
  std::size_t gave_up = 0;
  for (int i = 0; i < 300; ++i) {
    device::ReramCell cell;
    const auto res = cell.program_verified(
        spec, 0.5 * (spec.g_min() + spec.g_max()), rng, budget);
    ASSERT_LE(res.attempts, budget.max_attempts);
    if (res.status == device::ProgramStatus::kOk) {
      EXPECT_LE(res.relative_error, spec.write_verify_tolerance);
      ++ok;
    } else {
      ASSERT_EQ(res.status, device::ProgramStatus::kGaveUp);
      EXPECT_GT(res.relative_error, spec.write_verify_tolerance);
      ++gave_up;
    }
  }
  // One N(0, tol) pulse lands inside +-tol ~68% of the time.
  EXPECT_GT(ok, 150u);
  EXPECT_GT(gave_up, 30u);
}

TEST(ProgramVerified, RetriesReduceGiveUps) {
  ReramSpec spec = ReramSpec::nn_mapping();
  spec.write_verify_tolerance = 0.01;
  const auto give_up_count = [&](int attempts) {
    Rng rng(5);
    device::ProgramBudget budget;
    budget.max_attempts = attempts;
    std::size_t gave_up = 0;
    for (int i = 0; i < 300; ++i) {
      device::ReramCell cell;
      const auto res = cell.program_verified(
          spec, 0.8 * spec.g_max(), rng, budget);
      if (res.status == device::ProgramStatus::kGaveUp) ++gave_up;
    }
    return gave_up;
  };
  EXPECT_LT(give_up_count(5), give_up_count(1));
  EXPECT_EQ(give_up_count(8), 0u);  // (0.32)^8 per cell: none expected
}

TEST(ProgramVerified, EnduranceExhaustionWearsCellOut) {
  ReramSpec spec = ReramSpec::nn_mapping();
  Rng rng(5);
  device::ProgramBudget budget;
  budget.endurance_cycles = 10.0;
  budget.wear_cycles = 100.0;  // far past end of life: p_fail = 1
  device::ReramCell cell;
  const auto res =
      cell.program_verified(spec, spec.g_max(), rng, budget);
  EXPECT_EQ(res.status, device::ProgramStatus::kWriteFailed);
  EXPECT_TRUE(cell.hard_faulted());
  EXPECT_DOUBLE_EQ(cell.programmed_g(), spec.g_min());
}

TEST(ProgramVerified, HardFaultedCellReportsAndKeepsRail) {
  const ReramSpec spec = ReramSpec::nn_mapping();
  Rng rng(5);
  device::ReramCell cell;
  cell.force_stuck_lrs(spec);
  const auto res = cell.program_verified(spec, spec.g_min(), rng, {});
  EXPECT_EQ(res.status, device::ProgramStatus::kHardFault);
  EXPECT_DOUBLE_EQ(cell.programmed_g(), spec.g_max());
}

TEST(ProgramVerified, OutOfRangeTargetsTerminateClamped) {
  ReramSpec spec = ReramSpec::nn_mapping();
  spec.write_verify_tolerance = 0.01;
  Rng rng(5);
  for (double target : {-1.0, 0.0, 1e9, 10.0 * spec.g_max()}) {
    device::ReramCell cell;
    const auto res = cell.program_verified(spec, target, rng, {});
    EXPECT_LE(res.attempts, 5);
    EXPECT_GE(cell.target_g(), spec.g_min());
    EXPECT_LE(cell.target_g(), spec.g_max());
    EXPECT_GE(cell.programmed_g(), 0.0);
    EXPECT_LE(cell.programmed_g(), 2.0 * spec.g_max());
  }
}

// --------------------------------------------------- engine integration

TEST(ReliabilityEngine, DisabledConfigIsBitIdenticalToClean) {
  // Setting every reliability knob but leaving enabled = false must not
  // perturb a single RNG draw: fidelity scores compare bit-equal.
  resipe_core::EngineConfig clean;
  resipe_core::EngineConfig armed;
  armed.reliability.faults.stuck_lrs_rate = 0.05;
  armed.reliability.faults.stuck_hrs_rate = 0.05;
  armed.reliability.read_disturb_rate = 1e-6;
  armed.reliability.expected_mvms = 1e6;
  armed.reliability.endurance_cycles = 100.0;
  ASSERT_FALSE(armed.reliability.enabled);
  const auto a = eval::mvm_fidelity(clean);
  const auto b = eval::mvm_fidelity(armed);
  EXPECT_EQ(a.rmse, b.rmse);
  EXPECT_EQ(a.worst, b.worst);
  EXPECT_EQ(a.alpha, b.alpha);
}

TEST(ReliabilityEngine, MitigationArmsShareFaultRealization) {
  // The defect stream is keyed by fault_seed alone: flipping mitigation
  // must not change which cells are faulty.
  resipe_core::EngineConfig off;
  off.reliability.enabled = true;
  off.reliability.faults.stuck_lrs_rate = 0.01;
  off.reliability.faults.stuck_hrs_rate = 0.01;
  off.reliability.mitigation.enabled = false;
  resipe_core::EngineConfig on = off;
  on.reliability.mitigation.enabled = true;

  std::vector<double> w(32 * 8);
  Rng wrng(17);
  for (double& x : w) x = wrng.uniform(-1.0, 1.0);
  const std::vector<double> bias(8, 0.0);

  Rng rng_off(42);
  Rng rng_on(42);
  const resipe_core::ProgrammedMatrix m_off(off, w, bias, 32, 8, rng_off);
  const resipe_core::ProgrammedMatrix m_on(on, w, bias, 32, 8, rng_on);
  EXPECT_GT(m_off.reliability_stats().cells_faulty, 0u);
  EXPECT_EQ(m_off.reliability_stats().cells_faulty,
            m_on.reliability_stats().cells_faulty);
  // Blind arm never detects or repairs anything.
  EXPECT_EQ(m_off.reliability_stats().cells_detected, 0u);
  EXPECT_GT(m_on.reliability_stats().cells_detected, 0u);
}

TEST(ReliabilityEngine, MitigationImprovesFidelityUnderDefects) {
  resipe_core::EngineConfig off;
  off.reliability.enabled = true;
  off.reliability.faults.stuck_lrs_rate = 0.01;
  off.reliability.faults.stuck_hrs_rate = 0.01;
  off.reliability.mitigation.enabled = false;
  resipe_core::EngineConfig on = off;
  on.reliability.mitigation.enabled = true;
  const auto s_off = eval::mvm_fidelity(off);
  const auto s_on = eval::mvm_fidelity(on);
  EXPECT_LT(s_on.rmse, s_off.rmse);
}

TEST(ReliabilityEngine, OutputFlagsAllTrueWhenDisabled) {
  std::vector<double> w(16 * 4, 0.25);
  const std::vector<double> bias(4, 0.0);
  Rng rng(1);
  const resipe_core::ProgrammedMatrix m(resipe_core::EngineConfig{}, w,
                                        bias, 16, 4, rng);
  EXPECT_EQ(m.output_ok().size(), 4u);
  EXPECT_EQ(m.degraded_outputs(), 0u);
  for (bool ok : m.output_ok()) EXPECT_TRUE(ok);
}

TEST(ReliabilityEngine, SaturatedDefectsDegradeOutputsGracefully) {
  // Absurd defect rate with no spares: outputs must still compute
  // (forward succeeds) but carry degraded flags.
  resipe_core::EngineConfig cfg;
  cfg.reliability.enabled = true;
  cfg.reliability.faults.stuck_lrs_rate = 0.25;
  cfg.reliability.faults.stuck_hrs_rate = 0.25;
  cfg.reliability.mitigation.spare_cols = 0;
  cfg.reliability.mitigation.compensate_pairs = false;
  std::vector<double> w(32 * 8);
  Rng wrng(17);
  for (double& x : w) x = wrng.uniform(-1.0, 1.0);
  const std::vector<double> bias(8, 0.0);
  Rng rng(42);
  const resipe_core::ProgrammedMatrix m(cfg, w, bias, 32, 8, rng);
  EXPECT_GT(m.degraded_outputs(), 0u);
  std::vector<double> x(32, 0.5);
  std::vector<double> y(8, 0.0);
  m.forward(x, y);  // degrades, does not throw
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(ReliabilityEngine, HashSeedDecorrelatesStreams) {
  EXPECT_NE(hash_seed(1, 0, 0), hash_seed(1, 1, 0));
  EXPECT_NE(hash_seed(1, 0, 1), hash_seed(1, 1, 0));
  EXPECT_NE(hash_seed(1, 2, 3), hash_seed(2, 2, 3));
  EXPECT_EQ(hash_seed(9, 4, 2), hash_seed(9, 4, 2));
}

}  // namespace
}  // namespace resipe
