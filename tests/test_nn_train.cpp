#include "resipe/nn/train.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/nn/data.hpp"

namespace resipe::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3}, {1.0, 2.0, 3.0, -5.0, 0.0, 5.0});
  const Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      sum += p.at(i, j);
      EXPECT_GT(p.at(i, j), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, NumericallyStableForHugeLogits) {
  Tensor logits({1, 2}, {1000.0, 1001.0});
  const Tensor p = softmax(logits);
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
}

TEST(CrossEntropy, PerfectPredictionHasLowLoss) {
  Tensor logits({1, 3}, {10.0, -10.0, -10.0});
  const std::vector<int> labels{0};
  EXPECT_LT(softmax_cross_entropy(logits, labels).loss, 1e-6);
}

TEST(CrossEntropy, UniformPredictionIsLogK) {
  Tensor logits({1, 4});
  const std::vector<int> labels{2};
  EXPECT_NEAR(softmax_cross_entropy(logits, labels).loss, std::log(4.0),
              1e-9);
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  const std::vector<int> labels{3};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), Error);
}

TEST(Accuracy, CountsArgmaxHits) {
  Tensor logits({2, 2}, {0.9, 0.1, 0.2, 0.8});
  const std::vector<int> labels_right{0, 1};
  const std::vector<int> labels_half{0, 0};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels_right), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, labels_half), 0.5);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via its gradient 2(w - 3).
  Tensor w({1, 1}, {0.0});
  Tensor g({1, 1});
  Sgd opt(0.1, 0.0);
  const std::vector<Param> params{{&w, &g}};
  for (int i = 0; i < 200; ++i) {
    g[0] = 2.0 * (w[0] - 3.0);
    opt.step(params);
  }
  EXPECT_NEAR(w[0], 3.0, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor w({1, 1}, {10.0});
  Tensor g({1, 1});
  Adam opt(0.3);
  const std::vector<Param> params{{&w, &g}};
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0 * (w[0] - 3.0);
    opt.step(params);
  }
  EXPECT_NEAR(w[0], 3.0, 1e-3);
}

TEST(Dataset, GatherCopiesSamplesAndLabels) {
  Dataset ds;
  ds.images = Tensor({3, 1, 2, 2});
  for (std::size_t i = 0; i < ds.images.size(); ++i)
    ds.images[i] = static_cast<double>(i);
  ds.labels = {7, 8, 9};
  const std::vector<std::size_t> idx{2, 0};
  auto [batch, ys] = ds.gather(idx);
  EXPECT_EQ(batch.dim(0), 2u);
  EXPECT_DOUBLE_EQ(batch[0], 8.0);  // first pixel of sample 2
  EXPECT_EQ(ys[0], 9);
  EXPECT_EQ(ys[1], 7);
}

TEST(Fit, LearnsASeparableProblem) {
  // Tiny digit subset: a linear model should exceed 80% quickly.
  Rng rng(9);
  Dataset train = synthetic_digits(1500, rng);
  Dataset test = synthetic_digits(200, rng);
  Sequential model("tiny");
  model.emplace<Flatten>();
  model.emplace<Dense>(784, 10, rng);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.lr = 1e-3;
  const TrainResult result = fit(model, train, test, cfg);
  EXPECT_EQ(result.epoch_loss.size(), 4u);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
  EXPECT_GT(result.test_accuracy, 0.8);
}

TEST(Fit, WeightNoiseInjectionStillLearns) {
  Rng rng(12);
  Dataset train = synthetic_digits(800, rng);
  Dataset test = synthetic_digits(120, rng);
  Sequential model("noisy-train");
  model.emplace<Flatten>();
  model.emplace<Dense>(784, 10, rng);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.lr = 1e-3;
  cfg.weight_noise_sigma = 0.15;
  const TrainResult result = fit(model, train, test, cfg);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
  EXPECT_GT(result.test_accuracy, 0.7);
}

TEST(Fit, RejectsNegativeWeightNoise) {
  Rng rng(13);
  Dataset train = synthetic_digits(64, rng);
  Sequential model("m");
  model.emplace<Flatten>();
  model.emplace<Dense>(784, 10, rng);
  TrainConfig cfg;
  cfg.weight_noise_sigma = -0.1;
  EXPECT_THROW(fit(model, train, train, cfg), Error);
}

TEST(Dropout, TrainMasksEvalPassesThrough) {
  Dropout drop(0.5, 7);
  Tensor x({1, 100});
  x.fill(1.0);
  const Tensor eval_y = drop.forward(x, false);
  for (double v : eval_y.data()) EXPECT_DOUBLE_EQ(v, 1.0);
  const Tensor train_y = drop.forward(x, true);
  std::size_t zeros = 0;
  for (double v : train_y.data()) {
    if (v == 0.0) ++zeros;
    else EXPECT_NEAR(v, 2.0, 1e-12);  // inverted scaling 1/keep
  }
  EXPECT_GT(zeros, 20u);
  EXPECT_LT(zeros, 80u);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5, 8);
  Tensor x({1, 50});
  x.fill(1.0);
  const Tensor y = drop.forward(x, true);
  Tensor g({1, 50});
  g.fill(1.0);
  const Tensor gx = drop.backward(g);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(gx[i], y[i]);  // same mask, same scaling
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0), Error);
  EXPECT_THROW(Dropout(-0.1), Error);
}

TEST(EvaluateWith, UsesCustomForward) {
  Rng rng(10);
  Dataset data = synthetic_digits(32, rng);
  // An oracle that always answers the true label scores 100%.
  std::size_t cursor = 0;
  const double acc = evaluate_with(
      data,
      [&](const Tensor& batch) {
        Tensor logits({batch.dim(0), 10});
        for (std::size_t i = 0; i < batch.dim(0); ++i) {
          logits.at(i, static_cast<std::size_t>(data.labels[cursor + i])) =
              1.0;
        }
        cursor += batch.dim(0);
        return logits;
      },
      /*batch_size=*/8);
  EXPECT_DOUBLE_EQ(acc, 1.0);
}

}  // namespace
}  // namespace resipe::nn
