#include <gtest/gtest.h>

#include "resipe/eval/characterization.hpp"
#include "resipe/eval/comparison.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/eval/taxonomy.hpp"
#include "resipe/eval/throughput.hpp"

namespace resipe::eval {
namespace {

TEST(Taxonomy, HasTheFiveClassesOfTableI) {
  const auto rows = data_format_taxonomy();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].format, "Level");
  EXPECT_EQ(rows.back().interface, "ReSiPE GD + COG");
  // Only the single-spiking format drives non-zero voltage "Short".
  int shorts = 0;
  for (const auto& r : rows) {
    if (r.drive_duration == "Short") ++shorts;
  }
  EXPECT_EQ(shorts, 1);
  const std::string rendered = taxonomy_table().str();
  EXPECT_NE(rendered.find("Rate coding"), std::string::npos);
}

TEST(Characterization, SharedRampCancellation) {
  // Uniform inputs + saturated column: t_out == t_in (Sec. III-D).
  const circuits::CircuitParams p;
  for (double t : {20e-9, 50e-9, 80e-9}) {
    EXPECT_NEAR(single_point_t_out(p, 32, t, 3.2e-3), t, 1e-11);
  }
}

TEST(Characterization, Fig5ShapeHolds) {
  CharacterizationConfig cfg;
  cfg.samples = 60;
  cfg.sweep_points = 16;
  const auto result = characterize(cfg);
  ASSERT_EQ(result.random_samples.size(), 60u);

  // (a) outputs never exceed the slice.
  for (const auto& pt : result.random_samples) {
    EXPECT_LE(pt.t_out, cfg.circuit.slice_length + 1e-12);
    EXPECT_GE(pt.t_out, 0.0);
  }

  // (b) the fixed-G curves are ordered: larger G -> lower t_out for
  // the same input strength (Ccog saturation, Sec. III-D).
  const double x_probe = 80e-12;
  EXPECT_GT(result.curve1(x_probe), result.curve2(x_probe));
  EXPECT_GT(result.curve2(x_probe), result.curve3(x_probe));

  // (c) the sweeps are monotone in input strength.
  for (std::size_t i = 1; i < result.sweep_2_5ms.size(); ++i) {
    EXPECT_GE(result.sweep_2_5ms[i].t_out,
              result.sweep_2_5ms[i - 1].t_out - 1e-12);
  }

  // (d) most high-G random samples fall below Curve 1.
  std::size_t below = 0;
  std::size_t high_g = 0;
  for (const auto& pt : result.random_samples) {
    if (pt.g_total <= 1.6e-3) continue;
    ++high_g;
    if (pt.t_out < result.curve1(pt.strength)) ++below;
  }
  ASSERT_GT(high_g, 0u);
  EXPECT_GT(static_cast<double>(below) / static_cast<double>(high_g), 0.5);
}

TEST(Characterization, MeasuredBelowLinearPrediction) {
  // "t_out is smaller than the linear calculation, especially at big
  // t_in" — the exact output never exceeds Eq.(6).
  CharacterizationConfig cfg;
  cfg.samples = 40;
  const auto result = characterize(cfg);
  for (const auto& pt : result.random_samples) {
    EXPECT_LE(pt.t_out, pt.t_out_ideal + 1e-12);
  }
}

TEST(Comparison, HeadlinesLandInThePaperBallpark) {
  const ComparisonResult r = compare_designs();
  ASSERT_EQ(r.points.size(), 4u);
  const auto& h = r.headlines;
  // Paper: 67.1% power reduction vs level-based.
  EXPECT_NEAR(h.power_reduction_vs_level, 0.671, 0.07);
  // Paper: 1.97x / 2.41x / 49.76x power-efficiency gains.
  EXPECT_NEAR(h.peff_gain_vs_level, 1.97, 0.4);
  EXPECT_NEAR(h.peff_gain_vs_rate, 2.41, 0.4);
  EXPECT_NEAR(h.peff_gain_vs_pwm, 49.76, 8.0);
  // Paper: 50% / 68.8% latency savings (exact by construction).
  EXPECT_NEAR(h.latency_saving_vs_rate, 0.50, 1e-9);
  EXPECT_NEAR(h.latency_saving_vs_pwm, 0.688, 0.002);
  // Paper: 14.2% / 85.3% area savings.
  EXPECT_NEAR(h.area_saving_vs_rate, 0.142, 0.08);
  EXPECT_NEAR(h.area_saving_vs_level, 0.853, 0.05);
  // Paper: COG cluster = 98.1% of ReSiPE power.
  EXPECT_NEAR(h.cog_power_share, 0.981, 0.02);
}

TEST(Comparison, ResipeWinsEveryEfficiencyMatchup) {
  const ComparisonResult r = compare_designs();
  const double resipe_eff = r.points[0].power_efficiency;
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    EXPECT_GT(resipe_eff, r.points[i].power_efficiency) << r.points[i].name;
  }
}

TEST(Comparison, RenderMentionsAllDesigns) {
  const ComparisonResult r = compare_designs();
  const std::string s = r.render();
  EXPECT_NE(s.find("ReSiPE"), std::string::npos);
  EXPECT_NE(s.find("Level-based"), std::string::npos);
  EXPECT_NE(s.find("Rate-coding"), std::string::npos);
  EXPECT_NE(s.find("PWM-based"), std::string::npos);
}

TEST(Throughput, ResipeLeadsAtEveryBudget) {
  const ThroughputResult r = throughput_tradeoff(0.1e-6, 0.5e-6, 5);
  ASSERT_EQ(r.series.size(), 4u);
  const auto& resipe = r.series[0];
  for (std::size_t i = 0; i < r.area_axis.size(); ++i) {
    for (std::size_t s = 1; s < r.series.size(); ++s) {
      EXPECT_GE(resipe.throughput[i], r.series[s].throughput[i])
          << "budget " << r.area_axis[i] << " design " << r.series[s].name;
    }
  }
}

TEST(Throughput, MonotoneInAreaBudget) {
  const ThroughputResult r = throughput_tradeoff(0.05e-6, 0.5e-6, 8);
  for (const auto& s : r.series) {
    for (std::size_t i = 1; i < s.throughput.size(); ++i) {
      EXPECT_GE(s.throughput[i], s.throughput[i - 1]);
    }
  }
}

TEST(Throughput, ReplicationMath) {
  energy::DesignPoint p;
  p.area = 1e-8;       // 0.01 mm^2
  p.throughput = 100;  // ops/s
  EXPECT_DOUBLE_EQ(replicated_throughput(p, 3.5e-8), 300.0);
  EXPECT_DOUBLE_EQ(replicated_throughput(p, 0.5e-8), 0.0);
}

TEST(Fidelity, ScoreFieldsArePopulated) {
  const auto score = mvm_fidelity(resipe_core::EngineConfig{}, 16, 4, 16);
  EXPECT_GT(score.rmse, 0.0);
  EXPECT_GE(score.worst, score.rmse);
  EXPECT_GT(score.alpha, 0.0);
  EXPECT_LE(score.alpha, 1.0);
}

}  // namespace
}  // namespace resipe::eval
