#include "resipe/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "resipe/eval/accuracy.hpp"
#include "resipe/eval/fault_tolerance.hpp"
#include "resipe/eval/yield.hpp"
#include "resipe/telemetry/metrics.hpp"

namespace resipe {
namespace {

TEST(ParallelFor, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
  parallel_for_chunked(
      0, 4, [&](std::size_t, std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleElement) {
  std::atomic<int> calls{0};
  std::size_t seen = 99;
  parallel_for(1, [&](std::size_t i) { ++calls; seen = i; }, 8);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { ++hits[i]; }, 8);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunked, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 997;  // not a multiple of any grain
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunked(
      kN, 13,
      [&](std::size_t b, std::size_t e) {
        ASSERT_LT(b, e);
        ASSERT_LE(e, kN);
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      8);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunked, AutoGrainCoversEverything) {
  constexpr std::size_t kN = 321;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunked(
      kN, 0,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  EXPECT_FALSE(in_parallel_region());
  parallel_for(
      kOuter,
      [&](std::size_t o) {
        EXPECT_TRUE(in_parallel_region());
        // The nested loop must execute inline on this thread.
        parallel_for(
            kInner, [&](std::size_t i) { ++hits[o * kInner + i]; }, 8);
      },
      4);
  EXPECT_FALSE(in_parallel_region());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolStaysUsable) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("item 37 failed");
          },
          4),
      std::runtime_error);

  // The pool must survive a failed region.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](std::size_t i) { ++hits[i]; }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialPathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          10, [](std::size_t i) { if (i == 3) throw std::logic_error("x"); },
          1),
      std::logic_error);
}

TEST(ParallelRuntime, ThreadCountResolution) {
  EXPECT_GE(hardware_threads(), 1u);
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  set_default_threads(0);  // restore auto
  EXPECT_GE(default_threads(), 1u);
}

TEST(ParallelTelemetry, CounterTotalsIndependentOfThreadCount) {
  // With telemetry enabled, pool workers batch increments in
  // thread-local shards merged at join — the totals must match the
  // serial path exactly.  (In RESIPE_TELEMETRY_DISABLED builds the
  // shard hooks are never installed and counter_add hits the shared
  // atomic directly; the equality must hold there too.)
  telemetry::set_enabled(true);
  auto& c =
      telemetry::MetricRegistry::instance().counter("test.parallel.shard");
  const auto run = [&](std::size_t threads) {
    c.reset();
    parallel_for(
        64, [&](std::size_t) { telemetry::counter_add(c, 3); }, threads);
    return c.value();
  };
  const std::uint64_t serial = run(1);
  EXPECT_EQ(serial, 64u * 3u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
  telemetry::set_enabled(false);
}

// --- Bit-identity of the parallel eval sweeps -------------------------
//
// The determinism contract (DESIGN.md "Parallel runtime"): every sweep
// decomposes into work items that derive their randomness from
// hash_seed streams keyed on the item index and reduce in index order
// on the calling thread, so the thread count can never change the
// result.  These tests pin that contract bit-for-bit at 1/2/8 threads.

TEST(ParallelBitIdentity, YieldSweep) {
  eval::YieldConfig cfg;
  cfg.sigmas = {0.0, 0.10, 0.20};
  cfg.chips_per_sigma = 6;
  cfg.matrix_rows = 16;
  cfg.matrix_cols = 4;
  cfg.samples_per_chip = 8;
  const auto run = [&](std::size_t threads) {
    eval::YieldConfig c = cfg;
    c.threads = threads;
    return eval::mvm_yield(resipe_core::EngineConfig{}, c);
  };
  const auto serial = run(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto par = run(threads);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(par[i].mean_rmse, serial[i].mean_rmse);
      EXPECT_DOUBLE_EQ(par[i].worst_rmse, serial[i].worst_rmse);
      EXPECT_DOUBLE_EQ(par[i].yield, serial[i].yield);
    }
  }
}

TEST(ParallelBitIdentity, AccuracySweep) {
  eval::AccuracyConfig cfg;
  cfg.sigmas = {0.0, 0.10};
  cfg.train_samples = 300;
  cfg.test_samples = 50;
  cfg.epochs = 1;
  cfg.mc_seeds = 2;
  const auto run = [&](std::size_t threads) {
    eval::AccuracyConfig c = cfg;
    c.threads = threads;
    return eval::evaluate_network_accuracy(nn::BenchmarkNet::kMlp1, c);
  };
  const auto serial = run(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto par = run(threads);
    EXPECT_DOUBLE_EQ(par.software_accuracy, serial.software_accuracy);
    ASSERT_EQ(par.accuracy.size(), serial.accuracy.size());
    for (std::size_t i = 0; i < serial.accuracy.size(); ++i) {
      EXPECT_DOUBLE_EQ(par.accuracy[i], serial.accuracy[i]);
    }
  }
}

TEST(ParallelBitIdentity, FaultToleranceSweep) {
  eval::FaultToleranceConfig cfg;
  cfg.net = nn::BenchmarkNet::kMlp1;
  cfg.defect_rates = {0.01, 0.02};
  cfg.train_samples = 300;
  cfg.test_samples = 50;
  cfg.epochs = 1;
  cfg.mc_seeds = 2;
  const auto run = [&](std::size_t threads) {
    eval::FaultToleranceConfig c = cfg;
    c.threads = threads;
    return eval::evaluate_fault_tolerance(c);
  };
  const auto serial = run(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto par = run(threads);
    EXPECT_DOUBLE_EQ(par.baseline_accuracy, serial.baseline_accuracy);
    ASSERT_EQ(par.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_DOUBLE_EQ(par.points[i].accuracy_off,
                       serial.points[i].accuracy_off);
      EXPECT_DOUBLE_EQ(par.points[i].accuracy_on,
                       serial.points[i].accuracy_on);
      EXPECT_EQ(par.points[i].cells_faulty, serial.points[i].cells_faulty);
      EXPECT_EQ(par.points[i].cells_compensated,
                serial.points[i].cells_compensated);
      EXPECT_EQ(par.points[i].degraded_outputs,
                serial.points[i].degraded_outputs);
    }
  }
}

}  // namespace
}  // namespace resipe
