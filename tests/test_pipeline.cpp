#include "resipe/resipe/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/common/units.hpp"

namespace resipe::resipe_core {
namespace {

using namespace resipe::units;

TEST(TwoSlicePipeline, SingleLayerLatencyIsTwoSlices) {
  const TwoSlicePipeline pipe(1, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.input_latency(), 200.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.initiation_interval(), 100.0 * ns);
}

TEST(TwoSlicePipeline, DeepNetworkLatencyGrowsOneSlicePerLayer) {
  const TwoSlicePipeline pipe(5, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.input_latency(), 600.0 * ns);
}

TEST(TwoSlicePipeline, OutputSliceSchedule) {
  const TwoSlicePipeline pipe(3, 100.0 * ns);
  // Input presented in slice 0: layer 0 emits in slice 1, layer 2 in
  // slice 3.
  EXPECT_EQ(pipe.output_slice(0, 0), 1u);
  EXPECT_EQ(pipe.output_slice(2, 0), 3u);
  // A later input shifts everything.
  EXPECT_EQ(pipe.output_slice(2, 4), 7u);
  EXPECT_THROW(pipe.output_slice(3, 0), Error);
}

TEST(TwoSlicePipeline, StreamLatency) {
  const TwoSlicePipeline pipe(3, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.stream_latency(0), 0.0);
  EXPECT_DOUBLE_EQ(pipe.stream_latency(1), 400.0 * ns);
  // 10 inputs: last presented in slice 9, final output in slice 12.
  EXPECT_DOUBLE_EQ(pipe.stream_latency(10), 1300.0 * ns);
}

TEST(TwoSlicePipeline, SpeedupApproachesLayersPlusOne) {
  const TwoSlicePipeline pipe(7, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.pipeline_speedup(1), 1.0);
  EXPECT_GT(pipe.pipeline_speedup(100), 7.0);
  EXPECT_LT(pipe.pipeline_speedup(100), 8.0);
}

TEST(TwoSlicePipeline, DiagramShowsSkewedOccupancy) {
  const TwoSlicePipeline pipe(2, 100.0 * ns);
  const std::string d = pipe.diagram(3);
  EXPECT_NE(d.find("layer 0"), std::string::npos);
  EXPECT_NE(d.find("layer 1"), std::string::npos);
  EXPECT_NE(d.find("i0"), std::string::npos);
  EXPECT_NE(d.find("i2"), std::string::npos);
}

namespace {

std::vector<std::string> diagram_lines(const std::string& d) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < d.size()) {
    const std::size_t nl = d.find('\n', pos);
    lines.push_back(d.substr(pos, nl - pos));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

}  // namespace

TEST(TwoSlicePipeline, DiagramColumnsStayAlignedForSmallIndices) {
  const TwoSlicePipeline pipe(2, 100.0 * ns);
  const auto lines = diagram_lines(pipe.diagram(3));
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), '|'),
              std::count(lines[0].begin(), lines[0].end(), '|'))
        << line;
  }
}

TEST(TwoSlicePipeline, DiagramColumnsStayAlignedBeyondIndex100) {
  // Regression: the original renderer only padded 0-99, so slice and
  // input labels >= 100 skewed every later column.
  const TwoSlicePipeline pipe(2, 100.0 * ns);
  const std::string d = pipe.diagram(120, 130);
  const auto lines = diagram_lines(d);
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), '|'),
              std::count(lines[0].begin(), lines[0].end(), '|'))
        << line;
  }
  // The three-digit labels must still be present and whole.
  EXPECT_NE(d.find("|100"), std::string::npos);
  EXPECT_NE(d.find("i100"), std::string::npos);
  EXPECT_NE(d.find("i119"), std::string::npos);
  // '|' separators must land at identical offsets on every line.
  std::vector<std::size_t> bars0;
  for (std::size_t i = 0; i < lines[0].size(); ++i) {
    if (lines[0][i] == '|') bars0.push_back(i);
  }
  for (const auto& line : lines) {
    std::vector<std::size_t> bars;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '|') bars.push_back(i);
    }
    EXPECT_EQ(bars, bars0);
  }
}

TEST(TwoSlicePipeline, RejectsDegenerateConfigs) {
  EXPECT_THROW(TwoSlicePipeline(0, 100.0 * ns), Error);
  EXPECT_THROW(TwoSlicePipeline(1, 0.0), Error);
}

}  // namespace
}  // namespace resipe::resipe_core
