#include "resipe/resipe/pipeline.hpp"

#include <gtest/gtest.h>

#include "resipe/common/error.hpp"
#include "resipe/common/units.hpp"

namespace resipe::resipe_core {
namespace {

using namespace resipe::units;

TEST(TwoSlicePipeline, SingleLayerLatencyIsTwoSlices) {
  const TwoSlicePipeline pipe(1, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.input_latency(), 200.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.initiation_interval(), 100.0 * ns);
}

TEST(TwoSlicePipeline, DeepNetworkLatencyGrowsOneSlicePerLayer) {
  const TwoSlicePipeline pipe(5, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.input_latency(), 600.0 * ns);
}

TEST(TwoSlicePipeline, OutputSliceSchedule) {
  const TwoSlicePipeline pipe(3, 100.0 * ns);
  // Input presented in slice 0: layer 0 emits in slice 1, layer 2 in
  // slice 3.
  EXPECT_EQ(pipe.output_slice(0, 0), 1u);
  EXPECT_EQ(pipe.output_slice(2, 0), 3u);
  // A later input shifts everything.
  EXPECT_EQ(pipe.output_slice(2, 4), 7u);
  EXPECT_THROW(pipe.output_slice(3, 0), Error);
}

TEST(TwoSlicePipeline, StreamLatency) {
  const TwoSlicePipeline pipe(3, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.stream_latency(0), 0.0);
  EXPECT_DOUBLE_EQ(pipe.stream_latency(1), 400.0 * ns);
  // 10 inputs: last presented in slice 9, final output in slice 12.
  EXPECT_DOUBLE_EQ(pipe.stream_latency(10), 1300.0 * ns);
}

TEST(TwoSlicePipeline, SpeedupApproachesLayersPlusOne) {
  const TwoSlicePipeline pipe(7, 100.0 * ns);
  EXPECT_DOUBLE_EQ(pipe.pipeline_speedup(1), 1.0);
  EXPECT_GT(pipe.pipeline_speedup(100), 7.0);
  EXPECT_LT(pipe.pipeline_speedup(100), 8.0);
}

TEST(TwoSlicePipeline, DiagramShowsSkewedOccupancy) {
  const TwoSlicePipeline pipe(2, 100.0 * ns);
  const std::string d = pipe.diagram(3);
  EXPECT_NE(d.find("layer 0"), std::string::npos);
  EXPECT_NE(d.find("layer 1"), std::string::npos);
  EXPECT_NE(d.find("i0"), std::string::npos);
  EXPECT_NE(d.find("i2"), std::string::npos);
}

TEST(TwoSlicePipeline, RejectsDegenerateConfigs) {
  EXPECT_THROW(TwoSlicePipeline(0, 100.0 * ns), Error);
  EXPECT_THROW(TwoSlicePipeline(1, 0.0), Error);
}

}  // namespace
}  // namespace resipe::resipe_core
