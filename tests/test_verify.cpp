// The verification harness verified: generator determinism, contract
// registry behaviour, the shrinker's minimality loop, repro round-trip,
// and replay of the committed corpus (tests/corpus/*.json).  Runs under
// `ctest -L verify` and in the telemetry-off build, where the off-flag
// and thread-determinism contracts double as bit-identity checks.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/nn/model.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/verify/contracts.hpp"
#include "resipe/verify/fuzzer.hpp"
#include "resipe/verify/generators.hpp"
#include "resipe/verify/serialize.hpp"
#include "resipe/verify/shrink.hpp"
#include "testing/approx.hpp"

#ifndef RESIPE_CORPUS_DIR
#error "RESIPE_CORPUS_DIR must point at the committed corpus"
#endif

namespace resipe::verify {
namespace {

CaseSpec case_for_seed(std::uint64_t seed) {
  return generate_case(CaseDescriptor{kSchemaVersion, seed});
}

// Disarms the deliberate bug even when an assertion bails out early.
struct BugGuard {
  explicit BugGuard(InjectedBug bug) { set_injected_bug(bug); }
  ~BugGuard() { set_injected_bug(InjectedBug::kNone); }
};

TEST(Generators, SameSeedSameCase) {
  for (std::uint64_t seed : {1ull, 17ull, 983ull}) {
    ReproRecord a{case_for_seed(seed), "all", ""};
    ReproRecord b{case_for_seed(seed), "all", ""};
    EXPECT_EQ(repro_to_json(a), repro_to_json(b)) << "seed " << seed;
  }
}

TEST(Generators, EveryCaseSatisfiesValidate) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const CaseSpec spec = case_for_seed(seed);
    EXPECT_NO_THROW(spec.config.validate()) << spec.summary();
  }
}

TEST(Generators, CoversBothModelsAndAllMappings) {
  int linear = 0, exact = 0;
  int mappings[3] = {0, 0, 0};
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const CaseSpec spec = case_for_seed(seed);
    (spec.config.circuit.model == circuits::TransferModel::kLinear ? linear
                                                                   : exact)++;
    ++mappings[static_cast<int>(spec.config.mapping)];
  }
  EXPECT_GT(linear, 0);
  EXPECT_GT(exact, 0);
  for (int m : mappings) EXPECT_GT(m, 0);
}

TEST(Contracts, RegistryHasStableUniqueNames) {
  const auto& registry = contract_registry();
  ASSERT_FALSE(registry.empty());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_FALSE(registry[i].description.empty()) << registry[i].name;
    for (std::size_t j = i + 1; j < registry.size(); ++j) {
      EXPECT_NE(registry[i].name, registry[j].name);
    }
  }
  EXPECT_NE(find_contract("fast_vs_tile"), nullptr);
  EXPECT_EQ(find_contract("no_such_contract"), nullptr);
}

TEST(Contracts, AllHoldOnGeneratedCases) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const CaseSpec spec = case_for_seed(seed);
    for (const auto& contract : contract_registry()) {
      const ContractResult r = contract.check(spec);
      EXPECT_FALSE(r.violated())
          << contract.name << " on " << spec.summary() << ": " << r.detail;
    }
  }
}

TEST(Contracts, ThreadAndOffFlagDeterminismNeverSkip) {
  // These two are the bit-identity anchors the telemetry-off build
  // relies on; they must actually run, not skip.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CaseSpec spec = case_for_seed(seed);
    for (const char* name : {"threads_identical", "off_flags_identical"}) {
      const Contract* contract = find_contract(name);
      ASSERT_NE(contract, nullptr);
      const ContractResult r = contract->check(spec);
      EXPECT_TRUE(r.pass) << name << " on " << spec.summary() << ": "
                          << r.detail;
      EXPECT_FALSE(r.skipped) << name << " on " << spec.summary();
    }
  }
}

TEST(InjectedBug, RowDropIsCaughtAndShrunkToTiny) {
  const Contract* contract = find_contract("fast_vs_tile");
  ASSERT_NE(contract, nullptr);
  const BugGuard guard(InjectedBug::kFastMvmRowDrop);

  // The bug zeroes the last crossbar row inside FastMvm only, so the
  // differential contract must flag it within a handful of seeds.
  CaseSpec failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 50 && !found; ++seed) {
    failing = case_for_seed(seed);
    found = contract->check(failing).violated();
  }
  ASSERT_TRUE(found) << "row-drop bug survived 50 fuzz cases";

  const ShrinkResult shrunk = shrink_case(failing, *contract);
  EXPECT_LE(shrunk.spec.rows, 4u) << shrunk.spec.summary();
  EXPECT_LE(shrunk.spec.cols, 4u) << shrunk.spec.summary();
  EXPECT_TRUE(contract->check(shrunk.spec).violated());

  // The minimal reproducer must pass once the bug is gone.
  set_injected_bug(InjectedBug::kNone);
  EXPECT_FALSE(contract->check(shrunk.spec).violated());
}

TEST(Shrinker, RejectsPassingCase) {
  const Contract* contract = find_contract("fast_vs_tile");
  ASSERT_NE(contract, nullptr);
  EXPECT_THROW(shrink_case(case_for_seed(1), *contract), Error);
}

TEST(Serialize, ReproRoundTripsBitExact) {
  for (std::uint64_t seed : {1ull, 5ull, 33ull}) {
    ReproRecord record{case_for_seed(seed), "fast_vs_tile", "detail text"};
    const std::string json = repro_to_json(record);
    const ReproRecord parsed = repro_from_json(json);
    EXPECT_EQ(repro_to_json(parsed), json) << "seed " << seed;
    EXPECT_EQ(parsed.contract, record.contract);
    EXPECT_EQ(parsed.spec.summary(), record.spec.summary());
  }
}

TEST(Serialize, SnippetEmbedsReplayableRecord) {
  const ReproRecord record{case_for_seed(7), "perm_columns", ""};
  const std::string snippet = repro_snippet(record);
  EXPECT_NE(snippet.find("perm_columns"), std::string::npos);
  EXPECT_NE(snippet.find("repro_from_json"), std::string::npos);
}

TEST(Serialize, RejectsUnknownKeys) {
  EXPECT_THROW(repro_from_json("{\"schema_version\": 1, \"bogus\": 2}"),
               Error);
}

TEST(Corpus, EveryCommittedCaseReplaysClean) {
  const std::filesystem::path dir(RESIPE_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t records = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++records;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    const ReproRecord record = repro_from_json(buf.str());
    for (const auto& contract : contract_registry()) {
      if (record.contract != "all" && record.contract != contract.name) {
        continue;
      }
      const ContractResult r = contract.check(record.spec);
      EXPECT_FALSE(r.violated()) << entry.path().filename() << " "
                                 << contract.name << ": " << r.detail;
    }
  }
  EXPECT_GE(records, 10u) << "corpus went missing";
}

TEST(Fuzzer, ReportAggregatesAndBenchLineIsStable) {
  FuzzOptions options;
  options.cases = 20;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.cases_run, 20u);
  EXPECT_EQ(report.violations(), 0u);
  EXPECT_GT(report.checks(), 0u);
  EXPECT_NE(report.bench_json().find("\"bench\": \"verify_fuzz\""),
            std::string::npos);
}

TEST(Fuzzer, ContractFilterRestrictsChecks) {
  FuzzOptions options;
  options.cases = 5;
  options.contract_filter = "codec_roundtrip";
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.contracts.size(), 1u);
  EXPECT_THROW(
      [] {
        FuzzOptions bad;
        bad.contract_filter = "no_such_contract";
        run_fuzz(bad);
      }(),
      Error);
}

// --- satellite 2: EngineConfig::validate at engine entry points --------

using resipe_core::EngineConfig;
using resipe_core::ProgrammedMatrix;

TEST(EngineConfigValidate, RejectsBadEngineKnobs) {
  EngineConfig cfg;
  cfg.tile_rows = 0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = EngineConfig{};
  cfg.tile_cols = 5;  // differential pairs need an even width
  EXPECT_THROW(cfg.validate(), Error);
  cfg.mapping = crossbar::SignedMapping::kOffsetColumn;
  EXPECT_NO_THROW(cfg.validate());

  cfg = EngineConfig{};
  cfg.calibration_headroom = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.calibration_headroom = 1.5;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = EngineConfig{};
  cfg.input_scale_margin = -1.0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = EngineConfig{};
  cfg.retention_time = -1.0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = EngineConfig{};
  cfg.introspect.spike_time_bins = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(EngineConfigValidate, SubConfigViolationsPropagate) {
  EngineConfig cfg;
  cfg.circuit.v_s = 0.0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = EngineConfig{};
  cfg.device.levels = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(EngineConfigValidate, GuardsProgrammedMatrixConstruction) {
  EngineConfig cfg;
  cfg.calibration_headroom = 2.0;
  Rng rng(1);
  const std::vector<double> w(4, 0.1);
  const std::vector<double> b(2, 0.0);
  EXPECT_THROW(ProgrammedMatrix(cfg, w, b, 2, 2, rng), Error);
}

// --- satellite 3: reliability x introspect x ir-drop, both thread counts

class FlagCrossProduct
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(FlagCrossProduct, LogitsBitIdenticalAcrossThreadCounts) {
  const auto [reliability, introspect, ir_drop] = GetParam();
  Rng rng(404);
  nn::Sequential model("flags_mlp");
  model.emplace<nn::Dense>(6, 10, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(10, 4, rng);

  EngineConfig cfg;
  cfg.tile_rows = 8;
  cfg.tile_cols = 8;
  cfg.reliability.enabled = reliability;
  cfg.reliability.faults.stuck_lrs_rate = reliability ? 0.01 : 0.0;
  cfg.introspect.enabled = introspect;
  cfg.model_wire_ir_drop = ir_drop;

  nn::Tensor calibration({8, 6});
  for (double& v : calibration.data()) v = rng.uniform(0.0, 1.0);
  nn::Tensor batch({3, 6});
  for (double& v : batch.data()) v = rng.uniform(0.0, 1.0);

  const resipe_core::ResipeNetwork net(model, cfg, calibration);
  std::vector<nn::Tensor> logits;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_default_threads(threads);
    logits.push_back(net.forward(batch));
  }
  set_default_threads(0);

  ASSERT_EQ(logits[0].data().size(), logits[1].data().size());
  EXPECT_EQ(std::memcmp(logits[0].data().data(), logits[1].data().data(),
                        logits[0].data().size() * sizeof(double)),
            0)
      << "rel=" << reliability << " insp=" << introspect
      << " ir=" << ir_drop;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, FlagCrossProduct,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace resipe::verify
