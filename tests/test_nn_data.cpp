#include "resipe/nn/data.hpp"

#include <gtest/gtest.h>

#include <set>

#include "resipe/common/error.hpp"

namespace resipe::nn {
namespace {

TEST(SyntheticDigits, ShapesAndLabels) {
  Rng rng(1);
  const Dataset ds = synthetic_digits(50, rng);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.classes, 10u);
  ASSERT_EQ(ds.images.rank(), 4u);
  EXPECT_EQ(ds.images.dim(1), 1u);
  EXPECT_EQ(ds.images.dim(2), 28u);
  EXPECT_EQ(ds.images.dim(3), 28u);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SyntheticDigits, PixelsInUnitRange) {
  Rng rng(2);
  const Dataset ds = synthetic_digits(20, rng);
  for (double v : ds.images.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SyntheticDigits, DeterministicPerSeed) {
  Rng a(3);
  Rng b(3);
  const Dataset da = synthetic_digits(10, a);
  const Dataset db = synthetic_digits(10, b);
  EXPECT_EQ(da.labels, db.labels);
  for (std::size_t i = 0; i < da.images.size(); ++i) {
    EXPECT_DOUBLE_EQ(da.images[i], db.images[i]);
  }
}

TEST(SyntheticDigits, CoversManyClasses) {
  Rng rng(4);
  const Dataset ds = synthetic_digits(200, rng);
  const std::set<int> seen(ds.labels.begin(), ds.labels.end());
  EXPECT_GE(seen.size(), 8u);
}

TEST(RenderDigit, GlyphsAreDistinct) {
  std::vector<double> one(28 * 28), seven(28 * 28);
  render_digit(1, 0, 0, 1.0, one);
  render_digit(7, 0, 0, 1.0, seven);
  double diff = 0.0;
  for (std::size_t i = 0; i < one.size(); ++i)
    diff += std::abs(one[i] - seven[i]);
  EXPECT_GT(diff, 5.0);
}

TEST(RenderDigit, RejectsBadArguments) {
  std::vector<double> buf(28 * 28);
  EXPECT_THROW(render_digit(10, 0, 0, 1.0, buf), resipe::Error);
  std::vector<double> small(10);
  EXPECT_THROW(render_digit(1, 0, 0, 1.0, small), resipe::Error);
}

TEST(SyntheticObjects, ShapesAndLabels) {
  Rng rng(5);
  const Dataset ds = synthetic_objects(30, rng);
  EXPECT_EQ(ds.size(), 30u);
  ASSERT_EQ(ds.images.rank(), 4u);
  EXPECT_EQ(ds.images.dim(1), 3u);
  EXPECT_EQ(ds.images.dim(2), 32u);
  EXPECT_EQ(ds.images.dim(3), 32u);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SyntheticObjects, PixelsInUnitRange) {
  Rng rng(6);
  const Dataset ds = synthetic_objects(10, rng);
  for (double v : ds.images.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SyntheticObjects, ClassesDifferInContent) {
  // Average image of class 0 (red disc) must differ from class 5
  // (blue disc) in the red channel.
  Rng rng(7);
  const Dataset ds = synthetic_objects(400, rng);
  double red0 = 0.0, red5 = 0.0;
  std::size_t n0 = 0, n5 = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.labels[i] != 0 && ds.labels[i] != 5) continue;
    double red = 0.0;
    for (std::size_t y = 0; y < 32; ++y)
      for (std::size_t x = 0; x < 32; ++x) red += ds.images.at(i, 0, y, x);
    if (ds.labels[i] == 0) {
      red0 += red;
      ++n0;
    } else {
      red5 += red;
      ++n5;
    }
  }
  ASSERT_GT(n0, 0u);
  ASSERT_GT(n5, 0u);
  EXPECT_GT(red0 / n0, red5 / n5);
}

TEST(SyntheticData, EmptyRequestRejected) {
  Rng rng(8);
  EXPECT_THROW(synthetic_digits(0, rng), resipe::Error);
  EXPECT_THROW(synthetic_objects(0, rng), resipe::Error);
}

}  // namespace
}  // namespace resipe::nn
