#include "resipe/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"

namespace resipe {
namespace {

TEST(Summarize, BasicStatistics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{5.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, RejectsMismatched) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1};
  EXPECT_THROW(pearson(xs, ys), Error);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2, 5};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(SolveLinearSystem, TwoByTwo) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  const auto x = solve_linear_system({2, 1, 1, 3}, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}), Error);
}

TEST(Polyfit, RecoversExactQuadratic) {
  const auto xs = linspace(-2.0, 2.0, 25);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(1.5 - 0.5 * x + 2.0 * x * x);
  const PolyFit fit = polyfit(xs, ys, 2);
  ASSERT_EQ(fit.coeffs.size(), 3u);
  EXPECT_NEAR(fit.coeffs[0], 1.5, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], -0.5, 1e-9);
  EXPECT_NEAR(fit.coeffs[2], 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Polyfit, NoisyFitHasReasonableR2) {
  Rng rng(5);
  const auto xs = linspace(0.0, 1.0, 200);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + rng.normal(0.0, 0.05));
  const PolyFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.coeffs[1], 3.0, 0.1);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(Polyfit, RejectsTooFewPoints) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 2), Error);
  EXPECT_THROW(polyfit(xs, ys, -1), Error);
}

TEST(PolyFitEval, HornerEvaluation) {
  PolyFit fit;
  fit.coeffs = {1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(fit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fit(1.0), 6.0);
  EXPECT_DOUBLE_EQ(fit(2.0), 17.0);
}

TEST(Linspace, EndpointsExact) {
  const auto v = linspace(0.1, 0.9, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.1);
  EXPECT_DOUBLE_EQ(v.back(), 0.9);
  EXPECT_NEAR(v[2], 0.5, 1e-12);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_GT(relative_error(1.0, 0.0), 1e20);  // eps denominator
}

}  // namespace
}  // namespace resipe
