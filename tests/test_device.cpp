#include "resipe/device/reram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "resipe/common/error.hpp"
#include "resipe/common/stats.hpp"

namespace resipe::device {
namespace {

TEST(ReramSpec, PresetsAreValidAndMatchPaper) {
  const ReramSpec ch = ReramSpec::characterization();
  EXPECT_NO_THROW(ch.validate());
  EXPECT_DOUBLE_EQ(ch.r_lrs, 10e3);
  EXPECT_DOUBLE_EQ(ch.r_hrs, 1e6);

  const ReramSpec nn = ReramSpec::nn_mapping();
  EXPECT_NO_THROW(nn.validate());
  EXPECT_DOUBLE_EQ(nn.r_lrs, 50e3);
  // The Sec. III-D condition: a 32-cell column stays below 1.6 mS.
  EXPECT_LE(32.0 * nn.g_max(), 1.6e-3);
}

TEST(ReramSpec, ValidateRejectsBadCorners) {
  ReramSpec s;
  s.r_lrs = -1.0;
  EXPECT_THROW(s.validate(), Error);
  s = ReramSpec{};
  s.r_hrs = s.r_lrs;  // HRS must exceed LRS
  EXPECT_THROW(s.validate(), Error);
  s = ReramSpec{};
  s.levels = 1;
  EXPECT_THROW(s.validate(), Error);
  s = ReramSpec{};
  s.variation_sigma = -0.1;
  EXPECT_THROW(s.validate(), Error);
}

TEST(ConductanceQuantizer, EndpointsMapToWindow) {
  const ReramSpec spec = ReramSpec::characterization();
  const ConductanceQuantizer q(spec);
  EXPECT_DOUBLE_EQ(q.weight_to_g(0.0), spec.g_min());
  EXPECT_DOUBLE_EQ(q.weight_to_g(1.0), spec.g_max());
  EXPECT_DOUBLE_EQ(q.weight_to_g(-1.0), spec.g_min());  // clamped
  EXPECT_DOUBLE_EQ(q.weight_to_g(2.0), spec.g_max());   // clamped
}

TEST(ConductanceQuantizer, RoundTripWithinHalfStep) {
  const ReramSpec spec = ReramSpec::characterization();
  const ConductanceQuantizer q(spec);
  for (double w = 0.0; w <= 1.0; w += 0.03) {
    const double g = q.weight_to_g_quantized(w);
    EXPECT_NEAR(g, q.weight_to_g(w), q.step() / 2.0 + 1e-18);
    EXPECT_NEAR(q.g_to_weight(g), w, 0.5 / (spec.levels - 1) + 1e-12);
  }
}

TEST(ConductanceQuantizer, LevelsAreDiscrete) {
  ReramSpec spec = ReramSpec::characterization();
  spec.levels = 4;
  const ConductanceQuantizer q(spec);
  // Only 4 distinct values possible.
  std::vector<double> seen;
  for (double w = 0.0; w <= 1.0001; w += 0.01) {
    const double g = q.weight_to_g_quantized(w);
    bool found = false;
    for (double s : seen) {
      if (std::abs(s - g) < 1e-18) found = true;
    }
    if (!found) seen.push_back(g);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ReramCell, DeterministicProgramWithoutNoise) {
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.variation_sigma = 0.0;
  Rng rng(1);
  ReramCell cell;
  cell.program(spec, 5e-5, rng);
  const ConductanceQuantizer q(spec);
  EXPECT_NEAR(cell.programmed_g(), q.weight_to_g_quantized(
                                       q.g_to_weight(5e-5)),
              1e-18);
  EXPECT_DOUBLE_EQ(cell.target_g(), 5e-5);
}

TEST(ReramCell, TargetClampedToWindow) {
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  Rng rng(1);
  ReramCell cell;
  cell.program(spec, 1.0, rng);  // way above G_max
  EXPECT_DOUBLE_EQ(cell.target_g(), spec.g_max());
  cell.program(spec, 0.0, rng);  // below G_min
  EXPECT_DOUBLE_EQ(cell.target_g(), spec.g_min());
}

TEST(ReramCell, ProgramRejectsNonFiniteTargets) {
  const ReramSpec spec = ReramSpec::characterization();
  Rng rng(1);
  ReramCell cell;
  EXPECT_THROW(
      cell.program(spec, std::numeric_limits<double>::quiet_NaN(), rng),
      Error);
  EXPECT_THROW(
      cell.program(spec, std::numeric_limits<double>::infinity(), rng),
      Error);
  ProgramBudget budget;
  EXPECT_THROW(cell.program_verified(
                   spec, -std::numeric_limits<double>::infinity(), rng,
                   budget),
               Error);
}

TEST(ReramCell, WriteVerifyResidueStaysWithinWindow) {
  // The folded write-verify model accepts only residues inside the
  // verify window; no draw may escape +-tolerance around the level.
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.05;
  spec.variation_sigma = 0.0;
  Rng rng(3);
  const ConductanceQuantizer q(spec);
  const double level = q.weight_to_g_quantized(q.g_to_weight(5e-5));
  ReramCell cell;
  for (int i = 0; i < 5000; ++i) {
    cell.program(spec, 5e-5, rng);
    EXPECT_LE(std::abs(cell.programmed_g() - level) / level,
              spec.write_verify_tolerance + 1e-12);
  }
}

TEST(ReramCell, ExtremeVariationIsClampedToPhysicalEnvelope) {
  // Heavy-tailed variation draws must terminate inside the physical
  // envelope [0, 2 G_max] rather than producing negative or runaway
  // conductances.
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.variation_sigma = 3.0;
  Rng rng(7);
  ReramCell cell;
  for (int i = 0; i < 5000; ++i) {
    cell.program(spec, spec.g_max(), rng);
    EXPECT_GE(cell.programmed_g(), 0.0);
    EXPECT_LE(cell.programmed_g(), 2.0 * spec.g_max());
  }
}

TEST(ReramCell, VariationSigmaIsRespected) {
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.variation_sigma = 0.10;
  spec.levels = 1 << 14;
  Rng rng(5);
  const double target = 5e-5;
  std::vector<double> gs(20000);
  ReramCell cell;
  for (double& g : gs) {
    cell.program(spec, target, rng);
    g = cell.programmed_g();
  }
  const Summary s = summarize(gs);
  EXPECT_NEAR(s.mean, target, 0.002 * target);
  EXPECT_NEAR(s.stddev / target, 0.10, 0.005);
}

TEST(ReramCell, ReadNoiseOnlyWhenConfigured) {
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  Rng rng(5);
  ReramCell cell;
  cell.program(spec, 5e-5, rng);
  EXPECT_DOUBLE_EQ(cell.read_g(spec, rng), cell.programmed_g());
  spec.read_noise_sigma = 0.05;
  double diff = 0.0;
  for (int i = 0; i < 10; ++i) {
    diff += std::abs(cell.read_g(spec, rng) - cell.programmed_g());
  }
  EXPECT_GT(diff, 0.0);
}

TEST(ReramCell, EffectiveGIncludesAccessTransistor) {
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.transistor_r_on = 10e3;
  Rng rng(5);
  ReramCell cell;
  cell.program(spec, 1.0 / 10e3, rng);  // program to LRS = 10 k
  // Series 10 k + 10 k = 20 k.
  EXPECT_NEAR(cell.effective_g(spec), 1.0 / 20e3, 1e-9);
}

TEST(ReramCell, UnprogrammedCellHasZeroEffectiveG) {
  const ReramSpec spec = ReramSpec::characterization();
  const ReramCell cell;
  EXPECT_DOUBLE_EQ(cell.effective_g(spec), 0.0);
}

TEST(ReramCell, StuckAtFaultsPinTheRails) {
  ReramSpec spec = ReramSpec::characterization();
  spec.stuck_lrs_rate = 1.0;  // every cell stuck at LRS
  Rng rng(9);
  ReramCell cell;
  cell.program(spec, spec.g_min(), rng);
  EXPECT_TRUE(cell.is_stuck());
  EXPECT_DOUBLE_EQ(cell.programmed_g(), spec.g_max());

  spec.stuck_lrs_rate = 0.0;
  spec.stuck_hrs_rate = 1.0;
  cell.program(spec, spec.g_max(), rng);
  EXPECT_TRUE(cell.is_stuck());
  EXPECT_DOUBLE_EQ(cell.programmed_g(), spec.g_min());
}

TEST(ReramCell, StuckAtRateIsRespectedStatistically) {
  ReramSpec spec = ReramSpec::characterization();
  spec.stuck_lrs_rate = 0.1;
  Rng rng(11);
  ReramCell cell;
  int stuck = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    cell.program(spec, 5e-5, rng);
    if (cell.is_stuck()) ++stuck;
  }
  EXPECT_NEAR(static_cast<double>(stuck) / n, 0.1, 0.01);
}

TEST(ReramCell, RetentionDriftFollowsPowerLaw) {
  ReramSpec spec = ReramSpec::characterization();
  spec.write_verify_tolerance = 0.0;
  spec.drift_nu = 0.05;
  spec.drift_t0 = 1.0;
  Rng rng(13);
  ReramCell cell;
  cell.program(spec, 5e-5, rng);
  const double g0 = cell.programmed_g();
  // No drift before t0.
  EXPECT_DOUBLE_EQ(cell.drifted_g(spec, 0.5), g0);
  // Power law afterwards: G(100 s) = G0 * 100^-0.05.
  EXPECT_NEAR(cell.drifted_g(spec, 100.0), g0 * std::pow(100.0, -0.05),
              1e-12 * g0);
  // Drift never increases conductance.
  EXPECT_LT(cell.drifted_g(spec, 1e6), g0);
}

TEST(ReramCell, StuckCellsDoNotDrift) {
  ReramSpec spec = ReramSpec::characterization();
  spec.drift_nu = 0.1;
  spec.stuck_lrs_rate = 1.0;
  Rng rng(15);
  ReramCell cell;
  cell.program(spec, spec.g_min(), rng);
  EXPECT_DOUBLE_EQ(cell.drifted_g(spec, 1e6), spec.g_max());
}

TEST(ReramSpec, ValidateRejectsBadReliabilityNumbers) {
  ReramSpec spec;
  spec.stuck_lrs_rate = 0.7;
  spec.stuck_hrs_rate = 0.7;  // sums beyond 1
  EXPECT_THROW(spec.validate(), Error);
  spec = ReramSpec{};
  spec.drift_nu = -0.1;
  EXPECT_THROW(spec.validate(), Error);
  spec = ReramSpec{};
  spec.drift_t0 = 0.0;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace resipe::device
