#include "resipe/resipe/spike_code.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resipe/common/units.hpp"

namespace resipe::resipe_core {
namespace {

using circuits::CircuitParams;
using circuits::Spike;
using circuits::TransferModel;

TEST(SpikeCodec, FullScaleUsesTheUsableWindow) {
  const SpikeCodec codec{CircuitParams{}};
  EXPECT_DOUBLE_EQ(codec.t_full(), 99e-9);  // slice - comp stage
  EXPECT_GT(codec.v_full(), 0.99);          // ramp nearly at Vs by then
  EXPECT_EQ(codec.levels(), 100);           // 1 GHz clock
}

TEST(SpikeCodec, EndpointsEncodeToWindowEdges) {
  const SpikeCodec codec{CircuitParams{}};
  EXPECT_DOUBLE_EQ(codec.encode(0.0).arrival_time, 0.0);
  EXPECT_LE(codec.encode(1.0).arrival_time, codec.t_full());
  EXPECT_DOUBLE_EQ(codec.decode(codec.encode(0.0)), 0.0);
  EXPECT_NEAR(codec.decode(codec.encode(1.0)), 1.0, 1e-9);
}

TEST(SpikeCodec, ClampsOutOfRangeValues) {
  const SpikeCodec codec{CircuitParams{}};
  EXPECT_DOUBLE_EQ(codec.encode(-0.5).arrival_time,
                   codec.encode(0.0).arrival_time);
  EXPECT_DOUBLE_EQ(codec.encode(1.5).arrival_time,
                   codec.encode(1.0).arrival_time);
}

TEST(SpikeCodec, MissingSpikeDecodesToFullScale) {
  const SpikeCodec codec{CircuitParams{}};
  EXPECT_DOUBLE_EQ(codec.decode(Spike::none()), 1.0);
}

TEST(SpikeCodec, EncodeIsMonotone) {
  const SpikeCodec codec(CircuitParams{}, /*quantize=*/false);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.02) {
    const double t = codec.encode(x).arrival_time;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SpikeCodec, ContinuousRoundTripIsExact) {
  const SpikeCodec codec(CircuitParams{}, /*quantize=*/false);
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    EXPECT_NEAR(codec.decode(codec.encode(x)), x, 1e-9) << "x=" << x;
  }
}

TEST(SpikeCodec, QuantizedTimesSitOnTheClockGrid) {
  const CircuitParams p;
  const SpikeCodec codec(p, /*quantize=*/true);
  for (double x = 0.0; x <= 1.0; x += 0.013) {
    const double t = codec.encode(x).arrival_time;
    const double slots = t / p.clock_period;
    EXPECT_NEAR(slots, std::round(slots), 1e-9) << "x=" << x;
  }
}

TEST(SpikeCodec, LinearModeRoundTripUniformResolution) {
  CircuitParams p = CircuitParams::linear_regime();
  p.model = TransferModel::kLinear;
  const SpikeCodec codec(p, /*quantize=*/true);
  // In linear mode the value grid is uniform: worst-case round-trip
  // error is half a slot.
  const double half_slot = 0.5 / (codec.levels() - 1);
  for (double x = 0.0; x <= 1.0; x += 0.007) {
    EXPECT_NEAR(codec.decode(codec.encode(x)), x, half_slot + 1e-9);
  }
}

TEST(SpikeCodec, VoltageOfMatchesRamp) {
  const CircuitParams p;
  const SpikeCodec codec(p);
  EXPECT_DOUBLE_EQ(codec.voltage_of(10e-9), p.ramp_voltage(10e-9));
  // Beyond the window the S/H held the value at t_full.
  EXPECT_DOUBLE_EQ(codec.voltage_of(2.0 * p.slice_length),
                   p.ramp_voltage(codec.t_full()));
}

// Property sweep: the codec round-trip error is bounded by the local
// slot width at every operating point.
class CodecRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CodecRoundTrip, ErrorBoundedByLocalSlot) {
  const CircuitParams p;
  const SpikeCodec codec(p, /*quantize=*/true);
  const double x = GetParam();
  const double t = codec.encode(x).arrival_time;
  // Local slot width in value terms: ramp step across one clock.
  const double v0 = p.ramp_voltage(std::max(t - p.clock_period, 0.0));
  const double v1 = p.ramp_voltage(t + p.clock_period);
  const double slot_value = (v1 - v0) / codec.v_full();
  EXPECT_NEAR(codec.decode(codec.encode(x)), x, slot_value + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ValueSweep, CodecRoundTrip,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.4,
                                           0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                                           1.0));

}  // namespace
}  // namespace resipe::resipe_core
