// Serving-trace tests: event-journal mechanics (bounded, drop-counted,
// never silently lossy), the span-conservation audit against hand-built
// violations and real scheduler runs (burst shed, full quarantine,
// retry exhaustion, mixed Poisson traffic), journal bit-identity across
// thread counts, the NDJSON / Chrome exporters, per-tenant SLO math and
// hash-based tenant assignment.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "resipe/common/parallel.hpp"
#include "resipe/nn/model.hpp"
#include "resipe/serve/pool.hpp"
#include "resipe/serve/scheduler.hpp"
#include "resipe/serve/slo.hpp"
#include "resipe/serve/trace.hpp"
#include "resipe/serve/traffic.hpp"
#include "resipe/telemetry/trace.hpp"

namespace {

using namespace resipe;
using resipe_core::EngineConfig;
using serve::ChipPool;
using serve::EventJournal;
using serve::RejectReason;
using serve::Request;
using serve::Response;
using serve::Scheduler;
using serve::ServeConfig;
using serve::ServeEvent;
using serve::ServeEventKind;
using serve::ServingStats;
using serve::TraceAudit;

/// Tiny MLP + calibration batch shared by the trace tests (mirrors the
/// fixture in test_serve.cpp).
struct Fixture {
  nn::Sequential model{"serve_trace_mlp"};
  nn::Tensor calibration{{8, 6}};

  Fixture() {
    Rng rng(11);
    model.emplace<nn::Dense>(6, 8, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Dense>(8, 3, rng);
    for (double& v : calibration.data()) v = rng.uniform(0.0, 1.0);
  }

  static EngineConfig clean_config(std::uint64_t program_seed) {
    EngineConfig cfg;
    cfg.program_seed = program_seed;
    return cfg;
  }

  /// Heavily defective replica with a hair-trigger degrade threshold so
  /// every attempt gets fault-flagged (drives the retry path).
  static EngineConfig defective_config(std::uint64_t program_seed) {
    EngineConfig cfg = clean_config(program_seed);
    cfg.reliability.enabled = true;
    cfg.reliability.faults.stuck_lrs_rate = 0.3;
    cfg.reliability.faults.stuck_hrs_rate = 0.3;
    cfg.reliability.mitigation.spare_cols = 0;
    cfg.reliability.mitigation.remap_columns = false;
    cfg.reliability.mitigation.compensate_pairs = false;
    cfg.reliability.mitigation.degrade_threshold = 0.01;
    cfg.reliability.fault_seed = 0xBADull + program_seed;
    return cfg;
  }

  Request request(std::uint64_t id, double arrival,
                  double deadline = 0.0) const {
    Request req;
    req.id = id;
    req.tag = id % calibration.dim(0);
    req.arrival = arrival;
    req.deadline = deadline;
    const auto row = calibration.data().subspan(req.tag * 6, 6);
    req.input.assign(row.begin(), row.end());
    return req;
  }
};

/// Field-exact (bitwise for doubles) comparison of two event streams.
bool events_identical(const std::vector<ServeEvent>& a,
                      const std::vector<ServeEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].seq != b[i].seq ||
        a[i].request != b[i].request || a[i].tenant != b[i].tenant ||
        a[i].batch != b[i].batch || a[i].chip != b[i].chip ||
        a[i].attempt != b[i].attempt || a[i].code != b[i].code ||
        std::memcmp(&a[i].time, &b[i].time, sizeof(double)) != 0 ||
        std::memcmp(&a[i].value, &b[i].value, sizeof(double)) != 0 ||
        std::memcmp(&a[i].aux, &b[i].aux, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// --- EventJournal mechanics ------------------------------------------

TEST(EventJournal, BoundedRecordCountsDropsInsteadOfOverwriting) {
  EventJournal journal(4);
  EXPECT_EQ(journal.capacity(), 4u);
  EXPECT_EQ(journal.size(), 0u);

  for (int i = 0; i < 6; ++i) {
    ServeEvent e;
    e.time = static_cast<double>(i);
    e.request = static_cast<std::uint64_t>(i);
    journal.record(e);
  }
  // Four committed, two refused — counted, never silently lost, and the
  // committed prefix is the *first* four (no overwrite).
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped(), 2u);
  const std::vector<ServeEvent> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i) << "seq assigned in record order";
    EXPECT_EQ(events[i].request, i);
  }

  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  journal.record(ServeEvent{});
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.events()[0].seq, 0u) << "seq restarts after clear";
}

// --- audit_trace on hand-built journals ------------------------------

namespace audit_fixture {

/// One clean single-request chain: admit -> batch -> dispatch ->
/// attempt -> complete, with the matching stats.
void clean_chain(EventJournal& journal, ServingStats& stats) {
  ServeEvent e;
  e.kind = ServeEventKind::kAdmit;
  e.request = 0;
  e.value = 1.0;
  journal.record(e);

  ServeEvent batch;
  batch.kind = ServeEventKind::kBatchForm;
  batch.batch = 0;
  batch.chip = 0;
  batch.value = 1.0;
  journal.record(batch);

  e.kind = ServeEventKind::kDispatch;
  e.batch = 0;
  e.chip = 0;
  e.attempt = 0;
  journal.record(e);

  e.kind = ServeEventKind::kAttemptDone;
  e.attempt = 1;
  journal.record(e);

  e.kind = ServeEventKind::kComplete;
  journal.record(e);

  stats = ServingStats{};
  stats.submitted = 1;
  stats.served_ok = 1;
  stats.batches = 1;
}

}  // namespace audit_fixture

TEST(TraceAuditTest, CleanChainPasses) {
  EventJournal journal;
  ServingStats stats;
  audit_fixture::clean_chain(journal, stats);
  const TraceAudit audit = serve::audit_trace(journal, stats);
  EXPECT_TRUE(audit.ok()) << audit.render();
  EXPECT_EQ(audit.requests, 1u);
  EXPECT_EQ(audit.terminals, 1u);
}

TEST(TraceAuditTest, DoubleTerminalIsReported) {
  EventJournal journal;
  ServingStats stats;
  audit_fixture::clean_chain(journal, stats);
  ServeEvent dup;
  dup.kind = ServeEventKind::kComplete;
  dup.request = 0;
  dup.attempt = 1;
  journal.record(dup);
  const TraceAudit audit = serve::audit_trace(journal, stats);
  EXPECT_FALSE(audit.ok());
}

TEST(TraceAuditTest, MissingTerminalIsReported) {
  EventJournal journal;
  ServeEvent e;
  e.kind = ServeEventKind::kAdmit;
  e.request = 0;
  journal.record(e);
  e.kind = ServeEventKind::kDispatch;
  e.batch = 0;
  e.chip = 0;
  journal.record(e);
  ServingStats stats;
  stats.submitted = 1;
  const TraceAudit audit = serve::audit_trace(journal, stats);
  EXPECT_FALSE(audit.ok()) << "open span chain must fail conservation";
}

TEST(TraceAuditTest, StatsMismatchIsReported) {
  EventJournal journal;
  ServingStats stats;
  audit_fixture::clean_chain(journal, stats);
  stats.served_ok = 2;  // journal says 1
  stats.submitted = 2;
  const TraceAudit audit = serve::audit_trace(journal, stats);
  EXPECT_FALSE(audit.ok());
}

TEST(TraceAuditTest, LossyJournalReportsItself) {
  EventJournal journal(2);
  ServingStats stats;
  audit_fixture::clean_chain(journal, stats);  // 5 records into 2 slots
  ASSERT_GT(journal.dropped(), 0u);
  const TraceAudit audit = serve::audit_trace(journal, stats);
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.dropped, journal.dropped());
  ASSERT_FALSE(audit.issues.empty());
  EXPECT_NE(audit.issues[0].find("dropped"), std::string::npos)
      << "a lossy journal must say so, not report bogus chain breaks: "
      << audit.issues[0];
}

// --- span conservation on real scheduler runs ------------------------
//
// Each scenario builds a fresh pool (health persists across runs), runs
// with a journal attached, and must (a) pass the conservation audit
// against its own stats and (b) produce a bit-identical event stream at
// every thread count — the journal rides the virtual clock, not the
// host's.

struct ScenarioRun {
  std::vector<ServeEvent> events;
  ServingStats stats;
  std::vector<Response> responses;
};

template <typename Fn>
void expect_conserved_across_threads(Fn&& run_once, const char* what) {
  std::vector<ScenarioRun> runs;
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    runs.push_back(run_once());
  }
  set_default_threads(0);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EventJournal replay;
    for (const ServeEvent& e : runs[i].events) replay.record(e);
    const TraceAudit audit = serve::audit_trace(replay, runs[i].stats);
    EXPECT_TRUE(audit.ok())
        << what << " (run " << i << "): " << audit.render();
    EXPECT_EQ(audit.requests, runs[i].responses.size()) << what;
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_TRUE(events_identical(runs[0].events, runs[i].events))
        << what << ": journal diverged at thread-count run " << i;
  }
}

TEST(SpanConservation, BurstShedsQueueFull) {
  Fixture fx;
  expect_conserved_across_threads(
      [&fx] {
        ServeConfig scfg;
        scfg.queue_capacity = 1;
        scfg.batch_window = 1.0;
        scfg.default_deadline = 10.0;
        const std::vector<EngineConfig> replicas = {Fixture::clean_config(1)};
        ChipPool pool(fx.model, fx.calibration, replicas, scfg);
        EventJournal journal;
        Scheduler scheduler(pool, scfg);
        scheduler.attach_journal(&journal);
        for (std::uint64_t i = 0; i < 4; ++i) {
          scheduler.submit(fx.request(i, 1.0e-6 * static_cast<double>(i + 1)));
        }
        ScenarioRun run;
        run.responses = scheduler.run();
        run.stats = scheduler.stats();
        run.events = journal.events();
        EXPECT_EQ(run.stats.shed_queue_full, 3u);
        return run;
      },
      "burst shed");
}

TEST(SpanConservation, AllChipsQuarantined) {
  Fixture fx;
  expect_conserved_across_threads(
      [&fx] {
        ServeConfig scfg;
        scfg.default_deadline = 10.0;
        const std::vector<EngineConfig> replicas = {Fixture::clean_config(1),
                                                    Fixture::clean_config(2)};
        ChipPool pool(fx.model, fx.calibration, replicas, scfg);
        pool.force_quarantine(0);
        pool.force_quarantine(1);
        EventJournal journal;
        Scheduler scheduler(pool, scfg);
        scheduler.attach_journal(&journal);
        for (std::uint64_t i = 0; i < 3; ++i) {
          scheduler.submit(fx.request(i, 1.0e-6 * static_cast<double>(i + 1)));
        }
        ScenarioRun run;
        run.responses = scheduler.run();
        run.stats = scheduler.stats();
        run.events = journal.events();
        EXPECT_EQ(run.stats.shed_quarantine, 3u);
        return run;
      },
      "full quarantine");
}

TEST(SpanConservation, RetryExhaustion) {
  Fixture fx;
  expect_conserved_across_threads(
      [&fx] {
        ServeConfig scfg;
        scfg.default_deadline = 10.0;
        scfg.retry_max = 2;
        const std::vector<EngineConfig> replicas = {
            Fixture::defective_config(3)};
        ChipPool pool(fx.model, fx.calibration, replicas, scfg);
        EventJournal journal;
        Scheduler scheduler(pool, scfg);
        scheduler.attach_journal(&journal);
        scheduler.submit(fx.request(0, 1.0e-6));
        ScenarioRun run;
        run.responses = scheduler.run();
        run.stats = scheduler.stats();
        run.events = journal.events();
        EXPECT_EQ(run.stats.retries, 2u);
        return run;
      },
      "retry exhaustion");
}

TEST(SpanConservation, MixedPoissonTrafficWithDefectiveReplica) {
  Fixture fx;
  serve::TrafficConfig traffic;
  traffic.rate = 5000.0;
  traffic.duration = 0.004;
  traffic.seed = 3;
  traffic.tenants = 3;
  const std::vector<Request> trace =
      serve::poisson_traffic(fx.calibration, traffic);
  ASSERT_FALSE(trace.empty());

  expect_conserved_across_threads(
      [&fx, &trace] {
        ServeConfig scfg;
        scfg.default_deadline = 0.01;
        scfg.batch_max = 3;
        scfg.retry_max = 2;
        const std::vector<EngineConfig> replicas = {
            Fixture::defective_config(3), Fixture::clean_config(5)};
        ChipPool pool(fx.model, fx.calibration, replicas, scfg);
        EventJournal journal;
        Scheduler scheduler(pool, scfg);
        scheduler.attach_journal(&journal);
        for (const Request& r : trace) scheduler.submit(r);
        ScenarioRun run;
        run.responses = scheduler.run();
        run.stats = scheduler.stats();
        run.events = journal.events();
        return run;
      },
      "mixed traffic");
}

// --- exporters -------------------------------------------------------

/// A small served-everything run shared by the exporter tests.
ScenarioRun clean_run(Fixture& fx, EventJournal& journal) {
  ServeConfig scfg;
  scfg.default_deadline = 10.0;
  scfg.batch_max = 3;
  const std::vector<EngineConfig> replicas = {Fixture::clean_config(5),
                                              Fixture::clean_config(6)};
  ChipPool pool(fx.model, fx.calibration, replicas, scfg);
  Scheduler scheduler(pool, scfg);
  scheduler.attach_journal(&journal);
  for (std::uint64_t i = 0; i < 8; ++i) {
    scheduler.submit(fx.request(i, 1.0e-6 * static_cast<double>(i + 1)));
  }
  ScenarioRun run;
  run.responses = scheduler.run();
  run.stats = scheduler.stats();
  run.events = journal.events();
  return run;
}

TEST(TraceExport, NdjsonHasSchemaHeaderEventsAndSummaryTrailer) {
  Fixture fx;
  EventJournal journal;
  const ScenarioRun run = clean_run(fx, journal);

  std::ostringstream os;
  serve::write_events_ndjson(journal, run.stats, os);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), journal.size() + 2)
      << "schema header + one line per event + summary trailer";
  EXPECT_NE(lines.front().find("resipe.serve.trace/1"), std::string::npos);
  EXPECT_NE(lines.front().find("\"events\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"summary\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"dropped\""), std::string::npos);
  // Every served request completed: the trailer must carry the bucket.
  EXPECT_NE(lines.back().find("\"served_ok\""), std::string::npos);
}

TEST(TraceExport, ChromeLanesAreNamedAndFlowsBalance) {
  Fixture fx;
  EventJournal journal;
  const ScenarioRun run = clean_run(fx, journal);
  ASSERT_EQ(run.stats.served_ok, run.responses.size());

  auto& session = telemetry::TraceSession::instance();
  session.start();  // clears any prior events
  session.stop();
  serve::export_chrome_trace(journal, session);

  const auto names = session.thread_names();
  ASSERT_TRUE(names.count({serve::kServePid, serve::kSchedulerLane}));
  ASSERT_TRUE(names.count({serve::kServePid, serve::kHealthLane}));
  ASSERT_TRUE(names.count({serve::kServePid, serve::kChipLaneBase}));

  const std::vector<telemetry::TraceEvent> events = session.snapshot();
  ASSERT_FALSE(events.empty());
  std::map<std::uint64_t, std::pair<int, int>> flows;  // id -> (s, f)
  for (const telemetry::TraceEvent& e : events) {
    // Every exported lane must carry a viewer name ('M' metadata rides
    // thread_names() at serialization time).
    EXPECT_TRUE(names.count({e.pid, e.tid}))
        << "unnamed lane pid=" << e.pid << " tid=" << e.tid << " for '"
        << e.name << "'";
    if (e.phase == 's') ++flows[e.flow_id].first;
    if (e.phase == 'f') ++flows[e.flow_id].second;
  }
  // One flow arrow per request, each with exactly one start + one end.
  EXPECT_EQ(flows.size(), run.responses.size());
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts.first, 1) << "flow " << id;
    EXPECT_EQ(counts.second, 1) << "flow " << id;
  }

  // The serialized form must carry the metadata for chrome://tracing.
  std::ostringstream os;
  session.write_chrome_trace(os);
  EXPECT_NE(os.str().find("thread_name"), std::string::npos);
}

// --- SLO / error-budget math -----------------------------------------

namespace slo_fixture {

Response response(std::uint64_t id, double arrival, double completion,
                  bool served, std::uint64_t tenant = 0) {
  Response r;
  r.id = id;
  r.tenant = tenant;
  r.arrival = arrival;
  r.completion = completion;
  if (served) {
    r.status = Response::Status::kOk;
    r.logits = {1.0, 0.0, 0.0};
  } else {
    r.status = Response::Status::kRejected;
    r.reason = RejectReason::kQueueFull;
  }
  return r;
}

}  // namespace slo_fixture

TEST(SloMonitorTest, BudgetsAndBurnRatesMatchHandComputedValues) {
  serve::SloConfig cfg;
  cfg.window = 0.005;
  cfg.latency_target = 0.01;
  // Objectives chosen so the allowed fractions (both 0.25) are exact in
  // binary floating point and the expectations below are exact too.
  cfg.availability_objective = 0.75;
  cfg.latency_objective = 0.75;
  cfg.min_window_count = 2;
  ASSERT_NO_THROW(cfg.validate());

  serve::SloMonitor monitor(cfg);
  // Eight terminals at 1 ms spacing: indices 2 and 3 served-but-slow
  // (50 ms latency), index 7 shed, the rest served fast (2 ms).
  for (std::uint64_t i = 0; i < 8; ++i) {
    const double t = 0.001 * static_cast<double>(i + 1);
    const bool served = i != 7;
    const double latency = (i == 2 || i == 3) ? 0.05 : 0.002;
    monitor.ingest(slo_fixture::response(i, t - latency, t, served), 0);
  }

  const serve::SloReport report = monitor.report();
  ASSERT_EQ(report.tenants.size(), 1u);
  const serve::SloTenantReport& r = report.tenants[0];
  EXPECT_EQ(r.requests, 8u);
  EXPECT_EQ(r.served, 7u);
  EXPECT_EQ(r.latency_ok, 5u);
  EXPECT_DOUBLE_EQ(r.availability_sli, 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(r.latency_sli, 5.0 / 7.0);
  // budget_used = bad_fraction / (1 - objective).
  EXPECT_DOUBLE_EQ(r.availability_budget_used, (1.0 - 7.0 / 8.0) / 0.25);
  EXPECT_DOUBLE_EQ(r.latency_budget_used, (1.0 - 5.0 / 7.0) / 0.25);
  EXPECT_TRUE(r.availability_met());
  EXPECT_FALSE(r.latency_met()) << r.latency_budget_used;
  // Worst 5 ms window for availability: the shed at t=8ms among the six
  // samples in (3ms..8ms] -> (1/6)/0.25.  For latency the two slow
  // responses at t=3,4ms peak at 2 bad of 4 eligible -> (2/4)/0.25 = 2.
  EXPECT_DOUBLE_EQ(r.availability_burn_max, (1.0 / 6.0) / 0.25);
  EXPECT_DOUBLE_EQ(r.latency_burn_max, 2.0);
  // Served latencies {2ms x5, 50ms x2}: rank-mass interpolation keeps
  // p50 on the fast plateau and p99 on the slow tail.
  EXPECT_DOUBLE_EQ(r.p50, 0.002);
  EXPECT_DOUBLE_EQ(r.p99, 0.05);
  // Single tenant: the aggregate is the tenant row.
  EXPECT_EQ(report.total.requests, 8u);
  EXPECT_DOUBLE_EQ(report.total.availability_budget_used,
                   r.availability_budget_used);

  // The dashboard renders without throwing and names the tenant.
  EXPECT_NE(report.render().find("t0"), std::string::npos);
}

TEST(SloMonitorTest, MinWindowCountSuppressesNoiseBurn) {
  serve::SloConfig cfg;
  cfg.window = 0.005;
  cfg.availability_objective = 0.75;
  cfg.min_window_count = 20;  // more samples than the trace holds
  serve::SloMonitor monitor(cfg);
  for (std::uint64_t i = 0; i < 8; ++i) {
    monitor.ingest(slo_fixture::response(i, 0.0, 0.001 * (i + 1.0), i != 7),
                   0);
  }
  const serve::SloReport report = monitor.report();
  EXPECT_DOUBLE_EQ(report.tenants[0].availability_burn_max, 0.0)
      << "a near-empty window is noise, not an incident";
}

TEST(SloMonitorTest, SplitsPerTenantAndAggregates) {
  serve::SloConfig cfg;
  cfg.availability_objective = 0.75;
  serve::SloMonitor monitor(cfg);
  std::vector<Response> responses;
  // Tenant 1: 3 served.  Tenant 4: 1 served + 1 shed.
  responses.push_back(slo_fixture::response(0, 0.0, 0.001, true, 1));
  responses.push_back(slo_fixture::response(1, 0.0, 0.002, true, 1));
  responses.push_back(slo_fixture::response(2, 0.0, 0.003, true, 1));
  responses.push_back(slo_fixture::response(3, 0.0, 0.002, true, 4));
  responses.push_back(slo_fixture::response(4, 0.0, 0.004, false, 4));
  monitor.ingest(responses);

  const serve::SloReport report = monitor.report();
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].tenant, 1u);
  EXPECT_EQ(report.tenants[0].requests, 3u);
  EXPECT_DOUBLE_EQ(report.tenants[0].availability_sli, 1.0);
  EXPECT_EQ(report.tenants[1].tenant, 4u);
  EXPECT_EQ(report.tenants[1].requests, 2u);
  EXPECT_DOUBLE_EQ(report.tenants[1].availability_sli, 0.5);
  EXPECT_EQ(report.total.requests, 5u);
  EXPECT_EQ(report.total.served, 4u);

  monitor.clear();
  EXPECT_TRUE(monitor.report().tenants.empty());
}

TEST(SloConfigTest, ValidateRejectsNonsense) {
  serve::SloConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.window = 0.0;
  EXPECT_ANY_THROW(cfg.validate());
  cfg = serve::SloConfig{};
  cfg.latency_objective = 1.0;  // allowed fraction would be zero
  EXPECT_ANY_THROW(cfg.validate());
  cfg = serve::SloConfig{};
  cfg.availability_objective = 0.0;
  EXPECT_ANY_THROW(cfg.validate());
  cfg = serve::SloConfig{};
  cfg.latency_target = -1.0;
  EXPECT_ANY_THROW(cfg.validate());
}

// --- hash-based tenant assignment ------------------------------------

TEST(Traffic, TenantAssignmentIsDeterministicAndPerturbationFree) {
  Fixture fx;
  serve::TrafficConfig base;
  base.rate = 10000.0;
  base.duration = 0.01;
  base.seed = 9;
  base.tenants = 1;
  serve::TrafficConfig multi = base;
  multi.tenants = 4;

  const std::vector<Request> single = serve::poisson_traffic(fx.calibration,
                                                             base);
  const std::vector<Request> split = serve::poisson_traffic(fx.calibration,
                                                            multi);
  const std::vector<Request> again = serve::poisson_traffic(fx.calibration,
                                                            multi);
  ASSERT_FALSE(single.empty());
  ASSERT_EQ(single.size(), split.size())
      << "tenant count must not perturb the arrival process";

  std::map<std::uint64_t, std::size_t> histogram;
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].tenant, 0u);
    EXPECT_LT(split[i].tenant, 4u);
    EXPECT_EQ(split[i].tenant, again[i].tenant) << "hash must be stable";
    // Tenant is the ONLY field that may differ — arrivals, ids, inputs
    // and deadlines are untouched (bit-identity contract).
    EXPECT_EQ(single[i].id, split[i].id);
    EXPECT_EQ(std::memcmp(&single[i].arrival, &split[i].arrival,
                          sizeof(double)),
              0);
    EXPECT_EQ(single[i].tag, split[i].tag);
    EXPECT_EQ(single[i].input, split[i].input);
    ++histogram[split[i].tenant];
  }
  EXPECT_GT(histogram.size(), 1u)
      << "a long trace must actually spread across tenants";
}

}  // namespace
