#include "resipe/nn/zoo.hpp"

#include <gtest/gtest.h>

#include "resipe/nn/tensor.hpp"

namespace resipe::nn {
namespace {

Tensor input_for(BenchmarkNet net, std::size_t batch) {
  return uses_object_dataset(net) ? Tensor({batch, 3, 32, 32})
                                  : Tensor({batch, 1, 28, 28});
}

class ZooForward : public ::testing::TestWithParam<BenchmarkNet> {};

TEST_P(ZooForward, ProducesTenLogitsPerSample) {
  Rng rng(1);
  Sequential model = build_benchmark(GetParam(), rng);
  const Tensor x = input_for(GetParam(), 2);
  const Tensor y = model.forward(x, false);
  ASSERT_EQ(y.rank(), 2u);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 10u);
}

TEST_P(ZooForward, HasTrainableParameters) {
  Rng rng(1);
  Sequential model = build_benchmark(GetParam(), rng);
  EXPECT_GT(model.parameter_count(), 0u);
  EXPECT_FALSE(model.summary().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSixBenchmarks, ZooForward,
    ::testing::Values(BenchmarkNet::kMlp1, BenchmarkNet::kMlp2,
                      BenchmarkNet::kCnn1, BenchmarkNet::kCnn2,
                      BenchmarkNet::kCnn3, BenchmarkNet::kCnn4));

TEST(Zoo, MatrixLayerCountsMatchTopologies) {
  Rng rng(1);
  // MLP-1: 1 dense; MLP-2: 2 dense; LeNet: 2 conv + 3 dense;
  // AlexNet-class: 5 conv + 2 FC; VGG16-class: 13 conv + 3 FC;
  // VGG19-class: 16 conv + 3 FC.
  EXPECT_EQ(build_benchmark(BenchmarkNet::kMlp1, rng).matrix_layer_count(),
            1u);
  EXPECT_EQ(build_benchmark(BenchmarkNet::kMlp2, rng).matrix_layer_count(),
            2u);
  EXPECT_EQ(build_benchmark(BenchmarkNet::kCnn1, rng).matrix_layer_count(),
            5u);
  EXPECT_EQ(build_benchmark(BenchmarkNet::kCnn2, rng).matrix_layer_count(),
            7u);
  EXPECT_EQ(build_benchmark(BenchmarkNet::kCnn3, rng).matrix_layer_count(),
            16u);
  EXPECT_EQ(build_benchmark(BenchmarkNet::kCnn4, rng).matrix_layer_count(),
            19u);
}

TEST(Zoo, DepthOrderingIsPreserved) {
  Rng rng(1);
  // The Fig. 7 sensitivity argument relies on this ordering.
  const auto count = [&rng](BenchmarkNet n) {
    return build_benchmark(n, rng).matrix_layer_count();
  };
  EXPECT_LT(count(BenchmarkNet::kMlp1), count(BenchmarkNet::kMlp2));
  EXPECT_LT(count(BenchmarkNet::kMlp2), count(BenchmarkNet::kCnn1));
  EXPECT_LT(count(BenchmarkNet::kCnn1), count(BenchmarkNet::kCnn2));
  EXPECT_LT(count(BenchmarkNet::kCnn2), count(BenchmarkNet::kCnn3));
  EXPECT_LT(count(BenchmarkNet::kCnn3), count(BenchmarkNet::kCnn4));
}

TEST(Zoo, NamesMatchThePaper) {
  EXPECT_EQ(benchmark_name(BenchmarkNet::kMlp1), "MLP-1");
  EXPECT_EQ(benchmark_name(BenchmarkNet::kCnn4), "CNN-4 (VGG19-class)");
  EXPECT_EQ(all_benchmarks().size(), 6u);
}

TEST(Zoo, DatasetAssignment) {
  EXPECT_FALSE(uses_object_dataset(BenchmarkNet::kMlp1));
  EXPECT_FALSE(uses_object_dataset(BenchmarkNet::kCnn1));
  EXPECT_TRUE(uses_object_dataset(BenchmarkNet::kCnn2));
  EXPECT_TRUE(uses_object_dataset(BenchmarkNet::kCnn4));
}

}  // namespace
}  // namespace resipe::nn
