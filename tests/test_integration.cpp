// End-to-end integration: train a small network on the synthetic digit
// task, lower it onto the ReSiPE circuit model, and verify the Fig. 7
// properties — near-zero loss at sigma = 0 and graceful degradation
// under process variation.
#include <gtest/gtest.h>

#include "resipe/eval/accuracy.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe {
namespace {

class TrainedMlp : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(77);
    train_ = new nn::Dataset(nn::synthetic_digits(2000, rng));
    test_ = new nn::Dataset(nn::synthetic_digits(150, rng));
    Rng model_rng(1);
    model_ = new nn::Sequential(
        nn::build_benchmark(nn::BenchmarkNet::kMlp1, model_rng));
    nn::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.lr = 1e-3;
    nn::fit(*model_, *train_, *test_, cfg);
  }

  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    delete model_;
    train_ = nullptr;
    test_ = nullptr;
    model_ = nullptr;
  }

  static nn::Dataset* train_;
  static nn::Dataset* test_;
  static nn::Sequential* model_;
};

nn::Dataset* TrainedMlp::train_ = nullptr;
nn::Dataset* TrainedMlp::test_ = nullptr;
nn::Sequential* TrainedMlp::model_ = nullptr;

double hardware_accuracy(nn::Sequential& model, const nn::Dataset& test,
                         const nn::Dataset& train,
                         resipe_core::EngineConfig cfg) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 16; ++i) idx.push_back(i);
  auto [calib, labels] = train.gather(idx);
  (void)labels;
  const resipe_core::ResipeNetwork hw(model, cfg, calib);
  return nn::evaluate_with(
      test, [&hw](const nn::Tensor& b) { return hw.forward(b); });
}

TEST_F(TrainedMlp, SoftwareBaselineLearns) {
  EXPECT_GT(nn::evaluate(*model_, *test_), 0.85);
}

TEST_F(TrainedMlp, SigmaZeroDropMatchesPaperBound) {
  const double sw = nn::evaluate(*model_, *test_);
  const double hw =
      hardware_accuracy(*model_, *test_, *train_, resipe_core::EngineConfig{});
  // Paper: the non-linearity costs less than ~2.5% accuracy.
  EXPECT_GT(hw, sw - 0.04);
}

TEST_F(TrainedMlp, HeavyVariationDegradesButDoesNotDestroy) {
  resipe_core::EngineConfig cfg;
  cfg.device.variation_sigma = 0.20;
  const double hw = hardware_accuracy(*model_, *test_, *train_, cfg);
  const double sw = nn::evaluate(*model_, *test_);
  EXPECT_LE(hw, sw + 0.02);  // cannot beat software by more than noise
  EXPECT_GT(hw, 0.5);        // still far above chance (10%)
}

TEST_F(TrainedMlp, IdealEngineMatchesSoftwareAccuracy) {
  const double sw = nn::evaluate(*model_, *test_);
  const double hw = hardware_accuracy(*model_, *test_, *train_,
                                      resipe_core::EngineConfig::ideal());
  EXPECT_NEAR(hw, sw, 0.02);
}

TEST(AccuracyHarness, SingleNetworkRowIsWellFormed) {
  eval::AccuracyConfig cfg;
  cfg.sigmas = {0.0, 0.10};
  cfg.train_samples = 1200;
  cfg.test_samples = 80;
  cfg.epochs = 3;
  cfg.mc_seeds = 1;
  const auto row =
      eval::evaluate_network_accuracy(nn::BenchmarkNet::kMlp1, cfg);
  EXPECT_EQ(row.name, "MLP-1");
  ASSERT_EQ(row.accuracy.size(), 2u);
  EXPECT_GT(row.software_accuracy, 0.6);
  EXPECT_GT(row.accuracy[0], 0.5);
  const std::string rendered = eval::render_accuracy({row});
  EXPECT_NE(rendered.find("MLP-1"), std::string::npos);
  EXPECT_NE(rendered.find("sigma=10%"), std::string::npos);
}

}  // namespace
}  // namespace resipe
