// GTest wrappers over the verify library's floating-point comparators.
//
// EXPECT_NEAR hides what a tolerance means: an absolute epsilon that is
// generous at one magnitude is vacuous at another (1e-15 on a 1e-8
// spike time is a 1e-7 *relative* bound — seven decimal digits looser
// than it looks).  These macros state the bound in relative/ULP terms,
// share the exact comparison the oracle contracts use, and print the
// abs/rel/ULP breakdown from describe_mismatch() on failure.
//
//   RESIPE_EXPECT_REL(actual, expected, 1e-12);        // relative only
//   RESIPE_EXPECT_CLOSE(actual, expected, rel, abs);   // rel OR abs
//   RESIPE_EXPECT_ULP(actual, expected, 4);            // units in last place
#pragma once

#include <gtest/gtest.h>

#include <cstdint>

#include "resipe/verify/approx.hpp"

namespace resipe::testing {

inline ::testing::AssertionResult AssertRel(const char* a_expr,
                                            const char* b_expr,
                                            const char* /*tol_expr*/,
                                            double a, double b,
                                            double rel_tol) {
  if (verify::approx_rel(a, b, rel_tol)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " vs " << b_expr << ": "
         << verify::describe_mismatch(a, b) << ", rel tol " << rel_tol;
}

inline ::testing::AssertionResult AssertClose(const char* a_expr,
                                              const char* b_expr,
                                              const char* /*rel_expr*/,
                                              const char* /*abs_expr*/,
                                              double a, double b,
                                              double rel_tol,
                                              double abs_tol) {
  if (verify::approx_rel(a, b, rel_tol, abs_tol)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " vs " << b_expr << ": "
         << verify::describe_mismatch(a, b) << ", rel tol " << rel_tol
         << ", abs tol " << abs_tol;
}

inline ::testing::AssertionResult AssertUlp(const char* a_expr,
                                            const char* b_expr,
                                            const char* /*tol_expr*/,
                                            double a, double b,
                                            std::uint64_t max_ulps) {
  if (verify::ulp_distance(a, b) <= max_ulps) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " vs " << b_expr << ": "
         << verify::describe_mismatch(a, b) << ", max ulps " << max_ulps;
}

}  // namespace resipe::testing

#define RESIPE_EXPECT_REL(actual, expected, rel_tol) \
  EXPECT_PRED_FORMAT3(::resipe::testing::AssertRel, actual, expected, rel_tol)

#define RESIPE_EXPECT_CLOSE(actual, expected, rel_tol, abs_tol)          \
  EXPECT_PRED_FORMAT4(::resipe::testing::AssertClose, actual, expected, \
                      rel_tol, abs_tol)

#define RESIPE_EXPECT_ULP(actual, expected, max_ulps) \
  EXPECT_PRED_FORMAT3(::resipe::testing::AssertUlp, actual, expected, max_ulps)
