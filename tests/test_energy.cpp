#include <gtest/gtest.h>

#include "resipe/common/error.hpp"
#include "resipe/energy/components.hpp"
#include "resipe/energy/design.hpp"
#include "resipe/energy/report.hpp"
#include "resipe/resipe/design.hpp"

namespace resipe::energy {
namespace {

using namespace resipe::units;

TEST(ComponentLibrary, AllComponentsHavePositiveArea) {
  const ComponentLibrary lib;
  for (const Component& c :
       {lib.dac(8), lib.adc(8), lib.sample_hold(), lib.comparator(),
        lib.spike_driver(), lib.spike_modulator(5),
        lib.integrate_fire_neuron(5), lib.pulse_modulator(),
        lib.integrator(), lib.ramp_generator(100.0 * fF),
        lib.mim_capacitor(100.0 * fF), lib.digital_logic(100),
        lib.pulse_shaper()}) {
    EXPECT_GT(c.area, 0.0) << c.name;
    EXPECT_GE(c.static_power, 0.0) << c.name;
    EXPECT_GE(c.energy_per_op, 0.0) << c.name;
  }
}

TEST(ComponentLibrary, AdcMatchesCitedReference) {
  // [20]: 2.3 mW at 950 MS/s -> ~2.42 pJ per 8-bit conversion.
  const ComponentLibrary lib;
  EXPECT_NEAR(lib.adc(8).energy_per_op, 2.42e-12, 0.01e-12);
  // Resolution scaling doubles per bit.
  EXPECT_NEAR(lib.adc(9).energy_per_op / lib.adc(8).energy_per_op, 2.0,
              1e-9);
}

TEST(ComponentLibrary, RejectsBadArguments) {
  const ComponentLibrary lib;
  EXPECT_THROW(lib.dac(0), Error);
  EXPECT_THROW(lib.adc(17), Error);
  EXPECT_THROW(lib.comparator(-1.0), Error);
  EXPECT_THROW(lib.mim_capacitor(-1e-15), Error);
}

TEST(Component, EnergyAccountsOpsAndStaticTime) {
  Component c;
  c.energy_per_op = 2.0;
  c.static_power = 3.0;
  EXPECT_DOUBLE_EQ(c.energy(4.0, 5.0), 8.0 + 15.0);
}

TEST(EnergyReport, AggregatesEntries) {
  EnergyReport report;
  Component c;
  c.name = "thing";
  c.area = 1e-9;
  c.energy_per_op = 1e-12;
  report.add(c, 2.0, 3.0, 0.0);  // 2 instances x 3 ops = 6 pJ
  report.add_raw("raw", 4e-12, 2e-9);
  EXPECT_NEAR(report.total_energy(), 10e-12, 1e-18);
  EXPECT_NEAR(report.total_area(), 4e-9, 1e-15);
  EXPECT_NEAR(report.average_power(1e-6), 10e-6, 1e-12);
}

TEST(EnergyReport, EnergyShareMatchesSubstring) {
  EnergyReport report;
  report.add_raw("COG caps", 98.0, 0.0);
  report.add_raw("other", 2.0, 0.0);
  EXPECT_DOUBLE_EQ(report.energy_share("COG"), 0.98);
  EXPECT_DOUBLE_EQ(report.energy_share("missing"), 0.0);
}

TEST(EnergyReport, BreakdownRendersTotal) {
  EnergyReport report;
  report.add_raw("a", 1e-12, 1e-12);
  const std::string s = report.breakdown();
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
  EXPECT_NE(s.find("100.0%"), std::string::npos);
}

TEST(EnergyReport, RejectsNegativeInputs) {
  EnergyReport report;
  EXPECT_THROW(report.add_raw("bad", -1.0, 0.0), Error);
  Component c;
  EXPECT_THROW(report.add(c, -1.0, 0.0, 0.0), Error);
}

TEST(DesignModel, EvaluateDerivesConsistentMetrics) {
  resipe_core::ResipeDesign design;
  const DesignPoint p = design.evaluate();
  EXPECT_GT(p.energy_per_mvm, 0.0);
  EXPECT_DOUBLE_EQ(p.ops_per_mvm, 2.0 * 32 * 32);
  EXPECT_NEAR(p.power, p.energy_per_mvm / p.interval, 1e-18);
  EXPECT_NEAR(p.throughput, p.ops_per_mvm / p.interval, 1e-6);
  EXPECT_NEAR(p.power_efficiency, p.throughput / p.power, 1.0);
  EXPECT_DOUBLE_EQ(p.latency, 200e-9);
  EXPECT_DOUBLE_EQ(p.interval, 100e-9);
}

}  // namespace
}  // namespace resipe::energy
