#include "resipe/eval/fault_tolerance.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/serialize.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {
namespace {

std::string cache_path(const FaultToleranceConfig& cfg) {
  if (cfg.weight_cache_dir.empty()) return {};
  return cfg.weight_cache_dir + "/resipe_weights_ft_" +
         std::string(nn::benchmark_name(cfg.net)) + ".bin";
}

}  // namespace

FaultToleranceResult evaluate_fault_tolerance(
    const FaultToleranceConfig& cfg) {
  RESIPE_TELEM_SCOPE("eval.fault_tolerance");
  RESIPE_REQUIRE(!cfg.defect_rates.empty() && cfg.mc_seeds >= 1,
                 "empty fault-tolerance sweep");

  Rng data_rng(cfg.data_seed);
  const bool objects = nn::uses_object_dataset(cfg.net);
  Rng train_rng = data_rng.split();
  Rng test_rng = data_rng.split();
  const nn::Dataset train =
      objects ? nn::synthetic_objects(cfg.train_samples, train_rng)
              : nn::synthetic_digits(cfg.train_samples, train_rng);
  const nn::Dataset test =
      objects ? nn::synthetic_objects(cfg.test_samples, test_rng)
              : nn::synthetic_digits(cfg.test_samples, test_rng);

  Rng model_rng(0xC0FFEEull + static_cast<std::uint64_t>(cfg.net));
  nn::Sequential model = nn::build_benchmark(cfg.net, model_rng);

  const std::string cache = cache_path(cfg);
  if (!cache.empty() && nn::weights_compatible(model, cache)) {
    nn::load_weights(model, cache);
    if (cfg.verbose) {
      std::printf("  [%s] loaded cached weights\n", model.name().c_str());
    }
  } else {
    nn::TrainConfig tc;
    tc.epochs = cfg.epochs;
    tc.batch_size = 32;
    tc.lr = 1e-3;
    tc.verbose = cfg.verbose;
    const auto tr = nn::fit(model, train, test, tc);
    if (cfg.verbose) {
      std::printf("  [%s] trained: train acc %.3f, test acc %.3f\n",
                  model.name().c_str(), tr.train_accuracy,
                  tr.test_accuracy);
    }
    if (!cache.empty()) nn::save_weights(model, cache);
  }

  FaultToleranceResult result;
  result.network = nn::benchmark_name(cfg.net);
  result.software_accuracy = nn::evaluate(model, test);

  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < std::min<std::size_t>(48, train.size()); ++i)
    calib_idx.push_back(i);
  auto [calib, calib_labels] = train.gather(calib_idx);
  (void)calib_labels;

  const auto run_arm = [&](double rate, std::size_t seed, bool mitigate,
                           std::unique_ptr<resipe_core::ResipeNetwork>&
                               holder) {
    resipe_core::EngineConfig ec;
    ec.program_seed = 1000 + 77 * seed;
    ec.reliability.enabled = true;
    ec.reliability.faults.stuck_lrs_rate = rate / 2.0;
    ec.reliability.faults.stuck_hrs_rate = rate / 2.0;
    ec.reliability.faults.cluster_fraction = cfg.cluster_fraction;
    ec.reliability.mitigation.enabled = mitigate;
    ec.reliability.mitigation.spare_cols = cfg.spare_cols;
    // Both arms must see the same defective silicon: the fault seed
    // depends on the Monte-Carlo seed only, never on the arm.
    ec.reliability.fault_seed = hash_seed(cfg.fault_seed, seed);
    holder = std::make_unique<resipe_core::ResipeNetwork>(model, ec, calib);
    return nn::evaluate_with(test, [&](const nn::Tensor& b) {
      return holder->forward(b);
    });
  };

  // Zero-defect circuit baseline: reliability disabled entirely.  Each
  // Monte-Carlo seed is an independent arm writing its own slot; the
  // fold below runs in seed order, so results are bit-identical for
  // any thread count (likewise for the sweep arms further down).
  {
    std::vector<double> base_acc(cfg.mc_seeds, 0.0);
    parallel_for(
        cfg.mc_seeds,
        [&](std::size_t seed) {
          resipe_core::EngineConfig ec;
          ec.program_seed = 1000 + 77 * seed;
          const resipe_core::ResipeNetwork hw(model, ec, calib);
          base_acc[seed] = nn::evaluate_with(
              test, [&hw](const nn::Tensor& b) { return hw.forward(b); });
        },
        cfg.threads);
    double acc_sum = 0.0;
    for (std::size_t seed = 0; seed < cfg.mc_seeds; ++seed) {
      acc_sum += base_acc[seed];
    }
    result.baseline_accuracy =
        acc_sum / static_cast<double>(cfg.mc_seeds);
    if (cfg.verbose) {
      std::printf("  [%s] zero-defect baseline: %.3f\n",
                  result.network.c_str(), result.baseline_accuracy);
    }
  }

  // One work item per (rate, seed) pair; the paired OFF/ON arms stay
  // together inside the item because they share a fault realization.
  struct ArmResult {
    double off = 0.0;
    double on = 0.0;
    resipe_core::ProgrammedMatrix::ReliabilityStats stats;
    std::size_t degraded = 0;
  };
  const std::size_t n_arms = cfg.defect_rates.size() * cfg.mc_seeds;
  std::vector<ArmResult> arms(n_arms);
  parallel_for(
      n_arms,
      [&](std::size_t a) {
        const double rate = cfg.defect_rates[a / cfg.mc_seeds];
        const std::size_t seed = a % cfg.mc_seeds;
        std::unique_ptr<resipe_core::ResipeNetwork> holder;
        arms[a].off = run_arm(rate, seed, /*mitigate=*/false, holder);
        arms[a].on = run_arm(rate, seed, /*mitigate=*/true, holder);
        arms[a].stats = holder->reliability_stats();
        arms[a].degraded = holder->degraded_outputs();
      },
      cfg.threads);

  for (std::size_t ri = 0; ri < cfg.defect_rates.size(); ++ri) {
    FaultTolerancePoint point;
    point.defect_rate = cfg.defect_rates[ri];
    double off_sum = 0.0;
    double on_sum = 0.0;
    for (std::size_t seed = 0; seed < cfg.mc_seeds; ++seed) {
      const ArmResult& arm = arms[ri * cfg.mc_seeds + seed];
      off_sum += arm.off;
      on_sum += arm.on;
      point.cells_faulty += arm.stats.cells_faulty;
      point.columns_remapped += arm.stats.columns_remapped;
      point.spares_used += arm.stats.spares_used;
      point.columns_unrepairable += arm.stats.columns_unrepairable;
      point.cells_compensated += arm.stats.cells_compensated;
      point.degraded_outputs += arm.degraded;
    }
    point.accuracy_off = off_sum / static_cast<double>(cfg.mc_seeds);
    point.accuracy_on = on_sum / static_cast<double>(cfg.mc_seeds);
    if (cfg.verbose) {
      std::printf("  [%s] defect rate %.2f%%: off %.3f, on %.3f\n",
                  result.network.c_str(), point.defect_rate * 100.0,
                  point.accuracy_off, point.accuracy_on);
    }
    RESIPE_TELEM_COUNT("eval.fault_tolerance.points", 1);
    result.points.push_back(point);
  }
  return result;
}

std::string render_fault_tolerance(const FaultToleranceResult& r) {
  RESIPE_REQUIRE(!r.points.empty(), "no fault-tolerance points");
  std::ostringstream os;
  os << "Network " << r.network << ": software accuracy "
     << format_percent(r.software_accuracy) << ", zero-defect circuit "
     << format_percent(r.baseline_accuracy) << "\n\n";
  TextTable t({"Defect rate", "Mitigation OFF", "Mitigation ON",
               "Recovered", "Faulty cells", "Remapped", "Compensated",
               "Unrepairable", "Degraded out"});
  for (const auto& p : r.points) {
    t.add_row({format_percent(p.defect_rate),
               format_percent(p.accuracy_off),
               format_percent(p.accuracy_on),
               format_percent(p.accuracy_on - p.accuracy_off),
               std::to_string(p.cells_faulty),
               std::to_string(p.columns_remapped),
               std::to_string(p.cells_compensated),
               std::to_string(p.columns_unrepairable),
               std::to_string(p.degraded_outputs)});
  }
  os << t.str() << "\n";
  os << "Mitigation = march-test detection + spare-column remapping +\n"
        "differential pair compensation; both arms share each fault\n"
        "realization, so 'Recovered' is a paired accuracy gain on\n"
        "identical defective silicon.\n";
  return os.str();
}

}  // namespace resipe::eval
