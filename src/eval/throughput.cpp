#include "resipe/eval/throughput.hpp"

#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/stats.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/comparison.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

double replicated_throughput(const energy::DesignPoint& p,
                             double area_budget) {
  RESIPE_REQUIRE(p.area > 0.0, "design area must be positive");
  const double replicas = std::floor(area_budget / p.area);
  return replicas * p.throughput;
}

ThroughputResult throughput_tradeoff(double min_budget, double max_budget,
                                     std::size_t steps) {
  RESIPE_TELEM_SCOPE("eval.throughput.tradeoff");
  RESIPE_REQUIRE(min_budget > 0.0 && max_budget > min_budget && steps >= 2,
                 "bad throughput sweep bounds");
  const ComparisonResult cmp = compare_designs();
  ThroughputResult result;
  result.area_axis = linspace(min_budget, max_budget, steps);
  for (const auto& p : cmp.points) {
    ThroughputSeries s;
    s.name = p.name;
    s.engine_area = p.area;
    s.engine_latency = p.latency;
    s.engine_throughput = p.throughput;
    s.area_budget = result.area_axis;
    for (double budget : result.area_axis) {
      s.throughput.push_back(replicated_throughput(p, budget));
    }
    result.series.push_back(std::move(s));
  }
  return result;
}

std::string ThroughputResult::render() const {
  std::vector<std::string> header{"Area budget"};
  for (const auto& s : series) header.push_back(s.name);
  TextTable t(std::move(header));
  for (std::size_t i = 0; i < area_axis.size(); ++i) {
    std::vector<std::string> row{format_fixed(area_axis[i] * 1e6, 3) +
                                 " mm2"};
    for (const auto& s : series)
      row.push_back(format_si(s.throughput[i], "OPS"));
    t.add_row(std::move(row));
  }
  std::ostringstream os;
  os << t.str() << "\n";
  os << "Per-engine footprint and latency:\n";
  for (const auto& s : series) {
    os << "  " << s.name << ": area "
       << format_fixed(s.engine_area * 1e6, 4) << " mm2, latency "
       << format_si(s.engine_latency, "s") << "\n";
  }
  return os.str();
}

}  // namespace resipe::eval
