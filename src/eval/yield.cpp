#include "resipe/eval/yield.hpp"

#include <algorithm>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

std::vector<YieldPoint> mvm_yield(const resipe_core::EngineConfig& base,
                                  const YieldConfig& config) {
  RESIPE_TELEM_SCOPE("eval.yield.mvm_yield");
  RESIPE_REQUIRE(!config.sigmas.empty() && config.chips_per_sigma > 0,
                 "empty yield sweep");
  Rng seeder(config.seed);
  // One seed list shared across sigmas: common random numbers keep the
  // sweep monotone instead of noisy.
  std::vector<std::uint64_t> chip_seeds(config.chips_per_sigma);
  for (auto& s : chip_seeds) s = seeder.next_u64();

  std::vector<YieldPoint> points;
  for (double sigma : config.sigmas) {
    YieldPoint p;
    p.sigma = sigma;
    std::size_t pass = 0;
    double sum = 0.0;
    for (std::uint64_t chip_seed : chip_seeds) {
      resipe_core::EngineConfig cfg = base;
      cfg.device.variation_sigma = sigma;
      cfg.program_seed = chip_seed;
      const FidelityScore score =
          mvm_fidelity(cfg, config.matrix_rows, config.matrix_cols,
                       config.samples_per_chip, config.seed);
      sum += score.rmse;
      p.worst_rmse = std::max(p.worst_rmse, score.rmse);
      if (score.rmse <= config.rmse_bound) ++pass;
    }
    p.mean_rmse = sum / static_cast<double>(config.chips_per_sigma);
    p.yield = static_cast<double>(pass) /
              static_cast<double>(config.chips_per_sigma);
    points.push_back(p);
  }
  return points;
}

std::string render_yield(const std::vector<YieldPoint>& points,
                         double rmse_bound) {
  TextTable t({"sigma", "mean MVM RMSE", "worst chip",
               "yield @ RMSE <= " + format_percent(rmse_bound)});
  for (const auto& p : points) {
    t.add_row({format_percent(p.sigma), format_percent(p.mean_rmse),
               format_percent(p.worst_rmse), format_percent(p.yield)});
  }
  std::ostringstream os;
  os << t.str();
  return os.str();
}

}  // namespace resipe::eval
