#include "resipe/eval/yield.hpp"

#include <algorithm>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

std::vector<YieldPoint> mvm_yield(const resipe_core::EngineConfig& base,
                                  const YieldConfig& config) {
  RESIPE_TELEM_SCOPE("eval.yield.mvm_yield");
  RESIPE_REQUIRE(!config.sigmas.empty() && config.chips_per_sigma > 0,
                 "empty yield sweep");
  std::vector<YieldPoint> points;
  for (std::size_t si = 0; si < config.sigmas.size(); ++si) {
    const double sigma = config.sigmas[si];
    YieldPoint p;
    p.sigma = sigma;
    std::size_t pass = 0;
    double sum = 0.0;
    for (std::size_t chip = 0; chip < config.chips_per_sigma; ++chip) {
      resipe_core::EngineConfig cfg = base;
      cfg.device.variation_sigma = sigma;
      // Every (sigma, chip) cell hashes to its own decorrelated stream:
      // reordering/extending the sigma list or the chip count never
      // changes the draws of another cell, so sweep results compose and
      // reruns are bit-identical point by point.
      cfg.program_seed = hash_seed(config.seed, si, chip);
      const FidelityScore score =
          mvm_fidelity(cfg, config.matrix_rows, config.matrix_cols,
                       config.samples_per_chip, config.seed);
      sum += score.rmse;
      p.worst_rmse = std::max(p.worst_rmse, score.rmse);
      if (score.rmse <= config.rmse_bound) ++pass;
    }
    p.mean_rmse = sum / static_cast<double>(config.chips_per_sigma);
    p.yield = static_cast<double>(pass) /
              static_cast<double>(config.chips_per_sigma);
    points.push_back(p);
  }
  return points;
}

std::string render_yield(const std::vector<YieldPoint>& points,
                         double rmse_bound) {
  TextTable t({"sigma", "mean MVM RMSE", "worst chip",
               "yield @ RMSE <= " + format_percent(rmse_bound)});
  for (const auto& p : points) {
    t.add_row({format_percent(p.sigma), format_percent(p.mean_rmse),
               format_percent(p.worst_rmse), format_percent(p.yield)});
  }
  std::ostringstream os;
  os << t.str();
  return os.str();
}

}  // namespace resipe::eval
