#include "resipe/eval/yield.hpp"

#include <algorithm>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

std::vector<YieldPoint> mvm_yield(const resipe_core::EngineConfig& base,
                                  const YieldConfig& config) {
  RESIPE_TELEM_SCOPE("eval.yield.mvm_yield");
  RESIPE_REQUIRE(!config.sigmas.empty() && config.chips_per_sigma > 0,
                 "empty yield sweep");
  // Every (sigma, chip) cell hashes to its own decorrelated stream:
  // reordering/extending the sigma list or the chip count never changes
  // the draws of another cell, so sweep results compose, reruns are
  // bit-identical point by point, and the cells parallelize freely.
  // Each cell writes its own slot; the fold below runs chip-ascending
  // per sigma, so thread count never changes the reduction order.
  const std::size_t n_cells = config.sigmas.size() * config.chips_per_sigma;
  std::vector<double> cell_rmse(n_cells, 0.0);
  parallel_for(
      n_cells,
      [&](std::size_t cell) {
        const std::size_t si = cell / config.chips_per_sigma;
        const std::size_t chip = cell % config.chips_per_sigma;
        resipe_core::EngineConfig cfg = base;
        cfg.device.variation_sigma = config.sigmas[si];
        cfg.program_seed = hash_seed(config.seed, si, chip);
        cell_rmse[cell] =
            mvm_fidelity(cfg, config.matrix_rows, config.matrix_cols,
                         config.samples_per_chip, config.seed)
                .rmse;
      },
      config.threads);

  std::vector<YieldPoint> points;
  for (std::size_t si = 0; si < config.sigmas.size(); ++si) {
    YieldPoint p;
    p.sigma = config.sigmas[si];
    std::size_t pass = 0;
    double sum = 0.0;
    for (std::size_t chip = 0; chip < config.chips_per_sigma; ++chip) {
      const double rmse = cell_rmse[si * config.chips_per_sigma + chip];
      sum += rmse;
      p.worst_rmse = std::max(p.worst_rmse, rmse);
      if (rmse <= config.rmse_bound) ++pass;
    }
    p.mean_rmse = sum / static_cast<double>(config.chips_per_sigma);
    p.yield = static_cast<double>(pass) /
              static_cast<double>(config.chips_per_sigma);
    points.push_back(p);
  }
  return points;
}

std::string render_yield(const std::vector<YieldPoint>& points,
                         double rmse_bound) {
  TextTable t({"sigma", "mean MVM RMSE", "worst chip",
               "yield @ RMSE <= " + format_percent(rmse_bound)});
  for (const auto& p : points) {
    t.add_row({format_percent(p.sigma), format_percent(p.mean_rmse),
               format_percent(p.worst_rmse), format_percent(p.yield)});
  }
  std::ostringstream os;
  os << t.str();
  return os.str();
}

}  // namespace resipe::eval
