#include "resipe/eval/accuracy.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/serialize.hpp"
#include "resipe/nn/train.hpp"

namespace resipe::eval {
namespace {

/// Per-network scaling of the training budget: the deep CNNs train on
/// fewer samples so the full Fig. 7 sweep stays CPU-tractable; the
/// synthetic tasks are easy enough that accuracy stays high.
double train_budget_factor(nn::BenchmarkNet net) {
  switch (net) {
    case nn::BenchmarkNet::kMlp1:
    case nn::BenchmarkNet::kMlp2: return 1.0;
    case nn::BenchmarkNet::kCnn1: return 0.7;
    case nn::BenchmarkNet::kCnn2: return 0.5;
    case nn::BenchmarkNet::kCnn3:
    case nn::BenchmarkNet::kCnn4: return 0.4;
  }
  return 1.0;
}

/// Deep CNNs need more optimization steps to converge on the synthetic
/// task; the MLPs would just overfit.
std::size_t epochs_for(nn::BenchmarkNet net, std::size_t base) {
  switch (net) {
    case nn::BenchmarkNet::kCnn2: return base + 2;
    case nn::BenchmarkNet::kCnn3:
    case nn::BenchmarkNet::kCnn4: return 2 * base + 2;
    default: return base;
  }
}

std::string cache_path(const AccuracyConfig& cfg, nn::BenchmarkNet net) {
  if (cfg.weight_cache_dir.empty()) return {};
  std::string tag;
  switch (net) {
    case nn::BenchmarkNet::kMlp1: tag = "mlp1"; break;
    case nn::BenchmarkNet::kMlp2: tag = "mlp2"; break;
    case nn::BenchmarkNet::kCnn1: tag = "cnn1"; break;
    case nn::BenchmarkNet::kCnn2: tag = "cnn2"; break;
    case nn::BenchmarkNet::kCnn3: tag = "cnn3"; break;
    case nn::BenchmarkNet::kCnn4: tag = "cnn4"; break;
  }
  return cfg.weight_cache_dir + "/resipe_weights_" + tag + ".bin";
}

}  // namespace

NetworkAccuracy evaluate_network_accuracy(nn::BenchmarkNet net,
                                          const AccuracyConfig& cfg) {
  RESIPE_REQUIRE(!cfg.sigmas.empty() && cfg.mc_seeds >= 1,
                 "empty accuracy sweep");
  Rng data_rng(cfg.data_seed);
  const std::size_t n_train = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(cfg.train_samples) *
                                   train_budget_factor(net)));
  const bool objects = nn::uses_object_dataset(net);
  Rng train_rng = data_rng.split();
  Rng test_rng = data_rng.split();
  const nn::Dataset train = objects
                                ? nn::synthetic_objects(n_train, train_rng)
                                : nn::synthetic_digits(n_train, train_rng);
  const nn::Dataset test =
      objects ? nn::synthetic_objects(cfg.test_samples, test_rng)
              : nn::synthetic_digits(cfg.test_samples, test_rng);

  Rng model_rng(0xC0FFEEull + static_cast<std::uint64_t>(net));
  nn::Sequential model = nn::build_benchmark(net, model_rng);

  const std::string cache = cache_path(cfg, net);
  if (!cache.empty() && nn::weights_compatible(model, cache)) {
    nn::load_weights(model, cache);
    if (cfg.verbose) std::printf("  [%s] loaded cached weights\n",
                                 model.name().c_str());
  } else {
    nn::TrainConfig tc;
    tc.epochs = epochs_for(net, cfg.epochs);
    tc.batch_size = 32;
    tc.lr = 1e-3;
    tc.verbose = cfg.verbose;
    const auto tr = nn::fit(model, train, test, tc);
    if (cfg.verbose) {
      std::printf("  [%s] trained: train acc %.3f, test acc %.3f\n",
                  model.name().c_str(), tr.train_accuracy,
                  tr.test_accuracy);
    }
    if (!cache.empty()) nn::save_weights(model, cache);
  }

  NetworkAccuracy row;
  row.name = nn::benchmark_name(net);
  row.software_accuracy = nn::evaluate(model, test);
  row.sigmas = cfg.sigmas;

  // Calibration batch: a slice of the training set.
  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < std::min<std::size_t>(48, train.size()); ++i)
    calib_idx.push_back(i);
  auto [calib, calib_labels] = train.gather(calib_idx);
  (void)calib_labels;

  // Each (sigma, seed) arm is an independent Monte-Carlo chip: it
  // derives all randomness from its own program seed and only reads
  // the shared trained model, so the arms parallelize freely.  Each
  // arm writes an index-addressed slot and the reduction below folds
  // them in the original (sigma-outer, seed-inner) order, making the
  // sweep bit-identical for any thread count.
  const std::size_t n_arms = cfg.sigmas.size() * cfg.mc_seeds;
  std::vector<double> arm_acc(n_arms, 0.0);
  parallel_for(
      n_arms,
      [&](std::size_t a) {
        const std::size_t si = a / cfg.mc_seeds;
        const std::size_t seed = a % cfg.mc_seeds;
        resipe_core::EngineConfig ec;
        ec.device.variation_sigma = cfg.sigmas[si];
        // Common random numbers across the sigma sweep: the same
        // underlying Gaussian draws scale with sigma, so each
        // Monte-Carlo chip degrades monotonically and the sweep is not
        // drowned in sampling noise.
        ec.program_seed = 1000 + 77 * seed;
        const resipe_core::ResipeNetwork hw(model, ec, calib);
        arm_acc[a] = nn::evaluate_with(
            test, [&hw](const nn::Tensor& b) { return hw.forward(b); });
      },
      cfg.threads);

  for (std::size_t si = 0; si < cfg.sigmas.size(); ++si) {
    double acc_sum = 0.0;
    for (std::size_t seed = 0; seed < cfg.mc_seeds; ++seed) {
      acc_sum += arm_acc[si * cfg.mc_seeds + seed];
    }
    row.accuracy.push_back(acc_sum / static_cast<double>(cfg.mc_seeds));
    if (cfg.verbose) {
      std::printf("  [%s] sigma %.0f%%: accuracy %.3f\n", row.name.c_str(),
                  cfg.sigmas[si] * 100.0, row.accuracy.back());
    }
  }
  return row;
}

std::vector<NetworkAccuracy> evaluate_all_networks(
    const AccuracyConfig& cfg) {
  std::vector<NetworkAccuracy> rows;
  for (nn::BenchmarkNet net : nn::all_benchmarks()) {
    rows.push_back(evaluate_network_accuracy(net, cfg));
  }
  return rows;
}

std::string render_accuracy(const std::vector<NetworkAccuracy>& rows) {
  RESIPE_REQUIRE(!rows.empty(), "no accuracy rows");
  std::vector<std::string> header{"Network", "Ideal (software)"};
  for (double s : rows.front().sigmas)
    header.push_back("sigma=" + format_fixed(s * 100.0, 0) + "%");
  TextTable t(std::move(header));
  for (const auto& r : rows) {
    std::vector<std::string> cells{r.name,
                                   format_percent(r.software_accuracy)};
    for (double a : r.accuracy) cells.push_back(format_percent(a));
    t.add_row(std::move(cells));
  }
  std::ostringstream os;
  os << t.str() << "\n";
  os << "Accuracy drop vs ideal (paper: <2.5% at sigma=0; 1..15% at "
        "sigma=20%, larger for deeper nets):\n";
  for (const auto& r : rows) {
    os << "  " << r.name << ": sigma=0 drop "
       << format_percent(r.drop(0)) << ", sigma="
       << format_fixed(r.sigmas.back() * 100.0, 0) << "% drop "
       << format_percent(r.drop(r.accuracy.size() - 1)) << "\n";
  }
  return os.str();
}

}  // namespace resipe::eval
