#include "resipe/eval/precision.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"

namespace resipe::eval {

namespace {

/// Runs one matrix layer in both worlds over probe vectors; returns the
/// precision row.
LayerPrecision measure_matrix(
    const resipe_core::ProgrammedMatrix& pm, const std::string& description,
    std::span<const double> xs, std::size_t n,
    std::span<const double> weights, std::span<const double> bias) {
  const std::size_t in = pm.in_features();
  const std::size_t out = pm.out_features();
  LayerPrecision row;
  row.description = description;
  row.in_features = in;
  row.out_features = out;
  row.alpha = pm.time_scale();

  std::vector<double> y_hw(out, 0.0);
  double err_ss = 0.0;
  double sig_ss = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::span<const double> x(xs.data() + s * in, in);
    pm.forward(x, y_hw);
    for (std::size_t j = 0; j < out; ++j) {
      double ref = bias[j];
      for (std::size_t i = 0; i < in; ++i) ref += x[i] * weights[i * out + j];
      err_ss += (y_hw[j] - ref) * (y_hw[j] - ref);
      sig_ss += ref * ref;
    }
  }
  const double count = static_cast<double>(n * out);
  row.rmse = std::sqrt(err_ss / count);
  row.signal_rms = std::sqrt(sig_ss / count);
  row.snr_db = row.rmse > 0.0
                   ? 20.0 * std::log10(std::max(row.signal_rms, 1e-30) /
                                       row.rmse)
                   : 200.0;
  return row;
}

}  // namespace

std::vector<LayerPrecision> layer_precision(
    nn::Sequential& model, const resipe_core::EngineConfig& config,
    const nn::Tensor& probe, std::size_t probe_limit) {
  RESIPE_REQUIRE(probe_limit >= 4, "need a few probe vectors");
  std::vector<LayerPrecision> rows;
  Rng rng(config.program_seed);
  nn::Tensor h = probe;

  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    nn::Layer& layer = model.layer(li);
    if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      const std::size_t in = dense->in_features();
      const std::size_t n = std::min<std::size_t>(h.dim(0), probe_limit);
      resipe_core::ProgrammedMatrix pm(
          config, dense->weights().data(), dense->bias().data(), in,
          dense->out_features(), rng);
      const double scale = h.abs_max() * config.input_scale_margin;
      pm.set_input_scale(scale > 0.0 ? scale : 1.0);
      const std::span<const double> xs(h.data().data(), n * in);
      pm.calibrate_alpha(xs, n);
      rows.push_back(measure_matrix(pm, dense->describe(), xs, n,
                                    dense->weights().data(),
                                    dense->bias().data()));
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const std::size_t in =
          conv->in_channels() * conv->kernel() * conv->kernel();
      const std::vector<double> wm = resipe_core::conv_weight_matrix(*conv);
      resipe_core::ProgrammedMatrix pm(config, wm, conv->bias().data(), in,
                                       conv->out_channels(), rng);
      const double scale = h.abs_max() * config.input_scale_margin;
      pm.set_input_scale(scale > 0.0 ? scale : 1.0);

      const std::size_t oh = conv->out_size(h.dim(2));
      const std::size_t ow = conv->out_size(h.dim(3));
      const std::size_t total = h.dim(0) * oh * ow;
      const std::size_t take = std::min<std::size_t>(total, probe_limit);
      std::vector<double> patches(take * in, 0.0);
      std::vector<double> patch(in, 0.0);
      const std::size_t stride = std::max<std::size_t>(1, total / take);
      std::size_t written = 0;
      for (std::size_t pos = 0; pos < total && written < take;
           pos += stride, ++written) {
        const std::size_t img = pos / (oh * ow);
        const std::size_t rc = pos % (oh * ow);
        resipe_core::gather_conv_patch(h, img, conv->in_channels(),
                                       conv->kernel(), conv->stride(),
                                       conv->pad(), rc / ow, rc % ow,
                                       patch);
        std::copy(patch.begin(), patch.end(),
                  patches.begin() +
                      static_cast<std::ptrdiff_t>(written * in));
      }
      const std::span<const double> xs(patches.data(), written * in);
      pm.calibrate_alpha(xs, written);
      rows.push_back(measure_matrix(pm, conv->describe(), xs, written, wm,
                                    conv->bias().data()));
    }
    h = layer.forward(h, /*train=*/false);
  }
  return rows;
}

std::string render_precision(const std::vector<LayerPrecision>& rows) {
  TextTable t({"Layer", "Fan-in x out", "Signal RMS", "Error RMS",
               "SNR", "alpha"});
  for (const auto& r : rows) {
    t.add_row({r.description,
               std::to_string(r.in_features) + " x " +
                   std::to_string(r.out_features),
               format_fixed(r.signal_rms, 4), format_fixed(r.rmse, 4),
               format_fixed(r.snr_db, 1) + " dB",
               format_fixed(r.alpha, 3)});
  }
  std::ostringstream os;
  os << t.str();
  return os.str();
}

}  // namespace resipe::eval
