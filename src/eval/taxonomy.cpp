#include "resipe/eval/taxonomy.hpp"

namespace resipe::eval {

std::vector<DataFormatClass> data_format_taxonomy() {
  return {
      {"Level", "analog levels (e.g. 0.43V / 0.71V)", "DAC & ADC", "Long",
       "Same", "Fast", "[9, 14, 17]"},
      {"PWM", "full-swing pulse, width-coded", "Pulse modulator + ADC",
       "Medium", "Same", "Medium", "[15]"},
      {"Rate coding", "spike train, frequency-coded", "Spike modulator",
       "Medium", "Different", "Medium", "[11, 12, 13]"},
      {"Temporal coding", "shaped spikes (STDP-capable)", "Neuron circuit",
       "Medium", "Same", "Slow", "[16]"},
      {"Single-spiking (this work)", "one spike, arrival-time-coded",
       "ReSiPE GD + COG", "Short", "Same", "Medium", "ReSiPE"},
  };
}

TextTable taxonomy_table() {
  TextTable t({"Data format", "Shape", "Interface circuit",
               "Non-zero-voltage duration", "In/out scale", "Latency",
               "Representative"});
  for (const auto& row : data_format_taxonomy()) {
    t.add_row({row.format, row.shape, row.interface, row.drive_duration,
               row.in_out_scale, row.latency, row.representative});
  }
  return t;
}

}  // namespace resipe::eval
