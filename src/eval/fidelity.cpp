#include "resipe/eval/fidelity.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

FidelityScore mvm_fidelity(const resipe_core::EngineConfig& config,
                           std::size_t in, std::size_t out,
                           std::size_t samples, std::uint64_t seed) {
  RESIPE_TELEM_SCOPE("eval.fidelity.mvm_fidelity");
  RESIPE_REQUIRE(in > 0 && out > 0 && samples > 0, "empty fidelity run");
  Rng rng(seed);

  std::vector<double> w(in * out);
  for (double& v : w) v = rng.normal(0.0, 0.4);
  const std::vector<double> bias(out, 0.0);

  Rng prog(config.program_seed);
  resipe_core::ProgrammedMatrix pm(config, w, bias, in, out, prog);
  pm.set_input_scale(1.0);

  std::vector<double> xs(samples * in);
  for (double& v : xs) v = rng.uniform(0.0, 1.0);
  pm.calibrate_alpha(xs, samples);

  std::vector<double> y_hw(out), y_ref(out);
  double ss = 0.0;
  double worst = 0.0;
  double ref_scale = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::span<const double> x(xs.data() + s * in, in);
    pm.forward(x, y_hw);
    for (std::size_t j = 0; j < out; ++j) {
      y_ref[j] = 0.0;
      for (std::size_t i = 0; i < in; ++i) y_ref[j] += x[i] * w[i * out + j];
      const double err = y_hw[j] - y_ref[j];
      ss += err * err;
      worst = std::max(worst, std::abs(err));
      ref_scale = std::max(ref_scale, std::abs(y_ref[j]));
    }
  }
  RESIPE_ASSERT(ref_scale > 0.0, "degenerate fidelity reference");
  FidelityScore score;
  score.rmse = std::sqrt(ss / static_cast<double>(samples * out)) /
               ref_scale;
  score.worst = worst / ref_scale;
  score.alpha = pm.time_scale();
  return score;
}

}  // namespace resipe::eval
