#include "resipe/eval/fidelity.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

FidelityScore mvm_fidelity(const resipe_core::EngineConfig& config,
                           std::size_t in, std::size_t out,
                           std::size_t samples, std::uint64_t seed,
                           std::size_t threads) {
  RESIPE_TELEM_SCOPE("eval.fidelity.mvm_fidelity");
  RESIPE_REQUIRE(in > 0 && out > 0 && samples > 0, "empty fidelity run");
  Rng rng(seed);

  std::vector<double> w(in * out);
  for (double& v : w) v = rng.normal(0.0, 0.4);
  const std::vector<double> bias(out, 0.0);

  Rng prog(config.program_seed);
  resipe_core::ProgrammedMatrix pm(config, w, bias, in, out, prog);
  pm.set_input_scale(1.0);

  std::vector<double> xs(samples * in);
  for (double& v : xs) v = rng.uniform(0.0, 1.0);
  pm.calibrate_alpha(xs, samples);

  // Samples are pure functions of the pre-drawn inputs and the (const)
  // programmed matrix: each records its own partial error statistics
  // and the fold below runs sample-ascending, so the score is
  // bit-identical for any thread count.
  std::vector<double> ss_arr(samples, 0.0);
  std::vector<double> worst_arr(samples, 0.0);
  std::vector<double> ref_arr(samples, 0.0);
  parallel_for_chunked(
      samples, 0,
      [&](std::size_t b, std::size_t e) {
        std::vector<double> y_hw(out), y_ref(out);
        for (std::size_t s = b; s < e; ++s) {
          const std::span<const double> x(xs.data() + s * in, in);
          pm.forward(x, y_hw);
          for (std::size_t j = 0; j < out; ++j) {
            y_ref[j] = 0.0;
            for (std::size_t i = 0; i < in; ++i)
              y_ref[j] += x[i] * w[i * out + j];
            const double err = y_hw[j] - y_ref[j];
            ss_arr[s] += err * err;
            worst_arr[s] = std::max(worst_arr[s], std::abs(err));
            ref_arr[s] = std::max(ref_arr[s], std::abs(y_ref[j]));
          }
        }
      },
      threads);

  double ss = 0.0;
  double worst = 0.0;
  double ref_scale = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    ss += ss_arr[s];
    worst = std::max(worst, worst_arr[s]);
    ref_scale = std::max(ref_scale, ref_arr[s]);
  }
  RESIPE_ASSERT(ref_scale > 0.0, "degenerate fidelity reference");
  FidelityScore score;
  score.rmse = std::sqrt(ss / static_cast<double>(samples * out)) /
               ref_scale;
  score.worst = worst / ref_scale;
  score.alpha = pm.time_scale();
  return score;
}

}  // namespace resipe::eval
