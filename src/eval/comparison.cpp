#include "resipe/eval/comparison.hpp"

#include <sstream>

#include "resipe/baselines/level_based.hpp"
#include "resipe/baselines/pwm_based.hpp"
#include "resipe/baselines/rate_coding.hpp"
#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"
#include "resipe/resipe/design.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::eval {

ComparisonResult compare_designs(std::size_t rows, std::size_t cols) {
  RESIPE_TELEM_SCOPE("eval.comparison.compare_designs");
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();

  resipe_core::ResipeDesign resipe({}, spec, rows, cols);
  baselines::LevelBasedDesign level({}, spec, rows, cols);
  baselines::RateCodingDesign rate({}, spec, rows, cols);
  baselines::PwmDesign pwm({}, spec, rows, cols);

  ComparisonResult result;
  result.points = {resipe.evaluate(), level.evaluate(), rate.evaluate(),
                   pwm.evaluate()};

  const auto& pr = result.points[0];
  const auto& pl = result.points[1];
  const auto& pt = result.points[2];
  const auto& pw = result.points[3];

  ComparisonHeadlines& h = result.headlines;
  h.power_reduction_vs_level = 1.0 - pr.power / pl.power;
  h.peff_gain_vs_level = pr.power_efficiency / pl.power_efficiency;
  h.peff_gain_vs_rate = pr.power_efficiency / pt.power_efficiency;
  h.peff_gain_vs_pwm = pr.power_efficiency / pw.power_efficiency;
  h.latency_saving_vs_rate = 1.0 - pr.latency / pt.latency;
  h.latency_saving_vs_pwm = 1.0 - pr.latency / pw.latency;
  h.area_saving_vs_rate = 1.0 - pr.area / pt.area;
  h.area_saving_vs_level = 1.0 - pr.area / pl.area;

  const auto report = resipe.mvm_report();
  h.cog_power_share = report.energy_share("COG");
  result.resipe_breakdown = report.breakdown();
  return result;
}

std::string ComparisonResult::render() const {
  RESIPE_REQUIRE(points.size() == 4, "comparison expects 4 designs");
  const auto& pr = points[0];

  TextTable t({"Design", "Energy/MVM", "Power", "Power eff.", "Latency",
               "Area", "Peff vs ReSiPE"});
  for (const auto& p : points) {
    t.add_row({p.name, format_si(p.energy_per_mvm, "J"),
               format_si(p.power, "W"),
               format_si(p.power_efficiency, "OPS/W"),
               format_si(p.latency, "s"),
               format_fixed(p.area * 1e6, 4) + " mm2",
               format_ratio(pr.power_efficiency / p.power_efficiency)});
  }

  std::ostringstream os;
  os << t.str() << "\n";
  os << "Headline ratios (paper values in parentheses):\n";
  os << "  power reduction vs level-based : "
     << format_percent(headlines.power_reduction_vs_level)
     << "  (67.1%)\n";
  os << "  power eff. vs level-based      : "
     << format_ratio(headlines.peff_gain_vs_level) << "  (1.97x)\n";
  os << "  power eff. vs rate-coding      : "
     << format_ratio(headlines.peff_gain_vs_rate) << "  (2.41x)\n";
  os << "  power eff. vs PWM-based        : "
     << format_ratio(headlines.peff_gain_vs_pwm) << "  (49.76x)\n";
  os << "  latency saving vs rate-coding  : "
     << format_percent(headlines.latency_saving_vs_rate) << "  (50.0%)\n";
  os << "  latency saving vs PWM-based    : "
     << format_percent(headlines.latency_saving_vs_pwm) << "  (68.8%)\n";
  os << "  area saving vs rate-coding     : "
     << format_percent(headlines.area_saving_vs_rate) << "  (14.2%)\n";
  os << "  area saving vs level-based     : "
     << format_percent(headlines.area_saving_vs_level) << "  (85.3%)\n";
  os << "  COG share of ReSiPE power      : "
     << format_percent(headlines.cog_power_share) << "  (98.1%)\n";
  return os.str();
}

}  // namespace resipe::eval
