#include "resipe/eval/characterization.hpp"

#include <algorithm>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/telemetry/telemetry.hpp"
#include "resipe/resipe/fast_mvm.hpp"

namespace resipe::eval {

double column_t_out(const circuits::CircuitParams& params,
                    std::span<const double> t_in,
                    std::span<const double> g) {
  RESIPE_REQUIRE(t_in.size() == g.size() && !t_in.empty(),
                 "characterization vectors must match");
  resipe_core::FastMvm mvm(params, t_in.size(), 1,
                           std::vector<double>(g.begin(), g.end()));
  std::vector<double> t_out(1, 0.0);
  mvm.mvm_times(t_in, t_out);
  // A silent line means the output exceeded the slice — report the
  // saturation boundary, which is what an oscilloscope would show.
  if (t_out[0] == resipe_core::FastMvm::kNoSpike) {
    return params.slice_length;
  }
  return t_out[0];
}

double single_point_t_out(const circuits::CircuitParams& params,
                          std::size_t rows, double t_in, double g_total) {
  RESIPE_REQUIRE(rows > 0 && g_total > 0.0 && t_in >= 0.0,
                 "invalid characterization point");
  const double g_cell = g_total / static_cast<double>(rows);
  const std::vector<double> t(rows, t_in);
  const std::vector<double> g(rows, g_cell);
  return column_t_out(params, t, g);
}

namespace {

/// Measures one sample: per-row arrival times `t`, uniform per-cell
/// conductance summing to `g_total`.
CharacterizationPoint measure(const CharacterizationConfig& cfg,
                              std::span<const double> t, double g_total) {
  const double g_cell = g_total / static_cast<double>(cfg.rows);
  const std::vector<double> g(cfg.rows, g_cell);
  CharacterizationPoint p;
  p.g_total = g_total;
  double mean = 0.0;
  double strength = 0.0;
  for (double ti : t) {
    mean += ti;
    strength += ti * g_cell;
  }
  p.t_in = mean / static_cast<double>(t.size());
  p.strength = strength;
  p.t_out = column_t_out(cfg.circuit, t, g);
  p.t_out_ideal = cfg.circuit.linear_gain() * strength;
  return p;
}

PolyFit fit_points(const std::vector<CharacterizationPoint>& pts,
                   int degree) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : pts) {
    xs.push_back(p.strength);
    ys.push_back(p.t_out);
  }
  return polyfit(xs, ys, degree);
}

}  // namespace

CharacterizationResult characterize(const CharacterizationConfig& cfg) {
  RESIPE_TELEM_SCOPE("eval.characterization.characterize");
  RESIPE_REQUIRE(cfg.samples >= 4 && cfg.sweep_points >= 4,
                 "too few characterization points");
  Rng rng(cfg.seed);
  CharacterizationResult result;

  // 100 random samples ("with different t_in and G", Sec. III-D):
  // each sample draws a mean arrival time and a column conductance;
  // the rows jitter around the mean as they would for one MVM of a
  // real workload.  All draws happen here, serially, in the original
  // per-sample order (t_bar, row jitters, g_total); the deterministic
  // measurements then fan out over the pool into per-sample slots, so
  // the result is bit-identical for any thread count.
  std::vector<double> sample_t(cfg.samples * cfg.rows, 0.0);
  std::vector<double> sample_g(cfg.samples, 0.0);
  for (std::size_t i = 0; i < cfg.samples; ++i) {
    const double t_bar = rng.uniform(cfg.t_in_min, cfg.t_in_max);
    for (std::size_t r = 0; r < cfg.rows; ++r) {
      sample_t[i * cfg.rows + r] =
          std::clamp(t_bar * (1.0 + rng.normal(0.0, 0.2)), cfg.t_in_min,
                     cfg.t_in_max);
    }
    sample_g[i] = rng.uniform(cfg.g_total_min, cfg.g_total_max);
  }
  result.random_samples.resize(cfg.samples);
  parallel_for(
      cfg.samples,
      [&](std::size_t i) {
        result.random_samples[i] = measure(
            cfg,
            std::span<const double>(sample_t.data() + i * cfg.rows,
                                    cfg.rows),
            sample_g[i]);
      },
      cfg.threads);

  // Fixed-G sweeps for Curves 2 and 3: a frozen per-row jitter pattern
  // scaled so the mean arrival sweeps the full input range.
  std::vector<double> jitter(cfg.rows, 0.0);
  for (double& z : jitter) z = rng.normal(0.0, 0.25);
  const auto t_sweep = linspace(cfg.t_in_min, cfg.t_in_max,
                                cfg.sweep_points);
  result.sweep_2_5ms.resize(t_sweep.size());
  result.sweep_3_2ms.resize(t_sweep.size());
  parallel_for(
      t_sweep.size(),
      [&](std::size_t p) {
        std::vector<double> t(cfg.rows, 0.0);
        for (std::size_t r = 0; r < cfg.rows; ++r) {
          t[r] = std::clamp(t_sweep[p] * (1.0 + jitter[r]), cfg.t_in_min,
                            cfg.t_in_max);
        }
        result.sweep_2_5ms[p] = measure(cfg, t, 2.5e-3);
        result.sweep_3_2ms[p] = measure(cfg, t, 3.2e-3);
      },
      cfg.threads);

  std::vector<CharacterizationPoint> curve1_pts;
  for (const auto& p : result.random_samples) {
    if (p.g_total <= 1.6e-3) curve1_pts.push_back(p);
  }
  RESIPE_ASSERT(curve1_pts.size() >= static_cast<std::size_t>(
                                         cfg.fit_degree + 1),
                "not enough samples below 1.6 mS for Curve 1");
  result.curve1 = fit_points(curve1_pts, cfg.fit_degree);
  result.curve2 = fit_points(result.sweep_2_5ms, cfg.fit_degree);
  result.curve3 = fit_points(result.sweep_3_2ms, cfg.fit_degree);
  return result;
}

}  // namespace resipe::eval
