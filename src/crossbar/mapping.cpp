#include "resipe/crossbar/mapping.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::crossbar {

const char* to_string(SignedMapping strategy) {
  switch (strategy) {
    case SignedMapping::kDifferentialPair: return "differential pair";
    case SignedMapping::kComplementaryPair: return "complementary pair";
    case SignedMapping::kOffsetColumn: return "offset column";
  }
  return "?";
}

namespace {
bool is_pair(SignedMapping s) {
  return s == SignedMapping::kDifferentialPair ||
         s == SignedMapping::kComplementaryPair;
}
}  // namespace

std::size_t MappedWeights::plus_col(std::size_t logical_j) const {
  RESIPE_REQUIRE(logical_j < logical_cols, "logical column out of range");
  return is_pair(strategy) ? 2 * logical_j : logical_j;
}

std::size_t MappedWeights::minus_col(std::size_t logical_j) const {
  RESIPE_REQUIRE(logical_j < logical_cols, "logical column out of range");
  return is_pair(strategy) ? 2 * logical_j + 1 : reference_col;
}

MappedWeights map_weights(std::span<const double> weights, std::size_t rows,
                          std::size_t logical_cols,
                          const device::ReramSpec& spec,
                          SignedMapping strategy, double w_clip) {
  RESIPE_TELEM_SCOPE("crossbar.mapping.map_weights");
  RESIPE_REQUIRE(rows > 0 && logical_cols > 0, "empty weight matrix");
  RESIPE_REQUIRE(weights.size() == rows * logical_cols,
                 "weight matrix size mismatch");
  spec.validate();

  double scale = w_clip;
  if (scale <= 0.0) {
    for (double w : weights) scale = std::max(scale, std::abs(w));
    if (scale <= 0.0) scale = 1.0;  // all-zero matrix
  } else if (telemetry::enabled()) {
    std::size_t clipped = 0;
    for (double w : weights) {
      if (std::abs(w) > scale) ++clipped;
    }
    RESIPE_TELEM_COUNT("crossbar.mapping.clipped_weights", clipped);
  }
  RESIPE_TELEM_COUNT("crossbar.mapping.mapped_weights", weights.size());

  const double g_min = spec.g_min();
  const double g_span = spec.g_max() - spec.g_min();

  MappedWeights out;
  out.rows = rows;
  out.strategy = strategy;
  out.logical_cols = logical_cols;

  if (strategy == SignedMapping::kDifferentialPair) {
    out.cols = 2 * logical_cols;
    out.g_targets.assign(rows * out.cols, 0.0);
    out.weight_per_siemens = scale / g_span;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < logical_cols; ++j) {
        const double w =
            std::clamp(weights[r * logical_cols + j], -scale, scale);
        const double f = std::abs(w) / scale;
        const double g_on = g_min + f * g_span;
        out.g_targets[r * out.cols + 2 * j] = w > 0.0 ? g_on : g_min;
        out.g_targets[r * out.cols + 2 * j + 1] = w < 0.0 ? g_on : g_min;
      }
    }
  } else if (strategy == SignedMapping::kComplementaryPair) {
    out.cols = 2 * logical_cols;
    out.g_targets.assign(rows * out.cols, 0.0);
    out.weight_per_siemens = scale / g_span;
    const double g_mid = g_min + 0.5 * g_span;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < logical_cols; ++j) {
        const double w =
            std::clamp(weights[r * logical_cols + j], -scale, scale);
        const double half = 0.5 * (w / scale) * g_span;
        out.g_targets[r * out.cols + 2 * j] = g_mid + half;
        out.g_targets[r * out.cols + 2 * j + 1] = g_mid - half;
      }
    }
  } else {
    out.cols = logical_cols + 1;
    out.reference_col = logical_cols;
    out.g_targets.assign(rows * out.cols, 0.0);
    out.weight_per_siemens = 2.0 * scale / g_span;
    const double g_mid = g_min + 0.5 * g_span;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < logical_cols; ++j) {
        const double w =
            std::clamp(weights[r * logical_cols + j], -scale, scale);
        const double shifted = (w + scale) / (2.0 * scale);  // [0, 1]
        out.g_targets[r * out.cols + j] = g_min + shifted * g_span;
      }
      out.g_targets[r * out.cols + out.reference_col] = g_mid;
    }
  }
  return out;
}

std::vector<double> unmap_weights(const MappedWeights& mapping,
                                  std::span<const double> g_programmed) {
  RESIPE_REQUIRE(g_programmed.size() == mapping.rows * mapping.cols,
                 "programmed matrix size mismatch");
  std::vector<double> w(mapping.rows * mapping.logical_cols, 0.0);
  for (std::size_t r = 0; r < mapping.rows; ++r) {
    for (std::size_t j = 0; j < mapping.logical_cols; ++j) {
      const double g_plus =
          g_programmed[r * mapping.cols + mapping.plus_col(j)];
      const double g_minus =
          g_programmed[r * mapping.cols + mapping.minus_col(j)];
      w[r * mapping.logical_cols + j] =
          (g_plus - g_minus) * mapping.weight_per_siemens;
    }
  }
  return w;
}

}  // namespace resipe::crossbar
