#include "resipe/crossbar/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::crossbar {

const char* to_string(SignedMapping strategy) {
  switch (strategy) {
    case SignedMapping::kDifferentialPair: return "differential pair";
    case SignedMapping::kComplementaryPair: return "complementary pair";
    case SignedMapping::kOffsetColumn: return "offset column";
  }
  return "?";
}

namespace {
bool is_pair(SignedMapping s) {
  return s == SignedMapping::kDifferentialPair ||
         s == SignedMapping::kComplementaryPair;
}
}  // namespace

std::size_t MappedWeights::plus_col(std::size_t logical_j) const {
  RESIPE_REQUIRE(logical_j < logical_cols, "logical column out of range");
  return is_pair(strategy) ? 2 * logical_j : logical_j;
}

std::size_t MappedWeights::minus_col(std::size_t logical_j) const {
  RESIPE_REQUIRE(logical_j < logical_cols, "logical column out of range");
  return is_pair(strategy) ? 2 * logical_j + 1 : reference_col;
}

MappedWeights map_weights(std::span<const double> weights, std::size_t rows,
                          std::size_t logical_cols,
                          const device::ReramSpec& spec,
                          SignedMapping strategy, double w_clip) {
  RESIPE_TELEM_SCOPE("crossbar.mapping.map_weights");
  RESIPE_REQUIRE(rows > 0 && logical_cols > 0, "empty weight matrix");
  RESIPE_REQUIRE(weights.size() == rows * logical_cols,
                 "weight matrix size mismatch");
  spec.validate();

  double scale = w_clip;
  if (scale <= 0.0) {
    for (double w : weights) scale = std::max(scale, std::abs(w));
    if (scale <= 0.0) scale = 1.0;  // all-zero matrix
  } else if (telemetry::enabled()) {
    std::size_t clipped = 0;
    for (double w : weights) {
      if (std::abs(w) > scale) ++clipped;
    }
    RESIPE_TELEM_COUNT("crossbar.mapping.clipped_weights", clipped);
  }
  RESIPE_TELEM_COUNT("crossbar.mapping.mapped_weights", weights.size());

  const double g_min = spec.g_min();
  const double g_span = spec.g_max() - spec.g_min();

  MappedWeights out;
  out.rows = rows;
  out.strategy = strategy;
  out.logical_cols = logical_cols;

  if (strategy == SignedMapping::kDifferentialPair) {
    out.cols = 2 * logical_cols;
    out.g_targets.assign(rows * out.cols, 0.0);
    out.weight_per_siemens = scale / g_span;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < logical_cols; ++j) {
        const double w =
            std::clamp(weights[r * logical_cols + j], -scale, scale);
        const double f = std::abs(w) / scale;
        const double g_on = g_min + f * g_span;
        out.g_targets[r * out.cols + 2 * j] = w > 0.0 ? g_on : g_min;
        out.g_targets[r * out.cols + 2 * j + 1] = w < 0.0 ? g_on : g_min;
      }
    }
  } else if (strategy == SignedMapping::kComplementaryPair) {
    out.cols = 2 * logical_cols;
    out.g_targets.assign(rows * out.cols, 0.0);
    out.weight_per_siemens = scale / g_span;
    const double g_mid = g_min + 0.5 * g_span;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < logical_cols; ++j) {
        const double w =
            std::clamp(weights[r * logical_cols + j], -scale, scale);
        const double half = 0.5 * (w / scale) * g_span;
        out.g_targets[r * out.cols + 2 * j] = g_mid + half;
        out.g_targets[r * out.cols + 2 * j + 1] = g_mid - half;
      }
    }
  } else {
    out.cols = logical_cols + 1;
    out.reference_col = logical_cols;
    out.g_targets.assign(rows * out.cols, 0.0);
    out.weight_per_siemens = 2.0 * scale / g_span;
    const double g_mid = g_min + 0.5 * g_span;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < logical_cols; ++j) {
        const double w =
            std::clamp(weights[r * logical_cols + j], -scale, scale);
        const double shifted = (w + scale) / (2.0 * scale);  // [0, 1]
        out.g_targets[r * out.cols + j] = g_min + shifted * g_span;
      }
      out.g_targets[r * out.cols + out.reference_col] = g_mid;
    }
  }
  return out;
}

ColumnRemapPlan plan_column_remap(const reliability::FaultMap& detected,
                                  std::size_t data_cols, std::size_t group,
                                  std::span<const double> col_importance,
                                  bool allow_swaps) {
  RESIPE_TELEM_SCOPE("crossbar.mapping.plan_column_remap");
  RESIPE_REQUIRE(group >= 1, "remap group must be >= 1");
  RESIPE_REQUIRE(data_cols >= 1 && data_cols % group == 0,
                 "data columns must be a whole number of groups");
  RESIPE_REQUIRE(detected.cols() >= data_cols,
                 "fault map narrower than the data columns");
  RESIPE_REQUIRE(col_importance.empty() ||
                     col_importance.size() == data_cols,
                 "importance vector size mismatch");

  ColumnRemapPlan plan;
  plan.group = group;
  plan.data_cols = data_cols;
  plan.total_cols = detected.cols();
  plan.slot_of_col.resize(data_cols);
  std::iota(plan.slot_of_col.begin(), plan.slot_of_col.end(), 0u);

  const std::size_t data_units = data_cols / group;
  // Partial trailing spare groups cannot host a whole unit; ignore them.
  const std::size_t total_units = detected.cols() / group;

  const auto unit_faults = [&](std::size_t unit) {
    std::size_t n = 0;
    for (std::size_t k = 0; k < group; ++k) {
      n += detected.column_faults(unit * group + k);
    }
    return n;
  };
  const auto unit_importance = [&](std::size_t unit) {
    if (col_importance.empty()) return 1.0;
    double sum = 0.0;
    for (std::size_t k = 0; k < group; ++k) {
      sum += col_importance[unit * group + k];
    }
    return sum;
  };

  // unit_slot[u] = slot unit occupied by data unit u.
  std::vector<std::size_t> unit_slot(data_units);
  std::iota(unit_slot.begin(), unit_slot.end(), 0u);

  // Faulty data units, most important (then most damaged) first.
  std::vector<std::size_t> faulty;
  for (std::size_t u = 0; u < data_units; ++u) {
    if (unit_faults(u) > 0) faulty.push_back(u);
  }
  std::sort(faulty.begin(), faulty.end(), [&](std::size_t a, std::size_t b) {
    const double ia = unit_importance(a);
    const double ib = unit_importance(b);
    if (ia != ib) return ia > ib;
    const std::size_t fa = unit_faults(a);
    const std::size_t fb = unit_faults(b);
    if (fa != fb) return fa > fb;
    return a < b;
  });

  // Stage 1: clean spare slots absorb faulty units.
  std::vector<std::size_t> clean_spares;
  for (std::size_t s = data_units; s < total_units; ++s) {
    if (unit_faults(s) == 0) clean_spares.push_back(s);
  }
  std::size_t next_spare = 0;
  std::vector<std::size_t> unrepaired_units;
  for (std::size_t u : faulty) {
    if (next_spare < clean_spares.size()) {
      unit_slot[u] = clean_spares[next_spare++];
      plan.spares_used += group;
      plan.remapped_cols += group;
    } else {
      unrepaired_units.push_back(u);
    }
  }

  // Stage 2: weight-aware swaps.  Remaining faulty units trade places
  // with the least important clean data units, but only when that
  // strictly lowers the importance parked on the faulty slot.
  if (allow_swaps && !col_importance.empty() && !unrepaired_units.empty()) {
    std::vector<std::size_t> clean_data;
    for (std::size_t u = 0; u < data_units; ++u) {
      if (unit_faults(u) == 0) clean_data.push_back(u);
    }
    std::sort(clean_data.begin(), clean_data.end(),
              [&](std::size_t a, std::size_t b) {
                const double ia = unit_importance(a);
                const double ib = unit_importance(b);
                if (ia != ib) return ia < ib;
                return a < b;
              });
    std::size_t next_victim = 0;
    for (std::size_t& u : unrepaired_units) {
      if (next_victim >= clean_data.size()) break;
      const std::size_t v = clean_data[next_victim];
      if (unit_importance(v) >= unit_importance(u)) break;
      std::swap(unit_slot[u], unit_slot[v]);
      plan.remapped_cols += 2 * group;
      ++next_victim;
      u = v;  // the victim now sits on the faulty slot
    }
  }

  for (std::size_t u : unrepaired_units) {
    for (std::size_t k = 0; k < group; ++k) {
      // Report the *data column* left computing over faults.
      plan.unrepaired.push_back(u * group + k);
    }
  }
  std::sort(plan.unrepaired.begin(), plan.unrepaired.end());

  for (std::size_t u = 0; u < data_units; ++u) {
    for (std::size_t k = 0; k < group; ++k) {
      plan.slot_of_col[u * group + k] = unit_slot[u] * group + k;
    }
  }
  RESIPE_TELEM_COUNT("reliability.columns_remapped", plan.remapped_cols);
  RESIPE_TELEM_COUNT("reliability.columns_unrepairable",
                     plan.unrepaired.size());
  return plan;
}

std::vector<double> unmap_weights(const MappedWeights& mapping,
                                  std::span<const double> g_programmed) {
  RESIPE_REQUIRE(g_programmed.size() == mapping.rows * mapping.cols,
                 "programmed matrix size mismatch");
  std::vector<double> w(mapping.rows * mapping.logical_cols, 0.0);
  for (std::size_t r = 0; r < mapping.rows; ++r) {
    for (std::size_t j = 0; j < mapping.logical_cols; ++j) {
      const double g_plus =
          g_programmed[r * mapping.cols + mapping.plus_col(j)];
      const double g_minus =
          g_programmed[r * mapping.cols + mapping.minus_col(j)];
      w[r * mapping.logical_cols + j] =
          (g_plus - g_minus) * mapping.weight_per_siemens;
    }
  }
  return w;
}

}  // namespace resipe::crossbar
