#include "resipe/crossbar/ir_drop.hpp"

#include "resipe/common/error.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::crossbar {

double WireModel::effective_g(double g_cell, std::size_t row,
                              std::size_t col) const {
  RESIPE_REQUIRE(r_wordline_segment >= 0.0 && r_bitline_segment >= 0.0,
                 "negative wire resistance");
  if (g_cell <= 0.0) return 0.0;
  const double r_wire = static_cast<double>(row) * r_wordline_segment +
                        static_cast<double>(col) * r_bitline_segment;
  return 1.0 / (1.0 / g_cell + r_wire);
}

std::vector<circuits::ColumnDrive> drives_with_ir_drop(
    const Crossbar& xbar, std::span<const double> v_wl,
    const WireModel& wires) {
  RESIPE_TELEM_SCOPE("crossbar.ir_drop.solve");
  RESIPE_PERF_KERNEL("crossbar.ir_drop.solve",
                     perf::ir_drop_solve_cost(xbar.rows(), xbar.cols()));
  RESIPE_REQUIRE(v_wl.size() == xbar.rows(), "wordline vector size mismatch");
  std::vector<circuits::ColumnDrive> out(xbar.cols());
  for (std::size_t c = 0; c < xbar.cols(); ++c) {
    double total = 0.0;
    double weighted = 0.0;
    for (std::size_t r = 0; r < xbar.rows(); ++r) {
      const double g = wires.effective_g(xbar.effective_g(r, c), r, c);
      total += g;
      weighted += v_wl[r] * g;
    }
    out[c].g_total = total;
    out[c].v_eq = total > 0.0 ? weighted / total : 0.0;
  }
  return out;
}

double worst_case_attenuation(const Crossbar& xbar, const WireModel& wires) {
  const std::size_t r = xbar.rows() - 1;
  const std::size_t c = xbar.cols() - 1;
  const double g_nominal = xbar.spec().g_max();
  const double g_eff = wires.effective_g(g_nominal, r, c);
  return 1.0 - g_eff / g_nominal;
}

}  // namespace resipe::crossbar
