#include "resipe/crossbar/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::crossbar {

Crossbar::Crossbar(std::size_t rows, std::size_t cols,
                   device::ReramSpec spec)
    : rows_(rows), cols_(cols), spec_(spec), cells_(rows * cols) {
  RESIPE_REQUIRE(rows > 0 && cols > 0, "crossbar dimensions must be > 0");
  spec_.validate();
}

const device::ReramCell& Crossbar::cell(std::size_t row,
                                        std::size_t col) const {
  RESIPE_REQUIRE(row < rows_ && col < cols_,
                 "cell (" << row << "," << col << ") out of bounds "
                          << rows_ << "x" << cols_);
  return cells_[row * cols_ + col];
}

device::ReramCell& Crossbar::cell(std::size_t row, std::size_t col) {
  RESIPE_REQUIRE(row < rows_ && col < cols_,
                 "cell (" << row << "," << col << ") out of bounds "
                          << rows_ << "x" << cols_);
  return cells_[row * cols_ + col];
}

void Crossbar::program(std::span<const double> g_targets, Rng& rng) {
  RESIPE_TELEM_SCOPE("crossbar.program");
  RESIPE_REQUIRE(g_targets.size() == rows_ * cols_,
                 "conductance matrix size " << g_targets.size()
                                            << " != " << rows_ * cols_);
  // One telemetry decision for the whole matrix keeps the disabled
  // per-cell cost identical to an uninstrumented build.
  if (RESIPE_TELEM_ACTIVE()) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].program(spec_, g_targets[i], rng);
    }
    RESIPE_TELEM_COUNT("crossbar.cells_programmed", cells_.size());
  } else {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].program_untracked(spec_, g_targets[i], rng);
    }
  }
}

void Crossbar::program_cell(std::size_t row, std::size_t col,
                            double g_target, Rng& rng) {
  cell(row, col).program(spec_, g_target, rng);
}

void Crossbar::inject_faults(const reliability::FaultMap& map) {
  RESIPE_REQUIRE(map.rows() == rows_ && map.cols() == cols_,
                 "fault map shape " << map.rows() << "x" << map.cols()
                                    << " != crossbar " << rows_ << "x"
                                    << cols_);
  std::size_t injected = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      switch (map.at(r, c)) {
        case reliability::FaultType::kStuckLrs:
          cell(r, c).force_stuck_lrs(spec_);
          ++injected;
          break;
        case reliability::FaultType::kStuckHrs:
          cell(r, c).force_stuck_hrs(spec_);
          ++injected;
          break;
        case reliability::FaultType::kNone:
          break;
      }
    }
  }
  RESIPE_TELEM_COUNT("reliability.cells_faulty", injected);
}

std::size_t Crossbar::hard_fault_count() const {
  std::size_t n = 0;
  for (const auto& c : cells_) {
    if (c.hard_faulted()) ++n;
  }
  return n;
}

bool Crossbar::cell_hard_faulted(std::size_t row, std::size_t col) const {
  return cell(row, col).hard_faulted();
}

std::vector<bool> Crossbar::healthy_columns() const {
  std::vector<bool> ok(cols_, true);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (cells_[r * cols_ + c].hard_faulted()) ok[c] = false;
    }
  }
  return ok;
}

double Crossbar::g(std::size_t row, std::size_t col) const {
  return cell(row, col).programmed_g();
}

double Crossbar::effective_g(std::size_t row, std::size_t col) const {
  return cell(row, col).effective_g(spec_);
}

double Crossbar::column_total_g(std::size_t col) const {
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) total += effective_g(r, col);
  return total;
}

circuits::ColumnDrive Crossbar::column_drive(
    std::size_t col, std::span<const double> v_wl) const {
  RESIPE_REQUIRE(v_wl.size() == rows_,
                 "wordline vector size " << v_wl.size() << " != " << rows_);
  circuits::ColumnDrive drive;
  double weighted = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double g_eff = effective_g(r, col);
    drive.g_total += g_eff;
    weighted += v_wl[r] * g_eff;
  }
  drive.v_eq = drive.g_total > 0.0 ? weighted / drive.g_total : 0.0;
  return drive;
}

std::vector<circuits::ColumnDrive> Crossbar::drives(
    std::span<const double> v_wl) const {
  RESIPE_TELEM_COUNT("crossbar.drive_solves", 1);
  std::vector<circuits::ColumnDrive> out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = column_drive(c, v_wl);
  return out;
}

std::vector<circuits::ColumnDrive> Crossbar::drives_noisy(
    std::span<const double> v_wl, Rng& rng) const {
  RESIPE_REQUIRE(v_wl.size() == rows_,
                 "wordline vector size " << v_wl.size() << " != " << rows_);
  std::vector<circuits::ColumnDrive> out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    double weighted = 0.0;
    double total = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      double g_read = cell(r, c).read_g(spec_, rng);
      if (g_read > 0.0) {
        g_read = 1.0 / (1.0 / g_read + spec_.transistor_r_on);
      }
      total += g_read;
      weighted += v_wl[r] * g_read;
    }
    out[c].g_total = total;
    out[c].v_eq = total > 0.0 ? weighted / total : 0.0;
  }
  return out;
}

std::vector<double> Crossbar::ideal_mvm(std::span<const double> v_wl) const {
  RESIPE_REQUIRE(v_wl.size() == rows_,
                 "wordline vector size " << v_wl.size() << " != " << rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = v_wl[r];
    if (v == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += v * effective_g(r, c);
  }
  return y;
}

double Crossbar::area() const {
  return static_cast<double>(rows_ * cols_) * spec_.cell_area;
}

double Crossbar::compute_energy(std::span<const double> v_wl,
                                double duration) const {
  RESIPE_REQUIRE(duration >= 0.0, "negative duration");
  const auto ds = drives(v_wl);
  double power = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const double dv = v_wl[r] - ds[c].v_eq;
      power += effective_g(r, c) * dv * dv;
    }
  }
  return power * duration;
}

double Crossbar::static_read_energy(std::span<const double> v_wl,
                                    double duration) const {
  RESIPE_REQUIRE(v_wl.size() == rows_, "wordline vector size mismatch");
  RESIPE_REQUIRE(duration >= 0.0, "negative duration");
  double power = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v2 = v_wl[r] * v_wl[r];
    if (v2 == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) power += effective_g(r, c) * v2;
  }
  return power * duration;
}

reliability::FaultMap march_fault_map(
    Crossbar& xbar, Rng& rng,
    const reliability::FaultMapperConfig& config) {
  const reliability::FaultMapper mapper(config);
  return mapper.march(
      xbar.rows(), xbar.cols(), xbar.spec(),
      [&](std::size_t r, std::size_t c, double target) {
        xbar.program_cell(r, c, target, rng);
      },
      [&](std::size_t r, std::size_t c) {
        // Raw cell readback (no 1T1R series drop) with fresh read noise
        // — the test circuit senses the cell directly.
        double g = xbar.g(r, c);
        if (xbar.spec().read_noise_sigma > 0.0) {
          g *= 1.0 + rng.normal(0.0, xbar.spec().read_noise_sigma);
        }
        return std::max(g, 0.0);
      });
}

Crossbar make_representative(std::size_t rows, std::size_t cols,
                             const device::ReramSpec& spec,
                             std::uint64_t seed) {
  Crossbar xbar(rows, cols, spec);
  Rng rng(seed);
  std::vector<double> g(rows * cols);
  const double g_min = spec.g_min();
  const double g_span = spec.g_max() - spec.g_min();
  for (double& v : g) v = g_min + rng.uniform(0.2, 0.8) * g_span;
  xbar.program(g, rng);
  return xbar;
}

}  // namespace resipe::crossbar
