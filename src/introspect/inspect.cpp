#include "resipe/introspect/inspect.hpp"

#include <algorithm>
#include <utility>

#include "resipe/common/error.hpp"
#include "resipe/common/stats.hpp"
#include "resipe/nn/layers.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/resipe/design.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::introspect {

namespace {

using resipe_core::EngineConfig;
using resipe_core::ProgrammedMatrix;
using resipe_core::ResipeNetwork;

/// One lowered-step boundary captured during forward_observed.
struct Capture {
  std::size_t step = 0;
  nn::Layer* layer = nullptr;
  const ProgrammedMatrix* matrix = nullptr;
  bool is_conv = false;
  nn::Tensor input;
  nn::Tensor output;
};

class CaptureObserver : public resipe_core::LayerObserver {
 public:
  void on_step(std::size_t index, nn::Layer& layer,
               const ProgrammedMatrix* matrix, bool is_conv,
               const nn::Tensor& input, const nn::Tensor& output) override {
    captures.push_back(Capture{index, &layer, matrix, is_conv, input,
                               output});
  }

  std::vector<Capture> captures;
};

/// Stride-samples up to `cap` of `total` positions (cap == 0 -> all).
std::vector<std::size_t> sample_positions(std::size_t total,
                                          std::size_t cap) {
  const std::size_t take = cap == 0 ? total : std::min(total, cap);
  std::vector<std::size_t> idx;
  if (take == 0) return idx;
  const std::size_t stride = std::max<std::size_t>(1, total / take);
  for (std::size_t pos = 0; pos < total && idx.size() < take;
       pos += stride) {
    idx.push_back(pos);
  }
  return idx;
}

/// Matrix-layer input vectors (dense rows / conv im2col patches) plus
/// the analog outputs the production forward actually computed for
/// them, stride-sampled from the captured batch.
struct VectorSet {
  std::size_t in = 0;
  std::size_t out = 0;
  std::size_t count = 0;
  std::vector<double> x;       // [count, in]
  std::vector<double> y_real;  // [count, out]
};

VectorSet gather_vectors(const Capture& cap, std::size_t max_vectors) {
  VectorSet vs;
  vs.in = cap.matrix->in_features();
  vs.out = cap.matrix->out_features();
  if (!cap.is_conv) {
    const std::size_t n = cap.input.dim(0);
    const std::vector<std::size_t> idx = sample_positions(n, max_vectors);
    vs.count = idx.size();
    vs.x.resize(vs.count * vs.in);
    vs.y_real.resize(vs.count * vs.out);
    const std::span<const double> xin = cap.input.data();
    const std::span<const double> yout = cap.output.data();
    for (std::size_t v = 0; v < vs.count; ++v) {
      std::copy_n(xin.data() + idx[v] * vs.in, vs.in,
                  vs.x.data() + v * vs.in);
      std::copy_n(yout.data() + idx[v] * vs.out, vs.out,
                  vs.y_real.data() + v * vs.out);
    }
    return vs;
  }
  const auto* conv = dynamic_cast<const nn::Conv2d*>(cap.layer);
  RESIPE_REQUIRE(conv != nullptr, "conv step without a Conv2d layer");
  const std::size_t n = cap.input.dim(0);
  const std::size_t oh = cap.output.dim(2);
  const std::size_t ow = cap.output.dim(3);
  const std::vector<std::size_t> idx =
      sample_positions(n * oh * ow, max_vectors);
  vs.count = idx.size();
  vs.x.resize(vs.count * vs.in);
  vs.y_real.resize(vs.count * vs.out);
  for (std::size_t v = 0; v < vs.count; ++v) {
    const std::size_t img = idx[v] / (oh * ow);
    const std::size_t rc = idx[v] % (oh * ow);
    const std::size_t r = rc / ow;
    const std::size_t c = rc % ow;
    resipe_core::gather_conv_patch(
        cap.input, img, conv->in_channels(), conv->kernel(),
        conv->stride(), conv->pad(), r, c,
        std::span<double>(vs.x.data() + v * vs.in, vs.in));
    for (std::size_t oc = 0; oc < vs.out; ++oc) {
      vs.y_real[v * vs.out + oc] = cap.output.at(img, oc, r, c);
    }
  }
  return vs;
}

/// The layer's logical weight matrix ([in, out] row-major) and bias —
/// the digital reference the attribution arms compare against.
std::vector<double> weight_matrix_of(nn::Layer& layer,
                                     std::vector<double>& bias) {
  if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
    const auto b = dense->bias().data();
    bias.assign(b.begin(), b.end());
    const auto w = dense->weights().data();
    return std::vector<double>(w.begin(), w.end());
  }
  auto* conv = dynamic_cast<nn::Conv2d*>(&layer);
  RESIPE_REQUIRE(conv != nullptr,
                 "matrix step is neither Dense nor Conv2d");
  const auto b = conv->bias().data();
  bias.assign(b.begin(), b.end());
  return resipe_core::conv_weight_matrix(*conv);
}

/// y = W^T x + b over every sampled vector — the ideal digital MVM.
std::vector<double> digital_reference(const VectorSet& vs,
                                      std::span<const double> wm,
                                      std::span<const double> bias) {
  std::vector<double> y(vs.count * vs.out, 0.0);
  for (std::size_t v = 0; v < vs.count; ++v) {
    const double* x = vs.x.data() + v * vs.in;
    double* yv = y.data() + v * vs.out;
    for (std::size_t j = 0; j < vs.out; ++j) yv[j] = bias[j];
    for (std::size_t i = 0; i < vs.in; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      const double* wrow = wm.data() + i * vs.out;
      for (std::size_t j = 0; j < vs.out; ++j) yv[j] += xi * wrow[j];
    }
  }
  return y;
}

/// Re-programs the layer under `cfg`, mirrors the production scales,
/// and returns its RMSE against the digital reference.
double run_arm(const EngineConfig& cfg, const ProgrammedMatrix& real,
               const VectorSet& vs, std::span<const double> wm,
               std::span<const double> bias,
               std::span<const double> y_dig, std::uint64_t seed) {
  Rng rng(seed);
  ProgrammedMatrix pm(cfg, wm, bias, vs.in, vs.out, rng);
  pm.set_input_scale(real.input_scale());
  pm.set_time_scale(real.time_scale());
  std::vector<double> y(vs.count * vs.out, 0.0);
  for (std::size_t v = 0; v < vs.count; ++v) {
    pm.forward(std::span<const double>(vs.x.data() + v * vs.in, vs.in),
               std::span<double>(y.data() + v * vs.out, vs.out));
  }
  return rmse(y, y_dig);
}

/// Telescoping fidelity-drift decomposition.  Arm Q keeps only the
/// deterministic quantizers (conductance levels + clock grid) on a
/// linearized transfer; arm QV adds every stochastic device/circuit
/// effect; the production layer adds the exact RC transfer on top.
/// quant = err(Q), variation = err(QV) - err(Q), nonlinearity =
/// total - err(QV): the components sum to the measured total exactly.
ErrorAttribution attribute_error(const EngineConfig& base,
                                 const Capture& cap,
                                 std::size_t matrix_index,
                                 const VectorSet& vs,
                                 std::span<const double> wm,
                                 std::span<const double> bias) {
  ErrorAttribution att;
  if (vs.count == 0) return att;
  const std::vector<double> y_dig = digital_reference(vs, wm, bias);
  att.total = rmse(vs.y_real, y_dig);

  EngineConfig quant = base;
  quant.circuit.model = circuits::TransferModel::kLinear;
  quant.circuit.comparator_offset = 0.0;
  quant.circuit.comparator_offset_sigma = 0.0;
  quant.circuit.comparator_delay = 0.0;
  quant.device.write_verify_tolerance = 0.0;
  quant.device.variation_sigma = 0.0;
  quant.device.read_noise_sigma = 0.0;
  quant.retention_time = 0.0;
  quant.model_wire_ir_drop = false;
  quant.reliability.enabled = false;

  EngineConfig qv = base;
  qv.circuit.model = circuits::TransferModel::kLinear;
  if (qv.reliability.enabled) {
    // Mirror the per-layer fault stream the engine used, so the arm
    // sees the same defective silicon as the production layer.
    qv.reliability.fault_seed =
        hash_seed(base.reliability.fault_seed, matrix_index);
  }

  const double err_q =
      run_arm(quant, *cap.matrix, vs, wm, bias, y_dig,
              hash_seed(base.program_seed, 0x1A5B0000u + matrix_index, 1));
  const double err_qv =
      run_arm(qv, *cap.matrix, vs, wm, bias, y_dig,
              hash_seed(base.program_seed, 0x1A5B0000u + matrix_index, 2));
  att.quantization = err_q;
  att.variation = err_qv - err_q;
  att.nonlinearity = att.total - err_qv;
  att.vectors = vs.count;
  att.computed = true;
  return att;
}

/// Dead / always-firing output units measured on the captured analog
/// activations: per dense feature, or per conv output channel.
NeuronActivity measure_activity(const Capture& cap, double threshold) {
  NeuronActivity act;
  if (!cap.is_conv) {
    const std::size_t n = cap.output.dim(0);
    const std::size_t out = cap.output.dim(1);
    act.outputs = out;
    const std::span<const double> y = cap.output.data();
    for (std::size_t j = 0; j < out; ++j) {
      bool ever_above = false;
      bool always_above = true;
      for (std::size_t s = 0; s < n; ++s) {
        const bool above = y[s * out + j] > threshold;
        ever_above = ever_above || above;
        always_above = always_above && above;
      }
      if (!ever_above) ++act.dead;
      if (always_above && n > 0) ++act.always_on;
    }
    return act;
  }
  const std::size_t n = cap.output.dim(0);
  const std::size_t cout = cap.output.dim(1);
  const std::size_t oh = cap.output.dim(2);
  const std::size_t ow = cap.output.dim(3);
  act.outputs = cout;
  for (std::size_t oc = 0; oc < cout; ++oc) {
    bool ever_above = false;
    bool always_above = true;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          const bool above = cap.output.at(s, oc, r, c) > threshold;
          ever_above = ever_above || above;
          always_above = always_above && above;
        }
      }
    }
    if (!ever_above) ++act.dead;
    if (always_above && n > 0) ++act.always_on;
  }
  return act;
}

}  // namespace

InspectionReport inspect(const ResipeNetwork& net, const nn::Tensor& batch,
                         std::span<const int> labels) {
  RESIPE_TELEM_SCOPE("introspect.inspect");
  const EngineConfig& cfg = net.config();
  const InspectOptions& opt = cfg.introspect;

  InspectionReport rep;
  rep.provenance = collect_provenance(cfg);
  rep.model_name = net.model().name();
  rep.batch_size = batch.dim(0);

  // Layer skeleton straight from the model: one lowered step per layer.
  for (std::size_t i = 0; i < net.model().layer_count(); ++i) {
    LayerReport lr;
    lr.step = i;
    lr.name = net.model().layer(i).describe();
    lr.is_matrix = net.model().layer(i).is_matrix_layer();
    rep.layers.push_back(std::move(lr));
  }
  if (!opt.enabled) return rep;

  // One observed pass: the logits are bit-identical to net.forward(),
  // and every step boundary is captured for the probes below.
  CaptureObserver obs;
  const nn::Tensor analog_logits = net.forward_observed(batch, obs);
  const nn::Tensor digital_logits = net.model().forward(batch, false);
  rep.logits_rmse = rmse(analog_logits.data(), digital_logits.data());
  if (!labels.empty()) {
    rep.analog_accuracy = nn::accuracy(analog_logits, labels);
    rep.digital_accuracy = nn::accuracy(digital_logits, labels);
  }

  double energy_per_tile_mvm = 0.0;
  if (opt.energy_ledger) {
    const resipe_core::ResipeDesign design(cfg.circuit, cfg.device,
                                           cfg.tile_rows, cfg.tile_cols);
    energy_per_tile_mvm = design.mvm_report().total_energy();
  }

  std::size_t matrix_index = 0;
  for (const Capture& cap : obs.captures) {
    LayerReport& lr = rep.layers.at(cap.step);
    lr.is_conv = cap.is_conv;
    if (cap.matrix == nullptr) continue;
    lr.tiles = cap.matrix->tile_count();

    // Spike-time / saturation / clamp probes over a sampled re-run.
    lr.probe = ProgrammedMatrix::ProbeStats(opt.spike_time_bins);
    {
      const VectorSet vs = gather_vectors(cap, opt.max_probe_vectors);
      std::vector<double> y(vs.out, 0.0);
      for (std::size_t v = 0; v < vs.count; ++v) {
        cap.matrix->forward_probed(
            std::span<const double>(vs.x.data() + v * vs.in, vs.in), y,
            lr.probe);
      }
      lr.probed = true;
    }

    lr.activity = measure_activity(cap, opt.activity_threshold);

    if (opt.attribute_error) {
      std::vector<double> bias;
      const std::vector<double> wm = weight_matrix_of(*cap.layer, bias);
      const VectorSet vs =
          gather_vectors(cap, opt.max_attribution_vectors);
      lr.error = attribute_error(cfg, cap, matrix_index, vs, wm, bias);
    }

    if (opt.energy_ledger) {
      const double vectors =
          cap.is_conv ? static_cast<double>(cap.output.dim(0) *
                                            cap.output.dim(2) *
                                            cap.output.dim(3))
                      : static_cast<double>(cap.output.dim(0));
      lr.energy.per_tile_mvm = energy_per_tile_mvm;
      lr.energy.tile_mvms =
          vectors * static_cast<double>(cap.matrix->tile_count());
      lr.energy.total = lr.energy.per_tile_mvm * lr.energy.tile_mvms;
      rep.total_energy += lr.energy.total;
    }

    if (opt.accuracy_attribution && !labels.empty()) {
      std::vector<bool> mask(net.step_count(), false);
      mask[cap.step] = true;
      lr.accuracy_if_digital =
          nn::accuracy(net.forward_hybrid(batch, mask), labels);
    }
    ++matrix_index;
  }
  return rep;
}

}  // namespace resipe::introspect
