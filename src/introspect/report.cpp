// Inspection-report serialization: provenance manifest, JSON document
// and the ASCII dashboard.
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/table.hpp"
#include "resipe/introspect/inspect.hpp"
#include "resipe/telemetry/metrics.hpp"

namespace resipe::introspect {

namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    if (ch == '\n') {
      os << "\\n";
      continue;
    }
    os << ch;
  }
  os << '"';
}

double share(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

std::string engine_config_hash(const resipe_core::EngineConfig& cfg) {
  // Canonical key=value dump of every knob that changes what the
  // simulated hardware computes.  Field order is fixed; values print at
  // full double precision, so equal hashes mean equal operating points.
  std::ostringstream os;
  os.precision(17);
  const auto& c = cfg.circuit;
  os << "vs=" << c.v_s << ";rgd=" << c.r_gd << ";cgd=" << c.c_gd
     << ";ccog=" << c.c_cog << ";slice=" << c.slice_length
     << ";dt=" << c.comp_stage << ";spike=" << c.spike_width
     << ";clk=" << c.clock_period << ";coff=" << c.comparator_offset
     << ";cdel=" << c.comparator_delay
     << ";csig=" << c.comparator_offset_sigma
     << ";model=" << static_cast<int>(c.model);
  const auto& d = cfg.device;
  os << ";lrs=" << d.r_lrs << ";hrs=" << d.r_hrs << ";lvl=" << d.levels
     << ";wvt=" << d.write_verify_tolerance << ";var=" << d.variation_sigma
     << ";rns=" << d.read_noise_sigma << ";slr=" << d.stuck_lrs_rate
     << ";shr=" << d.stuck_hrs_rate << ";dnu=" << d.drift_nu
     << ";dt0=" << d.drift_t0 << ";ron=" << d.transistor_r_on;
  os << ";rows=" << cfg.tile_rows << ";cols=" << cfg.tile_cols
     << ";map=" << static_cast<int>(cfg.mapping)
     << ";qspk=" << cfg.quantize_spikes
     << ";head=" << cfg.calibration_headroom
     << ";marg=" << cfg.input_scale_margin
     << ";seed=" << cfg.program_seed << ";ir=" << cfg.model_wire_ir_drop
     << ";rwl=" << cfg.wires.r_wordline_segment
     << ";rbl=" << cfg.wires.r_bitline_segment
     << ";ret=" << cfg.retention_time;
  const auto& r = cfg.reliability;
  os << ";rel=" << r.enabled << ";fslr=" << r.faults.stuck_lrs_rate
     << ";fshr=" << r.faults.stuck_hrs_rate
     << ";fcl=" << r.faults.cluster_fraction
     << ";fcs=" << r.faults.cluster_size << ";rdr=" << r.read_disturb_rate
     << ";emv=" << r.expected_mvms << ";end=" << r.endurance_cycles
     << ";wear=" << r.wear_cycles << ";mit=" << r.mitigation.enabled
     << ";sp=" << r.mitigation.spare_cols
     << ";rm=" << r.mitigation.remap_columns
     << ";cp=" << r.mitigation.compensate_pairs
     << ";wvr=" << r.mitigation.write_verify_retries
     << ";dg=" << r.mitigation.degrade_threshold
     << ";fseed=" << r.fault_seed;

  // FNV-1a 64.
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char ch : os.str()) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Provenance collect_provenance(const resipe_core::EngineConfig& config) {
  Provenance p;
  p.engine_config_hash = engine_config_hash(config);
  p.program_seed = config.program_seed;
  p.fault_seed = config.reliability.fault_seed;
  p.threads = default_threads();
#if defined(RESIPE_TELEMETRY_DISABLED)
  p.telemetry_build = false;
#else
  p.telemetry_build = true;
#endif
  p.telemetry_enabled = telemetry::enabled();
#if defined(__VERSION__)
  p.compiler = __VERSION__;
#else
  p.compiler = "unknown";
#endif
#if defined(NDEBUG)
  p.build_type = "release";
#else
  p.build_type = "debug";
#endif
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  p.timestamp = buf;
  return p;
}

std::string InspectionReport::to_json() const {
  std::ostringstream os;
  os << "{\"provenance\":{\"engine_config_hash\":";
  json_string(os, provenance.engine_config_hash);
  os << ",\"program_seed\":" << provenance.program_seed
     << ",\"fault_seed\":" << provenance.fault_seed
     << ",\"threads\":" << provenance.threads << ",\"telemetry_build\":"
     << (provenance.telemetry_build ? "true" : "false")
     << ",\"telemetry_enabled\":"
     << (provenance.telemetry_enabled ? "true" : "false")
     << ",\"compiler\":";
  json_string(os, provenance.compiler);
  os << ",\"build_type\":";
  json_string(os, provenance.build_type);
  os << ",\"timestamp\":";
  json_string(os, provenance.timestamp);
  os << "},\"model\":";
  json_string(os, model_name);
  os << ",\"batch_size\":" << batch_size
     << ",\"analog_accuracy\":" << number(analog_accuracy)
     << ",\"digital_accuracy\":" << number(digital_accuracy)
     << ",\"logits_rmse\":" << number(logits_rmse)
     << ",\"total_energy_j\":" << number(total_energy) << ",\"layers\":[";
  bool first = true;
  for (const LayerReport& lr : layers) {
    if (!first) os << ",";
    first = false;
    os << "{\"step\":" << lr.step << ",\"name\":";
    json_string(os, lr.name);
    os << ",\"is_matrix\":" << (lr.is_matrix ? "true" : "false")
       << ",\"is_conv\":" << (lr.is_conv ? "true" : "false")
       << ",\"tiles\":" << lr.tiles;
    if (lr.probed) {
      const auto& pr = lr.probe;
      os << ",\"spike_health\":{\"vectors\":" << pr.vectors
         << ",\"spikes\":" << pr.spikes << ",\"no_spike\":" << pr.no_spike
         << ",\"pinned_start\":" << pr.pinned_start
         << ",\"pinned_end\":" << pr.pinned_end
         << ",\"inputs_clamped\":" << pr.inputs_clamped
         << ",\"time_hist\":[";
      for (std::size_t i = 0; i < pr.spike_time_hist.size(); ++i) {
        if (i > 0) os << ",";
        os << pr.spike_time_hist[i];
      }
      os << "]},\"activity\":{\"outputs\":" << lr.activity.outputs
         << ",\"dead\":" << lr.activity.dead
         << ",\"always_on\":" << lr.activity.always_on << "}";
    }
    if (lr.error.computed) {
      os << ",\"error\":{\"vectors\":" << lr.error.vectors
         << ",\"total\":" << number(lr.error.total)
         << ",\"quantization\":" << number(lr.error.quantization)
         << ",\"variation\":" << number(lr.error.variation)
         << ",\"nonlinearity\":" << number(lr.error.nonlinearity) << "}";
    }
    if (lr.energy.tile_mvms > 0.0) {
      os << ",\"energy\":{\"per_tile_mvm_j\":"
         << number(lr.energy.per_tile_mvm)
         << ",\"tile_mvms\":" << number(lr.energy.tile_mvms)
         << ",\"total_j\":" << number(lr.energy.total) << "}";
    }
    if (lr.accuracy_if_digital >= 0.0) {
      os << ",\"accuracy_if_digital\":" << number(lr.accuracy_if_digital);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void InspectionReport::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open inspection report " << path);
  os << to_json() << "\n";
  RESIPE_REQUIRE(os.good(), "failed writing inspection report " << path);
}

std::string InspectionReport::render_ascii() const {
  std::ostringstream os;
  os << "== inspection: " << model_name << " (" << batch_size
     << " images) ==\n";
  if (analog_accuracy >= 0.0) {
    os << "accuracy: analog " << format_percent(analog_accuracy)
       << ", digital " << format_percent(digital_accuracy) << " (";
    os << format_percent(digital_accuracy - analog_accuracy)
       << " lost to the analog engine)\n";
  }
  os << "logits RMSE vs digital: " << format_fixed(logits_rmse, 6) << "\n";
  if (total_energy > 0.0) {
    os << "batch energy: " << format_si(total_energy, "J") << "\n";
  }
  os << "\n";

  bool any_probe = false;
  TextTable health({"layer", "tiles", "silent", "pin@0", "pin@end",
                    "clamped", "dead", "always-on"});
  for (const LayerReport& lr : layers) {
    if (!lr.probed) continue;
    any_probe = true;
    const std::uint64_t cols = lr.probe.spikes + lr.probe.no_spike;
    health.add_row(
        {lr.name, std::to_string(lr.tiles),
         format_percent(share(lr.probe.no_spike, cols)),
         format_percent(share(lr.probe.pinned_start, cols)),
         format_percent(share(lr.probe.pinned_end, cols)),
         std::to_string(lr.probe.inputs_clamped),
         std::to_string(lr.activity.dead),
         std::to_string(lr.activity.always_on)});
  }
  if (any_probe) {
    os << "-- numerical health (per probed column read) --\n"
       << health.str() << "\n";
  }

  bool any_err = false;
  TextTable err({"layer", "total RMSE", "quantization", "variation",
                 "nonlinearity"});
  for (const LayerReport& lr : layers) {
    if (!lr.error.computed) continue;
    any_err = true;
    err.add_row({lr.name, format_fixed(lr.error.total, 6),
                 format_fixed(lr.error.quantization, 6),
                 format_fixed(lr.error.variation, 6),
                 format_fixed(lr.error.nonlinearity, 6)});
  }
  if (any_err) {
    os << "-- fidelity-drift attribution (components sum to total) --\n"
       << err.str() << "\n";
  }

  bool any_extra = false;
  TextTable extra({"layer", "energy", "tile MVMs", "acc. if digital"});
  for (const LayerReport& lr : layers) {
    if (lr.energy.tile_mvms <= 0.0 && lr.accuracy_if_digital < 0.0) {
      continue;
    }
    any_extra = true;
    extra.add_row({lr.name,
                   lr.energy.tile_mvms > 0.0
                       ? format_si(lr.energy.total, "J")
                       : "-",
                   lr.energy.tile_mvms > 0.0
                       ? format_fixed(lr.energy.tile_mvms, 0)
                       : "-",
                   lr.accuracy_if_digital >= 0.0
                       ? format_percent(lr.accuracy_if_digital)
                       : "-"});
  }
  if (any_extra) {
    os << "-- energy ledger / accuracy-loss attribution --\n"
       << extra.str() << "\n";
  }

  os << "provenance: config " << provenance.engine_config_hash
     << ", program_seed " << provenance.program_seed << ", threads "
     << provenance.threads << ", telemetry "
     << (provenance.telemetry_build
             ? (provenance.telemetry_enabled ? "on" : "built/off")
             : "compiled out")
     << ", " << provenance.build_type << " build, " << provenance.timestamp
     << "\n";
  return os.str();
}

}  // namespace resipe::introspect
