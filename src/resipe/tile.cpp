#include "resipe/resipe/tile.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/circuits/rc_stage.hpp"
#include "resipe/common/error.hpp"
#include "resipe/energy/components.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

ResipeTile::ResipeTile(const circuits::CircuitParams& params,
                       std::size_t rows, std::size_t cols,
                       const device::ReramSpec& spec)
    : params_(params), xbar_(rows, cols, spec), gd_(params), cog_(params) {
  params_.validate();
}

void ResipeTile::program(std::span<const double> g_targets, Rng& rng) {
  xbar_.program(g_targets, rng);
}

void ResipeTile::inject_faults(const reliability::FaultMap& map) {
  xbar_.inject_faults(map);
}

ResipeTile::FlaggedResult ResipeTile::execute_flagged(
    const std::vector<circuits::Spike>& inputs, Rng* read_noise) const {
  FlaggedResult result;
  result.spikes = execute(inputs, read_noise);
  result.column_ok = xbar_.healthy_columns();
  for (bool ok : result.column_ok) {
    if (!ok) ++result.degraded_columns;
  }
  RESIPE_TELEM_COUNT("reliability.degraded_column_results",
                     result.degraded_columns);
  return result;
}

std::vector<circuits::Spike> ResipeTile::execute(
    const std::vector<circuits::Spike>& inputs, Rng* read_noise) const {
  RESIPE_TELEM_SCOPE("resipe_core.tile.execute");
  RESIPE_PERF_KERNEL("resipe_core.tile.execute",
                     perf::tile_execute_cost(rows(), cols()));
  RESIPE_REQUIRE(inputs.size() == rows(),
                 "input spike count " << inputs.size() << " != rows "
                                      << rows());
  const std::vector<double> v_wl = gd_.decode(inputs);
  const auto drives = read_noise ? xbar_.drives_noisy(v_wl, *read_noise)
                                 : xbar_.drives(v_wl);
  std::vector<circuits::Spike> out(cols());
  std::size_t fired = 0;
  for (std::size_t c = 0; c < cols(); ++c) {
    out[c] = cog_.convert(drives[c], gd_);
    if (out[c].valid()) ++fired;
  }
  RESIPE_TELEM_COUNT("resipe_core.tile.mvms", 1);
  RESIPE_TELEM_COUNT("resipe_core.tile.output_spikes", fired);
  RESIPE_TELEM_COUNT("resipe_core.tile.silent_columns", cols() - fired);
  return out;
}

std::vector<double> ResipeTile::sample_voltages(
    const std::vector<circuits::Spike>& inputs) const {
  RESIPE_REQUIRE(inputs.size() == rows(), "input spike count mismatch");
  const std::vector<double> v_wl = gd_.decode(inputs);
  const auto drives = xbar_.drives(v_wl);
  std::vector<double> v(cols());
  for (std::size_t c = 0; c < cols(); ++c)
    v[c] = cog_.sample_voltage(drives[c]);
  return v;
}

std::vector<double> ResipeTile::ideal_times(
    const std::vector<circuits::Spike>& inputs) const {
  RESIPE_REQUIRE(inputs.size() == rows(), "input spike count mismatch");
  std::vector<double> t(cols(), 0.0);
  const double gain = params_.linear_gain();
  for (std::size_t c = 0; c < cols(); ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < rows(); ++r) {
      if (!inputs[r].valid()) continue;
      acc += inputs[r].arrival_time * xbar_.effective_g(r, c);
    }
    t[c] = gain * acc;
  }
  return t;
}

void ResipeTile::trace(const std::vector<circuits::Spike>& inputs,
                       std::size_t column, circuits::WaveformRecorder& rec,
                       std::size_t samples_per_slice) const {
  RESIPE_TELEM_SCOPE("resipe_core.tile.transient_trace");
  RESIPE_REQUIRE(column < cols(), "traced column out of range");
  RESIPE_REQUIRE(samples_per_slice >= 8, "too few trace samples");
  const double slice = params_.slice_length;
  const double dt = params_.comp_stage;
  const double comp_start = slice - dt;
  const std::vector<double> v_wl = gd_.decode(inputs);
  const auto drive = xbar_.column_drive(column, v_wl);
  const double v_out = cog_.sample_voltage(drive);
  const auto out_spikes = execute(inputs);
  const circuits::Spike& out = out_spikes[column];

  const double step = slice / static_cast<double>(samples_per_slice);

  // --- S1: GD ramp charges, then the discharge switch clears it during
  // the computation stage.
  for (std::size_t i = 0; i <= samples_per_slice; ++i) {
    const double t = static_cast<double>(i) * step;
    const double v = t < comp_start ? gd_.ramp_voltage(t) : 0.0;
    rec.record("V(Cgd)", t, v);
  }
  // --- computation stage: Ccog charges toward Veq.
  const double tau_cog =
      drive.g_total > 0.0 ? params_.c_cog / drive.g_total : 0.0;
  for (std::size_t i = 0; i <= samples_per_slice; ++i) {
    const double t = static_cast<double>(i) * step;
    double v = 0.0;
    if (t >= comp_start && drive.g_total > 0.0) {
      v = circuits::rc_voltage(0.0, drive.v_eq, tau_cog, t - comp_start);
    } else if (t < comp_start) {
      v = 0.0;
    }
    rec.record("V(Ccog)", t, v);
  }
  // --- input spikes on the traced column's wordlines (digital).
  for (std::size_t r = 0; r < std::min<std::size_t>(rows(), 2); ++r) {
    const std::string name = "S_in" + std::to_string(r + 1);
    for (std::size_t i = 0; i <= samples_per_slice; ++i) {
      const double t = static_cast<double>(i) * step;
      double v = 0.0;
      if (inputs[r].valid() && t >= inputs[r].arrival_time &&
          t <= inputs[r].arrival_time + inputs[r].width) {
        v = 1.0;
      }
      rec.record(name, t, v);
    }
  }
  // --- S2: ramp restarts; held V(Ccog); comparator output spike.
  for (std::size_t i = 0; i <= samples_per_slice; ++i) {
    const double t = static_cast<double>(i) * step;
    rec.record("S2 V(Cgd)", slice + t, gd_.ramp_voltage(t));
    rec.record("S2 V(Ccog) held", slice + t, v_out);
    double spike_v = 0.0;
    if (out.valid() && t >= out.arrival_time &&
        t <= out.arrival_time + out.width) {
      spike_v = 1.0;
    }
    rec.record("S_out", slice + t, spike_v);
  }
}

energy::EnergyReport ResipeTile::energy_report(
    const std::vector<circuits::Spike>& inputs) const {
  RESIPE_TELEM_SCOPE("resipe_core.tile.energy_report");
  RESIPE_REQUIRE(inputs.size() == rows(), "input spike count mismatch");
  const energy::ComponentLibrary lib;
  energy::EnergyReport report;

  std::size_t input_spikes = 0;
  for (const auto& s : inputs) {
    if (s.valid()) ++input_spikes;
  }

  // Global decoder: ramp generator charges Cgd once per slice (S1 and
  // S2), one S/H per wordline samples per MVM.
  report.add(lib.ramp_generator(params_.c_gd), 1.0, 2.0,
             2.0 * params_.slice_length);
  report.add(lib.sample_hold(), static_cast<double>(rows()),
             static_cast<double>(input_spikes) / std::max<double>(rows(), 1),
             params_.slice_length);
  report.add(lib.spike_driver(), static_cast<double>(rows()),
             static_cast<double>(input_spikes) / std::max<double>(rows(), 1),
             0.0);

  // Crossbar: current flows only during the computation stage.  Two
  // terms: the resistive loss of charging each column's Ccog to Vout
  // (source delivers Ccog*Vout*Veq, the cap stores Ccog*Vout^2/2, the
  // difference burns in the cells), and the static mismatch current
  // between wordlines held at different voltages.
  const std::vector<double> v_wl = gd_.decode(inputs);
  const auto drives = xbar_.drives(v_wl);
  const auto v_samples = sample_voltages(inputs);
  double xbar_energy = xbar_.compute_energy(v_wl, params_.comp_stage);
  for (std::size_t c = 0; c < cols(); ++c) {
    const double delivered = params_.c_cog * v_samples[c] * drives[c].v_eq;
    const double stored = 0.5 * params_.c_cog * v_samples[c] * v_samples[c];
    xbar_energy += std::max(delivered - stored, 0.0);
  }
  report.add_raw("ReRAM crossbar", xbar_energy, xbar_.area());

  // COG cluster: per column, the sampling cap + its S2 reference charge
  // and a comparator biased for the whole of S2, plus the pulse shaper
  // and output spike driver.
  double cog_cap_energy = 0.0;
  for (double v : v_samples) cog_cap_energy += cog_.conversion_energy(v);
  const auto mim = lib.mim_capacitor(params_.c_cog);
  report.add_raw("COG sampling + reference caps", cog_cap_energy,
                 2.0 * mim.area * static_cast<double>(cols()));
  auto comparator = lib.comparator();
  comparator.name = "COG comparator";
  report.add(comparator, static_cast<double>(cols()), 1.0,
             params_.slice_length);
  auto shaper = lib.pulse_shaper();
  shaper.name = "COG pulse shaper";
  report.add(shaper, static_cast<double>(cols()), 1.0, 0.0);
  auto out_driver = lib.spike_driver();
  out_driver.name = "COG output spike driver";
  report.add(out_driver, static_cast<double>(cols()), 1.0, 0.0);

  // Slice/stage sequencing control.
  report.add(lib.digital_logic(150), 1.0, 2.0, 0.0);
  return report;
}

}  // namespace resipe::resipe_core
