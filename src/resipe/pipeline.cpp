#include "resipe/resipe/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "resipe/common/error.hpp"

namespace resipe::resipe_core {

TwoSlicePipeline::TwoSlicePipeline(std::size_t layers, double slice_length)
    : layers_(layers), slice_(slice_length) {
  RESIPE_REQUIRE(layers > 0, "pipeline needs at least one layer");
  RESIPE_REQUIRE(slice_length > 0.0, "slice length must be positive");
}

double TwoSlicePipeline::input_latency() const {
  return static_cast<double>(layers_ + 1) * slice_;
}

std::size_t TwoSlicePipeline::output_slice(std::size_t layer,
                                           std::size_t input_slice) const {
  RESIPE_REQUIRE(layer < layers_, "layer index out of range");
  // Layer l consumes its input in slice (input_slice + l) and emits in
  // the following slice.
  return input_slice + layer + 1;
}

double TwoSlicePipeline::stream_latency(std::size_t n) const {
  if (n == 0) return 0.0;
  // Last input presented in slice n-1; its final output lands in slice
  // n - 1 + layers; the stream completes at the end of that slice.
  return static_cast<double>(n + layers_) * slice_;
}

double TwoSlicePipeline::pipeline_speedup(std::size_t n) const {
  if (n == 0) return 1.0;
  const double sequential =
      static_cast<double>(n) * static_cast<double>(layers_ + 1) * slice_;
  return sequential / stream_latency(n);
}

namespace {

std::size_t digit_count(std::size_t n) {
  std::size_t digits = 1;
  while (n >= 10) {
    n /= 10;
    ++digits;
  }
  return digits;
}

std::string pad_to(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace

std::string TwoSlicePipeline::diagram(std::size_t inputs,
                                      std::size_t max_slices) const {
  const std::size_t slices =
      std::min(max_slices, inputs + layers_ + 1);
  // Column widths scale with the largest indices so slice/input labels
  // of any magnitude (>= 100 included) stay aligned.
  const std::size_t cell_width = std::max<std::size_t>(
      {3, digit_count(slices > 0 ? slices - 1 : 0) + 1,
       inputs > 0 ? digit_count(inputs - 1) + 2 : 3});
  const std::size_t label_width =
      std::max<std::size_t>(9, 6 + digit_count(layers_ - 1) + 2);
  std::ostringstream os;
  os << pad_to("slice", label_width);
  for (std::size_t s = 0; s < slices; ++s) {
    os << "|" << pad_to(std::to_string(s), cell_width);
  }
  os << "|\n";
  for (std::size_t l = 0; l < layers_; ++l) {
    os << pad_to("layer " + std::to_string(l), label_width);
    for (std::size_t s = 0; s < slices; ++s) {
      // Layer l processes input i during slice i + l (its S1) and
      // emits during i + l + 1 (its S2).
      os << "|";
      if (s >= l && s - l < inputs) {
        os << pad_to("i" + std::to_string(s - l), cell_width);
      } else {
        os << std::string(cell_width, ' ');
      }
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace resipe::resipe_core
