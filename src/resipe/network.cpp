#include "resipe/resipe/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/reliability/fault_mapper.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

EngineConfig EngineConfig::ideal() {
  EngineConfig cfg;
  cfg.circuit.model = circuits::TransferModel::kLinear;
  cfg.quantize_spikes = false;
  cfg.device.levels = 1 << 14;  // effectively continuous
  cfg.device.write_verify_tolerance = 0.0;
  cfg.device.variation_sigma = 0.0;
  cfg.device.read_noise_sigma = 0.0;
  cfg.device.transistor_r_on = 0.0;
  return cfg;
}

void EngineConfig::validate() const {
  circuit.validate();
  device.validate();
  reliability.validate();
  serve.validate();
  events.validate();
  RESIPE_REQUIRE(tile_rows > 0 && tile_cols > 0,
                 "tile dimensions must be positive, got "
                     << tile_rows << "x" << tile_cols);
  RESIPE_REQUIRE(mapping == crossbar::SignedMapping::kOffsetColumn ||
                     tile_cols % 2 == 0,
                 "paired mappings need an even tile width, got "
                     << tile_cols);
  RESIPE_REQUIRE(calibration_headroom > 0.0 && calibration_headroom <= 1.0,
                 "calibration headroom must be in (0, 1], got "
                     << calibration_headroom);
  RESIPE_REQUIRE(std::isfinite(input_scale_margin) && input_scale_margin > 0.0,
                 "input scale margin must be positive and finite, got "
                     << input_scale_margin);
  RESIPE_REQUIRE(std::isfinite(retention_time) && retention_time >= 0.0,
                 "retention time must be non-negative and finite, got "
                     << retention_time);
  RESIPE_REQUIRE(introspect.spike_time_bins > 0,
                 "introspection needs at least one spike-time bin");
  RESIPE_REQUIRE(introspect.activity_threshold >= 0.0,
                 "negative introspection activity threshold");
}

ProgrammedMatrix::ProgrammedMatrix(const EngineConfig& config,
                                   std::span<const double> weights,
                                   std::span<const double> bias,
                                   std::size_t in, std::size_t out,
                                   Rng& rng)
    : config_(config),
      codec_(config.circuit, config.quantize_spikes),
      in_(in),
      out_(out),
      bias_(bias.begin(), bias.end()) {
  RESIPE_TELEM_SCOPE("resipe_core.matrix.program");
  config_.validate();
  RESIPE_REQUIRE(weights.size() == in * out, "weight matrix size mismatch");
  RESIPE_REQUIRE(bias.size() == out, "bias size mismatch");

  mapping_ = crossbar::map_weights(weights, in, out, config_.device,
                                   config_.mapping);

  row_blocks_ = (in + config_.tile_rows - 1) / config_.tile_rows;
  const std::size_t col_blocks =
      (mapping_.cols + config_.tile_cols - 1) / config_.tile_cols;

  output_ok_.assign(out_, true);
  if (config_.reliability.enabled) {
    program_blocks_with_faults(rng);
    finalize_idle_recovery();
    return;
  }

  // Program every block cell-by-cell through the full device model.
  for (std::size_t rb = 0; rb < row_blocks_; ++rb) {
    const std::size_t row0 = rb * config_.tile_rows;
    const std::size_t rows = std::min(config_.tile_rows, in - row0);
    for (std::size_t cb = 0; cb < col_blocks; ++cb) {
      const std::size_t col0 = cb * config_.tile_cols;
      const std::size_t cols = std::min(config_.tile_cols,
                                        mapping_.cols - col0);
      Block block;
      block.row0 = row0;
      block.rows = rows;
      block.col0 = col0;
      block.cols = cols;
      block.slots = cols;
      std::vector<double> g_eff(rows * cols, 0.0);
      device::ReramCell cell;
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          const double target =
              mapping_.g_targets[(row0 + r) * mapping_.cols + (col0 + c)];
          cell.program(config_.device, target, rng);
          double g = cell.effective_g(config_.device);
          if (config_.retention_time > 0.0 && g > 0.0) {
            // Apply drift to the device part of the series combination.
            const double g_dev = cell.drifted_g(config_.device,
                                                config_.retention_time);
            g = g_dev > 0.0
                    ? 1.0 / (1.0 / g_dev + config_.device.transistor_r_on)
                    : 0.0;
          }
          if (config_.model_wire_ir_drop) {
            g = config_.wires.effective_g(g, r, c);
          }
          g_eff[r * cols + c] = g;
        }
      }
      block.mvm = std::make_unique<FastMvm>(config_.circuit, rows, cols,
                                            std::move(g_eff));
      if (config_.circuit.comparator_offset_sigma > 0.0) {
        std::vector<double> offsets(cols, 0.0);
        for (double& o : offsets) {
          o = rng.normal(0.0, config_.circuit.comparator_offset_sigma);
        }
        block.mvm->set_column_offsets(std::move(offsets));
      }
      blocks_.push_back(std::move(block));
    }
  }
  finalize_idle_recovery();
}

void ProgrammedMatrix::finalize_idle_recovery() {
  // A sleeping group's block output is input-independent, so its
  // recovery contribution is a per-column constant.  Bake it with the
  // exact operation sequence accumulate() applies — idle comparator
  // outcome, slice-boundary substitution, ramp sample, conductance
  // normalization — so adding the constant reproduces the dense bits.
  const auto& params = config_.circuit;
  std::vector<double> t_idle;
  for (Block& block : blocks_) {
    t_idle.assign(block.slots, 0.0);
    block.mvm->idle_times(t_idle);
    block.idle_recovery.assign(block.cols, 0.0);
    const bool remapped = !block.slot_of_col.empty();
    for (std::size_t c = 0; c < block.cols; ++c) {
      const std::size_t s = remapped ? block.slot_of_col[c] : c;
      double t = t_idle[s];
      if (t == FastMvm::kNoSpike) t = params.slice_length;
      const double v_cog = params.ramp_voltage(t);
      const double k = block.mvm->k(s);
      const double g_total = block.mvm->g_total(s);
      if (k > 0.0) {
        block.idle_recovery[c] = v_cog * g_total / k;
      }
    }
  }
}

void ProgrammedMatrix::program_blocks_with_faults(Rng& rng) {
  RESIPE_TELEM_SCOPE("resipe_core.matrix.program_with_faults");
  const auto& rel = config_.reliability;
  rel.validate();
  const auto& mit = rel.mitigation;
  const device::ReramSpec& spec = config_.device;
  const double g_min = spec.g_min();
  const double g_max = spec.g_max();
  const double g_span = g_max - g_min;
  const bool paired =
      config_.mapping != crossbar::SignedMapping::kOffsetColumn;
  const std::size_t group = paired ? 2 : 1;
  // Spare columns are physical silicon: they exist (and are defective
  // at the same rates) whether or not the mitigation policy uses them,
  // so the OFF/ON comparison sees identical fault realizations.
  const std::size_t spare = mit.spare_cols;

  // Defects come from their own stream: toggling mitigation changes how
  // many *programming* draws happen, never which cells are broken.
  Rng fault_rng(rel.fault_seed);
  const reliability::FaultMapper mapper(rel.mapper);

  device::ProgramBudget budget;
  budget.max_attempts = std::max(1, mit.write_verify_retries);
  budget.endurance_cycles = rel.endurance_cycles;
  budget.wear_cycles = rel.wear_cycles;

  std::vector<bool> col_degraded(mapping_.cols, false);

  const std::size_t col_blocks =
      (mapping_.cols + config_.tile_cols - 1) / config_.tile_cols;
  for (std::size_t rb = 0; rb < row_blocks_; ++rb) {
    const std::size_t row0 = rb * config_.tile_rows;
    const std::size_t rows = std::min(config_.tile_rows, in_ - row0);
    for (std::size_t cb = 0; cb < col_blocks; ++cb) {
      const std::size_t col0 = cb * config_.tile_cols;
      const std::size_t cols =
          std::min(config_.tile_cols, mapping_.cols - col0);
      const std::size_t slots = cols + spare;
      Block block;
      block.row0 = row0;
      block.rows = rows;
      block.col0 = col0;
      block.cols = cols;
      block.slots = slots;

      // --- Defect realization and (imperfect) march-test detection.
      const reliability::FaultMap truth =
          reliability::generate_fault_map(rows, slots, rel.faults,
                                          fault_rng);
      // The march test always burns its rng draws so the defect stream
      // stays aligned across arms, but a blind (mitigation-off) chip
      // never looks at the result.
      const reliability::FaultMap detected =
          mapper.from_truth(truth, fault_rng);
      rstats_.cells_faulty += truth.fault_count();
      if (mit.enabled) rstats_.cells_detected += detected.fault_count();

      // --- Column placement.  Importance = conductance mass above
      // G_min, i.e. the weight magnitude the column carries.
      crossbar::ColumnRemapPlan plan;
      plan.group = group;
      plan.data_cols = cols;
      plan.total_cols = slots;
      plan.slot_of_col.resize(cols);
      std::iota(plan.slot_of_col.begin(), plan.slot_of_col.end(),
                std::size_t{0});
      if (mit.enabled) {
        std::vector<double> importance;
        if (mit.remap_columns) {
          importance.assign(cols, 0.0);
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
              importance[c] +=
                  mapping_.g_targets[(row0 + r) * mapping_.cols +
                                     (col0 + c)] -
                  g_min;
            }
          }
        }
        plan = crossbar::plan_column_remap(detected, cols, group,
                                           importance,
                                           mit.remap_columns);
        rstats_.columns_remapped += plan.remapped_cols;
        rstats_.spares_used += plan.spares_used;
        rstats_.columns_unrepairable += plan.unrepaired.size();
      }

      // --- Per-slot conductance targets; unused slots idle at HRS.
      std::vector<double> targets(rows * slots, g_min);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          targets[r * slots + plan.slot_of_col[c]] =
              mapping_.g_targets[(row0 + r) * mapping_.cols + (col0 + c)];
        }
      }

      // --- Differential compensation: a single detected-stuck cell of
      // a (G+, G-) pair is cancelled by re-targeting its healthy
      // partner to preserve the pair difference.  Residuals beyond the
      // degrade threshold (and both-stuck rows) flag the pair.
      std::vector<bool> data_degraded(cols, false);
      const bool compensate = mit.enabled && mit.compensate_pairs && paired;
      if (compensate) {
        for (std::size_t c0 = 0; c0 + 1 < cols; c0 += 2) {
          const std::size_t c1 = c0 + 1;
          const std::size_t s0 = plan.slot_of_col[c0];
          const std::size_t s1 = plan.slot_of_col[c1];
          bool degraded = false;
          for (std::size_t r = 0; r < rows; ++r) {
            const reliability::FaultType f0 = detected.at(r, s0);
            const reliability::FaultType f1 = detected.at(r, s1);
            const bool b0 = f0 != reliability::FaultType::kNone;
            const bool b1 = f1 != reliability::FaultType::kNone;
            if (!b0 && !b1) continue;
            if (b0 && b1) {
              degraded = true;  // both cells pinned: nothing to re-target
              continue;
            }
            const bool plus_stuck = b0;
            const std::size_t healthy = plus_stuck ? s1 : s0;
            const reliability::FaultType fault = plus_stuck ? f0 : f1;
            const double g_stuck =
                fault == reliability::FaultType::kStuckLrs ? g_max : g_min;
            const double diff =
                targets[r * slots + s0] - targets[r * slots + s1];
            const double want =
                plus_stuck ? g_stuck - diff : g_stuck + diff;
            const double retarget = std::clamp(want, g_min, g_max);
            targets[r * slots + healthy] = retarget;
            ++rstats_.cells_compensated;
            if (std::abs(want - retarget) >
                mit.degrade_threshold * g_span) {
              degraded = true;
            }
          }
          if (degraded) {
            data_degraded[c0] = true;
            data_degraded[c1] = true;
          }
        }
      } else {
        for (std::size_t c : plan.unrepaired) data_degraded[c] = true;
      }

      // --- Pin the true defects, then program every slot through the
      // bounded write-verify loop (endurance wear can add new hard
      // faults mid-write; the explicit status makes that observable).
      std::vector<double> g_eff(rows * slots, 0.0);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t s = 0; s < slots; ++s) {
          device::ReramCell cell;
          switch (truth.at(r, s)) {
            case reliability::FaultType::kStuckLrs:
              cell.force_stuck_lrs(spec);
              break;
            case reliability::FaultType::kStuckHrs:
              cell.force_stuck_hrs(spec);
              break;
            case reliability::FaultType::kNone:
              break;
          }
          const device::ProgramResult res =
              cell.program_verified(spec, targets[r * slots + s], rng,
                                    budget);
          if (res.status == device::ProgramStatus::kGaveUp) {
            ++rstats_.write_giveups;
          } else if (res.status == device::ProgramStatus::kWriteFailed) {
            ++rstats_.write_wearouts;
          }

          // Effective conductance: retention drift + accumulated read
          // disturb act on the device filament, then the 1T1R series
          // transistor, then position-dependent wire IR drop.
          double g_dev = cell.programmed_g();
          if (config_.retention_time > 0.0) {
            g_dev = cell.drifted_g(spec, config_.retention_time);
          }
          if (rel.read_disturb_rate > 0.0 && rel.expected_mvms > 0.0 &&
              !cell.hard_faulted()) {
            g_dev = reliability::read_disturbed_conductance(
                g_dev, rel.expected_mvms, rel.read_disturb_rate, g_min);
          }
          double g = g_dev > 0.0
                         ? 1.0 / (1.0 / g_dev + spec.transistor_r_on)
                         : 0.0;
          if (config_.model_wire_ir_drop) {
            g = config_.wires.effective_g(g, r, s);
          }
          g_eff[r * slots + s] = g;
        }
      }

      block.mvm = std::make_unique<FastMvm>(config_.circuit, rows, slots,
                                            std::move(g_eff));
      if (config_.circuit.comparator_offset_sigma > 0.0) {
        std::vector<double> offsets(slots, 0.0);
        for (double& o : offsets) {
          o = rng.normal(0.0, config_.circuit.comparator_offset_sigma);
        }
        block.mvm->set_column_offsets(std::move(offsets));
      }
      for (std::size_t c = 0; c < cols; ++c) {
        if (data_degraded[c]) col_degraded[col0 + c] = true;
      }
      if (!plan.identity()) {
        block.slot_of_col = std::move(plan.slot_of_col);
      }
      blocks_.push_back(std::move(block));
    }
  }

  std::size_t degraded = 0;
  for (std::size_t j = 0; j < out_; ++j) {
    if (col_degraded[mapping_.plus_col(j)] ||
        col_degraded[mapping_.minus_col(j)]) {
      output_ok_[j] = false;
      ++degraded;
    }
  }
  RESIPE_TELEM_COUNT("reliability.cells_compensated",
                     rstats_.cells_compensated);
  RESIPE_TELEM_COUNT("reliability.degraded_outputs", degraded);
}

std::size_t ProgrammedMatrix::degraded_outputs() const {
  std::size_t n = 0;
  for (bool ok : output_ok_) {
    if (!ok) ++n;
  }
  return n;
}

void ProgrammedMatrix::set_input_scale(double scale) {
  RESIPE_REQUIRE(scale > 0.0, "input scale must be positive");
  input_scale_ = scale;
}

void ProgrammedMatrix::set_time_scale(double alpha) {
  RESIPE_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  alpha_ = alpha;
}

void ProgrammedMatrix::encode_input(std::span<const double> x,
                                    std::span<double> t) const {
  // Normalize into the codec's [0, 1] domain, then batch-encode so the
  // ramp-inversion chain runs through the SIMD codec kernel.
  thread_local std::vector<double> scaled;
  scaled.resize(in_);
  for (std::size_t i = 0; i < in_; ++i) {
    const double xn = std::clamp(x[i] / input_scale_, 0.0, 1.0);
    scaled[i] = alpha_ * xn;
  }
  codec_.encode_times(scaled, t.first(in_));
}

void ProgrammedMatrix::accumulate(std::span<const double> t_in,
                                  std::span<double> recovered) const {
  RESIPE_TELEM_COUNT("resipe_core.matrix.block_mvms", blocks_.size());
  std::fill(recovered.begin(), recovered.end(), 0.0);
  const auto& params = config_.circuit;
  thread_local std::vector<double> t_block_out;
  for (const Block& block : blocks_) {
    t_block_out.assign(block.slots, 0.0);
    const std::span<const double> t_rows(t_in.data() + block.row0,
                                         block.rows);
    block.mvm->mvm_times(t_rows, t_block_out);
    const bool remapped = !block.slot_of_col.empty();
    for (std::size_t c = 0; c < block.cols; ++c) {
      // Fault-aware placement may have moved this data column onto a
      // spare slot; read the bitline it actually lives on.
      const std::size_t s = remapped ? block.slot_of_col[c] : c;
      double t = t_block_out[s];
      // A silent output line encodes "beyond full scale": the readout
      // books the slice-boundary value.
      if (t == FastMvm::kNoSpike) t = params.slice_length;
      const double v_cog = params.ramp_voltage(t);
      const double k = block.mvm->k(s);
      const double g_total = block.mvm->g_total(s);
      if (k > 0.0) {
        recovered[block.col0 + c] += v_cog * g_total / k;
      }
    }
  }
}

void ProgrammedMatrix::accumulate_events(std::span<const double> t_in,
                                         std::span<double> recovered,
                                         events::EventQueue& queue,
                                         events::EventExecutor& exec) const {
  RESIPE_TELEM_COUNT("resipe_core.matrix.block_mvms", blocks_.size());
  std::fill(recovered.begin(), recovered.end(), 0.0);
  const auto& params = config_.circuit;
  queue.build(t_in, params.slice_length);
  events::ExecStats stats;
  thread_local std::vector<double> t_block_out;
  for (const Block& block : blocks_) {
    if (queue.rows_in_range(block.row0, block.rows).empty()) {
      // Sleeping group: the baked constants replace the comparator
      // recovery and ramp evaluation (bit-identical by construction).
      RESIPE_PERF_WORK("resipe_core.events.idle_resolve",
                       perf::event_idle_resolve_cost(block.cols));
      ++stats.groups_skipped;
      stats.rows_skipped += block.rows;
      for (std::size_t c = 0; c < block.cols; ++c) {
        recovered[block.col0 + c] += block.idle_recovery[c];
      }
      continue;
    }
    t_block_out.assign(block.slots, 0.0);
    const std::span<const double> t_rows(t_in.data() + block.row0,
                                         block.rows);
    exec.run_group(*block.mvm, queue, block.row0, t_rows, t_block_out,
                   stats);
    // Recovery arithmetic identical to accumulate(), applied to
    // bit-identical block outputs.
    const bool remapped = !block.slot_of_col.empty();
    for (std::size_t c = 0; c < block.cols; ++c) {
      const std::size_t s = remapped ? block.slot_of_col[c] : c;
      double t = t_block_out[s];
      if (t == FastMvm::kNoSpike) t = params.slice_length;
      const double v_cog = params.ramp_voltage(t);
      const double k = block.mvm->k(s);
      const double g_total = block.mvm->g_total(s);
      if (k > 0.0) {
        recovered[block.col0 + c] += v_cog * g_total / k;
      }
    }
  }
  RESIPE_TELEM_COUNT("resipe_core.events.delivered", stats.events_delivered);
  RESIPE_TELEM_COUNT("resipe_core.events.groups_woken", stats.groups_woken);
  RESIPE_TELEM_COUNT("resipe_core.events.groups_skipped",
                     stats.groups_skipped);
  RESIPE_TELEM_COUNT("resipe_core.events.rows_skipped", stats.rows_skipped);
}

void ProgrammedMatrix::decode(std::span<const double> recovered,
                              std::span<double> y) const {
  // recovered[j] = sum_i V_i G_ij with V_i = alpha * x_hat_i * v_full;
  // the pair/offset difference removes the conductance baseline and
  // weight_per_siemens converts siemens back into weight units.
  const double scale = mapping_.weight_per_siemens * input_scale_ /
                       (alpha_ * codec_.v_full());
  for (std::size_t j = 0; j < out_; ++j) {
    const double diff = recovered[mapping_.plus_col(j)] -
                        recovered[mapping_.minus_col(j)];
    y[j] = diff * scale + bias_[j];
  }
}

void ProgrammedMatrix::forward(std::span<const double> x,
                               std::span<double> y) const {
  RESIPE_TELEM_SCOPE("resipe_core.matrix.forward");
  RESIPE_REQUIRE(x.size() == in_ && y.size() == out_,
                 "forward vector size mismatch");
  thread_local std::vector<double> t_in;
  thread_local std::vector<double> recovered;
  t_in.resize(in_);
  encode_input(x, t_in);
  recovered.assign(mapping_.cols, 0.0);
  if (config_.events.enabled) {
    thread_local events::EventQueue queue;
    thread_local events::EventExecutor exec;
    accumulate_events(t_in, recovered, queue, exec);
  } else {
    accumulate(t_in, recovered);
  }
  decode(recovered, y);
}

void ProgrammedMatrix::ProbeStats::merge(const ProbeStats& other) {
  RESIPE_REQUIRE(spike_time_hist.size() == other.spike_time_hist.size(),
                 "probe-stat bin count mismatch");
  for (std::size_t i = 0; i < spike_time_hist.size(); ++i) {
    spike_time_hist[i] += other.spike_time_hist[i];
  }
  spikes += other.spikes;
  no_spike += other.no_spike;
  pinned_start += other.pinned_start;
  pinned_end += other.pinned_end;
  inputs_clamped += other.inputs_clamped;
  vectors += other.vectors;
}

void ProgrammedMatrix::forward_probed(std::span<const double> x,
                                      std::span<double> y,
                                      ProbeStats& stats) const {
  RESIPE_REQUIRE(x.size() == in_ && y.size() == out_,
                 "forward vector size mismatch");
  const auto& params = config_.circuit;
  // Encode exactly as encode_input() does, counting clamp engagements
  // on the side.  `xn` is clamped with the identical expression and
  // fed through the same batched codec kernel, so the spike times —
  // and therefore y — match forward() bit for bit.
  std::vector<double> t_in(in_, 0.0);
  std::vector<double> scaled(in_, 0.0);
  for (std::size_t i = 0; i < in_; ++i) {
    const double ratio = x[i] / input_scale_;
    if (ratio < 0.0 || ratio > 1.0) ++stats.inputs_clamped;
    const double xn = std::clamp(ratio, 0.0, 1.0);
    scaled[i] = alpha_ * xn;
  }
  codec_.encode_times(scaled, t_in);

  // accumulate() with per-column health probes.  Saturation taxonomy:
  // a silent column (kNoSpike) means the current-sum never pulled the
  // COG across the ramp — the readout books the slice boundary and the
  // true value is censored from above; a spike inside the first clock
  // period means the column is pinned at the slice start (at/over full
  // scale, censored from below); a spike in the last clock period is
  // one LSB away from falling silent.
  const std::size_t bins = stats.spike_time_hist.size();
  std::vector<double> recovered(mapping_.cols, 0.0);
  std::vector<double> t_block_out;
  for (const Block& block : blocks_) {
    t_block_out.assign(block.slots, 0.0);
    const std::span<const double> t_rows(t_in.data() + block.row0,
                                         block.rows);
    block.mvm->mvm_times(t_rows, t_block_out);
    const bool remapped = !block.slot_of_col.empty();
    for (std::size_t c = 0; c < block.cols; ++c) {
      const std::size_t s = remapped ? block.slot_of_col[c] : c;
      double t = t_block_out[s];
      if (t == FastMvm::kNoSpike) {
        ++stats.no_spike;
        t = params.slice_length;
      } else {
        ++stats.spikes;
        if (t <= params.clock_period) ++stats.pinned_start;
        if (t >= params.slice_length - params.clock_period) {
          ++stats.pinned_end;
        }
        const double norm = t / params.slice_length;
        const auto bin = std::min(
            bins - 1,
            static_cast<std::size_t>(std::max(
                0.0, norm * static_cast<double>(bins))));
        ++stats.spike_time_hist[bin];
      }
      const double v_cog = params.ramp_voltage(t);
      const double k = block.mvm->k(s);
      const double g_total = block.mvm->g_total(s);
      if (k > 0.0) {
        recovered[block.col0 + c] += v_cog * g_total / k;
      }
    }
  }
  decode(recovered, y);
  ++stats.vectors;
}

void ProgrammedMatrix::forward_batch(std::span<const double> x, std::size_t n,
                                     std::span<double> y,
                                     BatchWorkspace& ws) const {
  RESIPE_TELEM_SCOPE("resipe_core.matrix.forward_batch");
  RESIPE_REQUIRE(x.size() == n * in_ && y.size() == n * out_,
                 "forward_batch size mismatch");
  if (n == 0) return;
  const auto& params = config_.circuit;

  ws.t_in.resize(n * in_);
  for (std::size_t s = 0; s < n; ++s) {
    encode_input(x.subspan(s * in_, in_),
                 std::span<double>(ws.t_in.data() + s * in_, in_));
  }

  if (config_.events.enabled) {
    // Event-driven batch path: the batched dense kernel is documented
    // bitwise-identical to n single calls per backend, so the sparse
    // path runs each sample through accumulate_events() — which books
    // its own block_mvms count per sample.
    ws.recovered.resize(n * mapping_.cols);
    for (std::size_t s = 0; s < n; ++s) {
      accumulate_events(
          std::span<const double>(ws.t_in.data() + s * in_, in_),
          std::span<double>(ws.recovered.data() + s * mapping_.cols,
                            mapping_.cols),
          ws.queue, ws.exec);
    }
    for (std::size_t s = 0; s < n; ++s) {
      decode(std::span<const double>(ws.recovered.data() + s * mapping_.cols,
                                     mapping_.cols),
             y.subspan(s * out_, out_));
    }
    return;
  }

  RESIPE_TELEM_COUNT("resipe_core.matrix.block_mvms", n * blocks_.size());
  // Same block order and same per-column recovery arithmetic as
  // accumulate(); only the batching differs.
  ws.recovered.assign(n * mapping_.cols, 0.0);
  for (const Block& block : blocks_) {
    ws.t_rows.resize(n * block.rows);
    for (std::size_t s = 0; s < n; ++s) {
      const double* src = ws.t_in.data() + s * in_ + block.row0;
      std::copy(src, src + block.rows, ws.t_rows.data() + s * block.rows);
    }
    ws.t_out.resize(n * block.slots);
    block.mvm->mvm_times_batch(ws.t_rows, n, ws.t_out, ws.mvm);
    const bool remapped = !block.slot_of_col.empty();
    for (std::size_t s = 0; s < n; ++s) {
      double* rec = ws.recovered.data() + s * mapping_.cols;
      const double* t_blk = ws.t_out.data() + s * block.slots;
      for (std::size_t c = 0; c < block.cols; ++c) {
        const std::size_t slot = remapped ? block.slot_of_col[c] : c;
        double t = t_blk[slot];
        if (t == FastMvm::kNoSpike) t = params.slice_length;
        const double v_cog = params.ramp_voltage(t);
        const double k = block.mvm->k(slot);
        const double g_total = block.mvm->g_total(slot);
        if (k > 0.0) {
          rec[block.col0 + c] += v_cog * g_total / k;
        }
      }
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    decode(std::span<const double>(ws.recovered.data() + s * mapping_.cols,
                                   mapping_.cols),
           y.subspan(s * out_, out_));
  }
}

double ProgrammedMatrix::forward_analytic(std::span<const double> x,
                                          std::span<double> y) const {
  RESIPE_REQUIRE(x.size() == in_ && y.size() == out_,
                 "forward vector size mismatch");
  // Voltage-domain pass: V_i = alpha * x_hat_i * v_full, no time
  // quantization, no slice clamping.
  thread_local std::vector<double> v_in;
  thread_local std::vector<double> recovered;
  v_in.assign(in_, 0.0);
  for (std::size_t i = 0; i < in_; ++i) {
    const double xn = std::clamp(x[i] / input_scale_, 0.0, 1.0);
    v_in[i] = alpha_ * xn * codec_.v_full();
  }
  recovered.assign(mapping_.cols, 0.0);
  double v_max = 0.0;
  for (const Block& block : blocks_) {
    const bool remapped = !block.slot_of_col.empty();
    for (std::size_t c = 0; c < block.cols; ++c) {
      const std::size_t s = remapped ? block.slot_of_col[c] : c;
      const double g_total = block.mvm->g_total(s);
      if (g_total <= 0.0) continue;
      double sum = 0.0;
      for (std::size_t r = 0; r < block.rows; ++r) {
        // Row-major within the block: conductances live in the FastMvm;
        // recompute the current-sum from the mapped layout instead.
        sum += v_in[block.row0 + r] *
               mapping_.g_targets[(block.row0 + r) * mapping_.cols +
                                  (block.col0 + c)];
      }
      // The analytic pass uses target conductances (pre-variation);
      // close enough for range calibration.
      const double k = block.mvm->k(s);
      v_max = std::max(v_max, k * sum / g_total);
      recovered[block.col0 + c] += sum;
    }
  }
  decode(recovered, y);
  return v_max;
}

void ProgrammedMatrix::calibrate_alpha(std::span<const double> x_batch,
                                       std::size_t n) {
  RESIPE_TELEM_SCOPE("resipe_core.matrix.calibrate_alpha");
  RESIPE_REQUIRE(x_batch.size() == n * in_, "calibration batch size");
  set_time_scale(1.0);
  double v_max = 0.0;
  std::vector<double> y(out_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> x(x_batch.data() + i * in_, in_);
    v_max = std::max(v_max, forward_analytic(x, y));
  }
  if (v_max <= 0.0) return;  // degenerate layer; keep alpha = 1
  // The COG voltage must cross the S2 ramp inside the headroom
  // fraction of the slice.
  const double v_limit = config_.circuit.ramp_voltage(
      config_.calibration_headroom * config_.circuit.slice_length);
  if (v_max > v_limit) {
    set_time_scale(std::clamp(v_limit / v_max, 1e-6, 1.0));
  }
}

void gather_conv_patch(const nn::Tensor& x, std::size_t img,
                       std::size_t cin, std::size_t k, std::size_t stride,
                       std::size_t pad, std::size_t r, std::size_t c,
                       std::span<double> patch) {
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  std::size_t idx = 0;
  for (std::size_t ic = 0; ic < cin; ++ic) {
    for (std::size_t kr = 0; kr < k; ++kr) {
      const std::ptrdiff_t ir =
          static_cast<std::ptrdiff_t>(r * stride + kr) -
          static_cast<std::ptrdiff_t>(pad);
      for (std::size_t kc = 0; kc < k; ++kc, ++idx) {
        const std::ptrdiff_t icol =
            static_cast<std::ptrdiff_t>(c * stride + kc) -
            static_cast<std::ptrdiff_t>(pad);
        if (ir < 0 || ir >= static_cast<std::ptrdiff_t>(h) || icol < 0 ||
            icol >= static_cast<std::ptrdiff_t>(w)) {
          patch[idx] = 0.0;
        } else {
          patch[idx] = x.at(img, ic, static_cast<std::size_t>(ir),
                            static_cast<std::size_t>(icol));
        }
      }
    }
  }
}

std::vector<double> conv_weight_matrix(const nn::Conv2d& conv) {
  const auto& w = conv.weights();
  const std::size_t cout = conv.out_channels();
  const std::size_t cin = conv.in_channels();
  const std::size_t k = conv.kernel();
  const std::size_t in = cin * k * k;
  std::vector<double> m(in * cout, 0.0);
  for (std::size_t oc = 0; oc < cout; ++oc) {
    std::size_t idx = 0;
    for (std::size_t ic = 0; ic < cin; ++ic) {
      for (std::size_t kr = 0; kr < k; ++kr) {
        for (std::size_t kc = 0; kc < k; ++kc, ++idx) {
          m[idx * cout + oc] = w.at(oc, ic, kr, kc);
        }
      }
    }
  }
  return m;
}

namespace {

double batch_abs_max(const nn::Tensor& t, double margin) {
  const double m = t.abs_max() * margin;
  return m > 0.0 ? m : 1.0;
}

}  // namespace

ResipeNetwork::ResipeNetwork(nn::Sequential& model,
                             const EngineConfig& config,
                             const nn::Tensor& calibration)
    : model_(model), config_(config) {
  config_.validate();
  Rng rng(config_.program_seed);
  nn::Tensor h = calibration;
  constexpr std::size_t kMaxCalibVectors = 512;

  // Each layer gets its own defect realization: hash the fault seed
  // with the matrix index so two same-shaped layers never share a
  // fault map.  With reliability disabled `layer_cfg` is an exact copy
  // and the legacy path stays bit-identical.
  EngineConfig layer_cfg = config_;
  const auto next_layer_cfg = [&]() -> const EngineConfig& {
    if (config_.reliability.enabled) {
      layer_cfg.reliability.fault_seed = hash_seed(
          config_.reliability.fault_seed, matrices_.size());
    }
    return layer_cfg;
  };

  for (std::size_t li = 0; li < model_.layer_count(); ++li) {
    nn::Layer& layer = model_.layer(li);
    Step step;
    // Matrix steps keep their software layer too: forward() dispatches
    // on `matrix` first, and the layer pointer is what forward_hybrid
    // and the introspection observer use as the digital reference.
    step.layer = &layer;
    if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      auto pm = std::make_unique<ProgrammedMatrix>(
          next_layer_cfg(), dense->weights().data(), dense->bias().data(),
          dense->in_features(), dense->out_features(), rng);
      pm->set_input_scale(batch_abs_max(h, config_.input_scale_margin));
      const std::size_t n =
          std::min<std::size_t>(h.dim(0), kMaxCalibVectors);
      pm->calibrate_alpha(
          std::span<const double>(h.data().data(),
                                  n * dense->in_features()),
          n);
      step.matrix = pm.get();
      matrices_.push_back(std::move(pm));
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const std::vector<double> wm = conv_weight_matrix(*conv);
      const std::size_t in = conv->in_channels() * conv->kernel() *
                             conv->kernel();
      auto pm = std::make_unique<ProgrammedMatrix>(
          next_layer_cfg(), wm, conv->bias().data(), in,
          conv->out_channels(), rng);
      pm->set_input_scale(batch_abs_max(h, config_.input_scale_margin));
      // Calibrate on a subsample of im2col patches.
      const std::size_t oh = conv->out_size(h.dim(2));
      const std::size_t ow = conv->out_size(h.dim(3));
      const std::size_t total = h.dim(0) * oh * ow;
      const std::size_t take = std::min<std::size_t>(total,
                                                     kMaxCalibVectors);
      std::vector<double> patches(take * in, 0.0);
      std::vector<double> patch(in, 0.0);
      const std::size_t step_stride = std::max<std::size_t>(1, total / take);
      std::size_t written = 0;
      for (std::size_t pos = 0; pos < total && written < take;
           pos += step_stride, ++written) {
        const std::size_t img = pos / (oh * ow);
        const std::size_t rc = pos % (oh * ow);
        gather_conv_patch(h, img, conv->in_channels(), conv->kernel(),
                          conv->stride(), conv->pad(), rc / ow, rc % ow,
                          patch);
        std::copy(patch.begin(), patch.end(),
                  patches.begin() + static_cast<std::ptrdiff_t>(written * in));
      }
      pm->calibrate_alpha(
          std::span<const double>(patches.data(), written * in), written);
      step.matrix = pm.get();
      step.is_conv = true;
      step.cin = conv->in_channels();
      step.cout = conv->out_channels();
      step.k = conv->kernel();
      step.stride = conv->stride();
      step.pad = conv->pad();
      matrices_.push_back(std::move(pm));
    }
    steps_.push_back(step);
    h = layer.forward(h, /*train=*/false);
  }
}

nn::Tensor ResipeNetwork::run_dense(const Step& step,
                                    const nn::Tensor& x) const {
  RESIPE_REQUIRE(x.rank() == 2, "dense step expects rank-2 input");
  const std::size_t n = x.dim(0);
  const std::size_t in = step.matrix->in_features();
  const std::size_t out = step.matrix->out_features();
  RESIPE_REQUIRE(x.dim(1) == in, "dense step input width mismatch");
  nn::Tensor y({n, out});
  const double* x_data = x.data().data();
  double* y_data = y.data().data();
  // Images are independent and write disjoint output slices, so the
  // decomposition (and thread count) cannot change the results.
  parallel_for_chunked(n, 0, [&](std::size_t b, std::size_t e) {
    thread_local ProgrammedMatrix::BatchWorkspace ws;
    step.matrix->forward_batch(
        std::span<const double>(x_data + b * in, (e - b) * in), e - b,
        std::span<double>(y_data + b * out, (e - b) * out), ws);
  });
  return y;
}

nn::Tensor ResipeNetwork::run_conv(const Step& step,
                                   const nn::Tensor& x) const {
  RESIPE_REQUIRE(x.rank() == 4 && x.dim(1) == step.cin,
                 "conv step input shape mismatch");
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = (h + 2 * step.pad - step.k) / step.stride + 1;
  const std::size_t ow = (w + 2 * step.pad - step.k) / step.stride + 1;
  nn::Tensor y({n, step.cout, oh, ow});
  const std::size_t in = step.matrix->in_features();
  // One image per work item; each output row of ow patches runs as one
  // batched MVM.  Images write disjoint y slices.
  parallel_for(n, [&](std::size_t img) {
    thread_local ProgrammedMatrix::BatchWorkspace ws;
    thread_local std::vector<double> patches;
    thread_local std::vector<double> out_row;
    patches.resize(ow * in);
    out_row.resize(ow * step.cout);
    for (std::size_t r = 0; r < oh; ++r) {
      for (std::size_t c = 0; c < ow; ++c) {
        gather_conv_patch(x, img, step.cin, step.k, step.stride, step.pad, r,
                          c, std::span<double>(patches.data() + c * in, in));
      }
      step.matrix->forward_batch(patches, ow, out_row, ws);
      for (std::size_t c = 0; c < ow; ++c) {
        for (std::size_t oc = 0; oc < step.cout; ++oc)
          y.at(img, oc, r, c) = out_row[c * step.cout + oc];
      }
    }
  });
  return y;
}

nn::Tensor ResipeNetwork::forward(const nn::Tensor& batch) const {
  nn::Tensor h = batch;
  for (const Step& step : steps_) {
    if (step.matrix != nullptr) {
      h = step.is_conv ? run_conv(step, h) : run_dense(step, h);
    } else {
      h = step.layer->forward(h, /*train=*/false);
    }
  }
  return h;
}

nn::Tensor ResipeNetwork::forward_observed(const nn::Tensor& batch,
                                           LayerObserver& obs) const {
  nn::Tensor h = batch;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    nn::Tensor out =
        step.matrix != nullptr
            ? (step.is_conv ? run_conv(step, h) : run_dense(step, h))
            : step.layer->forward(h, /*train=*/false);
    obs.on_step(i, *step.layer, step.matrix, step.is_conv, h, out);
    h = std::move(out);
  }
  return h;
}

nn::Tensor ResipeNetwork::forward_hybrid(
    const nn::Tensor& batch, const std::vector<bool>& digital_steps) const {
  nn::Tensor h = batch;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    const bool digital = i < digital_steps.size() && digital_steps[i];
    if (step.matrix != nullptr && !digital) {
      h = step.is_conv ? run_conv(step, h) : run_dense(step, h);
    } else {
      h = step.layer->forward(h, /*train=*/false);
    }
  }
  return h;
}

ProgrammedMatrix::ReliabilityStats ResipeNetwork::reliability_stats() const {
  ProgrammedMatrix::ReliabilityStats total;
  for (const auto& m : matrices_) {
    const auto& s = m->reliability_stats();
    total.cells_faulty += s.cells_faulty;
    total.cells_detected += s.cells_detected;
    total.columns_remapped += s.columns_remapped;
    total.spares_used += s.spares_used;
    total.columns_unrepairable += s.columns_unrepairable;
    total.cells_compensated += s.cells_compensated;
    total.write_giveups += s.write_giveups;
    total.write_wearouts += s.write_wearouts;
  }
  return total;
}

std::size_t ResipeNetwork::degraded_outputs() const {
  std::size_t n = 0;
  for (const auto& m : matrices_) n += m->degraded_outputs();
  return n;
}

std::size_t ResipeNetwork::tile_count() const {
  std::size_t n = 0;
  for (const auto& m : matrices_) n += m->tile_count();
  return n;
}

std::size_t ResipeNetwork::mvms_per_image() const {
  // Dense layers: one pass over all blocks per image.  Conv layers: one
  // pass per output position.  Positions are not stored, so report the
  // conservative per-vector count times 1; the examples derive full
  // counts from geometry where needed.
  std::size_t n = 0;
  for (const auto& m : matrices_) n += m->tile_count();
  return n;
}

}  // namespace resipe::resipe_core
