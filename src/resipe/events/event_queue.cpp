#include "resipe/resipe/events/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core::events {

void EventQueue::build(std::span<const double> t_in, double slice_length) {
  RESIPE_PERF_WORK("resipe_core.events.queue_build",
                   perf::event_queue_build_cost(t_in.size()));
  events_.clear();
  active_rows_.clear();
  total_rows_ = t_in.size();
  for (std::size_t r = 0; r < t_in.size(); ++r) {
    const double t = t_in[r];
    if (!carries_spike(t, slice_length)) continue;
    events_.push_back({t, static_cast<std::uint32_t>(r)});
    active_rows_.push_back(static_cast<std::uint32_t>(r));
  }
  // The row scan already yields active_rows_ ascending; the dispatch
  // view re-sorts by arrival with the deterministic (time, row)
  // tie-break.  stable vs unstable makes no difference under a total
  // order, but the explicit row key documents the contract.
  std::sort(events_.begin(), events_.end(),
            [](const SpikeEvent& a, const SpikeEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.row < b.row;
            });
  RESIPE_TELEM_COUNT("resipe_core.events.queued", events_.size());
}

std::span<const std::uint32_t> EventQueue::rows_in_range(
    std::size_t row0, std::size_t rows) const {
  const auto lo = std::lower_bound(active_rows_.begin(), active_rows_.end(),
                                   static_cast<std::uint32_t>(row0));
  const auto hi = std::lower_bound(lo, active_rows_.end(),
                                   static_cast<std::uint32_t>(row0 + rows));
  return {std::to_address(lo), static_cast<std::size_t>(hi - lo)};
}

}  // namespace resipe::resipe_core::events
