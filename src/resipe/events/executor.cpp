#include "resipe/resipe/events/executor.hpp"

#include "resipe/common/error.hpp"

namespace resipe::resipe_core::events {

void EventExecutor::run_group(const FastMvm& fast, const EventQueue& queue,
                              std::size_t row0,
                              std::span<const double> t_group_in,
                              std::span<double> t_out, ExecStats& stats) {
  const std::size_t rows = fast.rows();
  RESIPE_REQUIRE(t_group_in.size() == rows,
                 "event executor: staged input size mismatch");
  const auto wake = queue.rows_in_range(row0, rows);
  if (wake.empty()) {
    // No event reaches this group in the slice: every wordline holds
    // 0 V, so only the per-column comparator outcome needs recovering.
    fast.idle_times(t_out);
    ++stats.groups_skipped;
    stats.rows_skipped += rows;
    return;
  }
  local_rows_.resize(wake.size());
  for (std::size_t i = 0; i < wake.size(); ++i) {
    local_rows_[i] = static_cast<std::uint32_t>(wake[i] - row0);
  }
  fast.mvm_times_sparse(t_group_in, local_rows_, t_out);
  ++stats.groups_woken;
  stats.events_delivered += wake.size();
  stats.rows_skipped += rows - wake.size();
}

}  // namespace resipe::resipe_core::events
