#include "resipe/resipe/spike_code.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

namespace {

// Cold bookkeeping paths: encode/decode run in ns-scale loops, so the
// disabled-telemetry cost must stay at one predicted branch per call.
// Work accounting rides the same cold path (and so, like the counters,
// only fires while telemetry is active); per-call RAII timing would
// dwarf the codec itself, so these book work only — the enclosing
// layer span carries the time.
[[gnu::noinline]] void record_encode(bool clipped, bool snapped) {
  RESIPE_PERF_WORK("resipe_core.spike_codec.encode",
                   perf::spike_encode_cost());
  RESIPE_TELEM_COUNT("resipe_core.spike_codec.encoded", 1);
  if (clipped) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.input_clipped", 1);
  }
  if (snapped) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.quantization_snaps", 1);
  }
}

[[gnu::noinline]] void record_decode(bool silent) {
  RESIPE_PERF_WORK("resipe_core.spike_codec.decode",
                   perf::spike_decode_cost());
  RESIPE_TELEM_COUNT("resipe_core.spike_codec.decoded", 1);
  if (silent) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.silent_decodes", 1);
  }
}

}  // namespace

SpikeCodec::SpikeCodec(const circuits::CircuitParams& params, bool quantize)
    : params_(params),
      t_full_(params.slice_length - params.comp_stage),
      v_full_(0.0),
      quantize_(quantize),
      telemetry_(RESIPE_TELEM_ACTIVE()) {
  params_.validate();
  RESIPE_ASSERT(t_full_ > 0.0, "no usable input window");
  v_full_ = params_.ramp_voltage(t_full_);
  RESIPE_ASSERT(v_full_ > 0.0, "degenerate ramp");
}

circuits::Spike SpikeCodec::encode(double x) const {
  const bool clipped = x < 0.0 || x > 1.0;
  x = std::clamp(x, 0.0, 1.0);
  double t = params_.ramp_crossing(x * v_full_);
  t = std::min(t, t_full_);
  bool snapped = false;
  if (quantize_) {
    const double exact = t;
    t = std::round(t / params_.clock_period) * params_.clock_period;
    t = std::min(t, t_full_);
    snapped = t != exact;
  }
  if (telemetry_) record_encode(clipped, snapped);
  return circuits::Spike::at(t, params_.spike_width);
}

double SpikeCodec::decode(const circuits::Spike& spike) const {
  if (!spike.valid()) {
    if (telemetry_) record_decode(/*silent=*/true);
    return 1.0;
  }
  if (telemetry_) record_decode(/*silent=*/false);
  const double v =
      params_.ramp_voltage(std::min(spike.arrival_time, t_full_));
  return std::clamp(v / v_full_, 0.0, 1.0);
}

double SpikeCodec::voltage_of(double arrival_time) const {
  RESIPE_REQUIRE(arrival_time >= 0.0, "negative arrival time");
  return params_.ramp_voltage(std::min(arrival_time, t_full_));
}

int SpikeCodec::levels() const {
  return static_cast<int>(std::round(t_full_ / params_.clock_period)) + 1;
}

}  // namespace resipe::resipe_core
