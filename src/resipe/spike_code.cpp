#include "resipe/resipe/spike_code.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::resipe_core {

SpikeCodec::SpikeCodec(const circuits::CircuitParams& params, bool quantize)
    : params_(params),
      t_full_(params.slice_length - params.comp_stage),
      v_full_(0.0),
      quantize_(quantize) {
  params_.validate();
  RESIPE_ASSERT(t_full_ > 0.0, "no usable input window");
  v_full_ = params_.ramp_voltage(t_full_);
  RESIPE_ASSERT(v_full_ > 0.0, "degenerate ramp");
}

circuits::Spike SpikeCodec::encode(double x) const {
  x = std::clamp(x, 0.0, 1.0);
  double t = params_.ramp_crossing(x * v_full_);
  t = std::min(t, t_full_);
  if (quantize_) {
    t = std::round(t / params_.clock_period) * params_.clock_period;
    t = std::min(t, t_full_);
  }
  return circuits::Spike::at(t, params_.spike_width);
}

double SpikeCodec::decode(const circuits::Spike& spike) const {
  if (!spike.valid()) return 1.0;
  const double v =
      params_.ramp_voltage(std::min(spike.arrival_time, t_full_));
  return std::clamp(v / v_full_, 0.0, 1.0);
}

double SpikeCodec::voltage_of(double arrival_time) const {
  RESIPE_REQUIRE(arrival_time >= 0.0, "negative arrival time");
  return params_.ramp_voltage(std::min(arrival_time, t_full_));
}

int SpikeCodec::levels() const {
  return static_cast<int>(std::round(t_full_ / params_.clock_period)) + 1;
}

}  // namespace resipe::resipe_core
