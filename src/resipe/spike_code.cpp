#include "resipe/resipe/spike_code.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/common/simd.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

namespace {

// Cold bookkeeping paths: encode/decode run in ns-scale loops, so the
// disabled-telemetry cost must stay at one predicted branch per call.
// Work accounting rides the same cold path (and so, like the counters,
// only fires while telemetry is active); per-call RAII timing would
// dwarf the codec itself, so these book work only — the enclosing
// layer span carries the time.
[[gnu::noinline]] void record_encode(bool clipped, bool snapped) {
  RESIPE_PERF_WORK("resipe_core.spike_codec.encode",
                   perf::spike_encode_cost());
  RESIPE_TELEM_COUNT("resipe_core.spike_codec.encoded", 1);
  if (clipped) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.input_clipped", 1);
  }
  if (snapped) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.quantization_snaps", 1);
  }
}

[[gnu::noinline]] void record_decode(bool silent) {
  RESIPE_PERF_WORK("resipe_core.spike_codec.decode",
                   perf::spike_decode_cost());
  RESIPE_TELEM_COUNT("resipe_core.spike_codec.decoded", 1);
  if (silent) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.silent_decodes", 1);
  }
}

perf::WorkCost scaled(perf::WorkCost c, std::size_t n) {
  return {c.flops * static_cast<double>(n),
          c.bytes * static_cast<double>(n)};
}

[[gnu::noinline]] void record_encode_batch(std::size_t n, std::size_t clipped,
                                           std::size_t snapped) {
  RESIPE_PERF_WORK("resipe_core.spike_codec.encode",
                   scaled(perf::spike_encode_cost(), n));
  RESIPE_TELEM_COUNT("resipe_core.spike_codec.encoded", n);
  if (clipped) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.input_clipped", clipped);
  }
  if (snapped) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.quantization_snaps", snapped);
  }
}

[[gnu::noinline]] void record_decode_batch(std::size_t n, std::size_t silent) {
  RESIPE_PERF_WORK("resipe_core.spike_codec.decode",
                   scaled(perf::spike_decode_cost(), n));
  RESIPE_TELEM_COUNT("resipe_core.spike_codec.decoded", n);
  if (silent) {
    RESIPE_TELEM_COUNT("resipe_core.spike_codec.silent_decodes", silent);
  }
}

}  // namespace

SpikeCodec::SpikeCodec(const circuits::CircuitParams& params, bool quantize)
    : params_(params),
      t_full_(params.slice_length - params.comp_stage),
      v_full_(0.0),
      quantize_(quantize),
      telemetry_(RESIPE_TELEM_ACTIVE()) {
  params_.validate();
  RESIPE_ASSERT(t_full_ > 0.0, "no usable input window");
  v_full_ = params_.ramp_voltage(t_full_);
  RESIPE_ASSERT(v_full_ > 0.0, "degenerate ramp");
}

circuits::Spike SpikeCodec::encode(double x) const {
  const bool clipped = x < 0.0 || x > 1.0;
  x = std::clamp(x, 0.0, 1.0);
  double t = params_.ramp_crossing(x * v_full_);
  t = std::min(t, t_full_);
  bool snapped = false;
  if (quantize_) {
    const double exact = t;
    t = std::round(t / params_.clock_period) * params_.clock_period;
    t = std::min(t, t_full_);
    snapped = t != exact;
  }
  if (telemetry_) record_encode(clipped, snapped);
  return circuits::Spike::at(t, params_.spike_width);
}

double SpikeCodec::decode(const circuits::Spike& spike) const {
  if (!spike.valid()) {
    if (telemetry_) record_decode(/*silent=*/true);
    return 1.0;
  }
  if (telemetry_) record_decode(/*silent=*/false);
  const double v =
      params_.ramp_voltage(std::min(spike.arrival_time, t_full_));
  return std::clamp(v / v_full_, 0.0, 1.0);
}

double SpikeCodec::voltage_of(double arrival_time) const {
  RESIPE_REQUIRE(arrival_time >= 0.0, "negative arrival time");
  return params_.ramp_voltage(std::min(arrival_time, t_full_));
}

int SpikeCodec::levels() const {
  return static_cast<int>(std::round(t_full_ / params_.clock_period)) + 1;
}

void SpikeCodec::encode_times(std::span<const double> values,
                              std::span<double> times) const {
  RESIPE_REQUIRE(values.size() == times.size(),
                 "encode_times span size mismatch");
  const std::size_t n = values.size();
  if (n == 0) return;
  if (!simd::enabled()) {
    // Scalar reference: element-wise encode, historical bit pattern.
    for (std::size_t i = 0; i < n; ++i) {
      times[i] = encode(values[i]).arrival_time;
    }
    return;
  }

  using simd::vdouble;
  constexpr std::size_t kW = simd::native_lanes;
  thread_local std::vector<double, simd::AlignedAllocator<double>> buf;
  const std::size_t np = simd::pad_to_lanes(n);
  buf.resize(np);
  std::copy(values.begin(), values.end(), buf.begin());
  std::fill(buf.begin() + n, buf.end(), 0.0);

  const vdouble zero(0.0);
  const vdouble one(1.0);
  const vdouble v_full(v_full_);
  const vdouble v_s(params_.v_s);
  const vdouble tau(params_.tau_gd());
  const vdouble t_full(t_full_);
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  std::size_t clipped = 0;
  for (std::size_t i = 0; i < np; i += kW) {
    const vdouble x = vdouble::load(buf.data() + i);
    // One input cannot be clipped on both sides, so the counts add.
    clipped += simd::mask_count(x < zero) + simd::mask_count(x > one);
    const vdouble xc = simd::min(simd::max(x, zero), one);
    const vdouble v = xc * v_full;
    // ramp_crossing(v): v_full < v_s in the exact model (the ramp
    // never reaches its asymptote) and the linear branch has no
    // saturation case, so only the v <= 0 edge needs a select.
    vdouble t;
    if (linear) {
      t = v * tau / v_s;
    } else {
      t = (zero - tau) * simd::log(one - v / v_s);
    }
    t = simd::select(v <= zero, zero, t);
    t = simd::min(t, t_full);
    t.store(buf.data() + i);
  }

  std::size_t snapped = 0;
  if (quantize_) {
    // Vectorized clock snap: simd::round is bit-equal to std::round on
    // every backend (half away from zero — the tie behavior is part of
    // the quantization contract, pinned in test_simd.cpp).
    const vdouble clock(params_.clock_period);
    for (std::size_t i = 0; i < np; i += kW) {
      const vdouble exact = vdouble::load(buf.data() + i);
      const vdouble q = simd::min(simd::round(exact / clock) * clock, t_full);
      // Masks only compose with &, so count q == exact as <= and >=;
      // padding lanes snap 0 to 0 and never inflate the count.
      snapped += kW - simd::mask_count((q <= exact) & (q >= exact));
      q.store(buf.data() + i);
    }
  }
  std::copy(buf.begin(), buf.begin() + n, times.begin());
  if (telemetry_) record_encode_batch(n, clipped, snapped);
}

void SpikeCodec::decode_values(std::span<const double> times,
                               std::span<double> values) const {
  RESIPE_REQUIRE(times.size() == values.size(),
                 "decode_values span size mismatch");
  const std::size_t n = times.size();
  if (n == 0) return;
  if (!simd::enabled()) {
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = decode(circuits::Spike::at(times[i]));
    }
    return;
  }

  using simd::vdouble;
  constexpr std::size_t kW = simd::native_lanes;
  thread_local std::vector<double, simd::AlignedAllocator<double>> buf;
  const std::size_t np = simd::pad_to_lanes(n);
  buf.resize(np);
  std::copy(times.begin(), times.end(), buf.begin());
  std::fill(buf.begin() + n, buf.end(), 0.0);

  const vdouble zero(0.0);
  const vdouble one(1.0);
  const vdouble v_full(v_full_);
  const vdouble v_s(params_.v_s);
  const vdouble tau(params_.tau_gd());
  const vdouble t_full(t_full_);
  const vdouble no_spike(std::numeric_limits<double>::infinity());
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  std::size_t silent = 0;
  for (std::size_t i = 0; i < np; i += kW) {
    const vdouble t_raw = vdouble::load(buf.data() + i);
    // Spike::valid(): t >= 0 and t != inf.  NaN and inf fail the
    // window compare, negatives fail the sign compare.
    const auto valid = (t_raw >= zero) & (t_raw < no_spike);
    silent += kW - simd::mask_count(valid);
    const vdouble t = simd::min(t_raw, t_full);
    vdouble v;
    if (linear) {
      v = v_s * t / tau;
    } else {
      v = v_s * (one - simd::exp(zero - t / tau));
    }
    // ramp_voltage clamps to [0, v_s]; decode then clamps v/v_full to
    // [0, 1] — fold both into one clamp after the scale.
    vdouble y = simd::min(simd::max(v / v_full, zero), one);
    y = simd::select(valid, y, one);
    y.store(buf.data() + i);
  }
  std::copy(buf.begin(), buf.begin() + n, values.begin());
  if (telemetry_) record_decode_batch(n, silent);
}

}  // namespace resipe::resipe_core
