#include "resipe/resipe/design.hpp"

#include "resipe/common/error.hpp"
#include "resipe/resipe/spike_code.hpp"

namespace resipe::resipe_core {

ResipeDesign::ResipeDesign(circuits::CircuitParams params,
                           device::ReramSpec spec, std::size_t rows,
                           std::size_t cols, double utilization_input,
                           std::uint64_t program_seed)
    : params_(params), utilization_input_(utilization_input) {
  RESIPE_REQUIRE(utilization_input >= 0.0 && utilization_input <= 1.0,
                 "utilization input out of [0, 1]");
  tile_ = std::make_unique<ResipeTile>(params_, rows, cols, spec);
  // Representative programming: mid-window conductances with a
  // deterministic spread so column sums match a typical mapped layer.
  Rng rng(program_seed);
  std::vector<double> g(rows * cols);
  const double g_min = spec.g_min();
  const double g_span = spec.g_max() - spec.g_min();
  for (double& v : g) v = g_min + rng.uniform(0.2, 0.8) * g_span;
  tile_->program(g, rng);
}

std::vector<circuits::Spike> ResipeDesign::nominal_inputs() const {
  const SpikeCodec codec(params_);
  // Deterministic spread around the utilization point: a realistic MVM
  // has unequal wordline voltages, which is what makes static current
  // flow between rows during the computation stage.
  std::vector<circuits::Spike> in(tile_->rows());
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double frac =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.5;
    const double x = utilization_input_ * (0.4 + 1.2 * frac);
    in[i] = codec.encode(x);
  }
  return in;
}

energy::EnergyReport ResipeDesign::mvm_report() const {
  return tile_->energy_report(nominal_inputs());
}

double ResipeDesign::mvm_latency() const { return tile_->latency(); }

double ResipeDesign::initiation_interval() const {
  return params_.slice_length;
}

}  // namespace resipe::resipe_core
