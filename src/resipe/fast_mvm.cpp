#include "resipe/resipe/fast_mvm.hpp"

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

FastMvm::FastMvm(const circuits::CircuitParams& params,
                 const crossbar::Crossbar& xbar)
    : params_(params), rows_(xbar.rows()), cols_(xbar.cols()) {
  params_.validate();
  g_.resize(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      g_[r * cols_ + c] = xbar.effective_g(r, c);
    }
  }
  precompute();
}

FastMvm::FastMvm(const circuits::CircuitParams& params, std::size_t rows,
                 std::size_t cols, std::vector<double> g_effective)
    : params_(params), rows_(rows), cols_(cols), g_(std::move(g_effective)) {
  params_.validate();
  RESIPE_REQUIRE(rows_ > 0 && cols_ > 0, "empty FastMvm");
  RESIPE_REQUIRE(g_.size() == rows_ * cols_, "conductance matrix size");
  precompute();
}

void FastMvm::precompute() {
  g_total_.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) g_total_[c] += g_[r * cols_ + c];
  }
  k_.assign(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) continue;
    const double tau = params_.c_cog / g_total_[c];
    if (params_.model == circuits::TransferModel::kLinear) {
      k_[c] = params_.comp_stage / tau;  // may exceed 1 by design
    } else {
      k_[c] = 1.0 - std::exp(-params_.comp_stage / tau);
    }
  }
}

void FastMvm::set_column_offsets(std::vector<double> offsets) {
  RESIPE_REQUIRE(offsets.size() == cols_,
                 "need one comparator offset per column");
  offsets_ = std::move(offsets);
}

void FastMvm::mvm_times(std::span<const double> t_in,
                        std::span<double> t_out) const {
  RESIPE_TELEM_SCOPE("resipe_core.fast_mvm.mvm_times");
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  const double tau_gd = params_.tau_gd();
  const double v_s = params_.v_s;
  const bool linear = params_.model == circuits::TransferModel::kLinear;

  // S1: wordline voltages from the GD ramp.
  thread_local std::vector<double> v_wl;
  v_wl.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double t = t_in[r];
    if (!(t >= 0.0) || t == kNoSpike || t > params_.slice_length) continue;
    v_wl[r] = linear ? v_s * t / tau_gd : v_s * (1.0 - std::exp(-t / tau_gd));
  }

  // Computation stage + S2 per column.
  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) {
      // An unprogrammed column never charges: the ramp crosses 0 at t=0.
      t_out[c] = params_.comparator_delay;
      continue;
    }
    double weighted = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      weighted += v_wl[r] * g_[r * cols_ + c];
    }
    const double v_eq = weighted / g_total_[c];
    const double v_cog = v_eq * k_[c];
    double threshold = v_cog + params_.comparator_offset;
    if (!offsets_.empty()) threshold += offsets_[c];
    double crossing;
    if (threshold <= 0.0) {
      crossing = 0.0;
    } else if (linear) {
      crossing = threshold * tau_gd / v_s;
    } else if (threshold >= v_s) {
      crossing = kNoSpike;
    } else {
      crossing = -tau_gd * std::log(1.0 - threshold / v_s);
    }
    const double t = crossing + params_.comparator_delay;
    t_out[c] = t <= params_.slice_length ? t : kNoSpike;
    if (t_out[c] == kNoSpike) ++silent;
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::ideal_times(std::span<const double> t_in,
                          std::span<double> t_out) const {
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  const double gain = params_.linear_gain();
  for (std::size_t c = 0; c < cols_; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double t = t_in[r];
      if (!(t >= 0.0) || t == kNoSpike) continue;
      acc += t * g_[r * cols_ + c];
    }
    t_out[c] = gain * acc;
  }
}

}  // namespace resipe::resipe_core
