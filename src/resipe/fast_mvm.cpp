#include "resipe/resipe/fast_mvm.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

FastMvm::FastMvm(const circuits::CircuitParams& params,
                 const crossbar::Crossbar& xbar)
    : params_(params), rows_(xbar.rows()), cols_(xbar.cols()) {
  params_.validate();
  g_cm_.resize(rows_ * cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      g_cm_[c * rows_ + r] = xbar.effective_g(r, c);
    }
  }
  precompute();
}

FastMvm::FastMvm(const circuits::CircuitParams& params, std::size_t rows,
                 std::size_t cols, std::vector<double> g_effective)
    : params_(params), rows_(rows), cols_(cols) {
  params_.validate();
  RESIPE_REQUIRE(rows_ > 0 && cols_ > 0, "empty FastMvm");
  RESIPE_REQUIRE(g_effective.size() == rows_ * cols_,
                 "conductance matrix size");
  g_cm_.resize(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      g_cm_[c * rows_ + r] = g_effective[r * cols_ + c];
    }
  }
  precompute();
}

void FastMvm::precompute() {
  g_total_.assign(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double* gc = g_cm_.data() + c * rows_;
    // Row-ascending sum, matching ResipeTile's accumulation order.
    for (std::size_t r = 0; r < rows_; ++r) g_total_[c] += gc[r];
  }
  k_.assign(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) continue;
    const double tau = params_.c_cog / g_total_[c];
    if (params_.model == circuits::TransferModel::kLinear) {
      k_[c] = params_.comp_stage / tau;  // may exceed 1 by design
    } else {
      k_[c] = 1.0 - std::exp(-params_.comp_stage / tau);
    }
  }
}

void FastMvm::set_column_offsets(std::vector<double> offsets) {
  RESIPE_REQUIRE(offsets.size() == cols_,
                 "need one comparator offset per column");
  offsets_ = std::move(offsets);
}

void FastMvm::wordline_voltages(std::span<const double> t_in,
                                double* v_wl) const {
  const double tau_gd = params_.tau_gd();
  const double v_s = params_.v_s;
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double t = t_in[r];
    if (!(t >= 0.0) || t == kNoSpike || t > params_.slice_length) {
      v_wl[r] = 0.0;
      continue;
    }
    // The linear ramp saturates at v_s like the real GD output
    // (CircuitParams::ramp_voltage clamps); without the clamp a fast
    // ramp (tau_gd < slice) would feed the crossbar voltages the
    // circuit cannot produce and diverge from ResipeTile.
    v_wl[r] = linear ? std::min(v_s * t / tau_gd, v_s)
                     : v_s * (1.0 - std::exp(-t / tau_gd));
  }
}

double FastMvm::recover_time(double weighted, std::size_t col,
                             std::size_t* silent) const {
  const double tau_gd = params_.tau_gd();
  const double v_s = params_.v_s;
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  const double v_eq = weighted / g_total_[col];
  const double v_cog = v_eq * k_[col];
  double threshold = v_cog + params_.comparator_offset;
  if (!offsets_.empty()) threshold += offsets_[col];
  double crossing;
  if (threshold <= 0.0) {
    crossing = 0.0;
  } else if (linear) {
    crossing = threshold * tau_gd / v_s;
  } else if (threshold >= v_s) {
    crossing = kNoSpike;
  } else {
    crossing = -tau_gd * std::log(1.0 - threshold / v_s);
  }
  const double t = crossing + params_.comparator_delay;
  if (t <= params_.slice_length) return t;
  ++*silent;
  return kNoSpike;
}

void FastMvm::mvm_times(std::span<const double> t_in,
                        std::span<double> t_out) const {
  RESIPE_TELEM_SCOPE("resipe_core.fast_mvm.mvm_times");
  RESIPE_PERF_KERNEL("resipe_core.fast_mvm.mvm_times",
                     perf::fast_mvm_cost(rows_, cols_));
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  // S1: wordline voltages from the GD ramp.
  thread_local std::vector<double> v_wl;
  v_wl.resize(rows_);
  wordline_voltages(t_in, v_wl.data());

  // Computation stage + S2 per column.
  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) {
      // An unprogrammed column never charges: the ramp crosses 0 at t=0.
      t_out[c] = params_.comparator_delay;
      continue;
    }
    const double* gc = g_cm_.data() + c * rows_;
    double weighted = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      weighted += v_wl[r] * gc[r];
    }
    t_out[c] = recover_time(weighted, c, &silent);
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::mvm_times_batch(std::span<const double> t_in, std::size_t n,
                              std::span<double> t_out,
                              BatchScratch& scratch) const {
  RESIPE_TELEM_SCOPE("resipe_core.fast_mvm.mvm_times_batch");
  RESIPE_PERF_KERNEL("resipe_core.fast_mvm.mvm_times_batch",
                     perf::fast_mvm_batch_cost(rows_, cols_, n));
  RESIPE_REQUIRE(t_in.size() == n * rows_ && t_out.size() == n * cols_,
                 "FastMvm batch size mismatch");
  if (n == 0) return;

  // S1 for every sample up front.
  scratch.v_wl.resize(n * rows_);
  for (std::size_t s = 0; s < n; ++s) {
    wordline_voltages(t_in.subspan(s * rows_, rows_),
                      scratch.v_wl.data() + s * rows_);
  }

  // Computation stage + S2, column-outer so each column's weights are
  // loaded once and the dot product / recovery chain runs contiguously
  // across samples.
  scratch.weighted.resize(n);
  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) {
      for (std::size_t s = 0; s < n; ++s) {
        t_out[s * cols_ + c] = params_.comparator_delay;
      }
      continue;
    }
    const double* gc = g_cm_.data() + c * rows_;
    for (std::size_t s = 0; s < n; ++s) {
      const double* vs = scratch.v_wl.data() + s * rows_;
      double weighted = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        weighted += vs[r] * gc[r];
      }
      scratch.weighted[s] = weighted;
    }
    for (std::size_t s = 0; s < n; ++s) {
      t_out[s * cols_ + c] = recover_time(scratch.weighted[s], c, &silent);
    }
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", n * rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::ideal_times(std::span<const double> t_in,
                          std::span<double> t_out) const {
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  const double gain = params_.linear_gain();
  for (std::size_t c = 0; c < cols_; ++c) {
    const double* gc = g_cm_.data() + c * rows_;
    double acc = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double t = t_in[r];
      if (!(t >= 0.0) || t == kNoSpike) continue;
      acc += t * gc[r];
    }
    t_out[c] = gain * acc;
  }
}

}  // namespace resipe::resipe_core
