#include "resipe/resipe/fast_mvm.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::resipe_core {

namespace {

using simd::vdouble;
constexpr std::size_t kW = simd::native_lanes;

/// Samples accumulated per matrix load in the batched dot kernel: four
/// independent FMA chains cover the FMA latency and amortize each
/// column load 4x.
constexpr std::size_t kSampleGroup = 4;

/// Column-block footprint target for the batch tiling: a block of
/// g_cm_ this large stays resident in L2 while every sample in the
/// batch streams through it.
constexpr std::size_t kBlockBytes = 128 * 1024;

/// Prefetch distance (in doubles) ahead of the streaming matrix reads.
constexpr std::size_t kPrefetchAhead = 64;

}  // namespace

FastMvm::FastMvm(const circuits::CircuitParams& params,
                 const crossbar::Crossbar& xbar)
    : params_(params), rows_(xbar.rows()), cols_(xbar.cols()) {
  params_.validate();
  RESIPE_REQUIRE(rows_ > 0 && cols_ > 0,
                 "FastMvm requires a crossbar with rows > 0 and cols > 0");
  rows_pad_ = simd::pad_to_lanes(rows_);
  g_cm_.assign(cols_ * rows_pad_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      g_cm_[c * rows_pad_ + r] = xbar.effective_g(r, c);
    }
  }
  precompute();
}

FastMvm::FastMvm(const circuits::CircuitParams& params, std::size_t rows,
                 std::size_t cols, std::vector<double> g_effective)
    : params_(params), rows_(rows), cols_(cols) {
  params_.validate();
  RESIPE_REQUIRE(rows_ > 0 && cols_ > 0,
                 "FastMvm requires rows > 0 and cols > 0");
  RESIPE_REQUIRE(g_effective.size() == rows_ * cols_,
                 "conductance matrix size");
  rows_pad_ = simd::pad_to_lanes(rows_);
  g_cm_.assign(cols_ * rows_pad_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      g_cm_[c * rows_pad_ + r] = g_effective[r * cols_ + c];
    }
  }
  precompute();
}

void FastMvm::precompute() {
  cols_pad_ = simd::pad_to_lanes(cols_);
  g_total_.assign(cols_pad_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double* gc = g_cm_.data() + c * rows_pad_;
    // Row-ascending sum, matching ResipeTile's accumulation order.
    for (std::size_t r = 0; r < rows_; ++r) g_total_[c] += gc[r];
  }
  k_.assign(cols_pad_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) continue;
    const double tau = params_.c_cog / g_total_[c];
    if (params_.model == circuits::TransferModel::kLinear) {
      k_[c] = params_.comp_stage / tau;  // may exceed 1 by design
    } else {
      k_[c] = 1.0 - std::exp(-params_.comp_stage / tau);
    }
  }
  offsets_.assign(cols_pad_, 0.0);
  // Column blocks for the batched kernel: whole multiples of the
  // vector width sized so a block of g_cm_ fits the L2 target.
  std::size_t cb = kBlockBytes / (rows_pad_ * sizeof(double));
  cb = cb / kW * kW;
  block_cols_ = std::clamp<std::size_t>(cb, kW, cols_pad_);
}

void FastMvm::set_column_offsets(std::vector<double> offsets) {
  RESIPE_REQUIRE(offsets.size() == cols_,
                 "need one comparator offset per column");
  std::copy(offsets.begin(), offsets.end(), offsets_.begin());
  has_offsets_ = true;
}

// --- scalar reference path ---------------------------------------------
//
// These are the original loops, byte-for-byte in the arithmetic: the
// scalar build and RESIPE_SIMD=scalar reproduce historical results
// exactly, and the verify harness measures the SIMD path against them.

void FastMvm::wordline_voltages(std::span<const double> t_in,
                                double* v_wl) const {
  const double tau_gd = params_.tau_gd();
  const double v_s = params_.v_s;
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double t = t_in[r];
    if (!(t >= 0.0) || t == kNoSpike || t > params_.slice_length) {
      v_wl[r] = 0.0;
      continue;
    }
    // The linear ramp saturates at v_s like the real GD output
    // (CircuitParams::ramp_voltage clamps); without the clamp a fast
    // ramp (tau_gd < slice) would feed the crossbar voltages the
    // circuit cannot produce and diverge from ResipeTile.
    v_wl[r] = linear ? std::min(v_s * t / tau_gd, v_s)
                     : v_s * (1.0 - std::exp(-t / tau_gd));
  }
}

double FastMvm::recover_time(double weighted, std::size_t col,
                             std::size_t* silent) const {
  const double tau_gd = params_.tau_gd();
  const double v_s = params_.v_s;
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  const double v_eq = weighted / g_total_[col];
  const double v_cog = v_eq * k_[col];
  double threshold = v_cog + params_.comparator_offset;
  if (has_offsets_) threshold += offsets_[col];
  double crossing;
  if (threshold <= 0.0) {
    crossing = 0.0;
  } else if (linear) {
    crossing = threshold * tau_gd / v_s;
  } else if (threshold >= v_s) {
    crossing = kNoSpike;
  } else {
    crossing = -tau_gd * std::log(1.0 - threshold / v_s);
  }
  const double t = crossing + params_.comparator_delay;
  if (t <= params_.slice_length) return t;
  ++*silent;
  return kNoSpike;
}

void FastMvm::mvm_times_scalar(std::span<const double> t_in,
                               std::span<double> t_out) const {
  // S1: wordline voltages from the GD ramp.
  thread_local std::vector<double> v_wl;
  v_wl.resize(rows_);
  wordline_voltages(t_in, v_wl.data());

  // Computation stage + S2 per column.
  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) {
      // An unprogrammed column never charges: the ramp crosses 0 at t=0.
      t_out[c] = params_.comparator_delay;
      continue;
    }
    const double* gc = g_cm_.data() + c * rows_pad_;
    double weighted = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      weighted += v_wl[r] * gc[r];
    }
    t_out[c] = recover_time(weighted, c, &silent);
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::mvm_times_batch_scalar(std::span<const double> t_in,
                                     std::size_t n, std::span<double> t_out,
                                     BatchScratch& scratch) const {
  // S1 for every sample up front.
  scratch.v_wl.resize(n * rows_);
  for (std::size_t s = 0; s < n; ++s) {
    wordline_voltages(t_in.subspan(s * rows_, rows_),
                      scratch.v_wl.data() + s * rows_);
  }

  // Computation stage + S2, column-outer so each column's weights are
  // loaded once and the dot product / recovery chain runs contiguously
  // across samples.
  scratch.weighted.resize(n);
  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) {
      for (std::size_t s = 0; s < n; ++s) {
        t_out[s * cols_ + c] = params_.comparator_delay;
      }
      continue;
    }
    const double* gc = g_cm_.data() + c * rows_pad_;
    for (std::size_t s = 0; s < n; ++s) {
      const double* vs = scratch.v_wl.data() + s * rows_;
      double weighted = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        weighted += vs[r] * gc[r];
      }
      scratch.weighted[s] = weighted;
    }
    for (std::size_t s = 0; s < n; ++s) {
      t_out[s * cols_ + c] = recover_time(scratch.weighted[s], c, &silent);
    }
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", n * rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

// --- SIMD path ---------------------------------------------------------

void FastMvm::wordline_voltages_simd(const double* t_pad,
                                     double* v_wl) const {
  const vdouble v_s(params_.v_s);
  const vdouble zero(0.0);
  const vdouble one(1.0);
  const vdouble slice(params_.slice_length);
  const vdouble tau(params_.tau_gd());
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  for (std::size_t r = 0; r < rows_pad_; r += kW) {
    const vdouble t = vdouble::load(t_pad + r);
    // Valid when 0 <= t <= slice; NaN and kNoSpike fail both compares.
    const auto valid = (t >= zero) & (t <= slice);
    vdouble v;
    if (linear) {
      v = simd::min(v_s * t / tau, v_s);
    } else {
      v = v_s * (one - simd::exp(zero - t / tau));
    }
    v = simd::select(valid, v, zero);
    v.store(v_wl + r);
  }
}

void FastMvm::recover_block_simd(const double* w, std::size_t c, double* out,
                                 std::size_t* silent) const {
  const double tau_gd = params_.tau_gd();
  const vdouble v_s(params_.v_s);
  const vdouble zero(0.0);
  const vdouble delay(params_.comparator_delay);
  const vdouble slice(params_.slice_length);
  const vdouble no_spike(kNoSpike);
  const bool linear = params_.model == circuits::TransferModel::kLinear;

  const vdouble weighted = vdouble::load(w);
  const vdouble g_tot = vdouble::load(g_total_.data() + c);
  const vdouble k = vdouble::load(k_.data() + c);
  const vdouble off = vdouble::load(offsets_.data() + c);

  const vdouble v_cog = weighted / g_tot * k;
  const vdouble threshold =
      v_cog + vdouble(params_.comparator_offset) + off;

  vdouble crossing;
  if (linear) {
    crossing = threshold * vdouble(tau_gd) / v_s;
  } else {
    // -tau * log(1 - th/v_s); th >= v_s makes the log argument <= 0,
    // which the explicit select below resolves to kNoSpike.
    crossing =
        (zero - vdouble(tau_gd)) * simd::log(vdouble(1.0) - threshold / v_s);
    crossing = simd::select(threshold >= v_s, no_spike, crossing);
  }
  crossing = simd::select(threshold <= zero, zero, crossing);

  const vdouble t = crossing + delay;
  const auto programmed = g_tot > zero;
  const auto in_slice = t <= slice;
  vdouble result = simd::select(in_slice, t, no_spike);
  // Unprogrammed (and padding) columns never charge: crossing at t=0.
  result = simd::select(programmed, result, delay);
  result.store(out);

  // Silent outputs: programmed columns whose spike fell past the slice.
  const auto silent_mask = programmed & (t > slice);
  *silent += simd::mask_count(silent_mask);
}

void FastMvm::mvm_times_simd(std::span<const double> t_in,
                             std::span<double> t_out) const {
  thread_local aligned_vector t_pad;
  thread_local aligned_vector v_wl;
  thread_local aligned_vector w_pad;
  thread_local aligned_vector out_pad;
  t_pad.resize(rows_pad_);
  v_wl.resize(rows_pad_);
  w_pad.resize(cols_pad_);
  out_pad.resize(cols_pad_);

  // S1 over the padded sample; padding lanes carry kNoSpike -> v = 0.
  std::copy(t_in.begin(), t_in.end(), t_pad.begin());
  std::fill(t_pad.begin() + rows_, t_pad.end(), kNoSpike);
  wordline_voltages_simd(t_pad.data(), v_wl.data());

  // Per-column FMA dot products, four columns per pass so each v_wl
  // load feeds four accumulator chains.
  for (std::size_t c0 = 0; c0 < cols_; c0 += 4) {
    const std::size_t nc = std::min<std::size_t>(4, cols_ - c0);
    if (nc == 4) {
      const double* g0 = g_cm_.data() + (c0 + 0) * rows_pad_;
      const double* g1 = g_cm_.data() + (c0 + 1) * rows_pad_;
      const double* g2 = g_cm_.data() + (c0 + 2) * rows_pad_;
      const double* g3 = g_cm_.data() + (c0 + 3) * rows_pad_;
      vdouble a0(0.0), a1(0.0), a2(0.0), a3(0.0);
      for (std::size_t r = 0; r < rows_pad_; r += kW) {
        const vdouble v = vdouble::load(v_wl.data() + r);
        a0 = simd::fma(vdouble::load(g0 + r), v, a0);
        a1 = simd::fma(vdouble::load(g1 + r), v, a1);
        a2 = simd::fma(vdouble::load(g2 + r), v, a2);
        a3 = simd::fma(vdouble::load(g3 + r), v, a3);
      }
      w_pad[c0 + 0] = simd::reduce_add(a0);
      w_pad[c0 + 1] = simd::reduce_add(a1);
      w_pad[c0 + 2] = simd::reduce_add(a2);
      w_pad[c0 + 3] = simd::reduce_add(a3);
    } else {
      for (std::size_t j = 0; j < nc; ++j) {
        const double* gc = g_cm_.data() + (c0 + j) * rows_pad_;
        vdouble acc(0.0);
        for (std::size_t r = 0; r < rows_pad_; r += kW) {
          acc = simd::fma(vdouble::load(gc + r), vdouble::load(v_wl.data() + r),
                          acc);
        }
        w_pad[c0 + j] = simd::reduce_add(acc);
      }
    }
  }
  std::fill(w_pad.begin() + cols_, w_pad.end(), 0.0);

  // S2 recovery, one vector chunk of columns at a time.
  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_pad_; c += kW) {
    recover_block_simd(w_pad.data() + c, c, out_pad.data() + c, &silent);
  }
  std::copy(out_pad.begin(), out_pad.begin() + cols_, t_out.begin());
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::mvm_times_batch_simd(std::span<const double> t_in,
                                   std::size_t n, std::span<double> t_out,
                                   BatchScratch& scratch) const {
  // S1: padded wordline voltages per sample.  Same kernel as the
  // single-sample path, so every element is bitwise identical to it.
  thread_local aligned_vector t_pad;
  t_pad.resize(rows_pad_);
  scratch.v_wl.resize(n * rows_pad_);
  for (std::size_t s = 0; s < n; ++s) {
    const auto sample = t_in.subspan(s * rows_, rows_);
    std::copy(sample.begin(), sample.end(), t_pad.begin());
    std::fill(t_pad.begin() + rows_, t_pad.end(), kNoSpike);
    wordline_voltages_simd(t_pad.data(), scratch.v_wl.data() + s * rows_pad_);
  }

  scratch.weighted.resize(kSampleGroup * cols_pad_);
  scratch.t_cols.resize(n * cols_pad_);
  std::size_t silent = 0;

  // Column-block outer loop: a block of g_cm_ stays L2-resident while
  // the whole batch streams through it.  Within a block, groups of
  // four samples share each matrix load.
  for (std::size_t c0 = 0; c0 < cols_; c0 += block_cols_) {
    const std::size_t c_end = std::min(c0 + block_cols_, cols_);
    // Recovery chunks must cover full vector widths; blocks start at
    // multiples of kW, so only the last block pads out.
    const std::size_t c_end_pad = (c_end == cols_) ? cols_pad_ : c_end;

    for (std::size_t s0 = 0; s0 < n; s0 += kSampleGroup) {
      const std::size_t ns = std::min(kSampleGroup, n - s0);
      const double* vw0 = scratch.v_wl.data() + (s0 + 0) * rows_pad_;

      for (std::size_t c = c0; c < c_end; ++c) {
        const double* gc = g_cm_.data() + c * rows_pad_;
        if (ns == kSampleGroup) {
          const double* vw1 = vw0 + rows_pad_;
          const double* vw2 = vw1 + rows_pad_;
          const double* vw3 = vw2 + rows_pad_;
          vdouble a0(0.0), a1(0.0), a2(0.0), a3(0.0);
          for (std::size_t r = 0; r < rows_pad_; r += kW) {
            simd::prefetch(gc + r + kPrefetchAhead);
            const vdouble g = vdouble::load(gc + r);
            a0 = simd::fma(vdouble::load(vw0 + r), g, a0);
            a1 = simd::fma(vdouble::load(vw1 + r), g, a1);
            a2 = simd::fma(vdouble::load(vw2 + r), g, a2);
            a3 = simd::fma(vdouble::load(vw3 + r), g, a3);
          }
          scratch.weighted[0 * cols_pad_ + c] = simd::reduce_add(a0);
          scratch.weighted[1 * cols_pad_ + c] = simd::reduce_add(a1);
          scratch.weighted[2 * cols_pad_ + c] = simd::reduce_add(a2);
          scratch.weighted[3 * cols_pad_ + c] = simd::reduce_add(a3);
        } else {
          for (std::size_t j = 0; j < ns; ++j) {
            const double* vwj = vw0 + j * rows_pad_;
            vdouble acc(0.0);
            for (std::size_t r = 0; r < rows_pad_; r += kW) {
              simd::prefetch(gc + r + kPrefetchAhead);
              acc = simd::fma(vdouble::load(vwj + r), vdouble::load(gc + r),
                              acc);
            }
            scratch.weighted[j * cols_pad_ + c] = simd::reduce_add(acc);
          }
        }
      }

      // S2 for this (sample group x column block), contiguous per
      // sample over the padded output row.
      for (std::size_t j = 0; j < ns; ++j) {
        double* out_row = scratch.t_cols.data() + (s0 + j) * cols_pad_;
        const double* w_row = scratch.weighted.data() + j * cols_pad_;
        for (std::size_t c = c0; c < c_end_pad; c += kW) {
          recover_block_simd(w_row + c, c, out_row + c, &silent);
        }
      }
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    const double* src = scratch.t_cols.data() + s * cols_pad_;
    std::copy(src, src + cols_, t_out.begin() + s * cols_);
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops", n * rows_ * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

// --- event-driven sparse kernels ---------------------------------------
//
// Bit-identity with the dense kernels rests on two IEEE facts the
// dense paths already rely on:
//   * a silent row's wordline voltage is exactly +0.0 — invalid times
//     are zeroed by the validity branch/mask, and t = 0 (the encoding
//     of input value 0) gives v_s * (1 - exp(-0)) = +0.0 because
//     exp(+-0.0) == 1.0 exactly on every backend (see common/simd.hpp);
//   * adding +0.0 (scalar) or fma(g, 0-vector, acc) (SIMD) leaves a
//     non-negative accumulator bitwise unchanged, so skipping those
//     terms preserves every partial sum the dense loop would produce.
// The SIMD kernel therefore skips whole kW-row chunks — never
// compacting active rows into fewer lanes, which would re-shape the
// fixed FMA/reduction tree and change the rounding.

void FastMvm::mvm_times_sparse_scalar(
    std::span<const double> t_in, std::span<const std::uint32_t> active_rows,
    std::span<double> t_out) const {
  // S1 only at the active rows; the expressions match
  // wordline_voltages() and every active row passes its validity
  // predicate by the caller's contract.
  thread_local std::vector<double> v_act;
  v_act.resize(active_rows.size());
  const double tau_gd = params_.tau_gd();
  const double v_s = params_.v_s;
  const bool linear = params_.model == circuits::TransferModel::kLinear;
  for (std::size_t i = 0; i < active_rows.size(); ++i) {
    const double t = t_in[active_rows[i]];
    v_act[i] = linear ? std::min(v_s * t / tau_gd, v_s)
                      : v_s * (1.0 - std::exp(-t / tau_gd));
  }

  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (g_total_[c] <= 0.0) {
      t_out[c] = params_.comparator_delay;
      continue;
    }
    const double* gc = g_cm_.data() + c * rows_pad_;
    // Row-ascending over the active set: the same partial-sum sequence
    // as the dense loop minus its exact-zero terms.
    double weighted = 0.0;
    for (std::size_t i = 0; i < active_rows.size(); ++i) {
      weighted += v_act[i] * gc[active_rows[i]];
    }
    t_out[c] = recover_time(weighted, c, &silent);
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops",
                     active_rows.size() * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::mvm_times_sparse_simd(
    std::span<const double> t_in, std::span<const std::uint32_t> active_rows,
    std::span<double> t_out) const {
  thread_local aligned_vector t_pad;
  thread_local aligned_vector v_wl;
  thread_local aligned_vector w_pad;
  thread_local aligned_vector out_pad;
  thread_local std::vector<std::uint32_t> chunks;
  t_pad.resize(rows_pad_);
  v_wl.resize(rows_pad_);
  w_pad.resize(cols_pad_);
  out_pad.resize(cols_pad_);

  std::copy(t_in.begin(), t_in.end(), t_pad.begin());
  std::fill(t_pad.begin() + rows_, t_pad.end(), kNoSpike);

  // Active kW-row chunks, ascending (active_rows is ascending so the
  // dedup is a running comparison).  Inactive chunks are never staged:
  // their v_wl slots may hold stale data, and no FMA ever reads them.
  chunks.clear();
  for (const std::uint32_t r : active_rows) {
    const std::uint32_t ch = r / static_cast<std::uint32_t>(kW);
    if (chunks.empty() || chunks.back() != ch) chunks.push_back(ch);
  }

  // S1 per active chunk — the wordline_voltages_simd loop body, run
  // only where an event landed.  Lanes of an active chunk that are
  // themselves silent (or padding) still come out exactly 0 through
  // the same validity mask the dense kernel applies.
  {
    const vdouble v_s(params_.v_s);
    const vdouble zero(0.0);
    const vdouble one(1.0);
    const vdouble slice(params_.slice_length);
    const vdouble tau(params_.tau_gd());
    const bool linear = params_.model == circuits::TransferModel::kLinear;
    for (const std::uint32_t ch : chunks) {
      const std::size_t r = static_cast<std::size_t>(ch) * kW;
      const vdouble t = vdouble::load(t_pad.data() + r);
      const auto valid = (t >= zero) & (t <= slice);
      vdouble v;
      if (linear) {
        v = simd::min(v_s * t / tau, v_s);
      } else {
        v = v_s * (one - simd::exp(zero - t / tau));
      }
      v = simd::select(valid, v, zero);
      v.store(v_wl.data() + r);
    }
  }

  // Dot products over active chunks only.  The dense kernel folds all
  // chunks in ascending order; a skipped chunk contributes
  // fma(g, 0, acc) == acc bitwise, so the accumulator states at every
  // active chunk — and the final pairwise reduction — are identical.
  for (std::size_t c0 = 0; c0 < cols_; c0 += 4) {
    const std::size_t nc = std::min<std::size_t>(4, cols_ - c0);
    if (nc == 4) {
      const double* g0 = g_cm_.data() + (c0 + 0) * rows_pad_;
      const double* g1 = g_cm_.data() + (c0 + 1) * rows_pad_;
      const double* g2 = g_cm_.data() + (c0 + 2) * rows_pad_;
      const double* g3 = g_cm_.data() + (c0 + 3) * rows_pad_;
      vdouble a0(0.0), a1(0.0), a2(0.0), a3(0.0);
      for (const std::uint32_t ch : chunks) {
        const std::size_t r = static_cast<std::size_t>(ch) * kW;
        const vdouble v = vdouble::load(v_wl.data() + r);
        a0 = simd::fma(vdouble::load(g0 + r), v, a0);
        a1 = simd::fma(vdouble::load(g1 + r), v, a1);
        a2 = simd::fma(vdouble::load(g2 + r), v, a2);
        a3 = simd::fma(vdouble::load(g3 + r), v, a3);
      }
      w_pad[c0 + 0] = simd::reduce_add(a0);
      w_pad[c0 + 1] = simd::reduce_add(a1);
      w_pad[c0 + 2] = simd::reduce_add(a2);
      w_pad[c0 + 3] = simd::reduce_add(a3);
    } else {
      for (std::size_t j = 0; j < nc; ++j) {
        const double* gc = g_cm_.data() + (c0 + j) * rows_pad_;
        vdouble acc(0.0);
        for (const std::uint32_t ch : chunks) {
          const std::size_t r = static_cast<std::size_t>(ch) * kW;
          acc = simd::fma(vdouble::load(gc + r), vdouble::load(v_wl.data() + r),
                          acc);
        }
        w_pad[c0 + j] = simd::reduce_add(acc);
      }
    }
  }
  std::fill(w_pad.begin() + cols_, w_pad.end(), 0.0);

  std::size_t silent = 0;
  for (std::size_t c = 0; c < cols_pad_; c += kW) {
    recover_block_simd(w_pad.data() + c, c, out_pad.data() + c, &silent);
  }
  std::copy(out_pad.begin(), out_pad.begin() + cols_, t_out.begin());
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.mac_ops",
                     chunks.size() * kW * cols_);
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

// --- public entry points -----------------------------------------------

void FastMvm::mvm_times(std::span<const double> t_in,
                        std::span<double> t_out) const {
  RESIPE_TELEM_SCOPE("resipe_core.fast_mvm.mvm_times");
  RESIPE_PERF_KERNEL("resipe_core.fast_mvm.mvm_times",
                     perf::fast_mvm_cost(rows_, cols_));
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  if (simd::enabled()) {
    mvm_times_simd(t_in, t_out);
  } else {
    mvm_times_scalar(t_in, t_out);
  }
}

void FastMvm::mvm_times_batch(std::span<const double> t_in, std::size_t n,
                              std::span<double> t_out,
                              BatchScratch& scratch) const {
  RESIPE_TELEM_SCOPE("resipe_core.fast_mvm.mvm_times_batch");
  RESIPE_PERF_KERNEL("resipe_core.fast_mvm.mvm_times_batch",
                     perf::fast_mvm_batch_cost(rows_, cols_, n));
  RESIPE_REQUIRE(t_in.size() == n * rows_ && t_out.size() == n * cols_,
                 "FastMvm batch size mismatch");
  if (n == 0) return;
  if (simd::enabled()) {
    mvm_times_batch_simd(t_in, n, t_out, scratch);
  } else {
    mvm_times_batch_scalar(t_in, n, t_out, scratch);
  }
}

void FastMvm::idle_times(std::span<double> t_out) const {
  RESIPE_TELEM_SCOPE("resipe_core.events.idle_times");
  RESIPE_PERF_KERNEL("resipe_core.events.idle_times",
                     perf::event_idle_cost(cols_));
  RESIPE_REQUIRE(t_out.size() == cols_, "FastMvm vector size mismatch");
  std::size_t silent = 0;
  if (simd::enabled()) {
    thread_local aligned_vector w_pad;
    thread_local aligned_vector out_pad;
    w_pad.assign(cols_pad_, 0.0);
    out_pad.resize(cols_pad_);
    for (std::size_t c = 0; c < cols_pad_; c += kW) {
      recover_block_simd(w_pad.data() + c, c, out_pad.data() + c, &silent);
    }
    std::copy(out_pad.begin(), out_pad.begin() + cols_, t_out.begin());
  } else {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (g_total_[c] <= 0.0) {
        t_out[c] = params_.comparator_delay;
        continue;
      }
      // The dense loop's current sum over all-zero wordlines is
      // exactly +0.0 on either kernel path; recover from that.
      t_out[c] = recover_time(0.0, c, &silent);
    }
  }
  RESIPE_TELEM_COUNT("resipe_core.fast_mvm.silent_outputs", silent);
}

void FastMvm::mvm_times_sparse(std::span<const double> t_in,
                               std::span<const std::uint32_t> active_rows,
                               std::span<double> t_out) const {
  RESIPE_TELEM_SCOPE("resipe_core.events.mvm_times_sparse");
  RESIPE_PERF_KERNEL(
      "resipe_core.events.mvm_times_sparse",
      perf::event_mvm_sparse_cost(active_rows.size(), cols_));
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  RESIPE_REQUIRE(active_rows.size() <= rows_ &&
                     (active_rows.empty() || active_rows.back() < rows_),
                 "FastMvm sparse wake set out of range");
  if (simd::enabled()) {
    mvm_times_sparse_simd(t_in, active_rows, t_out);
  } else {
    mvm_times_sparse_scalar(t_in, active_rows, t_out);
  }
}

void FastMvm::ideal_times(std::span<const double> t_in,
                          std::span<double> t_out) const {
  RESIPE_REQUIRE(t_in.size() == rows_ && t_out.size() == cols_,
                 "FastMvm vector size mismatch");
  const double gain = params_.linear_gain();
  for (std::size_t c = 0; c < cols_; ++c) {
    const double* gc = g_cm_.data() + c * rows_pad_;
    double acc = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double t = t_in[r];
      if (!(t >= 0.0) || t == kNoSpike) continue;
      acc += t * gc[r];
    }
    t_out[c] = gain * acc;
  }
}

}  // namespace resipe::resipe_core
