#include "resipe/resipe/bit_slicing.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::resipe_core {

int SlicingConfig::slices() const {
  return (total_bits + bits_per_slice - 1) / bits_per_slice;
}

void SlicingConfig::validate() const {
  RESIPE_REQUIRE(total_bits >= 1 && total_bits <= 16,
                 "total weight bits out of range");
  RESIPE_REQUIRE(bits_per_slice >= 1 && bits_per_slice <= total_bits,
                 "bits per slice out of range");
}

SlicedMatrix::SlicedMatrix(const EngineConfig& config,
                           const SlicingConfig& slicing,
                           std::span<const double> weights,
                           std::span<const double> bias, std::size_t in,
                           std::size_t out, Rng& rng)
    : in_(in), out_(out), bias_(bias.begin(), bias.end()) {
  slicing.validate();
  RESIPE_REQUIRE(weights.size() == in * out, "weight matrix size mismatch");
  RESIPE_REQUIRE(bias.size() == out, "bias size mismatch");

  weight_scale = 0.0;
  for (double w : weights) weight_scale = std::max(weight_scale, std::abs(w));
  if (weight_scale <= 0.0) weight_scale = 1.0;

  levels_per_slice_ = (1 << slicing.bits_per_slice) - 1;
  total_levels_ = (1 << slicing.total_bits) - 1;

  // Quantize the logical weights to total_bits and slice the magnitude
  // into base-2^b digits; the sign rides along with every digit so each
  // slice maps through the ordinary signed machinery.
  const int n_slices = slicing.slices();
  std::vector<std::vector<double>> digit_weights(
      static_cast<std::size_t>(n_slices),
      std::vector<double>(in * out, 0.0));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    long code = std::lround(std::abs(w) / weight_scale *
                            static_cast<double>(total_levels_));
    code = std::min<long>(code, total_levels_);
    const double sign = w < 0.0 ? -1.0 : 1.0;
    for (int s = 0; s < n_slices; ++s) {
      const long digit = code & levels_per_slice_;
      code >>= slicing.bits_per_slice;
      digit_weights[static_cast<std::size_t>(s)][i] =
          sign * static_cast<double>(digit);
    }
  }

  const std::vector<double> zero_bias(out, 0.0);
  EngineConfig slice_config = config;
  // A slice's cells only need 2^b levels — that is the whole point.
  slice_config.device.levels =
      std::max(2, levels_per_slice_ + 1);
  double factor = 1.0;
  for (int s = 0; s < n_slices; ++s) {
    slices_.push_back(std::make_unique<ProgrammedMatrix>(
        slice_config, digit_weights[static_cast<std::size_t>(s)],
        zero_bias, in, out, rng));
    // Every slice normalizes its own digits by their max; the
    // recombination must undo that per-slice scale, which forward()
    // already reports in weight units — so the factor is just the
    // positional power of two.
    slice_weight_.push_back(factor);
    factor *= static_cast<double>(levels_per_slice_ + 1);
  }
}

std::size_t SlicedMatrix::tile_count() const {
  std::size_t n = 0;
  for (const auto& s : slices_) n += s->tile_count();
  return n;
}

void SlicedMatrix::set_input_scale(double scale) {
  for (const auto& s : slices_) s->set_input_scale(scale);
}

void SlicedMatrix::calibrate_alpha(std::span<const double> x_batch,
                                   std::size_t n) {
  for (const auto& s : slices_) s->calibrate_alpha(x_batch, n);
}

void SlicedMatrix::forward(std::span<const double> x,
                           std::span<double> y) const {
  RESIPE_REQUIRE(x.size() == in_ && y.size() == out_,
                 "forward vector size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  std::vector<double> partial(out_, 0.0);
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    slices_[s]->forward(x, partial);
    for (std::size_t j = 0; j < out_; ++j) {
      y[j] += slice_weight_[s] * partial[j];
    }
  }
  const double scale = weight_scale / static_cast<double>(total_levels_);
  for (std::size_t j = 0; j < out_; ++j) {
    y[j] = y[j] * scale + bias_[j];
  }
}

}  // namespace resipe::resipe_core
