#include "resipe/resipe/chip.hpp"

#include <algorithm>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"
#include "resipe/telemetry/telemetry.hpp"
#include "resipe/resipe/design.hpp"
#include "resipe/resipe/pipeline.hpp"

namespace resipe::resipe_core {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace

ChipReport map_network(nn::Sequential& model,
                       const std::vector<std::size_t>& input_shape,
                       const ChipConfig& config) {
  RESIPE_TELEM_SCOPE("resipe_core.chip.map_network");
  RESIPE_REQUIRE(input_shape.size() == 3,
                 "input shape must be {channels, height, width}");
  RESIPE_REQUIRE(config.tile_rows > 0 && config.tile_cols > 0 &&
                     config.cols_per_logical > 0 &&
                     config.conv_replication > 0,
                 "bad chip configuration");

  ChipReport report;
  report.slice_length = config.circuit.slice_length;

  // Per-tile reference numbers from the Table II design model.
  ResipeDesign tile(config.circuit, config.device, config.tile_rows,
                    config.tile_cols);
  const auto tile_point = tile.evaluate();
  report.tile_area = tile_point.area;

  std::size_t c = input_shape[0];
  std::size_t h = input_shape[1];
  std::size_t w = input_shape[2];
  bool flattened = false;
  std::size_t flat = c * h * w;

  double total_mvms = 0.0;
  std::size_t max_slices = 1;

  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    nn::Layer& layer = model.layer(li);
    if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
      RESIPE_REQUIRE(flattened || h * w == 1 || flat == dense->in_features(),
                     "dense layer fan-in mismatch in mapping");
      LayerMapping m;
      m.description = dense->describe();
      m.logical_rows = dense->in_features();
      m.logical_cols = dense->out_features();
      const std::size_t phys_cols =
          m.logical_cols * config.cols_per_logical;
      m.tiles = ceil_div(m.logical_rows, config.tile_rows) *
                ceil_div(phys_cols, config.tile_cols);
      m.mvms_per_input = m.tiles;
      m.slices_per_input = 1;
      report.ops_per_inference +=
          2.0 * static_cast<double>(m.logical_rows * m.logical_cols);
      total_mvms += static_cast<double>(m.mvms_per_input);
      max_slices = std::max(max_slices, m.slices_per_input);
      report.layers.push_back(std::move(m));
      flat = dense->out_features();
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const std::size_t oh = conv->out_size(h);
      const std::size_t ow = conv->out_size(w);
      LayerMapping m;
      m.description = conv->describe();
      m.is_conv = true;
      m.logical_rows =
          conv->in_channels() * conv->kernel() * conv->kernel();
      m.logical_cols = conv->out_channels();
      const std::size_t phys_cols =
          m.logical_cols * config.cols_per_logical;
      const std::size_t group = ceil_div(m.logical_rows, config.tile_rows) *
                                ceil_div(phys_cols, config.tile_cols);
      const std::size_t replication =
          std::min(config.conv_replication, oh * ow);
      m.tiles = group * replication;
      // The replicated groups split the output positions among them.
      m.slices_per_input = ceil_div(oh * ow, replication);
      m.mvms_per_input = group * oh * ow;
      report.ops_per_inference +=
          2.0 * static_cast<double>(m.logical_rows * m.logical_cols) *
          static_cast<double>(oh * ow);
      total_mvms += static_cast<double>(m.mvms_per_input);
      max_slices = std::max(max_slices, m.slices_per_input);
      report.layers.push_back(std::move(m));
      c = conv->out_channels();
      h = oh;
      w = ow;
      flat = c * h * w;
    } else if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&layer)) {
      h /= mp->window();
      w /= mp->window();
      flat = c * h * w;
    } else if (auto* ap = dynamic_cast<nn::AvgPool2d*>(&layer)) {
      h /= ap->window();
      w /= ap->window();
      flat = c * h * w;
    } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
      flattened = true;
      flat = c * h * w;
    }
    // ReLU and other pointwise layers do not change the mapping.
  }
  RESIPE_REQUIRE(!report.layers.empty(), "network has no matrix layers");

  for (const auto& m : report.layers) report.total_tiles += m.tiles;
  report.total_area =
      static_cast<double>(report.total_tiles) * report.tile_area;

  // Timing: the layer pipeline (Fig. 1) with the slowest layer setting
  // the initiation interval.
  const TwoSlicePipeline pipe(report.layers.size(), report.slice_length);
  // A conv layer adds its position count in slices before its output
  // feature map is complete; latency sums each layer's occupancy.
  double latency_slices = 1.0;  // input presentation
  for (const auto& m : report.layers)
    latency_slices += static_cast<double>(m.slices_per_input);
  report.input_latency = latency_slices * report.slice_length;
  report.initiation_interval =
      static_cast<double>(max_slices) * report.slice_length;
  report.throughput = 1.0 / report.initiation_interval;

  // Power: every tile MVM costs the Table II per-MVM energy; at full
  // rate the chip starts total_mvms MVMs per initiation interval.
  report.power = tile_point.energy_per_mvm * total_mvms /
                 report.initiation_interval;
  report.power_efficiency =
      report.power > 0.0
          ? report.ops_per_inference * report.throughput / report.power
          : 0.0;
  return report;
}

std::string ChipReport::render() const {
  TextTable t({"Layer", "Fan-in x out", "Tiles", "MVMs/input",
               "Slices/input"});
  for (const auto& m : layers) {
    t.add_row({m.description,
               std::to_string(m.logical_rows) + " x " +
                   std::to_string(m.logical_cols),
               std::to_string(m.tiles), std::to_string(m.mvms_per_input),
               std::to_string(m.slices_per_input)});
  }
  std::ostringstream os;
  os << t.str() << "\n";
  os << "tiles              : " << total_tiles << " ("
     << format_fixed(total_area * 1e6, 4) << " mm2)\n";
  os << "input latency      : " << format_si(input_latency, "s") << "\n";
  os << "initiation interval: " << format_si(initiation_interval, "s")
     << "\n";
  os << "throughput         : " << format_si(throughput, "inferences/s")
     << "\n";
  os << "ops per inference  : " << format_si(ops_per_inference, "OP")
     << "\n";
  os << "power @ full rate  : " << format_si(power, "W") << "\n";
  os << "power efficiency   : " << format_si(power_efficiency, "OPS/W")
     << "\n";
  return os.str();
}

}  // namespace resipe::resipe_core
