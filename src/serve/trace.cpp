#include "resipe/serve/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/trace.hpp"

namespace resipe::serve {

namespace {

/// Virtual seconds -> trace nanoseconds (the Chrome export's clock).
std::uint64_t virtual_ns(double t_s) {
  return t_s <= 0.0 ? 0 : static_cast<std::uint64_t>(t_s * 1e9);
}

/// Is this event a request's terminal outcome?
bool terminal(ServeEventKind k) {
  return k == ServeEventKind::kComplete || k == ServeEventKind::kShed;
}

}  // namespace

const char* to_string(ServeEventKind k) {
  switch (k) {
    case ServeEventKind::kAdmit: return "admit";
    case ServeEventKind::kShed: return "shed";
    case ServeEventKind::kBatchForm: return "batch_form";
    case ServeEventKind::kDispatch: return "dispatch";
    case ServeEventKind::kAttemptDone: return "attempt_done";
    case ServeEventKind::kRetrySchedule: return "retry_schedule";
    case ServeEventKind::kComplete: return "complete";
    case ServeEventKind::kProbe: return "probe";
    case ServeEventKind::kQuarantine: return "quarantine";
    case ServeEventKind::kReadmit: return "readmit";
  }
  return "unknown";
}

const char* to_string(BatchFillReason r) {
  switch (r) {
    case BatchFillReason::kFull: return "full";
    case BatchFillReason::kWindowExpired: return "window_expired";
    case BatchFillReason::kWorkConserving: return "work_conserving";
  }
  return "unknown";
}

EventJournal::EventJournal(std::size_t capacity) {
  RESIPE_REQUIRE(capacity > 0, "event journal capacity must be positive");
  slots_.resize(capacity);
}

void EventJournal::record(ServeEvent event) noexcept {
  const std::uint64_t slot =
      next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.seq = slot;
  slots_[slot] = event;
#if defined(__GNUC__) || defined(__clang__)
  // The buffer is written once, front to back, and each slot lands on a
  // cold cache line — the write stall, not the bookkeeping, dominates
  // the per-event cost.  Prefetch a few slots ahead (for write) so the
  // line is in flight before the scheduler gets back here.
  if (slot + 8 < slots_.size()) {
    __builtin_prefetch(&slots_[slot + 8], 1, 0);
  }
#endif
}

std::size_t EventJournal::size() const noexcept {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(n, slots_.size()));
}

std::size_t EventJournal::dropped() const noexcept {
  return static_cast<std::size_t>(
      dropped_.load(std::memory_order_relaxed));
}

std::vector<ServeEvent> EventJournal::events() const {
  return {slots_.begin(),
          slots_.begin() + static_cast<std::ptrdiff_t>(size())};
}

void EventJournal::clear() noexcept {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::map<std::uint64_t, RequestTrace> assemble_traces(
    const std::vector<ServeEvent>& events) {
  std::map<std::uint64_t, RequestTrace> traces;
  for (const ServeEvent& e : events) {
    if (e.request == kNoId) continue;  // chip-level health events
    RequestTrace& t = traces[e.request];
    if (t.events.empty()) {
      t.id = e.request;
      t.tenant = e.tenant;
      t.first_time = e.time;
    }
    switch (e.kind) {
      case ServeEventKind::kAdmit:
        t.admits += 1;
        break;
      case ServeEventKind::kAttemptDone:
        t.attempts += 1;
        break;
      case ServeEventKind::kRetrySchedule:
        t.retries_scheduled += 1;
        break;
      case ServeEventKind::kComplete:
        t.terminal_seen = true;
        t.served = true;
        t.degraded = e.code != 0;
        t.terminal_time = e.time;
        break;
      case ServeEventKind::kShed:
        t.terminal_seen = true;
        t.served = false;
        t.reason = static_cast<RejectReason>(e.code);
        t.terminal_time = e.time;
        break;
      default:
        break;
    }
    t.events.push_back(e);
  }
  return traces;
}

std::string TraceAudit::render() const {
  std::ostringstream os;
  os << "trace audit: " << requests << " request(s), " << events
     << " event(s), " << terminals << " terminal(s), " << dropped
     << " dropped — " << (ok() ? "OK" : "VIOLATIONS") << "\n";
  for (const std::string& issue : issues) os << "  ! " << issue << "\n";
  return os.str();
}

TraceAudit audit_trace(const EventJournal& journal,
                       const ServingStats& stats) {
  TraceAudit audit;
  const std::vector<ServeEvent> events = journal.events();
  audit.events = events.size();
  audit.dropped = journal.dropped();

  const auto complain = [&audit](const std::string& what) {
    audit.issues.push_back(what);
  };

  if (audit.dropped > 0) {
    std::ostringstream os;
    os << "journal dropped " << audit.dropped
       << " event(s): conservation cannot be proven on a lossy journal "
          "(raise the capacity)";
    complain(os.str());
    return audit;  // every count below would be noise
  }

  // --- per-request causal chain + exactly-one-terminal.
  const auto traces = assemble_traces(events);
  audit.requests = traces.size();
  std::size_t complete_ok = 0, complete_degraded = 0;
  std::size_t shed_queue_full = 0, shed_quarantine = 0;
  std::size_t shed_deadline_fresh = 0, shed_deadline_late = 0;
  std::size_t attempts_total = 0;
  for (const auto& [id, t] : traces) {
    std::size_t terminals_here = 0;
    std::size_t attempts_seen = 0;
    bool admitted = false;
    for (const ServeEvent& e : t.events) {
      if (terminal(e.kind)) ++terminals_here;
      switch (e.kind) {
        case ServeEventKind::kAdmit:
          admitted = true;
          break;
        case ServeEventKind::kDispatch:
          if (!admitted) {
            std::ostringstream os;
            os << "request " << id << ": dispatched without admission";
            complain(os.str());
          }
          if (e.attempt != attempts_seen) {
            std::ostringstream os;
            os << "request " << id << ": dispatch attempt " << e.attempt
               << " but " << attempts_seen << " attempt(s) completed";
            complain(os.str());
          }
          break;
        case ServeEventKind::kAttemptDone:
          ++attempts_seen;
          if (e.attempt != attempts_seen) {
            std::ostringstream os;
            os << "request " << id << ": attempt_done numbered "
               << e.attempt << ", expected " << attempts_seen;
            complain(os.str());
          }
          break;
        default:
          break;
      }
      if (terminals_here > 0 && !terminal(e.kind)) {
        std::ostringstream os;
        os << "request " << id << ": event " << to_string(e.kind)
           << " after its terminal";
        complain(os.str());
      }
    }
    audit.terminals += terminals_here;
    attempts_total += attempts_seen;
    if (terminals_here != 1) {
      std::ostringstream os;
      os << "request " << id << ": " << terminals_here
         << " terminal event(s), want exactly 1";
      complain(os.str());
      continue;
    }
    const ServeEvent& last = t.events.back();
    if (last.kind == ServeEventKind::kComplete) {
      (last.code == 0 ? complete_ok : complete_degraded) += 1;
    } else {
      // Mirror summarize()'s bucketing exactly: a deadline shed with
      // attempts consumed is a late completion.
      const auto reason = static_cast<RejectReason>(last.code);
      if (reason == RejectReason::kQueueFull) {
        shed_queue_full += 1;
      } else if (reason == RejectReason::kAllChipsQuarantined) {
        shed_quarantine += 1;
      } else if (last.attempt > 0) {
        shed_deadline_late += 1;
      } else {
        shed_deadline_fresh += 1;
      }
    }
  }

  // --- exact reconciliation with the ServingStats buckets.
  const auto reconcile = [&complain](const char* what, std::size_t journal_n,
                                     std::size_t stats_n) {
    if (journal_n == stats_n) return;
    std::ostringstream os;
    os << what << ": journal says " << journal_n << ", stats say "
       << stats_n;
    complain(os.str());
  };
  reconcile("submitted", audit.requests, stats.submitted);
  reconcile("served_ok", complete_ok, stats.served_ok);
  reconcile("served_degraded", complete_degraded, stats.served_degraded);
  reconcile("shed_queue_full", shed_queue_full, stats.shed_queue_full);
  reconcile("shed_deadline", shed_deadline_fresh, stats.shed_deadline);
  reconcile("shed_quarantine", shed_quarantine, stats.shed_quarantine);
  reconcile("late_completions", shed_deadline_late, stats.late_completions);

  std::size_t batch_forms = 0;
  for (const ServeEvent& e : events) {
    if (e.kind == ServeEventKind::kBatchForm) ++batch_forms;
  }
  reconcile("batches", batch_forms, stats.batches);

  // Attempts identity: total attempts minus one service per request
  // that produced a (possibly late) answer equals the retry count the
  // stats derive from the responses.
  const std::size_t servings =
      complete_ok + complete_degraded + shed_deadline_late;
  if (attempts_total < servings) {
    complain("fewer attempts than served requests — impossible chain");
  } else {
    reconcile("retries (attempts identity)", attempts_total - servings,
              stats.retries);
  }
  return audit;
}

namespace {

/// Minimal JSON writer for one event line.  Fields that do not apply
/// (kNoId request/batch, kNoChip) are omitted, so every present key is
/// meaningful.
void write_event_json(std::ostream& os, const ServeEvent& e) {
  char buf[64];
  os << "{\"seq\":" << e.seq;
  std::snprintf(buf, sizeof buf, "%.9f", e.time);
  os << ",\"t\":" << buf;
  os << ",\"kind\":\"" << to_string(e.kind) << '"';
  if (e.request != kNoId) {
    os << ",\"request\":" << e.request << ",\"tenant\":" << e.tenant;
  }
  if (e.batch != kNoId) os << ",\"batch\":" << e.batch;
  if (e.chip != kNoChip) os << ",\"chip\":" << e.chip;
  os << ",\"attempt\":" << e.attempt;
  switch (e.kind) {
    case ServeEventKind::kShed:
      os << ",\"reason\":\""
         << to_string(static_cast<RejectReason>(e.code)) << '"';
      break;
    case ServeEventKind::kBatchForm:
      os << ",\"fill\":\""
         << to_string(static_cast<BatchFillReason>(e.code))
         << "\",\"size\":" << static_cast<std::size_t>(e.value);
      break;
    case ServeEventKind::kComplete:
      os << ",\"status\":\"" << (e.code == 0 ? "ok" : "degraded")
         << "\",\"degraded_outputs\":" << static_cast<std::size_t>(e.value);
      break;
    case ServeEventKind::kProbe:
      os << ",\"verdict\":\"" << (e.code == 0 ? "clean" : "fail") << '"';
      std::snprintf(buf, sizeof buf, "%.6f", e.value);
      os << ",\"mismatch\":" << buf;
      std::snprintf(buf, sizeof buf, "%.9g", e.aux);
      os << ",\"rmse\":" << buf;
      break;
    case ServeEventKind::kRetrySchedule:
      std::snprintf(buf, sizeof buf, "%.9g", e.value);
      os << ",\"backoff_s\":" << buf;
      std::snprintf(buf, sizeof buf, "%.9g", e.aux);
      os << ",\"jitter\":" << buf;
      break;
    case ServeEventKind::kAdmit:
      os << ",\"queue_depth\":" << static_cast<std::size_t>(e.value);
      break;
    case ServeEventKind::kAttemptDone:
      os << ",\"degraded_outputs\":" << static_cast<std::size_t>(e.value);
      break;
    default:
      break;
  }
  os << "}\n";
}

}  // namespace

void write_events_ndjson(const EventJournal& journal,
                         const ServingStats& stats, std::ostream& os) {
  const std::vector<ServeEvent> events = journal.events();
  os << "{\"schema\":\"resipe.serve.trace/1\",\"events\":" << events.size()
     << ",\"dropped\":" << journal.dropped() << "}\n";
  for (const ServeEvent& e : events) write_event_json(os, e);
  os << "{\"summary\":{\"submitted\":" << stats.submitted
     << ",\"served_ok\":" << stats.served_ok
     << ",\"served_degraded\":" << stats.served_degraded
     << ",\"shed_queue_full\":" << stats.shed_queue_full
     << ",\"shed_deadline\":" << stats.shed_deadline
     << ",\"shed_quarantine\":" << stats.shed_quarantine
     << ",\"late_completions\":" << stats.late_completions
     << ",\"retries\":" << stats.retries
     << ",\"batches\":" << stats.batches
     << ",\"dropped\":" << journal.dropped() << "}}\n";
}

void write_events_ndjson_file(const EventJournal& journal,
                              const ServingStats& stats,
                              const std::string& path) {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open events file " << path);
  write_events_ndjson(journal, stats, os);
  RESIPE_REQUIRE(os.good(), "failed writing events file " << path);
}

void export_chrome_trace(const EventJournal& journal,
                         telemetry::TraceSession& session) {
  using telemetry::TraceEvent;
  const std::vector<ServeEvent> events = journal.events();

  // --- lane labels.  Chips present in the journal get their own lane.
  session.set_thread_name(kServePid, kSchedulerLane, "serve: scheduler queue");
  session.set_thread_name(kServePid, kHealthLane, "serve: health probes");
  for (const ServeEvent& e : events) {
    if (e.chip != kNoChip) {
      session.set_thread_name(
          kServePid,
          kChipLaneBase + static_cast<std::uint32_t>(e.chip),
          "serve: chip " + std::to_string(e.chip));
    }
  }

  const auto lane_for_chip = [](std::size_t chip) {
    return kChipLaneBase + static_cast<std::uint32_t>(chip);
  };
  const auto emit = [&session](TraceEvent e) {
    e.pid = kServePid;
    session.add_event(std::move(e));
  };
  const auto instant = [&emit](const std::string& name, double t,
                               std::uint32_t tid, std::string args) {
    TraceEvent e;
    e.name = name;
    e.phase = 'i';
    e.ts_ns = virtual_ns(t);
    e.tid = tid;
    e.args_json = std::move(args);
    emit(std::move(e));
  };
  const auto flow = [&emit](char phase, std::uint64_t id, double t,
                            std::uint32_t tid) {
    TraceEvent e;
    e.name = "serve.request";
    e.phase = phase;
    e.flow_id = id;
    e.ts_ns = virtual_ns(t);
    e.tid = tid;
    emit(std::move(e));
  };

  // --- batch service spans on chip lanes: kBatchForm opens the span,
  // the batch's first kAttemptDone (same batch id) closes it.
  std::map<std::uint64_t, const ServeEvent*> batch_open;
  std::map<std::uint64_t, double> batch_close;
  for (const ServeEvent& e : events) {
    if (e.kind == ServeEventKind::kBatchForm) {
      batch_open[e.batch] = &e;
    } else if (e.kind == ServeEventKind::kAttemptDone &&
               e.batch != kNoId) {
      batch_close.emplace(e.batch, e.time);  // first completion wins
    }
  }
  for (const auto& [batch_id, open] : batch_open) {
    const auto closed = batch_close.find(batch_id);
    if (closed == batch_close.end()) continue;
    TraceEvent span;
    span.name = "serve.batch";
    span.phase = 'X';
    span.ts_ns = virtual_ns(open->time);
    span.dur_ns = virtual_ns(closed->second) - span.ts_ns;
    span.tid = lane_for_chip(open->chip);
    std::ostringstream args;
    args << "{\"batch\":" << batch_id << ",\"size\":"
         << static_cast<std::size_t>(open->value) << ",\"fill\":\""
         << to_string(static_cast<BatchFillReason>(open->code)) << "\"}";
    span.args_json = args.str();
    emit(std::move(span));
  }

  // --- per-request queue-wait spans + flow arrows, scheduler-lane
  // instants for sheds, health-lane events for probes/transitions.
  const auto traces = assemble_traces(events);
  for (const auto& [id, t] : traces) {
    double admit_time = -1.0;
    bool flow_started = false;
    for (const ServeEvent& e : t.events) {
      switch (e.kind) {
        case ServeEventKind::kAdmit:
          admit_time = e.time;
          if (!flow_started) {
            flow_started = true;
            flow('s', id, e.time, kSchedulerLane);
          }
          break;
        case ServeEventKind::kDispatch: {
          if (admit_time >= 0.0) {
            TraceEvent wait;
            wait.name = "serve.queue_wait";
            wait.phase = 'X';
            wait.ts_ns = virtual_ns(admit_time);
            wait.dur_ns = virtual_ns(e.time) - wait.ts_ns;
            wait.tid = kSchedulerLane;
            std::ostringstream args;
            args << "{\"request\":" << id << ",\"attempt\":" << e.attempt
                 << "}";
            wait.args_json = args.str();
            emit(std::move(wait));
            admit_time = -1.0;
          }
          if (flow_started && e.chip != kNoChip) {
            flow('t', id, e.time, lane_for_chip(e.chip));
          }
          break;
        }
        case ServeEventKind::kComplete:
          if (flow_started) {
            flow('f', id, e.time,
                 e.chip != kNoChip ? lane_for_chip(e.chip)
                                   : kSchedulerLane);
          }
          break;
        case ServeEventKind::kShed: {
          std::ostringstream args;
          args << "{\"request\":" << id << ",\"reason\":\""
               << to_string(static_cast<RejectReason>(e.code)) << "\"}";
          instant("serve.shed", e.time, kSchedulerLane, args.str());
          if (flow_started) flow('f', id, e.time, kSchedulerLane);
          break;
        }
        case ServeEventKind::kRetrySchedule: {
          std::ostringstream args;
          args << "{\"request\":" << id << ",\"backoff_s\":" << e.value
               << "}";
          instant("serve.retry", e.time, kSchedulerLane, args.str());
          break;
        }
        default:
          break;
      }
    }
  }

  double queue_depth_last = -1.0;
  for (const ServeEvent& e : events) {
    switch (e.kind) {
      case ServeEventKind::kAdmit:
        if (e.value != queue_depth_last) {
          queue_depth_last = e.value;
          TraceEvent c;
          c.name = "serve.queue_depth";
          c.phase = 'C';
          c.ts_ns = virtual_ns(e.time);
          c.tid = kSchedulerLane;
          c.value = e.value;
          emit(std::move(c));
        }
        break;
      case ServeEventKind::kProbe:
        if (e.code != 0) {
          std::ostringstream args;
          args << "{\"chip\":" << e.chip << ",\"mismatch\":" << e.value
               << ",\"rmse\":" << e.aux << "}";
          instant("serve.probe_fail", e.time, kHealthLane, args.str());
        }
        break;
      case ServeEventKind::kQuarantine: {
        std::ostringstream args;
        args << "{\"chip\":" << e.chip << "}";
        instant("serve.quarantine", e.time, kHealthLane, args.str());
        break;
      }
      case ServeEventKind::kReadmit: {
        std::ostringstream args;
        args << "{\"chip\":" << e.chip << "}";
        instant("serve.readmit", e.time, kHealthLane, args.str());
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace resipe::serve
