#include "resipe/serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/common/table.hpp"
#include "resipe/serve/trace.hpp"
#include "resipe/telemetry/metrics.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::serve {

namespace {

// Event kinds, in tie-break priority order at equal virtual time:
// completions free chips before anything else wants them, retries
// re-enter the queue before fresh arrivals, and batch timeouts run
// last so a same-instant arrival can still top the batch up.
enum EventKind : int {
  kCompletion = 0,
  kRetry = 1,
  kArrival = 2,
  kBatchTimeout = 3,
};

struct Event {
  double time = 0.0;
  int kind = 0;
  std::uint64_t seq = 0;   // push order; makes the order a total one
  std::size_t index = 0;   // payload index (per kind)

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return seq > other.seq;
  }
};

/// A request waiting in (or re-entering) the admission queue.
struct Waiting {
  Request req;
  double deadline = 0.0;      // absolute
  double admit_time = 0.0;    // entered the queue (arrival or retry)
  std::size_t attempts = 0;   // inference attempts already consumed
  std::size_t exclude = kNoChip;  // replica that served a faulty attempt
};

/// A dispatched batch in flight on one chip.
struct Batch {
  std::size_t chip = kNoChip;
  double completion = 0.0;
  std::vector<Waiting> items;
};

}  // namespace

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kDeadlineExpired:
      return "deadline_expired";
    case RejectReason::kAllChipsQuarantined:
      return "all_chips_quarantined";
    default:
      return "none";
  }
}

const char* to_string(Response::Status s) {
  switch (s) {
    case Response::Status::kOk:
      return "ok";
    case Response::Status::kDegraded:
      return "degraded";
    default:
      return "rejected";
  }
}

double latency_percentile(const std::vector<Response>& responses, double q) {
  std::vector<double> lat;
  lat.reserve(responses.size());
  for (const Response& r : responses) {
    if (r.served()) lat.push_back(r.latency());
  }
  std::sort(lat.begin(), lat.end());
  return telemetry::percentile_sorted(lat, q);
}

ServingStats summarize(const std::vector<Response>& responses) {
  ServingStats s;
  s.submitted = responses.size();
  double first_arrival = 0.0;
  double last_completion = 0.0;
  bool any = false;
  double max_latency = 0.0;
  std::size_t attempts_total = 0;
  for (const Response& r : responses) {
    if (!any || r.arrival < first_arrival) first_arrival = r.arrival;
    if (!any || r.completion > last_completion) {
      last_completion = r.completion;
    }
    any = true;
    attempts_total += r.attempts;
    switch (r.status) {
      case Response::Status::kOk:
        s.served_ok += 1;
        break;
      case Response::Status::kDegraded:
        s.served_degraded += 1;
        break;
      case Response::Status::kRejected:
        if (r.reason == RejectReason::kQueueFull) {
          s.shed_queue_full += 1;
        } else if (r.reason == RejectReason::kAllChipsQuarantined) {
          s.shed_quarantine += 1;
        } else if (r.attempts > 0) {
          s.late_completions += 1;  // served, but past the deadline
        } else {
          s.shed_deadline += 1;
        }
        break;
    }
    if (r.served()) max_latency = std::max(max_latency, r.latency());
  }
  const std::size_t served = s.served_ok + s.served_degraded;
  s.retries = attempts_total >= served + s.late_completions
                  ? attempts_total - served - s.late_completions
                  : 0;
  s.span = any ? last_completion - first_arrival : 0.0;
  s.throughput =
      s.span > 0.0 ? static_cast<double>(served) / s.span : 0.0;
  s.p50 = latency_percentile(responses, 0.50);
  s.p95 = latency_percentile(responses, 0.95);
  s.p99 = latency_percentile(responses, 0.99);
  s.max_latency = max_latency;
  return s;
}

std::string ServingStats::render() const {
  TextTable t({"metric", "value"});
  const auto count = [&t](const char* k, std::size_t v) {
    t.add_row({k, std::to_string(v)});
  };
  count("submitted", submitted);
  count("served ok", served_ok);
  count("served degraded", served_degraded);
  count("shed: queue full", shed_queue_full);
  count("shed: deadline", shed_deadline);
  count("shed: quarantined pool", shed_quarantine);
  count("late completions", late_completions);
  count("retries", retries);
  count("batches", batches);
  t.add_row({"mean batch", format_fixed(mean_batch, 2)});
  t.add_row({"shed rate", format_percent(shed_rate())});
  t.add_row({"throughput", format_si(throughput, "req/s")});
  t.add_row({"latency p50", format_si(p50, "s")});
  t.add_row({"latency p95", format_si(p95, "s")});
  t.add_row({"latency p99", format_si(p99, "s")});
  t.add_row({"latency max", format_si(max_latency, "s")});
  return t.str();
}

Scheduler::Scheduler(ChipPool& pool, const ServeConfig& config)
    : pool_(pool), config_(config) {
  config_.validate();
}

void Scheduler::submit(Request request) {
  RESIPE_REQUIRE(request.input.size() == pool_.input_size(),
                 "request " << request.id << " input size "
                            << request.input.size()
                            << " != pool input size " << pool_.input_size());
  RESIPE_REQUIRE(std::isfinite(request.arrival) && request.arrival >= 0.0,
                 "request " << request.id << " has a bad arrival time "
                            << request.arrival);
  pending_.push_back(std::move(request));
}

std::vector<Response> Scheduler::run() {
  RESIPE_TELEM_SCOPE("serve.scheduler.run");

  std::vector<Request> trace = std::move(pending_);
  pending_.clear();
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  std::uint64_t seq = 0;
  std::vector<Batch> batches;
  std::vector<Waiting> retries;
  std::deque<Waiting> queue;
  std::vector<bool> busy(pool_.size(), false);
  std::vector<Response> responses;
  responses.reserve(trace.size());
  std::size_t dispatched_items = 0;
  double next_probe = config_.health.canary_period;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    pq.push(Event{trace[i].arrival, kArrival, seq++, i});
  }

  // Lifecycle journal hook: one null check per edge when detached, one
  // slot write when attached.  Never steers scheduling.
  const auto journal = [this](const ServeEvent& e) {
    if (journal_ != nullptr) journal_->record(e);
  };
  // Pre-filled request-scoped event; the call site sets the payload and
  // hands it to `journal`.
  const auto request_event = [](ServeEventKind kind, double time,
                                const Waiting& w) {
    ServeEvent e;
    e.time = time;
    e.kind = kind;
    e.request = w.req.id;
    e.tenant = w.req.tenant;
    e.attempt = w.attempts;
    return e;
  };

  const auto reject = [&](Waiting w, RejectReason reason, double now) {
    if (journal_ != nullptr) {
      ServeEvent e = request_event(ServeEventKind::kShed, now, w);
      e.code = static_cast<int>(reason);
      journal(e);
    }
    Response r;
    r.id = w.req.id;
    r.tag = w.req.tag;
    r.tenant = w.req.tenant;
    r.status = Response::Status::kRejected;
    r.reason = reason;
    r.arrival = w.req.arrival;
    r.completion = now;
    r.attempts = w.attempts;
    responses.push_back(std::move(r));
  };

  // Sheds queued requests whose deadline has passed.
  const auto shed_expired = [&](double now) {
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->deadline <= now) {
        RESIPE_TELEM_COUNT("serve.scheduler.shed_deadline", 1);
        reject(std::move(*it), RejectReason::kDeadlineExpired, now);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Lowest-index free healthy chip, preferring one != exclude.
  const auto free_chip = [&](std::size_t exclude) {
    std::size_t fallback = pool_.size();
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (busy[i] ||
          pool_.status(i).state != ChipState::kHealthy) {
        continue;
      }
      if (i == exclude) {
        fallback = i;
        continue;
      }
      return i;
    }
    return fallback;
  };

  // Dispatches as many batches as chips and policy allow at `now`.
  // `work_conserving` relaxes the batch-window wait (a freed chip takes
  // whatever is queued rather than idling).
  const auto try_dispatch = [&](double now, bool work_conserving) {
    shed_expired(now);
    while (!queue.empty()) {
      if (pool_.healthy_count() == 0) {
        // Load-shed instead of deadlocking: with every replica
        // quarantined there is no bounded-latency path to service.
        while (!queue.empty()) {
          RESIPE_TELEM_COUNT("serve.scheduler.shed_quarantine", 1);
          reject(std::move(queue.front()),
                 RejectReason::kAllChipsQuarantined, now);
          queue.pop_front();
        }
        return;
      }
      const bool full = queue.size() >= config_.batch_max;
      const bool window_expired =
          now >= queue.front().admit_time + config_.batch_window;
      const bool ripe = full || work_conserving || window_expired;
      if (!ripe) return;
      const std::size_t chip = free_chip(queue.front().exclude);
      if (chip >= pool_.size()) return;  // all healthy chips busy
      Batch batch;
      batch.chip = chip;
      const std::size_t n =
          std::min<std::size_t>(config_.batch_max, queue.size());
      for (std::size_t i = 0; i < n; ++i) {
        batch.items.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      batch.completion = now + pool_.service_time(chip, n);
      busy[chip] = true;
      dispatched_items += n;
      stats_.batches += 1;
      RESIPE_TELEM_COUNT("serve.scheduler.batches", 1);
      RESIPE_TELEM_OBSERVE("serve.scheduler.batch_size",
                           static_cast<double>(n), 1.0, 2.0, 4.0, 8.0,
                           16.0, 32.0);
      const std::uint64_t batch_id = batches.size();
      if (journal_ != nullptr) {
        ServeEvent form;
        form.time = now;
        form.kind = ServeEventKind::kBatchForm;
        form.batch = batch_id;
        form.chip = chip;
        form.code = static_cast<int>(full ? BatchFillReason::kFull
                                     : window_expired
                                         ? BatchFillReason::kWindowExpired
                                         : BatchFillReason::kWorkConserving);
        form.value = static_cast<double>(n);
        journal(form);
        for (const Waiting& w : batch.items) {
          ServeEvent d = request_event(ServeEventKind::kDispatch, now, w);
          d.batch = batch_id;
          d.chip = chip;
          journal(d);
        }
      }
      batches.push_back(std::move(batch));
      pq.push(Event{batches.back().completion, kCompletion, seq++,
                    batches.size() - 1});
    }
  };

  // Admission control shared by arrivals and retry re-entries.
  const auto admit = [&](Waiting w, double now) {
    if (w.deadline <= now) {
      RESIPE_TELEM_COUNT("serve.scheduler.shed_deadline", 1);
      reject(std::move(w), RejectReason::kDeadlineExpired, now);
      return;
    }
    if (pool_.healthy_count() == 0) {
      RESIPE_TELEM_COUNT("serve.scheduler.shed_quarantine", 1);
      reject(std::move(w), RejectReason::kAllChipsQuarantined, now);
      return;
    }
    if (queue.size() >= config_.queue_capacity) {
      RESIPE_TELEM_COUNT("serve.scheduler.shed_queue_full", 1);
      reject(std::move(w), RejectReason::kQueueFull, now);
      return;
    }
    w.admit_time = now;
    if (journal_ != nullptr) {
      ServeEvent e = request_event(ServeEventKind::kAdmit, now, w);
      e.value = static_cast<double>(queue.size() + 1);  // depth after
      journal(e);
    }
    queue.push_back(std::move(w));
    RESIPE_TELEM_COUNT("serve.scheduler.admitted", 1);
    RESIPE_TELEM_OBSERVE("serve.scheduler.queue_depth",
                         static_cast<double>(queue.size()), 1.0, 4.0,
                         16.0, 64.0, 256.0);
    if (config_.batch_window > 0.0) {
      pq.push(Event{now + config_.batch_window, kBatchTimeout, seq++, 0});
    }
    try_dispatch(now, /*work_conserving=*/config_.batch_window == 0.0);
  };

  stats_ = ServingStats{};

  while (!pq.empty()) {
    const Event ev = pq.top();
    // Health probes interleave at their virtual period, running before
    // any same-instant event; probing stops once the trace drains.
    while (next_probe <= ev.time) {
      const double t = next_probe;
      next_probe += config_.health.canary_period;
      // Snapshot per-chip health so the probe verdicts and state
      // transitions can be journaled by diffing (pool internals stay
      // untouched; skipped entirely when no journal is attached).
      std::vector<std::pair<ChipState, std::size_t>> before;
      if (journal_ != nullptr) {
        before.reserve(pool_.size());
        for (std::size_t c = 0; c < pool_.size(); ++c) {
          const ChipStatus& s = pool_.status(c);
          before.emplace_back(s.state, s.consecutive_failed);
        }
      }
      const std::size_t transitions = pool_.run_probe_round();
      if (journal_ != nullptr) {
        for (std::size_t c = 0; c < pool_.size(); ++c) {
          const ChipStatus& s = pool_.status(c);
          ServeEvent probe;
          probe.time = t;
          probe.kind = ServeEventKind::kProbe;
          probe.chip = c;
          // A probe failed iff its consecutive-failure streak grew.
          probe.code = s.consecutive_failed > before[c].second ? 1 : 0;
          probe.value = s.last_canary_mismatch;
          probe.aux = s.last_canary_rmse;
          journal(probe);
          if (s.state != before[c].first) {
            ServeEvent tr;
            tr.time = t;
            tr.kind = s.state == ChipState::kQuarantined
                          ? ServeEventKind::kQuarantine
                          : ServeEventKind::kReadmit;
            tr.chip = c;
            journal(tr);
          }
        }
      }
      if (transitions > 0) {
        // Readmitted chips pick up queued work; an all-quarantined
        // pool sheds the queue instead of deadlocking.
        try_dispatch(t, false);
      }
    }
    pq.pop();

    switch (ev.kind) {
      case kArrival: {
        Waiting w;
        w.req = std::move(trace[ev.index]);
        w.deadline = w.req.deadline > 0.0
                         ? w.req.deadline
                         : w.req.arrival + config_.default_deadline;
        admit(std::move(w), ev.time);
        break;
      }
      case kBatchTimeout: {
        try_dispatch(ev.time, false);
        break;
      }
      case kRetry: {
        Waiting w = std::move(retries[ev.index]);
        admit(std::move(w), ev.time);
        break;
      }
      case kCompletion: {
        Batch& batch = batches[ev.index];
        busy[batch.chip] = false;
        const std::size_t n = batch.items.size();
        std::vector<std::size_t> shape = {n};
        const auto& in_shape = pool_.input_shape();
        shape.insert(shape.end(), in_shape.begin(), in_shape.end());
        nn::Tensor inputs(shape);
        for (std::size_t i = 0; i < n; ++i) {
          const auto& x = batch.items[i].req.input;
          std::copy(x.begin(), x.end(),
                    inputs.data().begin() +
                        static_cast<std::ptrdiff_t>(i * x.size()));
        }
        const nn::Tensor logits = pool_.infer(batch.chip, inputs);
        const std::size_t degraded = pool_.degraded_outputs(batch.chip);
        const std::size_t out = logits.size() / n;
        for (std::size_t i = 0; i < n; ++i) {
          Waiting& w = batch.items[i];
          w.attempts += 1;
          if (journal_ != nullptr) {
            ServeEvent a =
                request_event(ServeEventKind::kAttemptDone, ev.time, w);
            a.batch = ev.index;
            a.chip = batch.chip;
            a.value = static_cast<double>(degraded);
            journal(a);
          }
          if (ev.time > w.deadline) {
            // Served, but too late to be useful: drop the logits and
            // report the miss explicitly.
            RESIPE_TELEM_COUNT("serve.scheduler.late_completions", 1);
            reject(std::move(w), RejectReason::kDeadlineExpired, ev.time);
            continue;
          }
          if (degraded > 0 &&
              w.attempts <= static_cast<std::size_t>(config_.retry_max)) {
            // Fault-flagged outputs: back off and fail over.
            const std::size_t attempt = w.attempts;
            double delay = config_.backoff_base;
            for (std::size_t k = 1; k < attempt; ++k) {
              delay = std::min(delay * config_.backoff_multiplier,
                               config_.backoff_max);
            }
            delay = std::min(delay, config_.backoff_max);
            Rng jitter_rng(
                hash_seed(config_.seed, w.req.id, attempt));
            const double jitter = jitter_rng.uniform();
            delay *= 1.0 + config_.backoff_jitter * jitter;
            w.exclude = batch.chip;
            RESIPE_TELEM_COUNT("serve.scheduler.retries", 1);
            if (journal_ != nullptr) {
              ServeEvent rs =
                  request_event(ServeEventKind::kRetrySchedule, ev.time, w);
              rs.chip = batch.chip;  // replica being excluded
              rs.value = delay;
              rs.aux = jitter;
              journal(rs);
            }
            retries.push_back(std::move(w));
            pq.push(Event{ev.time + delay, kRetry, seq++,
                          retries.size() - 1});
            continue;
          }
          if (journal_ != nullptr) {
            ServeEvent done =
                request_event(ServeEventKind::kComplete, ev.time, w);
            done.chip = batch.chip;
            done.code = degraded > 0 ? 1 : 0;
            done.value = static_cast<double>(degraded);
            journal(done);
          }
          Response r;
          r.id = w.req.id;
          r.tag = w.req.tag;
          r.tenant = w.req.tenant;
          r.status = degraded > 0 ? Response::Status::kDegraded
                                  : Response::Status::kOk;
          r.reason = RejectReason::kNone;
          r.logits.assign(logits.data().begin() +
                              static_cast<std::ptrdiff_t>(i * out),
                          logits.data().begin() +
                              static_cast<std::ptrdiff_t>((i + 1) * out));
          r.arrival = w.req.arrival;
          r.completion = ev.time;
          r.attempts = w.attempts;
          r.chip = batch.chip;
          r.degraded_outputs = degraded;
          RESIPE_TELEM_OBSERVE("serve.scheduler.latency_s", r.latency(),
                               1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0);
          responses.push_back(std::move(r));
        }
        batch.items.clear();
        try_dispatch(ev.time, /*work_conserving=*/true);
        break;
      }
      default:
        RESIPE_ASSERT(false, "unknown serve event kind " << ev.kind);
    }
  }

  RESIPE_ASSERT(queue.empty(),
                "scheduler drained with " << queue.size()
                    << " requests still queued");
  RESIPE_ASSERT(responses.size() == trace.size(),
                "response count " << responses.size()
                    << " != submitted count " << trace.size()
                    << " — a request was silently dropped");

  std::sort(responses.begin(), responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });
  const std::size_t batches_run = stats_.batches;
  stats_ = summarize(responses);
  stats_.batches = batches_run;
  if (batches_run > 0) {
    stats_.mean_batch = static_cast<double>(dispatched_items) /
                        static_cast<double>(batches_run);
  }
  return responses;
}

}  // namespace resipe::serve
