#include "resipe/serve/traffic.hpp"

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"

namespace resipe::serve {

std::vector<Request> poisson_traffic(const nn::Tensor& samples,
                                     const TrafficConfig& config) {
  RESIPE_REQUIRE(config.rate > 0.0 && std::isfinite(config.rate),
                 "traffic rate must be positive, got " << config.rate);
  RESIPE_REQUIRE(config.duration > 0.0 && std::isfinite(config.duration),
                 "traffic duration must be positive, got "
                     << config.duration);
  RESIPE_REQUIRE(config.deadline >= 0.0 && std::isfinite(config.deadline),
                 "traffic deadline must be >= 0, got " << config.deadline);
  RESIPE_REQUIRE(config.tenants > 0,
                 "traffic needs at least one tenant");
  RESIPE_REQUIRE(samples.rank() >= 2,
                 "traffic samples must be a batch tensor, got shape "
                     << samples.shape_str());
  const std::size_t n = samples.dim(0);
  RESIPE_REQUIRE(n > 0, "traffic sample pool is empty");
  const std::size_t width = samples.size() / n;

  Rng rng(config.seed);
  std::vector<Request> trace;
  double t = 0.0;
  std::uint64_t k = 0;
  for (;;) {
    // Exponential inter-arrival via inverse CDF; 1 - u is in (0, 1].
    t += -std::log(1.0 - rng.uniform()) / config.rate;
    if (t >= config.duration) break;
    const auto row = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    Request req;
    req.id = config.first_id + k++;
    req.tag = row;
    // Hash of the id, not an rng draw: the arrival/sample streams stay
    // bit-identical whatever `tenants` is set to.
    req.tenant = hash_seed(config.seed, req.id) % config.tenants;
    req.arrival = t;
    req.deadline = config.deadline > 0.0 ? t + config.deadline : 0.0;
    req.input.assign(
        samples.data().begin() + static_cast<std::ptrdiff_t>(row * width),
        samples.data().begin() +
            static_cast<std::ptrdiff_t>((row + 1) * width));
    trace.push_back(std::move(req));
  }
  return trace;
}

}  // namespace resipe::serve
