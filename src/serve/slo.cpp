#include "resipe/serve/slo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"
#include "resipe/telemetry/metrics.hpp"

namespace resipe::serve {

void SloConfig::validate() const {
  RESIPE_REQUIRE(window > 0.0, "SLO window must be positive, got " << window);
  RESIPE_REQUIRE(latency_target > 0.0,
                 "latency target must be positive, got " << latency_target);
  RESIPE_REQUIRE(latency_objective > 0.0 && latency_objective < 1.0,
                 "latency objective must be in (0, 1), got "
                     << latency_objective);
  RESIPE_REQUIRE(availability_objective > 0.0 && availability_objective < 1.0,
                 "availability objective must be in (0, 1), got "
                     << availability_objective);
  RESIPE_REQUIRE(min_window_count > 0,
                 "min_window_count must be at least 1");
}

SloMonitor::SloMonitor(const SloConfig& config) : config_(config) {
  config_.validate();
}

void SloMonitor::ingest(const Response& response, std::uint64_t tenant) {
  Sample s;
  s.time = response.completion;
  s.served = response.served();
  if (s.served) {
    s.latency = response.latency();
    s.latency_ok = s.latency <= config_.latency_target;
  }
  samples_[tenant].push_back(s);
}

void SloMonitor::ingest(const std::vector<Response>& responses) {
  for (const Response& r : responses) ingest(r, r.tenant);
}

void SloMonitor::clear() { samples_.clear(); }

namespace {

/// Worst bad_fraction / allowed over any `window`-second span, found
/// with a two-pointer sweep over time-sorted samples.  `bad` marks
/// which samples count against the budget; `eligible` which samples
/// count at all (availability: every sample; latency: served only).
struct SampleView {
  double time;
  bool eligible;
  bool bad;
};

double sweep_burn(const std::vector<SampleView>& samples, double window,
                  double allowed, std::size_t min_count) {
  double worst = 0.0;
  std::size_t lo = 0;
  std::size_t in_window = 0, bad_in_window = 0;
  for (std::size_t hi = 0; hi < samples.size(); ++hi) {
    if (samples[hi].eligible) {
      ++in_window;
      if (samples[hi].bad) ++bad_in_window;
    }
    while (samples[hi].time - samples[lo].time > window) {
      if (samples[lo].eligible) {
        --in_window;
        if (samples[lo].bad) --bad_in_window;
      }
      ++lo;
    }
    if (in_window >= min_count && bad_in_window > 0) {
      const double bad_frac = static_cast<double>(bad_in_window) /
                              static_cast<double>(in_window);
      worst = std::max(worst, bad_frac / allowed);
    }
  }
  return worst;
}

}  // namespace

SloReport SloMonitor::report() const {
  SloReport out;
  out.config = config_;
  const double avail_allowed = 1.0 - config_.availability_objective;
  const double lat_allowed = 1.0 - config_.latency_objective;

  std::vector<Sample> all;
  for (const auto& [tenant, samples] : samples_) {
    all.insert(all.end(), samples.begin(), samples.end());
  }

  const auto score = [&](std::uint64_t tenant,
                         std::vector<Sample> samples) {
    SloTenantReport r;
    r.tenant = tenant;
    r.requests = samples.size();
    if (samples.empty()) return r;
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.time < b.time; });

    std::vector<double> latencies;
    for (const Sample& s : samples) {
      if (!s.served) continue;
      ++r.served;
      if (s.latency_ok) ++r.latency_ok;
      latencies.push_back(s.latency);
    }
    r.availability_sli = static_cast<double>(r.served) /
                         static_cast<double>(r.requests);
    r.latency_sli = r.served == 0 ? 1.0
                                  : static_cast<double>(r.latency_ok) /
                                        static_cast<double>(r.served);
    r.availability_budget_used = (1.0 - r.availability_sli) / avail_allowed;
    r.latency_budget_used = (1.0 - r.latency_sli) / lat_allowed;

    std::vector<SampleView> avail_view, lat_view;
    avail_view.reserve(samples.size());
    lat_view.reserve(samples.size());
    for (const Sample& s : samples) {
      avail_view.push_back({s.time, true, !s.served});
      lat_view.push_back({s.time, s.served, s.served && !s.latency_ok});
    }
    r.availability_burn_max = sweep_burn(avail_view, config_.window,
                                         avail_allowed,
                                         config_.min_window_count);
    r.latency_burn_max = sweep_burn(lat_view, config_.window, lat_allowed,
                                    config_.min_window_count);

    std::sort(latencies.begin(), latencies.end());
    r.p50 = telemetry::percentile_sorted(latencies, 0.50);
    r.p95 = telemetry::percentile_sorted(latencies, 0.95);
    r.p99 = telemetry::percentile_sorted(latencies, 0.99);
    return r;
  };

  for (const auto& [tenant, samples] : samples_) {
    out.tenants.push_back(score(tenant, samples));
  }
  out.total = score(0, std::move(all));
  return out;
}

namespace {

/// 10-cell consumption bar: '#' per 10% of budget used, '!' overflow.
std::string budget_bar(double used) {
  std::string bar(10, '.');
  const int cells = static_cast<int>(std::ceil(std::min(used, 1.0) * 10.0));
  for (int i = 0; i < cells; ++i) bar[static_cast<std::size_t>(i)] = '#';
  if (used > 1.0) bar += '!';
  return bar;
}

std::string format_burn(double burn) {
  if (burn == 0.0) return "0";
  return format_fixed(burn, burn >= 10.0 ? 0 : 1) + "x";
}

}  // namespace

std::string SloReport::render() const {
  std::ostringstream os;
  os << "SLO dashboard  (window " << format_fixed(config.window, 2)
     << " s, latency <= " << format_si(config.latency_target, "s") << " @ "
     << format_percent(config.latency_objective) << " of served, availability @ "
     << format_percent(config.availability_objective) << " of submitted)\n";
  TextTable t({"tenant", "req", "served", "avail SLI", "avail budget",
               "burn", "lat SLI", "lat budget", "burn", "p99", "verdict"});
  const auto row = [&t](const SloTenantReport& r, const std::string& name) {
    const bool met = r.availability_met() && r.latency_met();
    t.add_row({name, std::to_string(r.requests), std::to_string(r.served),
               format_percent(r.availability_sli, 2),
               budget_bar(r.availability_budget_used) + " " +
                   format_percent(r.availability_budget_used, 0),
               format_burn(r.availability_burn_max),
               format_percent(r.latency_sli, 2),
               budget_bar(r.latency_budget_used) + " " +
                   format_percent(r.latency_budget_used, 0),
               format_burn(r.latency_burn_max), format_si(r.p99, "s"),
               met ? "OK" : "VIOLATED"});
  };
  for (const SloTenantReport& r : tenants) {
    std::string name = "t";
    name += std::to_string(r.tenant);
    row(r, name);
  }
  if (tenants.size() > 1) {
    t.add_separator();
    row(total, "all");
  }
  os << t.str();
  return os.str();
}

}  // namespace resipe::serve
