#include "resipe/serve/pool.hpp"

#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/resipe/chip.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::serve {

namespace {

// Canary-selection RNG stream (decorrelated from backoff jitter, which
// uses per-request streams).
constexpr std::uint64_t kStreamCanary = 0x5E12E001ull;

}  // namespace

const char* to_string(ChipState s) {
  switch (s) {
    case ChipState::kQuarantined:
      return "quarantined";
    default:
      return "healthy";
  }
}

ChipPool::ChipPool(
    nn::Sequential& model, const nn::Tensor& calibration,
    const std::vector<resipe_core::EngineConfig>& replica_configs,
    const ServeConfig& config)
    : config_(config) {
  config_.validate();
  RESIPE_REQUIRE(!replica_configs.empty(),
                 "a chip pool needs at least one replica");
  RESIPE_REQUIRE(calibration.rank() >= 2,
                 "pool calibration must be a batch tensor, got shape "
                     << calibration.shape_str());
  const std::size_t calib_n = calibration.dim(0);
  RESIPE_REQUIRE(calib_n > 0, "pool calibration batch is empty");

  input_shape_.assign(calibration.shape().begin() + 1,
                      calibration.shape().end());
  input_size_ = 1;
  for (const std::size_t d : input_shape_) input_size_ *= d;

  // Chip-level timing model shared by all replicas (geometry and
  // circuit operating point come from the first config; replicas are
  // the same design, just different silicon instances).
  const auto& cfg0 = replica_configs[0];
  resipe_core::ChipConfig chip_cfg;
  chip_cfg.circuit = cfg0.circuit;
  chip_cfg.device = cfg0.device;
  chip_cfg.tile_rows = cfg0.tile_rows;
  chip_cfg.tile_cols = cfg0.tile_cols;
  chip_cfg.cols_per_logical =
      cfg0.mapping == crossbar::SignedMapping::kOffsetColumn ? 1 : 2;
  // map_network wants a {channels, height, width} shape; flat MLP
  // inputs map as a single 1 x W row.
  std::vector<std::size_t> map_shape = input_shape_;
  while (map_shape.size() < 3) map_shape.insert(map_shape.begin(), 1);
  const resipe_core::ChipReport chip_report =
      resipe_core::map_network(model, map_shape, chip_cfg);

  chips_.reserve(replica_configs.size());
  for (const auto& rc : replica_configs) {
    rc.validate();
    Chip chip;
    chip.network =
        std::make_unique<resipe_core::ResipeNetwork>(model, rc, calibration);
    chip.fill_latency = chip_report.input_latency;
    chip.initiation_interval = chip_report.initiation_interval;
    chips_.push_back(std::move(chip));
  }

  // Golden reference: the same design with clean silicon.  Canary
  // comparisons are against this lowering, not the software model, so
  // the probe measures *degradation*, not the circuit's intrinsic
  // nonlinearity penalty.
  resipe_core::EngineConfig golden_cfg = cfg0;
  golden_cfg.reliability.enabled = false;
  golden_cfg.retention_time = 0.0;
  golden_ = std::make_unique<resipe_core::ResipeNetwork>(model, golden_cfg,
                                                         calibration);

  // Fixed canary batch: a deterministic sample of calibration rows.
  const std::size_t n_canary =
      std::min(config_.health.canary_images, calib_n);
  Rng rng(hash_seed(config_.seed, kStreamCanary));
  const std::vector<std::size_t> order = rng.permutation(calib_n);
  std::vector<std::size_t> shape = {n_canary};
  shape.insert(shape.end(), input_shape_.begin(), input_shape_.end());
  canaries_ = nn::Tensor(shape);
  for (std::size_t i = 0; i < n_canary; ++i) {
    const std::size_t row = order[i];
    for (std::size_t j = 0; j < input_size_; ++j) {
      canaries_[i * input_size_ + j] =
          calibration[row * input_size_ + j];
    }
  }
  golden_logits_ = golden_->forward(canaries_);
}

std::size_t ChipPool::healthy_count() const {
  std::size_t n = 0;
  for (const Chip& c : chips_) {
    if (c.status.state == ChipState::kHealthy) ++n;
  }
  return n;
}

const ChipStatus& ChipPool::status(std::size_t chip) const {
  RESIPE_REQUIRE(chip < chips_.size(), "chip index " << chip
                     << " out of range (pool of " << chips_.size() << ")");
  return chips_[chip].status;
}

std::size_t ChipPool::pick_healthy(std::size_t exclude) const {
  std::size_t fallback = chips_.size();
  for (std::size_t i = 0; i < chips_.size(); ++i) {
    if (chips_[i].status.state != ChipState::kHealthy) continue;
    if (i == exclude) {
      fallback = i;
      continue;
    }
    return i;
  }
  return fallback;  // the excluded chip, or size() when none healthy
}

nn::Tensor ChipPool::infer(std::size_t chip, const nn::Tensor& batch) {
  RESIPE_REQUIRE(chip < chips_.size(), "chip index " << chip
                     << " out of range (pool of " << chips_.size() << ")");
  RESIPE_TELEM_SCOPE("serve.pool.infer");
  Chip& c = chips_[chip];
  c.status.batches_served += 1;
  c.status.requests_served += batch.dim(0);
  return c.network->forward(batch);
}

std::size_t ChipPool::degraded_outputs(std::size_t chip) const {
  RESIPE_REQUIRE(chip < chips_.size(), "chip index " << chip
                     << " out of range (pool of " << chips_.size() << ")");
  return chips_[chip].network->degraded_outputs();
}

double ChipPool::service_time(std::size_t chip, std::size_t n) const {
  RESIPE_REQUIRE(chip < chips_.size(), "chip index " << chip
                     << " out of range (pool of " << chips_.size() << ")");
  RESIPE_REQUIRE(n > 0, "service time of an empty batch");
  const Chip& c = chips_[chip];
  return c.fill_latency +
         static_cast<double>(n - 1) * c.initiation_interval;
}

bool ChipPool::probe(Chip& chip) {
  const nn::Tensor logits = chip.network->forward(canaries_);
  const std::size_t n = canaries_.dim(0);
  std::size_t mismatched = 0;
  double sq_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (logits.argmax_row(i) != golden_logits_.argmax_row(i)) ++mismatched;
  }
  for (std::size_t k = 0; k < logits.size(); ++k) {
    const double d = logits[k] - golden_logits_[k];
    sq_sum += d * d;
  }
  const double mismatch =
      static_cast<double>(mismatched) / static_cast<double>(n);
  const double rmse =
      std::sqrt(sq_sum / static_cast<double>(logits.size()));
  chip.status.last_canary_mismatch = mismatch;
  chip.status.last_canary_rmse = rmse;
  return mismatch <= config_.health.max_canary_mismatch &&
         rmse <= config_.health.logit_rmse_limit;
}

std::size_t ChipPool::run_probe_round() {
  RESIPE_TELEM_SCOPE("serve.pool.probe_round");
  std::size_t transitions = 0;
  for (Chip& chip : chips_) {
    const bool clean = probe(chip);
    ChipStatus& st = chip.status;
    st.probes += 1;
    RESIPE_TELEM_COUNT("serve.pool.probes", 1);
    if (clean) {
      st.consecutive_clean += 1;
      st.consecutive_failed = 0;
      if (st.state == ChipState::kQuarantined &&
          st.consecutive_clean >= config_.health.readmit_after) {
        st.state = ChipState::kHealthy;
        st.readmissions += 1;
        ++transitions;
        RESIPE_TELEM_COUNT("serve.pool.readmissions", 1);
      }
    } else {
      st.consecutive_failed += 1;
      st.consecutive_clean = 0;
      RESIPE_TELEM_COUNT("serve.pool.probe_failures", 1);
      if (st.state == ChipState::kHealthy &&
          st.consecutive_failed >= config_.health.quarantine_after) {
        st.state = ChipState::kQuarantined;
        st.quarantines += 1;
        ++transitions;
        RESIPE_TELEM_COUNT("serve.pool.quarantines", 1);
      }
    }
  }
  return transitions;
}

void ChipPool::force_quarantine(std::size_t chip) {
  RESIPE_REQUIRE(chip < chips_.size(), "chip index " << chip
                     << " out of range (pool of " << chips_.size() << ")");
  ChipStatus& st = chips_[chip].status;
  if (st.state == ChipState::kQuarantined) return;
  st.state = ChipState::kQuarantined;
  st.quarantines += 1;
  st.consecutive_clean = 0;
  RESIPE_TELEM_COUNT("serve.pool.quarantines", 1);
}

const resipe_core::ResipeNetwork& ChipPool::network(std::size_t chip) const {
  RESIPE_REQUIRE(chip < chips_.size(), "chip index " << chip
                     << " out of range (pool of " << chips_.size() << ")");
  return *chips_[chip].network;
}

}  // namespace resipe::serve
