#include "resipe/telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/metrics.hpp"
#include "resipe/telemetry/timer.hpp"

namespace resipe::telemetry {

namespace {

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

void TraceSession::start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  // Track names survive session restarts on purpose: pool workers label
  // themselves once per process, not once per session.
  dropped_.store(0, std::memory_order_relaxed);
  t0_ns_ = now_ns();
  active_.store(true, std::memory_order_relaxed);
  set_enabled(true);
  names_[{1, this_thread_id()}] = "main";
}

void TraceSession::stop() { active_.store(false, std::memory_order_relaxed); }

void TraceSession::record_complete(const char* name,
                                   std::uint64_t start_abs_ns,
                                   std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.ts_ns = start_abs_ns >= t0_ns_ ? start_abs_ns - t0_ns_ : 0;
  e.dur_ns = dur_ns;
  e.tid = this_thread_id();
  events_.push_back(std::move(e));
}

void TraceSession::instant(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.ts_ns = now_ns() - t0_ns_;
  e.tid = this_thread_id();
  events_.push_back(std::move(e));
}

void TraceSession::counter(const char* name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'C';
  e.ts_ns = now_ns() - t0_ns_;
  e.tid = this_thread_id();
  e.value = value;
  events_.push_back(std::move(e));
}

void TraceSession::add_event(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSession::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                   const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  names_.emplace(std::make_pair(pid, tid), name);  // first writer wins
}

void TraceSession::name_current_thread(const std::string& name) {
  set_thread_name(1, this_thread_id(), name);
}

std::uint32_t TraceSession::current_thread_id() { return this_thread_id(); }

void TraceSession::set_capacity(std::size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events;
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
TraceSession::thread_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> events = snapshot();
  const auto names = thread_names();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  os << "{\"traceEvents\":[";
  bool first = true;
  // Metadata first: one thread_name record per registered track so the
  // viewer labels lanes before any event references them.
  for (const auto& [key, label] : names) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"";
    json_escape(os, label);
    os << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    const auto dot = e.name.find('.');
    const std::string cat =
        dot == std::string::npos ? e.name : e.name.substr(0, dot);
    os << "{\"name\":\"";
    json_escape(os, e.name);
    os << "\",\"cat\":\"";
    json_escape(os, cat);
    os << "\",\"ph\":\"" << e.phase << "\"";
    // Chrome expects microseconds; emit fractional us to keep ns detail.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(e.ts_ns) * 1e-3);
    os << ",\"ts\":" << buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.dur_ns) * 1e-3);
      os << ",\"dur\":" << buf;
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      os << ",\"id\":" << e.flow_id;
      // Bind the arrow's end to the enclosing slice, the conventional
      // rendering for request flows.
      if (e.phase == 'f') os << ",\"bp\":\"e\"";
    }
    if (e.phase == 'C' && e.args_json.empty()) {
      std::snprintf(buf, sizeof buf, "%.17g", e.value);
      os << ",\"args\":{\"value\":" << buf << "}";
    } else if (!e.args_json.empty()) {
      os << ",\"args\":" << e.args_json;
    }
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << "}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

void TraceSession::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open trace file " << path);
  write_chrome_trace(os);
  RESIPE_REQUIRE(os.good(), "failed writing trace file " << path);
}

}  // namespace resipe::telemetry
