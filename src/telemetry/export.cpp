// Flat metric dumps: JSON for machines, CSV (via common::CsvWriter) for
// spreadsheets and the repo's re-plot scripts.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "resipe/common/csv.hpp"
#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"
#include "resipe/telemetry/metrics.hpp"

namespace resipe::telemetry {

namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

void write_metrics_json(std::ostream& os) {
  const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":" << number(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ",";
      os << number(h.bounds[i]);
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << h.buckets[i];
    }
    const HistogramSummary s = summarize_histogram(h);
    os << "],\"count\":" << h.count << ",\"sum\":" << number(h.sum)
       << ",\"min\":" << number(s.min) << ",\"max\":" << number(s.max)
       << ",\"p50\":" << number(s.p50) << ",\"p95\":" << number(s.p95)
       << ",\"p99\":" << number(s.p99) << "}";
  }
  os << "}}\n";
}

void write_metrics_json_file(const std::string& path) {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open metrics file " << path);
  write_metrics_json(os);
  RESIPE_REQUIRE(os.good(), "failed writing metrics file " << path);
}

void write_metrics_csv(std::ostream& os) {
  const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
  std::vector<std::string> names;
  std::vector<std::string> types;
  std::vector<double> values;
  for (const auto& [name, value] : snap.counters) {
    names.push_back(name);
    types.push_back("counter");
    values.push_back(static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    names.push_back(name);
    types.push_back("gauge");
    values.push_back(value);
  }
  for (const auto& [name, h] : snap.histograms) {
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string tag =
          i < h.bounds.size() ? "le_" + number(h.bounds[i]) : "overflow";
      names.push_back(name + "." + tag);
      types.push_back("histogram_bucket");
      values.push_back(static_cast<double>(h.buckets[i]));
    }
    names.push_back(name + ".count");
    types.push_back("histogram");
    values.push_back(static_cast<double>(h.count));
    names.push_back(name + ".sum");
    types.push_back("histogram");
    values.push_back(h.sum);
    const HistogramSummary s = summarize_histogram(h);
    const std::pair<const char*, double> percentiles[] = {
        {".min", s.min}, {".max", s.max}, {".p50", s.p50},
        {".p95", s.p95}, {".p99", s.p99}};
    for (const auto& [tag, value] : percentiles) {
      names.push_back(name + tag);
      types.push_back("histogram");
      values.push_back(value);
    }
  }
  CsvWriter csv;
  csv.add_text_column("metric", std::move(names));
  csv.add_text_column("type", std::move(types));
  csv.add_column("value", std::move(values));
  csv.write(os);
}

void write_metrics_csv_file(const std::string& path) {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open metrics file " << path);
  write_metrics_csv(os);
  RESIPE_REQUIRE(os.good(), "failed writing metrics file " << path);
}

std::string render_metrics_ascii() {
  const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
  std::string out;
  if (!snap.counters.empty()) {
    TextTable t({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      t.add_row({name, std::to_string(value)});
    }
    out += t.str();
  }
  if (!snap.gauges.empty()) {
    TextTable t({"gauge", "value"});
    for (const auto& [name, value] : snap.gauges) {
      t.add_row({name, format_fixed(value, 6)});
    }
    if (!out.empty()) out += "\n";
    out += t.str();
  }
  if (!snap.histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "min", "p50", "p95", "p99",
                 "max"});
    for (const auto& [name, h] : snap.histograms) {
      const HistogramSummary s = summarize_histogram(h);
      t.add_row({name, std::to_string(s.count), format_fixed(s.mean, 6),
                 format_fixed(s.min, 6), format_fixed(s.p50, 6),
                 format_fixed(s.p95, 6), format_fixed(s.p99, 6),
                 format_fixed(s.max, 6)});
    }
    if (!out.empty()) out += "\n";
    out += t.str();
  }
  return out;
}

}  // namespace resipe::telemetry
