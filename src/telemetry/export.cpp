// Flat metric dumps: JSON for machines, CSV (via common::CsvWriter) for
// spreadsheets and the repo's re-plot scripts.
#include <cstdio>
#include <fstream>
#include <string>

#include "resipe/common/csv.hpp"
#include "resipe/common/error.hpp"
#include "resipe/telemetry/metrics.hpp"

namespace resipe::telemetry {

namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

void write_metrics_json(std::ostream& os) {
  const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":" << number(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ",";
      os << number(h.bounds[i]);
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << h.buckets[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << number(h.sum) << "}";
  }
  os << "}}\n";
}

void write_metrics_json_file(const std::string& path) {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open metrics file " << path);
  write_metrics_json(os);
  RESIPE_REQUIRE(os.good(), "failed writing metrics file " << path);
}

void write_metrics_csv(std::ostream& os) {
  const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
  std::vector<std::string> names;
  std::vector<std::string> types;
  std::vector<double> values;
  for (const auto& [name, value] : snap.counters) {
    names.push_back(name);
    types.push_back("counter");
    values.push_back(static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    names.push_back(name);
    types.push_back("gauge");
    values.push_back(value);
  }
  for (const auto& [name, h] : snap.histograms) {
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string tag =
          i < h.bounds.size() ? "le_" + number(h.bounds[i]) : "overflow";
      names.push_back(name + "." + tag);
      types.push_back("histogram_bucket");
      values.push_back(static_cast<double>(h.buckets[i]));
    }
    names.push_back(name + ".count");
    types.push_back("histogram");
    values.push_back(static_cast<double>(h.count));
    names.push_back(name + ".sum");
    types.push_back("histogram");
    values.push_back(h.sum);
  }
  CsvWriter csv;
  csv.add_text_column("metric", std::move(names));
  csv.add_text_column("type", std::move(types));
  csv.add_column("value", std::move(values));
  csv.write(os);
}

void write_metrics_csv_file(const std::string& path) {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open metrics file " << path);
  write_metrics_csv(os);
  RESIPE_REQUIRE(os.good(), "failed writing metrics file " << path);
}

}  // namespace resipe::telemetry
