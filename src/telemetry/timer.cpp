#include "resipe/telemetry/timer.hpp"

#include <chrono>
#include <cstring>
#include <sstream>

#include "resipe/common/table.hpp"
#include "resipe/telemetry/metrics.hpp"
#include "resipe/telemetry/trace.hpp"

namespace resipe::telemetry {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ProfileNode& ProfileNode::child(const char* child_name) {
  for (auto& c : children) {
    // Span names are string literals, so pointer equality catches the
    // common case; strcmp handles distinct literals with equal text.
    if (c->name == child_name || std::strcmp(c->name, child_name) == 0) {
      return *c;
    }
  }
  children.push_back(std::make_unique<ProfileNode>());
  children.back()->name = child_name;
  return *children.back();
}

CallProfile& CallProfile::this_thread() {
  thread_local CallProfile profile;
  return profile;
}

void CallProfile::reset() {
  root_.children.clear();
  root_.count = 0;
  root_.total_ns = 0;
  current_ = &root_;
}

namespace {

void render_node(const ProfileNode& node, std::size_t depth,
                 std::ostringstream& os) {
  const double total_s = static_cast<double>(node.total_ns) * 1e-9;
  const double mean_s =
      node.count > 0 ? total_s / static_cast<double>(node.count) : 0.0;
  os << std::string(2 * depth, ' ') << node.name << "  x" << node.count
     << "  total " << format_si(total_s, "s") << "  mean "
     << format_si(mean_s, "s") << "\n";
  for (const auto& c : node.children) render_node(*c, depth + 1, os);
}

}  // namespace

std::string CallProfile::render() const {
  std::ostringstream os;
  for (const auto& c : root_.children) render_node(*c, 0, os);
  return os.str();
}

void ScopedTimer::enter() noexcept {
  CallProfile& profile = CallProfile::this_thread();
  parent_ = profile.current();
  node_ = &parent_->child(name_);
  profile.set_current(node_);
  active_ = true;
  start_ns_ = now_ns();
}

void ScopedTimer::leave() {
  const std::uint64_t dur = now_ns() - start_ns_;
  node_->count += 1;
  node_->total_ns += dur;
  CallProfile::this_thread().set_current(parent_);
  TraceSession& session = TraceSession::instance();
  if (session.active()) session.record_complete(name_, start_ns_, dur);
}

}  // namespace resipe::telemetry
