#include "resipe/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/telemetry/trace.hpp"

namespace resipe::telemetry {

namespace {

int resolve_from_env() {
  const char* env = std::getenv("RESIPE_TELEMETRY");
  if (env == nullptr) return 0;  // off by default
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "false") == 0) {
    return 0;
  }
  return 1;  // any other non-empty value enables
}

}  // namespace

namespace detail {

std::atomic<int> g_enabled{-1};

bool resolve_enabled() noexcept {
  int state = resolve_from_env();
  int expected = -1;
  // Another thread may have resolved (or set_enabled) concurrently; its
  // value wins.
  if (!g_enabled.compare_exchange_strong(expected, state,
                                         std::memory_order_relaxed)) {
    state = expected;
  }
  return state > 0;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {
thread_local CounterShard* t_counter_shard = nullptr;
}  // namespace detail

namespace {

thread_local CounterShard t_region_shard;

void region_begin() noexcept {
  detail::t_counter_shard = &t_region_shard;
  // Label this thread's trace lane once, so chrome://tracing shows
  // "worker-N" instead of a bare tid.  First-wins naming keeps the
  // caller thread's "main" label when it participates in a region.
  thread_local bool named = false;
  if (!named) {
    named = true;
    const std::uint32_t tid = TraceSession::current_thread_id();
    TraceSession::instance().set_thread_name(
        1, tid, "worker-" + std::to_string(tid));
  }
}

void region_end() noexcept {
  t_region_shard.flush();
  detail::t_counter_shard = nullptr;
}

}  // namespace

void install_parallel_counter_shards() {
  ParallelHooks hooks;
  hooks.thread_begin = &region_begin;
  hooks.thread_end = &region_end;
  set_parallel_hooks(hooks);
}

#if !defined(RESIPE_TELEMETRY_DISABLED)
namespace {
// The hook slots in resipe_common are constant-initialized atomics, so
// registering from a dynamic initializer is order-safe.
const bool g_shards_installed = [] {
  install_parallel_counter_shards();
  return true;
}();
}  // namespace
#endif

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  RESIPE_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  RESIPE_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  RESIPE_REQUIRE(q >= 0.0 && q <= 1.0,
                 "percentile must be in [0, 1], got " << q);
  RESIPE_REQUIRE(std::is_sorted(sorted.begin(), sorted.end()),
                 "percentile_sorted needs ascending-sorted input");
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  if (n == 1) return sorted[0];
  // Rank-mass convention shared with histogram_percentile: the q-th
  // observation sits at rank q*n; interpolate between the two samples
  // bracketing that rank.  Matches a histogram whose bucket bounds are
  // exactly these samples, bit for bit.
  const double rank = q * static_cast<double>(n);
  if (rank <= 1.0) return sorted[0];
  std::size_t i = static_cast<std::size_t>(std::ceil(rank)) - 1;
  i = std::min(i, n - 1);
  const double frac = rank - static_cast<double>(i);
  return sorted[i - 1] + std::clamp(frac, 0.0, 1.0) *
                             (sorted[i] - sorted[i - 1]);
}

double histogram_percentile(const MetricsSnapshot::HistogramData& h,
                            double q) {
  if (h.count == 0) return 0.0;
  // A single observation IS every percentile; `sum` recovers its exact
  // value even when min/max were left at defaults or sentinels by a
  // hand-constructed snapshot.
  if (h.count == 1) return h.sum;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, midpoint convention keeps
  // p0 = min and p100 = max exact).
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const std::uint64_t in_bucket = h.buckets[i];
    if (in_bucket == 0) continue;
    const double cum_hi = static_cast<double>(cum + in_bucket);
    if (rank <= cum_hi || i + 1 == h.buckets.size()) {
      // Bucket edges, clamped to the exact observed range so the
      // open-ended first and overflow buckets stay finite.
      double lo = i == 0 ? h.min : h.bounds[i - 1];
      double hi = i < h.bounds.size() ? h.bounds[i] : h.max;
      lo = std::clamp(lo, h.min, h.max);
      hi = std::clamp(hi, h.min, h.max);
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cum += in_bucket;
  }
  return h.max;
}

HistogramSummary summarize_histogram(
    const MetricsSnapshot::HistogramData& h) {
  HistogramSummary s;
  s.count = h.count;
  // Empty histogram: every field is exactly zero, even when the data
  // still carries the +/-inf accumulation sentinels of a reset
  // Histogram or the defaults of a hand-built snapshot.
  if (h.count == 0) return s;
  if (h.count == 1) {
    // Single observation: it is the min, the max and every percentile.
    s.mean = s.min = s.max = s.p50 = s.p95 = s.p99 = h.sum;
    return s;
  }
  s.mean = h.sum / static_cast<double>(h.count);
  s.min = h.min;
  s.max = h.max;
  s.p50 = histogram_percentile(h, 0.50);
  s.p95 = histogram_percentile(h, 0.95);
  s.p99 = histogram_percentile(h, 0.99);
  return s;
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.buckets = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    data.min = h->min();
    data.max = h->max();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace resipe::telemetry
