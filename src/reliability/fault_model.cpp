#include "resipe/reliability/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::reliability {

FaultMap::FaultMap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, FaultType::kNone) {
  RESIPE_REQUIRE(rows > 0 && cols > 0, "fault map dimensions must be > 0");
}

FaultType FaultMap::at(std::size_t row, std::size_t col) const {
  RESIPE_REQUIRE(row < rows_ && col < cols_,
                 "fault map cell (" << row << "," << col
                                    << ") out of bounds " << rows_ << "x"
                                    << cols_);
  return cells_[row * cols_ + col];
}

void FaultMap::set(std::size_t row, std::size_t col, FaultType fault) {
  RESIPE_REQUIRE(row < rows_ && col < cols_,
                 "fault map cell (" << row << "," << col
                                    << ") out of bounds " << rows_ << "x"
                                    << cols_);
  cells_[row * cols_ + col] = fault;
}

std::size_t FaultMap::fault_count() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](FaultType f) { return f != FaultType::kNone; }));
}

std::size_t FaultMap::column_faults(std::size_t col) const {
  RESIPE_REQUIRE(col < cols_, "fault map column out of range");
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (cells_[r * cols_ + col] != FaultType::kNone) ++n;
  }
  return n;
}

std::size_t FaultMap::row_faults(std::size_t row) const {
  RESIPE_REQUIRE(row < rows_, "fault map row out of range");
  std::size_t n = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (cells_[row * cols_ + c] != FaultType::kNone) ++n;
  }
  return n;
}

void FaultModelConfig::validate() const {
  RESIPE_REQUIRE(stuck_lrs_rate >= 0.0 && stuck_hrs_rate >= 0.0 &&
                     stuck_lrs_rate + stuck_hrs_rate <= 1.0,
                 "stuck-at rates must be probabilities");
  RESIPE_REQUIRE(cluster_fraction >= 0.0 && cluster_fraction <= 1.0,
                 "cluster fraction must be in [0, 1]");
  RESIPE_REQUIRE(cluster_size >= 1, "clusters need at least one cell");
}

namespace {

/// Marks `size` cells of `type` in a contiguous patch around a random
/// center (a square spiral walk), skipping already-faulty cells.
void mark_cluster(FaultMap& map, FaultType type, std::size_t size,
                  Rng& rng) {
  const auto rows = static_cast<std::int64_t>(map.rows());
  const auto cols = static_cast<std::int64_t>(map.cols());
  const std::int64_t r0 = rng.uniform_int(0, rows - 1);
  const std::int64_t c0 = rng.uniform_int(0, cols - 1);
  std::size_t marked = 0;
  // Grow the patch radius until enough in-bounds cells are covered.
  for (std::int64_t radius = 0; marked < size && radius <= rows + cols;
       ++radius) {
    for (std::int64_t dr = -radius; dr <= radius && marked < size; ++dr) {
      for (std::int64_t dc = -radius; dc <= radius && marked < size; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != radius) continue;
        const std::int64_t r = r0 + dr;
        const std::int64_t c = c0 + dc;
        if (r < 0 || r >= rows || c < 0 || c >= cols) continue;
        const auto ur = static_cast<std::size_t>(r);
        const auto uc = static_cast<std::size_t>(c);
        if (map.at(ur, uc) != FaultType::kNone) continue;
        map.set(ur, uc, type);
        ++marked;
      }
    }
  }
}

}  // namespace

FaultMap generate_fault_map(std::size_t rows, std::size_t cols,
                            const FaultModelConfig& config, Rng& rng) {
  config.validate();
  FaultMap map(rows, cols);
  const double total_rate = config.stuck_lrs_rate + config.stuck_hrs_rate;
  if (total_rate <= 0.0) return map;

  // Independent portion.
  const double scale = 1.0 - config.cluster_fraction;
  if (scale > 0.0) {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const double u = rng.uniform();
        if (u < config.stuck_lrs_rate * scale) {
          map.set(r, c, FaultType::kStuckLrs);
        } else if (u < total_rate * scale) {
          map.set(r, c, FaultType::kStuckHrs);
        }
      }
    }
  }

  // Clustered portion: place round(budget / cluster_size) patches per
  // fault type, probabilistically rounding the remainder so the
  // expected defect count matches the rate.
  if (config.cluster_fraction > 0.0) {
    const double cells = static_cast<double>(rows * cols);
    for (const auto& [type, rate] :
         {std::pair{FaultType::kStuckLrs, config.stuck_lrs_rate},
          std::pair{FaultType::kStuckHrs, config.stuck_hrs_rate}}) {
      const double budget = cells * rate * config.cluster_fraction;
      const double n_exact =
          budget / static_cast<double>(config.cluster_size);
      auto n_clusters = static_cast<std::size_t>(n_exact);
      if (rng.uniform() < n_exact - static_cast<double>(n_clusters)) {
        ++n_clusters;
      }
      for (std::size_t i = 0; i < n_clusters; ++i) {
        mark_cluster(map, type, config.cluster_size, rng);
      }
    }
  }
  RESIPE_TELEM_COUNT("reliability.cells_faulty", map.fault_count());
  return map;
}

double read_disturbed_conductance(double g0, double reads, double rate,
                                  double g_floor) {
  RESIPE_REQUIRE(reads >= 0.0 && rate >= 0.0,
                 "read-disturb parameters must be non-negative");
  if (rate <= 0.0 || reads <= 0.0 || g0 <= g_floor) return g0;
  return std::max(g0 * std::exp(-rate * reads), g_floor);
}

}  // namespace resipe::reliability
