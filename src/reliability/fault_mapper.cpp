#include "resipe/reliability/fault_mapper.hpp"

#include <vector>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::reliability {

void FaultMapperConfig::validate() const {
  RESIPE_REQUIRE(rail_tolerance > 0.0 && rail_tolerance < 0.5,
                 "rail tolerance must be in (0, 0.5)");
  RESIPE_REQUIRE(reads_per_cell >= 1, "need at least one read per cell");
  RESIPE_REQUIRE(miss_rate >= 0.0 && miss_rate <= 1.0 &&
                     false_alarm_rate >= 0.0 && false_alarm_rate <= 1.0,
                 "detection error rates must be probabilities");
}

FaultMapper::FaultMapper(FaultMapperConfig config) : config_(config) {
  config_.validate();
}

FaultType FaultMapper::classify(const device::ReramSpec& spec,
                                double g_low_read,
                                double g_high_read) const {
  const double window = spec.g_max() - spec.g_min();
  const double band = config_.rail_tolerance * window;
  // Stuck-at-LRS: the cell reads near G_max even after a low write.
  if (g_low_read >= spec.g_max() - band) return FaultType::kStuckLrs;
  // Stuck-at-HRS: the cell reads near G_min even after a high write.
  if (g_high_read <= spec.g_min() + band) return FaultType::kStuckHrs;
  return FaultType::kNone;
}

FaultMap FaultMapper::march(std::size_t rows, std::size_t cols,
                            const device::ReramSpec& spec,
                            const WriteCell& write_cell,
                            const ReadCell& read_cell) const {
  RESIPE_TELEM_SCOPE("reliability.fault_mapper.march");
  RESIPE_REQUIRE(write_cell && read_cell, "march needs write/read functors");
  spec.validate();

  const auto averaged_read = [&](std::size_t r, std::size_t c) {
    double sum = 0.0;
    for (std::size_t i = 0; i < config_.reads_per_cell; ++i) {
      sum += read_cell(r, c);
    }
    return sum / static_cast<double>(config_.reads_per_cell);
  };

  // Pass 1: background low, read back.
  std::vector<double> low_reads(rows * cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      write_cell(r, c, spec.g_min());
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      low_reads[r * cols + c] = averaged_read(r, c);
    }
  }
  // Pass 2: inverse pattern, read back and classify.
  FaultMap map(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      write_cell(r, c, spec.g_max());
    }
  }
  std::size_t faulty = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const FaultType f =
          classify(spec, low_reads[r * cols + c], averaged_read(r, c));
      if (f != FaultType::kNone) {
        map.set(r, c, f);
        ++faulty;
      }
    }
  }
  RESIPE_TELEM_COUNT("reliability.cells_tested", rows * cols);
  RESIPE_TELEM_COUNT("reliability.cells_detected", faulty);
  return map;
}

FaultMap FaultMapper::from_truth(const FaultMap& truth, Rng& rng) const {
  FaultMap detected(truth.rows(), truth.cols());
  std::size_t faulty = 0;
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    for (std::size_t c = 0; c < truth.cols(); ++c) {
      const FaultType f = truth.at(r, c);
      if (f != FaultType::kNone) {
        if (config_.miss_rate > 0.0 && rng.bernoulli(config_.miss_rate)) {
          continue;  // missed fault
        }
        detected.set(r, c, f);
        ++faulty;
      } else if (config_.false_alarm_rate > 0.0 &&
                 rng.bernoulli(config_.false_alarm_rate)) {
        detected.set(r, c, FaultType::kStuckHrs);
        ++faulty;
      }
    }
  }
  RESIPE_TELEM_COUNT("reliability.cells_tested",
                     truth.rows() * truth.cols());
  RESIPE_TELEM_COUNT("reliability.cells_detected", faulty);
  return detected;
}

}  // namespace resipe::reliability
