#include "resipe/reliability/config.hpp"

#include "resipe/common/error.hpp"

namespace resipe::reliability {

void ReliabilityConfig::validate() const {
  faults.validate();
  mapper.validate();
  RESIPE_REQUIRE(read_disturb_rate >= 0.0 && expected_mvms >= 0.0,
                 "read-disturb parameters must be non-negative");
  RESIPE_REQUIRE(endurance_cycles >= 0.0 && wear_cycles >= 0.0,
                 "endurance parameters must be non-negative");
  RESIPE_REQUIRE(mitigation.write_verify_retries >= 1,
                 "write-verify budget needs at least one attempt");
  RESIPE_REQUIRE(mitigation.degrade_threshold >= 0.0,
                 "negative degrade threshold");
}

}  // namespace resipe::reliability
