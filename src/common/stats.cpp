#include "resipe/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  RESIPE_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
                 "pearson needs two equal-length samples of >= 2 points");
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  cov /= static_cast<double>(xs.size() - 1);
  const double denom = sx.stddev * sy.stddev;
  return denom > 0.0 ? cov / denom : 0.0;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  RESIPE_REQUIRE(a.size() == b.size() && !a.empty(),
                 "rmse needs equal-length non-empty samples");
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    ss += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(ss / static_cast<double>(a.size()));
}

double PolyFit::operator()(double x) const {
  double y = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) y = y * x + coeffs[k];
  return y;
}

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  RESIPE_REQUIRE(a.size() == n * n, "matrix/vector size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * n + col];
    RESIPE_REQUIRE(std::abs(diag) > 1e-300, "singular system in solve");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / diag;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t c = row + 1; c < n; ++c) acc -= a[row * n + c] * x[c];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

PolyFit polyfit(std::span<const double> xs, std::span<const double> ys,
                int degree) {
  RESIPE_REQUIRE(degree >= 0, "negative polynomial degree");
  const auto d = static_cast<std::size_t>(degree);
  RESIPE_REQUIRE(xs.size() == ys.size() && xs.size() >= d + 1,
                 "polyfit needs >= degree+1 equal-length points");
  const std::size_t n = d + 1;
  // Normal equations: (V^T V) c = V^T y with V the Vandermonde matrix.
  std::vector<double> ata(n * n, 0.0);
  std::vector<double> aty(n, 0.0);
  std::vector<double> powers(2 * n - 1, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double p = 1.0;
    for (std::size_t k = 0; k < 2 * n - 1; ++k) {
      powers[k] = p;
      p *= xs[i];
    }
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) ata[r * n + c] += powers[r + c];
      aty[r] += powers[r] * ys[i];
    }
  }
  PolyFit fit;
  fit.coeffs = solve_linear_system(std::move(ata), std::move(aty));
  // r^2 against the mean model.
  const Summary sy = summarize(ys);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - fit(xs[i]);
    ss_res += e * e;
    ss_tot += (ys[i] - sy.mean) * (ys[i] - sy.mean);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

PolyFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  return polyfit(xs, ys, 1);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  RESIPE_REQUIRE(n >= 1, "linspace needs at least one point");
  std::vector<double> v(n, lo);
  if (n == 1) return v;
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = lo + step * static_cast<double>(i);
  v.back() = hi;  // exact endpoint despite rounding
  return v;
}

double relative_error(double a, double b, double eps) {
  return std::abs(a - b) / std::max(std::abs(b), eps);
}

}  // namespace resipe
