#include "resipe/common/rng.hpp"

#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t hash_seed(std::uint64_t seed, std::uint64_t stream_a,
                        std::uint64_t stream_b) {
  // One splitmix64 advance per mixed word; the golden-ratio increment
  // inside splitmix64 keeps (seed, a, b) and (seed, b, a) distinct.
  std::uint64_t x = seed;
  (void)splitmix64(x);
  x ^= stream_a;
  (void)splitmix64(x);
  x ^= stream_b;
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RESIPE_REQUIRE(lo <= hi, "uniform bounds inverted: " << lo << " > " << hi);
  return lo + (hi - lo) * uniform();
}

double Rng::log_uniform(double lo, double hi) {
  RESIPE_REQUIRE(lo > 0.0 && hi >= lo,
                 "log_uniform needs 0 < lo <= hi, got [" << lo << ", " << hi
                                                         << ")");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RESIPE_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ull) - (~0ull) % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  RESIPE_REQUIRE(stddev >= 0.0, "negative stddev " << stddev);
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  RESIPE_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range: " << p);
  return uniform() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace resipe
