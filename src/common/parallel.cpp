#include "resipe/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace resipe {
namespace {

std::atomic<std::size_t> g_default_threads{0};
std::atomic<void (*)()> g_hook_begin{nullptr};
std::atomic<void (*)()> g_hook_end{nullptr};
thread_local bool t_in_region = false;

// One in-flight region, claimed chunk-by-chunk through an atomic
// cursor so slow arms load-balance across workers.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t worker_cap = 0;  // pool workers allowed to join (excl. caller)
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> claims{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
};

void execute_chunks(Job& job) {
  t_in_region = true;
  if (void (*begin)() = g_hook_begin.load(std::memory_order_acquire)) begin();
  for (;;) {
    if (job.failed.load(std::memory_order_relaxed)) break;
    const std::size_t b = job.next.fetch_add(job.grain,
                                             std::memory_order_relaxed);
    if (b >= job.n) break;
    const std::size_t e = std::min(b + job.grain, job.n);
    try {
      (*job.body)(b, e);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  if (void (*end)() = g_hook_end.load(std::memory_order_acquire)) end();
  t_in_region = false;
}

// Lazily-started global pool.  Workers sleep between regions; the
// caller participates in every region, so a threads==N region uses
// N-1 pool workers.  Workers the current region does not need skip it
// via the claims ticket.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Job& job) {
    const std::lock_guard<std::mutex> region(run_mu_);
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (workers_.size() < job.worker_cap) {
        workers_.emplace_back([this] { worker_loop(); });
      }
      job_ = &job;
      ++generation_;
      unfinished_ = workers_.size();
      cv_work_.notify_all();
    }
    execute_chunks(job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [this] { return unfinished_ == 0; });
      job_ = nullptr;
    }
  }

  std::size_t worker_count() {
    const std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      cv_work_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      Job* job = job_;
      lock.unlock();
      if (job != nullptr &&
          job->claims.fetch_add(1, std::memory_order_relaxed) <
              job->worker_cap) {
        execute_chunks(*job);
      }
      lock.lock();
      if (--unfinished_ == 0) cv_done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes top-level regions
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t unfinished_ = 0;
  bool shutdown_ = false;
};

}  // namespace

std::size_t hardware_threads() {
  static const std::size_t resolved = [] {
    if (const char* env = std::getenv("RESIPE_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw >= 1 ? hw : 1);
  }();
  return resolved;
}

void set_default_threads(std::size_t n) {
  g_default_threads.store(n, std::memory_order_relaxed);
}

std::size_t default_threads() {
  const std::size_t n = g_default_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : hardware_threads();
}

bool in_parallel_region() noexcept { return t_in_region; }

void set_parallel_hooks(const ParallelHooks& hooks) {
  g_hook_begin.store(hooks.thread_begin, std::memory_order_release);
  g_hook_end.store(hooks.thread_end, std::memory_order_release);
}

void parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t threads) {
  if (n == 0) return;
  std::size_t want = threads > 0 ? threads : default_threads();
  if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * want));
  const std::size_t chunks = (n + grain - 1) / grain;
  want = std::min(want, chunks);
  if (want <= 1 || t_in_region) {
    // Serial / nested path: same chunk decomposition, same body, run
    // inline in index order.  Exceptions propagate directly.
    for (std::size_t b = 0; b < n; b += grain) {
      body(b, std::min(b + grain, n));
    }
    return;
  }
  Job job;
  job.body = &body;
  job.n = n;
  job.grain = grain;
  job.worker_cap = want - 1;  // caller takes the remaining slot
  Pool::instance().run(job);
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  parallel_for_chunked(
      n, 1,
      [&body](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) body(i);
      },
      threads);
}

namespace detail {
std::size_t pool_worker_count() { return Pool::instance().worker_count(); }
}  // namespace detail

}  // namespace resipe
