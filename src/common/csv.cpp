#include "resipe/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "resipe/common/error.hpp"

namespace resipe {

namespace {
std::string to_cell(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}
}  // namespace

void CsvWriter::add_column(std::string name, std::vector<double> values) {
  Column col;
  col.name = std::move(name);
  col.cells.reserve(values.size());
  for (double v : values) col.cells.push_back(to_cell(v));
  columns_.push_back(std::move(col));
}

void CsvWriter::add_text_column(std::string name,
                                std::vector<std::string> values) {
  columns_.push_back(Column{std::move(name), std::move(values)});
}

void CsvWriter::write(std::ostream& os) const {
  RESIPE_REQUIRE(!columns_.empty(), "CSV has no columns");
  const std::size_t rows = columns_.front().cells.size();
  for (const auto& c : columns_)
    RESIPE_REQUIRE(c.cells.size() == rows,
                   "CSV column '" << c.name << "' has " << c.cells.size()
                                  << " rows, expected " << rows);
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << csv_escape(columns_[c].name);
  os << "\n";
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c)
      os << (c ? "," : "") << csv_escape(columns_[c].cells[r]);
    os << "\n";
  }
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  RESIPE_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  write(out);
  RESIPE_REQUIRE(out.good(), "write to '" << path << "' failed");
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace resipe
