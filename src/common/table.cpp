#include "resipe/common/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "resipe/common/error.hpp"

namespace resipe {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RESIPE_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  RESIPE_REQUIRE(cells.size() == header_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

std::string format_si(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e-15, "f"}, {1e-12, "p"}, {1e-9, "n"}, {1e-6, "u"}, {1e-3, "m"},
      {1.0, ""},    {1e3, "k"},   {1e6, "M"},  {1e9, "G"},  {1e12, "T"},
  };
  const double mag = std::abs(value);
  const Prefix* chosen = &kPrefixes[5];
  if (mag > 0.0) {
    for (const auto& p : kPrefixes) {
      if (mag >= p.scale * 0.9999) chosen = &p;
    }
  }
  std::ostringstream os;
  os << format_fixed(value / chosen->scale, precision) << " " << chosen->name
     << unit;
  return os.str();
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_ratio(double value, int precision) {
  return format_fixed(value, precision) + "x";
}

std::string format_percent(double fraction, int precision) {
  return format_fixed(fraction * 100.0, precision) + "%";
}

}  // namespace resipe
