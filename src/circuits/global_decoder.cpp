#include "resipe/circuits/global_decoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "resipe/circuits/rc_stage.hpp"
#include "resipe/common/error.hpp"

namespace resipe::circuits {

GlobalDecoder::GlobalDecoder(const CircuitParams& params,
                             SampleHold sample_hold)
    : params_(params), sample_hold_(sample_hold) {
  params_.validate();
}

double GlobalDecoder::ramp_voltage(double t) const {
  return params_.ramp_voltage(t);
}

double GlobalDecoder::decode(const Spike& spike) const {
  if (!spike.valid() || spike.arrival_time > params_.slice_length) {
    return 0.0;
  }
  const double v = ramp_voltage(spike.arrival_time);
  // Held from the spike's arrival until the computation stage at the
  // end of S1.
  const double hold_time =
      std::max(params_.slice_length - spike.arrival_time, 0.0);
  return sample_hold_.sample(v, hold_time);
}

std::vector<double> GlobalDecoder::decode(
    const std::vector<Spike>& spikes) const {
  std::vector<double> v(spikes.size(), 0.0);
  for (std::size_t i = 0; i < spikes.size(); ++i) v[i] = decode(spikes[i]);
  return v;
}

double GlobalDecoder::ramp_crossing_time(double v) const {
  return params_.ramp_crossing(v);
}

}  // namespace resipe::circuits
