#include "resipe/circuits/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"

namespace resipe::circuits {

Trace& WaveformRecorder::trace(const std::string& name) {
  for (auto& t : traces_) {
    if (t.name == name) return t;
  }
  traces_.push_back(Trace{name, {}, {}});
  return traces_.back();
}

void WaveformRecorder::record(const std::string& name, double t, double v) {
  Trace& tr = trace(name);
  RESIPE_REQUIRE(tr.time.empty() || t >= tr.time.back(),
                 "samples must be appended in time order (trace '"
                     << name << "')");
  tr.time.push_back(t);
  tr.value.push_back(v);
}

const Trace* WaveformRecorder::find(const std::string& name) const {
  for (const auto& t : traces_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

double WaveformRecorder::at(const std::string& name, double t) const {
  const Trace* tr = find(name);
  RESIPE_REQUIRE(tr != nullptr && !tr->time.empty(),
                 "unknown or empty trace '" << name << "'");
  if (t <= tr->time.front()) return tr->value.front();
  if (t >= tr->time.back()) return tr->value.back();
  const auto it = std::lower_bound(tr->time.begin(), tr->time.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - tr->time.begin());
  const std::size_t lo = hi - 1;
  const double span = tr->time[hi] - tr->time[lo];
  if (span <= 0.0) return tr->value[hi];
  const double f = (t - tr->time[lo]) / span;
  return tr->value[lo] + f * (tr->value[hi] - tr->value[lo]);
}

std::string WaveformRecorder::render_ascii(double t0, double t1,
                                           std::size_t width,
                                           std::size_t height) const {
  RESIPE_REQUIRE(t1 > t0, "empty time window");
  RESIPE_REQUIRE(width >= 2 && height >= 2, "window too small");
  std::ostringstream os;
  for (const auto& tr : traces_) {
    if (tr.time.empty()) continue;
    double vmin = tr.value.front();
    double vmax = vmin;
    for (double v : tr.value) {
      vmin = std::min(vmin, v);
      vmax = std::max(vmax, v);
    }
    if (vmax - vmin < 1e-15) vmax = vmin + 1.0;
    std::vector<std::string> grid(height, std::string(width, ' '));
    for (std::size_t col = 0; col < width; ++col) {
      const double t = t0 + (t1 - t0) * static_cast<double>(col) /
                                static_cast<double>(width - 1);
      const double v = at(tr.name, t);
      const double frac = (v - vmin) / (vmax - vmin);
      const auto row = static_cast<std::size_t>(std::lround(
          (1.0 - frac) * static_cast<double>(height - 1)));
      grid[std::min(row, height - 1)][col] = '*';
    }
    os << tr.name << "  [" << format_si(vmin, "V") << " .. "
       << format_si(vmax, "V") << "]  t = [" << format_si(t0, "s") << " .. "
       << format_si(t1, "s") << "]\n";
    for (const auto& row : grid) os << "  |" << row << "\n";
    os << "  +" << std::string(width, '-') << "\n";
  }
  return os.str();
}

}  // namespace resipe::circuits
