#include "resipe/circuits/column_output_generator.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/circuits/rc_stage.hpp"
#include "resipe/common/error.hpp"

namespace resipe::circuits {

ColumnOutputGenerator::ColumnOutputGenerator(const CircuitParams& params)
    : params_(params) {
  params_.validate();
}

double ColumnOutputGenerator::sample_voltage(const ColumnDrive& drive) const {
  RESIPE_REQUIRE(drive.g_total >= 0.0, "negative column conductance");
  if (drive.g_total <= 0.0) return 0.0;
  const double tau = params_.c_cog / drive.g_total;  // Req * Ccog
  if (params_.model == TransferModel::kLinear) {
    // Eq. (3) approximation: Vout = Veq * dt / (Req Ccog); in this mode
    // the value may exceed Veq — that is exactly the linearization error
    // the exact model avoids.
    return rc_voltage_linear(drive.v_eq, tau, params_.comp_stage);
  }
  return rc_voltage(0.0, drive.v_eq, tau, params_.comp_stage);
}

Spike ColumnOutputGenerator::emit(double v_out,
                                  const GlobalDecoder& gd) const {
  const double threshold = v_out + params_.comparator_offset;
  if (threshold <= 0.0) {
    // The ramp starts above the held value: the comparator fires
    // immediately at the beginning of S2.
    return Spike::at(params_.comparator_delay, params_.spike_width);
  }
  const double crossing = gd.ramp_crossing_time(threshold);
  const double t_out = crossing + params_.comparator_delay;
  if (!(t_out <= params_.slice_length)) {
    return Spike::none();
  }
  return Spike::at(t_out, params_.spike_width);
}

Spike ColumnOutputGenerator::convert(const ColumnDrive& drive,
                                     const GlobalDecoder& gd) const {
  return emit(sample_voltage(drive), gd);
}

double ColumnOutputGenerator::conversion_energy(double v_out) const {
  // Computation stage: the energy *stored* on Ccog when it reaches
  // v_out (the resistive loss of that charge event is booked against
  // the crossbar by the tile's accounting).  S2: the comparator's
  // reference branch mirrors the GD ramp across the full slice — a
  // full-swing charge of a matched capacitance every slice.  Both caps
  // are discharged to ground at the slice boundary, so each slice pays
  // the full charge energy again — hence COG dominance (Sec. IV-B).
  const double comp_stage_energy = capacitor_energy(params_.c_cog, v_out);
  const double s2_reference_energy =
      rc_source_energy(params_.c_cog, params_.v_s, params_.v_s);
  return comp_stage_energy + s2_reference_energy;
}

}  // namespace resipe::circuits
