#include "resipe/circuits/transient.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"
#include "resipe/perf/work_model.hpp"

namespace resipe::circuits {

double integrate_ode(const std::function<double(double, double)>& f,
                     double v0, double t0, double t1, std::size_t steps) {
  RESIPE_REQUIRE(t1 >= t0, "integration interval inverted");
  RESIPE_REQUIRE(steps >= 1, "need at least one step");
  const double h = (t1 - t0) / static_cast<double>(steps);
  double v = v0;
  double t = t0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double k1 = f(t, v);
    const double k2 = f(t + h / 2.0, v + h / 2.0 * k1);
    const double k3 = f(t + h / 2.0, v + h / 2.0 * k2);
    const double k4 = f(t + h, v + h * k3);
    v += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t0 + h * static_cast<double>(i + 1);
  }
  return v;
}

double rc_node_derivative(double v, double v_inf, double tau) {
  RESIPE_REQUIRE(tau > 0.0, "RC derivative needs a positive time constant");
  return (v_inf - v) / tau;
}

double cog_comp_derivative(const CircuitParams& params,
                           std::span<const double> g,
                           std::span<const double> v_wl, double vc) {
  RESIPE_REQUIRE(g.size() == v_wl.size(),
                 "conductance / wordline voltage size mismatch");
  double i_total = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    i_total += g[i] * (v_wl[i] - vc);
  }
  return i_total / params.c_cog;
}

TransientMacResult transient_mac(const CircuitParams& params,
                                 std::span<const double> g,
                                 std::span<const Spike> inputs,
                                 std::size_t steps_per_slice) {
  RESIPE_PERF_KERNEL("circuits.transient.mac",
                     perf::transient_mac_cost(g.size(), steps_per_slice));
  params.validate();
  RESIPE_REQUIRE(g.size() == inputs.size() && !g.empty(),
                 "conductance / input size mismatch");
  RESIPE_REQUIRE(params.model == TransferModel::kExact,
                 "the transient cross-check targets the exact model");

  const double tau_gd = params.tau_gd();
  const auto ramp_ode = [&](double, double v) {
    return rc_node_derivative(v, params.v_s, tau_gd);
  };

  TransientMacResult result;

  // --- S1: integrate the ramp up to each spike's arrival and sample.
  result.v_wordline.assign(inputs.size(), 0.0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Spike& s = inputs[i];
    if (!s.valid() || s.arrival_time > params.slice_length) continue;
    result.v_wordline[i] =
        integrate_ode(ramp_ode, 0.0, 0.0, s.arrival_time,
                      std::max<std::size_t>(
                          8, static_cast<std::size_t>(
                                 steps_per_slice * s.arrival_time /
                                 params.slice_length) +
                                 8));
  }

  // --- computation stage: the COG node sees every cell as a conductance
  // to its (held) wordline voltage.
  const auto cog_ode = [&](double, double vc) {
    return cog_comp_derivative(params, g, result.v_wordline, vc);
  };
  result.v_cog = integrate_ode(cog_ode, 0.0, 0.0, params.comp_stage,
                               steps_per_slice);

  // --- S2: step the ramp and find the crossing with the held voltage.
  const double threshold = result.v_cog + params.comparator_offset;
  if (threshold <= 0.0) {
    result.output =
        Spike::at(params.comparator_delay, params.spike_width);
    return result;
  }
  const double h =
      params.slice_length / static_cast<double>(steps_per_slice);
  double v_prev = 0.0;
  double t_prev = 0.0;
  result.output = Spike::none();
  for (std::size_t i = 1; i <= steps_per_slice; ++i) {
    const double t = h * static_cast<double>(i);
    const double v = integrate_ode(ramp_ode, v_prev, t_prev, t, 1);
    if (v >= threshold) {
      // Linear interpolation inside the step.
      const double frac = (threshold - v_prev) / (v - v_prev);
      const double t_cross = t_prev + frac * h + params.comparator_delay;
      if (t_cross <= params.slice_length) {
        result.output = Spike::at(t_cross, params.spike_width);
      }
      return result;
    }
    v_prev = v;
    t_prev = t;
  }
  return result;
}

}  // namespace resipe::circuits
