#include "resipe/circuits/params.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "resipe/common/error.hpp"

namespace resipe::circuits {

void CircuitParams::validate() const {
  RESIPE_REQUIRE(v_s > 0.0, "source voltage must be positive");
  RESIPE_REQUIRE(r_gd > 0.0, "GD resistance must be positive");
  RESIPE_REQUIRE(c_gd > 0.0, "GD capacitance must be positive");
  RESIPE_REQUIRE(c_cog > 0.0, "COG capacitance must be positive");
  RESIPE_REQUIRE(slice_length > 0.0, "slice length must be positive");
  RESIPE_REQUIRE(comp_stage > 0.0, "computation stage must be positive");
  RESIPE_REQUIRE(comp_stage < slice_length,
                 "computation stage must fit inside a slice");
  RESIPE_REQUIRE(spike_width > 0.0 && spike_width <= slice_length,
                 "spike width must fit inside a slice");
  RESIPE_REQUIRE(comparator_delay >= 0.0, "negative comparator delay");
  RESIPE_REQUIRE(comparator_offset_sigma >= 0.0,
                 "negative comparator offset sigma");
  RESIPE_REQUIRE(clock_period > 0.0, "clock period must be positive");
}

double CircuitParams::ramp_voltage(double t) const {
  RESIPE_REQUIRE(t >= 0.0, "ramp time must be non-negative");
  double v;
  if (model == TransferModel::kLinear) {
    v = v_s * t / tau_gd();
  } else {
    v = v_s * (1.0 - std::exp(-t / tau_gd()));
  }
  return std::clamp(v, 0.0, v_s);
}

double CircuitParams::ramp_crossing(double v) const {
  if (v <= 0.0) return 0.0;
  if (model == TransferModel::kLinear) {
    return v * tau_gd() / v_s;
  }
  if (v >= v_s) return std::numeric_limits<double>::infinity();
  return -tau_gd() * std::log(1.0 - v / v_s);
}

CircuitParams CircuitParams::paper_defaults() { return CircuitParams{}; }

CircuitParams CircuitParams::nn_calibrated() {
  CircuitParams p;
  p.r_gd = 1.0 * units::MOhm;  // tau_gd = slice = 100 ns
  return p;
}

CircuitParams CircuitParams::linear_regime() {
  CircuitParams p;
  p.r_gd = 10.0 * units::MOhm;  // tau_gd = 1 us >> 100 ns slice
  return p;
}

}  // namespace resipe::circuits
