#include "resipe/circuits/sample_hold.hpp"

#include <algorithm>

#include "resipe/common/error.hpp"

namespace resipe::circuits {

SampleHold::SampleHold(double gain_error, double droop_rate)
    : gain_error_(gain_error), droop_rate_(droop_rate) {
  RESIPE_REQUIRE(droop_rate >= 0.0, "negative droop rate");
}

double SampleHold::sample(double v, double hold_time) const {
  RESIPE_REQUIRE(hold_time >= 0.0, "negative hold time");
  const double held = v * (1.0 + gain_error_) - droop_rate_ * hold_time;
  // Droop cannot take the node below ground in this single-supply design.
  return std::max(held, 0.0);
}

}  // namespace resipe::circuits
