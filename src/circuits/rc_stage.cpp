#include "resipe/circuits/rc_stage.hpp"

#include <cmath>
#include <limits>

#include "resipe/common/error.hpp"

namespace resipe::circuits {

double rc_voltage(double v0, double v_inf, double tau, double t) {
  RESIPE_REQUIRE(tau >= 0.0, "negative time constant " << tau);
  RESIPE_REQUIRE(t >= 0.0, "negative time " << t);
  if (tau == 0.0) return v_inf;
  return v_inf + (v0 - v_inf) * std::exp(-t / tau);
}

double rc_time_to_reach(double v0, double v_inf, double tau,
                        double v_target) {
  RESIPE_REQUIRE(tau >= 0.0, "negative time constant " << tau);
  if (v_target == v0) return 0.0;
  if (tau == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Charging moves monotonically from v0 toward v_inf; the target must
  // lie strictly between them (exclusive of v_inf, reached only at t=inf).
  const double num = v_inf - v0;
  const double den = v_inf - v_target;
  if (num == 0.0) return std::numeric_limits<double>::infinity();
  const double ratio = den / num;
  if (ratio <= 0.0 || ratio >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -tau * std::log(ratio);
}

double rc_source_energy(double capacitance, double v_source, double v_final) {
  RESIPE_REQUIRE(capacitance >= 0.0, "negative capacitance");
  // Charge delivered by the source: Q = C * v_final; energy = Q * V_s.
  return capacitance * v_final * v_source;
}

double capacitor_energy(double capacitance, double v) {
  RESIPE_REQUIRE(capacitance >= 0.0, "negative capacitance");
  return 0.5 * capacitance * v * v;
}

double rc_voltage_linear(double v_inf, double tau, double t) {
  RESIPE_REQUIRE(tau > 0.0, "linearized RC needs positive tau");
  return v_inf * t / tau;
}

}  // namespace resipe::circuits
